(* pebble_cli — generate the paper's DAG families, run the exact and
   heuristic solvers, replay the constructive strategies, extract
   partitions, and export DOT drawings.

     pebble_cli info    --family tree:2:4
     pebble_cli solve   --family fig1 -r 4
     pebble_cli solve   --family matvec:5 -r 8 --heuristic
     pebble_cli strategy --family zipper:3:6 -r 5 --game prbp
     pebble_cli partition --family fig1 -r 4 --kind edge
     pebble_cli dot     --family chained:3 -o chain.dot           *)

open Cmdliner

type family =
  | Fig1
  | Chained of int
  | Tree of int * int
  | Zipper of int * int
  | Collect of int * int
  | Matvec of int
  | Matmul of int * int * int
  | Fft of int
  | Attention of int * int
  | Lemma54 of int
  | Pyramid of int
  | Path of int
  | Diamond
  | Grid of int * int
  | Random of int * int * int
  | Horner of int
  | Spmv of int * int * int
  | File of string

let parse_family s =
  let fail () =
    Error
      (`Msg
        (Printf.sprintf
           "unknown family %S (try fig1, chained:N, tree:K:D, zipper:D:L, \
            collect:D:L, matvec:M, matmul:M1:M2:M3, fft:M, attention:M:D, \
            lemma54:H, pyramid:H, path:N, diamond, grid:R:C, horner:N, \
            spmv:SEED:ROWS:COLS, random:SEED:LAYERS:WIDTH, file:PATH)"
           s))
  in
  let int x = int_of_string_opt x in
  match String.split_on_char ':' s with
  | [ "fig1" ] -> Ok Fig1
  | [ "diamond" ] -> Ok Diamond
  | [ "chained"; n ] -> (
      match int n with Some n -> Ok (Chained n) | None -> fail ())
  | [ "tree"; k; d ] -> (
      match (int k, int d) with
      | Some k, Some d -> Ok (Tree (k, d))
      | _ -> fail ())
  | [ "zipper"; d; l ] -> (
      match (int d, int l) with
      | Some d, Some l -> Ok (Zipper (d, l))
      | _ -> fail ())
  | [ "collect"; d; l ] -> (
      match (int d, int l) with
      | Some d, Some l -> Ok (Collect (d, l))
      | _ -> fail ())
  | [ "matvec"; m ] -> (
      match int m with Some m -> Ok (Matvec m) | None -> fail ())
  | [ "matmul"; a; b; c ] -> (
      match (int a, int b, int c) with
      | Some a, Some b, Some c -> Ok (Matmul (a, b, c))
      | _ -> fail ())
  | [ "fft"; m ] -> (
      match int m with Some m -> Ok (Fft m) | None -> fail ())
  | [ "attention"; m; d ] -> (
      match (int m, int d) with
      | Some m, Some d -> Ok (Attention (m, d))
      | _ -> fail ())
  | [ "lemma54"; h ] -> (
      match int h with Some h -> Ok (Lemma54 h) | None -> fail ())
  | [ "pyramid"; h ] -> (
      match int h with Some h -> Ok (Pyramid h) | None -> fail ())
  | [ "path"; n ] -> (
      match int n with Some n -> Ok (Path n) | None -> fail ())
  | [ "grid"; r; c ] -> (
      match (int r, int c) with
      | Some r, Some c -> Ok (Grid (r, c))
      | _ -> fail ())
  | [ "horner"; n ] -> (
      match int n with Some n -> Ok (Horner n) | None -> fail ())
  | [ "spmv"; s'; rows; cols ] -> (
      match (int s', int rows, int cols) with
      | Some s', Some rows, Some cols -> Ok (Spmv (s', rows, cols))
      | _ -> fail ())
  | "file" :: rest when rest <> [] -> Ok (File (String.concat ":" rest))
  | [ "random"; s'; l; w ] -> (
      match (int s', int l, int w) with
      | Some s', Some l, Some w -> Ok (Random (s', l, w))
      | _ -> fail ())
  | _ -> fail ()

let build = function
  | Fig1 -> fst (Prbp.Graphs.Fig1.full ())
  | Chained n -> Prbp.Graphs.Fig1.chained ~copies:n
  | Tree (k, depth) -> (Prbp.Graphs.Tree.make ~k ~depth).Prbp.Graphs.Tree.dag
  | Zipper (d, len) -> (Prbp.Graphs.Zipper.make ~d ~len).Prbp.Graphs.Zipper.dag
  | Collect (d, len) ->
      (Prbp.Graphs.Collect.make ~d ~len).Prbp.Graphs.Collect.dag
  | Matvec m -> (Prbp.Graphs.Matvec.make ~m).Prbp.Graphs.Matvec.dag
  | Matmul (m1, m2, m3) ->
      (Prbp.Graphs.Matmul.make ~m1 ~m2 ~m3).Prbp.Graphs.Matmul.dag
  | Fft m -> (Prbp.Graphs.Fft.make ~m).Prbp.Graphs.Fft.dag
  | Attention (m, d) -> (Prbp.Graphs.Attention.full ~m ~d).Prbp.Graphs.Attention.dag
  | Lemma54 h ->
      (Prbp.Graphs.Lemma54.make ~group_size:h).Prbp.Graphs.Lemma54.dag
  | Pyramid h -> Prbp.Graphs.Basic.pyramid h
  | Path n -> Prbp.Graphs.Basic.path n
  | Diamond -> Prbp.Graphs.Basic.diamond ()
  | Grid (r, c) -> Prbp.Graphs.Basic.grid r c
  | Random (seed, layers, width) ->
      Prbp.Graphs.Random_dag.make ~seed ~layers ~width ()
  | Horner n -> Prbp.Graphs.Basic.horner n
  | Spmv (seed, rows, cols) ->
      (Prbp.Graphs.Spmv.make ~seed ~rows ~cols ()).Prbp.Graphs.Spmv.dag
  | File path -> (
      match Prbp.Serialize.of_file path with
      | Ok g -> g
      | Error e -> failwith (Printf.sprintf "cannot load %s: %s" path e))

let family_label = function
  | Fig1 -> "fig1"
  | Chained n -> Printf.sprintf "chained:%d" n
  | Tree (k, d) -> Printf.sprintf "tree:%d:%d" k d
  | Zipper (d, l) -> Printf.sprintf "zipper:%d:%d" d l
  | Collect (d, l) -> Printf.sprintf "collect:%d:%d" d l
  | Matvec m -> Printf.sprintf "matvec:%d" m
  | Matmul (a, b, c) -> Printf.sprintf "matmul:%d:%d:%d" a b c
  | Fft m -> Printf.sprintf "fft:%d" m
  | Attention (m, d) -> Printf.sprintf "attention:%d:%d" m d
  | Lemma54 h -> Printf.sprintf "lemma54:%d" h
  | Pyramid h -> Printf.sprintf "pyramid:%d" h
  | Path n -> Printf.sprintf "path:%d" n
  | Diamond -> "diamond"
  | Grid (r, c) -> Printf.sprintf "grid:%d:%d" r c
  | Random (s, l, w) -> Printf.sprintf "random:%d:%d:%d" s l w
  | Horner n -> Printf.sprintf "horner:%d" n
  | Spmv (s, r, c) -> Printf.sprintf "spmv:%d:%d:%d" s r c
  | File p -> "file:" ^ p

let family_conv = Arg.conv (parse_family, fun ppf _ -> Fmt.string ppf "<family>")

let family_arg =
  Arg.(
    required
    & opt (some family_conv) None
    & info [ "f"; "family" ] ~docv:"FAMILY" ~doc:"DAG family to generate.")

let r_arg =
  Arg.(
    value & opt int 4
    & info [ "r" ] ~docv:"R" ~doc:"Fast-memory capacity (red pebbles).")

let parse_game s =
  match String.split_on_char ':' s with
  | [ "rbp" ] -> Ok `Rbp
  | [ "prbp" ] -> Ok `Prbp
  | [ "both" ] -> Ok `Both
  | [ "black" ] -> Ok `Black
  | [ "multi"; p ] -> (
      match int_of_string_opt p with
      | Some p when p >= 1 -> Ok (`Multi p)
      | _ -> Error (`Msg (Printf.sprintf "bad processor count in %S" s)))
  | _ ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown game %S (try rbp, prbp, both, black, multi:P)" s))

let game_conv =
  Arg.conv
    ( parse_game,
      fun ppf g ->
        Fmt.string ppf
          (match g with
          | `Rbp -> "rbp"
          | `Prbp -> "prbp"
          | `Both -> "both"
          | `Black -> "black"
          | `Multi p -> Printf.sprintf "multi:%d" p) )

let game_arg =
  Arg.(
    value
    & opt game_conv `Both
    & info [ "g"; "game" ] ~docv:"GAME"
        ~doc:
          "Which game to run: $(b,rbp), $(b,prbp), $(b,both), $(b,black) \
           (pebbling number, no I/O), or $(b,multi:P) (exact RBP-MC and \
           PRBP-MC with $(i,P) processors).")

(* ------------------------------------------------------------------ *)

(* Commands with no notion of a truncated solve always exit 0; [solve]
   returns its own status (see [exit_bounded] below). *)
let ok term = Term.(const (fun () -> 0) $ term)

let info_cmd =
  let run family =
    let g = build family in
    Format.printf "%a@." Prbp.Dag.pp g;
    Format.printf "trivial cost: %d@." (Prbp.Dag.trivial_cost g);
    Format.printf "height: %d@." (Prbp.Topo.height g)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics of a generated DAG.")
    (ok Term.(const run $ family_arg))

(* Durations for --deadline: "5s", "250ms", "2m", or plain seconds. *)
let parse_duration s =
  let fail () =
    Error (`Msg (Printf.sprintf "bad duration %S (try 5s, 250ms, 2m)" s))
  in
  let mk scale part =
    match float_of_string_opt part with
    | Some f when f > 0. -> Ok (int_of_float (Float.ceil (f *. scale)))
    | _ -> fail ()
  in
  let chop n = String.sub s 0 (String.length s - n) in
  if s = "" then fail ()
  else if Filename.check_suffix s "ms" then mk 1. (chop 2)
  else if Filename.check_suffix s "s" then mk 1000. (chop 1)
  else if Filename.check_suffix s "m" then mk 60_000. (chop 1)
  else mk 1000. s

let duration_conv =
  Arg.conv (parse_duration, fun ppf ms -> Fmt.pf ppf "%dms" ms)

(* Exit code for budget-truncated solves: distinct from plain success
   and from cmdliner's own error codes (123-125). *)
let exit_bounded = 10

(* --profile-out / --metrics-out: turn the corresponding recorder on
   for the command's lifetime and write the export when the run ends —
   including truncated runs (exit 10) and crashes, which are exactly
   the ones worth profiling. *)
let obs_args =
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Record a span trace of the run and write it as Chrome \
             trace-event JSON to $(docv) (load it at ui.perfetto.dev or \
             chrome://tracing).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Record solver metrics and write a Prometheus text-format \
             snapshot to $(docv).")
  in
  Term.(const (fun p m -> (p, m)) $ profile_out $ metrics_out)

let with_obs (profile_out, metrics_out) f =
  if profile_out <> None then Prbp.Obs.Span.set_enabled true;
  if metrics_out <> None then Prbp.Obs.Metrics.set_enabled true;
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let export () =
    Option.iter (fun p -> write p (Prbp.Obs.Span.to_chrome ())) profile_out;
    Option.iter
      (fun p -> write p (Prbp.Obs.Metrics.to_prometheus ()))
      metrics_out
  in
  match f () with
  | code ->
      export ();
      code
  | exception e ->
      export ();
      raise e

let solve_cmd =
  let run family r game heuristic max_states deadline budget_words spill_words
      jobs trace json sliding recompute no_delete obs =
    with_obs obs @@ fun () ->
    let g = build family in
    if not json then Format.printf "%a, r = %d@." Prbp.Dag.pp g r;
    let rcfg =
      Prbp.Rbp.config ~one_shot:(not recompute) ~sliding ~no_delete ~r ()
    in
    let pcfg =
      Prbp.Prbp_game.config ~one_shot:(not recompute) ~recompute ~no_delete
        ~r ()
    in
    let budget =
      Prbp.Solver.Budget.v ~max_states ?max_millis:deadline
        ?max_words:budget_words ?spill_words ()
    in
    let telemetry =
      if trace then Some (Prbp.Wire.jsonl ~every:1000 stderr) else None
    in
    let variants = { Prbp.Wire.sliding; recompute; no_delete } in
    let bounded = ref false in
    (* each exact solve records its convergence curve through a tee on
       the (optional) telemetry stream; the JSON outcome carries it *)
    let solve_with solver =
      let conv, sink = Prbp.Solver.Convergence.recorder ?telemetry () in
      let outcome = solver sink in
      (outcome, Prbp.Solver.Convergence.curve conv)
    in
    let report name wire_game (outcome, curve) =
      (match outcome with
      | Prbp.Solver.Bounded _ -> bounded := true
      | _ -> ());
      if json then
        print_endline
          (Prbp.Wire.encode_outcome
             (Prbp.Wire.outcome_of ~game:wire_game ~r ~variants ~curve ~dag:g
                outcome))
      else Format.printf "%s: %a@." name Prbp.Solver.pp outcome
    in
    let rbp () =
      if heuristic then
        Format.printf "RBP  heuristic cost: %d@."
          (Prbp.Heuristic.rbp_cost ~r g)
      else
        report "OPT_RBP " Prbp.Wire.Rbp
          (solve_with (fun sink ->
               Prbp.Exact_rbp.solve ~budget ~telemetry:sink ~jobs rcfg g))
    in
    let prbp () =
      if heuristic then
        Format.printf "PRBP heuristic cost: %d@."
          (Prbp.Heuristic.prbp_best_cost ~r g)
      else
        report "OPT_PRBP" Prbp.Wire.Prbp
          (solve_with (fun sink ->
               Prbp.Exact_prbp.solve ~budget ~telemetry:sink ~jobs pcfg g))
    in
    let black () =
      match Prbp.Black.number ~sliding ~max_states g with
      | n -> Format.printf "black pebbling number: %d@." n
      | exception Prbp.Game.Too_large n ->
          bounded := true;
          Format.printf "black pebbling number: state budget (%d) exhausted@."
            n
    in
    let multi p =
      if recompute then
        Format.printf "multi: one-shot only (drop --recompute)@."
      else begin
        let cfg = Prbp.Multi.config ~p ~r () in
        report
          (Printf.sprintf "OPT_RBP-MC  (p = %d)" p)
          (Prbp.Wire.Multi_rbp p)
          (solve_with (fun sink ->
               Prbp.Exact_multi.rbp_solve ~budget ~telemetry:sink ~jobs cfg g));
        report
          (Printf.sprintf "OPT_PRBP-MC (p = %d)" p)
          (Prbp.Wire.Multi_prbp p)
          (solve_with (fun sink ->
               Prbp.Exact_multi.prbp_solve ~budget ~telemetry:sink ~jobs cfg
                 g))
      end
    in
    (match game with
    | `Rbp -> rbp ()
    | `Prbp -> prbp ()
    | `Both ->
        rbp ();
        prbp ()
    | `Black -> black ()
    | `Multi p -> multi p);
    if not json then
      Format.printf "trivial lower bound: %d@." (Prbp.Dag.trivial_cost g);
    if !bounded then exit_bounded else 0
  in
  let heuristic =
    Arg.(
      value & flag
      & info [ "heuristic" ]
          ~doc:"Use the Belady heuristic pebbler instead of exact search.")
  in
  let max_states =
    Arg.(
      value & opt int 5_000_000
      & info [ "max-states" ] ~doc:"State budget for exact search.")
  in
  let deadline =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "deadline" ] ~docv:"DUR"
          ~doc:
            "Wall-clock deadline per exact solve (e.g. $(b,5s), $(b,250ms), \
             $(b,2m), or plain seconds).  Past it the solver stops with a \
             certified bounded interval and the command exits 10.")
  in
  let budget_words =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-words" ] ~docv:"N"
          ~doc:
            "Memory budget for the search structures, in heap words; \
             exceeding it stops the solve with a bounded outcome.")
  in
  let spill_words =
    Arg.(
      value
      & opt (some int) None
      & info [ "spill-words" ] ~docv:"N"
          ~doc:
            "With $(b,--budget-words): instead of stopping at the memory \
             budget, evict settled states to a temporary file and keep \
             searching until the spill file itself reaches $(docv) words.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Search on $(docv) parallel domains.  The optimum (and the \
             certified interval of a state-budget-truncated solve) does \
             not depend on $(docv).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Stream JSON-lines solver telemetry (start/progress/prune/stop \
             events) to stderr.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one wire-schema JSON outcome object per exact solve on \
             stdout (and suppress the human-readable report).  Heuristic \
             and black-pebbling runs keep their text output.")
  in
  let sliding =
    Arg.(value & flag & info [ "sliding" ] ~doc:"Appendix B.2 sliding RBP.")
  in
  let recompute =
    Arg.(
      value & flag
      & info [ "recompute" ] ~doc:"Appendix B.1 re-computation variant.")
  in
  let no_delete =
    Arg.(
      value & flag & info [ "no-delete" ] ~doc:"Appendix B.4 no-deletion.")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Compute optimal (or heuristic) pebbling costs.  Budget-truncated \
          exact solves report a certified [lower, upper] interval and exit \
          10 instead of failing.")
    Term.(
      const run $ family_arg $ r_arg $ game_arg $ heuristic $ max_states
      $ deadline $ budget_words $ spill_words $ jobs $ trace $ json
      $ sliding $ recompute $ no_delete $ obs_args)

let strategy_cmd =
  let run family r game verbose =
    let g = build family in
    let show_r moves =
      match Prbp.Rbp.check (Prbp.Rbp.config ~r ()) g moves with
      | Ok c ->
          Format.printf "RBP strategy: %d moves, I/O cost %d@."
            (List.length moves) c;
          if verbose then
            List.iter (fun m -> Format.printf "  %a@." Prbp.Move.R.pp m) moves
      | Error e -> Format.printf "RBP strategy invalid: %s@." e
    in
    let show_p moves =
      match Prbp.Prbp_game.check (Prbp.Prbp_game.config ~r ()) g moves with
      | Ok c ->
          Format.printf "PRBP strategy: %d moves, I/O cost %d@."
            (List.length moves) c;
          if verbose then
            List.iter (fun m -> Format.printf "  %a@." Prbp.Move.P.pp m) moves
      | Error e -> Format.printf "PRBP strategy invalid: %s@." e
    in
    let strategies :
        (unit -> Prbp.Move.R.t list) option
        * (unit -> Prbp.Move.P.t list) option =
      match family with
      | Fig1 ->
          let _, ids = Prbp.Graphs.Fig1.full () in
          ( Some (fun () -> Prbp.Strategies.fig1_rbp ids),
            Some (fun () -> Prbp.Strategies.fig1_prbp ids) )
      | Chained copies ->
          ( Some (fun () -> Prbp.Strategies.fig1_chained_rbp ~copies),
            Some (fun () -> Prbp.Strategies.fig1_chained_prbp ~copies) )
      | Tree (k, depth) ->
          let t = Prbp.Graphs.Tree.make ~k ~depth in
          ( Some (fun () -> Prbp.Strategies.tree_rbp t),
            Some (fun () -> Prbp.Strategies.tree_prbp t) )
      | Zipper (d, len) ->
          let z = Prbp.Graphs.Zipper.make ~d ~len in
          ( Some (fun () -> Prbp.Strategies.zipper_rbp z),
            Some (fun () -> Prbp.Strategies.zipper_prbp z) )
      | Collect (d, len) ->
          let c = Prbp.Graphs.Collect.make ~d ~len in
          ( Some (fun () -> Prbp.Strategies.collect_full c),
            Some (fun () -> Prbp.Strategies.collect_capped c) )
      | Matvec m ->
          let mv = Prbp.Graphs.Matvec.make ~m in
          (None, Some (fun () -> Prbp.Strategies.matvec_prbp mv))
      | Matmul (m1, m2, m3) ->
          let mm = Prbp.Graphs.Matmul.make ~m1 ~m2 ~m3 in
          let ti, tk, tj = Prbp.Strategies.matmul_tile_for ~r ~m1 ~m2 ~m3 in
          (None, Some (fun () -> Prbp.Strategies.matmul_tiled ~ti ~tk ~tj mm))
      | Fft m ->
          let f = Prbp.Graphs.Fft.make ~m in
          (Some (fun () -> Prbp.Strategies.fft_blocked ~r f), None)
      | Lemma54 h ->
          let l = Prbp.Graphs.Lemma54.make ~group_size:h in
          (None, Some (fun () -> Prbp.Strategies.lemma54_prbp l))
      | _ -> (None, None)
    in
    match (game, strategies) with
    | `Rbp, (Some s, _) -> show_r (s ())
    | `Prbp, (_, Some s) -> show_p (s ())
    | `Both, (rs, ps) ->
        Option.iter (fun s -> show_r (s ())) rs;
        Option.iter (fun s -> show_p (s ())) ps;
        if rs = None && ps = None then
          Format.printf "no constructive strategy known for this family@."
    | _ -> Format.printf "no constructive strategy for this family/game@."
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every move.")
  in
  Cmd.v
    (Cmd.info "strategy"
       ~doc:"Replay the paper's constructive strategy for a family.")
    (ok Term.(const run $ family_arg $ r_arg $ game_arg $ verbose))

let partition_cmd =
  let run family r kind =
    let g = build family in
    let s = 2 * r in
    let validate label check cls =
      Format.printf "%s: %d classes (S = %d)@." label (Array.length cls) s;
      match check with
      | Ok () -> Format.printf "valid: yes@."
      | Error e -> Format.printf "valid: NO — %s@." e
    in
    match kind with
    | `Edge ->
        let moves = Prbp.Heuristic.prbp ~r g in
        let cls = Prbp.Extract.edge_partition_of_prbp ~r g moves in
        validate "S-edge partition (Lemma 6.4)"
          (Prbp.Spart.is_edge_partition g ~s cls)
          cls
    | `Dom ->
        let moves = Prbp.Heuristic.prbp ~r g in
        let cls = Prbp.Extract.dominator_partition_of_prbp ~r g moves in
        validate "S-dominator partition (Lemma 6.8)"
          (Prbp.Spart.is_dominator_partition g ~s cls)
          cls
    | `Hk ->
        let moves = Prbp.Heuristic.rbp ~r g in
        let cls = Prbp.Extract.hong_kung ~r g moves in
        validate "S-partition (Hong–Kung)"
          (Prbp.Spart.is_spartition g ~s cls)
          cls
    | `Greedy ->
        let cls = Prbp.Spart.greedy_spartition g ~s in
        validate "greedy S-partition"
          (Prbp.Spart.is_spartition g ~s cls)
          cls
  in
  let kind =
    Arg.(
      value
      & opt
          (enum [ ("edge", `Edge); ("dom", `Dom); ("hk", `Hk); ("greedy", `Greedy) ])
          `Edge
      & info [ "kind" ] ~docv:"KIND" ~doc:"Partition flavor to extract.")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Extract a partition from a pebbling trace and validate it.")
    (ok Term.(const run $ family_arg $ r_arg $ kind))

let dot_cmd =
  let run family r partition output =
    let g = build family in
    let s = 2 * r in
    let module Segment = Prbp.Bounds.Segment in
    let node_classes flavor =
      Result.map
        (fun (seg : Segment.t) ->
          Prbp.Dot.to_string ~classes:seg.Segment.classes g)
        (Segment.greedy ~flavor g ~s)
    in
    let rendered =
      match partition with
      | `None -> Ok (Prbp.Dot.to_string g)
      | `Greedy -> node_classes Segment.Spartition
      | `Dom -> node_classes Segment.Dominator
      | `Edge ->
          Result.map
            (fun (seg : Segment.t) ->
              Prbp.Dot.to_string ~edge_classes:seg.Segment.classes g)
            (Segment.greedy ~flavor:Segment.Edge g ~s)
      | `Level ->
          Result.map
            (fun (seg : Segment.t) ->
              Prbp.Dot.to_string ~classes:seg.Segment.classes g)
            (Segment.level_cut g ~s)
    in
    match rendered with
    | Error e ->
        Format.eprintf "dot: %s@." e;
        1
    | Ok str -> (
        match output with
        | None ->
            print_string str;
            0
        | Some path ->
            let oc = open_out path in
            output_string oc str;
            close_out oc;
            Format.printf "wrote %s@." path;
            0)
  in
  let partition =
    Arg.(
      value
      & opt
          (enum
             [ ("none", `None); ("greedy", `Greedy); ("dom", `Dom);
               ("edge", `Edge); ("level", `Level) ])
          `None
      & info [ "partition" ] ~docv:"KIND"
          ~doc:
            "Color the drawing by a validated partition at $(b,S = 2r): \
             $(b,greedy) (S-partition sweep), $(b,dom) (dominator flavor), \
             $(b,edge) (S-edge partition, colored edges), or $(b,level) \
             (level cut).  Classes cycle through a 12-color palette.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Export a family as a Graphviz drawing, optionally colored by a \
          validated partition certificate.")
    Term.(const run $ family_arg $ r_arg $ partition $ output)

let bracket_cmd =
  let run family r game max_states deadline rules json profile trace obs =
    with_obs obs @@ fun () ->
    let g = build family in
    let budget = Prbp.Solver.Budget.v ~max_states ?max_millis:deadline () in
    let telemetry =
      if trace then Some (Prbp.Wire.jsonl ~every:1000 stderr) else None
    in
    (match rules with
    | None -> ()
    | Some names ->
        let known = Prbp.Bounds.Lower.names () in
        List.iter
          (fun n ->
            if not (List.mem n known) then
              failwith
                (Printf.sprintf "unknown lower rule %S (registered: %s)" n
                   (String.concat ", " known)))
          names);
    let module Bracket = Prbp.Bounds.Bracket in
    let module Segment = Prbp.Bounds.Segment in
    let not_tight = ref false in
    let errored = ref false in
    let show name result =
      match result with
      | Ok (b : Bracket.t) ->
          if not b.Bracket.tight then not_tight := true;
          if json then
            print_endline
              (Prbp.Wire.encode_bracket
                 (Prbp.Wire.bracket_of ~family:(family_label family) b))
          else begin
            Format.printf "%s: %a@." name Bracket.pp b;
            if profile then
              match b.Bracket.profile with
              | Some seg ->
                  Format.printf
                    "  profile: validated %s partition at S = %d, %d classes@."
                    (Segment.flavor_label seg.Segment.flavor)
                    seg.Segment.s
                    (Segment.n_classes seg)
              | None -> Format.printf "  profile: none@."
          end
      | Error e ->
          (* operational failure, not a loose bracket: exit 1, not 10
             (the documented exit-code contract in docs/ALGORITHMS.md) *)
          errored := true;
          Format.eprintf "%s: %s@." name e
    in
    let rbp () =
      show "RBP " (Bracket.rbp ~budget ?telemetry ?rules ~r g)
    in
    let prbp () =
      show "PRBP" (Bracket.prbp ~budget ?telemetry ?rules ~r g)
    in
    (match game with
    | `Rbp -> rbp ()
    | `Prbp -> prbp ()
    | `Both ->
        rbp ();
        prbp ()
    | `Black | `Multi _ ->
        errored := true;
        Format.eprintf "bracket: only the rbp/prbp games have brackets@.");
    if !errored then 1 else if !not_tight then exit_bounded else 0
  in
  let max_states =
    Arg.(
      value & opt int 5_000_000
      & info [ "max-states" ]
          ~doc:"State budget for the exact-partition lower-bound rules.")
  in
  let deadline =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "deadline" ] ~docv:"DUR"
          ~doc:
            "Wall-clock budget for the whole bracket (split across the \
             lower- and upper-bound portfolios).")
  in
  let rules =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "rules" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated lower-bound rule names to run (default: every \
             registered rule).  Unknown names are an error; the message \
             lists the registry.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object per bracket on stdout.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Also report the constructive partition profile attached to the \
             bracket.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Stream JSON-lines bracket telemetry to stderr.")
  in
  Cmd.v
    (Cmd.info "bracket"
       ~doc:
         "Certified bounds at any scale: run the lower-bound rule portfolio \
          and the verified-strategy upper-bound portfolio and report \
          lower <= OPT <= upper with its certificates.  Exits 10 when the \
          bracket is not tight (lower < upper), 0 when it pins the optimum.")
    Term.(
      const run $ family_arg $ r_arg $ game_arg $ max_states $ deadline
      $ rules $ json $ profile $ trace $ obs_args)

let frontier_cmd =
  let run family fgame rs comm_cap r_max max_states deadline jobs rules json
      with_strategy obs =
    with_obs obs @@ fun () ->
    let module F = Prbp.Frontier.Frontier in
    let g = build family in
    let game, p = fgame in
    (match rules with
    | None -> ()
    | Some names ->
        let known = Prbp.Bounds.Lower.names () in
        List.iter
          (fun n ->
            if not (List.mem n known) then
              failwith
                (Printf.sprintf "unknown lower rule %S (registered: %s)" n
                   (String.concat ", " known)))
          names);
    let budget = Prbp.Solver.Budget.v ~max_states ?max_millis:deadline () in
    match comm_cap with
    | Some comm_cap -> (
        (* reverse ε-constraint: least capacity meeting the cap *)
        match
          F.min_r_for_comm ~budget ?rules ~jobs game ~p ~comm_cap ?r_max g
        with
        | F.Min_r { r; comm } ->
            if json then
              Printf.printf
                "{\"v\":1,\"kind\":\"min-r\",\"game\":%S,\"comm_cap\":%d,\"r\":%d,\"comm\":%d}\n"
                (F.game_label game ~p) comm_cap r comm
            else
              Format.printf
                "least r with OPT_comm <= %d: r = %d (comm %d)@." comm_cap r
                comm;
            0
        | F.Min_r_between (lo, hi) ->
            if json then
              Printf.printf
                "{\"v\":1,\"kind\":\"min-r\",\"game\":%S,\"comm_cap\":%d,\"r_lower\":%d,\"r_upper\":%d}\n"
                (F.game_label game ~p) comm_cap lo hi
            else
              Format.printf
                "least r with OPT_comm <= %d: certified in [%d, %d] (budget \
                 exhausted)@."
                comm_cap lo hi;
            exit_bounded
        | F.Min_r_infeasible ->
            if json then
              Printf.printf
                "{\"v\":1,\"kind\":\"min-r\",\"game\":%S,\"comm_cap\":%d,\"infeasible\":true}\n"
                (F.game_label game ~p) comm_cap
            else
              Format.printf "no capacity meets OPT_comm <= %d@." comm_cap;
            0)
    | None ->
        let f = F.sweep ~budget ?rules ~jobs game ~p ~rs g in
        if json then
          print_endline
            (Prbp.Wire.encode_frontier
               (Prbp.Wire.frontier_of ~family:(family_label family)
                  ~with_moves:with_strategy ~dag:g f))
        else begin
          Format.printf "%s frontier of %s (model %s):@."
            (F.game_label game ~p) (family_label family) f.F.model;
          List.iter
            (fun (pt : F.point) ->
              let itv lo = function
                | Some hi when hi = lo -> Printf.sprintf "%d" lo
                | Some hi -> Printf.sprintf "[%d, %d]" lo hi
                | None -> Printf.sprintf ">= %d" lo
              in
              Format.printf
                "  r = %-3d comm %-10s time %-10s %-9s %s%s%s@." pt.F.r
                (itv pt.F.comm_lower pt.F.comm_upper)
                (itv pt.F.time_lower pt.F.time_upper)
                (match pt.F.status with
                | `Exact -> "exact"
                | `Bracketed -> "bracketed")
                pt.F.source
                (if pt.F.verified then ", verified" else "")
                (if pt.F.dominated then ", dominated" else ""))
            f.F.points;
          if f.F.infeasible_rs <> [] then
            Format.printf "  infeasible at r = %s@."
              (String.concat ", " (List.map string_of_int f.F.infeasible_rs));
          Format.printf "front: %d of %d points%s@."
            (List.length (F.front f))
            (List.length f.F.points)
            (if f.F.exhausted then " (budget exhausted: intervals open)"
             else "")
        end;
        if f.F.exhausted then exit_bounded else 0
  in
  let parse_multi_game s =
    let bad () =
      Error
        (`Msg
          (Printf.sprintf
             "unknown multiprocessor game %S (try multi-rbp:P, multi-prbp:P)"
             s))
    in
    match String.split_on_char ':' s with
    | [ "multi-rbp"; p ] -> (
        match int_of_string_opt p with
        | Some p when p >= 1 -> Ok (Prbp.Frontier.Frontier.Rbp_mc, p)
        | _ -> bad ())
    | [ "multi-prbp"; p ] -> (
        match int_of_string_opt p with
        | Some p when p >= 1 -> Ok (Prbp.Frontier.Frontier.Prbp_mc, p)
        | _ -> bad ())
    | _ -> bad ()
  in
  let multi_game_conv =
    Arg.conv
      ( parse_multi_game,
        fun ppf (g, p) ->
          Fmt.string ppf (Prbp.Frontier.Frontier.game_label g ~p) )
  in
  let fgame =
    Arg.(
      value
      & opt multi_game_conv (Prbp.Frontier.Frontier.Prbp_mc, 2)
      & info [ "g"; "game" ] ~docv:"GAME"
          ~doc:
            "Multiprocessor game to sweep: $(b,multi-rbp:P) or \
             $(b,multi-prbp:P) with $(i,P) processors.")
  in
  let rs =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4 ]
      & info [ "r" ] ~docv:"R1,R2,..."
          ~doc:"Comma-separated per-processor capacities to sweep.")
  in
  let comm_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "comm-cap" ] ~docv:"C"
          ~doc:
            "Reverse mode: binary-search the least capacity whose certified \
             communication optimum is at most $(docv), instead of sweeping.")
  in
  let r_max =
    Arg.(
      value
      & opt (some int) None
      & info [ "r-max" ] ~docv:"N"
          ~doc:
            "With $(b,--comm-cap): cap the capacity search (default: the \
             node count).")
  in
  let max_states =
    Arg.(
      value & opt int 5_000_000
      & info [ "max-states" ] ~doc:"State budget shared by every probe.")
  in
  let deadline =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "deadline" ] ~docv:"DUR"
          ~doc:
            "Wall-clock budget for the whole sweep, split across the \
             capacities still to run.  Past it, open points keep certified \
             intervals and the command exits 10.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Parallel search domains per exact probe.")
  in
  let rules =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "rules" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated lower-bound rule names for bracketed points \
             (default: every registered rule).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the wire-schema frontier record on stdout.")
  in
  let with_strategy =
    Arg.(
      value & flag
      & info [ "strategy" ]
          ~doc:"With $(b,--json): embed each point's witness strategy.")
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:
         "Certified time/communication/memory trade-off frontiers for the \
          multiprocessor games: sweep per-processor capacities, minimizing \
          communication at each (exactly in reach of the exact engine, by \
          certified bracket beyond), price witnesses through the unit cost \
          model, and report the certified Pareto front.  Exits 10 when the \
          budget left intervals open, 0 when every point settled.")
    Term.(
      const run $ family_arg $ fgame $ rs $ comm_cap $ r_max $ max_states
      $ deadline $ jobs $ rules $ json $ with_strategy $ obs_args)

let trace_cmd =
  let run family r game =
    let g = build family in
    let show_summary render t =
      print_string (render t);
      print_newline ()
    in
    let rbp_trace () =
      let moves = Prbp.Heuristic.rbp ~r g in
      match Prbp.Trace.of_rbp (Prbp.Rbp.config ~r ()) g moves with
      | Ok t ->
          Format.printf "RBP heuristic trace: %s@." (Prbp.Trace.summary t);
          show_summary Prbp.Trace.occupancy t
      | Error e -> Format.printf "RBP trace failed: %s@." e
    in
    let prbp_trace () =
      let moves = Prbp.Heuristic.prbp_best ~r g in
      match Prbp.Trace.of_prbp (Prbp.Prbp_game.config ~r ()) g moves with
      | Ok t ->
          Format.printf "PRBP heuristic trace: %s@." (Prbp.Trace.summary t);
          show_summary Prbp.Trace.occupancy t
      | Error e -> Format.printf "PRBP trace failed: %s@." e
    in
    match game with
    | `Rbp -> rbp_trace ()
    | `Prbp -> prbp_trace ()
    | `Both ->
        rbp_trace ();
        prbp_trace ()
    | `Black | `Multi _ ->
        Format.printf "trace: only the rbp/prbp games have heuristic traces@."
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a heuristic pebbling and draw its cache occupancy.")
    (ok Term.(const run $ family_arg $ r_arg $ game_arg))

let export_cmd =
  let run family output =
    let g = build family in
    match output with
    | None -> print_string (Prbp.Serialize.to_string g)
    | Some path ->
        Prbp.Serialize.to_file path g;
        Format.printf "wrote %s@." path
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Serialize a family to the plain-text DAG format (load back \
             with --family file:PATH).")
    (ok Term.(const run $ family_arg $ output))

let analyze_cmd =
  let run family =
    let g = build family in
    Format.printf "%a@." Prbp.Dag.pp g;
    Format.printf "trivial cost: %d@." (Prbp.Dag.trivial_cost g);
    (try
       Format.printf "black pebbling number: %d (with sliding: %d)@."
         (Prbp.Black.number g)
         (Prbp.Black.number ~sliding:true g)
     with Prbp.Black.Too_large _ | Invalid_argument _ ->
       Format.printf "black pebbling number: (too large for exact search)@.");
    let show name = function
      | Some x -> Format.printf "%s = %d@." name x
      | None -> Format.printf "%s: not found within r <= n@." name
    in
    Format.printf "feasibility: RBP needs r >= %d, PRBP r >= %d@."
      (Prbp.Thresholds.rbp_feasible_r g)
      (Prbp.Thresholds.prbp_feasible_r g);
    show "r*_RBP  (least r at trivial cost)" (Prbp.Thresholds.rbp_trivial_r g);
    show "r*_PRBP (least r at trivial cost)" (Prbp.Thresholds.prbp_trivial_r g)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Exact memory analysis: black pebbling number and trivial-cost           cache thresholds (small DAGs).")
    (ok Term.(const run $ family_arg))

let status_cmd =
  (* a deliberately tiny HTTP/1.1 GET client over the unix stdlib: the
     daemon closes the connection after one response, so "read to EOF,
     split at the header/body boundary" is the whole protocol *)
  let http_get addr path =
    let domain =
      match addr with
      | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
      | Unix.ADDR_INET _ -> Unix.PF_INET
    in
    let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect sock addr;
        let req =
          Printf.sprintf
            "GET %s HTTP/1.1\r\nhost: prbpd\r\nconnection: close\r\n\r\n" path
        in
        let _ = Unix.write_substring sock req 0 (String.length req) in
        let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read sock chunk 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
        in
        drain ();
        let raw = Buffer.contents buf in
        let boundary =
          let n = String.length raw in
          let rec find i =
            if i + 4 > n then None
            else if String.sub raw i 4 = "\r\n\r\n" then Some i
            else find (i + 1)
          in
          find 0
        in
        match boundary with
        | None -> Error "malformed response (no header boundary)"
        | Some i ->
            let head = String.sub raw 0 i in
            let body = String.sub raw (i + 4) (String.length raw - i - 4) in
            if String.length head >= 12 && String.sub head 9 3 = "200" then
              Ok body
            else
              Error
                (Printf.sprintf "daemon answered %s"
                   (String.sub head 9 (min 3 (String.length head - 9)))))
  in
  let run host port unix_socket json =
    let addr =
      match unix_socket with
      | Some path -> Unix.ADDR_UNIX path
      | None -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    in
    match http_get addr "/v1/status" with
    | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "status: cannot reach the daemon: %s@."
          (Unix.error_message e);
        1
    | Error e ->
        Format.eprintf "status: %s@." e;
        1
    | Ok body -> (
        if json then begin
          print_endline body;
          0
        end
        else
          match Prbp.Wire.decode_status body with
          | Error e ->
              Format.eprintf "status: malformed body: %s@." e;
              1
          | Ok st ->
              Format.printf
                "prbpd up %.1fs: %d workers, %d in flight, %d queued@."
                st.Prbp.Wire.uptime_s st.Prbp.Wire.workers
                st.Prbp.Wire.in_flight st.Prbp.Wire.queued;
              Format.printf
                "requests: %d total; cache %d hits / %d misses@."
                st.Prbp.Wire.requests_total st.Prbp.Wire.cache_hits
                st.Prbp.Wire.cache_misses;
              List.iter
                (fun (rs : Prbp.Wire.route_stat) ->
                  if rs.Prbp.Wire.count > 0 then
                    Format.printf "  %-14s %5d reqs  %8.3fs total@."
                      rs.Prbp.Wire.route rs.Prbp.Wire.count
                      rs.Prbp.Wire.sum_s)
                st.Prbp.Wire.routes;
              let show_req tag (q : Prbp.Wire.req) =
                Format.printf
                  "  %s trace=%d %-14s %d %-4s %7.3fs %s@." tag
                  q.Prbp.Wire.trace_id q.Prbp.Wire.route q.Prbp.Wire.status
                  q.Prbp.Wire.cache q.Prbp.Wire.dur_s q.Prbp.Wire.outcome
              in
              if st.Prbp.Wire.recent <> [] then
                Format.printf "recent (%d seen, capacity %d):@."
                  st.Prbp.Wire.flight_seen st.Prbp.Wire.flight_capacity;
              List.iter (show_req " ") st.Prbp.Wire.recent;
              if st.Prbp.Wire.slowest <> [] then
                Format.printf "slowest (full traces retained):@.";
              List.iter (show_req "*") st.Prbp.Wire.slowest;
              0)
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.")
  in
  let port =
    Arg.(
      value & opt int 8367
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Daemon TCP port.")
  in
  let unix_socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix-socket" ] ~docv:"PATH"
          ~doc:"Connect over a unix-domain socket instead of TCP.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw /v1/status JSON body.")
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Query a running prbpd's /v1/status: uptime, in-flight and \
          queued requests, cache hit ratio, per-route latency, and the \
          flight recorder's recent and slowest requests.")
    Term.(const run $ host $ port $ unix_socket $ json)

let () =
  let doc = "partial-computing red-blue pebble game toolkit" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "pebble_cli" ~doc)
          [
            info_cmd; solve_cmd; bracket_cmd; frontier_cmd; strategy_cmd;
            partition_cmd; dot_cmd; trace_cmd; export_cmd; analyze_cmd;
            status_cmd;
          ]))

(* prbpd: the anytime pebbling daemon.  Thin cmdliner shell around
   Prbp.Serve.Server — flags map one-to-one onto the server config;
   SIGTERM/SIGINT set the stop flag the accept loop polls, so shutdown
   drains in-flight solves before exiting. *)

open Cmdliner

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let serve addr workers queue cache_capacity max_deadline max_states
    flight_capacity metrics_out profile_out verbose =
  let cfg =
    {
      Prbp.Serve.Server.default_config with
      addr;
      workers;
      queue;
      cache_capacity;
      max_deadline_ms = max_deadline;
      max_states;
    }
  in
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  (* a client that disconnects mid-response must not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match flight_capacity with
  | Some n -> Prbp.Obs.Flight.set_capacity n
  | None -> ());
  if verbose then begin
    (match addr with
    | Prbp.Serve.Server.Tcp (iface, port) ->
        Format.eprintf "prbpd: listening on %s:%d@." iface port
    | Prbp.Serve.Server.Unix_path path ->
        Format.eprintf "prbpd: listening on %s@." path);
    Format.eprintf "prbpd: %d workers, queue %d, cache %d@." workers queue
      cache_capacity
  end;
  Prbp.Serve.Server.run ~stop cfg;
  (* [run] only returns on a clean SIGTERM/SIGINT shutdown, after
     in-flight requests drained — the snapshots below are complete *)
  (match metrics_out with
  | Some path ->
      write_file path (Prbp.Obs.Metrics.to_prometheus ());
      if verbose then Format.eprintf "prbpd: metrics written to %s@." path
  | None -> ());
  (match profile_out with
  | Some path ->
      write_file path (Prbp.Obs.Flight.to_chrome ());
      if verbose then
        Format.eprintf "prbpd: flight-recorder trace written to %s@." path
  | None -> ());
  if verbose then Format.eprintf "prbpd: stopped@.";
  0

let addr_arg =
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Listen on TCP $(docv) (loopback).")
  in
  let iface =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "interface" ] ~docv:"ADDR"
          ~doc:"Interface to bind with $(b,--port).")
  in
  let unix_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix-socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a unix-domain socket at $(docv) instead of TCP; \
             takes precedence over $(b,--port).")
  in
  let resolve unix_path iface port =
    match (unix_path, port) with
    | Some path, _ -> Prbp.Serve.Server.Unix_path path
    | None, Some p -> Prbp.Serve.Server.Tcp (iface, p)
    | None, None ->
        (match Prbp.Serve.Server.default_config.addr with
        | Prbp.Serve.Server.Tcp (_, p) -> Prbp.Serve.Server.Tcp (iface, p)
        | a -> a)
  in
  Term.(const resolve $ unix_path $ iface $ tcp)

let workers_arg =
  Arg.(
    value & opt int Prbp.Serve.Server.default_config.workers
    & info [ "j"; "workers" ] ~docv:"N" ~doc:"Solver worker domains.")

let queue_arg =
  Arg.(
    value & opt int Prbp.Serve.Server.default_config.queue
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission-queue depth beyond the workers; past it requests are \
           refused with 503.")

let cache_arg =
  Arg.(
    value & opt int Prbp.Serve.Server.default_config.cache_capacity
    & info [ "cache" ] ~docv:"N"
        ~doc:"Certificate-cache capacity (LRU entries).")

let deadline_arg =
  Arg.(
    value & opt int Prbp.Serve.Server.default_config.max_deadline_ms
    & info [ "max-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Server-wide cap on a request's wall-clock budget, milliseconds; \
           over-budget solves return certified bounded intervals.")

let max_states_arg =
  Arg.(
    value & opt int Prbp.Serve.Server.default_config.max_states
    & info [ "max-states" ] ~docv:"N" ~doc:"State cap per exact solve.")

let flight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-recorder" ] ~docv:"N"
        ~doc:
          "Keep the last $(docv) request summaries (plus full span            traces of the slowest few) in the in-memory flight            recorder served at /v1/status.  Default 64.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "On clean shutdown (SIGTERM/SIGINT), write the final            Prometheus metrics snapshot to $(docv).")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "On clean shutdown, write the flight recorder's slowest            requests as a Chrome trace (chrome://tracing, Perfetto)            to $(docv).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log startup/shutdown.")

let cmd =
  Cmd.v
    (Cmd.info "prbpd" ~version:"%%VERSION%%"
       ~doc:
         "Anytime pebbling service: exact solves, certified brackets and \
          multiprocessor trade-off frontiers over a versioned JSON wire, \
          with admission control and a content-addressed certificate \
          cache."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "POST wire-schema requests to /v1/solve, /v1/bracket or \
              /v1/frontier; GET /metrics for Prometheus text, /healthz \
              for liveness (wire + bench schema versions, uptime) and \
              /v1/status for a live snapshot (in-flight and queued \
              requests, cache hit/miss totals, per-route latency \
              histograms, the flight recorder's recent and slowest \
              requests).  Budget-truncated solves return certified \
              [lower, upper] intervals instead of errors; /v1/frontier \
              sweeps the requested capacities ($(b,rs)) of a \
              multiprocessor game into an anytime certified Pareto \
              front, every point re-verified before it is served.";
         ])
    Term.(
      const serve $ addr_arg $ workers_arg $ queue_arg $ cache_arg
      $ deadline_arg $ max_states_arg $ flight_arg $ metrics_out_arg
      $ profile_out_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)

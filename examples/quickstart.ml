(* Quickstart: build a DAG, pebble it in both games, compare optima.

   Run with:  dune exec examples/quickstart.exe

   This walks the Figure-1 example of the paper (Proposition 4.2):
   partial computations drop the optimal I/O cost from 3 to 2. *)

let () =
  (* 1. Build a computational DAG.  Nodes are ints; edges mean "output
     of u is an input of v".  Generators for all the paper's families
     live under Prbp.Graphs; you can also build your own: *)
  let g, ids = Prbp.Graphs.Fig1.full () in
  Format.printf "The Figure-1 DAG: %a@.@." Prbp.Dag.pp g;

  (* 2. Ask the exact solvers for the optimal I/O costs at r = 4.
     [solve] returns an outcome: [Optimal] here (this instance is tiny);
     budget-truncated solves would return a certified [Bounded]
     interval instead — see docs/ALGORITHMS.md. *)
  let r = 4 in
  let cost what outcome =
    match Prbp.Solver.optimal_cost outcome with
    | Some c -> c
    | None -> failwith (what ^ ": expected an optimal solve")
  in
  let opt_rbp = cost "rbp" (Prbp.Exact_rbp.solve (Prbp.Rbp.config ~r ()) g) in
  let opt_prbp =
    cost "prbp" (Prbp.Exact_prbp.solve (Prbp.Prbp_game.config ~r ()) g)
  in
  Format.printf "with %d red pebbles: OPT_RBP = %d, OPT_PRBP = %d@.@." r
    opt_rbp opt_prbp;

  (* 3. Replay the paper's hand-written strategies through the
     rule-checking engines; an illegal move or a wrong cost would be
     reported, so the proof of Proposition 4.2 is machine-checked. *)
  (match Prbp.Rbp.check (Prbp.Rbp.config ~r ()) g (Prbp.Strategies.fig1_rbp ids) with
  | Ok c -> Format.printf "Appendix A.1 RBP strategy replays at cost %d@." c
  | Error e -> Format.printf "RBP strategy rejected: %s@." e);
  (match
     Prbp.Prbp_game.check
       (Prbp.Prbp_game.config ~r ())
       g
       (Prbp.Strategies.fig1_prbp ids)
   with
  | Ok c -> Format.printf "Appendix A.1 PRBP strategy replays at cost %d@.@." c
  | Error e -> Format.printf "PRBP strategy rejected: %s@." e);

  (* 4. Watch a strategy step by step. *)
  let eng = Prbp.Prbp_game.start (Prbp.Prbp_game.config ~r ()) g in
  Format.printf "First five moves of the PRBP strategy:@.";
  List.iteri
    (fun i m ->
      if i < 5 then begin
        (match Prbp.Prbp_game.apply eng m with
        | Ok () -> ()
        | Error e -> failwith e);
        Format.printf "  %-18s reds in cache: %d@."
          (Prbp.Move.P.to_string m)
          (Prbp.Prbp_game.red_count eng)
      end)
    (Prbp.Strategies.fig1_prbp ids);

  (* 5. For bigger DAGs, the heuristic pebblers give valid strategies
     (upper bounds) at any scale; PRBP needs only r = 2. *)
  let big = Prbp.Graphs.Random_dag.make ~seed:42 ~layers:10 ~width:12 () in
  Format.printf "@.A random %d-node DAG pebbles in PRBP at r=2 with cost %d@."
    (Prbp.Dag.n_nodes big)
    (Prbp.Heuristic.prbp_cost ~r:2 big);
  Format.printf "(its trivial lower bound is %d)@." (Prbp.Dag.trivial_cost big)

(* Section 4.2.2 / Appendix A.2: binary and k-ary in-trees at r = k+1.

   Run with:  dune exec examples/tree_study.exe

   The paper derives closed forms for the optimal costs:
     OPT_RBP  = k^d + 2·k^(d-1) - 1
     OPT_PRBP = k^d + 2·k^(d-k) - 1
   Here we replay the constructive strategies for both games (their
   costs must match the formulas move for move), cross-check against
   exhaustive search where feasible, and display how the PRBP advantage
   grows with depth — almost a factor k^(k-1) on the non-trivial I/O. *)

(* These instances are small, so every solve must come back Optimal. *)
let cost what outcome =
  match Prbp.Solver.optimal_cost outcome with
  | Some c -> c
  | None -> failwith (what ^ ": expected an optimal solve")

let opt_rbp cfg g = cost "rbp" (Prbp.Exact_rbp.solve cfg g)

let opt_prbp cfg g = cost "prbp" (Prbp.Exact_prbp.solve cfg g)

let replay_tree ~k ~depth =
  let t = Prbp.Graphs.Tree.make ~k ~depth in
  let g = t.Prbp.Graphs.Tree.dag in
  let r = k + 1 in
  let rbp =
    match Prbp.Rbp.check (Prbp.Rbp.config ~r ()) g (Prbp.Strategies.tree_rbp t) with
    | Ok c -> c
    | Error e -> failwith e
  in
  let prbp =
    match
      Prbp.Prbp_game.check
        (Prbp.Prbp_game.config ~r ())
        g
        (Prbp.Strategies.tree_prbp t)
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  (g, rbp, prbp)

let () =
  Format.printf "Binary trees at r = 3 (Proposition 4.5):@.@.";
  let tbl =
    Prbp.Table.make
      ~header:[ "depth"; "nodes"; "RBP"; "PRBP"; "formula RBP"; "formula PRBP" ]
  in
  List.iter
    (fun depth ->
      let g, rbp, prbp = replay_tree ~k:2 ~depth in
      Prbp.Table.add_rowf tbl "%d|%d|%d|%d|%d|%d" depth (Prbp.Dag.n_nodes g)
        rbp prbp
        (Prbp.Graphs.Tree.rbp_opt ~k:2 ~depth)
        (Prbp.Graphs.Tree.prbp_opt ~k:2 ~depth))
    [ 2; 3; 4; 5; 6; 7; 8 ];
  Format.printf "%s@." (Prbp.Table.render tbl);

  (* cross-check the smallest case against exhaustive search *)
  let t = Prbp.Graphs.Tree.make ~k:2 ~depth:3 in
  let g = t.Prbp.Graphs.Tree.dag in
  Format.printf
    "exhaustive check at depth 3: OPT_RBP = %d, OPT_PRBP = %d@.@."
    (opt_rbp (Prbp.Rbp.config ~r:3 ()) g)
    (opt_prbp (Prbp.Prbp_game.config ~r:3 ()) g);

  Format.printf "k-ary trees at r = k+1 (Appendix A.2):@.@.";
  let tbl2 =
    Prbp.Table.make
      ~header:[ "k"; "depth"; "RBP"; "PRBP"; "non-trivial RBP"; "non-trivial PRBP" ]
  in
  List.iter
    (fun (k, depth) ->
      let g, rbp, prbp = replay_tree ~k ~depth in
      let trivial = Prbp.Dag.trivial_cost g in
      Prbp.Table.add_rowf tbl2 "%d|%d|%d|%d|%d|%d" k depth rbp prbp
        (rbp - trivial) (prbp - trivial))
    [ (2, 5); (3, 4); (3, 5); (4, 5); (5, 6) ];
  Format.printf "%s@." (Prbp.Table.render tbl2);
  Format.printf
    "With partial computations the bottom k+1 levels aggregate for\n\
     free, so the non-trivial I/O shrinks by almost a factor k^(k-1)\n\
     (Appendix A.2).  Sliding pebbles (Appendix B.2) recover this only\n\
     for k = 2:@.@.";

  (* sliding comparison on a ternary tree *)
  let t3 = Prbp.Graphs.Tree.make ~k:3 ~depth:2 in
  let g3 = t3.Prbp.Graphs.Tree.dag in
  Format.printf
    "ternary depth-2 tree at r = 4: sliding RBP = %d vs PRBP = %d@."
    (opt_rbp (Prbp.Rbp.config ~r:4 ~sliding:true ()) g3)
    (opt_prbp (Prbp.Prbp_game.config ~r:4 ()) g3)

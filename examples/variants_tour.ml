(* Appendix B as an interactive tour: how each model variant changes
   the optimal cost of the same small DAG.

   Run with:  dune exec examples/variants_tour.exe

   Everything below is computed by exhaustive search, so every number
   is the true optimum of its variant. *)

(* These instances are small, so every solve must come back Optimal. *)
let cost what outcome =
  match Prbp.Solver.optimal_cost outcome with
  | Some c -> c
  | None -> failwith (what ^ ": expected an optimal solve")

let opt_rbp cfg g = cost "rbp" (Prbp.Exact_rbp.solve cfg g)

let opt_prbp cfg g = cost "prbp" (Prbp.Exact_prbp.solve cfg g)

let () =
  let g, i = Prbp.Graphs.Fig1.full () in
  let r = 4 in
  let rbp ?(one_shot = true) ?(sliding = false) ?(no_delete = false) () =
    opt_rbp (Prbp.Rbp.config ~one_shot ~sliding ~no_delete ~r ()) g
  in
  let prbp ?(recompute = false) () =
    opt_prbp
      (Prbp.Prbp_game.config ~one_shot:(not recompute) ~recompute ~r ())
      g
  in
  Format.printf "The Figure-1 DAG under every model variant (r = %d):@.@." r;
  let t = Prbp.Table.make ~header:[ "variant"; "OPT"; "appendix" ] in
  Prbp.Table.add_rowf t "one-shot RBP (the base game)|%d|Sec. 1" (rbp ());
  Prbp.Table.add_rowf t "RBP + re-computation|%d|B.1" (rbp ~one_shot:false ());
  Prbp.Table.add_rowf t "RBP + sliding pebbles|%d|B.2" (rbp ~sliding:true ());
  Prbp.Table.add_rowf t "RBP, no deletion|%d|B.4" (rbp ~no_delete:true ());
  Prbp.Table.add_rowf t "PRBP (the paper's game)|%d|Sec. 3" (prbp ());
  Prbp.Table.add_rowf t "PRBP + re-computation (CLEAR)|%d|B.1"
    (prbp ~recompute:true ());
  Format.printf "%s@." (Prbp.Table.render t);
  Format.printf
    "PRBP reaches the trivial cost of 2; re-computation and sliding each\n\
     close the one-shot RBP gap on this DAG by different means (B.1,\n\
     B.2), and both are defeated by the small modifications the paper\n\
     describes — which leave PRBP untouched:@.@.";

  (* the B.1 z-layer and B.2 w0 counter-modifications *)
  let z1 = 10 and z2 = 11 in
  let with_z =
    Prbp.Dag.make ~n:12
      [
        (i.Prbp.Graphs.Fig1.u0, z1); (i.u0, z2); (z1, i.u1); (z2, i.u1);
        (z1, i.u2); (z2, i.u2); (i.u1, i.w1); (i.u1, i.w2); (i.u1, i.w4);
        (i.w1, i.w3); (i.w2, i.w3); (i.w3, i.w4); (i.w4, i.v1); (i.w4, i.v2);
        (i.u2, i.v1); (i.u2, i.v2); (i.v1, i.v0); (i.v2, i.v0);
      ]
  in
  let w0 = 10 in
  let with_w0 =
    Prbp.Dag.make ~n:11
      [
        (i.u0, i.u1); (i.u0, i.u2); (i.u1, i.w1); (i.u1, i.w2); (i.u1, i.w4);
        (i.w1, i.w3); (i.w2, i.w3); (i.w3, i.w4); (i.w4, i.v1); (i.w4, i.v2);
        (i.u2, i.v1); (i.u2, i.v2); (i.v1, i.v0); (i.v2, i.v0); (i.u1, w0);
        (w0, i.w3);
      ]
  in
  let t2 = Prbp.Table.make ~header:[ "DAG"; "variant"; "OPT" ] in
  Prbp.Table.add_rowf t2 "fig1 + z-layer|RBP + re-computation|%d"
    (opt_rbp (Prbp.Rbp.config ~one_shot:false ~r ()) with_z);
  Prbp.Table.add_rowf t2 "fig1 + z-layer|PRBP|%d"
    (opt_prbp (Prbp.Prbp_game.config ~r ()) with_z);
  Prbp.Table.add_rowf t2 "fig1 + w0|RBP + sliding|%d"
    (opt_rbp (Prbp.Rbp.config ~sliding:true ~r ()) with_w0);
  Prbp.Table.add_rowf t2 "fig1 + w0|PRBP|%d"
    (opt_prbp (Prbp.Prbp_game.config ~r ()) with_w0);
  Format.printf "%s@." (Prbp.Table.render t2);

  (* compute costs (B.3) on one strategy *)
  Format.printf
    "Appendix B.3 (compute costs, ε = 0.1) on the A.1 strategies:@.@.";
  let eps = 0.1 in
  let tr =
    Prbp.Rbp.run_exn
      (Prbp.Rbp.config ~compute_cost:eps ~r ())
      g
      (Prbp.Strategies.fig1_rbp i)
  in
  let tp_edge =
    Prbp.Prbp_game.run_exn
      (Prbp.Prbp_game.config ~compute_cost:eps ~r ())
      g
      (Prbp.Strategies.fig1_prbp i)
  in
  let tp_norm =
    Prbp.Prbp_game.run_exn
      (Prbp.Prbp_game.config ~compute_cost:eps ~normalized_cost:true ~r ())
      g
      (Prbp.Strategies.fig1_prbp i)
  in
  Format.printf
    "  RBP total: %.2f (9 node computes)@.  PRBP per-edge: %.2f (14 edge \
     marks — not comparable)@.  PRBP normalized: %.2f (ε/deg_in per mark — \
     comparable again)@."
    (Prbp.Rbp.total_cost tr)
    (Prbp.Prbp_game.total_cost tp_edge)
    (Prbp.Prbp_game.total_cost tp_norm)

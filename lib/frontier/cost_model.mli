(** Per-move cost vectors for the multiprocessor games.

    The exact engines optimize one scalar — total I/O.  A cost model
    widens each move into a vector of (compute time, communication
    volume, resident memory), the three axes of the
    Böhnlein–Papp–Yzelman trade-off; the {!Frontier} enumerator sweeps
    ε-constraints over these axes and this module prices the points.

    A model is pluggable the way a [GAME] is: callers supply the
    per-move pricing functions.  A scalarization whose per-move values
    stay in [{0, 1}] is exactly an {!Prbp_solver.Engine.Make} 0-1 edge
    cost — the default model's {!comm_only} weights recover precisely
    the objective {!Prbp_solver.Exact_multi} optimizes, which is what
    lets the enumerator reuse the exact engines unchanged.  Richer
    scalarizations are evaluated by {!eval_rbp}/{!eval_prbp} replay
    and optimized through the ε-constraint sweep instead. *)

type vec = {
  time : int;  (** compute/transfer time units the move occupies *)
  comm : int;  (** words moved between fast and slow memory *)
  mem : int;  (** resident fast-memory capacity the move requires *)
}

type t = {
  name : string;
  rbp_move : r:int -> Prbp_pebble.Multi.Move.rbp -> vec;
  prbp_move : r:int -> Prbp_pebble.Multi.Move.prbp -> vec;
}

val unit : t
(** The canonical model: a compute costs one time unit and no
    communication, a load/save costs one time unit and one word, a
    delete is free; every move requires the configured capacity [r].
    Under {!comm_only} weights this scalarizes to exactly the total
    I/O the exact engines minimize. *)

val make : ?name:string -> compute_time:int -> io_time:int -> unit -> t
(** A uniform model with the given per-compute and per-I/O times. *)

type weights = { w_time : int; w_comm : int; w_mem : int }

val comm_only : weights
(** [{ w_time = 0; w_comm = 1; w_mem = 0 }]. *)

val scalarize : weights -> vec -> int

(** {1 Replay pricing} *)

type eval = {
  comm : int;
      (** total communication volume as priced by the model (equal to
          the checker's I/O cost for any model pricing one word per
          I/O move, like {!unit}) *)
  makespan : int;
      (** max over processors of that processor's summed move times —
          a volume proxy for schedule length that ignores
          dependency-induced idling *)
  per_proc_time : int array;
  peak_mem : int;
      (** peak per-processor fast-memory occupancy over the replay *)
}

val eval_rbp :
  t ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Multi.Move.rbp list ->
  (eval, string) result
(** Validate the strategy through {!Prbp_pebble.Multi.R.check}, then
    replay it pricing every move: each move's [time] accrues to its
    acting processor, [comm] sums globally.  [Error] iff the checker
    rejects the strategy — a priced cost is always a certified cost. *)

val eval_prbp :
  t ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Multi.Move.prbp list ->
  (eval, string) result

(** {1 Certified makespan floors} *)

val compute_work : t -> game:[ `Rbp | `Prbp ] -> Prbp_dag.Dag.t -> int
(** The compute time every complete one-shot pebbling must spend:
    each non-source node (RBP) / each edge (PRBP) is computed at least
    once. *)

val critical_path : t -> game:[ `Rbp | `Prbp ] -> Prbp_dag.Dag.t -> int
(** The longest dependency chain in compute time (for PRBP every
    in-edge of a node updates the same exclusive partial value, so a
    node's weight is the sum of its in-edge compute times).  A floor
    on the {e dependency-respecting} schedule length no processor
    count overcomes — reported for context, but deliberately {e not}
    folded into {!makespan_lower}: the volume-proxy makespan of a
    strategy that migrates a chain across processors can legitimately
    undercut it. *)

val makespan_lower :
  t ->
  game:[ `Rbp | `Prbp ] ->
  p:int ->
  comm_lower:int ->
  Prbp_dag.Dag.t ->
  int
(** A certified lower bound on the (volume-proxy) makespan of {e every}
    complete [p]-processor pebbling, given a certified lower bound
    [comm_lower] on its communication volume:
    [⌈(compute_work + t_io·comm_lower) / p⌉], where [t_io] is the
    cheapest per-I/O time the model prices — the summed per-processor
    times total at least the mandatory compute work plus the mandatory
    I/O time, and the maximum is at least the average. *)

module Dag = Prbp_dag.Dag
module Solver = Prbp_solver.Solver
module Exact_multi = Prbp_solver.Exact_multi
module Multi = Prbp_pebble.Multi
module Multi_bounds = Prbp_bounds.Multi_bounds
module Lower = Prbp_bounds.Lower
module Clock = Prbp_obs.Clock

type game = Rbp_mc | Prbp_mc

let game_label game ~p =
  match game with
  | Rbp_mc -> Printf.sprintf "multi-rbp:%d" p
  | Prbp_mc -> Printf.sprintf "multi-prbp:%d" p

let cm_game = function Rbp_mc -> `Rbp | Prbp_mc -> `Prbp

type point = {
  p : int;
  r : int;
  comm_lower : int;
  comm_upper : int option;
  time_lower : int;
  time_upper : int option;
  status : [ `Exact | `Bracketed ];
  source : string;
  verified : bool;
  settled : bool;
  dominated : bool;
  witness : Multi_bounds.moves option;
  curve : Solver.Convergence.curve;
}

type t = {
  game : game;
  p : int;
  model : string;
  points : point list;
  infeasible_rs : int list;
  exhausted : bool;
  elapsed_s : float;
}

let front t = List.filter (fun pt -> not pt.dominated) t.points
let open_points t = List.filter (fun pt -> not pt.settled) t.points

(* One probe of the communication ε-constraint at a fixed capacity. *)
type interval = {
  i_lower : int;
  i_upper : int option;
  i_status : [ `Exact | `Bracketed ];
  i_source : string;
  i_witness : Multi_bounds.moves option;
  i_curve : Solver.Convergence.curve;
      (* how the probe's communication interval tightened, probe-relative
         seconds *)
}

type probe = Infeasible | Interval of interval

(* Exact_multi's hard limits; past them frontier points come from the
   pooled-capacity brackets instead. *)
let exact_reach game ~p g =
  p <= 8 && Dag.n_nodes g <= 62 && (game = Rbp_mc || Dag.n_edges g <= 62)

let exact_probe ~budget ?jobs game ~p ~r g =
  let cfg = Multi.config ~p ~r () in
  let conv, sink = Solver.Convergence.recorder () in
  let curve () = Solver.Convergence.curve conv in
  match game with
  | Rbp_mc -> (
      match
        Exact_multi.rbp_solve ~budget ~telemetry:sink ?jobs ~want_strategy:true
          cfg g
      with
      | Solver.Optimal { cost; strategy; _ } ->
          Interval
            {
              i_lower = cost;
              i_upper = Some cost;
              i_status = `Exact;
              i_source = "exact";
              i_witness =
                Option.map (fun mv -> Multi_bounds.Rbp_mc_moves mv) strategy;
              i_curve = curve ();
            }
      | Solver.Bounded { lower; upper; incumbent_strategy; _ } ->
          Interval
            {
              i_lower = lower;
              i_upper = upper;
              i_status = `Bracketed;
              i_source = "exact-truncated";
              i_witness =
                Option.map
                  (fun mv -> Multi_bounds.Rbp_mc_moves mv)
                  incumbent_strategy;
              i_curve = curve ();
            }
      | Solver.Unsolvable _ -> Infeasible)
  | Prbp_mc -> (
      match
        Exact_multi.prbp_solve ~budget ~telemetry:sink ?jobs
          ~want_strategy:true cfg g
      with
      | Solver.Optimal { cost; strategy; _ } ->
          Interval
            {
              i_lower = cost;
              i_upper = Some cost;
              i_status = `Exact;
              i_source = "exact";
              i_witness =
                Option.map (fun mv -> Multi_bounds.Prbp_mc_moves mv) strategy;
              i_curve = curve ();
            }
      | Solver.Bounded { lower; upper; incumbent_strategy; _ } ->
          Interval
            {
              i_lower = lower;
              i_upper = upper;
              i_status = `Bracketed;
              i_source = "exact-truncated";
              i_witness =
                Option.map
                  (fun mv -> Multi_bounds.Prbp_mc_moves mv)
                  incumbent_strategy;
              i_curve = curve ();
            }
      | Solver.Unsolvable _ -> Infeasible)

let bracket_probe ~budget ?rules game ~p ~r g =
  let t0 = Clock.now () in
  let res =
    match game with
    | Rbp_mc -> Multi_bounds.rbp ~budget ?rules ~p ~r g
    | Prbp_mc -> Multi_bounds.prbp ~budget ?rules ~p ~r g
  in
  match res with
  | Error _ -> Infeasible
  | Ok b ->
      let lower = b.Multi_bounds.lower.Lower.bound in
      let upper = Some b.Multi_bounds.upper in
      Interval
        {
          i_lower = lower;
          i_upper = upper;
          i_status = `Bracketed;
          i_source = b.Multi_bounds.lower.Lower.rule;
          i_witness = Some b.Multi_bounds.moves;
          (* the pooled-capacity bracket reports once, at the end *)
          i_curve =
            [ { Solver.Convergence.t_s = Clock.elapsed_s t0; lower; upper } ];
        }

let checker_cost cfg g = function
  | Multi_bounds.Rbp_mc_moves mv -> (
      match Multi.R.check cfg g mv with Ok c -> Some c | Error _ -> None)
  | Multi_bounds.Prbp_mc_moves mv -> (
      match Multi.P.check cfg g mv with Ok c -> Some c | Error _ -> None)

let witness_makespan model cfg g = function
  | Multi_bounds.Rbp_mc_moves mv -> (
      match Cost_model.eval_rbp model cfg g mv with
      | Ok e -> Some e.Cost_model.makespan
      | Error _ -> None)
  | Multi_bounds.Prbp_mc_moves mv -> (
      match Cost_model.eval_prbp model cfg g mv with
      | Ok e -> Some e.Cost_model.makespan
      | Error _ -> None)

(* Every certificate is re-checked here, independently of the engine
   or portfolio that produced it: the witness must replay through the
   Prbp_pebble.Multi rule engine at exactly the claimed upper cost. *)
let point_of_probe ~model game ~p ~r g (iv : interval) =
  let cfg = Multi.config ~p ~r () in
  let comm_lower = iv.i_lower in
  let verified, comm_upper, time_upper =
    match iv.i_witness with
    | None -> (false, iv.i_upper, None)
    | Some w -> (
        match checker_cost cfg g w with
        | None -> (false, iv.i_upper, None)
        | Some c ->
            let cu = match iv.i_upper with Some u -> u | None -> c in
            (c = cu, Some cu, witness_makespan model cfg g w))
  in
  let time_lower =
    Cost_model.makespan_lower model ~game:(cm_game game) ~p ~comm_lower g
  in
  let settled = match comm_upper with Some u -> u = comm_lower | None -> false in
  {
    p;
    r;
    comm_lower;
    comm_upper;
    time_lower;
    time_upper;
    status = iv.i_status;
    source = iv.i_source;
    verified;
    settled;
    dominated = false;
    witness = iv.i_witness;
    curve = iv.i_curve;
  }

(* a's witness corner certifiably beats everything achievable at b's
   capacity, with strictly less memory *)
let dominates a b =
  a.r < b.r
  &&
  match (a.comm_upper, a.time_upper) with
  | Some cu, Some tu -> cu <= b.comm_lower && tu <= b.time_lower
  | _ -> false

let mark_dominated points =
  List.map
    (fun b -> { b with dominated = List.exists (fun a -> dominates a b) points })
    points

let ms_elapsed t0 = int_of_float (Clock.elapsed_s t0 *. 1000.)

let run_probe ~budget ?rules ?jobs game ~p ~r g =
  if exact_reach game ~p g then exact_probe ~budget ?jobs game ~p ~r g
  else bracket_probe ~budget ?rules game ~p ~r g

let sweep ?(budget = Solver.Budget.default) ?(model = Cost_model.unit) ?rules
    ?jobs game ~p ~rs g =
  if p < 1 then invalid_arg "Frontier.sweep: p must be >= 1";
  let rs = List.sort_uniq compare rs in
  if rs = [] then invalid_arg "Frontier.sweep: rs must be non-empty";
  if List.exists (fun r -> r < 1) rs then
    invalid_arg "Frontier.sweep: every r must be >= 1";
  let t0 = Clock.now () in
  let total = List.length rs in
  (* one shared budget: split the remaining wall clock evenly over the
     axes still to run, so an axis that settles early donates its
     slack to the rest *)
  let slice idx =
    match budget.Solver.Budget.max_millis with
    | None -> budget
    | Some ms ->
        let left = ms - ms_elapsed t0 in
        let axes_left = max 1 (total - idx) in
        {
          budget with
          Solver.Budget.max_millis = Some (max 1 (left / axes_left));
        }
  in
  let points = ref [] in
  let infeasible = ref [] in
  List.iteri
    (fun idx r ->
      match run_probe ~budget:(slice idx) ?rules ?jobs game ~p ~r g with
      | Infeasible -> infeasible := r :: !infeasible
      | Interval iv ->
          points := point_of_probe ~model game ~p ~r g iv :: !points)
    rs;
  let points = mark_dominated (List.rev !points) in
  {
    game;
    p;
    model = model.Cost_model.name;
    points;
    infeasible_rs = List.rev !infeasible;
    exhausted = List.exists (fun pt -> not pt.settled) points;
    elapsed_s = Clock.elapsed_s t0;
  }

type min_r =
  | Min_r of { r : int; comm : int }
  | Min_r_between of int * int
  | Min_r_infeasible

(* OPT_comm(r) is non-increasing in r (extra capacity never hurts), so
   binary search is sound on certified verdicts; an undecided probe
   poisons only the exactness of the final answer, not its safety. *)
let min_r_for_comm ?(budget = Solver.Budget.default) ?rules ?jobs game ~p
    ~comm_cap ?r_max g =
  if p < 1 then invalid_arg "Frontier.min_r_for_comm: p must be >= 1";
  let r_max =
    match r_max with Some r -> max 1 r | None -> max 1 (Dag.n_nodes g)
  in
  let t0 = Clock.now () in
  (* at most ~log2 r_max probes remain at any moment: halving the
     remaining clock per probe keeps the sum under the budget *)
  let slice () =
    match budget.Solver.Budget.max_millis with
    | None -> budget
    | Some ms ->
        let left = max 1 (ms - ms_elapsed t0) in
        { budget with Solver.Budget.max_millis = Some (max 1 (left / 2)) }
  in
  let best = ref None in
  let lo_cert = ref 1 in
  let settled = ref true in
  let lo = ref 1 in
  let hi = ref r_max in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    match run_probe ~budget:(slice ()) ?rules ?jobs game ~p ~r:mid g with
    | Infeasible ->
        lo_cert := max !lo_cert (mid + 1);
        lo := mid + 1
    | Interval iv -> (
        match iv.i_upper with
        | Some u when u <= comm_cap ->
            best := Some (mid, u);
            hi := mid - 1
        | _ ->
            if iv.i_lower > comm_cap then begin
              lo_cert := max !lo_cert (mid + 1);
              lo := mid + 1
            end
            else begin
              (* the interval straddles the cap: undecided *)
              settled := false;
              lo := mid + 1
            end)
  done;
  match !best with
  | Some (r, comm) ->
      if !settled then Min_r { r; comm } else Min_r_between (!lo_cert, r)
  | None -> if !settled then Min_r_infeasible else Min_r_between (!lo_cert, r_max)

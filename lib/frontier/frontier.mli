(** Anytime certified Pareto frontiers for the multiprocessor games:
    memory (per-processor capacity [r]) versus communication volume
    versus makespan, at a fixed processor count [p].

    The enumerator sweeps the ε-constraint over the memory axis: for
    each requested [r] it minimizes communication — exactly
    ({!Prbp_solver.Exact_multi}) when the instance is in exact reach,
    by certified bracket ({!Prbp_bounds.Multi_bounds}) beyond it — and
    prices the resulting witness through a {!Cost_model} to attach the
    time axis.  All probes run under {e one} shared
    {!Prbp_solver.Solver.Budget}; whatever each probe returns is a
    certified interval, so the sweep is {e anytime}: stopping early
    widens intervals but never invalidates a point.

    {b Certified geometry.}  Each point at capacity [r] carries
    [comm_lower ≤ OPT_comm(r) ≤ comm_upper] and
    [time_lower ≤ makespan of every valid strategy at r], with
    [(comm_upper, time_upper)] {e jointly} achieved by the embedded
    witness strategy (replayed through the {!Prbp_pebble.Multi}
    checkers before being believed).  Objective-space regions:
    everything componentwise above a point's
    [(r, comm_upper, time_upper)] corner is {b certified dominated}
    (the witness beats it), everything below [(comm_lower, time_lower)]
    at capacity ≤ [r] is {b certified infeasible}, and the band
    between a point's corners is {b still open} — more budget narrows
    it.  A point is marked [dominated] when another point's achievable
    corner certifiably beats its infeasibility corner at no more
    memory; {!front} is the surviving certified Pareto front.

    The reverse ε-constraint — the least memory meeting a
    communication cap — is {!min_r_for_comm}, a binary search over the
    same probes (sound because extra capacity never hurts:
    [OPT_comm] is non-increasing in [r]). *)

type game = Rbp_mc | Prbp_mc

val game_label : game -> p:int -> string
(** ["multi-rbp:P"] | ["multi-prbp:P"] — the wire spelling. *)

type point = {
  p : int;
  r : int;  (** per-processor capacity: the memory axis is [p·r] *)
  comm_lower : int;  (** certified: [OPT_comm(r) ≥ comm_lower] *)
  comm_upper : int option;
      (** certified cost of [witness]; [None] when the budget stopped
          a probe before any strategy was found *)
  time_lower : int;
      (** certified makespan floor for every strategy at this [r]
          ({!Cost_model.makespan_lower} at [comm_lower]) *)
  time_upper : int option;
      (** the witness strategy's priced makespan — jointly achieved
          with [comm_upper] by one strategy *)
  status : [ `Exact | `Bracketed ];
      (** [`Exact]: an exact solve settled [comm_lower = comm_upper];
          [`Bracketed]: a certified interval (truncated exact solve or
          {!Prbp_bounds.Multi_bounds} bracket) *)
  source : string;
      (** provenance: ["exact"], ["exact-truncated"], or the winning
          pooled lower-bound rule of the bracket *)
  verified : bool;
      (** the witness replayed through the {!Prbp_pebble.Multi}
          checker at exactly [comm_upper] (always re-checked here,
          independently of the producing engine) *)
  settled : bool;  (** [comm_upper = Some comm_lower] *)
  dominated : bool;
      (** some other point's [(r, comm_upper, time_upper)] corner
          certifiably beats this point's
          [(r, comm_lower, time_lower)] corner, strictly in memory *)
  witness : Prbp_bounds.Multi_bounds.moves option;
  curve : Prbp_solver.Solver.Convergence.curve;
      (** how the probe's communication interval tightened over its
          budget slice (probe-relative seconds).  Exact probes record
          live through {!Prbp_solver.Solver.Convergence}; pooled
          brackets report a single terminal sighting. *)
}

type t = {
  game : game;
  p : int;
  model : string;  (** {!Cost_model.t.name} used for the time axis *)
  points : point list;  (** one per feasible swept [r], ascending *)
  infeasible_rs : int list;
      (** swept capacities below the game's feasibility threshold *)
  exhausted : bool;  (** some point is still open: more budget helps *)
  elapsed_s : float;
}

val front : t -> point list
(** The certified Pareto front: points not certified dominated. *)

val open_points : t -> point list
(** Points whose communication interval is still open. *)

val sweep :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?model:Cost_model.t ->
  ?rules:string list ->
  ?jobs:int ->
  game ->
  p:int ->
  rs:int list ->
  Prbp_dag.Dag.t ->
  t
(** Sweep the memory ε-constraint over [rs] (deduplicated, sorted
    ascending) under one shared budget: a wall-clock deadline is split
    evenly across the axes still to run, and an axis that finishes
    early donates its slack to the rest.  [model] defaults to
    {!Cost_model.unit}; [rules] restricts the pooled lower-bound
    registry for bracketed points; [jobs] is threaded to the exact
    engine.
    @raise Invalid_argument if [p < 1], [rs] is empty, or any [r < 1]. *)

type min_r =
  | Min_r of { r : int; comm : int }
      (** least swept capacity whose certified [OPT_comm ≤ cap];
          exact when every probe settled *)
  | Min_r_between of int * int
      (** the budget left probes open: the least such capacity is
          certified to lie in this inclusive range *)
  | Min_r_infeasible  (** certified [OPT_comm > cap] even at [r_max] *)

val min_r_for_comm :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?rules:string list ->
  ?jobs:int ->
  game ->
  p:int ->
  comm_cap:int ->
  ?r_max:int ->
  Prbp_dag.Dag.t ->
  min_r
(** The reverse ε-constraint: binary-search the least per-processor
    capacity in [1, r_max] (default: the node count, which always
    suffices) at which the communication cap is certified achievable.
    Monotone because [OPT_comm(r)] is non-increasing in [r]. *)

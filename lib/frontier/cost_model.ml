module Dag = Prbp_dag.Dag
module Topo = Prbp_dag.Topo
module Multi = Prbp_pebble.Multi

type vec = { time : int; comm : int; mem : int }

type t = {
  name : string;
  rbp_move : r:int -> Multi.Move.rbp -> vec;
  prbp_move : r:int -> Multi.Move.prbp -> vec;
}

let make ?(name = "uniform") ~compute_time ~io_time () =
  let io r = { time = io_time; comm = 1; mem = r } in
  let free r = { time = 0; comm = 0; mem = r } in
  let compute r = { time = compute_time; comm = 0; mem = r } in
  {
    name;
    rbp_move =
      (fun ~r (m : Multi.Move.rbp) ->
        match m with
        | Load _ | Save _ -> io r
        | Compute _ -> compute r
        | Delete _ -> free r);
    prbp_move =
      (fun ~r (m : Multi.Move.prbp) ->
        match m with
        | Load _ | Save _ -> io r
        | Compute _ -> compute r
        | Delete _ -> free r);
  }

let unit = make ~name:"unit" ~compute_time:1 ~io_time:1 ()

type weights = { w_time : int; w_comm : int; w_mem : int }

let comm_only = { w_time = 0; w_comm = 1; w_mem = 0 }

let scalarize w v = (w.w_time * v.time) + (w.w_comm * v.comm) + (w.w_mem * v.mem)

type eval = {
  comm : int;
  makespan : int;
  per_proc_time : int array;
  peak_mem : int;
}

exception Replay of string

(* Price a checker-validated strategy: each move's time accrues to its
   acting processor, comm sums globally; peak occupancy is tracked by
   replaying the rule engine alongside.  The checker ran first, so the
   replay cannot fail — if it somehow does, the strategy is refused
   rather than priced. *)
let eval_with ~check ~start ~apply ~red_count ~proc ~price cfg g moves =
  match check cfg g moves with
  | Error _ as e -> e
  | Ok _io ->
      let p = cfg.Multi.p in
      let per = Array.make p 0 in
      let comm = ref 0 in
      let peak = ref 0 in
      let st = start cfg g in
      let step m =
        (match apply st m with Ok () -> () | Error e -> raise (Replay e));
        let v = price m in
        per.(proc m) <- per.(proc m) + v.time;
        comm := !comm + v.comm;
        for q = 0 to p - 1 do
          peak := max !peak (red_count st q)
        done
      in
      (match List.iter step moves with
      | () ->
          Ok
            {
              comm = !comm;
              makespan = Array.fold_left max 0 per;
              per_proc_time = per;
              peak_mem = !peak;
            }
      | exception Replay e -> Error ("replay diverged from checker: " ^ e))

let proc_rbp (m : Multi.Move.rbp) =
  match m with Load (q, _) | Save (q, _) | Compute (q, _) | Delete (q, _) -> q

let proc_prbp (m : Multi.Move.prbp) =
  match m with Load (q, _) | Save (q, _) | Compute (q, _) | Delete (q, _) -> q

let eval_rbp t cfg g moves =
  eval_with ~check:Multi.R.check ~start:Multi.R.start ~apply:Multi.R.apply
    ~red_count:Multi.R.red_count ~proc:proc_rbp
    ~price:(t.rbp_move ~r:cfg.Multi.r) cfg g moves

let eval_prbp t cfg g moves =
  eval_with ~check:Multi.P.check ~start:Multi.P.start ~apply:Multi.P.apply
    ~red_count:Multi.P.red_count ~proc:proc_prbp
    ~price:(t.prbp_move ~r:cfg.Multi.r) cfg g moves

(* Sane models price time independently of the capacity; work and path
   floors evaluate at r = 1. *)
let rbp_compute_time t v = (t.rbp_move ~r:1 (Multi.Move.Compute (0, v))).time

let prbp_compute_time t u v =
  (t.prbp_move ~r:1 (Multi.Move.Compute (0, (u, v)))).time

let compute_work t ~game g =
  match game with
  | `Rbp ->
      let acc = ref 0 in
      for v = 0 to Dag.n_nodes g - 1 do
        if not (Dag.is_source g v) then acc := !acc + rbp_compute_time t v
      done;
      !acc
  | `Prbp ->
      let acc = ref 0 in
      Dag.iter_edges (fun _ u v -> acc := !acc + prbp_compute_time t u v) g;
      !acc

let critical_path t ~game g =
  let n = Dag.n_nodes g in
  if n = 0 then 0
  else begin
    let dist = Array.make n 0 in
    Array.iter
      (fun v ->
        let w =
          match game with
          | `Rbp -> if Dag.is_source g v then 0 else rbp_compute_time t v
          | `Prbp ->
              (* every in-edge of [v] updates the same exclusive
                 partial value, so they chain *)
              Dag.fold_pred
                (fun u acc -> acc + prbp_compute_time t u v)
                g v 0
        in
        let best = Dag.fold_pred (fun u acc -> max acc dist.(u)) g v 0 in
        dist.(v) <- best + w)
      (Topo.sort g);
    Array.fold_left max 0 dist
  end

let min_io_time t ~game =
  match game with
  | `Rbp ->
      min
        (t.rbp_move ~r:1 (Multi.Move.Load (0, 0))).time
        (t.rbp_move ~r:1 (Multi.Move.Save (0, 0))).time
  | `Prbp ->
      min
        (t.prbp_move ~r:1 (Multi.Move.Load (0, 0))).time
        (t.prbp_move ~r:1 (Multi.Move.Save (0, 0))).time

(* Every complete pebbling spends at least [compute_work] compute time
   and performs at least [comm_lower] I/O moves (the certified I/O
   floor of the configuration); the per-processor maximum is at least
   the total divided by p. *)
let makespan_lower t ~game ~p ~comm_lower g =
  let total = compute_work t ~game g + (min_io_time t ~game * comm_lower) in
  (total + p - 1) / p

(* Classic Hashtbl + doubly-linked recency list: O(1) find / add /
   remove / evict.  The list head is most recent, the tail the
   eviction candidate. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  capacity : int;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity >= 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      None

let add t key value =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
  | None ->
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node);
  if Hashtbl.length t.table > t.capacity then
    match t.tail with
    | Some lru ->
        unlink t lru;
        Hashtbl.remove t.table lru.key
    | None -> ()

let remove t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key
  | None -> ()

let length t = locked t @@ fun () -> Hashtbl.length t.table

let hits t = locked t @@ fun () -> t.hits

let misses t = locked t @@ fun () -> t.misses

(** [prbpd]: the anytime pebbling service.

    One process serves exact solves and certified brackets over a
    versioned JSON wire ({!Prbp_wire.Wire}), with three load-bearing
    properties:

    - {e Admission control.}  Requests run on a fixed {!Pool} of
      worker domains behind a bounded queue; past capacity the accept
      loop answers [503] immediately, without reading the request —
      overload degrades into fast refusals, not latency.
    - {e Anytime by construction.}  A request's budget (and the
      server-wide deadline cap) maps onto
      {!Prbp_solver.Solver.Budget}, so an over-budget solve returns a
      certified [Bounded] interval over the wire instead of timing
      out.
    - {e Content-addressed certificate cache.}  Results are cached in
      {e canonical label space} under
      [(Dag.hash, game, r, variants, budget-class)] — isomorphic
      relabelings of a DAG share entries — and every cached
      certificate is translated back to the request's labels and
      {b re-verified} through the literal game checkers before being
      served; an entry that fails re-verification is dropped and the
      request re-solved.  Proven-optimal solves and tight brackets are
      cached budget-independently (a certificate of OPT is valid under
      any budget); truncated results are keyed by budget class.  The
      [x-prbpd-cache: hit|miss] response header reports what happened
      (the body stays byte-identical either way).

    Routes: [POST /v1/solve], [POST /v1/bracket] (request body:
    {!Prbp_wire.Wire.request}; responses: wire outcome / bracket
    objects, or [{"v":1,"error":…}]), [POST /v1/frontier],
    [GET /metrics] (Prometheus text), [GET /healthz] (a
    {!Prbp_wire.Wire.healthz} JSON body: wire version, BENCH schema
    tag, uptime) and [GET /v1/status] (a
    {!Prbp_wire.Wire.status_report} live snapshot: in-flight and
    queued counts, cache hit/miss totals, per-route latency
    histograms, and the flight recorder's recent/slowest request
    summaries).  A request with [stream:true] receives a chunked
    response of telemetry JSON-lines followed by the result line.

    {e Request-scoped tracing.}  Every request runs under a fresh
    {!Prbp_obs.Span} context, so concurrent requests record disjoint,
    well-parented traces; the {!Prbp_obs.Flight} recorder keeps a
    bounded ring of request summaries plus the full span trees of the
    slowest few, and served solve outcomes carry their
    {!Prbp_solver.Solver.Convergence} curve.

    Metrics: [prbpd_requests_total], [prbpd_cache_hits_total],
    [prbpd_cache_misses_total], the [prbpd_request_seconds] histogram
    and the per-route [prbpd_route_request_seconds] family (label
    [route], fixed route set), exported alongside every other
    registered {!Prbp_obs.Metrics} instrument. *)

type addr =
  | Tcp of string * int  (** interface, port *)
  | Unix_path of string  (** unix-domain socket path *)

type config = {
  addr : addr;
  workers : int;  (** solver domains (≥ 1) *)
  queue : int;  (** admission queue depth beyond the workers (≥ 0) *)
  cache_capacity : int;  (** LRU entries (≥ 1) *)
  max_deadline_ms : int;
      (** server-wide cap on a request's wall-clock budget; requests
          asking for more (or nothing) get this *)
  max_states : int;  (** state cap per solve *)
  max_body : int;  (** request body cap, bytes *)
}

val default_config : config
(** Loopback TCP on port 8367, [workers = 2], [queue = 16],
    [cache_capacity = 256], [max_deadline_ms = 30_000],
    [max_states = 5_000_000], [max_body = 64 MiB]. *)

val run : ?stop:bool Atomic.t -> config -> unit
(** Bind, serve, block.  Returns once [stop] is set (polled at 4 Hz
    between accepts) and in-flight requests have drained; the listen
    socket (and a unix-domain socket file) is cleaned up.  Enables
    {!Prbp_obs.Metrics} recording for the process. *)

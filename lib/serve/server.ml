module Dag = Prbp_dag.Dag
module Move = Prbp_pebble.Move
module Rbp = Prbp_pebble.Rbp
module Prbp_game = Prbp_pebble.Prbp
module Multi = Prbp_pebble.Multi
module Solver = Prbp_solver.Solver
module Exact_rbp = Prbp_solver.Exact_rbp
module Exact_prbp = Prbp_solver.Exact_prbp
module Exact_multi = Prbp_solver.Exact_multi
module Bracket = Prbp_bounds.Bracket
module Frontier = Prbp_frontier.Frontier
module Metrics = Prbp_obs.Metrics
module Span = Prbp_obs.Span
module Flight = Prbp_obs.Flight
module Clock = Prbp_obs.Clock
module Wire = Prbp_wire.Wire

type addr = Tcp of string * int | Unix_path of string

type config = {
  addr : addr;
  workers : int;
  queue : int;
  cache_capacity : int;
  max_deadline_ms : int;
  max_states : int;
  max_body : int;
}

let default_config =
  {
    addr = Tcp ("127.0.0.1", 8367);
    workers = 2;
    queue = 16;
    cache_capacity = 256;
    max_deadline_ms = 30_000;
    max_states = 5_000_000;
    max_body = 64 * 1024 * 1024;
  }

(* ------------------------------------------------------------------ *)
(* State *)

type entry =
  | Solve_cert of Wire.outcome
  | Bracket_cert of Wire.bracket
  | Frontier_cert of Wire.frontier
(* cached certificates, strategies in canonical label space *)

type state = {
  cfg : config;
  started : float;  (* Clock.now at boot, for uptime reporting *)
  pool : Pool.t;
  cache : entry Cache.t;
  requests_total : Metrics.Counter.t;
  rejected_total : Metrics.Counter.t;
  cache_hits : Metrics.Counter.t;
  cache_misses : Metrics.Counter.t;
  latency : Metrics.Histogram.t;
  route_latency : (string * Metrics.Histogram.t) list;
      (* per-route latency under one family name; the route set is
         fixed so the label cardinality is bounded *)
}

let routes = [ "/v1/solve"; "/v1/bracket"; "/v1/frontier"; "/v1/status";
               "/metrics"; "/healthz"; "other" ]

let route_of path = if List.mem path routes then path else "other"

(* Worker domains inherit the signal mask of the spawning thread.
   Blocking the shutdown signals across [Pool.create] forces the
   kernel to route process-directed SIGTERM/SIGINT to the accept-loop
   domain — the only thread with them unblocked — where the handler's
   stop flag is polled every select tick.  Without this, delivery to a
   worker parked in [Condition.wait] can leave the signal pending on a
   domain that never reaches a safepoint. *)
let spawn_with_shutdown_signals_blocked spawn =
  match
    Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]
  with
  | old ->
      Fun.protect
        ~finally:(fun () -> ignore (Unix.sigprocmask Unix.SIG_SETMASK old))
        spawn
  | exception Invalid_argument _ ->
      (* some platforms lack sigprocmask; delivery is then best-effort *)
      spawn ()

let make_state cfg =
  Metrics.set_enabled true;
  (* spans are cheap when nothing reads them, and the flight recorder
     needs them to retain the slowest requests' full traces *)
  Span.set_enabled true;
  {
    cfg;
    started = Clock.now ();
    pool =
      spawn_with_shutdown_signals_blocked (fun () ->
          Pool.create ~workers:cfg.workers ~queue:cfg.queue);
    cache = Cache.create ~capacity:cfg.cache_capacity;
    requests_total =
      Metrics.counter ~help:"Requests accepted by prbpd" "prbpd_requests_total";
    rejected_total =
      Metrics.counter ~help:"Requests refused with 503 at admission"
        "prbpd_rejected_total";
    cache_hits =
      Metrics.counter ~help:"Certificate cache hits (re-verified)"
        "prbpd_cache_hits_total";
    cache_misses =
      Metrics.counter ~help:"Certificate cache misses" "prbpd_cache_misses_total";
    latency =
      Metrics.histogram ~help:"Request handling latency, seconds"
        "prbpd_request_seconds";
    route_latency =
      List.map
        (fun route ->
          ( route,
            Metrics.histogram
              ~help:"Request handling latency by route, seconds"
              ~labels:[ ("route", route) ]
              "prbpd_route_request_seconds" ))
        routes;
  }

(* ------------------------------------------------------------------ *)
(* Per-request bookkeeping: the response writers note what they served
   so the flight recorder can summarize the request afterwards.  One
   request runs on one worker domain at a time, so a domain-local slot
   is race-free. *)

type req_info = {
  mutable ri_status : int;
  mutable ri_cache : string;
  mutable ri_outcome : string;
}

let fresh_info () = { ri_status = 0; ri_cache = "-"; ri_outcome = "-" }

let info_key = Domain.DLS.new_key fresh_info

let note_status st = (Domain.DLS.get info_key).ri_status <- st

let note_cache c = (Domain.DLS.get info_key).ri_cache <- c

let note_outcome o = (Domain.DLS.get info_key).ri_outcome <- o

let outcome_tag (o : Wire.outcome) =
  match o.Wire.status with
  | `Optimal -> "optimal"
  | `Bounded -> "bounded"
  | `Unsolvable -> "unsolvable"

(* ------------------------------------------------------------------ *)
(* Canonical label space: cache entries store strategies under the
   DAG's canonical ids so isomorphic relabelings share entries. *)

let permute_r perm : Move.R.t -> Move.R.t = function
  | Load v -> Load perm.(v)
  | Save v -> Save perm.(v)
  | Compute v -> Compute perm.(v)
  | Delete v -> Delete perm.(v)
  | Slide (u, v) -> Slide (perm.(u), perm.(v))

let permute_p perm : Move.P.t -> Move.P.t = function
  | Load v -> Load perm.(v)
  | Save v -> Save perm.(v)
  | Compute (u, v) -> Compute (perm.(u), perm.(v))
  | Delete v -> Delete perm.(v)
  | Clear v -> Clear perm.(v)

(* multiprocessor moves: permute node ids, keep the processor *)
let permute_mr perm : Multi.Move.rbp -> Multi.Move.rbp = function
  | Load (q, v) -> Load (q, perm.(v))
  | Save (q, v) -> Save (q, perm.(v))
  | Compute (q, v) -> Compute (q, perm.(v))
  | Delete (q, v) -> Delete (q, perm.(v))

let permute_mp perm : Multi.Move.prbp -> Multi.Move.prbp = function
  | Load (q, v) -> Load (q, perm.(v))
  | Save (q, v) -> Save (q, perm.(v))
  | Compute (q, (u, v)) -> Compute (q, (perm.(u), perm.(v)))
  | Delete (q, v) -> Delete (q, perm.(v))

let permute_strategy perm = function
  | Wire.Rbp_strategy ms -> Wire.Rbp_strategy (List.map (permute_r perm) ms)
  | Wire.Prbp_strategy ms -> Wire.Prbp_strategy (List.map (permute_p perm) ms)
  | Wire.Multi_rbp_strategy (p, ms) ->
      Wire.Multi_rbp_strategy (p, List.map (permute_mr perm) ms)
  | Wire.Multi_prbp_strategy (p, ms) ->
      Wire.Multi_prbp_strategy (p, List.map (permute_mp perm) ms)

let inverse perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun v c -> inv.(c) <- v) perm;
  inv

(* to canonical space: request node v |-> canonical_order.(v) *)
let to_canonical g strategy = permute_strategy (Dag.canonical_order g) strategy

(* back to the labels of (a possibly different relabeling of) the DAG *)
let of_canonical g strategy =
  permute_strategy (inverse (Dag.canonical_order g)) strategy

(* ------------------------------------------------------------------ *)
(* Cache keys *)

let variants_tag (v : Wire.variants) =
  Printf.sprintf "%c%c%c"
    (if v.sliding then 's' else '-')
    (if v.recompute then 'c' else '-')
    (if v.no_delete then 'd' else '-')

let cache_key ~kind ~budget_part (rq : Wire.request) ~dag_hash =
  String.concat "|"
    [
      kind; dag_hash; Wire.game_label rq.game; string_of_int rq.r;
      variants_tag rq.variants; budget_part;
    ]

(* proven results are budget-independent; truncated ones are only
   reusable under a comparable budget *)
let final_key = cache_key ~budget_part:"final"

let budget_key (rq : Wire.request) =
  cache_key ~budget_part:(Wire.budget_class rq.budget) rq

(* ------------------------------------------------------------------ *)
(* Re-verification: a cached certificate is replayed through the
   literal game checkers against the request's DAG before it is
   served.  [Some cost] = the strategy is valid and costs [cost]. *)

let checked_cost ~(rq : Wire.request) g strategy =
  let r = rq.r in
  let { Wire.sliding; recompute; no_delete } = rq.variants in
  match strategy with
  | Wire.Rbp_strategy moves -> (
      let cfg = Rbp.config ~one_shot:(not recompute) ~sliding ~no_delete ~r () in
      match Rbp.check cfg g moves with Ok c -> Some c | Error _ -> None)
  | Wire.Prbp_strategy moves -> (
      let cfg =
        Prbp_game.config ~one_shot:(not recompute) ~recompute ~no_delete ~r ()
      in
      match Prbp_game.check cfg g moves with Ok c -> Some c | Error _ -> None)
  | Wire.Multi_rbp_strategy (p, moves) -> (
      (* variant-free by construction: multi requests reject variants *)
      let cfg = Multi.config ~p ~r () in
      match Multi.R.check cfg g moves with Ok c -> Some c | Error _ -> None)
  | Wire.Multi_prbp_strategy (p, moves) -> (
      let cfg = Multi.config ~p ~r () in
      match Multi.P.check cfg g moves with Ok c -> Some c | Error _ -> None)

let verify_solve_entry ~rq g (o : Wire.outcome) =
  match (o.strategy, o.status) with
  | None, _ | _, `Unsolvable -> None
  | Some canon_strategy, status -> (
      let strategy = of_canonical g canon_strategy in
      match checked_cost ~rq g strategy with
      | None -> None
      | Some cost -> (
          match status with
          | `Optimal when cost = o.lower ->
              Some { o with Wire.strategy = Some strategy }
          | `Bounded when Some cost = o.upper ->
              Some { o with Wire.strategy = Some strategy }
          | _ -> None))

let verify_bracket_entry ~rq g (b : Wire.bracket) =
  match b.strategy with
  | None -> None
  | Some canon_strategy -> (
      let strategy = of_canonical g canon_strategy in
      match checked_cost ~rq g strategy with
      | Some cost when cost = b.upper ->
          Some { b with Wire.strategy = Some strategy }
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Request handling *)

let respond_json ?(headers = []) ~status fd body =
  note_status status;
  Http.write_response
    ~headers:(("content-type", "application/json") :: headers)
    ~status ~body fd

let respond_error ?code fd status msg =
  respond_json ~status fd (Wire.encode_error ?code msg)

let budget_of state (rq : Wire.request) =
  let b = rq.budget in
  let max_states =
    match b.max_states with
    | Some s when s > 0 && s <= state.cfg.max_states -> s
    | _ -> state.cfg.max_states
  in
  let max_millis =
    match b.max_millis with
    | Some ms when ms > 0 && ms <= state.cfg.max_deadline_ms -> ms
    | _ -> state.cfg.max_deadline_ms
  in
  match b.max_words with
  | Some w when w > 0 ->
      Solver.Budget.v ~max_states ~max_millis ~max_words:w ()
  | _ -> Solver.Budget.v ~max_states ~max_millis ()

(* chunked telemetry stream, or a plain single-object response *)
let deliver ~(rq : Wire.request) ~cache_status fd body =
  note_cache cache_status;
  let headers = [ ("x-prbpd-cache", cache_status) ] in
  if rq.stream then begin
    Http.write_chunk fd body;
    Http.write_chunk fd "\n";
    Http.write_chunk_end fd
  end
  else respond_json ~headers ~status:200 fd body

let stream_head ~(rq : Wire.request) ~cache_status fd =
  if rq.stream then begin
    note_status 200;
    Http.write_chunked_head
      ~headers:
        [
          ("content-type", "application/jsonl");
          ("x-prbpd-cache", cache_status);
        ]
      ~status:200 fd
  end

let solve_telemetry ~(rq : Wire.request) fd =
  if rq.stream then
    Some
      (Solver.Telemetry.make ~every:8192 (fun ev ->
           Http.write_chunk fd (Wire.encode_event ev);
           Http.write_chunk fd "\n"))
  else None

(* strip what the client did not ask for — the cache always carries
   the strategy (it IS the certificate), responses only on request *)
let client_view (rq : Wire.request) (o : Wire.outcome) =
  if rq.want_strategy then o else { o with Wire.strategy = None }

(* Exact_multi's structural preconditions, checked before any response
   bytes are written: violations get a structured 4xx (code
   "invalid-argument") instead of an [Invalid_argument] escaping
   mid-stream. *)
let multi_precheck (rq : Wire.request) =
  let g = rq.dag in
  let common p =
    if p < 1 || p > 8 then
      Error
        (Printf.sprintf "multiprocessor games support 1..8 processors, got %d"
           p)
    else if Dag.n_nodes g > 62 then
      Error
        (Printf.sprintf "multiprocessor exact solves cap at 62 nodes, got %d"
           (Dag.n_nodes g))
    else if rq.variants <> Wire.no_variants then
      Error "multiprocessor games take no variant flags"
    else Ok ()
  in
  match rq.game with
  | Wire.Multi_rbp p -> common p
  | Wire.Multi_prbp p -> (
      match common p with
      | Error _ as e -> e
      | Ok () ->
          if Dag.n_edges g > 62 then
            Error
              (Printf.sprintf
                 "multiprocessor prbp exact solves cap at 62 edges, got %d"
                 (Dag.n_edges g))
          else Ok ())
  | Wire.Rbp | Wire.Prbp | Wire.Black -> Ok ()

let handle_solve_checked state (rq : Wire.request) fd =
  let g = rq.dag in
  let dag_hash = Dag.hash g in
  let fkey = final_key ~kind:"solve" rq ~dag_hash in
  let bkey = budget_key ~kind:"solve" rq ~dag_hash in
  let cached =
    match Cache.find state.cache fkey with
    | Some (Solve_cert o) -> Some (fkey, o)
    | _ -> (
        match Cache.find state.cache bkey with
        | Some (Solve_cert o) -> Some (bkey, o)
        | _ -> None)
  in
  let verified =
    Option.bind cached (fun (key, o) ->
        match verify_solve_entry ~rq g o with
        | Some o -> Some o
        | None ->
            (* certificate no longer checks out: drop, re-solve *)
            Cache.remove state.cache key;
            None)
  in
  match verified with
  | Some o ->
      Metrics.Counter.incr state.cache_hits;
      note_outcome (outcome_tag o);
      stream_head ~rq ~cache_status:"hit" fd;
      deliver ~rq ~cache_status:"hit" fd
        (Wire.encode_outcome (client_view rq o))
  | None ->
      Metrics.Counter.incr state.cache_misses;
      stream_head ~rq ~cache_status:"miss" fd;
      let budget = budget_of state rq in
      let conv, telemetry =
        (* tee the solver's telemetry through a convergence recorder so
           the served outcome carries its curve; the client's stream
           (when requested) still sees every event *)
        let r, sink = Solver.Convergence.recorder ?telemetry:(solve_telemetry ~rq fd) () in
        (r, Some sink)
      in
      let { Wire.sliding; recompute; no_delete } = rq.variants in
      let r = rq.r in
      (* always solve with the strategy on: it is the certificate that
         makes the outcome cacheable and re-verifiable *)
      let outcome =
        match rq.game with
        | Wire.Rbp ->
            let cfg =
              Rbp.config ~one_shot:(not recompute) ~sliding ~no_delete ~r ()
            in
            let oc =
              Exact_rbp.solve ~budget ?telemetry ~want_strategy:true cfg g
            in
            let strategy =
              match oc with
              | Solver.Optimal { strategy = Some ms; _ }
              | Solver.Bounded { incumbent_strategy = Some ms; _ } ->
                  Some (Wire.Rbp_strategy ms)
              | _ -> None
            in
            Ok (Wire.outcome_of ~game:rq.game ~r ~variants:rq.variants
                  ?strategy ~curve:(Solver.Convergence.curve conv) ~dag:g oc)
        | Wire.Prbp ->
            let cfg =
              Prbp_game.config ~one_shot:(not recompute) ~recompute
                ~no_delete ~r ()
            in
            let oc =
              Exact_prbp.solve ~budget ?telemetry ~want_strategy:true cfg g
            in
            let strategy =
              match oc with
              | Solver.Optimal { strategy = Some ms; _ }
              | Solver.Bounded { incumbent_strategy = Some ms; _ } ->
                  Some (Wire.Prbp_strategy ms)
              | _ -> None
            in
            Ok (Wire.outcome_of ~game:rq.game ~r ~variants:rq.variants
                  ?strategy ~curve:(Solver.Convergence.curve conv) ~dag:g oc)
        | Wire.Multi_rbp p ->
            let cfg = Multi.config ~p ~r () in
            let oc =
              Exact_multi.rbp_solve ~budget ?telemetry ~want_strategy:true cfg
                g
            in
            let strategy =
              match oc with
              | Solver.Optimal { strategy = Some ms; _ }
              | Solver.Bounded { incumbent_strategy = Some ms; _ } ->
                  Some (Wire.Multi_rbp_strategy (p, ms))
              | _ -> None
            in
            Ok (Wire.outcome_of ~game:rq.game ~r ~variants:rq.variants
                  ?strategy ~curve:(Solver.Convergence.curve conv) ~dag:g oc)
        | Wire.Multi_prbp p ->
            let cfg = Multi.config ~p ~r () in
            let oc =
              Exact_multi.prbp_solve ~budget ?telemetry ~want_strategy:true
                cfg g
            in
            let strategy =
              match oc with
              | Solver.Optimal { strategy = Some ms; _ }
              | Solver.Bounded { incumbent_strategy = Some ms; _ } ->
                  Some (Wire.Multi_prbp_strategy (p, ms))
              | _ -> None
            in
            Ok (Wire.outcome_of ~game:rq.game ~r ~variants:rq.variants
                  ?strategy ~curve:(Solver.Convergence.curve conv) ~dag:g oc)
        | Wire.Black ->
            Error
              (Printf.sprintf "game %S is not served over the wire"
                 (Wire.game_label rq.game))
      in
      (match outcome with
      | Error msg ->
          if rq.stream then begin
            Http.write_chunk fd (Wire.encode_error msg);
            Http.write_chunk fd "\n";
            Http.write_chunk_end fd
          end
          else respond_error fd 400 msg
      | Ok o ->
          note_outcome (outcome_tag o);
          (match o.Wire.strategy with
          | Some strategy ->
              let canon = { o with Wire.strategy = Some (to_canonical g strategy) } in
              let key = if o.Wire.status = `Optimal then fkey else bkey in
              Cache.add state.cache key (Solve_cert canon)
          | None -> ());
          deliver ~rq ~cache_status:"miss" fd
            (Wire.encode_outcome (client_view rq o)))

let handle_solve state (rq : Wire.request) fd =
  match multi_precheck rq with
  | Error msg -> respond_error ~code:"invalid-argument" fd 400 msg
  | Ok () -> handle_solve_checked state rq fd

let bracket_view (rq : Wire.request) (b : Wire.bracket) =
  if rq.want_strategy then b else { b with Wire.strategy = None }

let handle_bracket state (rq : Wire.request) fd =
  let g = rq.dag in
  let dag_hash = Dag.hash g in
  match rq.game with
  | Wire.Black | Wire.Multi_rbp _ | Wire.Multi_prbp _ ->
      respond_error fd 400 "only the rbp/prbp games have brackets"
  | (Wire.Rbp | Wire.Prbp) as game ->
      let fkey = final_key ~kind:"bracket" rq ~dag_hash in
      let bkey = budget_key ~kind:"bracket" rq ~dag_hash in
      let cached =
        match Cache.find state.cache fkey with
        | Some (Bracket_cert b) -> Some (fkey, b)
        | _ -> (
            match Cache.find state.cache bkey with
            | Some (Bracket_cert b) -> Some (bkey, b)
            | _ -> None)
      in
      let verified =
        Option.bind cached (fun (key, b) ->
            match verify_bracket_entry ~rq g b with
            | Some b -> Some b
            | None ->
                Cache.remove state.cache key;
                None)
      in
      (match verified with
      | Some b ->
          Metrics.Counter.incr state.cache_hits;
          note_outcome (if b.Wire.tight then "optimal" else "bounded");
          stream_head ~rq ~cache_status:"hit" fd;
          deliver ~rq ~cache_status:"hit" fd
            (Wire.encode_bracket (bracket_view rq b))
      | None ->
          Metrics.Counter.incr state.cache_misses;
          stream_head ~rq ~cache_status:"miss" fd;
          let budget = budget_of state rq in
          let telemetry = solve_telemetry ~rq fd in
          let result =
            match game with
            | Wire.Rbp ->
                Bracket.rbp ~budget ?telemetry ?rules:rq.rules ~r:rq.r g
            | _ -> Bracket.prbp ~budget ?telemetry ?rules:rq.rules ~r:rq.r g
          in
          (match result with
          | Error msg ->
              if rq.stream then begin
                Http.write_chunk fd (Wire.encode_error msg);
                Http.write_chunk fd "\n";
                Http.write_chunk_end fd
              end
              else respond_error fd 400 msg
          | Ok bracket ->
              let wb =
                Wire.bracket_of ?family:(Dag.family g) ~with_moves:true
                  bracket
              in
              note_outcome (if wb.Wire.tight then "optimal" else "bounded");
              let canon =
                {
                  wb with
                  Wire.strategy =
                    Option.map (to_canonical g) wb.Wire.strategy;
                }
              in
              let key = if wb.Wire.tight then fkey else bkey in
              Cache.add state.cache key (Bracket_cert canon);
              deliver ~rq ~cache_status:"miss" fd
                (Wire.encode_bracket (bracket_view rq wb))))

(* ------------------------------------------------------------------ *)
(* Frontier handling *)

let frontier_rs (rq : Wire.request) =
  match rq.rs with
  | Some rs when rs <> [] -> List.sort_uniq compare rs
  | _ -> [ rq.r ]

(* the swept capacities are part of the identity of a frontier, so
   they join the cache key *)
let frontier_key ~budget_part (rq : Wire.request) ~dag_hash =
  let rs_tag = String.concat "," (List.map string_of_int (frontier_rs rq)) in
  cache_key ~kind:("frontier:" ^ rs_tag) ~budget_part rq ~dag_hash

(* every cached point's witness must replay at exactly its claimed
   comm_upper; one failure drops the whole entry *)
let verify_frontier_entry ~(rq : Wire.request) g (f : Wire.frontier) =
  let ok = ref true in
  let points =
    List.map
      (fun (pt : Wire.frontier_point) ->
        match pt.strategy with
        | None -> pt
        | Some canon -> (
            let strategy = of_canonical g canon in
            let rq_pt = { rq with Wire.r = pt.r } in
            match (checked_cost ~rq:rq_pt g strategy, pt.comm_upper) with
            | Some c, Some cu when c = cu ->
                { pt with Wire.strategy = Some strategy }
            | _ ->
                ok := false;
                pt))
      f.points
  in
  if !ok then Some { f with Wire.points } else None

let frontier_view (rq : Wire.request) (f : Wire.frontier) =
  if rq.want_strategy then f
  else
    {
      f with
      Wire.points =
        List.map
          (fun (pt : Wire.frontier_point) -> { pt with Wire.strategy = None })
          f.points;
    }

let handle_frontier state (rq : Wire.request) fd =
  let g = rq.dag in
  match rq.game with
  | Wire.Rbp | Wire.Prbp | Wire.Black ->
      respond_error ~code:"invalid-argument" fd 400
        "frontier requires a multiprocessor game (multi-rbp:P / multi-prbp:P)"
  | (Wire.Multi_rbp p | Wire.Multi_prbp p) when p < 1 ->
      respond_error ~code:"invalid-argument" fd 400
        (Printf.sprintf "frontier needs p >= 1 processors, got %d" p)
  | (Wire.Multi_rbp _ | Wire.Multi_prbp _)
    when rq.variants <> Wire.no_variants ->
      respond_error ~code:"invalid-argument" fd 400
        "multiprocessor games take no variant flags"
  | (Wire.Multi_rbp p | Wire.Multi_prbp p) as game -> (
      let fgame =
        match game with
        | Wire.Multi_rbp _ -> Frontier.Rbp_mc
        | _ -> Frontier.Prbp_mc
      in
      let dag_hash = Dag.hash g in
      let rs = frontier_rs rq in
      let fkey = frontier_key ~budget_part:"final" rq ~dag_hash in
      let bkey =
        frontier_key ~budget_part:(Wire.budget_class rq.budget) rq ~dag_hash
      in
      let cached =
        match Cache.find state.cache fkey with
        | Some (Frontier_cert f) -> Some (fkey, f)
        | _ -> (
            match Cache.find state.cache bkey with
            | Some (Frontier_cert f) -> Some (bkey, f)
            | _ -> None)
      in
      let verified =
        Option.bind cached (fun (key, f) ->
            match verify_frontier_entry ~rq g f with
            | Some f -> Some f
            | None ->
                Cache.remove state.cache key;
                None)
      in
      match verified with
      | Some f ->
          Metrics.Counter.incr state.cache_hits;
          note_outcome (if f.Wire.exhausted then "open" else "settled");
          stream_head ~rq ~cache_status:"hit" fd;
          deliver ~rq ~cache_status:"hit" fd
            (Wire.encode_frontier (frontier_view rq f))
      | None ->
          Metrics.Counter.incr state.cache_misses;
          stream_head ~rq ~cache_status:"miss" fd;
          let budget = budget_of state rq in
          let f = Frontier.sweep ~budget ?rules:rq.rules fgame ~p ~rs g in
          let wf =
            Wire.frontier_of ?family:(Dag.family g) ~with_moves:true ~dag:g f
          in
          let canon =
            {
              wf with
              Wire.points =
                List.map
                  (fun (pt : Wire.frontier_point) ->
                    {
                      pt with
                      Wire.strategy = Option.map (to_canonical g) pt.strategy;
                    })
                  wf.Wire.points;
            }
          in
          note_outcome (if wf.Wire.exhausted then "open" else "settled");
          (* a fully settled sweep is budget-independent *)
          let key = if not wf.Wire.exhausted then fkey else bkey in
          Cache.add state.cache key (Frontier_cert canon);
          deliver ~rq ~cache_status:"miss" fd
            (Wire.encode_frontier (frontier_view rq wf)))

(* ------------------------------------------------------------------ *)
(* Connection handling *)

let handle_api state fd (http_rq : Http.request) kind handler =
  match Wire.decode_request http_rq.Http.body with
  | Error msg -> respond_error fd 400 msg
  | Ok rq ->
      if rq.Wire.kind <> kind then
        respond_error fd 400 "request kind does not match the route"
      else handler state rq fd

let wire_req (s : Flight.summary) =
  {
    Wire.trace_id = s.Flight.trace_id;
    route = s.Flight.route;
    status = s.Flight.status;
    cache = s.Flight.cache;
    dur_s = s.Flight.dur_s;
    outcome = s.Flight.outcome;
  }

let status_body state =
  let routes =
    List.map
      (fun (route, h) ->
        let buckets, count, sum_s = Metrics.Histogram.snapshot h in
        { Wire.route; count; sum_s; buckets })
      state.route_latency
  in
  Wire.encode_status
    (Wire.status_report
       ~uptime_s:(Clock.elapsed_s state.started)
       ~workers:state.cfg.workers ~in_flight:(Pool.busy state.pool)
       ~queued:(Pool.queued state.pool)
       ~requests_total:(Metrics.Counter.value state.requests_total)
       ~cache_hits:(Metrics.Counter.value state.cache_hits)
       ~cache_misses:(Metrics.Counter.value state.cache_misses)
       ~flight_seen:(Flight.seen ()) ~flight_capacity:(Flight.capacity ())
       ~routes
       ~recent:(List.map wire_req (Flight.recent ()))
       ~slowest:
         (List.map
            (fun (e : Flight.entry) -> wire_req e.Flight.summary)
            (Flight.slowest ()))
       ())

let handle_connection state fd =
  let t0 = Clock.now () in
  (* a fresh trace context per request: concurrent requests record
     disjoint traces, span ids restart at 0, parents cannot cross *)
  let ctx = Span.new_context () in
  let info = fresh_info () in
  Domain.DLS.set info_key info;
  let path = ref "other" in
  Span.with_current ctx (fun () ->
      try
        match Http.read_request ~max_body:state.cfg.max_body fd with
        | Error msg -> respond_error fd 400 msg
        | Ok http_rq -> (
            path := route_of http_rq.Http.path;
            Span.with_
              ~name:("http " ^ http_rq.Http.meth ^ " " ^ !path)
              (fun () ->
                match (http_rq.Http.meth, http_rq.Http.path) with
                | "POST", "/v1/solve" ->
                    handle_api state fd http_rq Wire.Solve handle_solve
                | "POST", "/v1/bracket" ->
                    handle_api state fd http_rq Wire.Bracket handle_bracket
                | "POST", "/v1/frontier" ->
                    handle_api state fd http_rq Wire.Frontier handle_frontier
                | "GET", "/metrics" ->
                    note_status 200;
                    Http.write_response
                      ~headers:
                        [ ("content-type", "text/plain; version=0.0.4") ]
                      ~status:200
                      ~body:(Metrics.to_prometheus ())
                      fd
                | "GET", "/healthz" ->
                    respond_json ~status:200 fd
                      (Wire.encode_healthz
                         (Wire.healthz
                            ~uptime_s:(Clock.elapsed_s state.started)))
                | "GET", "/v1/status" ->
                    respond_json ~status:200 fd (status_body state)
                | ("POST" | "GET"), _ ->
                    respond_error fd 404 ("no route for " ^ http_rq.Http.path)
                | meth, _ ->
                    respond_error fd 405 ("method not allowed: " ^ meth)))
      with
      (* solver preconditions (size caps, bad parameters) are the
         client's fault; anything else is ours.  Either way the client
         gets a wire-schema error, never a silently dropped
         connection. *)
      | Invalid_argument msg -> respond_error fd 400 msg
      | exn -> respond_error fd 500 (Printexc.to_string exn));
  let dur_s = Clock.elapsed_s t0 in
  Metrics.Histogram.observe state.latency dur_s;
  (match List.assoc_opt !path state.route_latency with
  | Some h -> Metrics.Histogram.observe h dur_s
  | None -> ());
  Flight.record
    ~summary:
      {
        Flight.trace_id = Span.trace_id ctx;
        route = !path;
        status = info.ri_status;
        cache = info.ri_cache;
        t_start = t0;
        dur_s;
        outcome = info.ri_outcome;
      }
    ~spans:(Span.context_spans ctx)

(* ------------------------------------------------------------------ *)
(* Accept loop *)

let bind_socket = function
  | Tcp (iface, port) ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string iface, port));
      sock
  | Unix_path path ->
      (if Sys.file_exists path then try Unix.unlink path with _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      sock

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run ?(stop = Atomic.make false) cfg =
  let state = make_state cfg in
  let sock = bind_socket cfg.addr in
  Unix.listen sock 64;
  let serve_one client =
    (* per-connection guard rails: a stalled peer times the worker out
       instead of pinning it forever *)
    (try
       Unix.setsockopt_float client Unix.SO_RCVTIMEO 30.0;
       Unix.setsockopt_float client Unix.SO_SNDTIMEO 30.0
     with Unix.Unix_error _ -> ());
    Fun.protect
      ~finally:(fun () -> close_quietly client)
      (fun () -> handle_connection state client)
  in
  let accept_ready () =
    match Unix.select [ sock ] [] [] 0.25 with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  while not (Atomic.get stop) do
    if accept_ready () then
      match Unix.accept sock with
      | client, _ ->
          Metrics.Counter.incr state.requests_total;
          if not (Pool.submit state.pool (fun () -> serve_one client)) then begin
            (* admission control: refuse in constant time, before any
               parsing, so overload cannot amplify itself *)
            Metrics.Counter.incr state.rejected_total;
            respond_error client 503 "server at capacity, retry later";
            (* drain the unread request so close sends FIN, not an RST
               that would clobber the 503 in the peer's buffer *)
            (try
               Unix.set_nonblock client;
               let buf = Bytes.create 4096 in
               let rec drain () =
                 match Unix.read client buf 0 4096 with
                 | 0 -> ()
                 | _ -> drain ()
               in
               drain ()
             with Unix.Unix_error _ -> ());
            close_quietly client
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  close_quietly sock;
  (match cfg.addr with
  | Unix_path path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ());
  Pool.shutdown state.pool

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

let header rq name =
  List.assoc_opt (String.lowercase_ascii name) rq.headers

(* ------------------------------------------------------------------ *)
(* Reading *)

let read_more fd buf chunk =
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | 0 -> false
  | n ->
      Buffer.add_subbytes buf chunk 0 n;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true

let find_head_end s =
  (* index just past "\r\n\r\n", if present *)
  let n = String.length s in
  let rec go i =
    if i + 4 > n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> Error "empty request head"
  | request_line :: header_lines ->
      let request_line = String.trim request_line in
      let parts =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' request_line)
      in
      (match parts with
      | [ meth; path; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let headers =
            List.filter_map
              (fun line ->
                let line = String.trim line in
                if line = "" then None
                else
                  match String.index_opt line ':' with
                  | None -> None
                  | Some i ->
                      Some
                        ( String.lowercase_ascii (String.sub line 0 i),
                          String.trim
                            (String.sub line (i + 1)
                               (String.length line - i - 1)) ))
              header_lines
          in
          Ok (String.uppercase_ascii meth, path, headers)
      | _ -> Error "malformed request line")

let read_request ?(max_header = 16 * 1024) ?(max_body = 64 * 1024 * 1024) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec read_head () =
    match find_head_end (Buffer.contents buf) with
    | Some head_end -> Ok head_end
    | None ->
        if Buffer.length buf > max_header then Error "request head too large"
        else if read_more fd buf chunk then read_head ()
        else Error "connection closed before request head"
  in
  match read_head () with
  | Error _ as e -> e
  | Ok head_end -> (
      let all = Buffer.contents buf in
      match parse_head (String.sub all 0 (head_end - 4)) with
      | Error _ as e -> e
      | Ok (meth, path, headers) -> (
          match List.assoc_opt "transfer-encoding" headers with
          | Some te when String.lowercase_ascii te <> "identity" ->
              Error "transfer-encoding not supported in requests"
          | _ -> (
              let content_length =
                match List.assoc_opt "content-length" headers with
                | None -> Ok 0
                | Some s -> (
                    match int_of_string_opt (String.trim s) with
                    | Some n when n >= 0 -> Ok n
                    | _ -> Error "bad content-length")
              in
              match content_length with
              | Error _ as e -> e
              | Ok wanted ->
                  if wanted > max_body then Error "request body too large"
                  else begin
                    let rec read_body () =
                      if Buffer.length buf - head_end >= wanted then
                        Ok
                          (String.sub (Buffer.contents buf) head_end wanted)
                      else if read_more fd buf chunk then read_body ()
                      else Error "connection closed before request body"
                    in
                    match read_body () with
                    | Error _ as e -> e
                    | Ok body -> Ok { meth; path; headers; body }
                  end)))
  | exception Unix.Unix_error (e, _, _) ->
      Error ("read: " ^ Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Writing *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> Printf.sprintf "Status %d" c

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  (* a vanished peer (EPIPE/ECONNRESET) must not kill the server *)
  try go 0 with Unix.Unix_error _ -> ()

let head_lines status headers =
  let b = Buffer.create 256 in
  Printf.bprintf b "HTTP/1.1 %d %s\r\n" status (status_text status);
  List.iter (fun (k, v) -> Printf.bprintf b "%s: %s\r\n" k v) headers;
  Buffer.add_string b "\r\n";
  Buffer.contents b

let write_response ?(headers = []) ~status ~body fd =
  let headers =
    headers
    @ [
        ("content-length", string_of_int (String.length body));
        ("connection", "close");
      ]
  in
  write_all fd (head_lines status headers ^ body)

let write_chunked_head ?(headers = []) ~status fd =
  let headers =
    headers @ [ ("transfer-encoding", "chunked"); ("connection", "close") ]
  in
  write_all fd (head_lines status headers)

let write_chunk fd s =
  if String.length s > 0 then
    write_all fd (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)

let write_chunk_end fd = write_all fd "0\r\n\r\n"

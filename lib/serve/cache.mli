(** A mutex-protected LRU map from content-addressed keys to cached
    certificates — the result cache in front of the [prbpd] solvers.

    Keys are strings built by the server from
    [(Dag.hash, game, r, variants, budget-class)]; values are whatever
    the server caches (certificates in canonical label space).  The
    cache itself is generic and enforces only the LRU contract: at
    most [capacity] entries, {!find} refreshes recency, insertion
    beyond capacity evicts the least recently used entry.

    Entries are {e certificates}, so eviction is always safe — a miss
    merely re-solves. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] ≥ 1 entries. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite (either way the entry becomes most recent);
    evicts the least-recently-used entry when over capacity. *)

val remove : 'a t -> string -> unit
(** Drop an entry (e.g. one whose certificate failed re-verification). *)

val length : 'a t -> int

val hits : 'a t -> int
(** {!find}s that returned an entry, over the cache's lifetime. *)

val misses : 'a t -> int

(** A fixed pool of worker {!Domain}s behind a bounded job queue — the
    admission-control core of the [prbpd] daemon.

    Jobs are thunks; {!submit} either enqueues one (a worker will run
    it) or refuses {e immediately} because the queue is at capacity.
    The refusal is what the daemon turns into an HTTP 503: overload is
    reported to the client in constant time instead of being absorbed
    into unbounded memory or latency.

    Workers never die with the job: a raising job is caught and
    counted, and the worker moves on. *)

type t

val create : workers:int -> queue:int -> t
(** [workers] ≥ 1 domains; [queue] ≥ 0 jobs may wait beyond the ones
    being run ([queue = 0] means a job is admitted only when handed
    straight to an idle worker). *)

val submit : t -> (unit -> unit) -> bool
(** [false]: the queue is full (or the pool is shutting down) and the
    job was NOT admitted.  Never blocks. *)

val queued : t -> int
(** Jobs admitted but not yet picked up by a worker. *)

val busy : t -> int
(** Workers currently running a job. *)

val failed : t -> int
(** Jobs that raised (caught; the worker survived). *)

val shutdown : t -> unit
(** Stop admitting, run every already-admitted job, join the workers.
    Idempotent. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  capacity : int;
  mutable stopping : bool;
  mutable busy : int;
  mutable failed : int;
  mutable workers : unit Domain.t array;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* stopping: drain done *)
  else begin
    let job = Queue.pop t.jobs in
    t.busy <- t.busy + 1;
    Mutex.unlock t.mutex;
    (try job ()
     with _ ->
       Mutex.lock t.mutex;
       t.failed <- t.failed + 1;
       Mutex.unlock t.mutex);
    Mutex.lock t.mutex;
    t.busy <- t.busy - 1;
    Mutex.unlock t.mutex;
    worker_loop t
  end

let create ~workers ~queue =
  if workers < 1 then invalid_arg "Pool.create: workers >= 1";
  if queue < 0 then invalid_arg "Pool.create: queue >= 0";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      capacity = queue;
      stopping = false;
      busy = 0;
      failed = 0;
      workers = [||];
    }
  in
  t.workers <-
    Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t job =
  Mutex.lock t.mutex;
  let admitted =
    (* "full" = the waiting line is at capacity once every idle worker
       is accounted for; at capacity 0 a job is only admitted when an
       idle worker can take it straight away *)
    (not t.stopping)
    && Queue.length t.jobs < t.capacity + Array.length t.workers - t.busy
  in
  if admitted then begin
    Queue.push job t.jobs;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex;
  admitted

let queued t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let busy t =
  Mutex.lock t.mutex;
  let n = t.busy in
  Mutex.unlock t.mutex;
  n

let failed t =
  Mutex.lock t.mutex;
  let n = t.failed in
  Mutex.unlock t.mutex;
  n

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopping = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  if not was_stopping then Array.iter Domain.join t.workers

(** Just enough HTTP/1.1 over stdlib {!Unix} file descriptors for the
    [prbpd] daemon: blocking request reader with hard header/body
    caps, plain and chunked response writers.  No keep-alive — every
    exchange is one request, one response, close (the daemon serves
    solvers, not static assets; connection setup is noise next to a
    solve). *)

type request = {
  meth : string;  (** uppercased, e.g. ["POST"] *)
  path : string;  (** request-target as sent, e.g. ["/v1/solve"] *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

val read_request :
  ?max_header:int -> ?max_body:int -> Unix.file_descr -> (request, string) result
(** Read one request.  Defaults: 16 KiB of head, 64 MiB of body.
    [Error] on malformed head, over-cap sizes, unsupported transfer
    encodings, or a peer that hangs up mid-request. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val status_text : int -> string

val write_response :
  ?headers:(string * string) list ->
  status:int ->
  body:string ->
  Unix.file_descr ->
  unit
(** One complete response with [Content-Length] and
    [Connection: close].  Write errors (peer gone) are swallowed — the
    daemon must not die because a client did. *)

(** {1 Chunked responses} — telemetry streams. *)

val write_chunked_head :
  ?headers:(string * string) list -> status:int -> Unix.file_descr -> unit

val write_chunk : Unix.file_descr -> string -> unit
(** One chunk ([""] is skipped — an empty chunk would terminate the
    stream). *)

val write_chunk_end : Unix.file_descr -> unit
(** The terminating 0-chunk. *)

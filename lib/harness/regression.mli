(** Interval-width regression gate for the bracket benchmark.

    A bracket's quality is its {e interval width} ([upper − lower]);
    the committed [BENCH_solver.json] records one per bracket case.
    This module parses those rows back out of the machine-written JSON
    (one object per line — a field scan, no JSON dependency) and
    compares a fresh run against them, flagging any case whose width
    grew beyond a small slack.  [bench/main.exe --check-widths] and the
    CI bracket smoke are the two callers. *)

type row = {
  family : string;  (** e.g. ["fft:128"] *)
  game : string;  (** ["rbp"] or ["prbp"] *)
  r : int;
  interval_width : int;
  lower_rule : string;  (** winning lower rule, ["?"] if absent *)
  upper_rule : string;  (** winning upper method, ["?"] if absent *)
}

val key : row -> string * string * int
(** Identity of a bench case: [(family, game, r)]. *)

val row_of_line : string -> row option
(** Parse one line; [None] unless it is a bracket row carrying at
    least family, game, [r] and [interval_width]. *)

val rows_of_string : string -> row list

val rows_of_file : string -> row list
(** Raises [Sys_error] if the file cannot be read. *)

type verdict =
  | Ok_width of { row : row; baseline : int }
  | Regressed of { row : row; baseline : int; limit : int }
  | New_case of row  (** no baseline row with the same {!key} *)

val check : ?slack_pct:int -> baseline:row list -> row list -> verdict list
(** One verdict per current row, in order.  A row regresses when its
    width exceeds its baseline by more than [slack_pct] percent
    ([10] by default) {e and} by more than one absolute unit — brackets
    run under wall-clock budgets, so hairline wobble is not a
    regression. *)

val pp_verdict : Format.formatter -> verdict -> unit

val regressed : verdict list -> bool
(** [true] iff some verdict is {!Regressed}. *)

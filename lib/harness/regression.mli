(** Interval-width regression gate for the bracket and frontier
    benchmarks.

    A bracket's quality is its {e interval width} ([upper − lower]);
    the committed [BENCH_solver.json] records one per bracket case.
    This module parses those rows back out of the machine-written JSON
    (one object per line — a field scan, no JSON dependency) and
    compares a fresh run against them, flagging any case whose width
    grew beyond a small slack.  [bench/main.exe --check-widths] and the
    CI bracket smoke are the two callers.

    {b Schema history.}  [BENCH_solver.json] schema
    ["prbp-solver-bench/v9"] adds a ["frontiers"] array of
    ["kind":"frontier"] rows (one per multiprocessor frontier case,
    carrying [points_n] / [front_n] / [open_n] / [front_width]); v8
    files simply contain no such rows, so both generations parse under
    the same lenient line scan — a v8 baseline yields bracket verdicts
    and an empty frontier baseline, never an error.  Schema v10
    ([{!Prbp_wire.Wire.bench_schema}]) adds a ["curve"] field to each
    bracket row plus a ["convergence"] summary array; the curve gate
    below ({!check_curve}) is {e structural} — monotonicity and
    final-point agreement — because timing-comparative curve baselines
    would flake in CI. *)

type row = {
  family : string;  (** e.g. ["fft:128"] *)
  game : string;  (** ["rbp"] or ["prbp"] *)
  r : int;
  interval_width : int;
  lower_rule : string;  (** winning lower rule, ["?"] if absent *)
  upper_rule : string;  (** winning upper method, ["?"] if absent *)
}

val key : row -> string * string * int
(** Identity of a bench case: [(family, game, r)]. *)

val row_of_line : string -> row option
(** Parse one line; [None] unless it is a bracket row carrying at
    least family, game, [r] and [interval_width]. *)

val rows_of_string : string -> row list

val rows_of_file : string -> row list
(** Raises [Sys_error] if the file cannot be read. *)

type verdict =
  | Ok_width of { row : row; baseline : int }
  | Regressed of { row : row; baseline : int; limit : int }
  | New_case of row  (** no baseline row with the same {!key} *)

val check : ?slack_pct:int -> baseline:row list -> row list -> verdict list
(** One verdict per current row, in order.  A row regresses when its
    width exceeds its baseline by more than [slack_pct] percent
    ([10] by default) {e and} by more than one absolute unit — brackets
    run under wall-clock budgets, so hairline wobble is not a
    regression. *)

val pp_verdict : Format.formatter -> verdict -> unit

val regressed : verdict list -> bool
(** [true] iff some verdict is {!Regressed}. *)

(** {1 Frontier rows (schema v9)} *)

type frontier_row = {
  f_family : string;  (** e.g. ["fft:64"] *)
  f_game : string;  (** ["multi-rbp:P"] or ["multi-prbp:P"] *)
  points_n : int;  (** feasible swept capacities *)
  open_n : int;  (** points whose communication interval is open *)
  front_width : int;  (** summed communication interval widths *)
}

val frontier_key : frontier_row -> string * string
(** Identity of a frontier case: [(family, game)] — the game label
    carries the processor count. *)

val frontier_row_of_line : string -> frontier_row option
(** Parse one line; [None] unless it is a ["kind":"frontier"] row
    carrying all five fields. *)

val frontier_rows_of_string : string -> frontier_row list

val frontier_rows_of_file : string -> frontier_row list
(** Raises [Sys_error] if the file cannot be read. *)

type frontier_verdict =
  | Frontier_ok of { row : frontier_row; baseline : frontier_row }
  | Frontier_regressed of {
      row : frontier_row;
      baseline : frontier_row;
      what : string;  (** which gate tripped, human-readable *)
    }
  | Frontier_new of frontier_row  (** no baseline with the same key *)

val check_frontiers :
  ?slack_pct:int ->
  baseline:frontier_row list ->
  frontier_row list ->
  frontier_verdict list
(** One verdict per current row: a case regresses when it settles
    fewer points than the baseline, leaves more intervals open, or its
    summed width grows past the same slack rule as {!check}. *)

val pp_frontier_verdict : Format.formatter -> frontier_verdict -> unit

val frontier_regressed : frontier_verdict list -> bool
(** [true] iff some verdict is {!Frontier_regressed}. *)

(** {1 Convergence curves (schema v10)} *)

type curve_verdict =
  | Curve_ok of {
      family : string;
      game : string;
      r : int;
      points : int;
      time_to_final : float;  (** when the final certified point landed *)
    }
  | Curve_bad of { family : string; game : string; r : int; what : string }

val check_curve :
  family:string ->
  game:string ->
  r:int ->
  lower:int ->
  upper:int ->
  Prbp_solver.Solver.Convergence.curve ->
  curve_verdict
(** Structural gate over one bracket's convergence curve: non-empty,
    {!Prbp_solver.Solver.Convergence.monotone}, and its final point
    equal to the certified bracket [(lower, Some upper)].  Deliberately
    compares no timings against a baseline — wall-clock curve shapes
    wobble run to run, their invariants do not. *)

val pp_curve_verdict : Format.formatter -> curve_verdict -> unit

val curves_regressed : curve_verdict list -> bool
(** [true] iff some verdict is {!Curve_bad}. *)

module Solver = Prbp_solver.Solver
module Clock = Prbp_obs.Clock
module Span = Prbp_obs.Span
module Metrics = Prbp_obs.Metrics

let m_seconds =
  Metrics.histogram ~help:"Wall-clock seconds per harness experiment"
    "prbp_experiment_seconds"

(* Same instrument the engine publishes into (the registry dedups by
   name), so an experiment can read its own expansion footprint as a
   before/after delta. *)
let m_engine_expansions = Metrics.counter "prbp_engine_expansions_total"

type ctx = {
  budget : Solver.Budget.t;
  telemetry : Solver.Telemetry.sink;
  solve_jobs : int;
}

(* No domain oversubscription: with [experiment_jobs] experiments in
   flight, each solve gets the leftover cores (at least one).  Pure, so
   the cap is testable without spawning anything. *)
let solve_jobs ~cores ~experiment_jobs =
  if cores < 1 then invalid_arg "Experiment.solve_jobs: cores >= 1";
  if experiment_jobs < 1 then
    invalid_arg "Experiment.solve_jobs: experiment_jobs >= 1";
  max 1 (cores / experiment_jobs)

type t = {
  id : string;
  paper : string;
  claim : string;
  budget : Solver.Budget.t;
  run : Format.formatter -> ctx -> bool;
}

let make ~id ~paper ~claim ?(budget = Solver.Budget.default) run =
  { id; paper; claim; budget; run }

let run_one ?(solve_jobs = 1) ppf e =
  let body () =
    Format.fprintf ppf "@.=== %s — %s ===@." e.id e.paper;
    Format.fprintf ppf "claim: %s@.@." e.claim;
    let summary, sink = Solver.Telemetry.summarize () in
    let expansions0 = Metrics.Counter.value m_engine_expansions in
    let t0 = Clock.now () in
    let ok = e.run ppf { budget = e.budget; telemetry = sink; solve_jobs } in
    let elapsed_s = Clock.elapsed_s t0 in
    Metrics.Histogram.observe m_seconds elapsed_s;
    (* the engine counter is process-global: the delta is exact under
       sequential runs and an aggregate under parallel workers *)
    Span.add_attr "engine_expansions"
      (string_of_int (Metrics.Counter.value m_engine_expansions - expansions0));
    Span.add_attr "verdict" (if ok then "confirmed" else "not-confirmed");
    (* Aggregate solver telemetry for the whole experiment: experiments
       that threaded [ctx.telemetry] into their solves get a one-line
       search-effort footprint next to the verdict. *)
    (if summary.Solver.Telemetry.solves > 0 then
       let explored =
         match summary.Solver.Telemetry.last with
         | Some p -> p.Solver.Telemetry.explored
         | None -> summary.Solver.Telemetry.peak_explored
       in
       Format.fprintf ppf "@.telemetry: %d solve(s), peak %d states%s@."
         summary.Solver.Telemetry.solves
         (max explored summary.Solver.Telemetry.peak_explored)
         (if summary.Solver.Telemetry.prune_events > 0 then
            " (branch-and-bound active)"
          else ""));
    Format.fprintf ppf "@.[%s] %s  (%.2fs)@." e.id
      (if ok then "CONFIRMED" else "NOT CONFIRMED")
      elapsed_s;
    ok
  in
  if not (Span.enabled ()) then body ()
  else Span.with_ ~name:("experiment." ^ e.id) body

(* Parallel dispatch over a shared work queue: each worker renders its
   experiment into a private buffer, so the blocks are re-emitted to
   [ppf] intact and in list (= id) order regardless of completion
   order.  stdlib Domain/Mutex only.  Each experiment gets a private
   telemetry summary (created inside [run_one]), so no cross-domain
   sharing. *)
let run_parallel ~jobs ~solve_jobs ppf es =
  let es = Array.of_list es in
  let n = Array.length es in
  let results = Array.make n (false, "") in
  let next = ref 0 in
  let lock = Mutex.create () in
  let take () =
    Mutex.lock lock;
    let i = !next in
    incr next;
    Mutex.unlock lock;
    if i < n then Some i else None
  in
  let rec worker () =
    match take () with
    | None -> ()
    | Some i ->
        let buf = Buffer.create 1024 in
        let bppf = Format.formatter_of_buffer buf in
        let ok = run_one ~solve_jobs bppf es.(i) in
        Format.pp_print_flush bppf ();
        results.(i) <- (ok, Buffer.contents buf);
        worker ()
  in
  let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  Array.iter (fun (_, out) -> Format.pp_print_string ppf out) results;
  Array.fold_left (fun acc (ok, _) -> acc + Bool.to_int ok) 0 results

let run_all ?(jobs = 1) ppf es =
  let total = List.length es in
  let jobs = max 1 (min jobs total) in
  let sj =
    solve_jobs
      ~cores:(max 1 (Domain.recommended_domain_count ()))
      ~experiment_jobs:jobs
  in
  let confirmed =
    if jobs = 1 then
      List.fold_left
        (fun acc e -> acc + if run_one ~solve_jobs:sj ppf e then 1 else 0)
        0 es
    else run_parallel ~jobs ~solve_jobs:sj ppf es
  in
  Format.fprintf ppf "@.%d/%d experiments confirmed@." confirmed total;
  (confirmed, total)

(* Width-regression gate over committed BENCH_solver.json bracket rows.

   The bench JSON is machine-written with one bracket object per line,
   so a line-based field scan is enough — no JSON dependency.  Parsing
   is deliberately lenient: rows missing a field are skipped (an old
   schema must not crash the gate, it just contributes no baseline). *)

type row = {
  family : string;
  game : string;
  r : int;
  interval_width : int;
  lower_rule : string;
  upper_rule : string;
}

let key row = (row.family, row.game, row.r)

(* ["<name>": <...>] scanning on a single line.  Values are either
   quoted strings or bare integers; both appear in bracket rows. *)
let find_field line name =
  let needle = Printf.sprintf "\"%s\":" name in
  let nl = String.length needle and ll = String.length line in
  let rec search i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then Some (i + nl)
    else search (i + 1)
  in
  Option.map
    (fun start ->
      let start = ref start in
      while !start < ll && line.[!start] = ' ' do
        incr start
      done;
      !start)
    (search 0)

let string_field line name =
  match find_field line name with
  | Some i when i < String.length line && line.[i] = '"' -> (
      match String.index_from_opt line (i + 1) '"' with
      | Some j -> Some (String.sub line (i + 1) (j - i - 1))
      | None -> None)
  | _ -> None

let int_field line name =
  match find_field line name with
  | None -> None
  | Some i ->
      let j = ref i in
      let ll = String.length line in
      while
        !j < ll && (line.[!j] = '-' || (line.[!j] >= '0' && line.[!j] <= '9'))
      do
        incr j
      done;
      int_of_string_opt (String.sub line i (!j - i))

let row_of_line line =
  if string_field line "kind" <> Some "bracket" then None
  else
    match
      ( string_field line "family",
        string_field line "game",
        int_field line "r",
        int_field line "interval_width" )
    with
    | Some family, Some game, Some r, Some interval_width ->
        Some
          {
            family;
            game;
            r;
            interval_width;
            lower_rule =
              Option.value ~default:"?" (string_field line "lower_rule");
            upper_rule =
              Option.value ~default:"?" (string_field line "upper_rule");
          }
    | _ -> None

let rows_of_string s =
  String.split_on_char '\n' s |> List.filter_map row_of_line

let rows_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> rows_of_string (really_input_string ic (in_channel_length ic)))

type verdict =
  | Ok_width of { row : row; baseline : int }
  | Regressed of { row : row; baseline : int; limit : int }
  | New_case of row

let check ?(slack_pct = 10) ~baseline current =
  List.map
    (fun row ->
      match List.find_opt (fun b -> key b = key row) baseline with
      | None -> New_case row
      | Some b ->
          (* brackets run under a wall-clock budget, so widths wobble a
             little run to run; the gate allows [slack_pct] percent of
             growth (and one absolute unit for tiny baselines) before
             declaring a regression *)
          let limit =
            max (b.interval_width + 1)
              (b.interval_width * (100 + slack_pct) / 100)
          in
          if row.interval_width > limit then
            Regressed { row; baseline = b.interval_width; limit }
          else Ok_width { row; baseline = b.interval_width })
    current

let pp_verdict ppf = function
  | Ok_width { row; baseline } ->
      Format.fprintf ppf "ok        %s %s r=%d: width %d (baseline %d)"
        row.family row.game row.r row.interval_width baseline
  | Regressed { row; baseline; limit } ->
      Format.fprintf ppf
        "REGRESSED %s %s r=%d: width %d > limit %d (baseline %d, lower %s, \
         upper %s)"
        row.family row.game row.r row.interval_width limit baseline
        row.lower_rule row.upper_rule
  | New_case row ->
      Format.fprintf ppf "new       %s %s r=%d: width %d (no baseline)"
        row.family row.game row.r row.interval_width

let regressed verdicts =
  List.exists (function Regressed _ -> true | _ -> false) verdicts

(* ------------------------------------------------------------------ *)
(* Frontier rows (schema v9).  v8 files simply contain no "frontier"
   rows, so the same lenient scan accepts both generations. *)

type frontier_row = {
  f_family : string;
  f_game : string;  (* "multi-rbp:P" / "multi-prbp:P" *)
  points_n : int;
  open_n : int;
  front_width : int;  (* summed communication interval widths *)
}

let frontier_key row = (row.f_family, row.f_game)

let frontier_row_of_line line =
  if string_field line "kind" <> Some "frontier" then None
  else
    match
      ( string_field line "family",
        string_field line "game",
        int_field line "points_n",
        int_field line "open_n",
        int_field line "front_width" )
    with
    | Some f_family, Some f_game, Some points_n, Some open_n, Some front_width
      ->
        Some { f_family; f_game; points_n; open_n; front_width }
    | _ -> None

let frontier_rows_of_string s =
  String.split_on_char '\n' s |> List.filter_map frontier_row_of_line

let frontier_rows_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      frontier_rows_of_string
        (really_input_string ic (in_channel_length ic)))

type frontier_verdict =
  | Frontier_ok of { row : frontier_row; baseline : frontier_row }
  | Frontier_regressed of {
      row : frontier_row;
      baseline : frontier_row;
      what : string;
    }
  | Frontier_new of frontier_row

let check_frontiers ?(slack_pct = 10) ~baseline current =
  List.map
    (fun row ->
      match
        List.find_opt (fun b -> frontier_key b = frontier_key row) baseline
      with
      | None -> Frontier_new row
      | Some b ->
          (* fewer settled capacities, more open intervals, or fatter
             intervals than the committed run are each a regression;
             the width gets the same wobble slack as brackets *)
          let width_limit =
            max (b.front_width + 1) (b.front_width * (100 + slack_pct) / 100)
          in
          if row.points_n < b.points_n then
            Frontier_regressed { row; baseline = b; what = "fewer points" }
          else if row.open_n > b.open_n then
            Frontier_regressed
              { row; baseline = b; what = "more open intervals" }
          else if row.front_width > width_limit then
            Frontier_regressed
              {
                row;
                baseline = b;
                what = Printf.sprintf "width > limit %d" width_limit;
              }
          else Frontier_ok { row; baseline = b })
    current

let pp_frontier_verdict ppf = function
  | Frontier_ok { row; baseline } ->
      Format.fprintf ppf
        "ok        %s %s: %d points, %d open, width %d (baseline width %d)"
        row.f_family row.f_game row.points_n row.open_n row.front_width
        baseline.front_width
  | Frontier_regressed { row; baseline; what } ->
      Format.fprintf ppf
        "REGRESSED %s %s: %s (now %d points / %d open / width %d, baseline \
         %d / %d / %d)"
        row.f_family row.f_game what row.points_n row.open_n row.front_width
        baseline.points_n baseline.open_n baseline.front_width
  | Frontier_new row ->
      Format.fprintf ppf "new       %s %s: %d points, %d open, width %d (no \
                          baseline)"
        row.f_family row.f_game row.points_n row.open_n row.front_width

let frontier_regressed verdicts =
  List.exists (function Frontier_regressed _ -> true | _ -> false) verdicts

(* ------------------------------------------------------------------ *)
(* Convergence-curve gate (schema v10).  Unlike the width gates above,
   this one is structural, not comparative: timing-sensitive baselines
   flake in CI, but every honestly-recorded curve must be monotone and
   must end exactly at the bracket it certifies — properties a fresh
   run can violate only through a recording bug. *)

module Convergence = Prbp_solver.Solver.Convergence

type curve_verdict =
  | Curve_ok of {
      family : string;
      game : string;
      r : int;
      points : int;
      time_to_final : float;
    }
  | Curve_bad of { family : string; game : string; r : int; what : string }

let check_curve ~family ~game ~r ~lower ~upper curve =
  match Convergence.final curve with
  | None -> Curve_bad { family; game; r; what = "empty curve" }
  | Some (last : Convergence.point) ->
      if not (Convergence.monotone curve) then
        Curve_bad
          {
            family;
            game;
            r;
            what =
              "non-monotone curve (lower decreased, upper increased, or \
               time ran backwards)";
          }
      else if last.Convergence.lower <> lower then
        Curve_bad
          {
            family;
            game;
            r;
            what =
              Printf.sprintf "final lower %d <> certified %d"
                last.Convergence.lower lower;
          }
      else if last.Convergence.upper <> Some upper then
        Curve_bad
          {
            family;
            game;
            r;
            what =
              Printf.sprintf "final upper %s <> certified %d"
                (match last.Convergence.upper with
                | Some u -> string_of_int u
                | None -> "none")
                upper;
          }
      else
        Curve_ok
          {
            family;
            game;
            r;
            points = List.length curve;
            time_to_final = last.Convergence.t_s;
          }

let pp_curve_verdict ppf = function
  | Curve_ok { family; game; r; points; time_to_final } ->
      Format.fprintf ppf
        "ok        %s %s r=%d: %d curve points, final at %.3fs" family game r
        points time_to_final
  | Curve_bad { family; game; r; what } ->
      Format.fprintf ppf "BAD CURVE %s %s r=%d: %s" family game r what

let curves_regressed verdicts =
  List.exists (function Curve_bad _ -> true | _ -> false) verdicts

(** Experiment registry: one entry per proposition / theorem / figure
    reproduced from the paper.  [bench/main.exe] runs these and prints
    the paper-vs-measured comparison recorded in EXPERIMENTS.md.

    Every experiment runs under a {!ctx}: a per-experiment
    {!Prbp_solver.Solver.Budget.t} plus a telemetry sink aggregated by
    the harness.  Experiments thread [ctx.budget] / [ctx.telemetry]
    into their solver calls and pattern-match the resulting
    {!Prbp_solver.Solver.outcome}s — a budget-truncated solve reports
    its certified [Bounded] interval instead of aborting the
    experiment. *)

module Solver = Prbp_solver.Solver

type ctx = {
  budget : Solver.Budget.t;
      (** resource envelope for each solver call in this experiment *)
  telemetry : Solver.Telemetry.sink;
      (** harness-owned aggregation sink; pass it to solves that
          should count toward the experiment's effort footprint *)
  solve_jobs : int;
      (** how many domains each solver call may use ([~jobs]); chosen
          by the harness so that [experiment_jobs * solve_jobs] never
          exceeds the host core count (see {!solve_jobs}) *)
}

val solve_jobs : cores:int -> experiment_jobs:int -> int
(** [solve_jobs ~cores ~experiment_jobs] is the per-solve domain
    budget when [experiment_jobs] experiments run concurrently on
    [cores] cores: [max 1 (cores / experiment_jobs)] — the product
    with [experiment_jobs] never oversubscribes the host.  Raises
    [Invalid_argument] unless both arguments are positive. *)

type t = {
  id : string;  (** e.g. "E01" *)
  paper : string;  (** e.g. "Proposition 4.2 / Figure 1" *)
  claim : string;  (** one-line statement of what the paper claims *)
  budget : Solver.Budget.t;  (** per-experiment solve budget *)
  run : Format.formatter -> ctx -> bool;
      (** print measurements; return whether the claim was confirmed *)
}

val make :
  id:string ->
  paper:string ->
  claim:string ->
  ?budget:Solver.Budget.t ->
  (Format.formatter -> ctx -> bool) ->
  t
(** [budget] defaults to {!Solver.Budget.default}. *)

val run_one : ?solve_jobs:int -> Format.formatter -> t -> bool
(** Run one experiment under a fresh ctx; prints a one-line telemetry
    aggregate (solve count, peak explored states) when the experiment
    used [ctx.telemetry].  [solve_jobs] (default 1) is stored in the
    ctx for the experiment's solver calls. *)

val run_all : ?jobs:int -> Format.formatter -> t list -> int * int
(** Run every experiment; returns (confirmed, total).

    [jobs] (default 1) dispatches experiments to that many parallel
    domains over a shared work queue (stdlib [Domain]/[Mutex] only).
    Each ctx carries [solve_jobs = max 1 (cores / jobs)] so that
    per-solve parallelism composes with experiment-level parallelism
    without oversubscribing the host.
    Each experiment renders into a private buffer and owns a private
    telemetry summary, so per-experiment output blocks stay intact and
    are printed in list order — byte for byte the layout of a
    sequential run (timings aside).  Experiments must not share
    mutable state; ours build their DAGs and solvers from scratch. *)

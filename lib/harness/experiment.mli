(** Experiment registry: one entry per proposition / theorem / figure
    reproduced from the paper.  [bench/main.exe] runs these and prints
    the paper-vs-measured comparison recorded in EXPERIMENTS.md. *)

type t = {
  id : string;  (** e.g. "E01" *)
  paper : string;  (** e.g. "Proposition 4.2 / Figure 1" *)
  claim : string;  (** one-line statement of what the paper claims *)
  run : Format.formatter -> bool;
      (** print measurements; return whether the claim was confirmed *)
}

val make :
  id:string ->
  paper:string ->
  claim:string ->
  (Format.formatter -> bool) ->
  t

val run_one : Format.formatter -> t -> bool

val run_all : ?jobs:int -> Format.formatter -> t list -> int * int
(** Run every experiment; returns (confirmed, total).

    [jobs] (default 1) dispatches experiments to that many parallel
    domains over a shared work queue (stdlib [Domain]/[Mutex] only).
    Each experiment renders into a private buffer, so per-experiment
    output blocks stay intact and are printed in list order — byte
    for byte the layout of a sequential run (timings aside).
    Experiments must not share mutable state; ours build their DAGs
    and solvers from scratch. *)

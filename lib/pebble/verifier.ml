module Dag = Prbp_dag.Dag

let add_sorted x l = List.sort_uniq compare (x :: l)

let remove x l = List.filter (( <> ) x) l

module R = struct
  type state = {
    red : int list;
    blue : int list;
    computed : int list;
    io : int;
  }

  let initial g =
    { red = []; blue = List.sort compare (Dag.sources g); computed = []; io = 0 }

  let step ~r g st (m : Move.R.t) =
    match m with
    | Move.R.Load v ->
        (* "place a red pebble on any node v that has a blue pebble" *)
        if not (List.mem v st.blue) then Error "load: no blue pebble"
        else if List.mem v st.red then
          (* legal but a pure waste: state unchanged, cost paid *)
          Ok { st with io = st.io + 1 }
        else if List.length st.red >= r then Error "load: capacity"
        else Ok { st with red = add_sorted v st.red; io = st.io + 1 }
    | Move.R.Save v ->
        (* "place a blue pebble on any node v that has a red pebble" *)
        if not (List.mem v st.red) then Error "save: no red pebble"
        else Ok { st with blue = add_sorted v st.blue; io = st.io + 1 }
    | Move.R.Compute v ->
        (* "if all the inputs of a non-source node v have a red pebble,
           then also place a red pebble on v" — once per node *)
        if Dag.is_source g v then Error "compute: source"
        else if List.mem v st.computed then Error "compute: one-shot"
        else if
          not (List.for_all (fun u -> List.mem u st.red) (Dag.preds g v))
        then Error "compute: inputs not red"
        else if List.mem v st.red then
          Ok { st with computed = add_sorted v st.computed }
        else if List.length st.red >= r then Error "compute: capacity"
        else
          Ok
            {
              st with
              red = add_sorted v st.red;
              computed = add_sorted v st.computed;
            }
    | Move.R.Delete v ->
        (* "remove a red pebble from any node" *)
        if not (List.mem v st.red) then Error "delete: no red pebble"
        else Ok { st with red = remove v st.red }
    | Move.R.Slide _ -> Error "slide: not part of the base game"

  let is_terminal g st = List.for_all (fun v -> List.mem v st.blue) (Dag.sinks g)

  let run ~r g moves =
    List.fold_left
      (fun acc m -> Result.bind acc (fun st -> step ~r g st m))
      (Ok (initial g))
      moves

  let check ~r g moves =
    match run ~r g moves with
    | Error e -> Error e
    | Ok st ->
        if is_terminal g st then Ok st.io
        else Error "incomplete pebbling: some sink has no blue pebble"
end

module P = struct
  type pebble = No_pebble | Blue_only | Blue_and_light | Dark_only

  type state = {
    pebbles : (int * pebble) list;
    marked : (int * int) list;
    io : int;
  }

  let pebble_of st v = List.assoc v st.pebbles

  let set st v p =
    { st with pebbles = List.map (fun (w, q) -> if w = v then (w, p) else (w, q)) st.pebbles }

  let red_count st =
    List.length
      (List.filter
         (fun (_, p) -> p = Blue_and_light || p = Dark_only)
         st.pebbles)

  let initial g =
    {
      pebbles =
        List.init (Dag.n_nodes g) (fun v ->
            (v, if Dag.is_source g v then Blue_only else No_pebble));
      marked = [];
      io = 0;
    }

  let fully_computed g st u =
    List.for_all (fun p -> List.mem (p, u) st.marked) (Dag.preds g u)

  let all_out_marked g st v =
    List.for_all (fun w -> List.mem (v, w) st.marked) (Dag.succs g v)

  let step ~r g st (m : Move.P.t) =
    match m with
    | Move.P.Load v -> (
        (* "place a light red pebble on any node v that has a blue
           pebble" *)
        match pebble_of st v with
        | Blue_only ->
            if red_count st >= r then Error "load: capacity"
            else Ok { (set st v Blue_and_light) with io = st.io + 1 }
        | Blue_and_light -> Ok { st with io = st.io + 1 }
        | No_pebble | Dark_only -> Error "load: no blue pebble")
    | Move.P.Save v -> (
        (* "replace a dark red pebble ... by a blue and a light red" *)
        match pebble_of st v with
        | Dark_only -> Ok { (set st v Blue_and_light) with io = st.io + 1 }
        | _ -> Error "save: no dark red pebble")
    | Move.P.Compute (u, v) ->
        (* conditions (i)-(iii) of the partial compute rule, plus the
           one-shot restriction on edges *)
        if not (Dag.has_edge g u v) then Error "compute: no such edge"
        else if List.mem (u, v) st.marked then Error "compute: edge marked"
        else if not (fully_computed g st u) then
          Error "compute: input not fully computed"
        else if
          not
            (match pebble_of st u with
            | Blue_and_light | Dark_only -> true
            | _ -> false)
        then Error "compute: input not red"
        else begin
          match pebble_of st v with
          | Blue_only -> Error "compute: target has only a blue pebble"
          | No_pebble when red_count st >= r -> Error "compute: capacity"
          | No_pebble | Blue_and_light | Dark_only ->
              Ok
                {
                  (set st v Dark_only) with
                  marked = List.sort compare ((u, v) :: st.marked);
                }
        end
    | Move.P.Delete v -> (
        (* light red always removable; dark red only once every output
           edge is marked *)
        match pebble_of st v with
        | Blue_and_light -> Ok (set st v Blue_only)
        | Dark_only ->
            if all_out_marked g st v then Ok (set st v No_pebble)
            else Error "delete: dark red with unmarked out-edges"
        | _ -> Error "delete: no red pebble")
    | Move.P.Clear _ -> Error "clear: not part of the base game"

  let is_terminal g st =
    List.length st.marked = Dag.n_edges g
    && List.for_all
         (fun v ->
           match pebble_of st v with
           | Blue_only | Blue_and_light -> true
           | _ -> false)
         (Dag.sinks g)

  let run ~r g moves =
    List.fold_left
      (fun acc m -> Result.bind acc (fun st -> step ~r g st m))
      (Ok (initial g))
      moves

  let check ~r g moves =
    match run ~r g moves with
    | Error e -> Error e
    | Ok st ->
        if is_terminal g st then Ok st.io
        else Error "incomplete pebbling: unmarked edges or an unsaved sink"
end

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let agree_rbp ~r g moves =
  let eng = Rbp.start (Rbp.config ~r ()) g in
  let rec go i st = function
    | [] ->
        let final_red = Prbp_dag.Bitset.to_list (Rbp.red_set eng) in
        let final_blue = Prbp_dag.Bitset.to_list (Rbp.blue_set eng) in
        if Rbp.io_cost eng <> st.R.io then errf "cost mismatch at end"
        else if final_red <> st.R.red then errf "red set mismatch"
        else if final_blue <> st.R.blue then errf "blue set mismatch"
        else if
          Prbp_dag.Bitset.to_list (Rbp.computed_set eng) <> st.R.computed
        then errf "computed set mismatch"
        else if Rbp.is_terminal eng <> R.is_terminal g st then
          errf "terminality mismatch"
        else Ok ()
    | m :: rest -> (
        match (Rbp.apply eng m, R.step ~r g st m) with
        | Ok (), Ok st' -> go (i + 1) st' rest
        | Error _, Error _ -> Ok () (* both reject at the same index *)
        | Ok (), Error e -> errf "move #%d: engine accepts, verifier: %s" i e
        | Error e, Ok _ -> errf "move #%d: verifier accepts, engine: %s" i e)
  in
  go 0 (R.initial g) moves

let agree_prbp ~r g moves =
  let eng = Prbp.start (Prbp.config ~r ()) g in
  let pebble_eq (p : Prbp.Pebble.t) (q : P.pebble) =
    match (p, q) with
    | Prbp.Pebble.None_, P.No_pebble
    | Prbp.Pebble.Blue, P.Blue_only
    | Prbp.Pebble.Blue_light, P.Blue_and_light
    | Prbp.Pebble.Dark, P.Dark_only ->
        true
    | _ -> false
  in
  let rec go i st = function
    | [] ->
        if Prbp.io_cost eng <> st.P.io then errf "cost mismatch"
        else if
          not
            (List.for_all
               (fun (v, q) -> pebble_eq (Prbp.pebble eng v) q)
               st.P.pebbles)
        then errf "pebble state mismatch"
        else if
          List.length st.P.marked
          <> Prbp_dag.Bitset.cardinal (Prbp.marked_set eng)
        then errf "marked set mismatch"
        else if Prbp.is_terminal eng <> P.is_terminal g st then
          errf "terminality mismatch"
        else Ok ()
    | m :: rest -> (
        match (Prbp.apply eng m, P.step ~r g st m) with
        | Ok (), Ok st' -> go (i + 1) st' rest
        | Error _, Error _ -> Ok ()
        | Ok (), Error e -> errf "move #%d: engine accepts, verifier: %s" i e
        | Error e, Ok _ -> errf "move #%d: verifier accepts, engine: %s" i e)
  in
  go 0 (P.initial g) moves

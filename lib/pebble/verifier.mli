(** Independent re-implementation of the game rules, for differential
    testing.

    {!Rbp} and {!Prbp} are optimized mutable engines (bitsets, counter
    caches).  This module re-implements the Section-1 and Section-3
    transition rules a second time in the most literal way possible —
    persistent maps, no caches, every precondition spelled out next to
    the sentence of the paper it comes from.  The test-suite drives
    both implementations with the same (legal and illegal) move
    sequences and requires identical verdicts, states and costs, so a
    bug would have to be introduced twice, in two different shapes, to
    go unnoticed. *)

(** Literal RBP checker. *)
module R : sig
  type state = {
    red : int list;  (** sorted *)
    blue : int list;  (** sorted *)
    computed : int list;  (** sorted *)
    io : int;
  }

  val initial : Prbp_dag.Dag.t -> state

  val step :
    r:int -> Prbp_dag.Dag.t -> state -> Move.R.t -> (state, string) result
  (** One-shot, no sliding, deletion allowed — the paper's base game. *)

  val is_terminal : Prbp_dag.Dag.t -> state -> bool

  val run :
    r:int -> Prbp_dag.Dag.t -> Move.R.t list -> (state, string) result

  val check : r:int -> Prbp_dag.Dag.t -> Move.R.t list -> (int, string) result
  (** Replay through the literal rules and additionally require the
      final state to be {!is_terminal}; [Ok cost] is the certified I/O
      cost of a {e complete} pebbling.  This is the independent
      certificate checker used by the bounds subsystem: a strategy cost
      is believed only after this (or the engine's own [check]) accepts
      the full move list. *)
end

(** Literal PRBP checker. *)
module P : sig
  type pebble = No_pebble | Blue_only | Blue_and_light | Dark_only

  type state = {
    pebbles : (int * pebble) list;  (** sorted by node; total *)
    marked : (int * int) list;  (** sorted edge list *)
    io : int;
  }

  val initial : Prbp_dag.Dag.t -> state

  val step :
    r:int -> Prbp_dag.Dag.t -> state -> Move.P.t -> (state, string) result

  val is_terminal : Prbp_dag.Dag.t -> state -> bool

  val run :
    r:int -> Prbp_dag.Dag.t -> Move.P.t list -> (state, string) result

  val check : r:int -> Prbp_dag.Dag.t -> Move.P.t list -> (int, string) result
  (** Like {!R.check}: replay plus terminality (every edge marked,
      every sink blue), returning the certified I/O cost. *)
end

val agree_rbp :
  r:int -> Prbp_dag.Dag.t -> Move.R.t list -> (unit, string) result
(** Replays the moves through both the engine and this verifier; [Ok]
    iff both accept with equal costs and equal final red/blue/computed
    sets, or both reject at the same move index. *)

val agree_prbp :
  r:int -> Prbp_dag.Dag.t -> Move.P.t list -> (unit, string) result

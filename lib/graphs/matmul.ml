module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset

type t = { dag : Prbp_dag.Dag.t; m1 : int; m2 : int; m3 : int }

let a_id _m1 m2 _m3 i k = (i * m2) + k

let b_id m1 m2 m3 k j = (m1 * m2) + (k * m3) + j

let p_id m1 m2 m3 i k j =
  (m1 * m2) + (m2 * m3) + (((i * m2) + k) * m3) + j

let c_id m1 m2 m3 i j =
  (m1 * m2) + (m2 * m3) + (m1 * m2 * m3) + (i * m3) + j

let make ~m1 ~m2 ~m3 =
  if m1 < 1 || m2 < 1 || m3 < 1 then invalid_arg "Matmul.make: sizes >= 1";
  let n = (m1 * m2) + (m2 * m3) + (m1 * m2 * m3) + (m1 * m3) in
  let names = Array.make n "" in
  let edges = ref [] in
  for i = 0 to m1 - 1 do
    for k = 0 to m2 - 1 do
      names.(a_id m1 m2 m3 i k) <- Printf.sprintf "A%d,%d" i k
    done
  done;
  for k = 0 to m2 - 1 do
    for j = 0 to m3 - 1 do
      names.(b_id m1 m2 m3 k j) <- Printf.sprintf "B%d,%d" k j
    done
  done;
  for i = 0 to m1 - 1 do
    for j = 0 to m3 - 1 do
      names.(c_id m1 m2 m3 i j) <- Printf.sprintf "C%d,%d" i j;
      for k = 0 to m2 - 1 do
        let p = p_id m1 m2 m3 i k j in
        names.(p) <- Printf.sprintf "p%d,%d,%d" i k j;
        edges := (a_id m1 m2 m3 i k, p) :: !edges;
        edges := (b_id m1 m2 m3 k j, p) :: !edges;
        edges := (p, c_id m1 m2 m3 i j) :: !edges
      done
    done
  done;
  let family = Printf.sprintf "matmul:%d:%d:%d" m1 m2 m3 in
  { dag = Dag.make ~names ~family ~n !edges; m1; m2; m3 }

let a t i k = a_id t.m1 t.m2 t.m3 i k

let b t k j = b_id t.m1 t.m2 t.m3 k j

let p t i k j = p_id t.m1 t.m2 t.m3 i k j

let c t i j = c_id t.m1 t.m2 t.m3 i j

let internal_edges t =
  let es = Bitset.create (Dag.n_edges t.dag) in
  for i = 0 to t.m1 - 1 do
    for k = 0 to t.m2 - 1 do
      for j = 0 to t.m3 - 1 do
        es |> fun es ->
        Bitset.add es (Dag.edge_id t.dag (p t i k j) (c t i j))
      done
    done
  done;
  es

let trivial_cost t = Dag.trivial_cost t.dag

let lower_bound_dims ~m1 ~m2 ~m3 ~r =
  let s = float_of_int (2 * r) in
  let products = float_of_int (m1 * m2 * m3) in
  Float.max 0. (float_of_int r *. ((products /. ((s ** 1.5) +. s)) -. 1.))

let lower_bound t ~r = lower_bound_dims ~m1:t.m1 ~m2:t.m2 ~m3:t.m3 ~r

type game = [ `Rbp | `Prbp ]

type form = game:game -> r:int -> args:int list -> (string * float) list

let table : (string, form) Hashtbl.t = Hashtbl.create 16

let register head form =
  if Hashtbl.mem table head then
    invalid_arg (Printf.sprintf "Closed_form.register: duplicate %S" head);
  Hashtbl.replace table head form

let forms ~game ~r family =
  match String.split_on_char ':' family with
  | [] -> []
  | head :: rest -> (
      match Hashtbl.find_opt table head with
      | None -> []
      | Some form ->
          let opts = List.map int_of_string_opt rest in
          if List.exists Option.is_none opts then []
          else
            let args = List.map Option.get opts in
            (match form ~game ~r ~args with
            | forms -> List.filter (fun (_, v) -> v > 0.) forms
            | exception _ -> []))

(* ------------------------------------------------------------------ *)
(* Built-in families.  Every form registered here is a theorem-backed
   lower bound on the optimum of the {e tagged generator's} DAG for the
   stated game; all Section 6.3 bounds are proved via PRBP partition
   arguments, so they hold for RBP too (OPT_RBP ≥ OPT_PRBP). *)

let () =
  (* Theorem 6.9 (S-dominator partitions; game-independent). *)
  register "fft" (fun ~game:_ ~r ~args ->
      match args with
      | [ m ] when m >= 2 -> [ ("fft", Fft.lower_bound_m ~m ~r) ]
      | _ -> [])

let matmul_forms name ~r = function
  | [ m1; m2; m3 ] when m1 >= 1 && m2 >= 1 && m3 >= 1 ->
      [ (name, Matmul.lower_bound_dims ~m1 ~m2 ~m3 ~r) ]
  | _ -> []

let () =
  (* Theorem 6.10 (S-edge partitions; game-independent). *)
  register "matmul" (fun ~game:_ ~r ~args -> matmul_forms "matmul" ~r args);
  (* Q·K^T is exactly the m×d × d×m matmul DAG. *)
  register "attention-qkt" (fun ~game:_ ~r ~args ->
      match args with
      | [ m; d ] -> matmul_forms "attention-qkt" ~r [ m; d; m ]
      | _ -> []);
  (* Theorem 6.11 bounds the Q·K^T stage; it transfers to the full
     attention DAG by restriction — any pebbling of the full DAG,
     restricted to the Q·K^T subgraph's moves, is a valid pebbling of
     that subgraph at the same [r] and no larger cost. *)
  register "attention" (fun ~game:_ ~r ~args ->
      match args with
      | [ m; d ] when m >= 1 && d >= 1 ->
          [ ("attention", Attention.lower_bound ~m ~d ~r) ]
      | _ -> []);
  (* Appendix A.2 closed forms are the {e exact} optimum at r = k+1 —
     hence sound lower bounds there, and only there (at larger [r] the
     optimum drops below them, so they must not be emitted). *)
  register "tree" (fun ~game ~r ~args ->
      match args with
      | [ k; depth ] when k >= 2 && depth >= 1 && r = k + 1 ->
          let v =
            match game with
            | `Rbp -> Tree.rbp_opt ~k ~depth
            | `Prbp -> Tree.prbp_opt ~k ~depth
          in
          [ ("tree-opt", float_of_int v) ]
      | _ -> [])

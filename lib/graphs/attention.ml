module Dag = Prbp_dag.Dag

let qkt ~m ~d =
  let t = Matmul.make ~m1:m ~m2:d ~m3:m in
  { t with Matmul.dag =
      Dag.with_family t.Matmul.dag (Printf.sprintf "attention-qkt:%d:%d" m d) }

type full = { dag : Prbp_dag.Dag.t; m : int; d : int }

(* Node layout for the full attention DAG, in blocks:
   Q (m*d) | K (m*d) | V (m*d) | score products (m*m*d) | S (m*m) |
   sigma (m) | P (m*m) | out products (m*m*d) | O (m*d). *)
let full ~m ~d =
  if m < 1 || d < 1 then invalid_arg "Attention.full";
  let q i k = (i * d) + k in
  let koff = m * d in
  let k_ j k = koff + (j * d) + k in
  let voff = 2 * m * d in
  let v j k = voff + (j * d) + k in
  let spoff = 3 * m * d in
  let sp i j k = spoff + (((i * m) + j) * d) + k in
  let soff = spoff + (m * m * d) in
  let s i j = soff + (i * m) + j in
  let sigoff = soff + (m * m) in
  let sigma i = sigoff + i in
  let poff = sigoff + m in
  let p i j = poff + (i * m) + j in
  let opoff = poff + (m * m) in
  let op i j k = opoff + (((i * m) + j) * d) + k in
  let ooff = opoff + (m * m * d) in
  let o i k = ooff + (i * d) + k in
  let n = ooff + (m * d) in
  let edges = ref [] in
  let add u w = edges := (u, w) :: !edges in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      for k = 0 to d - 1 do
        (* scores: S_ij = sum_k Q_ik * K_jk *)
        add (q i k) (sp i j k);
        add (k_ j k) (sp i j k);
        add (sp i j k) (s i j);
        (* outputs: O_ik = sum_j P_ij * V_jk *)
        add (p i j) (op i j k);
        add (v j k) (op i j k);
        add (op i j k) (o i k)
      done;
      (* softmax: sigma_i aggregates row i; P_ij from S_ij and sigma_i *)
      add (s i j) (sigma i);
      add (s i j) (p i j);
      add (sigma i) (p i j)
    done
  done;
  { dag = Dag.make ~family:(Printf.sprintf "attention:%d:%d" m d) ~n !edges;
    m; d }

let lower_bound ~m ~d ~r =
  let mf = float_of_int m and df = float_of_int d and rf = float_of_int r in
  if r >= d * d then mf *. mf *. df *. df /. (4. *. rf)
  else
    let s = 2. *. rf in
    rf *. ((mf *. mf *. df /. ((s ** 1.5) +. s)) -. 1.)

module Dag = Prbp_dag.Dag

type t = { dag : Prbp_dag.Dag.t; k : int; depth : int }

let pow k e =
  let rec go acc e = if e = 0 then acc else go (acc * k) (e - 1) in
  go 1 e

(* Node ids level by level from the root: level l starts at
   (k^l - 1)/(k - 1). *)
let level_offset k l = (pow k l - 1) / (k - 1)

let node t ~level i =
  if level < 0 || level > t.depth then invalid_arg "Tree.node: bad level";
  if i < 0 || i >= pow t.k level then invalid_arg "Tree.node: bad index";
  level_offset t.k level + i

let make ~k ~depth =
  if k < 2 then invalid_arg "Tree.make: k must be >= 2";
  if depth < 1 then invalid_arg "Tree.make: depth must be >= 1";
  let n = level_offset k (depth + 1) in
  let edges = ref [] in
  for l = 0 to depth - 1 do
    let off = level_offset k l and off' = level_offset k (l + 1) in
    for i = 0 to pow k l - 1 do
      for c = 0 to k - 1 do
        edges := (off' + (k * i) + c, off + i) :: !edges
      done
    done
  done;
  { dag = Dag.make ~family:(Printf.sprintf "tree:%d:%d" k depth) ~n !edges;
    k; depth }

let root _ = 0

let n_at_level t l = pow t.k l

let leaves t =
  let off = level_offset t.k t.depth in
  List.init (pow t.k t.depth) (fun i -> off + i)

let rbp_opt ~k ~depth =
  if depth < 2 then pow k depth + 1
  else pow k depth + (2 * pow k (depth - 1)) - 1

let prbp_opt ~k ~depth =
  if depth < k then pow k depth + 1
  else pow k depth + (2 * pow k (depth - k)) - 1

(** The closed-form lower-bound registry.

    Each DAG family of Section 6.3 carries an analytic I/O lower bound
    (Theorems 6.9–6.11, Appendix A.2).  Generators tag the DAGs they
    build with a family string ({!Prbp_dag.Dag.family}, e.g.
    ["fft:128"]); this registry maps such a tag — plus the game and
    cache size — back to the applicable named analytic bounds, so the
    bounds layer can auto-attach them without callers threading formula
    lists around.

    The registry is keyed by the tag's head (the part before the first
    [':']); the remaining [':']-separated components are parsed as
    integer parameters.  Built-in families: [fft:M] (Theorem 6.9),
    [matmul:M1:M2:M3] and [attention-qkt:M:D] (Theorem 6.10),
    [attention:M:D] (Theorem 6.11, transferred to the full DAG by
    restriction), and [tree:K:D] (Appendix A.2 exact optima — emitted
    only at [r = K+1], where "exact" makes them sound lower bounds).

    {b Soundness contract}: a registered form must return certified
    lower bounds on [OPT_game(r)] of the {e generator's} DAG for the
    given parameters.  Anything registered here is believed by
    {!Prbp_bounds.Lower} without further checks — there is nothing to
    replay, unlike partition witnesses — so this is the one place in
    the bounds stack where soundness rests on the theorem citation
    alone. *)

type game = [ `Rbp | `Prbp ]

type form = game:game -> r:int -> args:int list -> (string * float) list
(** A family's bound generator: given the game, the cache size [r] and
    the parsed integer parameters of the tag, return named (label,
    bound) pairs — or [[]] when no sound form applies (wrong arity,
    out-of-range parameters, game/[r] outside the theorem's regime). *)

val register : string -> form -> unit
(** [register head form] installs a family.
    @raise Invalid_argument on a duplicate head. *)

val forms : game:game -> r:int -> string -> (string * float) list
(** [forms ~game ~r family] is every applicable named bound for a
    family tag; [[]] for unknown heads, malformed tags, or forms that
    evaluate ≤ 0.  A form that raises contributes nothing. *)

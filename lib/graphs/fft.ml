module Dag = Prbp_dag.Dag

type t = { dag : Prbp_dag.Dag.t; m : int; log_m : int }

let is_pow2 m = m > 0 && m land (m - 1) = 0

let log2 m =
  let rec go acc m = if m = 1 then acc else go (acc + 1) (m / 2) in
  go 0 m

let node_id m ~layer i = (layer * m) + i

let make ~m =
  if m < 2 || not (is_pow2 m) then
    invalid_arg "Fft.make: m must be a power of two, >= 2";
  let log_m = log2 m in
  let n = (log_m + 1) * m in
  let names =
    Array.init n (fun v -> Printf.sprintf "f%d,%d" (v / m) (v mod m))
  in
  let edges = ref [] in
  for t = 0 to log_m - 1 do
    for i = 0 to m - 1 do
      edges := (node_id m ~layer:t i, node_id m ~layer:(t + 1) i) :: !edges;
      edges :=
        (node_id m ~layer:t i, node_id m ~layer:(t + 1) (i lxor (1 lsl t)))
        :: !edges
    done
  done;
  let family = Printf.sprintf "fft:%d" m in
  { dag = Dag.make ~names ~family ~n !edges; m; log_m }

let node t ~layer i =
  if layer < 0 || layer > t.log_m || i < 0 || i >= t.m then
    invalid_arg "Fft.node";
  node_id t.m ~layer i

let lower_bound_m ~m ~r =
  let mf = float_of_int m in
  let log_m = log mf /. log 2. in
  mf *. log_m /. (4. *. (log (float_of_int (2 * r)) /. log 2.))

let lower_bound t ~r =
  let mf = float_of_int t.m in
  mf *. float_of_int t.log_m /. (4. *. (log (float_of_int (2 * r)) /. log 2.))

(** The standard matrix-multiplication DAG (Theorem 6.10).

    For [C = A·B] with [A : m1×m2] and [B : m2×m3]: [m1·m2 + m2·m3]
    sources, [m1·m2·m3] internal product nodes [p_{ikj} = A_{ik}·B_{kj}]
    of in-degree 2 and out-degree 1, and [m1·m3] sinks [c_{ij}] of
    in-degree [m2].

    Hong–Kung's lower bound [Ω(m1·m2·m3 / √r)] on [OPT_RBP] carries
    over to PRBP via S-edge partitions (Theorem 6.10). *)

type t = {
  dag : Prbp_dag.Dag.t;
  m1 : int;
  m2 : int;
  m3 : int;
}

val make : m1:int -> m2:int -> m3:int -> t

val a : t -> int -> int -> int
(** [a t i k]: source for [A_{ik}]. *)

val b : t -> int -> int -> int
(** [b t k j]: source for [B_{kj}]. *)

val p : t -> int -> int -> int -> int
(** [p t i k j]: product node [A_{ik}·B_{kj}]. *)

val c : t -> int -> int -> int
(** [c t i j]: sink for [C_{ij}]. *)

val internal_edges : t -> Prbp_dag.Bitset.t
(** The edge set \{[p_{ikj} → c_{ij}]\} — the "internal edges" counted
    in the Theorem 6.10 proof. *)

val trivial_cost : t -> int

val lower_bound : t -> r:int -> float
(** The PRBP (= RBP) I/O lower bound implied by the S-edge partition
    argument of Theorem 6.10:
    [r·(m1·m2·m3 / (S^{3/2} + S) − 1)] with [S = 2r] — the concrete
    constant-free instantiation used in the experiments. *)

val lower_bound_dims : m1:int -> m2:int -> m3:int -> r:int -> float
(** {!lower_bound} from the dimensions alone, without building the
    DAG (for the {!Closed_form} registry). *)

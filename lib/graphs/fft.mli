(** The m-point FFT (butterfly) DAG of Section 6.3.1 (Figure 4).

    Laid out as [log₂ m + 1] layers of [m] nodes; node [(t, i)] feeds
    [(t+1, i)] and [(t+1, i XOR 2^t)].  This iterative layout is
    isomorphic to the recursive two-copies-plus-merge definition in the
    paper.  Layer 0 nodes are the sources, layer [log₂ m] the sinks;
    all non-sources have in-degree 2.

    [OPT_PRBP ≥ Ω(m·log m / log r)] (Theorem 6.9, via S-dominator
    partitions). *)

type t = {
  dag : Prbp_dag.Dag.t;
  m : int;
  log_m : int;
}

val make : m:int -> t
(** @raise Invalid_argument unless [m ≥ 2] is a power of two. *)

val node : t -> layer:int -> int -> int
(** [node t ~layer i] is node [i] of [layer ∈ 0 .. log₂ m]. *)

val lower_bound : t -> r:int -> float
(** The Hong–Kung-magnitude bound instantiated for PRBP via
    Theorem 6.9: [m·log₂ m / (4·log₂ (2r))] — the concrete constant
    follows the S(=2r)-dominator counting argument. *)

val lower_bound_m : m:int -> r:int -> float
(** {!lower_bound} from the parameter alone, without building the
    DAG (for the {!Closed_form} registry). *)

(* Resource governance and observability for the exact solvers: the
   budget record every engine-backed solve honours, the telemetry sink
   the search loop reports into, and the anytime outcome type that
   replaces the all-or-nothing optimum-or-[Too_large] contract. *)

module Budget = struct
  type t = {
    max_states : int;
    max_millis : int option;
    max_words : int option;
    cancelled : (unit -> bool) option;
    check_every : int;
    spill_words : int option;
    prune_off_after : int;
  }

  let default_prune_off_after = 262_144

  let default =
    {
      max_states = 5_000_000;
      max_millis = None;
      max_words = None;
      cancelled = None;
      check_every = 2048;
      spill_words = None;
      prune_off_after = default_prune_off_after;
    }

  let v ?(max_states = default.max_states) ?max_millis ?max_words ?cancelled
      ?(check_every = default.check_every) ?spill_words
      ?(prune_off_after = default.prune_off_after) () =
    if max_states < 1 then invalid_arg "Solver.Budget.v: max_states >= 1";
    if check_every < 1 then invalid_arg "Solver.Budget.v: check_every >= 1";
    if prune_off_after < 1 then
      invalid_arg "Solver.Budget.v: prune_off_after >= 1";
    {
      max_states;
      max_millis;
      max_words;
      cancelled;
      check_every;
      spill_words;
      prune_off_after;
    }

  let states n = v ~max_states:n ()

  let millis ms = v ~max_millis:ms ()

  let words w = v ~max_words:w ()

  let unlimited = { default with max_states = max_int }
end

type reason = Max_states | Deadline | Max_words | Cancelled

let reason_label = function
  | Max_states -> "max-states"
  | Deadline -> "deadline"
  | Max_words -> "max-words"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Format.pp_print_string ppf (reason_label r)

type stats = {
  explored : int;
  pruned : int;
  expansions : int;
  frontier : int;
  elapsed_s : float;
  mem_words : int;
  prune_disabled : bool;
  spilled : int;
}

let empty_stats =
  {
    explored = 0;
    pruned = 0;
    expansions = 0;
    frontier = 0;
    elapsed_s = 0.;
    mem_words = 0;
    prune_disabled = false;
    spilled = 0;
  }

module Telemetry = struct
  type progress = {
    expansions : int;
    explored : int;
    pruned : int;
    frontier : int;
    depth : int;
    table_load : float;
    elapsed_s : float;
    lower : int;
        (* certified lower bound on OPT at this instant: every settled
           0-1-BFS depth is one (the goal would otherwise have been
           popped already), and a terminal event carries the outcome's
           certified bound *)
    upper : int option;  (* branch-and-bound incumbent, when one exists *)
  }

  type event =
    | Start of { width : int; max_states : int }
    | Progress of progress
    | Prune of { pruned : int }
    | Stop of { outcome : string; progress : progress }

  type sink = { every : int; emit : event -> unit }

  let default_every = 65_536

  let make ?(every = default_every) emit =
    if every < 1 then invalid_arg "Solver.Telemetry.make: every >= 1";
    { every; emit }

  type summary = {
    mutable events : int;
    mutable progress_events : int;
    mutable prune_events : int;
    mutable solves : int;
    mutable last : progress option;
    mutable peak_explored : int;
  }

  let summarize ?every () =
    let s =
      {
        events = 0;
        progress_events = 0;
        prune_events = 0;
        solves = 0;
        last = None;
        peak_explored = 0;
      }
    in
    let emit ev =
      s.events <- s.events + 1;
      match ev with
      | Start _ -> s.solves <- s.solves + 1
      | Progress p ->
          s.progress_events <- s.progress_events + 1;
          s.last <- Some p;
          if p.explored > s.peak_explored then s.peak_explored <- p.explored
      | Prune _ -> s.prune_events <- s.prune_events + 1
      | Stop { progress = p; _ } ->
          s.last <- Some p;
          if p.explored > s.peak_explored then s.peak_explored <- p.explored
    in
    (s, make ?every emit)
end

type 'move optimal = {
  cost : int;
  strategy : 'move list option;
  stats : stats;
}

type 'move bounded = {
  lower : int;
  upper : int option;
  incumbent_strategy : 'move list option;
  stats : stats;
  stopped : reason;
}

type 'move outcome =
  | Optimal of 'move optimal
  | Bounded of 'move bounded
  | Unsolvable of stats

let outcome_label = function
  | Optimal _ -> "optimal"
  | Bounded _ -> "bounded"
  | Unsolvable _ -> "unsolvable"

let stats_of = function
  | Optimal { stats; _ } -> stats
  | Bounded { stats; _ } -> stats
  | Unsolvable stats -> stats

let optimal_cost = function Optimal { cost; _ } -> Some cost | _ -> None

(* The certified interval [lower, upper] on OPT; for [Unsolvable] the
   optimum does not exist and the interval is empty-by-convention
   (max_int, None). *)
let interval = function
  | Optimal { cost; _ } -> (cost, Some cost)
  | Bounded { lower; upper; _ } -> (lower, upper)
  | Unsolvable _ -> (max_int, None)

let pp ppf = function
  | Optimal { cost; stats; _ } ->
      Format.fprintf ppf "optimal %d (%d states, %.2fs)" cost stats.explored
        stats.elapsed_s
  | Bounded { lower; upper; stats; stopped; _ } ->
      Format.fprintf ppf "bounded [%d, %s] (%s; %d states, %.2fs)" lower
        (match upper with Some u -> string_of_int u | None -> "?")
        (reason_label stopped) stats.explored stats.elapsed_s
  | Unsolvable stats ->
      Format.fprintf ppf "unsolvable (%d states, %.2fs)" stats.explored
        stats.elapsed_s

(* ------------------------------------------------------------------ *)

module Convergence = struct
  type point = { t_s : float; lower : int; upper : int option }

  type curve = point list

  type recorder = {
    mutable rev : point list;  (* newest first *)
    r_lock : Mutex.t;
  }

  let min_upper a b =
    match (a, b) with
    | None, u | u, None -> u
    | Some a, Some b -> Some (min a b)

  (* Fold one certified (lower, upper) sighting into the curve,
     keeping it monotone: the recorded lower bound never decreases,
     the recorded upper bound never increases, and a sighting that
     tightens nothing is dropped (so curves stay short).  Sightings
     with [lower = max_int] (the Unsolvable convention) are ignored —
     there is no optimum to converge to. *)
  let observe r ~t_s ~lower ~upper =
    if lower < max_int then begin
      Mutex.lock r.r_lock;
      let lo', up' =
        match r.rev with
        | [] -> (lower, upper)
        | last :: _ -> (max lower last.lower, min_upper upper last.upper)
      in
      let tightens =
        match r.rev with
        | [] -> true
        | last :: _ -> lo' > last.lower || up' <> last.upper
      in
      if tightens then r.rev <- { t_s; lower = lo'; upper = up' } :: r.rev;
      Mutex.unlock r.r_lock
    end

  let curve r =
    Mutex.lock r.r_lock;
    let l = List.rev r.rev in
    Mutex.unlock r.r_lock;
    l

  (* A recorder plus a telemetry sink that feeds it (and tees into
     [telemetry] when given, preserving its cadence). *)
  let recorder ?telemetry () =
    let r = { rev = []; r_lock = Mutex.create () } in
    let every =
      match telemetry with
      | Some (s : Telemetry.sink) -> s.Telemetry.every
      | None -> Telemetry.default_every
    in
    let emit ev =
      (match ev with
      | Telemetry.Progress p | Telemetry.Stop { progress = p; _ } ->
          observe r ~t_s:p.Telemetry.elapsed_s ~lower:p.Telemetry.lower
            ~upper:p.Telemetry.upper
      | Telemetry.Start _ | Telemetry.Prune _ -> ());
      match telemetry with
      | Some s -> s.Telemetry.emit ev
      | None -> ()
    in
    (r, { Telemetry.every; emit })

  let width p =
    match p.upper with Some u -> Some (u - p.lower) | None -> None

  let final c =
    match List.rev c with [] -> None | last :: _ -> Some last

  (* Earliest recorded time at which the certified width was ≤ [w];
     [None] when the curve never got there (or never had an upper
     bound). *)
  let time_to_width c w =
    List.find_map
      (fun p ->
        match width p with
        | Some wd when wd <= w -> Some p.t_s
        | _ -> None)
      c

  let monotone c =
    let rec go = function
      | a :: (b :: _ as tl) ->
          b.lower >= a.lower
          && (match (a.upper, b.upper) with
             | Some ua, Some ub -> ub <= ua
             | Some _, None -> false  (* an incumbent cannot vanish *)
             | None, _ -> true)
          && b.t_s >= a.t_s && go tl
      | _ -> true
    in
    go c
end

(** Double-ended queue for 0-1 BFS (growable circular buffer over a
    flat array). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push_front : 'a t -> 'a -> unit

val push_back : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Visit every queued element front to back, without popping.  Used
    by the anytime engine to scan the surviving frontier for the
    certified lower bound at truncation. *)

val words : 'a t -> int
(** Buffer slots currently allocated (= heap words for the immediate
    ints the solvers queue). *)

val clear : 'a t -> unit
(** Empty the deque and release its buffer. *)

(** Double-ended queue for 0-1 BFS (growable circular buffer over a
    flat array). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push_front : 'a t -> 'a -> unit

val push_back : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option

val clear : 'a t -> unit
(** Empty the deque and release its buffer. *)

(** The generic exact-solver engine: one 0-1 BFS + branch-and-bound
    core shared by every game.

    {!Make} turns any {!Game.S} instance into an exhaustive optimal
    solver.  The machinery is exactly the PR-1 state core, factored
    out once: packed states live unboxed in a {!State_table.Flat}
    (dense insertion indices as state handles), the work queue is a
    {!Deque01} of dense indices only, a state's tentative distance
    lives in the table value and is flipped to [lnot d] (negative)
    once the state is popped and settled — the 0-1 BFS invariant
    guarantees the first pop sees the final distance, so stale queue
    entries are skipped on the sign alone.  Branch-and-bound prunes
    any {e new} state whose distance plus the game's admissible
    residual bound exceeds the heuristic upper-bound seed; this never
    changes the optimum, only the explored count.

    Exceeding [max_states] raises {!Game.Too_large} after dropping
    every per-search structure (a caught exception must not pin
    hundreds of MB alive). *)

module Make (G : Game.S) : sig
  val search :
    ?max_states:int ->
    ?prune:bool ->
    want_strategy:bool ->
    G.inst ->
    (int * G.move list * Game.stats) option
  (** [search inst] is [Some (opt, moves, stats)] where [opt] is the
      optimal 0-1 distance to a goal state, or [None] when no goal
      state is reachable.  [moves] is one optimal move sequence
      (reconstructed through the parent arrays) when [want_strategy],
      [[]] otherwise.  [max_states] defaults to [5_000_000]; [prune]
      (default on) arms branch-and-bound with [G.heuristic_ub]. *)

  val opt_opt : ?max_states:int -> ?prune:bool -> G.inst -> int option
  (** The optimal cost alone; [None] when no goal is reachable. *)

  val opt_stats :
    ?max_states:int -> ?prune:bool -> G.inst -> Game.stats option
  (** Optimal cost plus search-size counters. *)

  val opt_with_strategy :
    ?max_states:int ->
    ?prune:bool ->
    G.inst ->
    (int * G.move list) option
  (** Also reconstruct one optimal strategy; costs more memory. *)
end

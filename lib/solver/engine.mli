(** The generic exact-solver engine: one anytime 0-1 BFS +
    branch-and-bound core shared by every game.

    {!Make} turns any {!Game.S} instance into an exhaustive optimal
    solver.  The machinery is the PR-1 state core, factored out once:
    packed states live unboxed in a {!State_table.Flat} (dense
    insertion indices as state handles), the work queue is a {!Deque01}
    of dense indices only, a state's tentative distance lives in the
    table value and is flipped to [lnot d] (negative) once the state is
    popped and settled — the 0-1 BFS invariant guarantees the first pop
    sees the final distance, so stale queue entries are skipped on the
    sign alone.  Branch-and-bound prunes any {e new} state whose
    distance plus the game's admissible residual bound exceeds the
    heuristic upper-bound seed; this never changes the optimum, only
    the explored count.

    {!Make.solve} is the single entry point: it honours a
    {!Solver.Budget} (state cap, wall-clock deadline, memory estimate,
    cooperative cancellation), reports into an optional
    {!Solver.Telemetry} sink, and always returns a {!Solver.outcome} —
    a proven optimum, a certified [lower ≤ OPT ≤ upper] interval when
    the budget stops the search first, or a proof that no goal state is
    reachable.  The pre-anytime quartet below survives as deprecated
    wrappers that translate [Bounded] back into {!Game.Too_large}. *)

module Make (G : Game.S) : sig
  val solve :
    ?budget:Solver.Budget.t ->
    ?telemetry:Solver.Telemetry.sink ->
    ?want_strategy:bool ->
    ?prune:bool ->
    ?jobs:int ->
    G.inst ->
    G.move Solver.outcome
  (** [solve inst] searches until a goal state is settled
      ({!Solver.Optimal}), the reachable space is exhausted
      ({!Solver.Unsolvable}), or [budget] (default
      {!Solver.Budget.default}) stops the search ({!Solver.Bounded},
      with the frontier-distance lower bound and the branch-and-bound
      incumbent as the certified interval).  [want_strategy] (default
      off) additionally reconstructs one optimal move sequence through
      the parent arrays — strategy bookkeeping is strictly opt-in and
      is the only consumer of the parent arrays, which stay
      unallocated otherwise.  [prune] (default on) arms
      branch-and-bound with [G.heuristic_ub].  [telemetry] receives
      start/progress/prune/stop events; [None] keeps the hot loop
      allocation-free.

      [jobs] (default 1) runs the search on that many domains over a
      hash-sharded state table, as a level-synchronized 0-1 BFS with
      chunk stealing between domains.  The optimum, the certified
      interval of state-count-stopped runs, and the aggregated
      explored/expanded/pruned counters are identical for every [jobs]
      value (deadline/cancellation stops are timing-dependent by
      nature; the parallel path's pop order differs from the
      sequential engine's, so its counters match across [jobs >= 2]
      and may differ from [jobs = 1] on truncated runs).  A budget
      with {!Solver.Budget.spill_words} also routes through this path
      — even at [jobs = 1] — so a solve that outgrows [max_words]
      degrades to evicting settled states to disk instead of stopping,
      unless [want_strategy] is set (spilling would orphan the parent
      pointers; such solves stop at [max_words] as before). *)

  val search :
    ?max_states:int ->
    ?prune:bool ->
    want_strategy:bool ->
    G.inst ->
    (int * G.move list * Game.stats) option
  [@@deprecated "use solve: it returns a certified interval instead of \
                 raising Game.Too_large"]
  (** [Some (opt, moves, stats)], [None] when no goal is reachable;
      raises {!Game.Too_large} where [solve] would return [Bounded]. *)

  val opt_opt : ?max_states:int -> ?prune:bool -> G.inst -> int option
  [@@deprecated "use solve"]

  val opt_stats :
    ?max_states:int -> ?prune:bool -> G.inst -> Game.stats option
  [@@deprecated "use solve"]

  val opt_with_strategy :
    ?max_states:int ->
    ?prune:bool ->
    G.inst ->
    (int * G.move list) option
  [@@deprecated "use solve ~want_strategy:true"]
end

(** Resource governance and observability for the exact solvers.

    Every engine-backed solve in the library goes through one request
    shape — [solve ?budget ?telemetry ?want_strategy … config dag] —
    and returns one {!outcome} shape.  A solve is {e anytime}: it
    either proves the optimum, or is stopped by its {!Budget} and
    still returns a certified interval [lower ≤ OPT ≤ upper] (the
    lower bound from the settled 0-1 BFS frontier plus the game's
    admissible residual, the upper bound from the branch-and-bound
    incumbent), or proves that no complete pebbling exists at all.
    Nothing raises {!Game.Too_large} anymore except the deprecated
    compatibility wrappers.

    The {!Telemetry} sink makes long searches observable: progress
    callbacks every K expansions with explored/pruned counts, frontier
    size, settled depth, state-table load and elapsed wall time, plus
    start/stop/prune events; the JSON-lines form harnesses consume
    ([pebble_cli --trace]) lives in the wire schema ([Prbp_wire.Wire]).
    The default (no sink) keeps the
    hot loop allocation-free — governance costs one integer compare
    per expansion. *)

(** Resource budget for one solve. *)
module Budget : sig
  type t = {
    max_states : int;  (** distinct states inserted into the search *)
    max_millis : int option;  (** wall-clock deadline, milliseconds *)
    max_words : int option;
        (** cap on the search's estimated live heap words (state
            table + deque + strategy bookkeeping).  Polled every
            [check_every] expansions and re-checked whenever the state
            count crosses a power of two; since the tables grow
            geometrically, the estimate can still overshoot the cap by
            up to one growth step before the stop lands *)
    cancelled : (unit -> bool) option;
        (** cooperative cancellation, polled every [check_every]
            expansions; return [true] to stop the solve *)
    check_every : int;
        (** expansions between deadline/memory/cancellation polls *)
    spill_words : int option;
        (** when set, a solve that hits [max_words] evicts settled
            states to a file-backed spill tier ({!Spill}) instead of
            stopping, and keeps searching until the spill tier itself
            reaches this many words (then {!Max_words} applies).
            Degrades throughput, never soundness.  Incompatible with
            strategy reconstruction: a [want_strategy] solve ignores
            it and stops at [max_words] as before *)
    prune_off_after : int;
        (** expansions of zero branch-and-bound prunes after which the
            engine stops paying for the residual bound check (the
            incumbent upper bound is kept).  Instances whose heuristic
            upper bound is far from OPT never prune, and for them the
            per-relaxation residual evaluation is pure overhead.
            [max_int] keeps pruning forever; recorded in
            {!stats.prune_disabled} when it fires *)
  }

  val default : t
  (** [{ max_states = 5_000_000; no deadline; no word cap; no
      cancellation; check_every = 2048 }] — the historical solver
      default. *)

  val v :
    ?max_states:int ->
    ?max_millis:int ->
    ?max_words:int ->
    ?cancelled:(unit -> bool) ->
    ?check_every:int ->
    ?spill_words:int ->
    ?prune_off_after:int ->
    unit ->
    t

  val default_prune_off_after : int
  (** 262144 expansions. *)

  val states : int -> t
  (** [default] with the given state cap (the old [~max_states:n]). *)

  val millis : int -> t
  (** [default] with a wall-clock deadline. *)

  val words : int -> t
  (** [default] with a memory cap. *)

  val unlimited : t
  (** No state cap either; the search runs until memory does. *)
end

type reason = Max_states | Deadline | Max_words | Cancelled
(** Why a budgeted solve stopped early. *)

val reason_label : reason -> string

val pp_reason : Format.formatter -> reason -> unit

type stats = {
  explored : int;  (** distinct states inserted into the search *)
  pruned : int;  (** states cut by branch-and-bound *)
  expansions : int;  (** states popped and expanded *)
  frontier : int;  (** queue entries left when the search ended *)
  elapsed_s : float;  (** wall-clock seconds *)
  mem_words : int;
      (** estimated live heap words of the search structures; strategy
          bookkeeping contributes 0 unless it was requested *)
  prune_disabled : bool;
      (** the engine switched branch-and-bound residual checks off
          mid-solve ({!Budget.t.prune_off_after} expansions passed with
          zero prunes) *)
  spilled : int;
      (** settled states evicted to the file-backed spill tier
          ({!Budget.t.spill_words}); 0 unless spilling was enabled and
          triggered *)
}

val empty_stats : stats

(** Progress sink for the search loop. *)
module Telemetry : sig
  type progress = {
    expansions : int;
    explored : int;
    pruned : int;
    frontier : int;  (** 0-1 deque length *)
    depth : int;  (** settled 0-1 distance at the report *)
    table_load : float;  (** state-table probe-array load factor *)
    elapsed_s : float;
    lower : int;
        (** certified lower bound on OPT at this instant.  Mid-run it
            is the settled 0-1 distance (any cheaper pebbling would
            already have been popped); on a terminal {!event.Stop} it
            is the outcome's certified bound ({!interval}), which may
            exceed the last mid-run value. *)
    upper : int option;
        (** the branch-and-bound incumbent — the cost of a complete
            verified strategy already in hand — or [None] before one
            exists *)
  }

  type event =
    | Start of { width : int; max_states : int }
    | Progress of progress  (** every [every] expansions *)
    | Prune of { pruned : int }
        (** the cumulative branch-and-bound prune count crossed a
            power of two (logarithmic cadence keeps this out of the
            hot loop) *)
    | Stop of { outcome : string; progress : progress }
        (** terminal; [outcome] is ["optimal"], ["unsolvable"] or a
            {!reason_label} *)

  type sink = { every : int; emit : event -> unit }

  val default_every : int
  (** 65536 expansions. *)

  val make : ?every:int -> (event -> unit) -> sink
  (** Events serialize through the versioned wire schema —
      [Prbp_wire.Wire.encode_event] / [Prbp_wire.Wire.jsonl] — which
      lives above this library in the dependency order. *)

  (** Mutable aggregate over the events of one or more solves, for
      harnesses that report telemetry without storing it. *)
  type summary = {
    mutable events : int;
    mutable progress_events : int;
    mutable prune_events : int;
    mutable solves : int;  (** [Start] events seen *)
    mutable last : progress option;
    mutable peak_explored : int;
  }

  val summarize : ?every:int -> unit -> summary * sink
end

type 'move optimal = {
  cost : int;  (** the proven optimal I/O cost *)
  strategy : 'move list option;
      (** one optimal move sequence, when requested *)
  stats : stats;
}

type 'move bounded = {
  lower : int;
      (** certified lower bound on OPT: the minimum of (distance +
          admissible residual) over every exit from the settled region
          — the surviving 0-1 BFS frontier, plus any state the budget
          hid from it (successors dropped at the state cap, a state
          settled but not expanded when the stop landed).  Sound
          because any optimal path must leave the settled region
          through one of these states, and branch-and-bound only
          discards states that no optimal path visits *)
  upper : int option;
      (** the branch-and-bound incumbent (a valid strategy's cost);
          [None] when no heuristic strategy exists for the variant *)
  incumbent_strategy : 'move list option;
      (** the strategy achieving [upper], when requested and known *)
  stats : stats;
  stopped : reason;
}

type 'move outcome =
  | Optimal of 'move optimal  (** the search settled a goal state *)
  | Bounded of 'move bounded
      (** the budget stopped the search first; [lower ≤ OPT ≤ upper]
          is still certified *)
  | Unsolvable of stats
      (** the search exhausted the reachable space: no complete
          pebbling exists (e.g. [r] below the feasibility
          threshold) *)

val outcome_label : _ outcome -> string
(** ["optimal"] | ["bounded"] | ["unsolvable"]. *)

val stats_of : _ outcome -> stats

val optimal_cost : _ outcome -> int option
(** [Some cost] only for {!Optimal}. *)

val interval : _ outcome -> int * int option
(** The certified interval on OPT: [(c, Some c)] for {!Optimal},
    [(lower, upper)] for {!Bounded}, [(max_int, None)] for
    {!Unsolvable} (no optimum exists). *)

val pp : Format.formatter -> _ outcome -> unit
(** One-line human summary. *)

(** Convergence curves: the trajectory by which an anytime solve (or a
    bracket, or a frontier probe) tightened its certified interval.

    A {!Convergence.recorder} folds the [(lower, upper)] pair of every
    {!Telemetry} [Progress]/[Stop] event into a monotone time series —
    lower bounds never decrease, upper bounds never increase, and
    sightings that tighten nothing are dropped — so the curve answers
    "what was certified at time [t]?" directly: at any [t] between two
    points, the earlier point's interval was the certified state of
    knowledge. *)
module Convergence : sig
  type point = {
    t_s : float;  (** seconds since the solve started *)
    lower : int;  (** best certified lower bound by [t_s] *)
    upper : int option;  (** best verified upper bound by [t_s] *)
  }

  type curve = point list
  (** Chronological; non-empty for any solve that emitted a terminal
      event through a recorder-backed sink. *)

  type recorder

  val recorder : ?telemetry:Telemetry.sink -> unit -> recorder * Telemetry.sink
  (** A fresh recorder and the sink that feeds it.  Pass the sink to
      [solve]/[Bracket.run]; events also forward to [telemetry] when
      given (whose [every] cadence is preserved).  Thread-safe. *)

  val observe : recorder -> t_s:float -> lower:int -> upper:int option -> unit
  (** Fold one certified sighting directly (for layers that know their
      bounds without a telemetry event, e.g. bracket stages).
      Sightings with [lower = max_int] are ignored. *)

  val curve : recorder -> curve

  val width : point -> int option
  (** [upper - lower], when an upper bound exists. *)

  val final : curve -> point option

  val time_to_width : curve -> int -> float option
  (** Earliest recorded time at which the certified width was ≤ the
      target; [None] if the curve never got there. *)

  val monotone : curve -> bool
  (** Lower bounds non-decreasing, upper bounds non-increasing (and
      never vanishing), times non-decreasing — true for every curve a
      recorder produces; exposed for the regression gate. *)
end

(* Double-ended queue for 0-1 BFS: 0-cost relaxations go to the front,
   1-cost ones to the back.

   Growable circular buffer over a flat array (power-of-two capacity):
   no per-push cons cell and no List.rev spike when the direction
   flips, unlike the earlier two-list implementation.  The buffer is
   allocated lazily from the first pushed element, which doubles as
   the fill value — popped slots are not overwritten, so with a boxed
   element type a popped value stays reachable until overwritten or
   [clear]; the solvers only queue immediate ints. *)

type 'a t = { mutable buf : 'a array; mutable head : int; mutable len : int }

let create () = { buf = [||]; head = 0; len = 0 }

let is_empty d = d.len = 0

let length d = d.len

let grow d x =
  let cap = Array.length d.buf in
  if cap = 0 then begin
    d.buf <- Array.make 16 x;
    d.head <- 0
  end
  else begin
    let b = Array.make (2 * cap) x in
    let first = min d.len (cap - d.head) in
    Array.blit d.buf d.head b 0 first;
    Array.blit d.buf 0 b first (d.len - first);
    d.buf <- b;
    d.head <- 0
  end

let push_front d x =
  if d.len = Array.length d.buf then grow d x;
  let mask = Array.length d.buf - 1 in
  d.head <- (d.head - 1) land mask;
  Array.unsafe_set d.buf d.head x;
  d.len <- d.len + 1

let push_back d x =
  if d.len = Array.length d.buf then grow d x;
  let mask = Array.length d.buf - 1 in
  Array.unsafe_set d.buf ((d.head + d.len) land mask) x;
  d.len <- d.len + 1

let pop_front d =
  if d.len = 0 then None
  else begin
    let x = Array.unsafe_get d.buf d.head in
    d.head <- (d.head + 1) land (Array.length d.buf - 1);
    d.len <- d.len - 1;
    Some x
  end

let iter f d =
  let cap = Array.length d.buf in
  if cap > 0 then
    let mask = cap - 1 in
    for i = 0 to d.len - 1 do
      f (Array.unsafe_get d.buf ((d.head + i) land mask))
    done

let words d = Array.length d.buf

let clear d =
  d.buf <- [||];
  d.head <- 0;
  d.len <- 0

(** Heuristic pebblers: valid strategies (hence upper bounds on the
    optimum) at scales where exact search is impossible.

    Both pebblers process the DAG in topological order and manage fast
    memory with a pluggable eviction {!policy}; the default is Belady's
    rule (evict the value whose next use is farthest in the future),
    the classic offline caching policy.  LRU and FIFO are provided for
    ablation studies — they model what an online scheduler could do
    without knowledge of the future. *)

type policy =
  | Belady  (** farthest next use first (offline-optimal flavor) *)
  | Lru  (** least recently touched first *)
  | Fifo  (** oldest cache resident first *)

(** {b Determinism.}  Both pebblers are pure functions of their
    arguments.  Eviction ties are broken explicitly: first by the
    policy score, then by preferring a victim whose eviction is free
    (already saved, or never used again), and finally by the {e lowest
    node id} — so runs are reproducible move-for-move across OCaml
    versions and iteration-order changes, which the benchmark brackets
    rely on. *)

val rbp :
  ?policy:policy ->
  ?order:Prbp_dag.Dag.node array ->
  r:int ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.R.t list
(** One-shot RBP strategy.  Requires [r ≥ Δin + 1] (else
    [Invalid_argument]): each node is computed once, with its inputs
    loaded into fast memory as needed; evicted values are saved first
    when they will be used again (or are unsaved sinks).

    [order] overrides the processing order (default {!Prbp_dag.Topo.sort});
    it must be a topological order of the DAG (checked, else
    [Invalid_argument]) — the hook the local-search upper-bound
    portfolio uses to explore schedule perturbations. *)

val prbp :
  ?policy:policy ->
  ?order:Prbp_dag.Dag.node array ->
  ?defer_saves:bool ->
  r:int ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.P.t list
(** One-shot PRBP strategy; works for any [r ≥ 2] and any DAG.  Each
    target node is aggregated input by input; the current target holds
    one (dark) red pebble and the remaining capacity caches inputs.
    Completed values are kept resident while capacity allows, saved
    lazily on eviction, and dark values consumed entirely while
    resident are deleted for free.

    [order] as in {!rbp}.  [defer_saves] (default [false]) makes the
    evictor give up any free-to-evict resident value before paying a
    save for a partially-aggregated (dark) one, regardless of next-use
    distance — trading cache quality for fewer partial-value saves. *)

val rbp_cost : ?policy:policy -> r:int -> Prbp_dag.Dag.t -> int
(** Cost of {!rbp}, certified by replaying it through the rule-checking
    simulator. *)

val prbp_cost : ?policy:policy -> r:int -> Prbp_dag.Dag.t -> int
(** Cost of {!prbp}, certified by the simulator. *)

val prbp_greedy : r:int -> Prbp_dag.Dag.t -> Prbp_pebble.Move.P.t list
(** Greedy {e edge} scheduler: repeatedly marks the cheapest currently
    markable edge (0 loads before 1 before 2), so partially computed
    targets accumulate opportunistically instead of demanding all
    inputs in sequence — the scheduling freedom that defines PRBP.
    On aggregation-heavy DAGs (matvec, SpMV) this reaches the trivial
    cost where the node-major pebbler cannot.  O(m²) edge scans: meant
    for DAGs up to a few thousand edges. *)

val prbp_greedy_cost : r:int -> Prbp_dag.Dag.t -> int

val prbp_best : r:int -> Prbp_dag.Dag.t -> Prbp_pebble.Move.P.t list
(** The cheaper of {!prbp} (Belady) and {!prbp_greedy}. *)

val prbp_best_cost : r:int -> Prbp_dag.Dag.t -> int

(** Multicore primitives for the parallel exact engine.

    The engine is bulk-synchronous (work phase / barrier / decision
    phase); these are its building blocks.  Nothing here knows about
    games or states — see {!Engine} for the phase protocol that makes
    the combination deterministic. *)

(** Reusable barrier over [Mutex]/[Condition].  [await] on a 1-party
    barrier is free, so single-domain runs of the parallel engine pay
    no synchronization. *)
module Barrier : sig
  type t

  val create : int -> t
  (** [create parties]; [Invalid_argument] below 1. *)

  val await : t -> unit
  (** Block until all [parties] domains have arrived; the barrier then
      resets for the next round. *)
end

(** Growable flat [int] buffer: the message lanes and frontier buckets
    of the parallel engine.  Not synchronized — the engine's barrier
    discipline is what makes sharing safe. *)
module Ibuf : sig
  type t

  val create : unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val push : t -> int -> unit

  val get : t -> int -> int
  (** Unchecked. *)

  val set : t -> int -> int -> unit
  (** Unchecked. *)

  val clear : t -> unit
  (** Keeps the capacity. *)

  val truncate : t -> int -> unit
  (** [truncate b n] shortens [b] to [n] elements (no-op if already
      shorter) — in-place compaction ends with one of these. *)

  val words : t -> int
  (** Allocated heap words (the capacity, not the length). *)

  val swap : t -> t -> unit
  (** Exchange contents and capacity — O(1) bucket rotation. *)
end

(** Growable buffer of boxed values (move tags riding next to the
    packed keys of {!Ibuf} lanes). *)
module Vbuf : sig
  type 'a t

  val create : 'a -> 'a t
  (** [create dummy]: [dummy] fills unused capacity. *)

  val length : 'a t -> int

  val push : 'a t -> 'a -> unit

  val get : 'a t -> int -> 'a
  (** Unchecked. *)

  val set : 'a t -> int -> 'a -> unit
  (** Unchecked. *)

  val clear : 'a t -> unit
  (** Keeps the capacity but drops the element references. *)

  val words : 'a t -> int
end

(* The one exhaustive-search loop of the library.  Every exact solver
   (Exact_rbp, Exact_prbp, Black, Exact_multi) instantiates this
   functor; none of them owns a BFS or branch-and-bound loop of its
   own.

   The loop is *anytime*: a Solver.Budget can stop it on state count,
   wall-clock deadline, memory estimate or cooperative cancellation,
   and a truncated search still returns a certified interval on OPT
   (Solver.Bounded) instead of raising.  Governance costs one integer
   compare per expansion; deadlines, memory estimates and telemetry
   run on the slow path every [check_every] expansions. *)

module T = State_table.Flat
module Clock = Prbp_obs.Clock
module Span = Prbp_obs.Span
module Metrics = Prbp_obs.Metrics

(* One instrument family shared by every game instance (the functor
   below may be applied many times; the registry dedupes).  Values are
   published once per solve, at the end — the per-expansion hot loop
   never touches them, so observability off or on costs the loop
   nothing beyond the counters it already keeps. *)
let m_solves =
  Metrics.counter ~help:"engine solves started" "prbp_engine_solves_total"

let m_expansions =
  Metrics.counter ~help:"states popped and expanded"
    "prbp_engine_expansions_total"

let m_explored =
  Metrics.counter ~help:"distinct states inserted into the search"
    "prbp_engine_explored_total"

let m_pruned =
  Metrics.counter ~help:"states cut by branch-and-bound"
    "prbp_engine_pruned_total"

let m_table_resizes =
  Metrics.counter ~help:"state-table geometric growth steps"
    "prbp_engine_table_resizes_total"

let m_peak_frontier =
  Metrics.gauge ~help:"largest 0-1 deque length sampled at a slow-path poll"
    "prbp_engine_peak_frontier"

let m_solve_seconds =
  Metrics.histogram ~help:"wall-clock seconds per engine solve"
    "prbp_engine_solve_seconds"

module Make (G : Game.S) = struct
  type ctx = {
    inst : G.inst;
    budget : Solver.Budget.t;
    tele : Solver.Telemetry.sink option;
    want_strategy : bool;
    ub : int;  (* branch-and-bound bound; max_int = pruning off *)
    t0 : float;
    deadline : float;  (* absolute, infinity when none *)
    (* residual checks are live; dropped mid-solve when
       [prune_off_after] expansions pass without a single prune (the
       incumbent [ub] survives for the certified upper bound) *)
    mutable prune_on : bool;
    mutable prune_disabled : bool;
    mutable pruned : int;
    mutable expansions : int;
    mutable stop : Solver.reason option;
    (* min of (distance + residual) over every state the budget hid
       from the search: successors dropped at the state cap, and the
       popped state a stop settled without expanding.  Folded into the
       certified lower bound — such a state is an exit from the
       settled region that the surviving frontier does not cover. *)
    mutable lost_lb : int;
    mutable next_check : int;
    mutable next_emit : int;  (* max_int when no sink *)
    mutable next_gate : int;  (* min of the two above *)
    (* largest deque length seen at a slow-path poll or at the end of
       the solve — a sampled high-water mark, not an exact maximum *)
    mutable peak_frontier : int;
    tbl : T.t;
    mutable parent_idx : int array;
    mutable parent_move : G.move array;
    dq : int Deque01.t;
    (* set by the pop loop before calling [G.expand]; read by the
       [emit] relaxation closure *)
    mutable cur_idx : int;
    mutable cur_d : int;
  }

  (* Estimated live heap words of the search structures.  Strategy
     bookkeeping contributes exactly its arrays — zero unless
     [want_strategy], which the end-of-solve assertion pins down. *)
  let mem_words ctx =
    T.words ctx.tbl + Deque01.words ctx.dq
    + Array.length ctx.parent_idx
    (* parent_move is an array of pointers to small move blocks;
       count the pointer plus ~3 words per block *)
    + (4 * Array.length ctx.parent_move)

  let record_parent ctx idx =
    if idx >= Array.length ctx.parent_idx then begin
      let cap = max 16 (2 * Array.length ctx.parent_idx) in
      let pi = Array.make cap 0 and pm = Array.make cap G.dummy_move in
      Array.blit ctx.parent_idx 0 pi 0 (Array.length ctx.parent_idx);
      Array.blit ctx.parent_move 0 pm 0 (Array.length ctx.parent_move);
      ctx.parent_idx <- pi;
      ctx.parent_move <- pm
    end

  (* Relax the successor state sitting in [scratch]: the 0-1 BFS step,
     plus branch-and-bound on first sight of a new state.  A full
     state table flags the stop reason instead of raising, and the
     dropped successor's cheapest continuation is recorded in
     [lost_lb] so the certified lower bound still sees it. *)
  let relax ctx scratch m cost01 =
    let cost = ctx.cur_d + cost01 in
    let idx = T.find ctx.tbl scratch in
    if idx >= 0 then begin
      let v = T.value ctx.tbl idx in
      (* v < 0: settled, already minimal *)
      if v >= 0 && v > cost then begin
        T.set_value ctx.tbl idx cost;
        if ctx.want_strategy then begin
          ctx.parent_idx.(idx) <- ctx.cur_idx;
          ctx.parent_move.(idx) <- m
        end;
        if cost01 = 0 then Deque01.push_front ctx.dq idx
        else Deque01.push_back ctx.dq idx
      end
    end
    else if ctx.prune_on && cost + G.residual_lb ctx.inst scratch > ctx.ub
    then begin
      ctx.pruned <- ctx.pruned + 1;
      match ctx.tele with
      | Some sink when ctx.pruned land (ctx.pruned - 1) = 0 ->
          sink.emit (Solver.Telemetry.Prune { pruned = ctx.pruned })
      | _ -> ()
    end
    else if T.length ctx.tbl >= ctx.budget.Solver.Budget.max_states then begin
      if ctx.stop = None then ctx.stop <- Some Solver.Max_states;
      let c = cost + G.residual_lb ctx.inst scratch in
      if c < ctx.lost_lb then ctx.lost_lb <- c
    end
    else begin
      let idx = T.add ctx.tbl scratch cost in
      if ctx.want_strategy then begin
        record_parent ctx idx;
        ctx.parent_idx.(idx) <- ctx.cur_idx;
        ctx.parent_move.(idx) <- m
      end;
      if cost01 = 0 then Deque01.push_front ctx.dq idx
      else Deque01.push_back ctx.dq idx;
      (* the tables grow geometrically, so a memory cap can overshoot
         by a whole growth step between two slow-path polls; re-check
         at power-of-two state counts to bound the overshoot *)
      let len = T.length ctx.tbl in
      if len land (len - 1) = 0 then
        match ctx.budget.Solver.Budget.max_words with
        | Some w when mem_words ctx > w ->
            if ctx.stop = None then ctx.stop <- Some Solver.Max_words
        | _ -> ()
    end

  let progress ctx =
    {
      Solver.Telemetry.expansions = ctx.expansions;
      explored = T.length ctx.tbl;
      pruned = ctx.pruned;
      frontier = Deque01.length ctx.dq;
      depth = ctx.cur_d;
      table_load = T.load ctx.tbl;
      elapsed_s = Clock.elapsed_s ctx.t0;
      (* the settled 0-1 distance is a certified lower bound: a
         cheaper complete pebbling would already have been popped *)
      lower = ctx.cur_d;
      upper = (if ctx.ub < max_int then Some ctx.ub else None);
    }

  (* Deadline / memory / cancellation polls and telemetry emission;
     reached every [min check_every sink.every] expansions. *)
  let slow_path ctx =
    let b = ctx.budget in
    let frontier = Deque01.length ctx.dq in
    if frontier > ctx.peak_frontier then ctx.peak_frontier <- frontier;
    if ctx.expansions >= ctx.next_check then begin
      (* cases whose heuristic upper bound sits far above OPT never
         prune, and for them the per-relaxation residual evaluation is
         pure overhead: after [prune_off_after] expansions with zero
         prunes, stop paying for it.  Expansion-count-triggered, so the
         decision (and every counter after it) stays deterministic. *)
      if
        ctx.prune_on && ctx.pruned = 0
        && ctx.expansions >= b.Solver.Budget.prune_off_after
      then begin
        ctx.prune_on <- false;
        ctx.prune_disabled <- true
      end;
      (if ctx.stop = None then
         if Clock.now () > ctx.deadline then
           ctx.stop <- Some Solver.Deadline
         else
           match b.Solver.Budget.max_words with
           | Some w when mem_words ctx > w -> ctx.stop <- Some Solver.Max_words
           | _ -> (
               match b.Solver.Budget.cancelled with
               | Some f when f () -> ctx.stop <- Some Solver.Cancelled
               | _ -> ()));
      ctx.next_check <- ctx.expansions + b.Solver.Budget.check_every
    end;
    (match ctx.tele with
    | Some sink when ctx.expansions >= ctx.next_emit ->
        sink.emit (Solver.Telemetry.Progress (progress ctx));
        ctx.next_emit <- ctx.expansions + sink.every
    | _ -> ());
    ctx.next_gate <- min ctx.next_check ctx.next_emit

  let stats ctx =
    {
      Solver.explored = T.length ctx.tbl;
      pruned = ctx.pruned;
      expansions = ctx.expansions;
      frontier = Deque01.length ctx.dq;
      elapsed_s = Clock.elapsed_s ctx.t0;
      mem_words = mem_words ctx;
      prune_disabled = ctx.prune_disabled;
      spilled = 0;
    }

  (* Certified lower bound on OPT at truncation: any optimal path must
     leave the settled region either through a still-queued frontier
     state [s] with its tentative distance [d(s)], or through a state
     the budget hid from the search (a successor dropped at the state
     cap, or the popped state a stop settled without expanding) whose
     cheapest continuation is tracked in [lost_lb].  So
     OPT >= min(lost_lb, min over the live frontier of
     (d(s) + residual_lb s)).  Branch-and-bound never cuts a state on
     an optimal path (its d + residual is at most OPT <= ub), so
     pruning keeps this sound.  An empty frontier with nothing lost
     degrades to the last settled depth. *)
  let frontier_lower_bound ctx buf =
    let best = ref ctx.lost_lb in
    Deque01.iter
      (fun idx ->
        let v = T.value ctx.tbl idx in
        if v >= 0 && v < !best then begin
          T.read_key ctx.tbl idx buf;
          let c = v + G.residual_lb ctx.inst buf in
          if c < !best then best := c
        end)
      ctx.dq;
    if !best < max_int then !best else ctx.cur_d

  let solve_raw ?(budget = Solver.Budget.default) ?telemetry
      ?(want_strategy = false) ?(prune = true) inst =
    let w = G.width inst in
    let t0 = Clock.now () in
    let ctx =
      {
        inst;
        budget;
        tele = telemetry;
        want_strategy;
        ub = (if prune then G.heuristic_ub inst else max_int);
        t0;
        deadline =
          (match budget.Solver.Budget.max_millis with
          | Some ms -> t0 +. (float_of_int ms /. 1000.)
          | None -> infinity);
        prune_on = false;  (* armed below, once [ub] is known finite *)
        prune_disabled = false;
        peak_frontier = 0;
        pruned = 0;
        expansions = 0;
        stop = None;
        lost_lb = max_int;
        next_check = budget.Solver.Budget.check_every;
        next_emit =
          (match telemetry with Some s -> s.every | None -> max_int);
        next_gate = 0;
        tbl = T.create ~width:w ();
        parent_idx = [||];
        parent_move = [||];
        dq = Deque01.create ();
        cur_idx = 0;
        cur_d = 0;
      }
    in
    ctx.prune_on <- ctx.ub < max_int;
    ctx.next_gate <- min ctx.next_check ctx.next_emit;
    (match telemetry with
    | Some sink ->
        sink.emit
          (Solver.Telemetry.Start
             { width = w; max_states = budget.Solver.Budget.max_states })
    | None -> ());
    let cur = Array.make w 0 and scratch = Array.make w 0 in
    (* init state gets dense index 0 *)
    G.write_init inst cur;
    ignore (T.add ctx.tbl cur 0);
    if want_strategy then begin
      ctx.parent_idx <- Array.make 16 0;
      ctx.parent_move <- Array.make 16 G.dummy_move
    end;
    Deque01.push_back ctx.dq 0;
    let emit m cost01 = relax ctx scratch m cost01 in
    let result = ref None in
    let continue = ref true in
    while !continue && ctx.stop = None do
      match Deque01.pop_front ctx.dq with
      | None -> continue := false
      | Some idx ->
          let d = T.value ctx.tbl idx in
          if d >= 0 then begin
            T.set_value ctx.tbl idx (lnot d);
            T.read_key ctx.tbl idx cur;
            ctx.cur_idx <- idx;
            ctx.cur_d <- d;
            if G.is_goal inst cur then begin
              result := Some (idx, d);
              continue := false
            end
            else begin
              ctx.expansions <- ctx.expansions + 1;
              if ctx.expansions >= ctx.next_gate then slow_path ctx;
              if ctx.stop = None then G.expand inst cur ~scratch ~emit
              else begin
                (* settled above but never expanded: its continuations
                   must stay visible to the certified lower bound *)
                let c = d + G.residual_lb inst cur in
                if c < ctx.lost_lb then ctx.lost_lb <- c
              end
            end
          end
    done;
    (* strategy bookkeeping is strictly opt-in: nothing on any path
       may allocate the parent arrays without [want_strategy], and the
       memory estimate above counts exactly these arrays *)
    assert (
      want_strategy
      || (Array.length ctx.parent_idx = 0 && Array.length ctx.parent_move = 0));
    let finish outcome =
      (match telemetry with
      | Some sink ->
          (* the terminal event carries the outcome's certified
             interval, which can beat the last mid-run sighting (the
             final Bounded lower comes from the surviving frontier,
             not just the settled depth) *)
          let lo, up = Solver.interval outcome in
          sink.emit
            (Solver.Telemetry.Stop
               {
                 outcome = Solver.outcome_label outcome;
                 progress = { (progress ctx) with lower = lo; upper = up };
               })
      | None -> ());
      (* end-of-solve observability: counters and the solve span are
         fed once here, never from the expansion loop *)
      let frontier = Deque01.length ctx.dq in
      if frontier > ctx.peak_frontier then ctx.peak_frontier <- frontier;
      if Metrics.enabled () then begin
        Metrics.Counter.incr m_solves;
        Metrics.Counter.add m_expansions ctx.expansions;
        Metrics.Counter.add m_explored (T.length ctx.tbl);
        Metrics.Counter.add m_pruned ctx.pruned;
        Metrics.Counter.add m_table_resizes (T.resizes ctx.tbl);
        Metrics.Gauge.max_ m_peak_frontier (float_of_int ctx.peak_frontier);
        Metrics.Histogram.observe m_solve_seconds (Clock.elapsed_s ctx.t0)
      end;
      if Span.enabled () then begin
        (* bridge the terminal telemetry into span annotations *)
        Span.add_attr "outcome" (Solver.outcome_label outcome);
        Span.add_attr "expansions" (string_of_int ctx.expansions);
        Span.add_attr "explored" (string_of_int (T.length ctx.tbl));
        if ctx.pruned > 0 then
          Span.add_attr "pruned" (string_of_int ctx.pruned)
      end;
      outcome
    in
    match !result with
    | Some (goal, d) ->
        let strategy =
          if not want_strategy then None
          else begin
            let acc = ref [] in
            let idx = ref goal in
            while !idx <> 0 do
              acc := ctx.parent_move.(!idx) :: !acc;
              idx := ctx.parent_idx.(!idx)
            done;
            Some !acc
          end
        in
        finish (Solver.Optimal { cost = d; strategy; stats = stats ctx })
    | None -> (
        match ctx.stop with
        | None ->
            (* frontier exhausted: no goal state is reachable *)
            finish (Solver.Unsolvable (stats ctx))
        | Some stopped ->
            let upper = if ctx.ub < max_int then Some ctx.ub else None in
            let lb = frontier_lower_bound ctx cur in
            (* clamp against the incumbent: an upper bound comes from
               a concrete strategy, so OPT <= upper always holds *)
            let lower =
              match upper with Some u -> min lb u | None -> lb
            in
            finish
              (Solver.Bounded
                 {
                   lower;
                   upper;
                   incumbent_strategy = None;
                   stats = stats ctx;
                   stopped;
                 }))

  (* ================== parallel path =================== *)
  (* Level-synchronized 0-1 BFS over a hash-sharded state table.
     Domains alternate three-phase bulk-synchronous subrounds:

       work      settle and expand this subround's bucket (with chunk
                 stealing from slower domains); successors are routed
                 into per-(producer, owner) lanes, never inserted
       barrier
       integrate each owner drains the lanes aimed at it — every
                 0-cost record before any 1-cost record, producers in
                 index order — and deduplicates/prunes/inserts into
                 its own shards; then publishes its counters
       barrier
       decide    every domain computes the *same* verdict (continue /
                 next level / spill / stop) from the published sums
                 and the quiescent stop/goal atomics, and applies its
                 own bucket swaps
       barrier

     Cross-domain data is only ever read at least one barrier after it
     was last written, so the hot paths need no locks.  Because a
     subround's content is "the states first reachable at this
     0-distance from the level-entry set" — a property of the game, not
     of the sharding — the aggregated explored/expanded/pruned counters
     and every barrier-decided stop are identical for every [jobs]
     value (deadline and cancellation stops are inherently timing-
     dependent; memory stops depend on allocator behaviour).  The shard
     count is fixed at [par_shards] rather than derived from [jobs] for
     the same reason: table growth, and therefore the word estimate the
     memory cap sees, must not depend on the domain count. *)

  module Sh = State_table.Sharded

  type decision =
    | Subround  (* more 0-cost-reachable work at this level *)
    | Next_level
    | Spill  (* level boundary, over the word cap, spill tier armed *)
    | Finish_goal of int  (* gid of a settled goal state *)
    | Finish_stop of Solver.reason
    | Finish_exhausted

  type mode = Mwork | Mspill

  (* Per-domain state.  [pend]/[inbox]/[next] hold gids this domain
     owns; [out*]/[mv*] are the successor lanes this domain *produces*,
     indexed by destination domain. *)
  type pd = {
    id : int;
    pend : Par.Ibuf.t;
    inbox : Par.Ibuf.t;
    next : Par.Ibuf.t;
    cursor : int Atomic.t;  (* next unclaimed [pend] slot; stealable *)
    out0 : Par.Ibuf.t array;
    out1 : Par.Ibuf.t array;
    mv0 : G.move Par.Vbuf.t array;
    mv1 : G.move Par.Vbuf.t array;
    cur : int array;
    scratch : int array;
    mutable level : int;
    mutable mode : mode;
    mutable just_spilled : bool;
    mutable prune_on : bool;
    mutable prune_disabled : bool;
    mutable expansions : int;
    mutable pruned : int;
    mutable inserted : int;  (* fresh table inserts; survives eviction *)
    mutable spilled : int;
    mutable since_poll : int;
    mutable stop_seen : bool;
    mutable cur_gid : int;
    mutable spill : Spill.t option;
    mutable dead : exn option;  (* a phase raised; idle the protocol out *)
    (* domain 0 only: telemetry cadence and the frontier high-water *)
    mutable next_emit : int;
    mutable next_prune : int;
    mutable peak_frontier : int;
  }

  type shared = {
    p_inst : G.inst;
    p_budget : Solver.Budget.t;
    p_tele : Solver.Telemetry.sink option;
    p_want_strategy : bool;
    p_spill_on : bool;
    p_ub : int;
    p_t0 : float;
    p_deadline : float;
    p_jobs : int;
    p_width : int;
    tbl : Sh.t;
    doms : pd array;
    bar : Par.Barrier.t;
    stop_r : int Atomic.t;  (* -1 = running, else a reason tag *)
    goal_gid : int Atomic.t;  (* min gid of a settled goal; max_int *)
    (* per-shard strategy bookkeeping, owner-written at integration *)
    parents : Par.Ibuf.t array;
    pmoves : G.move Par.Vbuf.t array;
    (* published slots: own slot written between the work and publish
       barriers, everyone's slots read only after the publish barrier *)
    pub_exp : int array;
    pub_pruned : int array;
    pub_ins : int array;
    pub_len : int array;
    pub_words : int array;
    pub_queue : int array;
    pub_inbox : int array;
    pub_next : int array;
    pub_spillw : int array;
  }

  let par_shards = 32

  let steal_chunk = 32

  let tag_of_reason = function
    | Solver.Max_states -> 0
    | Solver.Deadline -> 1
    | Solver.Max_words -> 2
    | Solver.Cancelled -> 3

  let reason_of_tag = function
    | 0 -> Solver.Max_states
    | 1 -> Solver.Deadline
    | 2 -> Solver.Max_words
    | _ -> Solver.Cancelled

  let set_stop sh r =
    ignore (Atomic.compare_and_set sh.stop_r (-1) (tag_of_reason r))

  (* keep the smallest goal gid so the choice among same-cost goals is
     reproducible for a fixed domain count *)
  let rec goal_min sh gid =
    let g = Atomic.get sh.goal_gid in
    if gid < g && not (Atomic.compare_and_set sh.goal_gid g gid) then
      goal_min sh gid

  let sum = Array.fold_left ( + ) 0

  let mk_pd jobs width id =
    {
      id;
      pend = Par.Ibuf.create ();
      inbox = Par.Ibuf.create ();
      next = Par.Ibuf.create ();
      cursor = Atomic.make 0;
      out0 = Array.init jobs (fun _ -> Par.Ibuf.create ());
      out1 = Array.init jobs (fun _ -> Par.Ibuf.create ());
      mv0 = Array.init jobs (fun _ -> Par.Vbuf.create G.dummy_move);
      mv1 = Array.init jobs (fun _ -> Par.Vbuf.create G.dummy_move);
      cur = Array.make width 0;
      scratch = Array.make width 0;
      level = 0;
      mode = Mwork;
      just_spilled = false;
      prune_on = false;
      prune_disabled = false;
      expansions = 0;
      pruned = 0;
      inserted = 0;
      spilled = 0;
      since_poll = 0;
      stop_seen = false;
      cur_gid = 0;
      spill = None;
      dead = None;
      next_emit = max_int;
      next_prune = max_int;
      peak_frontier = 0;
    }

  (* Deadline / cancellation poll, every [check_every] settled states
     per domain.  Only timing-dependent budgets are polled here; state
     and word caps are decided at barriers so they stay deterministic. *)
  let poll sh pd =
    pd.since_poll <- pd.since_poll + 1;
    if pd.since_poll >= sh.p_budget.Solver.Budget.check_every then begin
      pd.since_poll <- 0;
      (if Atomic.get sh.stop_r < 0 then
         if Clock.now () > sh.p_deadline then set_stop sh Solver.Deadline
         else
           match sh.p_budget.Solver.Budget.cancelled with
           | Some f when f () -> set_stop sh Solver.Cancelled
           | _ -> ());
      pd.stop_seen <- Atomic.get sh.stop_r >= 0
    end

  (* Route the successor in [pd.scratch] to its owner's lane.  Records
     are [width] key ints, plus the producer gid when a strategy is
     wanted (the move rides in the parallel [mv] lane). *)
  let route sh pd m cost01 =
    let dest = Sh.owner sh.tbl pd.scratch mod sh.p_jobs in
    let lane, mv =
      if cost01 = 0 then (pd.out0.(dest), pd.mv0.(dest))
      else (pd.out1.(dest), pd.mv1.(dest))
    in
    for i = 0 to sh.p_width - 1 do
      Par.Ibuf.push lane (Array.unsafe_get pd.scratch i)
    done;
    if sh.p_want_strategy then begin
      Par.Ibuf.push lane pd.cur_gid;
      Par.Vbuf.push mv m
    end

  (* Drain one pend bucket — [victim]'s, which may be [pd] itself or a
     slower domain being helped.  Chunks are claimed off the victim's
     atomic cursor, so thieves and owner never double-process an entry.
     Settling writes the owner's shard value column in place: safe
     because nothing inserts (hence nothing resizes) during the work
     phase.  After a stop lands, remaining entries are left *tentative*
     (not settled), keeping them visible to the certified lower bound. *)
  let process sh pd emit victim =
    let pend = victim.pend in
    let n = Par.Ibuf.length pend in
    let continue = ref (not pd.stop_seen) in
    while !continue do
      let start = Atomic.fetch_and_add victim.cursor steal_chunk in
      if start >= n then continue := false
      else begin
        let fin = min n (start + steal_chunk) in
        let i = ref start in
        while !i < fin && not pd.stop_seen do
          let gid = Par.Ibuf.get pend !i in
          let s = Sh.shard_of_handle sh.tbl gid in
          let j = Sh.index_of_handle sh.tbl gid in
          let f = Sh.shard sh.tbl s in
          (* stale entries (settled via a cheaper same-level path)
             carry a foreign value and are skipped on that alone *)
          if T.value f j = pd.level then begin
            T.set_value f j (lnot pd.level);
            T.read_key f j pd.cur;
            if G.is_goal sh.p_inst pd.cur then goal_min sh gid
            else begin
              pd.expansions <- pd.expansions + 1;
              pd.cur_gid <- gid;
              G.expand sh.p_inst pd.cur ~scratch:pd.scratch ~emit
            end
          end;
          poll sh pd;
          incr i
        done;
        if pd.stop_seen then continue := false
      end
    done

  (* Insert one routed record into the shard that owns it (which this
     domain owns — the producer routed it here).  The mirror of the
     sequential [relax], minus the capacity refusals: the state cap is
     enforced at the decision barrier instead, so integration never
     drops successors and the parallel path needs no [lost_lb]. *)
  let insert sh pd ~cost ~cls pgid m =
    let key = pd.scratch in
    let s = Sh.owner sh.tbl key in
    let f = Sh.shard sh.tbl s in
    let j = T.find f key in
    if j >= 0 then begin
      let v = T.value f j in
      if v >= 0 && v > cost then begin
        (* discovered over a 1-cost edge last level, now reached by a
           0-cost path: re-file it into the current level *)
        T.set_value f j cost;
        if sh.p_want_strategy then begin
          Par.Ibuf.set sh.parents.(s) j pgid;
          Par.Vbuf.set sh.pmoves.(s) j m
        end;
        Par.Ibuf.push pd.inbox (Sh.handle sh.tbl ~shard:s j)
      end
    end
    else if pd.prune_on && cost + G.residual_lb sh.p_inst key > sh.p_ub then
      pd.pruned <- pd.pruned + 1
    else begin
      let j = T.add f key cost in
      pd.inserted <- pd.inserted + 1;
      if sh.p_want_strategy then begin
        Par.Ibuf.push sh.parents.(s) pgid;
        Par.Vbuf.push sh.pmoves.(s) m
      end;
      let gid = Sh.handle sh.tbl ~shard:s j in
      if cls = 0 then Par.Ibuf.push pd.inbox gid
      else Par.Ibuf.push pd.next gid
    end

  (* Owner side of the subround: drain every producer's lanes aimed at
     this domain.  All 0-cost records strictly before any 1-cost record
     — a state reachable at cost [d] must not be first-seen at [d+1] —
     and producers in index order, so dedup outcomes (and with them the
     aggregate counters) do not depend on work-phase timing. *)
  let integrate sh pd =
    let d = pd.level in
    let w = sh.p_width in
    let stride = w + if sh.p_want_strategy then 1 else 0 in
    for cls = 0 to 1 do
      let cost = d + cls in
      for p = 0 to sh.p_jobs - 1 do
        let prod = sh.doms.(p) in
        let lane = if cls = 0 then prod.out0.(pd.id) else prod.out1.(pd.id) in
        let mv = if cls = 0 then prod.mv0.(pd.id) else prod.mv1.(pd.id) in
        let nrec = Par.Ibuf.length lane / stride in
        for r = 0 to nrec - 1 do
          let base = r * stride in
          for i = 0 to w - 1 do
            pd.scratch.(i) <- Par.Ibuf.get lane (base + i)
          done;
          let pgid =
            if sh.p_want_strategy then Par.Ibuf.get lane (base + w) else -1
          in
          let m =
            if sh.p_want_strategy then Par.Vbuf.get mv r else G.dummy_move
          in
          insert sh pd ~cost ~cls pgid m
        done
      done
    done

  let publish sh pd =
    let len = ref 0 and words = ref 0 in
    let s = ref pd.id in
    while !s < Sh.shards sh.tbl do
      let f = Sh.shard sh.tbl !s in
      len := !len + T.length f;
      words := !words + T.words f;
      s := !s + sh.p_jobs
    done;
    sh.pub_len.(pd.id) <- !len;
    sh.pub_words.(pd.id) <- !words;
    sh.pub_queue.(pd.id) <- Par.Ibuf.length pd.inbox + Par.Ibuf.length pd.next;
    sh.pub_inbox.(pd.id) <- Par.Ibuf.length pd.inbox;
    sh.pub_next.(pd.id) <- Par.Ibuf.length pd.next;
    sh.pub_exp.(pd.id) <- pd.expansions;
    sh.pub_pruned.(pd.id) <- pd.pruned;
    sh.pub_ins.(pd.id) <- pd.inserted;
    sh.pub_spillw.(pd.id) <-
      (match pd.spill with Some sp -> Spill.words sp | None -> 0)

  let par_progress sh =
    let load = ref 0. in
    for s = 0 to Sh.shards sh.tbl - 1 do
      let l = T.load (Sh.shard sh.tbl s) in
      if l > !load then load := l
    done;
    {
      Solver.Telemetry.expansions = sum sh.pub_exp;
      (* +1: the seeded init state, inserted before the domains spawn *)
      explored = sum sh.pub_ins + 1;
      pruned = sum sh.pub_pruned;
      frontier = sum sh.pub_queue;
      depth = sh.doms.(0).level;
      table_load = !load;
      elapsed_s = Clock.elapsed_s sh.p_t0;
      (* the level-synchronized frontier depth is the settled 0-1
         distance, hence a certified lower bound *)
      lower = sh.doms.(0).level;
      upper = (if sh.p_ub < max_int then Some sh.p_ub else None);
    }

  (* The subround verdict.  Every domain evaluates this identically:
     the inputs are the published slots (stable since the publish
     barrier) and the stop/goal atomics (quiescent — they are only
     written during work phases, two barriers away on either side).
     Domain 0 additionally feeds telemetry here, where the aggregate
     counters exist. *)
  let decide sh pd =
    let b = sh.p_budget in
    let texp = sum sh.pub_exp and tpruned = sum sh.pub_pruned in
    (* distinct insertions (+ the seeded init state), not live table
       size — eviction to the spill tier must not reopen the cap *)
    let tins = sum sh.pub_ins + 1 in
    let tinbox = sum sh.pub_inbox and tnext = sum sh.pub_next in
    let tqueue = sum sh.pub_queue in
    let twords = sum sh.pub_words + tqueue in
    (* deterministic prune auto-off, mirrored on every domain *)
    if
      pd.prune_on && tpruned = 0
      && texp >= b.Solver.Budget.prune_off_after
    then begin
      pd.prune_on <- false;
      pd.prune_disabled <- true
    end;
    if pd.id = 0 then begin
      if tqueue > pd.peak_frontier then pd.peak_frontier <- tqueue;
      match sh.p_tele with
      | Some sink ->
          if tpruned >= pd.next_prune then begin
            sink.emit (Solver.Telemetry.Prune { pruned = tpruned });
            pd.next_prune <- 2 * tpruned
          end;
          if texp >= pd.next_emit then begin
            sink.emit (Solver.Telemetry.Progress (par_progress sh));
            pd.next_emit <- texp + sink.every
          end
      | None -> ()
    end;
    let goal = Atomic.get sh.goal_gid in
    let stop = Atomic.get sh.stop_r in
    if goal < max_int then Finish_goal goal
    else if stop >= 0 then Finish_stop (reason_of_tag stop)
    else if tins >= b.Solver.Budget.max_states then
      (* checked at the barrier, not per insert: the search can
         overshoot the cap by at most one subround, in exchange for a
         verdict that cannot depend on the domain count *)
      Finish_stop Solver.Max_states
    else if tinbox = 0 && tnext = 0 then Finish_exhausted
    else
      let over =
        match b.Solver.Budget.max_words with
        | Some mw -> twords > mw
        | None -> false
      in
      let spill_usable =
        sh.p_spill_on && not pd.just_spilled
        && (match b.Solver.Budget.spill_words with
           | Some cap -> sum sh.pub_spillw < cap
           | None -> false)
      in
      if over then
        if spill_usable then
          (* evicting mid-level would strand inbox gids; ride out the
             level first (the overshoot is one level's frontier) *)
          if tinbox = 0 then Spill else Subround
        else Finish_stop Solver.Max_words
      else if tinbox > 0 then Subround
      else Next_level

  let clear_lanes sh pd =
    for k = 0 to sh.p_jobs - 1 do
      Par.Ibuf.clear pd.out0.(k);
      Par.Ibuf.clear pd.out1.(k);
      Par.Vbuf.clear pd.mv0.(k);
      Par.Vbuf.clear pd.mv1.(k)
    done

  (* Each domain applies a non-terminal verdict to its own structures;
     the barrier after this keeps thieves off the fresh [pend]. *)
  let apply sh pd = function
    | Subround ->
        Par.Ibuf.clear pd.pend;
        Par.Ibuf.swap pd.pend pd.inbox;
        Atomic.set pd.cursor 0;
        clear_lanes sh pd
    | Next_level ->
        pd.level <- pd.level + 1;
        pd.just_spilled <- false;
        Par.Ibuf.clear pd.pend;
        Par.Ibuf.swap pd.pend pd.next;
        Atomic.set pd.cursor 0;
        clear_lanes sh pd
    | Spill ->
        pd.mode <- Mspill;
        pd.just_spilled <- true;
        clear_lanes sh pd
    | Finish_goal _ | Finish_stop _ | Finish_exhausted -> assert false

  (* Spill work phase, at a level boundary: evict settled states of
     every owned shard to the file-backed store, rebuild each shard
     around its surviving tentative entries, and rewrite [next] against
     the compacted indices (stale gids — settled this level — drop
     out).  Sound because an evicted state is settled *and expanded*:
     its successors were already relaxed, so re-reaching it later can
     only waste work, never shorten a distance; and the certified
     lower bound takes a min over tentative entries, which re-inserted
     copies (at no-smaller values) cannot raise. *)
  let spill_phase sh pd =
    let sp =
      match pd.spill with
      | Some s -> s
      | None ->
          let s = Spill.create ~width:sh.p_width () in
          pd.spill <- Some s;
          s
    in
    let nshards = Sh.shards sh.tbl in
    let maps = Array.make nshards [||] in
    let s = ref pd.id in
    while !s < nshards do
      let f = Sh.shard sh.tbl !s in
      let n = T.length f in
      let map = Array.make n (-1) in
      (* size the rebuilt shard to its survivors, so compaction
         actually shrinks RAM instead of keeping the grown arrays *)
      let surv = ref 0 in
      for j = 0 to n - 1 do
        if T.value f j >= 0 then incr surv
      done;
      let nf = T.create ~capacity:!surv ~width:sh.p_width () in
      for j = 0 to n - 1 do
        let v = T.value f j in
        T.read_key f j pd.scratch;
        if v >= 0 then map.(j) <- T.add nf pd.scratch v
        else begin
          Spill.append sp pd.scratch (lnot v);
          pd.spilled <- pd.spilled + 1
        end
      done;
      Sh.replace_shard sh.tbl !s nf;
      maps.(!s) <- map;
      s := !s + sh.p_jobs
    done;
    let len = Par.Ibuf.length pd.next in
    let k = ref 0 in
    for i = 0 to len - 1 do
      let gid = Par.Ibuf.get pd.next i in
      let s = Sh.shard_of_handle sh.tbl gid in
      let j = Sh.index_of_handle sh.tbl gid in
      let nj = maps.(s).(j) in
      if nj >= 0 then begin
        Par.Ibuf.set pd.next !k (Sh.handle sh.tbl ~shard:s nj);
        incr k
      end
    done;
    Par.Ibuf.truncate pd.next !k

  (* One domain's whole life: the three-phase subround loop.  A phase
     that raises marks the domain dead and flags a stop, but the domain
     keeps arriving at barriers so the others can wind down instead of
     deadlocking; the stored exception is re-raised after the join. *)
  let domain_loop sh pd =
    let emit m cost01 = route sh pd m cost01 in
    let result = ref None in
    while !result = None do
      (try
         if pd.dead = None then
           match pd.mode with
           | Mwork ->
               process sh pd emit pd;
               for off = 1 to sh.p_jobs - 1 do
                 process sh pd emit sh.doms.((pd.id + off) mod sh.p_jobs)
               done
           | Mspill ->
               spill_phase sh pd;
               pd.mode <- Mwork
       with e ->
         pd.dead <- Some e;
         set_stop sh Solver.Cancelled);
      Par.Barrier.await sh.bar;
      (try if pd.dead = None then integrate sh pd
       with e ->
         pd.dead <- Some e;
         set_stop sh Solver.Cancelled);
      publish sh pd;
      Par.Barrier.await sh.bar;
      (match decide sh pd with
      | (Finish_goal _ | Finish_stop _ | Finish_exhausted) as d ->
          result := Some d
      | d -> (
          try apply sh pd d
          with e ->
            pd.dead <- Some e;
            set_stop sh Solver.Cancelled));
      Par.Barrier.await sh.bar
    done;
    match !result with Some d -> d | None -> assert false

  (* Certified lower bound at truncation, parallel flavour: every exit
     from the ever-settled region (in RAM or spilled) is a tentative
     table entry, so min over tentative entries of
     (value + admissible residual) bounds OPT from below — see
     [frontier_lower_bound] for the sequential argument and the spill
     note above for why eviction keeps it sound. *)
  let par_lower sh buf =
    let best = ref max_int in
    for s = 0 to Sh.shards sh.tbl - 1 do
      let f = Sh.shard sh.tbl s in
      for j = 0 to T.length f - 1 do
        let v = T.value f j in
        if v >= 0 && v < !best then begin
          T.read_key f j buf;
          let c = v + G.residual_lb sh.p_inst buf in
          if c < !best then best := c
        end
      done
    done;
    if !best < max_int then !best else sh.doms.(0).level

  let solve_par ~budget ~telemetry ~want_strategy ~prune ~jobs inst =
    let w = G.width inst in
    let t0 = Clock.now () in
    let jobs = max 1 (min jobs par_shards) in
    (* spilling compacts dense indices, which would orphan the parent
       gids strategy reconstruction walks; a strategy solve keeps the
       plain Max_words stop instead *)
    let spill_on =
      (not want_strategy) && budget.Solver.Budget.spill_words <> None
    in
    let tbl = Sh.create ~shards:par_shards ~width:w () in
    let nshards = Sh.shards tbl in
    let ub = if prune then G.heuristic_ub inst else max_int in
    let doms = Array.init jobs (mk_pd jobs w) in
    let sh =
      {
        p_inst = inst;
        p_budget = budget;
        p_tele = telemetry;
        p_want_strategy = want_strategy;
        p_spill_on = spill_on;
        p_ub = ub;
        p_t0 = t0;
        p_deadline =
          (match budget.Solver.Budget.max_millis with
          | Some ms -> t0 +. (float_of_int ms /. 1000.)
          | None -> infinity);
        p_jobs = jobs;
        p_width = w;
        tbl;
        doms;
        bar = Par.Barrier.create jobs;
        stop_r = Atomic.make (-1);
        goal_gid = Atomic.make max_int;
        parents = Array.init nshards (fun _ -> Par.Ibuf.create ());
        pmoves = Array.init nshards (fun _ -> Par.Vbuf.create G.dummy_move);
        pub_exp = Array.make jobs 0;
        pub_pruned = Array.make jobs 0;
        pub_ins = Array.make jobs 0;
        pub_len = Array.make jobs 0;
        pub_words = Array.make jobs 0;
        pub_queue = Array.make jobs 0;
        pub_inbox = Array.make jobs 0;
        pub_next = Array.make jobs 0;
        pub_spillw = Array.make jobs 0;
      }
    in
    Array.iter
      (fun pd ->
        pd.prune_on <- ub < max_int;
        if pd.id = 0 then begin
          pd.next_prune <- 1;
          pd.next_emit <-
            (match telemetry with Some s -> s.Solver.Telemetry.every | None -> max_int)
        end)
      doms;
    (match telemetry with
    | Some sink ->
        sink.emit
          (Solver.Telemetry.Start
             { width = w; max_states = budget.Solver.Budget.max_states })
    | None -> ());
    (* seed the initial state into its owner shard, pre-spawn *)
    let buf = Array.make w 0 in
    G.write_init inst buf;
    let s0 = Sh.owner tbl buf in
    let j0 = T.add (Sh.shard tbl s0) buf 0 in
    if want_strategy then begin
      Par.Ibuf.push sh.parents.(s0) (-1);
      Par.Vbuf.push sh.pmoves.(s0) G.dummy_move
    end;
    Par.Ibuf.push doms.(s0 mod jobs).pend (Sh.handle tbl ~shard:s0 j0);
    let workers =
      Array.init (jobs - 1) (fun i ->
          Domain.spawn (fun () -> domain_loop sh doms.(i + 1)))
    in
    let dec0 = domain_loop sh doms.(0) in
    Array.iter (fun d -> ignore (Domain.join d)) workers;
    let total_spilled =
      Array.fold_left (fun acc pd -> acc + pd.spilled) 0 doms
    in
    Array.iter
      (fun pd -> match pd.spill with Some sp -> Spill.close sp | None -> ())
      doms;
    Array.iter
      (fun pd -> match pd.dead with Some e -> raise e | None -> ())
      doms;
    let texp = Array.fold_left (fun acc pd -> acc + pd.expansions) 0 doms in
    let tpruned = Array.fold_left (fun acc pd -> acc + pd.pruned) 0 doms in
    let frontier =
      Array.fold_left
        (fun acc pd ->
          acc
          + Par.Ibuf.length pd.inbox
          + Par.Ibuf.length pd.next
          + max 0 (Par.Ibuf.length pd.pend - Atomic.get pd.cursor))
        0 doms
    in
    let mem_words =
      let lanes = ref 0 in
      Array.iter
        (fun pd ->
          lanes :=
            !lanes + Par.Ibuf.words pd.pend + Par.Ibuf.words pd.inbox
            + Par.Ibuf.words pd.next;
          for k = 0 to jobs - 1 do
            lanes := !lanes + Par.Ibuf.words pd.out0.(k) + Par.Ibuf.words pd.out1.(k)
          done)
        doms;
      Array.iter (fun p -> lanes := !lanes + Par.Ibuf.words p) sh.parents;
      Sh.words tbl + !lanes
    in
    let tins =
      1 + Array.fold_left (fun acc pd -> acc + pd.inserted) 0 doms
    in
    let stats =
      {
        (* distinct insertions including the seed — [Sh.length] would
           under-count after spill eviction *)
        Solver.explored = tins;
        pruned = tpruned;
        expansions = texp;
        frontier;
        elapsed_s = Clock.elapsed_s t0;
        mem_words;
        prune_disabled = doms.(0).prune_disabled;
        spilled = total_spilled;
      }
    in
    let finish outcome =
      (match telemetry with
      | Some sink ->
          let lo, up = Solver.interval outcome in
          sink.emit
            (Solver.Telemetry.Stop
               {
                 outcome = Solver.outcome_label outcome;
                 progress =
                   { (par_progress sh) with Solver.Telemetry.lower = lo;
                     upper = up };
               })
      | None -> ());
      if Metrics.enabled () then begin
        Metrics.Counter.incr m_solves;
        Metrics.Counter.add m_expansions texp;
        Metrics.Counter.add m_explored stats.Solver.explored;
        Metrics.Counter.add m_pruned tpruned;
        let resizes = ref 0 in
        for s = 0 to nshards - 1 do
          resizes := !resizes + T.resizes (Sh.shard tbl s)
        done;
        Metrics.Counter.add m_table_resizes !resizes;
        Metrics.Gauge.max_ m_peak_frontier
          (float_of_int doms.(0).peak_frontier);
        Metrics.Histogram.observe m_solve_seconds (Clock.elapsed_s t0);
        (* per-domain view of the same solve: one labeled counter
           family per metric, fed once at the end (the registry dedupes
           registration, so this costs a lookup per domain per solve) *)
        Array.iter
          (fun pd ->
            let labels = [ ("domain", string_of_int pd.id) ] in
            Metrics.Counter.add
              (Metrics.counter ~help:"states expanded, by engine domain"
                 ~labels "prbp_engine_domain_expansions_total")
              pd.expansions;
            Metrics.Counter.add
              (Metrics.counter
                 ~help:"states cut by branch-and-bound, by owning domain"
                 ~labels "prbp_engine_domain_pruned_total")
              pd.pruned;
            Metrics.Counter.add
              (Metrics.counter
                 ~help:"settled states evicted to the spill tier, by domain"
                 ~labels "prbp_engine_domain_spilled_total")
              pd.spilled)
          doms
      end;
      if Span.enabled () then begin
        Span.add_attr "outcome" (Solver.outcome_label outcome);
        Span.add_attr "jobs" (string_of_int jobs);
        Span.add_attr "expansions" (string_of_int texp);
        Span.add_attr "explored" (string_of_int stats.Solver.explored);
        if tpruned > 0 then Span.add_attr "pruned" (string_of_int tpruned);
        if total_spilled > 0 then
          Span.add_attr "spilled" (string_of_int total_spilled)
      end;
      outcome
    in
    match dec0 with
    | Finish_goal gid ->
        let strategy =
          if not want_strategy then None
          else begin
            let acc = ref [] in
            let g = ref gid in
            let continue = ref true in
            while !continue do
              let s = Sh.shard_of_handle tbl !g in
              let j = Sh.index_of_handle tbl !g in
              let pg = Par.Ibuf.get sh.parents.(s) j in
              if pg < 0 then continue := false
              else begin
                acc := Par.Vbuf.get sh.pmoves.(s) j :: !acc;
                g := pg
              end
            done;
            Some !acc
          end
        in
        finish (Solver.Optimal { cost = doms.(0).level; strategy; stats })
    | Finish_exhausted -> finish (Solver.Unsolvable stats)
    | Finish_stop stopped ->
        let upper = if ub < max_int then Some ub else None in
        let lb = par_lower sh buf in
        let lower = match upper with Some u -> min lb u | None -> lb in
        finish
          (Solver.Bounded
             { lower; upper; incumbent_strategy = None; stats; stopped })
    | Subround | Next_level | Spill -> assert false

  (* Every solve runs inside a "solve.<game>" span (a no-op branch
     when tracing is off); the finish paths annotate it with the
     outcome and search counters.  [jobs <= 1] without a spill tier
     keeps the sequential engine — its pop order (depth-first along
     0-cost chains) is the low-overhead default; [jobs >= 2], or a
     spill request, routes to the level-synchronized parallel path. *)
  let solve ?(budget = Solver.Budget.default) ?telemetry
      ?(want_strategy = false) ?(prune = true) ?(jobs = 1) inst =
    let jobs = max 1 jobs in
    let spill_requested =
      budget.Solver.Budget.spill_words <> None && not want_strategy
    in
    let go () =
      if jobs <= 1 && not spill_requested then
        solve_raw ~budget ?telemetry ~want_strategy ~prune inst
      else solve_par ~budget ~telemetry ~want_strategy ~prune ~jobs inst
    in
    if not (Span.enabled ()) then go ()
    else
      Span.with_ ~name:("solve." ^ G.name)
        ~attrs:[ ("game", G.name); ("width", string_of_int (G.width inst)) ]
        go

  (* -- deprecated pre-anytime surface, kept as thin wrappers -------- *)

  let search ?(max_states = 5_000_000) ?(prune = true) ~want_strategy inst =
    match
      solve ~budget:(Solver.Budget.states max_states) ~want_strategy ~prune
        inst
    with
    | Solver.Optimal { cost; strategy; stats } ->
        Some
          ( cost,
            Option.value strategy ~default:[],
            {
              Game.cost;
              explored = stats.Solver.explored;
              pruned = stats.Solver.pruned;
            } )
    | Solver.Unsolvable _ -> None
    | Solver.Bounded _ -> raise (Game.Too_large max_states)

  let opt_opt ?max_states ?prune inst =
    Option.map
      (fun (d, _, _) -> d)
      (search ?max_states ?prune ~want_strategy:false inst)

  let opt_stats ?max_states ?prune inst =
    Option.map
      (fun (_, _, stats) -> stats)
      (search ?max_states ?prune ~want_strategy:false inst)

  let opt_with_strategy ?max_states ?prune inst =
    Option.map
      (fun (d, moves, _) -> (d, moves))
      (search ?max_states ?prune ~want_strategy:true inst)
end

(* The one exhaustive-search loop of the library.  Every exact solver
   (Exact_rbp, Exact_prbp, Black, Exact_multi) instantiates this
   functor; none of them owns a BFS or branch-and-bound loop of its
   own.

   The loop is *anytime*: a Solver.Budget can stop it on state count,
   wall-clock deadline, memory estimate or cooperative cancellation,
   and a truncated search still returns a certified interval on OPT
   (Solver.Bounded) instead of raising.  Governance costs one integer
   compare per expansion; deadlines, memory estimates and telemetry
   run on the slow path every [check_every] expansions. *)

module T = State_table.Flat
module Clock = Prbp_obs.Clock
module Span = Prbp_obs.Span
module Metrics = Prbp_obs.Metrics

(* One instrument family shared by every game instance (the functor
   below may be applied many times; the registry dedupes).  Values are
   published once per solve, at the end — the per-expansion hot loop
   never touches them, so observability off or on costs the loop
   nothing beyond the counters it already keeps. *)
let m_solves =
  Metrics.counter ~help:"engine solves started" "prbp_engine_solves_total"

let m_expansions =
  Metrics.counter ~help:"states popped and expanded"
    "prbp_engine_expansions_total"

let m_explored =
  Metrics.counter ~help:"distinct states inserted into the search"
    "prbp_engine_explored_total"

let m_pruned =
  Metrics.counter ~help:"states cut by branch-and-bound"
    "prbp_engine_pruned_total"

let m_table_resizes =
  Metrics.counter ~help:"state-table geometric growth steps"
    "prbp_engine_table_resizes_total"

let m_peak_frontier =
  Metrics.gauge ~help:"largest 0-1 deque length sampled at a slow-path poll"
    "prbp_engine_peak_frontier"

let m_solve_seconds =
  Metrics.histogram ~help:"wall-clock seconds per engine solve"
    "prbp_engine_solve_seconds"

module Make (G : Game.S) = struct
  type ctx = {
    inst : G.inst;
    budget : Solver.Budget.t;
    tele : Solver.Telemetry.sink option;
    want_strategy : bool;
    ub : int;  (* branch-and-bound bound; max_int = pruning off *)
    t0 : float;
    deadline : float;  (* absolute, infinity when none *)
    mutable pruned : int;
    mutable expansions : int;
    mutable stop : Solver.reason option;
    (* min of (distance + residual) over every state the budget hid
       from the search: successors dropped at the state cap, and the
       popped state a stop settled without expanding.  Folded into the
       certified lower bound — such a state is an exit from the
       settled region that the surviving frontier does not cover. *)
    mutable lost_lb : int;
    mutable next_check : int;
    mutable next_emit : int;  (* max_int when no sink *)
    mutable next_gate : int;  (* min of the two above *)
    (* largest deque length seen at a slow-path poll or at the end of
       the solve — a sampled high-water mark, not an exact maximum *)
    mutable peak_frontier : int;
    tbl : T.t;
    mutable parent_idx : int array;
    mutable parent_move : G.move array;
    dq : int Deque01.t;
    (* set by the pop loop before calling [G.expand]; read by the
       [emit] relaxation closure *)
    mutable cur_idx : int;
    mutable cur_d : int;
  }

  (* Estimated live heap words of the search structures.  Strategy
     bookkeeping contributes exactly its arrays — zero unless
     [want_strategy], which the end-of-solve assertion pins down. *)
  let mem_words ctx =
    T.words ctx.tbl + Deque01.words ctx.dq
    + Array.length ctx.parent_idx
    (* parent_move is an array of pointers to small move blocks;
       count the pointer plus ~3 words per block *)
    + (4 * Array.length ctx.parent_move)

  let record_parent ctx idx =
    if idx >= Array.length ctx.parent_idx then begin
      let cap = max 16 (2 * Array.length ctx.parent_idx) in
      let pi = Array.make cap 0 and pm = Array.make cap G.dummy_move in
      Array.blit ctx.parent_idx 0 pi 0 (Array.length ctx.parent_idx);
      Array.blit ctx.parent_move 0 pm 0 (Array.length ctx.parent_move);
      ctx.parent_idx <- pi;
      ctx.parent_move <- pm
    end

  (* Relax the successor state sitting in [scratch]: the 0-1 BFS step,
     plus branch-and-bound on first sight of a new state.  A full
     state table flags the stop reason instead of raising, and the
     dropped successor's cheapest continuation is recorded in
     [lost_lb] so the certified lower bound still sees it. *)
  let relax ctx scratch m cost01 =
    let cost = ctx.cur_d + cost01 in
    let idx = T.find ctx.tbl scratch in
    if idx >= 0 then begin
      let v = T.value ctx.tbl idx in
      (* v < 0: settled, already minimal *)
      if v >= 0 && v > cost then begin
        T.set_value ctx.tbl idx cost;
        if ctx.want_strategy then begin
          ctx.parent_idx.(idx) <- ctx.cur_idx;
          ctx.parent_move.(idx) <- m
        end;
        if cost01 = 0 then Deque01.push_front ctx.dq idx
        else Deque01.push_back ctx.dq idx
      end
    end
    else if
      ctx.ub < max_int && cost + G.residual_lb ctx.inst scratch > ctx.ub
    then begin
      ctx.pruned <- ctx.pruned + 1;
      match ctx.tele with
      | Some sink when ctx.pruned land (ctx.pruned - 1) = 0 ->
          sink.emit (Solver.Telemetry.Prune { pruned = ctx.pruned })
      | _ -> ()
    end
    else if T.length ctx.tbl >= ctx.budget.Solver.Budget.max_states then begin
      if ctx.stop = None then ctx.stop <- Some Solver.Max_states;
      let c = cost + G.residual_lb ctx.inst scratch in
      if c < ctx.lost_lb then ctx.lost_lb <- c
    end
    else begin
      let idx = T.add ctx.tbl scratch cost in
      if ctx.want_strategy then begin
        record_parent ctx idx;
        ctx.parent_idx.(idx) <- ctx.cur_idx;
        ctx.parent_move.(idx) <- m
      end;
      if cost01 = 0 then Deque01.push_front ctx.dq idx
      else Deque01.push_back ctx.dq idx;
      (* the tables grow geometrically, so a memory cap can overshoot
         by a whole growth step between two slow-path polls; re-check
         at power-of-two state counts to bound the overshoot *)
      let len = T.length ctx.tbl in
      if len land (len - 1) = 0 then
        match ctx.budget.Solver.Budget.max_words with
        | Some w when mem_words ctx > w ->
            if ctx.stop = None then ctx.stop <- Some Solver.Max_words
        | _ -> ()
    end

  let progress ctx =
    {
      Solver.Telemetry.expansions = ctx.expansions;
      explored = T.length ctx.tbl;
      pruned = ctx.pruned;
      frontier = Deque01.length ctx.dq;
      depth = ctx.cur_d;
      table_load = T.load ctx.tbl;
      elapsed_s = Clock.elapsed_s ctx.t0;
    }

  (* Deadline / memory / cancellation polls and telemetry emission;
     reached every [min check_every sink.every] expansions. *)
  let slow_path ctx =
    let b = ctx.budget in
    let frontier = Deque01.length ctx.dq in
    if frontier > ctx.peak_frontier then ctx.peak_frontier <- frontier;
    if ctx.expansions >= ctx.next_check then begin
      (if ctx.stop = None then
         if Clock.now () > ctx.deadline then
           ctx.stop <- Some Solver.Deadline
         else
           match b.Solver.Budget.max_words with
           | Some w when mem_words ctx > w -> ctx.stop <- Some Solver.Max_words
           | _ -> (
               match b.Solver.Budget.cancelled with
               | Some f when f () -> ctx.stop <- Some Solver.Cancelled
               | _ -> ()));
      ctx.next_check <- ctx.expansions + b.Solver.Budget.check_every
    end;
    (match ctx.tele with
    | Some sink when ctx.expansions >= ctx.next_emit ->
        sink.emit (Solver.Telemetry.Progress (progress ctx));
        ctx.next_emit <- ctx.expansions + sink.every
    | _ -> ());
    ctx.next_gate <- min ctx.next_check ctx.next_emit

  let stats ctx =
    {
      Solver.explored = T.length ctx.tbl;
      pruned = ctx.pruned;
      expansions = ctx.expansions;
      frontier = Deque01.length ctx.dq;
      elapsed_s = Clock.elapsed_s ctx.t0;
      mem_words = mem_words ctx;
    }

  (* Certified lower bound on OPT at truncation: any optimal path must
     leave the settled region either through a still-queued frontier
     state [s] with its tentative distance [d(s)], or through a state
     the budget hid from the search (a successor dropped at the state
     cap, or the popped state a stop settled without expanding) whose
     cheapest continuation is tracked in [lost_lb].  So
     OPT >= min(lost_lb, min over the live frontier of
     (d(s) + residual_lb s)).  Branch-and-bound never cuts a state on
     an optimal path (its d + residual is at most OPT <= ub), so
     pruning keeps this sound.  An empty frontier with nothing lost
     degrades to the last settled depth. *)
  let frontier_lower_bound ctx buf =
    let best = ref ctx.lost_lb in
    Deque01.iter
      (fun idx ->
        let v = T.value ctx.tbl idx in
        if v >= 0 && v < !best then begin
          T.read_key ctx.tbl idx buf;
          let c = v + G.residual_lb ctx.inst buf in
          if c < !best then best := c
        end)
      ctx.dq;
    if !best < max_int then !best else ctx.cur_d

  let solve_raw ?(budget = Solver.Budget.default) ?telemetry
      ?(want_strategy = false) ?(prune = true) inst =
    let w = G.width inst in
    let t0 = Clock.now () in
    let ctx =
      {
        inst;
        budget;
        tele = telemetry;
        want_strategy;
        ub = (if prune then G.heuristic_ub inst else max_int);
        t0;
        deadline =
          (match budget.Solver.Budget.max_millis with
          | Some ms -> t0 +. (float_of_int ms /. 1000.)
          | None -> infinity);
        peak_frontier = 0;
        pruned = 0;
        expansions = 0;
        stop = None;
        lost_lb = max_int;
        next_check = budget.Solver.Budget.check_every;
        next_emit =
          (match telemetry with Some s -> s.every | None -> max_int);
        next_gate = 0;
        tbl = T.create ~width:w;
        parent_idx = [||];
        parent_move = [||];
        dq = Deque01.create ();
        cur_idx = 0;
        cur_d = 0;
      }
    in
    ctx.next_gate <- min ctx.next_check ctx.next_emit;
    (match telemetry with
    | Some sink ->
        sink.emit
          (Solver.Telemetry.Start
             { width = w; max_states = budget.Solver.Budget.max_states })
    | None -> ());
    let cur = Array.make w 0 and scratch = Array.make w 0 in
    (* init state gets dense index 0 *)
    G.write_init inst cur;
    ignore (T.add ctx.tbl cur 0);
    if want_strategy then begin
      ctx.parent_idx <- Array.make 16 0;
      ctx.parent_move <- Array.make 16 G.dummy_move
    end;
    Deque01.push_back ctx.dq 0;
    let emit m cost01 = relax ctx scratch m cost01 in
    let result = ref None in
    let continue = ref true in
    while !continue && ctx.stop = None do
      match Deque01.pop_front ctx.dq with
      | None -> continue := false
      | Some idx ->
          let d = T.value ctx.tbl idx in
          if d >= 0 then begin
            T.set_value ctx.tbl idx (lnot d);
            T.read_key ctx.tbl idx cur;
            ctx.cur_idx <- idx;
            ctx.cur_d <- d;
            if G.is_goal inst cur then begin
              result := Some (idx, d);
              continue := false
            end
            else begin
              ctx.expansions <- ctx.expansions + 1;
              if ctx.expansions >= ctx.next_gate then slow_path ctx;
              if ctx.stop = None then G.expand inst cur ~scratch ~emit
              else begin
                (* settled above but never expanded: its continuations
                   must stay visible to the certified lower bound *)
                let c = d + G.residual_lb inst cur in
                if c < ctx.lost_lb then ctx.lost_lb <- c
              end
            end
          end
    done;
    (* strategy bookkeeping is strictly opt-in: nothing on any path
       may allocate the parent arrays without [want_strategy], and the
       memory estimate above counts exactly these arrays *)
    assert (
      want_strategy
      || (Array.length ctx.parent_idx = 0 && Array.length ctx.parent_move = 0));
    let finish outcome =
      (match telemetry with
      | Some sink ->
          sink.emit
            (Solver.Telemetry.Stop
               {
                 outcome = Solver.outcome_label outcome;
                 progress = progress ctx;
               })
      | None -> ());
      (* end-of-solve observability: counters and the solve span are
         fed once here, never from the expansion loop *)
      let frontier = Deque01.length ctx.dq in
      if frontier > ctx.peak_frontier then ctx.peak_frontier <- frontier;
      if Metrics.enabled () then begin
        Metrics.Counter.incr m_solves;
        Metrics.Counter.add m_expansions ctx.expansions;
        Metrics.Counter.add m_explored (T.length ctx.tbl);
        Metrics.Counter.add m_pruned ctx.pruned;
        Metrics.Counter.add m_table_resizes (T.resizes ctx.tbl);
        Metrics.Gauge.max_ m_peak_frontier (float_of_int ctx.peak_frontier);
        Metrics.Histogram.observe m_solve_seconds (Clock.elapsed_s ctx.t0)
      end;
      if Span.enabled () then begin
        (* bridge the terminal telemetry into span annotations *)
        Span.add_attr "outcome" (Solver.outcome_label outcome);
        Span.add_attr "expansions" (string_of_int ctx.expansions);
        Span.add_attr "explored" (string_of_int (T.length ctx.tbl));
        if ctx.pruned > 0 then
          Span.add_attr "pruned" (string_of_int ctx.pruned)
      end;
      outcome
    in
    match !result with
    | Some (goal, d) ->
        let strategy =
          if not want_strategy then None
          else begin
            let acc = ref [] in
            let idx = ref goal in
            while !idx <> 0 do
              acc := ctx.parent_move.(!idx) :: !acc;
              idx := ctx.parent_idx.(!idx)
            done;
            Some !acc
          end
        in
        finish (Solver.Optimal { cost = d; strategy; stats = stats ctx })
    | None -> (
        match ctx.stop with
        | None ->
            (* frontier exhausted: no goal state is reachable *)
            finish (Solver.Unsolvable (stats ctx))
        | Some stopped ->
            let upper = if ctx.ub < max_int then Some ctx.ub else None in
            let lb = frontier_lower_bound ctx cur in
            (* clamp against the incumbent: an upper bound comes from
               a concrete strategy, so OPT <= upper always holds *)
            let lower =
              match upper with Some u -> min lb u | None -> lb
            in
            finish
              (Solver.Bounded
                 {
                   lower;
                   upper;
                   incumbent_strategy = None;
                   stats = stats ctx;
                   stopped;
                 }))

  (* Every solve runs inside a "solve.<game>" span (a no-op branch
     when tracing is off); [finish] above annotates it with the
     outcome and search counters. *)
  let solve ?budget ?telemetry ?want_strategy ?prune inst =
    if not (Span.enabled ()) then
      solve_raw ?budget ?telemetry ?want_strategy ?prune inst
    else
      Span.with_ ~name:("solve." ^ G.name)
        ~attrs:[ ("game", G.name); ("width", string_of_int (G.width inst)) ]
        (fun () -> solve_raw ?budget ?telemetry ?want_strategy ?prune inst)

  (* -- deprecated pre-anytime surface, kept as thin wrappers -------- *)

  let search ?(max_states = 5_000_000) ?(prune = true) ~want_strategy inst =
    match
      solve ~budget:(Solver.Budget.states max_states) ~want_strategy ~prune
        inst
    with
    | Solver.Optimal { cost; strategy; stats } ->
        Some
          ( cost,
            Option.value strategy ~default:[],
            {
              Game.cost;
              explored = stats.Solver.explored;
              pruned = stats.Solver.pruned;
            } )
    | Solver.Unsolvable _ -> None
    | Solver.Bounded _ -> raise (Game.Too_large max_states)

  let opt_opt ?max_states ?prune inst =
    Option.map
      (fun (d, _, _) -> d)
      (search ?max_states ?prune ~want_strategy:false inst)

  let opt_stats ?max_states ?prune inst =
    Option.map
      (fun (_, _, stats) -> stats)
      (search ?max_states ?prune ~want_strategy:false inst)

  let opt_with_strategy ?max_states ?prune inst =
    Option.map
      (fun (d, moves, _) -> (d, moves))
      (search ?max_states ?prune ~want_strategy:true inst)
end

(* The one exhaustive-search loop of the library.  Every exact solver
   (Exact_rbp, Exact_prbp, Black, Exact_multi) instantiates this
   functor; none of them owns a BFS or branch-and-bound loop of its
   own. *)

module T = State_table.Flat

module Make (G : Game.S) = struct
  type ctx = {
    inst : G.inst;
    max_states : int;
    want_strategy : bool;
    ub : int;  (* branch-and-bound bound; max_int = pruning off *)
    mutable pruned : int;
    tbl : T.t;
    mutable parent_idx : int array;
    mutable parent_move : G.move array;
    dq : int Deque01.t;
    (* set by the pop loop before calling [G.expand]; read by the
       [emit] relaxation closure *)
    mutable cur_idx : int;
    mutable cur_d : int;
  }

  let record_parent ctx idx =
    if idx >= Array.length ctx.parent_idx then begin
      let cap = max 16 (2 * Array.length ctx.parent_idx) in
      let pi = Array.make cap 0 and pm = Array.make cap G.dummy_move in
      Array.blit ctx.parent_idx 0 pi 0 (Array.length ctx.parent_idx);
      Array.blit ctx.parent_move 0 pm 0 (Array.length ctx.parent_move);
      ctx.parent_idx <- pi;
      ctx.parent_move <- pm
    end

  (* Relax the successor state sitting in [scratch]: the 0-1 BFS step,
     plus branch-and-bound on first sight of a new state. *)
  let relax ctx scratch m cost01 =
    let cost = ctx.cur_d + cost01 in
    let idx = T.find ctx.tbl scratch in
    if idx >= 0 then begin
      let v = T.value ctx.tbl idx in
      (* v < 0: settled, already minimal *)
      if v >= 0 && v > cost then begin
        T.set_value ctx.tbl idx cost;
        if ctx.want_strategy then begin
          ctx.parent_idx.(idx) <- ctx.cur_idx;
          ctx.parent_move.(idx) <- m
        end;
        if cost01 = 0 then Deque01.push_front ctx.dq idx
        else Deque01.push_back ctx.dq idx
      end
    end
    else if
      ctx.ub < max_int && cost + G.residual_lb ctx.inst scratch > ctx.ub
    then ctx.pruned <- ctx.pruned + 1
    else begin
      if T.length ctx.tbl >= ctx.max_states then
        raise (Game.Too_large ctx.max_states);
      let idx = T.add ctx.tbl scratch cost in
      if ctx.want_strategy then begin
        record_parent ctx idx;
        ctx.parent_idx.(idx) <- ctx.cur_idx;
        ctx.parent_move.(idx) <- m
      end;
      if cost01 = 0 then Deque01.push_front ctx.dq idx
      else Deque01.push_back ctx.dq idx
    end

  let search ?(max_states = 5_000_000) ?(prune = true) ~want_strategy inst =
    let w = G.width inst in
    let ctx =
      {
        inst;
        max_states;
        want_strategy;
        ub = (if prune then G.heuristic_ub inst else max_int);
        pruned = 0;
        tbl = T.create ~width:w;
        parent_idx = [||];
        parent_move = [||];
        dq = Deque01.create ();
        cur_idx = 0;
        cur_d = 0;
      }
    in
    let cur = Array.make w 0 and scratch = Array.make w 0 in
    (* init state gets dense index 0 *)
    G.write_init inst cur;
    ignore (T.add ctx.tbl cur 0);
    if want_strategy then begin
      ctx.parent_idx <- Array.make 16 0;
      ctx.parent_move <- Array.make 16 G.dummy_move
    end;
    Deque01.push_back ctx.dq 0;
    let emit m cost01 = relax ctx scratch m cost01 in
    let result = ref None in
    (try
       let continue = ref true in
       while !continue do
         match Deque01.pop_front ctx.dq with
         | None -> continue := false
         | Some idx ->
             let d = T.value ctx.tbl idx in
             if d >= 0 then begin
               T.set_value ctx.tbl idx (lnot d);
               T.read_key ctx.tbl idx cur;
               if G.is_goal inst cur then begin
                 result := Some (idx, d);
                 continue := false
               end
               else begin
                 ctx.cur_idx <- idx;
                 ctx.cur_d <- d;
                 G.expand inst cur ~scratch ~emit
               end
             end
       done
     with Game.Too_large _ as e ->
       (* drop every per-search structure, not just the distance
          table: a caught exception must not pin hundreds of MB
          alive *)
       T.reset ctx.tbl;
       Deque01.clear ctx.dq;
       ctx.parent_idx <- [||];
       ctx.parent_move <- [||];
       raise e);
    let explored = T.length ctx.tbl in
    match !result with
    | None -> None
    | Some (goal, d) ->
        let moves =
          if not want_strategy then []
          else begin
            let acc = ref [] in
            let idx = ref goal in
            while !idx <> 0 do
              acc := ctx.parent_move.(!idx) :: !acc;
              idx := ctx.parent_idx.(!idx)
            done;
            !acc
          end
        in
        Some
          (d, moves, { Game.cost = d; explored; pruned = ctx.pruned })

  let opt_opt ?max_states ?prune inst =
    Option.map
      (fun (d, _, _) -> d)
      (search ?max_states ?prune ~want_strategy:false inst)

  let opt_stats ?max_states ?prune inst =
    Option.map
      (fun (_, _, stats) -> stats)
      (search ?max_states ?prune ~want_strategy:false inst)

  let opt_with_strategy ?max_states ?prune inst =
    Option.map
      (fun (d, moves, _) -> (d, moves))
      (search ?max_states ?prune ~want_strategy:true inst)
end

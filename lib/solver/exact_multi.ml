module Dag = Prbp_dag.Dag
module Multi = Prbp_pebble.Multi

exception Too_large = Game.Too_large

type stats = Game.stats = { cost : int; explored : int; pruned : int }

(* The multiprocessor games as engine instances.  Both pack one search
   state as a short int array of per-processor pebble masks plus the
   shared blue/progress masks:

     RBP-MC   [| red_0; …; red_{p-1}; blue; computed |]      (p + 2)
     PRBP-MC  [| light_0; …; light_{p-1};
                 dark_0; …; dark_{p-1}; blue; marked |]      (2p + 2)

   Processors are interchangeable (same capacity r), so states that
   differ only by a permutation of the per-processor masks are
   equivalent; when no strategy is requested the successor masks are
   sorted into a canonical order before insertion, shrinking the
   reachable space by up to p!.  With strategy reconstruction the
   sorting is disabled — moves name concrete processors, and a
   permuted parent chain would not replay through {!Multi.R.check} /
   {!Multi.P.check}. *)

let sort2 (a : int array) lo len =
  (* insertion sort of a[lo .. lo+len-1]; p is tiny *)
  for i = lo + 1 to lo + len - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let check_cfg ~what (cfg : Multi.config) =
  if not cfg.Multi.one_shot then
    invalid_arg (what ^ ": only the one-shot multiprocessor game");
  if cfg.Multi.p > 8 then invalid_arg (what ^ ": at most 8 processors")

(* {1 RBP-MC} *)

module GR = struct
  type inst = {
    cfg : Multi.config;
    canon : bool;
    n : int;
    pred_mask : int array;
    succ_mask : int array;
    sinks : int;
    sources : int;
    srcs : int array;
    ub : int;
  }

  type move = Multi.Move.rbp

  let name = "multi-rbp"

  let dummy_move : move = Multi.Move.Load (0, 0)

  let width inst = inst.cfg.Multi.p + 2

  let write_init inst buf =
    let p = inst.cfg.Multi.p in
    Array.fill buf 0 p 0;
    buf.(p) <- inst.sources;
    buf.(p + 1) <- 0

  let is_goal inst buf =
    buf.(inst.cfg.Multi.p) land inst.sinks = inst.sinks

  (* Admissible: every not-yet-blue sink still costs a SAVE (on some
     processor), and every source that is red nowhere but still feeds
     an uncomputed node costs a LOAD (sources cannot be computed).
     Distinct moves on distinct nodes, so the sum bounds cost-to-go. *)
  let residual_lb inst buf =
    let p = inst.cfg.Multi.p in
    let blue = buf.(p) and comp = buf.(p + 1) in
    let all_red = ref 0 in
    for q = 0 to p - 1 do
      all_red := !all_red lor buf.(q)
    done;
    let lb = ref (Bits.popcount (inst.sinks land lnot blue)) in
    Array.iter
      (fun s ->
        if
          !all_red land (1 lsl s) = 0
          && inst.succ_mask.(s) land lnot comp <> 0
        then incr lb)
      inst.srcs;
    !lb

  let heuristic_ub inst = inst.ub

  let obsolete inst blue comp v =
    inst.succ_mask.(v) land lnot comp = 0
    && (inst.sinks land (1 lsl v) = 0 || blue land (1 lsl v) <> 0)

  let expand inst cur ~scratch ~emit =
    let p = inst.cfg.Multi.p and r = inst.cfg.Multi.r in
    let w = p + 2 in
    let blue = cur.(p) and comp = cur.(p + 1) in
    let fin (m : move) cost01 =
      if inst.canon then sort2 scratch 0 p;
      emit m cost01
    in
    for q = 0 to p - 1 do
      let red = cur.(q) in
      let n_red = Bits.popcount red in
      for v = 0 to inst.n - 1 do
        let b = 1 lsl v in
        (* LOAD onto processor q *)
        if
          blue land b <> 0
          && red land b = 0
          && n_red < r
          && not (obsolete inst blue comp v)
        then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(q) <- red lor b;
          fin (Multi.Move.Load (q, v)) 1
        end;
        (* SAVE from processor q *)
        if red land b <> 0 && blue land b = 0 && not (obsolete inst blue comp v)
        then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(p) <- blue lor b;
          fin (Multi.Move.Save (q, v)) 1
        end;
        (* COMPUTE on processor q: all inputs red locally *)
        if
          inst.sources land b = 0
          && red land b = 0
          && comp land b = 0
          && red land inst.pred_mask.(v) = inst.pred_mask.(v)
          && n_red < r
        then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(q) <- red lor b;
          scratch.(p + 1) <- comp lor b;
          fin (Multi.Move.Compute (q, v)) 0
        end;
        (* DELETE from processor q: recoverable copies only once the
           local cache is full; obsolete copies cleaned up for free
           (same normalization as the single-processor instance) *)
        if
          red land b <> 0
          && (obsolete inst blue comp v
             || (n_red = r && blue land b <> 0))
        then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(q) <- red lxor b;
          fin (Multi.Move.Delete (q, v)) 0
        end
      done
    done
end

module ER = Engine.Make (GR)

(* Any single-processor strategy is a p-processor strategy played
   entirely on processor 0 ({!Multi.lift_rbp}), so OPT_p ≤ OPT_1 ≤
   heuristic cost: the single-processor heuristic seeds the bound and
   its lifted strategy is the incumbent attached to [Bounded]. *)
let rbp_heuristic_seed (cfg : Multi.config) g =
  match Heuristic.rbp ~r:cfg.Multi.r g with
  | moves ->
      let c =
        List.fold_left
          (fun acc (m : Prbp_pebble.Move.R.t) ->
            match m with Load _ | Save _ -> acc + 1 | _ -> acc)
          0 moves
      in
      Some (c, moves)
  | exception _ -> None

let rbp_inst ~canon ~ub (cfg : Multi.config) g =
  check_cfg ~what:"Exact_multi (rbp)" cfg;
  let n = Dag.n_nodes g in
  if n > 62 then invalid_arg "Exact_multi (rbp): at most 62 nodes";
  let mask_of fold v = fold (fun u acc -> acc lor (1 lsl u)) g v 0 in
  {
    GR.cfg;
    canon;
    n;
    pred_mask = Array.init n (mask_of Dag.fold_pred);
    succ_mask = Array.init n (mask_of Dag.fold_succ);
    sinks = List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sinks g);
    sources =
      List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sources g);
    srcs = Array.of_list (Dag.sources g);
    ub;
  }

let default_states = Solver.Budget.default.Solver.Budget.max_states

(* Shared outcome plumbing for both multiprocessor games: seed the
   bound, disable processor-canonicalization when a replayable strategy
   is wanted, lift the single-processor incumbent onto processor 0 when
   the budget truncates the search. *)
let solve_with ~engine_solve ~inst ~seed ~lift ?budget ?telemetry
    ?(want_strategy = false) ~prune ?jobs () =
  let ub = match seed with Some (c, _) -> c | None -> max_int in
  let outcome =
    engine_solve ?budget ?telemetry ~want_strategy ~prune ?jobs
      (inst ~canon:(not want_strategy) ~ub)
  in
  (* move lists are strictly opt-in, incumbent included *)
  match (outcome, seed) with
  | Solver.Bounded b, Some (_, moves) when want_strategy ->
      Solver.Bounded { b with Solver.incumbent_strategy = Some (lift moves) }
  | _ -> outcome

let rbp_solve ?budget ?telemetry ?want_strategy ?(prune = true) ?jobs cfg g =
  solve_with
    ~engine_solve:(fun ?budget ?telemetry ~want_strategy ~prune ?jobs i ->
      ER.solve ?budget ?telemetry ~want_strategy ~prune ?jobs i)
    ~inst:(fun ~canon ~ub -> rbp_inst ~canon ~ub cfg g)
    ~seed:(if prune then rbp_heuristic_seed cfg g else None)
    ~lift:Multi.lift_rbp ?budget ?telemetry ?want_strategy ~prune ?jobs ()

(* -- deprecated pre-anytime surface --------------------------------- *)

let rbp_opt_opt ?(max_states = default_states) ?(prune = true) cfg g =
  match
    rbp_solve ~budget:(Solver.Budget.states max_states) ~prune cfg g
  with
  | Solver.Optimal { Solver.cost; _ } -> Some cost
  | Solver.Unsolvable _ -> None
  | Solver.Bounded _ -> raise (Game.Too_large max_states)

let rbp_opt_stats ?(max_states = default_states) ?(prune = true) cfg g =
  match
    rbp_solve ~budget:(Solver.Budget.states max_states) ~prune cfg g
  with
  | Solver.Optimal { Solver.cost; stats; _ } ->
      Some
        {
          Game.cost;
          explored = stats.Solver.explored;
          pruned = stats.Solver.pruned;
        }
  | Solver.Unsolvable _ -> None
  | Solver.Bounded _ -> raise (Game.Too_large max_states)

let rbp_opt ?max_states ?prune cfg g =
  match rbp_opt_opt ?max_states ?prune cfg g with
  | Some d -> d
  | None -> failwith "Exact_multi.rbp_opt: no valid pebbling exists"

let rbp_opt_with_strategy ?(max_states = default_states) ?(prune = true)
    cfg g =
  match
    rbp_solve
      ~budget:(Solver.Budget.states max_states)
      ~want_strategy:true ~prune cfg g
  with
  | Solver.Optimal { Solver.cost; strategy; _ } ->
      Some (cost, Option.value strategy ~default:[])
  | Solver.Unsolvable _ -> None
  | Solver.Bounded _ -> raise (Game.Too_large max_states)

(* {1 PRBP-MC} *)

module GP = struct
  type inst = {
    cfg : Multi.config;
    canon : bool;
    n : int;
    esrc : int array;
    edst : int array;
    in_mask : int array;  (* per node: mask of in-edge ids *)
    out_mask : int array;
    sink_mask : int;
    source_mask : int;
    full_edges : int;
    ub : int;
  }

  type move = Multi.Move.prbp

  let name = "multi-prbp"

  let dummy_move : move = Multi.Move.Load (0, 0)

  let width inst = (2 * inst.cfg.Multi.p) + 2

  let write_init inst buf =
    let p = inst.cfg.Multi.p in
    Array.fill buf 0 (2 * p) 0;
    buf.(2 * p) <- inst.source_mask;
    buf.(2 * p + 1) <- 0

  let is_goal inst buf =
    let p = inst.cfg.Multi.p in
    buf.(2 * p + 1) = inst.full_edges
    && buf.(2 * p) land inst.sink_mask = inst.sink_mask

  (* Admissible: sinks without blue still cost a SAVE; sources red
     nowhere with an unmarked out-edge still cost a LOAD (a source is
     never a compute target — it has no in-edges). *)
  let residual_lb inst buf =
    let p = inst.cfg.Multi.p in
    let blue = buf.(2 * p) and marked = buf.(2 * p + 1) in
    let all_red = ref 0 in
    for q = 0 to (2 * p) - 1 do
      all_red := !all_red lor buf.(q)
    done;
    let lb = ref (Bits.popcount (inst.sink_mask land lnot blue)) in
    Bits.iter_bits
      (fun v ->
        if
          !all_red land (1 lsl v) = 0
          && inst.out_mask.(v) land lnot marked <> 0
        then incr lb)
      inst.source_mask;
    !lb

  let heuristic_ub inst = inst.ub

  let canonicalize inst scratch =
    (* sort the (light_q, dark_q) pairs lexicographically *)
    let p = inst.cfg.Multi.p in
    for i = 1 to p - 1 do
      let l = scratch.(i) and d = scratch.(p + i) in
      let j = ref (i - 1) in
      while
        !j >= 0
        && (scratch.(!j) > l || (scratch.(!j) = l && scratch.(p + !j) > d))
      do
        scratch.(!j + 1) <- scratch.(!j);
        scratch.(p + !j + 1) <- scratch.(p + !j);
        decr j
      done;
      scratch.(!j + 1) <- l;
      scratch.(p + !j + 1) <- d
    done

  let expand inst cur ~scratch ~emit =
    let p = inst.cfg.Multi.p and r = inst.cfg.Multi.r in
    let w = (2 * p) + 2 in
    let blue = cur.(2 * p) and marked = cur.(2 * p + 1) in
    let all_dark = ref 0 and all_light = ref 0 in
    for q = 0 to p - 1 do
      all_light := !all_light lor cur.(q);
      all_dark := !all_dark lor cur.(p + q)
    done;
    let all_dark = !all_dark and all_light = !all_light in
    let fin (m : move) cost01 =
      if inst.canon then canonicalize inst scratch;
      emit m cost01
    in
    let fully_used v = inst.out_mask.(v) land lnot marked = 0 in
    for q = 0 to p - 1 do
      let light = cur.(q) and dark = cur.(p + q) in
      let n_red = Bits.popcount (light lor dark) in
      for v = 0 to inst.n - 1 do
        let b = 1 lsl v in
        (* LOAD: a light copy of a blue value; useless once every
           out-edge is marked (sinks are then already blue) *)
        if blue land b <> 0 && light land b = 0 && n_red < r
           && not (fully_used v)
        then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(q) <- light lor b;
          fin (Multi.Move.Load (q, v)) 1
        end;
        (* SAVE: dark -> blue + light on the same processor; useful
           only for sinks or while some out-edge is unmarked *)
        if
          dark land b <> 0
          && ((not (fully_used v)) || inst.sink_mask land b <> 0)
        then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(q) <- light lor b;
          scratch.(p + q) <- dark lxor b;
          scratch.(2 * p) <- blue lor b;
          fin (Multi.Move.Save (q, v)) 1
        end;
        (* DELETE a light copy: blue-backed, so recoverable — deferred
           until the local cache is full; fully-used copies are cleaned
           up eagerly for free *)
        if light land b <> 0 && (n_red = r || fully_used v) then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(q) <- light lxor b;
          fin (Multi.Move.Delete (q, v)) 0
        end;
        (* DELETE a dark pebble: only once fully used (the rule
           engine's requirement); deleting a dark sink loses its value
           for good — a dead end we prune *)
        if
          dark land b <> 0
          && fully_used v
          && inst.sink_mask land b = 0
        then begin
          Array.blit cur 0 scratch 0 w;
          scratch.(p + q) <- dark lxor b;
          fin (Multi.Move.Delete (q, v)) 0
        end
      done;
      (* PARTIAL COMPUTE on processor q along each unmarked edge *)
      let rest = ref (inst.full_edges land lnot marked) in
      while !rest <> 0 do
        let e = Bits.lowest_set_index !rest in
        rest := !rest land (!rest - 1);
        let u = inst.esrc.(e) and v = inst.edst.(e) in
        let bu = 1 lsl u and bv = 1 lsl v in
        if
          (light lor dark) land bu <> 0 (* u red on q *)
          && inst.in_mask.(u) land lnot marked = 0 (* u fully computed *)
        then begin
          let resident = (light lor dark) land bv <> 0 in
          (* target: dark/light on q, or stored nowhere.  A dark copy
             on another processor leaves v neither resident nor
             storeless (dark excludes blue and light), so both
             disjuncts already reject it. *)
          if
            resident
            || ((all_dark lor all_light lor blue) land bv = 0
               && n_red < r)
          then begin
            Array.blit cur 0 scratch 0 w;
            (* every other copy of v is now stale *)
            for q' = 0 to p - 1 do
              scratch.(q') <- scratch.(q') land lnot bv;
              scratch.(p + q') <- scratch.(p + q') land lnot bv
            done;
            scratch.(p + q) <- scratch.(p + q) lor bv;
            scratch.(2 * p) <- scratch.(2 * p) land lnot bv;
            scratch.(2 * p + 1) <- marked lor (1 lsl e);
            fin (Multi.Move.Compute (q, (u, v))) 0
          end
        end
      done
    done
end

module EP = Engine.Make (GP)

let prbp_heuristic_seed (cfg : Multi.config) g =
  let io_count moves =
    List.fold_left
      (fun acc (m : Prbp_pebble.Move.P.t) ->
        match m with Load _ | Save _ -> acc + 1 | _ -> acc)
      0 moves
  in
  let try_one pebbler =
    match pebbler ~r:cfg.Multi.r g with
    | moves -> Some (io_count moves, moves)
    | exception _ -> None
  in
  match
    ( try_one (fun ~r g -> Heuristic.prbp ~r g),
      try_one (fun ~r g -> Heuristic.prbp_greedy ~r g) )
  with
  | None, s | s, None -> s
  | (Some (ca, _) as a), (Some (cb, _) as b) -> if ca <= cb then a else b

let prbp_inst ~canon ~ub (cfg : Multi.config) g =
  check_cfg ~what:"Exact_multi (prbp)" cfg;
  let n = Dag.n_nodes g and m = Dag.n_edges g in
  if n > 62 then invalid_arg "Exact_multi (prbp): at most 62 nodes";
  if m > 62 then invalid_arg "Exact_multi (prbp): at most 62 edges";
  let in_mask = Array.make n 0 and out_mask = Array.make n 0 in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  Dag.iter_edges
    (fun e u v ->
      esrc.(e) <- u;
      edst.(e) <- v;
      out_mask.(u) <- out_mask.(u) lor (1 lsl e);
      in_mask.(v) <- in_mask.(v) lor (1 lsl e))
    g;
  {
    GP.cfg;
    canon;
    n;
    esrc;
    edst;
    in_mask;
    out_mask;
    sink_mask =
      List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sinks g);
    source_mask =
      List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sources g);
    full_edges = (if m = 0 then 0 else (1 lsl m) - 1);
    ub;
  }

let prbp_solve ?budget ?telemetry ?want_strategy ?(prune = true) ?jobs cfg g =
  solve_with
    ~engine_solve:(fun ?budget ?telemetry ~want_strategy ~prune ?jobs i ->
      EP.solve ?budget ?telemetry ~want_strategy ~prune ?jobs i)
    ~inst:(fun ~canon ~ub -> prbp_inst ~canon ~ub cfg g)
    ~seed:(if prune then prbp_heuristic_seed cfg g else None)
    ~lift:Multi.lift_prbp ?budget ?telemetry ?want_strategy ~prune ?jobs ()

(* -- deprecated pre-anytime surface --------------------------------- *)

let prbp_opt_opt ?(max_states = default_states) ?(prune = true) cfg g =
  match
    prbp_solve ~budget:(Solver.Budget.states max_states) ~prune cfg g
  with
  | Solver.Optimal { Solver.cost; _ } -> Some cost
  | Solver.Unsolvable _ -> None
  | Solver.Bounded _ -> raise (Game.Too_large max_states)

let prbp_opt_stats ?(max_states = default_states) ?(prune = true) cfg g =
  match
    prbp_solve ~budget:(Solver.Budget.states max_states) ~prune cfg g
  with
  | Solver.Optimal { Solver.cost; stats; _ } ->
      Some
        {
          Game.cost;
          explored = stats.Solver.explored;
          pruned = stats.Solver.pruned;
        }
  | Solver.Unsolvable _ -> None
  | Solver.Bounded _ -> raise (Game.Too_large max_states)

let prbp_opt ?max_states ?prune cfg g =
  match prbp_opt_opt ?max_states ?prune cfg g with
  | Some d -> d
  | None -> failwith "Exact_multi.prbp_opt: no valid pebbling exists"

let prbp_opt_with_strategy ?(max_states = default_states) ?(prune = true)
    cfg g =
  match
    prbp_solve
      ~budget:(Solver.Budget.states max_states)
      ~want_strategy:true ~prune cfg g
  with
  | Solver.Optimal { Solver.cost; strategy; _ } ->
      Some (cost, Option.value strategy ~default:[])
  | Solver.Unsolvable _ -> None
  | Solver.Bounded _ -> raise (Game.Too_large max_states)

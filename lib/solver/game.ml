exception Too_large of int

type stats = { cost : int; explored : int; pruned : int }

module type S = sig
  type inst

  val name : string

  type move

  val width : inst -> int

  val write_init : inst -> int array -> unit

  val is_goal : inst -> int array -> bool

  val residual_lb : inst -> int array -> int

  val heuristic_ub : inst -> int

  val dummy_move : move

  val expand : inst -> int array -> scratch:int array ->
    emit:(move -> int -> unit) -> unit
end

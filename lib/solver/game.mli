(** The [GAME] signature: what a pebble game must provide for the
    generic exact {!Engine} to solve it.

    Every exact solver in this library — classic RBP, PRBP, the black
    pebble game, and the multiprocessor extensions — is a 0–1
    shortest-path problem over packed integer states: moves cost 0
    (computes, deletes, slides) or 1 (loads, saves), and the optimum
    is the distance from the initial state to any goal state.  A
    [GAME] instance supplies the packing (a state is [width]
    consecutive ints in a caller-owned buffer), the initial state, the
    terminality test, the successor enumeration with 0/1 costs, an
    admissible residual lower bound, and a heuristic upper-bound seed
    for branch-and-bound.  {!Engine.Make} supplies everything else:
    the open-addressing state table, the 0-1 BFS deque, settled-state
    encoding, pruning, and optimal-trace reconstruction.

    States are flat ints rather than a type parameter so that the hot
    path never boxes: the engine hands games [int array] scratch
    buffers and the games read/write raw packed words
    ({!State_table.Flat} stores them column-wise). *)

exception Too_large of int
(** Raised by the remaining deprecated engine-backed wrappers when the
    state count exceeds the [max_states] budget.  This is the
    {e single} such exception in the library: [Black.Too_large] and
    [Exact_multi.Too_large] are aliases of it, so callers match either
    name and catch them all.  The unified [solve] entry points never
    raise it. *)

type stats = {
  cost : int;  (** the optimal 0-1 distance (I/O cost) *)
  explored : int;  (** distinct states inserted into the search *)
  pruned : int;
      (** states cut by branch-and-bound: their distance plus the
          admissible residual bound exceeded the heuristic upper
          bound, so they were never inserted *)
}

(** The game interface.  All state buffers have exactly
    [width inst] ints; games must not retain the buffers they are
    handed (the engine reuses them). *)
module type S = sig
  type inst
  (** A preprocessed problem instance: the DAG as packed adjacency
      masks, the game configuration, and any per-instance pruning
      data.  Built once per [search] call by the concrete solver. *)

  val name : string
  (** Short stable identifier of the game ("rbp", "prbp", "black",
      "multi-rbp", "multi-prbp"); names the engine's solve spans and
      tags its telemetry. *)

  type move
  (** Move vocabulary, recorded per transition for optimal-trace
      reconstruction. *)

  val width : inst -> int
  (** Ints per packed state (constant for a given instance). *)

  val write_init : inst -> int array -> unit
  (** Store the initial state into [buf.(0 .. width-1)]. *)

  val is_goal : inst -> int array -> bool
  (** Terminality test on the state in [buf.(0 .. width-1)]. *)

  val residual_lb : inst -> int array -> int
  (** Admissible lower bound on the cost-to-go from the given state:
      never exceeds the true remaining optimal cost.  Return [0] to
      opt out.  Consulted by branch-and-bound when pruning is armed,
      and by the certified lower bound of truncated
      ({!Solver.Bounded}) outcomes. *)

  val heuristic_ub : inst -> int
  (** Upper-bound seed for branch-and-bound — the cost of any valid
      strategy (typically a heuristic pebbler's), or [max_int] to
      disable pruning for this instance. *)

  val dummy_move : move
  (** Array-initialization filler; never reported. *)

  val expand : inst -> int array -> scratch:int array ->
    emit:(move -> int -> unit) -> unit
  (** [expand inst cur ~scratch ~emit]: enumerate every legal move
      from the state in [cur]; for each, write the successor state
      into [scratch.(0 .. width-1)] and call [emit move cost01] with
      [cost01] ∈ {0, 1}.  [emit] consumes [scratch] immediately, so
      the buffer may be reused across successors.  [cur] must not be
      modified. *)
end

(* File-backed store of settled states: the spill tier of the
   parallel engine.

   When a search outgrows its [max_words] budget, states that are
   settled *and expanded* are pure dedup memory: their distances are
   final and their successors have already been relaxed into the
   table, so evicting them can lose work (a settled state reached
   again later is re-explored at a no-smaller distance) but never
   correctness — see docs/ALGORITHMS.md "Spill tier" for the
   soundness argument.  The engine appends evicted states here and
   rebuilds its shard table around the surviving frontier.

   The store is write-behind: one buffered append per evicted state,
   fixed-size records of (width + 1) little-endian int64s (the packed
   key then the settled distance).  Reads ([iter]) are for tests,
   post-mortems and future strategy replay — never the search hot
   path.  The backing file lives in [Filename.get_temp_dir_name]
   (override with [dir]) and is removed on [close]. *)

type t = {
  width : int;
  path : string;
  oc : out_channel;
  rec_bytes : Bytes.t;  (* one-record scratch, reused per append *)
  mutable count : int;
  mutable closed : bool;
}

let record_bytes width = 8 * (width + 1)

let create ?dir ~width () =
  if width < 1 then invalid_arg "Spill.create: width >= 1";
  let path = Filename.temp_file ?temp_dir:dir "prbp-spill" ".bin" in
  {
    width;
    path;
    oc = open_out_bin path;
    rec_bytes = Bytes.create (record_bytes width);
    count = 0;
    closed = false;
  }

let width t = t.width

let path t = t.path

let count t = t.count

(* On-disk footprint in words — what the engine charges against the
   spill-tier budget. *)
let words t = (t.width + 1) * t.count

let append t (key : int array) dist =
  if t.closed then invalid_arg "Spill.append: closed";
  for i = 0 to t.width - 1 do
    Bytes.set_int64_le t.rec_bytes (8 * i) (Int64.of_int key.(i))
  done;
  Bytes.set_int64_le t.rec_bytes (8 * t.width) (Int64.of_int dist);
  output_bytes t.oc t.rec_bytes;
  t.count <- t.count + 1

let iter t f =
  if t.closed then invalid_arg "Spill.iter: closed";
  flush t.oc;
  let ic = open_in_bin t.path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Bytes.create (record_bytes t.width) in
      let key = Array.make t.width 0 in
      for _ = 1 to t.count do
        really_input ic buf 0 (Bytes.length buf);
        for i = 0 to t.width - 1 do
          key.(i) <- Int64.to_int (Bytes.get_int64_le buf (8 * i))
        done;
        f key (Int64.to_int (Bytes.get_int64_le buf (8 * t.width)))
      done)

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc;
    try Sys.remove t.path with Sys_error _ -> ()
  end

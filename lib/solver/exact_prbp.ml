module Dag = Prbp_dag.Dag
module Prbp = Prbp_pebble.Prbp
module PM = Prbp_pebble.Move.P
module T = State_table.I2

exception Too_large of int

type stats = { cost : int; explored : int; pruned : int }

(* Pebble states are packed 2 bits per node:
   00 = no pebble, 01 = blue, 11 = blue + light red, 10 = dark red.
   Bit 0 of the pair = "has blue", bit 1 = "has red": both game
   predicates become single-mask tests.

   A search state is the (pack, marked) int pair, kept unboxed in a
   State_table.I2 and named by its dense table index; the deque holds
   dense indices only.  A state's tentative distance lives in the
   table value, flipped to [lnot d] (negative) once the state is
   popped and settled — the 0-1 BFS invariant guarantees the first
   pop sees the final distance, so stale queue entries are skipped on
   the sign alone. *)
let st_none = 0
and st_blue = 1
and st_dark = 2
and st_bl = 3

type ctx = {
  cfg : Prbp.config;
  eager_deletes : bool;
  n : int;
  m : int;
  esrc : int array;
  edst : int array;
  in_mask : int array;  (* per node: mask of in-edge ids *)
  out_mask : int array;
  red_bits : int;  (* bit 2v+1 for every node v *)
  sink_mask : int;  (* node mask *)
  source_mask : int;
  full_edges : int;
  max_states : int;
  want_strategy : bool;
  ub : int;  (* branch-and-bound bound; max_int = pruning off *)
  mutable pruned : int;
  tbl : T.t;
  mutable parent_idx : int array;
  mutable parent_move : PM.t array;
  dq : int Deque01.t;
}

let node_state pack v = (pack lsr (2 * v)) land 3

let set_node_state pack v s = pack land lnot (3 lsl (2 * v)) lor (s lsl (2 * v))

(* Admissible residual bound: every sink without a blue pebble still
   costs one SAVE, and every source that is not red but still has an
   unmarked out-edge costs one LOAD (sources can only become red by
   loading).  Distinct moves on distinct nodes, so the sum lower
   bounds the cost-to-go — also under re-computation, where it only
   counts currently-unmarked edges. *)
let residual_lb ctx pack marked =
  let lb = ref 0 in
  Bits.iter_bits
    (fun v -> if (pack lsr (2 * v)) land 1 = 0 then incr lb)
    ctx.sink_mask;
  Bits.iter_bits
    (fun v ->
      if
        (pack lsr (2 * v)) land 2 = 0
        && ctx.out_mask.(v) land lnot marked <> 0
      then incr lb)
    ctx.source_mask;
  !lb

let relax ctx ~prev ~d_prev m pack marked cost =
  let idx = T.find ctx.tbl pack marked in
  if idx >= 0 then begin
    let v = T.value ctx.tbl idx in
    (* v < 0: settled, already minimal *)
    if v >= 0 && v > cost then begin
      T.set_value ctx.tbl idx cost;
      if ctx.want_strategy then begin
        ctx.parent_idx.(idx) <- prev;
        ctx.parent_move.(idx) <- m
      end;
      if cost = d_prev then Deque01.push_front ctx.dq idx
      else Deque01.push_back ctx.dq idx
    end
  end
  else if ctx.ub < max_int && cost + residual_lb ctx pack marked > ctx.ub
  then ctx.pruned <- ctx.pruned + 1
  else begin
    if T.length ctx.tbl >= ctx.max_states then raise (Too_large ctx.max_states);
    let idx = T.add ctx.tbl pack marked cost in
    if ctx.want_strategy then begin
      if idx >= Array.length ctx.parent_idx then begin
        let cap = max 16 (2 * Array.length ctx.parent_idx) in
        let pi = Array.make cap 0 and pm = Array.make cap (PM.Load 0) in
        Array.blit ctx.parent_idx 0 pi 0 (Array.length ctx.parent_idx);
        Array.blit ctx.parent_move 0 pm 0 (Array.length ctx.parent_move);
        ctx.parent_idx <- pi;
        ctx.parent_move <- pm
      end;
      ctx.parent_idx.(idx) <- prev;
      ctx.parent_move.(idx) <- m
    end;
    if cost = d_prev then Deque01.push_front ctx.dq idx
    else Deque01.push_back ctx.dq idx
  end

let expand ctx prev d =
  let pack = T.key1 ctx.tbl prev and marked = T.key2 ctx.tbl prev in
  let n_red = Bits.popcount (pack land ctx.red_bits) in
  for v = 0 to ctx.n - 1 do
    let s = node_state pack v in
    let fully_used = ctx.out_mask.(v) land lnot marked = 0 in
    (* LOAD: blue only -> blue+light; useless once all out-edges are
       marked (covers sinks: they are already blue) *)
    if s = st_blue && n_red < ctx.cfg.Prbp.r && not fully_used then
      relax ctx ~prev ~d_prev:d (PM.Load v)
        (set_node_state pack v st_bl)
        marked (d + 1);
    (* SAVE: dark -> blue+light; useful only for sinks or while some
       out-edge is still unmarked *)
    if
      s = st_dark
      && ((not fully_used) || ctx.sink_mask land (1 lsl v) <> 0)
    then
      relax ctx ~prev ~d_prev:d (PM.Save v)
        (set_node_state pack v st_bl)
        marked (d + 1);
    (* DELETE light red: a cached copy of a value that is also in slow
       memory only ever consumes capacity, so deleting it is postponed
       until the cache is full (a normalization that preserves
       optimality and shrinks the search space); fully-used copies are
       cleaned up eagerly for free *)
    if
      s = st_bl
      && (ctx.eager_deletes || n_red = ctx.cfg.Prbp.r || fully_used)
    then
      relax ctx ~prev ~d_prev:d (PM.Delete v)
        (set_node_state pack v st_blue)
        marked d;
    (* DELETE dark red: only when fully used; deleting a dark sink
       loses its final value for good — a dead end we prune *)
    if
      s = st_dark
      && (not ctx.cfg.Prbp.no_delete)
      && fully_used
      && ctx.sink_mask land (1 lsl v) = 0
    then
      relax ctx ~prev ~d_prev:d (PM.Delete v)
        (set_node_state pack v st_none)
        marked d;
    (* CLEAR (re-computation variant): drop all pebbles from an
       internal node and unmark its in-edges, allowing the value to be
       rebuilt from scratch later.  Skipped when it would be a no-op. *)
    if
      ctx.cfg.Prbp.recompute
      && ctx.source_mask land (1 lsl v) = 0
      && ctx.sink_mask land (1 lsl v) = 0
      && (s <> st_none || ctx.in_mask.(v) land marked <> 0)
    then
      relax ctx ~prev ~d_prev:d (PM.Clear v)
        (set_node_state pack v st_none)
        (marked land lnot ctx.in_mask.(v))
        d
  done;
  (* PARTIAL COMPUTE on each unmarked edge *)
  let rest = ref (ctx.full_edges land lnot marked) in
  while !rest <> 0 do
    let e = Bits.lowest_set_index !rest in
    rest := !rest land (!rest - 1);
    let u = ctx.esrc.(e) and v = ctx.edst.(e) in
    let su = node_state pack u in
    if
      su land 2 <> 0 (* u has red *)
      && ctx.in_mask.(u) land lnot marked = 0 (* u fully computed *)
    then begin
      let sv = node_state pack v in
      if sv <> st_blue && (sv <> st_none || n_red < ctx.cfg.Prbp.r) then
        relax ctx ~prev ~d_prev:d
          (PM.Compute (u, v))
          (set_node_state pack v st_dark)
          (marked lor (1 lsl e))
          d
    end
  done

(* Branch-and-bound upper bound: the I/O count of the cheaper of the
   two heuristic pebblers.  Both play the standard one-shot game,
   legal in every variant except no-delete (re-computation only adds
   moves), so their cost bounds OPT from above there; in the no-delete
   variant (or if the heuristics cannot run, e.g. r < 2) pruning is
   disabled. *)
let heuristic_ub cfg g =
  if cfg.Prbp.no_delete then max_int
  else begin
    let io_count moves =
      List.fold_left
        (fun acc m ->
          match m with PM.Load _ | PM.Save _ -> acc + 1 | _ -> acc)
        0 moves
    in
    let try_one pebbler =
      match pebbler ~r:cfg.Prbp.r g with
      | moves -> io_count moves
      | exception _ -> max_int
    in
    min
      (try_one (fun ~r g -> Heuristic.prbp ~r g))
      (try_one (fun ~r g -> Heuristic.prbp_greedy ~r g))
  end

let search ?(max_states = 5_000_000) ?(eager_deletes = false) ?(prune = true)
    ~want_strategy cfg g =
  let n = Dag.n_nodes g and m = Dag.n_edges g in
  if n > 31 then invalid_arg "Exact_prbp: at most 31 nodes";
  if m > 62 then invalid_arg "Exact_prbp: at most 62 edges";
  let in_mask = Array.make n 0 and out_mask = Array.make n 0 in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  Dag.iter_edges
    (fun e u v ->
      esrc.(e) <- u;
      edst.(e) <- v;
      out_mask.(u) <- out_mask.(u) lor (1 lsl e);
      in_mask.(v) <- in_mask.(v) lor (1 lsl e))
    g;
  let red_bits = ref 0 and sink_mask = ref 0 and init_pack = ref 0 in
  let source_mask = ref 0 in
  for v = 0 to n - 1 do
    red_bits := !red_bits lor (1 lsl ((2 * v) + 1));
    if Dag.is_sink g v then sink_mask := !sink_mask lor (1 lsl v);
    if Dag.is_source g v then begin
      source_mask := !source_mask lor (1 lsl v);
      init_pack := !init_pack lor (st_blue lsl (2 * v))
    end
  done;
  let ctx =
    {
      cfg;
      eager_deletes;
      n;
      m;
      esrc;
      edst;
      in_mask;
      out_mask;
      red_bits = !red_bits;
      sink_mask = !sink_mask;
      source_mask = !source_mask;
      full_edges = (if m = 0 then 0 else (1 lsl m) - 1);
      max_states;
      want_strategy;
      ub = (if prune then heuristic_ub cfg g else max_int);
      pruned = 0;
      tbl = T.create ();
      parent_idx = [||];
      parent_move = [||];
      dq = Deque01.create ();
    }
  in
  let is_goal pack marked =
    marked = ctx.full_edges
    &&
    let ok = ref true in
    for v = 0 to n - 1 do
      if ctx.sink_mask land (1 lsl v) <> 0 && node_state pack v land 1 = 0
      then ok := false
    done;
    !ok
  in
  (* init state gets dense index 0 *)
  ignore (T.add ctx.tbl !init_pack 0 0);
  if want_strategy then begin
    ctx.parent_idx <- Array.make 16 0;
    ctx.parent_move <- Array.make 16 (PM.Load 0)
  end;
  Deque01.push_back ctx.dq 0;
  let result = ref None in
  (try
     let continue = ref true in
     while !continue do
       match Deque01.pop_front ctx.dq with
       | None -> continue := false
       | Some idx ->
           let d = T.value ctx.tbl idx in
           if d >= 0 then begin
             T.set_value ctx.tbl idx (lnot d);
             if is_goal (T.key1 ctx.tbl idx) (T.key2 ctx.tbl idx) then begin
               result := Some (idx, d);
               continue := false
             end
             else expand ctx idx d
           end
     done
   with Too_large _ as e ->
     (* drop every per-search structure, not just the distance table:
        a caught exception must not pin hundreds of MB alive *)
     T.reset ctx.tbl;
     Deque01.clear ctx.dq;
     ctx.parent_idx <- [||];
     ctx.parent_move <- [||];
     raise e);
  let explored = T.length ctx.tbl in
  match !result with
  | None -> None
  | Some (goal, d) ->
      let moves =
        if not want_strategy then []
        else begin
          let acc = ref [] in
          let idx = ref goal in
          while !idx <> 0 do
            acc := ctx.parent_move.(!idx) :: !acc;
            idx := ctx.parent_idx.(!idx)
          done;
          !acc
        end
      in
      Some (d, moves, { cost = d; explored; pruned = ctx.pruned })

let opt_opt ?max_states ?prune cfg g =
  Option.map
    (fun (d, _, _) -> d)
    (search ?max_states ?prune ~want_strategy:false cfg g)

let opt_stats ?max_states ?eager_deletes ?prune cfg g =
  Option.map
    (fun (_, _, stats) -> stats)
    (search ?max_states ?eager_deletes ?prune ~want_strategy:false cfg g)

let opt ?max_states ?prune cfg g =
  match opt_opt ?max_states ?prune cfg g with
  | Some d -> d
  | None -> failwith "Exact_prbp.opt: no valid pebbling exists"

let opt_with_strategy ?max_states ?prune cfg g =
  Option.map
    (fun (d, moves, _) -> (d, moves))
    (search ?max_states ?prune ~want_strategy:true cfg g)

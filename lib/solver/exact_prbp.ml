module Dag = Prbp_dag.Dag
module Prbp = Prbp_pebble.Prbp
module PM = Prbp_pebble.Move.P


type stats = Game.stats = { cost : int; explored : int; pruned : int }

(* The PRBP instance of the generic engine.  Pebble states are packed
   2 bits per node:
     00 = no pebble, 01 = blue, 11 = blue + light red, 10 = dark red.
   Bit 0 of the pair = "has blue", bit 1 = "has red": both game
   predicates become single-mask tests.  A search state is the
   (pack, marked) pair, packed as 2 ints. *)
let st_none = 0
and st_blue = 1
and st_dark = 2
and st_bl = 3

module G = struct
  type inst = {
    cfg : Prbp.config;
    eager_deletes : bool;
    n : int;
    esrc : int array;
    edst : int array;
    in_mask : int array;  (* per node: mask of in-edge ids *)
    out_mask : int array;
    red_bits : int;  (* bit 2v+1 for every node v *)
    sink_mask : int;  (* node mask *)
    source_mask : int;
    full_edges : int;
    init_pack : int;
    ub : int;
  }

  type move = PM.t

  let name = "prbp"

  let dummy_move = PM.Load 0

  let width _ = 2

  let write_init inst buf =
    buf.(0) <- inst.init_pack;
    buf.(1) <- 0

  let node_state pack v = (pack lsr (2 * v)) land 3

  let set_node_state pack v s =
    pack land lnot (3 lsl (2 * v)) lor (s lsl (2 * v))

  let is_goal inst buf =
    let pack = buf.(0) and marked = buf.(1) in
    marked = inst.full_edges
    &&
    let ok = ref true in
    for v = 0 to inst.n - 1 do
      if inst.sink_mask land (1 lsl v) <> 0 && node_state pack v land 1 = 0
      then ok := false
    done;
    !ok

  (* Admissible residual bound: every sink without a blue pebble still
     costs one SAVE, and every source that is not red but still has an
     unmarked out-edge costs one LOAD (sources can only become red by
     loading).  Distinct moves on distinct nodes, so the sum lower
     bounds the cost-to-go — also under re-computation, where it only
     counts currently-unmarked edges. *)
  let residual_lb inst buf =
    let pack = buf.(0) and marked = buf.(1) in
    let lb = ref 0 in
    Bits.iter_bits
      (fun v -> if (pack lsr (2 * v)) land 1 = 0 then incr lb)
      inst.sink_mask;
    Bits.iter_bits
      (fun v ->
        if
          (pack lsr (2 * v)) land 2 = 0
          && inst.out_mask.(v) land lnot marked <> 0
        then incr lb)
      inst.source_mask;
    !lb

  let heuristic_ub inst = inst.ub

  let expand inst cur ~scratch ~emit =
    let pack = cur.(0) and marked = cur.(1) in
    let put p m (mv : move) cost01 =
      (* scratch is engine-allocated at exactly [width inst] *)
      Array.unsafe_set scratch 0 p;
      Array.unsafe_set scratch 1 m;
      emit mv cost01
    in
    (* hot loop: hoist the loop-invariant loads; the per-node/per-edge
       arrays are sized n/m at construction, every index is a node or
       edge id *)
    let r = inst.cfg.Prbp.r in
    let out_mask = inst.out_mask in
    let n_red = Bits.popcount (pack land inst.red_bits) in
    for v = 0 to inst.n - 1 do
      let s = node_state pack v in
      let fully_used = Array.unsafe_get out_mask v land lnot marked = 0 in
      (* LOAD: blue only -> blue+light; useless once all out-edges are
         marked (covers sinks: they are already blue) *)
      if s = st_blue && n_red < r && not fully_used then
        put (set_node_state pack v st_bl) marked (PM.Load v) 1;
      (* SAVE: dark -> blue+light; useful only for sinks or while some
         out-edge is still unmarked *)
      if
        s = st_dark
        && ((not fully_used) || inst.sink_mask land (1 lsl v) <> 0)
      then put (set_node_state pack v st_bl) marked (PM.Save v) 1;
      (* DELETE light red: a cached copy of a value that is also in
         slow memory only ever consumes capacity, so deleting it is
         postponed until the cache is full (a normalization that
         preserves optimality and shrinks the search space);
         fully-used copies are cleaned up eagerly for free *)
      if
        s = st_bl
        && (inst.eager_deletes || n_red = r || fully_used)
      then put (set_node_state pack v st_blue) marked (PM.Delete v) 0;
      (* DELETE dark red: only when fully used; deleting a dark sink
         loses its final value for good — a dead end we prune *)
      if
        s = st_dark
        && (not inst.cfg.Prbp.no_delete)
        && fully_used
        && inst.sink_mask land (1 lsl v) = 0
      then put (set_node_state pack v st_none) marked (PM.Delete v) 0;
      (* CLEAR (re-computation variant): drop all pebbles from an
         internal node and unmark its in-edges, allowing the value to
         be rebuilt from scratch later.  Skipped when a no-op. *)
      if
        inst.cfg.Prbp.recompute
        && inst.source_mask land (1 lsl v) = 0
        && inst.sink_mask land (1 lsl v) = 0
        && (s <> st_none || inst.in_mask.(v) land marked <> 0)
      then
        put
          (set_node_state pack v st_none)
          (marked land lnot inst.in_mask.(v))
          (PM.Clear v) 0
    done;
    (* PARTIAL COMPUTE on each unmarked edge *)
    let esrc = inst.esrc and edst = inst.edst and in_mask = inst.in_mask in
    let rest = ref (inst.full_edges land lnot marked) in
    while !rest <> 0 do
      let e = Bits.lowest_set_index !rest in
      rest := !rest land (!rest - 1);
      let u = Array.unsafe_get esrc e and v = Array.unsafe_get edst e in
      let su = node_state pack u in
      if
        su land 2 <> 0 (* u has red *)
        && Array.unsafe_get in_mask u land lnot marked = 0
        (* u fully computed *)
      then begin
        let sv = node_state pack v in
        if sv <> st_blue && (sv <> st_none || n_red < r) then
          put
            (set_node_state pack v st_dark)
            (marked lor (1 lsl e))
            (PM.Compute (u, v))
            0
      end
    done
end

module E = Engine.Make (G)

(* Branch-and-bound incumbent: the cheaper of the two heuristic
   pebblers, with its strategy.  Both play the standard one-shot game,
   legal in every variant except no-delete (re-computation only adds
   moves), so their cost bounds OPT from above there; in the no-delete
   variant (or if the heuristics cannot run, e.g. r < 2) pruning is
   disabled. *)
let heuristic_seed cfg g =
  if cfg.Prbp.no_delete then None
  else begin
    let io_count moves =
      List.fold_left
        (fun acc m ->
          match m with PM.Load _ | PM.Save _ -> acc + 1 | _ -> acc)
        0 moves
    in
    let try_one pebbler =
      match pebbler ~r:cfg.Prbp.r g with
      | moves -> Some (io_count moves, moves)
      | exception _ -> None
    in
    match
      ( try_one (fun ~r g -> Heuristic.prbp ~r g),
        try_one (fun ~r g -> Heuristic.prbp_greedy ~r g) )
    with
    | None, s | s, None -> s
    | (Some (ca, _) as a), (Some (cb, _) as b) ->
        if ca <= cb then a else b
  end

let inst ~eager_deletes ~ub cfg g =
  let n = Dag.n_nodes g and m = Dag.n_edges g in
  if n > 31 then invalid_arg "Exact_prbp: at most 31 nodes";
  if m > 62 then invalid_arg "Exact_prbp: at most 62 edges";
  let in_mask = Array.make n 0 and out_mask = Array.make n 0 in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  Dag.iter_edges
    (fun e u v ->
      esrc.(e) <- u;
      edst.(e) <- v;
      out_mask.(u) <- out_mask.(u) lor (1 lsl e);
      in_mask.(v) <- in_mask.(v) lor (1 lsl e))
    g;
  let red_bits = ref 0 and sink_mask = ref 0 and init_pack = ref 0 in
  let source_mask = ref 0 in
  for v = 0 to n - 1 do
    red_bits := !red_bits lor (1 lsl ((2 * v) + 1));
    if Dag.is_sink g v then sink_mask := !sink_mask lor (1 lsl v);
    if Dag.is_source g v then begin
      source_mask := !source_mask lor (1 lsl v);
      init_pack := !init_pack lor (st_blue lsl (2 * v))
    end
  done;
  {
    G.cfg;
    eager_deletes;
    n;
    esrc;
    edst;
    in_mask;
    out_mask;
    red_bits = !red_bits;
    sink_mask = !sink_mask;
    source_mask = !source_mask;
    full_edges = (if m = 0 then 0 else (1 lsl m) - 1);
    init_pack = !init_pack;
    ub;
  }

let solve ?budget ?telemetry ?(want_strategy = false) ?(prune = true)
    ?(eager_deletes = false) ?jobs cfg g =
  let seed = if prune then heuristic_seed cfg g else None in
  let ub = match seed with Some (c, _) -> c | None -> max_int in
  let outcome =
    E.solve ?budget ?telemetry ~want_strategy ~prune ?jobs
      (inst ~eager_deletes ~ub cfg g)
  in
  (* move lists are strictly opt-in, incumbent included *)
  match (outcome, seed) with
  | Solver.Bounded b, Some (_, moves) when want_strategy ->
      Solver.Bounded { b with Solver.incumbent_strategy = Some moves }
  | _ -> outcome

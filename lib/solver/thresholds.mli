(** Cache thresholds: how much fast memory each game needs.

    Two thresholds characterize a DAG's memory behavior:

    - the {e feasibility} threshold — the least [r] admitting any valid
      pebbling ([Δin + 1] for RBP, 2 for PRBP);
    - the {e trivial-cost} threshold [r*] — the least [r] at which the
      optimum drops to the unavoidable trivial cost (every source
      loaded once, every sink saved once), i.e. all non-trivial I/O
      disappears.

    [r*] is computed exactly (upward scan over [r], one exhaustive
    solve per probe; the optimum is non-increasing in [r]).  Comparing
    [r*_RBP] with [r*_PRBP] quantifies how much cache partial
    computations save — the Section 4 examples all fit this lens, and
    experiment E26 tabulates it next to the black pebbling number.

    The probe is generic over the engine: {!trivial_r} accepts any
    per-capacity anytime oracle returning a {!Solver.outcome} (a
    [Bounded] probe — budget exhausted — is treated as "not trivial at
    this [r]", never as a conclusive answer), and the per-game entry
    points below are thin instantiations — including the
    multiprocessor games, where [r*] is a {e per-processor} capacity
    threshold.  Each takes the same {!Solver.Budget.t} that every
    solver entry point takes; the budget applies per probe, not to the
    whole scan. *)

val least_r : lo:int -> hi:int -> (int -> bool) -> int option
(** [least_r ~lo ~hi pred] is the least [r] in [[lo, hi]] satisfying
    [pred] ([None] if there is none), scanning upward — correct
    whenever [pred] is monotone in [r], as every "optimum has dropped
    to X" predicate is. *)

val trivial_r :
  ?max_r:int ->
  lo:int ->
  solve:(r:int -> 'm Solver.outcome) ->
  Prbp_dag.Dag.t ->
  int option
(** [trivial_r ~lo ~solve g] is the least [r ≤ max_r] (default
    [n_nodes]) at which [solve ~r] returns {!Solver.Optimal} with
    [g]'s trivial cost.  [Bounded] and [Unsolvable] outcomes count as
    "not trivial here". *)

val rbp_trivial_r :
  ?budget:Solver.Budget.t -> ?max_r:int -> Prbp_dag.Dag.t -> int option
(** Least [r ≤ max_r] (default [n_nodes]) with
    [OPT_RBP(r) = trivial_cost]; [None] if even [max_r] does not
    suffice (or every probe blew its [budget]). *)

val prbp_trivial_r :
  ?budget:Solver.Budget.t -> ?max_r:int -> Prbp_dag.Dag.t -> int option

val multi_rbp_trivial_r :
  ?budget:Solver.Budget.t ->
  ?max_r:int ->
  p:int ->
  Prbp_dag.Dag.t ->
  int option
(** Least per-processor capacity [r] at which the [p]-processor RBP-MC
    optimum reaches the trivial cost.  At most {!rbp_trivial_r} (extra
    processors never hurt). *)

val multi_prbp_trivial_r :
  ?budget:Solver.Budget.t ->
  ?max_r:int ->
  p:int ->
  Prbp_dag.Dag.t ->
  int option

val rbp_feasible_r : Prbp_dag.Dag.t -> int
(** [Δin + 1] (with a minimum of 1). *)

val prbp_feasible_r : Prbp_dag.Dag.t -> int
(** 2 for any DAG with at least one edge; 1 otherwise. *)

(** The classic black pebble game and its pebbling number.

    Appendix B.2 of the paper grounds the sliding-pebble RBP variant in
    the black pebble game, where results are traditionally developed.
    This module provides that substrate: a node may be pebbled when all
    its in-neighbors carry pebbles (sources any time), pebbles may be
    removed freely, and — in the sliding variant — a pebble may move
    from an in-neighbor onto the node it enables.  Re-computation is
    allowed (the game is about {e space}, not work), and the goal is to
    have touched every sink at least once.

    The {e pebbling number} is the minimum capacity for which a
    complete strategy exists.  It measures the pure space requirement
    of the computation, with no I/O at all — a useful companion to the
    trivial-cost cache thresholds of the red-blue games (see experiment
    E26).

    Implemented as the all-zero-cost instance of the generic
    {!Engine}: every move is free, so feasibility at capacity [s] is
    exactly "the engine finds a goal state" — the third game sharing
    the one search core, after {!Exact_rbp} and {!Exact_prbp}. *)

exception Too_large of int
(** Alias (rebinding) of the engine-wide {!Game.Too_large} — matching
    either name catches the same exception. *)

type move = Place of int | Slide of int * int | Remove of int
(** The black-game move vocabulary; [solve ~want_strategy:true]
    reconstructs one complete pebbling as a move list. *)

val solve :
  ?budget:Solver.Budget.t ->
  ?telemetry:Solver.Telemetry.sink ->
  ?want_strategy:bool ->
  ?sliding:bool ->
  ?jobs:int ->
  s:int ->
  Prbp_dag.Dag.t ->
  move Solver.outcome
(** Anytime feasibility solve at capacity [s].  {!Solver.Optimal}
    (always with [cost = 0] — every black move is free) means a
    complete pebbling exists; {!Solver.Unsolvable} means none does;
    {!Solver.Bounded} means [budget] (default
    {!Solver.Budget.default}) ran out before either was settled —
    feasibility at this capacity is then genuinely open.
    Branch-and-bound is moot in an all-zero-cost game and stays off.
    [jobs] (default 1) searches on that many domains; see
    {!Engine.Make.solve}. *)

val feasible :
  ?sliding:bool -> ?max_states:int -> s:int -> Prbp_dag.Dag.t -> bool
(** Is there a complete black pebbling using at most [s] pebbles?
    Decided by exhaustive search over (pebble-set, visited-sinks)
    states; [max_states] defaults to [2_000_000].  Raises
    {!Too_large} where {!solve} would return [Bounded]. *)

val feasible_stats :
  ?sliding:bool ->
  ?max_states:int ->
  s:int ->
  Prbp_dag.Dag.t ->
  Game.stats option
[@@deprecated "use solve: its outcome carries the same stats"]
(** Like {!feasible}, with the engine's explored-state counters:
    [Some stats] (with [stats.cost = 0] — all moves are free) when
    feasible, [None] otherwise. *)

val number : ?sliding:bool -> ?max_states:int -> Prbp_dag.Dag.t -> int
(** The pebbling number: the least [s] with [feasible ~s].  At most
    [n]; at least [Δin + 1] without sliding ([Δin] with, when
    [Δin ≥ 1]). *)

(* Multicore primitives shared by the parallel engine: a reusable
   sense-style barrier and growable flat buffers.

   The parallel engine is bulk-synchronous: domains alternate between
   a private work phase and a barrier, and every cross-domain read
   targets data written at least one barrier earlier.  These
   primitives are deliberately dumb — all cleverness (ownership,
   phase-stable snapshots, deterministic integration order) lives in
   the engine where it can be argued about in one place. *)

module Barrier = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable arrived : int;
    mutable epoch : int;
  }

  let create parties =
    if parties < 1 then invalid_arg "Par.Barrier.create: parties >= 1";
    {
      m = Mutex.create ();
      c = Condition.create ();
      parties;
      arrived = 0;
      epoch = 0;
    }

  (* The epoch counter (not a flipped sense flag) distinguishes
     consecutive barrier generations: a domain woken spuriously keeps
     waiting until the epoch it entered under has passed. *)
  let await t =
    if t.parties > 1 then begin
      Mutex.lock t.m;
      let epoch = t.epoch in
      t.arrived <- t.arrived + 1;
      if t.arrived = t.parties then begin
        t.arrived <- 0;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.c
      end
      else
        while t.epoch = epoch do
          Condition.wait t.c t.m
        done;
      Mutex.unlock t.m
    end
end

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let length b = b.len

  let is_empty b = b.len = 0

  let push b x =
    let cap = Array.length b.a in
    if b.len = cap then begin
      let a = Array.make (max 64 (2 * cap)) 0 in
      Array.blit b.a 0 a 0 cap;
      b.a <- a
    end;
    Array.unsafe_set b.a b.len x;
    b.len <- b.len + 1

  let get b i = Array.unsafe_get b.a i

  let set b i x = Array.unsafe_set b.a i x

  let clear b = b.len <- 0

  let truncate b n = if n < b.len then b.len <- n

  let words b = Array.length b.a

  let swap x y =
    let a = x.a and len = x.len in
    x.a <- y.a;
    x.len <- y.len;
    y.a <- a;
    y.len <- len
end

module Vbuf = struct
  type 'a t = { dummy : 'a; mutable a : 'a array; mutable len : int }

  let create dummy = { dummy; a = [||]; len = 0 }

  let length b = b.len

  let push b x =
    let cap = Array.length b.a in
    if b.len = cap then begin
      let a = Array.make (max 64 (2 * cap)) b.dummy in
      Array.blit b.a 0 a 0 cap;
      b.a <- a
    end;
    Array.unsafe_set b.a b.len x;
    b.len <- b.len + 1

  let get b i = Array.unsafe_get b.a i

  let set b i x = Array.unsafe_set b.a i x

  (* drop the references so popped elements don't leak across rounds *)
  let clear b =
    Array.fill b.a 0 b.len b.dummy;
    b.len <- 0

  let words b = Array.length b.a
end

(** Open-addressing hash tables specialized to the packed integer
    state keys of the exact solvers: {!I2} for PRBP's
    [(pack, marked)] pairs, {!I3} for RBP's [(red, blue, comp)]
    triples.

    Keys and the stored value (the tentative 0-1 BFS distance) live in
    flat [int array]s — no boxing, no polymorphic hashing.  [add]
    returns a {e dense index}, assigned in insertion order and stable
    across growth; solvers use it as the queue token and as a handle
    into parallel parent-pointer arrays for strategy reconstruction.

    Not thread-safe; one table per search. *)

module I2 : sig
  type t

  val create : unit -> t

  val length : t -> int
  (** Number of keys inserted so far. *)

  val find : t -> int -> int -> int
  (** [find t k1 k2] is the dense index of the key, or [-1]. *)

  val add : t -> int -> int -> int -> int
  (** [add t k1 k2 v] inserts a key known to be absent and returns its
      dense index ([= length] before the call). *)

  val key1 : t -> int -> int

  val key2 : t -> int -> int
  (** Recover a key from its dense index. *)

  val value : t -> int -> int

  val set_value : t -> int -> int -> unit

  val reset : t -> unit
  (** Empty the table and release its arrays. *)
end

(** Width-generic table: each key is [width] consecutive ints,
    supplied and read back through caller-owned buffers.  This is the
    storage behind the functorized {!Engine} — instances choose their
    packing width at construction time ({!I2}/{!I3} cover the common
    static arities with the same layout). *)
module Flat : sig
  type t

  val create : width:int -> t
  (** [width >= 1] ints per key. *)

  val width : t -> int

  val length : t -> int

  val find : t -> int array -> int
  (** [find t buf] looks up the key in [buf.(0 .. width-1)]; dense
      index or [-1]. *)

  val add : t -> int array -> int -> int
  (** [add t buf v] inserts the key in [buf.(0 .. width-1)] (known to
      be absent) with value [v]; returns its dense index. *)

  val read_key : t -> int -> int array -> unit
  (** [read_key t j buf] copies key [j] into [buf.(0 .. width-1)]. *)

  val key : t -> int -> int -> int
  (** [key t j i] is component [i] of key [j]. *)

  val value : t -> int -> int

  val set_value : t -> int -> int -> unit

  val words : t -> int
  (** Heap words currently held by the table's arrays (headers aside)
      — the dominant term of a search's memory footprint, used for
      budget enforcement. *)

  val load : t -> float
  (** Probe-array load factor (kept below 3/4 by growth). *)

  val capacity : t -> int
  (** Current dense-column capacity (a power of two times the initial
      capacity). *)

  val resizes : t -> int
  (** How many geometric growth steps the dense columns have taken
      since creation — the engine's table-resize metric. *)

  val reset : t -> unit
end

module I3 : sig
  type t

  val create : unit -> t

  val length : t -> int

  val find : t -> int -> int -> int -> int

  val add : t -> int -> int -> int -> int -> int

  val key1 : t -> int -> int

  val key2 : t -> int -> int

  val key3 : t -> int -> int

  val value : t -> int -> int

  val set_value : t -> int -> int -> unit

  val reset : t -> unit
end

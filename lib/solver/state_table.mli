(** Open-addressing hash tables specialized to the packed integer
    state keys of the exact solvers: {!I2} for PRBP's
    [(pack, marked)] pairs, {!I3} for RBP's [(red, blue, comp)]
    triples.

    Keys and the stored value (the tentative 0-1 BFS distance) live in
    flat [int array]s — no boxing, no polymorphic hashing.  [add]
    returns a {e dense index}, assigned in insertion order and stable
    across growth; solvers use it as the queue token and as a handle
    into parallel parent-pointer arrays for strategy reconstruction.

    Not thread-safe; one table per search. *)

module I2 : sig
  type t

  val create : unit -> t

  val length : t -> int
  (** Number of keys inserted so far. *)

  val find : t -> int -> int -> int
  (** [find t k1 k2] is the dense index of the key, or [-1]. *)

  val add : t -> int -> int -> int -> int
  (** [add t k1 k2 v] inserts a key known to be absent and returns its
      dense index ([= length] before the call). *)

  val key1 : t -> int -> int

  val key2 : t -> int -> int
  (** Recover a key from its dense index. *)

  val value : t -> int -> int

  val set_value : t -> int -> int -> unit

  val reset : t -> unit
  (** Empty the table and release its arrays. *)
end

(** Width-generic table: each key is [width] consecutive ints,
    supplied and read back through caller-owned buffers.  This is the
    storage behind the functorized {!Engine} — instances choose their
    packing width at construction time ({!I2}/{!I3} cover the common
    static arities with the same layout). *)
module Flat : sig
  type t

  val create : ?capacity:int -> width:int -> unit -> t
  (** [width >= 1] ints per key.  [capacity] hints the initial dense
      capacity (rounded up to a power of two, floored at 64; default
      4096) — growth doubles from there, and {!resizes}/{!reset} count
      against the creation-time baseline.  Shard-of-[n] callers pass
      [default / n] so the aggregate footprint of a sharded table
      matches a single sequential one. *)

  val width : t -> int

  val length : t -> int

  val find : t -> int array -> int
  (** [find t buf] looks up the key in [buf.(0 .. width-1)]; dense
      index or [-1]. *)

  val add : t -> int array -> int -> int
  (** [add t buf v] inserts the key in [buf.(0 .. width-1)] (known to
      be absent) with value [v]; returns its dense index. *)

  val read_key : t -> int -> int array -> unit
  (** [read_key t j buf] copies key [j] into [buf.(0 .. width-1)]. *)

  val key : t -> int -> int -> int
  (** [key t j i] is component [i] of key [j]. *)

  val value : t -> int -> int

  val set_value : t -> int -> int -> unit

  val words : t -> int
  (** Heap words currently held by the table's arrays (headers aside)
      — the dominant term of a search's memory footprint, used for
      budget enforcement. *)

  val load : t -> float
  (** Probe-array load factor (kept below 3/4 by growth). *)

  val capacity : t -> int
  (** Current dense-column capacity (a power of two times the initial
      capacity). *)

  val resizes : t -> int
  (** How many geometric growth steps the dense columns have taken
      since creation — the engine's table-resize metric. *)

  val reset : t -> unit
end

(** Hash-partitioned collection of {!Flat} shards for multicore
    searches.  The owner shard of a key is a pure function of the key
    (top bits of the shared probe hash), so domains can partition work
    without communication.

    Two access disciplines:
    - {e owner-routed}: a domain touches only [shard t k] for the [k]
      it owns (what the parallel {!Engine} does — lock-free, its
      barrier protocol supplies the synchronization);
    - {e synchronized}: [find]/[add]/[find_or_add]/[value]/... take a
      per-shard mutex and are safe from any domain.  Handles pack
      (dense index, shard) into one int. *)
module Sharded : sig
  type t

  val create : ?shards:int -> width:int -> unit -> t
  (** [shards] (default 1, max 4096) is rounded up to a power of
      two. *)

  val width : t -> int

  val shards : t -> int
  (** The actual (power-of-two) shard count. *)

  val owner : t -> int array -> int
  (** Owner shard of a key — pure, no lock. *)

  val shard : t -> int -> Flat.t
  (** Direct access to one shard for owner-routed use.  Unsynchronized:
      only the owning domain may touch it between barriers. *)

  val replace_shard : t -> int -> Flat.t -> unit
  (** Swap a rebuilt shard in (spill compaction).  Owner-only, same
      discipline as {!shard}; the replacement's width must match. *)

  val length : t -> int
  (** Total keys across shards (unsynchronized sum; exact when
      quiescent). *)

  val words : t -> int
  (** Total heap words across shards. *)

  val handle : t -> shard:int -> int -> int
  (** Pack a (shard, dense index) pair into a global handle. *)

  val shard_of_handle : t -> int -> int

  val index_of_handle : t -> int -> int

  val find : t -> int array -> int
  (** Global handle of the key, or [-1].  Locks the owner shard. *)

  val add : t -> int array -> int -> int
  (** Insert a key known to be absent; global handle.  Locks. *)

  val find_or_add : t -> int array -> int -> int * bool
  (** [find_or_add t k v] is [(handle, fresh)]: lookup and insert
      happen under one lock acquisition, so racing domains agree on a
      single handle per key. *)

  val value : t -> int -> int
  (** By global handle.  Locks. *)

  val set_value : t -> int -> int -> unit

  val read_key : t -> int -> int array -> unit

  val reset : t -> unit
end

module I3 : sig
  type t

  val create : unit -> t

  val length : t -> int

  val find : t -> int -> int -> int -> int

  val add : t -> int -> int -> int -> int -> int

  val key1 : t -> int -> int

  val key2 : t -> int -> int

  val key3 : t -> int -> int

  val value : t -> int -> int

  val set_value : t -> int -> int -> unit

  val reset : t -> unit
end

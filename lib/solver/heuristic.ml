module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Topo = Prbp_dag.Topo
module RM = Prbp_pebble.Move.R
module PM = Prbp_pebble.Move.P
module Rbp = Prbp_pebble.Rbp
module Prbp = Prbp_pebble.Prbp

let infinity_pos = max_int

type policy = Belady | Lru | Fifo

(* Per-policy victim score: larger = evicted first.  [stamp] carries
   the recency (LRU) or insertion (FIFO) clock. *)
let policy_score policy ~next_use ~stamp =
  match policy with
  | Belady -> next_use
  | Lru -> -stamp
  | Fifo -> -stamp

(* Next-use oracle: node u is "used" at the topological position of
   each of its successors.  [next_use u ~time] is the first use at or
   after [time]; pointers advance monotonically, so a full pebbling
   pass costs O(m) amortized. *)
type uses = { positions : int array array; ptr : int array }

let build_uses g order =
  let n = Dag.n_nodes g in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let lists = Array.make n [] in
  Dag.iter_edges (fun _ u v -> lists.(u) <- pos.(v) :: lists.(u)) g;
  {
    positions =
      Array.map (fun l -> Array.of_list (List.sort compare l)) lists;
    ptr = Array.make n 0;
  }

let next_use uses u ~time =
  let a = uses.positions.(u) in
  let i = ref uses.ptr.(u) in
  while !i < Array.length a && a.(!i) < time do
    incr i
  done;
  uses.ptr.(u) <- !i;
  if !i < Array.length a then a.(!i) else infinity_pos

(* Pick the eviction victim among the red, unpinned nodes: farthest
   next use first; among equals, prefer one whose eviction is free.
   Every key ends in [-v], so remaining ties break deterministically
   toward the lowest node id, independent of iteration order. *)
let pick_victim ~iter_red ~pinned ~key =
  let best = ref None in
  iter_red (fun v ->
      if not (Bitset.mem pinned v) then
        let k = key v in
        match !best with
        | Some (_, bk) when compare k bk <= 0 -> ()
        | _ -> best := Some (v, k));
  match !best with
  | Some (v, _) -> v
  | None -> failwith "Heuristic: no evictable pebble (r too small?)"

let resolve_order g = function
  | None -> Topo.sort g
  | Some o ->
      if Topo.is_order g o then o
      else invalid_arg "Heuristic: ~order is not a topological order"

let rbp ?(policy = Belady) ?order ~r g =
  if r < Dag.max_in_degree g + 1 then
    invalid_arg "Heuristic.rbp: requires r >= max in-degree + 1";
  let order = resolve_order g order in
  let uses = build_uses g order in
  let stamp = Array.make (Dag.n_nodes g) 0 in
  let clock = ref 0 in
  let touch ~insert v =
    incr clock;
    if policy = Lru || (policy = Fifo && insert) then stamp.(v) <- !clock
  in
  let eng = Rbp.start (Rbp.config ~r ()) g in
  let moves = ref [] in
  let emit m =
    (match Rbp.apply eng m with
    | Ok () -> ()
    | Error e -> failwith ("Heuristic.rbp: internal: " ^ e));
    moves := m :: !moves
  in
  let red = Bitset.create (Dag.n_nodes g) in
  let time = ref 0 in
  let evict pinned =
    let key v =
      let nu = next_use uses v ~time:!time in
      (* primary score per policy; prefer free evictions (already blue
         or never used again) on ties; then lowest node id *)
      ( policy_score policy ~next_use:nu ~stamp:stamp.(v),
        (if Rbp.has_blue eng v || nu = infinity_pos then 1 else 0),
        -v )
    in
    let w = pick_victim ~iter_red:(fun f -> Bitset.iter f red) ~pinned ~key in
    if
      (not (Rbp.has_blue eng w))
      && next_use uses w ~time:!time <> infinity_pos
    then emit (RM.Save w);
    emit (RM.Delete w);
    Bitset.remove red w
  in
  let ensure_space pinned =
    while Rbp.red_count eng >= r do
      evict pinned
    done
  in
  Array.iter
    (fun v ->
      if not (Dag.is_source g v) then begin
        let pinned = Bitset.create (Dag.n_nodes g) in
        Dag.iter_pred (fun u -> Bitset.add pinned u) g v;
        Bitset.add pinned v;
        Dag.iter_pred
          (fun u ->
            if not (Bitset.mem red u) then begin
              ensure_space pinned;
              emit (RM.Load u);
              Bitset.add red u;
              touch ~insert:true u
            end
            else touch ~insert:false u)
          g v;
        ensure_space pinned;
        emit (RM.Compute v);
        Bitset.add red v;
        touch ~insert:true v;
        if Dag.is_sink g v then emit (RM.Save v)
      end;
      incr time)
    order;
  List.rev !moves

let prbp ?(policy = Belady) ?order ?(defer_saves = false) ~r g =
  if r < 2 then invalid_arg "Heuristic.prbp: requires r >= 2";
  let order = resolve_order g order in
  let uses = build_uses g order in
  let stamp = Array.make (Dag.n_nodes g) 0 in
  let clock = ref 0 in
  let touch ~insert v =
    incr clock;
    if policy = Lru || (policy = Fifo && insert) then stamp.(v) <- !clock
  in
  let eng = Prbp.start (Prbp.config ~r ()) g in
  let moves = ref [] in
  let emit m =
    (match Prbp.apply eng m with
    | Ok () -> ()
    | Error e -> failwith ("Heuristic.prbp: internal: " ^ e));
    moves := m :: !moves
  in
  let red = Bitset.create (Dag.n_nodes g) in
  let time = ref 0 in
  let evict pinned =
    let key v =
      let nu = next_use uses v ~time:!time in
      let free =
        match Prbp.pebble eng v with
        | Prbp.Pebble.Blue_light -> true
        | Prbp.Pebble.Dark -> nu = infinity_pos
        | Prbp.Pebble.Blue | Prbp.Pebble.None_ -> true
      in
      let free_flag = if free then 1 else 0 in
      let score = policy_score policy ~next_use:nu ~stamp:stamp.(v) in
      (* [defer_saves] flips the priority: evict whatever is free to
         evict before paying a save for a partially-aggregated dark
         value, even at a nearer next use — the save-vs-keep-partial
         axis the upper-bound portfolio explores.  Ties end at the
         lowest node id either way. *)
      if defer_saves then (free_flag, score, -v) else (score, free_flag, -v)
    in
    let w = pick_victim ~iter_red:(fun f -> Bitset.iter f red) ~pinned ~key in
    (* a dark value not yet fully consumed must be saved before the
       light red can be deleted; a fully-consumed one goes for free *)
    (match Prbp.pebble eng w with
    | Prbp.Pebble.Dark ->
        let fully_used =
          Dag.fold_succ
            (fun s acc ->
              acc
              && Prbp.is_marked eng (Dag.edge_id g w s))
            g w true
        in
        if not fully_used then emit (PM.Save w)
    | Prbp.Pebble.Blue_light | Prbp.Pebble.Blue | Prbp.Pebble.None_ -> ());
    emit (PM.Delete w);
    Bitset.remove red w
  in
  let ensure_space pinned =
    while Prbp.red_count eng >= r do
      evict pinned
    done
  in
  Array.iter
    (fun v ->
      if not (Dag.is_source g v) then begin
        let first = ref true in
        Dag.iter_pred
          (fun u ->
            let pinned = Bitset.create (Dag.n_nodes g) in
            Bitset.add pinned u;
            Bitset.add pinned v;
            if not (Bitset.mem red u) then begin
              ensure_space pinned;
              emit (PM.Load u);
              Bitset.add red u;
              touch ~insert:true u
            end
            else touch ~insert:false u;
            if !first then begin
              (* v's dark pebble occupies a fresh slot *)
              ensure_space pinned;
              first := false
            end;
            emit (PM.Compute (u, v));
            if not (Bitset.mem red v) then touch ~insert:true v
            else touch ~insert:false v;
            Bitset.add red v)
          g v;
        if Dag.is_sink g v then emit (PM.Save v)
      end;
      incr time)
    order;
  List.rev !moves

let rbp_cost ?policy ~r g =
  match Rbp.check (Rbp.config ~r ()) g (rbp ?policy ~r g) with
  | Ok c -> c
  | Error e -> failwith ("Heuristic.rbp_cost: " ^ e)

let prbp_cost ?policy ~r g =
  match Prbp.check (Prbp.config ~r ()) g (prbp ?policy ~r g) with
  | Ok c -> c
  | Error e -> failwith ("Heuristic.prbp_cost: " ^ e)

(* ------------------------------------------------------------------ *)
(* Greedy edge scheduler: exploits the partial-computation freedom by
   always marking the cheapest currently-markable edge.               *)

let prbp_greedy ~r g =
  if r < 2 then invalid_arg "Heuristic.prbp_greedy: requires r >= 2";
  let n = Dag.n_nodes g and m = Dag.n_edges g in
  let eng = Prbp.start (Prbp.config ~r ()) g in
  let moves = ref [] in
  let emit mv =
    (match Prbp.apply eng mv with
    | Ok () -> ()
    | Error e -> failwith ("Heuristic.prbp_greedy: internal: " ^ e));
    moves := mv :: !moves
  in
  let un_out = Array.init n (Dag.out_degree g) in
  (* remaining interactions of a value: unmarked out-edges, plus
     unmarked in-edges for values still being accumulated *)
  let remaining v = un_out.(v) + Prbp.unmarked_in eng v in
  let is_red v = Prbp.Pebble.is_red (Prbp.pebble eng v) in
  let evict ~pinned =
    let best = ref None in
    for v = 0 to n - 1 do
      if is_red v && not (List.mem v pinned) then begin
        let free =
          match Prbp.pebble eng v with
          | Prbp.Pebble.Blue_light -> true
          | Prbp.Pebble.Dark -> remaining v = 0
          | Prbp.Pebble.Blue | Prbp.Pebble.None_ -> true
        in
        (* evict free, no-longer-needed values first; then the value
           with the fewest... largest remaining counts are the ones to
           keep resident, so evict the smallest-remaining loser among
           costly ones, preferring free among equals *)
        (* free, never-needed-again values go first; then free cached
           copies; costly (dark) values last; among equals evict the
           value with the fewest remaining interactions *)
        let key =
          ( (if free && remaining v = 0 then 2 else if free then 1 else 0),
            -(remaining v),
            -v )
        in
        match !best with
        | Some (_, bk) when compare key bk <= 0 -> ()
        | _ -> best := Some (v, key)
      end
    done;
    match !best with
    | None -> failwith "Heuristic.prbp_greedy: nothing evictable"
    | Some (v, _) ->
        (match Prbp.pebble eng v with
        | Prbp.Pebble.Dark when remaining v > 0 -> emit (PM.Save v)
        | _ -> ());
        emit (PM.Delete v)
  in
  let ensure_space ~pinned =
    while Prbp.red_count eng >= r do
      evict ~pinned
    done
  in
  let make_red ~pinned v =
    match Prbp.pebble eng v with
    | Prbp.Pebble.Blue ->
        ensure_space ~pinned;
        emit (PM.Load v)
    | Prbp.Pebble.Blue_light | Prbp.Pebble.Dark -> ()
    | Prbp.Pebble.None_ -> failwith "Heuristic.prbp_greedy: value lost"
  in
  let marked_total = ref 0 in
  while !marked_total < m do
    (* choose the cheapest markable edge *)
    let best = ref None in
    Dag.iter_edges
      (fun e u v ->
        if (not (Prbp.is_marked eng e)) && Prbp.fully_computed eng u then begin
          let cost_u = if is_red u then 0 else 1 in
          let cost_v =
            match Prbp.pebble eng v with
            | Prbp.Pebble.Blue -> 1
            | _ -> 0
          in
          (* prefer cheap edges; among those, consume into already-red
             targets before opening a fresh cache slot (so completed
             values cascade out before new partials pile up); then
             targets closest to completion *)
          let slot =
            match Prbp.pebble eng v with Prbp.Pebble.None_ -> 1 | _ -> 0
          in
          let key = (cost_u + cost_v, slot, Prbp.unmarked_in eng v, v) in
          match !best with
          | Some (_, _, _, bk) when compare bk key <= 0 -> ()
          | _ -> best := Some (e, u, v, key)
        end)
      g;
    match !best with
    | None -> failwith "Heuristic.prbp_greedy: no markable edge"
    | Some (_e, u, v, _) ->
        make_red ~pinned:[ u; v ] u;
        (match Prbp.pebble eng v with
        | Prbp.Pebble.Blue ->
            ensure_space ~pinned:[ u; v ];
            emit (PM.Load v)
        | Prbp.Pebble.None_ -> ensure_space ~pinned:[ u; v ]
        | Prbp.Pebble.Blue_light | Prbp.Pebble.Dark -> ());
        emit (PM.Compute (u, v));
        incr marked_total;
        un_out.(u) <- un_out.(u) - 1;
        (* save completed sinks immediately; free fully-used values *)
        if Prbp.unmarked_in eng v = 0 && Dag.is_sink g v then begin
          emit (PM.Save v);
          emit (PM.Delete v)
        end;
        if remaining u = 0 && is_red u then emit (PM.Delete u)
  done;
  List.rev !moves

let prbp_greedy_cost ~r g =
  match Prbp.check (Prbp.config ~r ()) g (prbp_greedy ~r g) with
  | Ok c -> c
  | Error e -> failwith ("Heuristic.prbp_greedy_cost: " ^ e)

let prbp_best ~r g =
  let a = prbp ~r g and b = prbp_greedy ~r g in
  let cost mv =
    match Prbp.check (Prbp.config ~r ()) g mv with
    | Ok c -> c
    | Error e -> failwith ("Heuristic.prbp_best: " ^ e)
  in
  if cost a <= cost b then a else b

let prbp_best_cost ~r g =
  match Prbp.check (Prbp.config ~r ()) g (prbp_best ~r g) with
  | Ok c -> c
  | Error e -> failwith ("Heuristic.prbp_best_cost: " ^ e)

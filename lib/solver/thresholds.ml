module Dag = Prbp_dag.Dag

(* Linear scan upward for the least r in [lo, hi] where [pred r]
   holds.  The optimum is non-increasing in the capacity, so the first
   hit is the threshold.  Scanning upward (rather than binary search)
   keeps every probe in the small-r regime, where the exact solvers'
   state spaces are smallest — probing a large r first could blow the
   search budget even though the answer is small. *)
let least_r ~lo ~hi pred =
  let rec go r =
    if r > hi then None else if pred r then Some r else go (r + 1)
  in
  go lo

(* Generic trivial-cost threshold probe: any engine instance is a
   suitable [opt] (all four games share the one {!Game.Too_large}, so
   a blown search budget is caught uniformly and treated as "not yet
   trivial at this r"). *)
let trivial_r ?max_r ~lo ~opt g =
  let trivial = Dag.trivial_cost g in
  let max_r = Option.value max_r ~default:(max 1 (Dag.n_nodes g)) in
  least_r ~lo ~hi:max_r (fun r ->
      match opt ~r with
      | Some c -> c = trivial
      | None -> false
      | exception Game.Too_large _ -> false)

let rbp_feasible_r g = max 1 (Dag.max_in_degree g + 1)

let prbp_feasible_r g = if Dag.n_edges g = 0 then 1 else 2

let rbp_trivial_r ?max_states ?max_r g =
  trivial_r ?max_r ~lo:(rbp_feasible_r g)
    ~opt:(fun ~r ->
      Exact_rbp.opt_opt ?max_states (Prbp_pebble.Rbp.config ~r ()) g)
    g

let prbp_trivial_r ?max_states ?max_r g =
  trivial_r ?max_r ~lo:(prbp_feasible_r g)
    ~opt:(fun ~r ->
      Exact_prbp.opt_opt ?max_states (Prbp_pebble.Prbp.config ~r ()) g)
    g

let multi_rbp_trivial_r ?max_states ?max_r ~p g =
  trivial_r ?max_r ~lo:(rbp_feasible_r g)
    ~opt:(fun ~r ->
      Exact_multi.rbp_opt_opt ?max_states
        (Prbp_pebble.Multi.config ~p ~r ())
        g)
    g

let multi_prbp_trivial_r ?max_states ?max_r ~p g =
  trivial_r ?max_r ~lo:(prbp_feasible_r g)
    ~opt:(fun ~r ->
      Exact_multi.prbp_opt_opt ?max_states
        (Prbp_pebble.Multi.config ~p ~r ())
        g)
    g

module Dag = Prbp_dag.Dag

(* Linear scan upward for the least r in [lo, hi] where [pred r]
   holds.  The optimum is non-increasing in the capacity, so the first
   hit is the threshold.  Scanning upward (rather than binary search)
   keeps every probe in the small-r regime, where the exact solvers'
   state spaces are smallest — probing a large r first could blow the
   search budget even though the answer is small. *)
let least_r ~lo ~hi pred =
  let rec go r =
    if r > hi then None else if pred r then Some r else go (r + 1)
  in
  go lo

(* Generic trivial-cost threshold probe over any game's anytime solve.
   A [Bounded] outcome (budget ran out) and an [Unsolvable] one both
   count as "not yet trivial at this r" — except that a certified
   [lower > trivial] would also be conclusive, it just cannot happen:
   lower >= trivial holds at every r, so a Bounded probe is always
   inconclusive and we move on. *)
let trivial_r ?max_r ~lo ~solve g =
  let trivial = Dag.trivial_cost g in
  let max_r = Option.value max_r ~default:(max 1 (Dag.n_nodes g)) in
  least_r ~lo ~hi:max_r (fun r ->
      match solve ~r with
      | Solver.Optimal o -> o.Solver.cost = trivial
      | Solver.Bounded _ | Solver.Unsolvable _ -> false)

let rbp_feasible_r g = max 1 (Dag.max_in_degree g + 1)

let prbp_feasible_r g = if Dag.n_edges g = 0 then 1 else 2

let rbp_trivial_r ?budget ?max_r g =
  trivial_r ?max_r ~lo:(rbp_feasible_r g)
    ~solve:(fun ~r ->
      Exact_rbp.solve ?budget (Prbp_pebble.Rbp.config ~r ()) g)
    g

let prbp_trivial_r ?budget ?max_r g =
  trivial_r ?max_r ~lo:(prbp_feasible_r g)
    ~solve:(fun ~r ->
      Exact_prbp.solve ?budget (Prbp_pebble.Prbp.config ~r ()) g)
    g

let multi_rbp_trivial_r ?budget ?max_r ~p g =
  trivial_r ?max_r ~lo:(rbp_feasible_r g)
    ~solve:(fun ~r ->
      Exact_multi.rbp_solve ?budget (Prbp_pebble.Multi.config ~p ~r ()) g)
    g

let multi_prbp_trivial_r ?budget ?max_r ~p g =
  trivial_r ?max_r ~lo:(prbp_feasible_r g)
    ~solve:(fun ~r ->
      Exact_multi.prbp_solve ?budget (Prbp_pebble.Multi.config ~p ~r ()) g)
    g

(** File-backed settled-state store — the engine's spill tier.

    Holds states the search has settled {e and expanded}: their
    distances are final and their successors are already in the live
    table, so they serve only as dedup memory.  When a solve outgrows
    {!Solver.Budget.max_words}, the engine evicts them here (one
    buffered fixed-size record each) and keeps searching with only the
    frontier in RAM; re-reaching a spilled state costs re-exploration,
    never correctness.  The file is deleted on {!close}.

    One store belongs to one domain; nothing here is synchronized. *)

type t

val create : ?dir:string -> width:int -> unit -> t
(** Fresh store of [width]-int packed states backed by a temp file
    ([dir] defaults to the system temp directory). *)

val width : t -> int

val path : t -> string
(** The backing file (useful in post-mortems; gone after {!close}). *)

val count : t -> int
(** Records appended so far. *)

val words : t -> int
(** On-disk footprint in words: [(width + 1) * count] — what the
    engine charges against {!Solver.Budget.spill_words}. *)

val append : t -> int array -> int -> unit
(** [append t key dist] writes one settled state.  Buffered; [key]
    must have exactly [width t] ints and is not retained. *)

val iter : t -> (int array -> int -> unit) -> unit
(** Replay every record in append order (flushes first).  The key
    array is reused between calls — copy it to keep it.  For tests and
    analysis, not the search path. *)

val close : t -> unit
(** Flush, close and delete the backing file.  Idempotent; the store
    rejects further [append]/[iter]. *)

(* Open-addressing hash tables specialized to the packed integer state
   keys of the exact solvers.

   Layout: a [slots] probe array (linear probing, power-of-two size)
   maps hashes to dense indices; the keys and the stored value live in
   flat [int array] columns indexed densely in insertion order.  No
   key is ever boxed, no polymorphic hashing or comparison runs, and
   the dense index returned by [add] is stable for the lifetime of the
   table — callers use it as a handle into their own parallel arrays
   (parent pointers, move tags) and as a compact queue token.

   [slots] stores [dense index + 1]; 0 means empty.  Load factor is
   kept below 3/4. *)

let initial_slots = 1 lsl 13

let initial_cap = 1 lsl 12

(* Two rounds of a splitmix-style finalizer; constants fit OCaml's
   63-bit ints (multiplication wraps, which is fine for mixing). *)
let mix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x1f58d5e3bf119d25 in
  let h = h lxor (h lsr 27) in
  let h = h * 0x2545f4914f6cdd1d in
  h lxor (h lsr 31)

(* Width-dispatched key hash shared by {!Flat} (probe placement) and
   {!Sharded} (owner-shard routing).  The dominant w <= 3 cases keep
   the exact mixing of [I2]/[I3] with no loop. *)
let[@inline] hash_width width (k : int array) =
  match width with
  | 1 -> mix (Array.unsafe_get k 0)
  | 2 ->
      mix
        (Array.unsafe_get k 0 lxor (Array.unsafe_get k 1 * 0x9e3779b97f4a7c1))
  | 3 ->
      mix
        (Array.unsafe_get k 0
        lxor (Array.unsafe_get k 1 * 0x9e3779b97f4a7c1)
        lxor (Array.unsafe_get k 2 * 0x3c79ac492ba7b65))
  | w ->
      let h = ref (Array.unsafe_get k 0) in
      for i = 1 to w - 1 do
        h := mix (!h lxor Array.unsafe_get k i)
      done;
      mix !h

module I2 = struct
  type t = {
    mutable slots : int array;
    mutable k1 : int array;
    mutable k2 : int array;
    mutable v : int array;
    mutable n : int;
  }

  let create () =
    {
      slots = Array.make initial_slots 0;
      k1 = Array.make initial_cap 0;
      k2 = Array.make initial_cap 0;
      v = Array.make initial_cap 0;
      n = 0;
    }

  let length t = t.n

  let hash a b = mix (a lxor (b * 0x9e3779b97f4a7c1))

  let find t a b =
    let mask = Array.length t.slots - 1 in
    let i = ref (hash a b land mask) in
    let res = ref (-2) in
    while !res = -2 do
      let s = Array.unsafe_get t.slots !i in
      if s = 0 then res := -1
      else begin
        let j = s - 1 in
        if Array.unsafe_get t.k1 j = a && Array.unsafe_get t.k2 j = b then
          res := j
        else i := (!i + 1) land mask
      end
    done;
    !res

  (* Place dense index [j] into the probe array (which must have a
     free slot for it). *)
  let place slots j a b =
    let mask = Array.length slots - 1 in
    let i = ref (hash a b land mask) in
    while Array.unsafe_get slots !i <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- j + 1

  let grow_dense a =
    let b = Array.make (2 * Array.length a) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b

  let add t a b value =
    if 4 * (t.n + 1) > 3 * Array.length t.slots then begin
      let slots = Array.make (2 * Array.length t.slots) 0 in
      for j = 0 to t.n - 1 do
        place slots j t.k1.(j) t.k2.(j)
      done;
      t.slots <- slots
    end;
    if t.n = Array.length t.k1 then begin
      t.k1 <- grow_dense t.k1;
      t.k2 <- grow_dense t.k2;
      t.v <- grow_dense t.v
    end;
    let j = t.n in
    t.k1.(j) <- a;
    t.k2.(j) <- b;
    t.v.(j) <- value;
    place t.slots j a b;
    t.n <- j + 1;
    j

  let key1 t j = t.k1.(j)

  let key2 t j = t.k2.(j)

  let value t j = Array.unsafe_get t.v j

  let set_value t j x = Array.unsafe_set t.v j x

  let reset t =
    t.slots <- Array.make initial_slots 0;
    t.k1 <- Array.make initial_cap 0;
    t.k2 <- Array.make initial_cap 0;
    t.v <- Array.make initial_cap 0;
    t.n <- 0
end

(* Width-generic variant: keys are [width] consecutive ints in one
   flat column array.  This is what the functorized {!Engine} uses —
   the per-game packing width is only known at instance-construction
   time (RBP packs 3 ints, PRBP 2, the multiprocessor games p + 2 /
   2p + 2).  The fixed-width [I2]/[I3] modules remain for callers that
   know their arity statically.

   The hash dispatches on the (per-table constant) width, so the
   dominant w <= 3 cases keep the exact mixing of [I2]/[I3] with no
   loop. *)
module Flat = struct
  type t = {
    width : int;
    base_cap : int;  (* creation-time dense capacity; growth baseline *)
    mutable slots : int array;
    mutable keys : int array;  (* width * capacity, row-major *)
    mutable v : int array;
    mutable n : int;
  }

  (* smallest power of two >= max(64, hint) — tiny tables would churn
     through resizes; shard-of-32 callers pass initial_cap / 32 = 128 *)
  let round_cap hint =
    let c = ref 64 in
    while !c < hint do
      c := 2 * !c
    done;
    !c

  let create ?capacity ~width () =
    if width < 1 then invalid_arg "State_table.Flat.create: width >= 1";
    let base_cap =
      match capacity with None -> initial_cap | Some c -> round_cap c
    in
    {
      width;
      base_cap;
      slots = Array.make (2 * base_cap) 0;
      keys = Array.make (width * base_cap) 0;
      v = Array.make base_cap 0;
      n = 0;
    }

  let width t = t.width

  let length t = t.n

  let[@inline] hash_key t (k : int array) = hash_width t.width k

  let[@inline] key_eq t j (k : int array) =
    let w = t.width in
    let base = j * w in
    let i = ref 0 in
    while
      !i < w
      && Array.unsafe_get t.keys (base + !i) = Array.unsafe_get k !i
    do
      incr i
    done;
    !i = w

  (* [find] keeps the key words in registers for the dominant widths:
     it is called once per *emitted* successor (several per explored
     state), so re-reading the caller's buffer inside the probe loop
     is measurable.  The scalar bodies are exactly [I2.find] /
     [I3.find] over the row-major key column. *)
  let find_2 t a b =
    let keys = t.keys in
    let mask = Array.length t.slots - 1 in
    let i = ref (mix (a lxor (b * 0x9e3779b97f4a7c1)) land mask) in
    let res = ref (-2) in
    while !res = -2 do
      let s = Array.unsafe_get t.slots !i in
      if s = 0 then res := -1
      else begin
        let base = (s - 1) * 2 in
        if
          Array.unsafe_get keys base = a
          && Array.unsafe_get keys (base + 1) = b
        then res := s - 1
        else i := (!i + 1) land mask
      end
    done;
    !res

  let find_3 t a b c =
    let keys = t.keys in
    let mask = Array.length t.slots - 1 in
    let i =
      ref
        (mix (a lxor (b * 0x9e3779b97f4a7c1) lxor (c * 0x3c79ac492ba7b65))
        land mask)
    in
    let res = ref (-2) in
    while !res = -2 do
      let s = Array.unsafe_get t.slots !i in
      if s = 0 then res := -1
      else begin
        let base = (s - 1) * 3 in
        if
          Array.unsafe_get keys base = a
          && Array.unsafe_get keys (base + 1) = b
          && Array.unsafe_get keys (base + 2) = c
        then res := s - 1
        else i := (!i + 1) land mask
      end
    done;
    !res

  let find t k =
    match t.width with
    | 2 -> find_2 t (Array.unsafe_get k 0) (Array.unsafe_get k 1)
    | 3 ->
        find_3 t (Array.unsafe_get k 0) (Array.unsafe_get k 1)
          (Array.unsafe_get k 2)
    | _ ->
        let mask = Array.length t.slots - 1 in
        let i = ref (hash_key t k land mask) in
        let res = ref (-2) in
        while !res = -2 do
          let s = Array.unsafe_get t.slots !i in
          if s = 0 then res := -1
          else if key_eq t (s - 1) k then res := s - 1
          else i := (!i + 1) land mask
        done;
        !res

  let place t slots j =
    let mask = Array.length slots - 1 in
    let base = j * t.width in
    let h =
      (* hash straight out of the key column *)
      match t.width with
      | 1 -> mix t.keys.(base)
      | 2 -> mix (t.keys.(base) lxor (t.keys.(base + 1) * 0x9e3779b97f4a7c1))
      | 3 ->
          mix
            (t.keys.(base)
            lxor (t.keys.(base + 1) * 0x9e3779b97f4a7c1)
            lxor (t.keys.(base + 2) * 0x3c79ac492ba7b65))
      | w ->
          let h = ref t.keys.(base) in
          for i = 1 to w - 1 do
            h := mix (!h lxor t.keys.(base + i))
          done;
          mix !h
    in
    let i = ref (h land mask) in
    while Array.unsafe_get slots !i <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- j + 1

  let add t k value =
    if 4 * (t.n + 1) > 3 * Array.length t.slots then begin
      let slots = Array.make (2 * Array.length t.slots) 0 in
      for j = 0 to t.n - 1 do
        place t slots j
      done;
      t.slots <- slots
    end;
    if t.n * t.width = Array.length t.keys then begin
      let keys = Array.make (2 * Array.length t.keys) 0 in
      Array.blit t.keys 0 keys 0 (Array.length t.keys);
      t.keys <- keys;
      let v = Array.make (2 * Array.length t.v) 0 in
      Array.blit t.v 0 v 0 (Array.length t.v);
      t.v <- v
    end;
    let j = t.n in
    (* scalar stores for the dominant widths: [Array.blit] is a C call
       and [add] runs once per unique state *)
    (match t.width with
    | 2 ->
        let base = j * 2 in
        t.keys.(base) <- Array.unsafe_get k 0;
        t.keys.(base + 1) <- Array.unsafe_get k 1
    | 3 ->
        let base = j * 3 in
        t.keys.(base) <- Array.unsafe_get k 0;
        t.keys.(base + 1) <- Array.unsafe_get k 1;
        t.keys.(base + 2) <- Array.unsafe_get k 2
    | w -> Array.blit k 0 t.keys (j * w) w);
    t.v.(j) <- value;
    place t t.slots j;
    t.n <- j + 1;
    j

  let read_key t j (buf : int array) =
    match t.width with
    | 2 ->
        let base = j * 2 in
        buf.(0) <- Array.unsafe_get t.keys base;
        buf.(1) <- Array.unsafe_get t.keys (base + 1)
    | 3 ->
        let base = j * 3 in
        buf.(0) <- Array.unsafe_get t.keys base;
        buf.(1) <- Array.unsafe_get t.keys (base + 1);
        buf.(2) <- Array.unsafe_get t.keys (base + 2)
    | w -> Array.blit t.keys (j * w) buf 0 w

  let key t j i = t.keys.((j * t.width) + i)

  let value t j = Array.unsafe_get t.v j

  let set_value t j x = Array.unsafe_set t.v j x

  let words t =
    Array.length t.slots + Array.length t.keys + Array.length t.v

  let load t =
    float_of_int t.n /. float_of_int (Array.length t.slots)

  let capacity t = Array.length t.v

  (* dense columns double from the creation-time capacity, so the
     growth count is the exponent gap — what the table-resize metric
     reports *)
  let resizes t =
    let r = ref 0 and c = ref t.base_cap in
    while !c < Array.length t.v do
      incr r;
      c := 2 * !c
    done;
    !r

  let reset t =
    t.slots <- Array.make (2 * t.base_cap) 0;
    t.keys <- Array.make (t.width * t.base_cap) 0;
    t.v <- Array.make t.base_cap 0;
    t.n <- 0
end

(* Hash-partitioned collection of {!Flat} tables for multicore
   searches.

   Ownership model: the owner shard of a key is a pure function of the
   key ({!Sharded.owner}), taken from the *top* bits of the same
   splitmix hash whose low bits drive the probe sequence inside a
   shard — partitioning by low bits would leave every shard probing a
   sublattice of its slot array and lengthen linear-probe runs.

   Two access disciplines coexist:
   - {e owner-routed} (the parallel engine): each domain touches only
     [shard t k] for its own [k], with cross-domain hand-off through
     message buffers and barriers.  No locks on the hot path.
   - {e synchronized} ([find]/[add]/[find_or_add]/[value]/...): any
     domain, any key, one mutex per shard.  This is the general-purpose
     concurrent-map surface (and what the contention stress test
     hammers); handles pack (dense index, shard) into one int. *)
module Sharded = struct
  type t = {
    width : int;
    bits : int;  (* log2 of the shard count *)
    tables : Flat.t array;
    locks : Mutex.t array;
  }

  let max_bits = 12

  let create ?(shards = 1) ~width () =
    if width < 1 then invalid_arg "State_table.Sharded.create: width >= 1";
    if shards < 1 || shards > 1 lsl max_bits then
      invalid_arg "State_table.Sharded.create: 1 <= shards <= 4096";
    (* round up to a power of two so owner routing is a mask *)
    let bits = ref 0 in
    while 1 lsl !bits < shards do
      incr bits
    done;
    let n = 1 lsl !bits in
    (* aggregate baseline ~= one sequential table: each shard starts at
       1/n of the default capacity (floored at Flat's 64 minimum) *)
    let capacity = max 64 (initial_cap / n) in
    {
      width;
      bits = !bits;
      tables = Array.init n (fun _ -> Flat.create ~capacity ~width ());
      locks = Array.init n (fun _ -> Mutex.create ());
    }

  let width t = t.width

  let shards t = Array.length t.tables

  let[@inline] owner t (k : int array) =
    (hash_width t.width k lsr (62 - max_bits)) land (Array.length t.tables - 1)

  let shard t i = t.tables.(i)

  (* spill compaction: the owner rebuilds a shard around its surviving
     frontier and swaps the new table in.  Owner-only, between
     barriers, like [shard]. *)
  let replace_shard t i f =
    if Flat.width f <> t.width then
      invalid_arg "State_table.Sharded.replace_shard: width mismatch";
    t.tables.(i) <- f

  let length t = Array.fold_left (fun acc f -> acc + Flat.length f) 0 t.tables

  let words t =
    (* the mutexes and the spine are noise next to the key columns *)
    Array.fold_left (fun acc f -> acc + Flat.words f) 0 t.tables

  (* -- packed handles: (dense index lsl bits) lor shard ------------- *)

  let[@inline] handle t ~shard idx = (idx lsl t.bits) lor shard

  let[@inline] shard_of_handle t h = h land (Array.length t.tables - 1)

  let[@inline] index_of_handle t h = h lsr t.bits

  (* -- synchronized surface ----------------------------------------- *)

  let[@inline] with_shard t s f =
    let l = t.locks.(s) in
    Mutex.lock l;
    match f t.tables.(s) with
    | v ->
        Mutex.unlock l;
        v
    | exception e ->
        Mutex.unlock l;
        raise e

  let find t k =
    let s = owner t k in
    with_shard t s (fun f ->
        let j = Flat.find f k in
        if j < 0 then -1 else handle t ~shard:s j)

  let add t k value =
    let s = owner t k in
    with_shard t s (fun f -> handle t ~shard:s (Flat.add f k value))

  (* Atomic find-or-insert: the lookup and the insert happen under the
     same shard lock, so two domains racing on a fresh key agree on
     one dense index. *)
  let find_or_add t k value =
    let s = owner t k in
    with_shard t s (fun f ->
        let j = Flat.find f k in
        if j >= 0 then (handle t ~shard:s j, false)
        else (handle t ~shard:s (Flat.add f k value), true))

  let value t h =
    let s = shard_of_handle t h in
    with_shard t s (fun f -> Flat.value f (index_of_handle t h))

  let set_value t h x =
    let s = shard_of_handle t h in
    with_shard t s (fun f -> Flat.set_value f (index_of_handle t h) x)

  let read_key t h buf =
    let s = shard_of_handle t h in
    with_shard t s (fun f -> Flat.read_key f (index_of_handle t h) buf)

  let reset t = Array.iter Flat.reset t.tables
end

module I3 = struct
  type t = {
    mutable slots : int array;
    mutable k1 : int array;
    mutable k2 : int array;
    mutable k3 : int array;
    mutable v : int array;
    mutable n : int;
  }

  let create () =
    {
      slots = Array.make initial_slots 0;
      k1 = Array.make initial_cap 0;
      k2 = Array.make initial_cap 0;
      k3 = Array.make initial_cap 0;
      v = Array.make initial_cap 0;
      n = 0;
    }

  let length t = t.n

  let hash a b c =
    mix (a lxor (b * 0x9e3779b97f4a7c1) lxor (c * 0x3c79ac492ba7b65))

  let find t a b c =
    let mask = Array.length t.slots - 1 in
    let i = ref (hash a b c land mask) in
    let res = ref (-2) in
    while !res = -2 do
      let s = Array.unsafe_get t.slots !i in
      if s = 0 then res := -1
      else begin
        let j = s - 1 in
        if
          Array.unsafe_get t.k1 j = a
          && Array.unsafe_get t.k2 j = b
          && Array.unsafe_get t.k3 j = c
        then res := j
        else i := (!i + 1) land mask
      end
    done;
    !res

  let place slots j a b c =
    let mask = Array.length slots - 1 in
    let i = ref (hash a b c land mask) in
    while Array.unsafe_get slots !i <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- j + 1

  let grow_dense a =
    let b = Array.make (2 * Array.length a) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b

  let add t a b c value =
    if 4 * (t.n + 1) > 3 * Array.length t.slots then begin
      let slots = Array.make (2 * Array.length t.slots) 0 in
      for j = 0 to t.n - 1 do
        place slots j t.k1.(j) t.k2.(j) t.k3.(j)
      done;
      t.slots <- slots
    end;
    if t.n = Array.length t.k1 then begin
      t.k1 <- grow_dense t.k1;
      t.k2 <- grow_dense t.k2;
      t.k3 <- grow_dense t.k3;
      t.v <- grow_dense t.v
    end;
    let j = t.n in
    t.k1.(j) <- a;
    t.k2.(j) <- b;
    t.k3.(j) <- c;
    t.v.(j) <- value;
    place t.slots j a b c;
    t.n <- j + 1;
    j

  let key1 t j = t.k1.(j)

  let key2 t j = t.k2.(j)

  let key3 t j = t.k3.(j)

  let value t j = Array.unsafe_get t.v j

  let set_value t j x = Array.unsafe_set t.v j x

  let reset t =
    t.slots <- Array.make initial_slots 0;
    t.k1 <- Array.make initial_cap 0;
    t.k2 <- Array.make initial_cap 0;
    t.k3 <- Array.make initial_cap 0;
    t.v <- Array.make initial_cap 0;
    t.n <- 0
end

(* Open-addressing hash tables specialized to the packed integer state
   keys of the exact solvers.

   Layout: a [slots] probe array (linear probing, power-of-two size)
   maps hashes to dense indices; the keys and the stored value live in
   flat [int array] columns indexed densely in insertion order.  No
   key is ever boxed, no polymorphic hashing or comparison runs, and
   the dense index returned by [add] is stable for the lifetime of the
   table — callers use it as a handle into their own parallel arrays
   (parent pointers, move tags) and as a compact queue token.

   [slots] stores [dense index + 1]; 0 means empty.  Load factor is
   kept below 3/4. *)

let initial_slots = 1 lsl 13

let initial_cap = 1 lsl 12

(* Two rounds of a splitmix-style finalizer; constants fit OCaml's
   63-bit ints (multiplication wraps, which is fine for mixing). *)
let mix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x1f58d5e3bf119d25 in
  let h = h lxor (h lsr 27) in
  let h = h * 0x2545f4914f6cdd1d in
  h lxor (h lsr 31)

module I2 = struct
  type t = {
    mutable slots : int array;
    mutable k1 : int array;
    mutable k2 : int array;
    mutable v : int array;
    mutable n : int;
  }

  let create () =
    {
      slots = Array.make initial_slots 0;
      k1 = Array.make initial_cap 0;
      k2 = Array.make initial_cap 0;
      v = Array.make initial_cap 0;
      n = 0;
    }

  let length t = t.n

  let hash a b = mix (a lxor (b * 0x9e3779b97f4a7c1))

  let find t a b =
    let mask = Array.length t.slots - 1 in
    let i = ref (hash a b land mask) in
    let res = ref (-2) in
    while !res = -2 do
      let s = Array.unsafe_get t.slots !i in
      if s = 0 then res := -1
      else begin
        let j = s - 1 in
        if Array.unsafe_get t.k1 j = a && Array.unsafe_get t.k2 j = b then
          res := j
        else i := (!i + 1) land mask
      end
    done;
    !res

  (* Place dense index [j] into the probe array (which must have a
     free slot for it). *)
  let place slots j a b =
    let mask = Array.length slots - 1 in
    let i = ref (hash a b land mask) in
    while Array.unsafe_get slots !i <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- j + 1

  let grow_dense a =
    let b = Array.make (2 * Array.length a) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b

  let add t a b value =
    if 4 * (t.n + 1) > 3 * Array.length t.slots then begin
      let slots = Array.make (2 * Array.length t.slots) 0 in
      for j = 0 to t.n - 1 do
        place slots j t.k1.(j) t.k2.(j)
      done;
      t.slots <- slots
    end;
    if t.n = Array.length t.k1 then begin
      t.k1 <- grow_dense t.k1;
      t.k2 <- grow_dense t.k2;
      t.v <- grow_dense t.v
    end;
    let j = t.n in
    t.k1.(j) <- a;
    t.k2.(j) <- b;
    t.v.(j) <- value;
    place t.slots j a b;
    t.n <- j + 1;
    j

  let key1 t j = t.k1.(j)

  let key2 t j = t.k2.(j)

  let value t j = Array.unsafe_get t.v j

  let set_value t j x = Array.unsafe_set t.v j x

  let reset t =
    t.slots <- Array.make initial_slots 0;
    t.k1 <- Array.make initial_cap 0;
    t.k2 <- Array.make initial_cap 0;
    t.v <- Array.make initial_cap 0;
    t.n <- 0
end

module I3 = struct
  type t = {
    mutable slots : int array;
    mutable k1 : int array;
    mutable k2 : int array;
    mutable k3 : int array;
    mutable v : int array;
    mutable n : int;
  }

  let create () =
    {
      slots = Array.make initial_slots 0;
      k1 = Array.make initial_cap 0;
      k2 = Array.make initial_cap 0;
      k3 = Array.make initial_cap 0;
      v = Array.make initial_cap 0;
      n = 0;
    }

  let length t = t.n

  let hash a b c =
    mix (a lxor (b * 0x9e3779b97f4a7c1) lxor (c * 0x3c79ac492ba7b65))

  let find t a b c =
    let mask = Array.length t.slots - 1 in
    let i = ref (hash a b c land mask) in
    let res = ref (-2) in
    while !res = -2 do
      let s = Array.unsafe_get t.slots !i in
      if s = 0 then res := -1
      else begin
        let j = s - 1 in
        if
          Array.unsafe_get t.k1 j = a
          && Array.unsafe_get t.k2 j = b
          && Array.unsafe_get t.k3 j = c
        then res := j
        else i := (!i + 1) land mask
      end
    done;
    !res

  let place slots j a b c =
    let mask = Array.length slots - 1 in
    let i = ref (hash a b c land mask) in
    while Array.unsafe_get slots !i <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- j + 1

  let grow_dense a =
    let b = Array.make (2 * Array.length a) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b

  let add t a b c value =
    if 4 * (t.n + 1) > 3 * Array.length t.slots then begin
      let slots = Array.make (2 * Array.length t.slots) 0 in
      for j = 0 to t.n - 1 do
        place slots j t.k1.(j) t.k2.(j) t.k3.(j)
      done;
      t.slots <- slots
    end;
    if t.n = Array.length t.k1 then begin
      t.k1 <- grow_dense t.k1;
      t.k2 <- grow_dense t.k2;
      t.k3 <- grow_dense t.k3;
      t.v <- grow_dense t.v
    end;
    let j = t.n in
    t.k1.(j) <- a;
    t.k2.(j) <- b;
    t.k3.(j) <- c;
    t.v.(j) <- value;
    place t.slots j a b c;
    t.n <- j + 1;
    j

  let key1 t j = t.k1.(j)

  let key2 t j = t.k2.(j)

  let key3 t j = t.k3.(j)

  let value t j = Array.unsafe_get t.v j

  let set_value t j x = Array.unsafe_set t.v j x

  let reset t =
    t.slots <- Array.make initial_slots 0;
    t.k1 <- Array.make initial_cap 0;
    t.k2 <- Array.make initial_cap 0;
    t.k3 <- Array.make initial_cap 0;
    t.v <- Array.make initial_cap 0;
    t.n <- 0
end

module Dag = Prbp_dag.Dag
module Rbp = Prbp_pebble.Rbp
module RM = Prbp_pebble.Move.R
module T = State_table.I3

exception Too_large of int

type stats = { cost : int; explored : int; pruned : int }

(* States are (red, blue, comp) bitmask triples kept unboxed in a
   State_table.I3; every state is named by its dense table index.  The
   deque holds dense indices only; a state's tentative distance lives
   in the table value, flipped to [lnot d] (negative) once the state
   is popped and settled — the 0-1 BFS invariant guarantees the first
   pop sees the final distance, so later stale queue entries are
   skipped on the sign alone. *)
type ctx = {
  cfg : Rbp.config;
  eager_deletes : bool;
  n : int;
  pred_mask : int array;
  succ_mask : int array;
  sinks : int;
  sources : int;
  srcs : int array;  (* source nodes, for the residual lower bound *)
  max_states : int;
  want_strategy : bool;
  ub : int;  (* branch-and-bound bound; max_int = pruning off *)
  mutable pruned : int;
  tbl : T.t;
  mutable parent_idx : int array;
  mutable parent_move : RM.t array;
  dq : int Deque01.t;
}

(* Admissible residual bound: every not-yet-blue sink still costs one
   SAVE, and (one-shot only) every source that is not red but still
   feeds an uncomputed successor costs one LOAD.  All these I/Os are
   distinct moves on distinct nodes, so the sum is a lower bound on
   the cost-to-go. *)
let residual_lb ctx red blue comp =
  let lb = ref (Bits.popcount (ctx.sinks land lnot blue)) in
  if ctx.cfg.Rbp.one_shot then
    Array.iter
      (fun s ->
        if
          red land (1 lsl s) = 0
          && ctx.succ_mask.(s) land lnot comp <> 0
        then incr lb)
      ctx.srcs;
  !lb

let relax ctx ~prev ~d_prev m red blue comp cost =
  let idx = T.find ctx.tbl red blue comp in
  if idx >= 0 then begin
    let v = T.value ctx.tbl idx in
    (* v < 0: settled, already minimal *)
    if v >= 0 && v > cost then begin
      T.set_value ctx.tbl idx cost;
      if ctx.want_strategy then begin
        ctx.parent_idx.(idx) <- prev;
        ctx.parent_move.(idx) <- m
      end;
      if cost = d_prev then Deque01.push_front ctx.dq idx
      else Deque01.push_back ctx.dq idx
    end
  end
  else if ctx.ub < max_int && cost + residual_lb ctx red blue comp > ctx.ub
  then ctx.pruned <- ctx.pruned + 1
  else begin
    if T.length ctx.tbl >= ctx.max_states then raise (Too_large ctx.max_states);
    let idx = T.add ctx.tbl red blue comp cost in
    if ctx.want_strategy then begin
      if idx >= Array.length ctx.parent_idx then begin
        let cap = max 16 (2 * Array.length ctx.parent_idx) in
        let pi = Array.make cap 0 and pm = Array.make cap (RM.Load 0) in
        Array.blit ctx.parent_idx 0 pi 0 (Array.length ctx.parent_idx);
        Array.blit ctx.parent_move 0 pm 0 (Array.length ctx.parent_move);
        ctx.parent_idx <- pi;
        ctx.parent_move <- pm
      end;
      ctx.parent_idx.(idx) <- prev;
      ctx.parent_move.(idx) <- m
    end;
    if cost = d_prev then Deque01.push_front ctx.dq idx
    else Deque01.push_back ctx.dq idx
  end

(* A value may be deleted (or need not be saved) once it can never be
   used again: all successors computed and, for sinks, already blue.
   Only sound in the one-shot game. *)
let obsolete ctx blue comp v =
  ctx.cfg.Rbp.one_shot
  && ctx.succ_mask.(v) land lnot comp = 0
  && (ctx.sinks land (1 lsl v) = 0 || blue land (1 lsl v) <> 0)

let expand ctx prev d =
  let red = T.key1 ctx.tbl prev
  and blue = T.key2 ctx.tbl prev
  and comp = T.key3 ctx.tbl prev in
  let n_red = Bits.popcount red in
  for v = 0 to ctx.n - 1 do
    let b = 1 lsl v in
    (* LOAD *)
    if
      blue land b <> 0
      && red land b = 0
      && n_red < ctx.cfg.Rbp.r
      && not (obsolete ctx blue comp v)
    then relax ctx ~prev ~d_prev:d (RM.Load v) (red lor b) blue comp (d + 1);
    (* SAVE; in the no-delete variant saving an already-blue node is
       meaningful (it is the only way to release the red pebble) *)
    if red land b <> 0 && (blue land b = 0 || ctx.cfg.Rbp.no_delete) then begin
      let red' = if ctx.cfg.Rbp.no_delete then red lxor b else red in
      if ctx.cfg.Rbp.no_delete || not (obsolete ctx blue comp v) then
        relax ctx ~prev ~d_prev:d (RM.Save v) red' (blue lor b) comp (d + 1)
    end;
    (* COMPUTE *)
    if
      ctx.sources land b = 0
      && red land b = 0
      && (not (ctx.cfg.Rbp.one_shot && comp land b <> 0))
      && red land ctx.pred_mask.(v) = ctx.pred_mask.(v)
    then begin
      let comp' = if ctx.cfg.Rbp.one_shot then comp lor b else comp in
      if n_red < ctx.cfg.Rbp.r then
        relax ctx ~prev ~d_prev:d (RM.Compute v) (red lor b) blue comp' d;
      (* SLIDE *)
      if ctx.cfg.Rbp.sliding then
        Bits.iter_bits
          (fun u ->
            relax ctx ~prev ~d_prev:d
              (RM.Slide (u, v))
              (red lxor (1 lsl u) lor b)
              blue comp' d)
          ctx.pred_mask.(v)
    end;
    (* DELETE.  Deleting an unsaved, still-needed value is a dead end
       in the one-shot game (pruned); deleting a recoverable value
       (blue-backed or re-computable) is postponed until the cache is
       actually full — extra cached copies only ever consume capacity,
       so this normalization preserves optimality.  Obsolete values are
       cleaned up eagerly for free.  [eager_deletes] disables the
       capacity normalization (for ablation measurements only). *)
    if
      (not ctx.cfg.Rbp.no_delete)
      && red land b <> 0
      && (obsolete ctx blue comp v
         || ((ctx.eager_deletes || n_red = ctx.cfg.Rbp.r)
            && ((not ctx.cfg.Rbp.one_shot) || blue land b <> 0)))
    then relax ctx ~prev ~d_prev:d (RM.Delete v) (red lxor b) blue comp d
  done

(* Branch-and-bound upper bound: the I/O count of a heuristic strategy.
   The Belady pebbler plays the standard one-shot game, whose move set
   is legal in every variant except no-delete (sliding and
   re-computation only relax the rules), so its cost bounds OPT from
   above there; in the no-delete variant (or when the heuristic cannot
   run at all, e.g. r < Δin + 1) pruning is disabled. *)
let heuristic_ub cfg g =
  if cfg.Rbp.no_delete then max_int
  else
    match Heuristic.rbp ~r:cfg.Rbp.r g with
    | moves ->
        List.fold_left
          (fun acc m ->
            match m with RM.Load _ | RM.Save _ -> acc + 1 | _ -> acc)
          0 moves
    | exception _ -> max_int

let search ?(max_states = 5_000_000) ?(eager_deletes = false) ?(prune = true)
    ~want_strategy cfg g =
  let n = Dag.n_nodes g in
  if n > 62 then invalid_arg "Exact_rbp: at most 62 nodes";
  let mask_of fold v = fold (fun u acc -> acc lor (1 lsl u)) g v 0 in
  let sources =
    List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sources g)
  in
  let ctx =
    {
      cfg;
      eager_deletes;
      n;
      pred_mask = Array.init n (mask_of Dag.fold_pred);
      succ_mask = Array.init n (mask_of Dag.fold_succ);
      sinks = List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sinks g);
      sources;
      srcs = Array.of_list (Dag.sources g);
      max_states;
      want_strategy;
      ub = (if prune then heuristic_ub cfg g else max_int);
      pruned = 0;
      tbl = T.create ();
      parent_idx = [||];
      parent_move = [||];
      dq = Deque01.create ();
    }
  in
  (* init state gets dense index 0 *)
  ignore (T.add ctx.tbl 0 sources 0 0);
  if want_strategy then begin
    ctx.parent_idx <- Array.make 16 0;
    ctx.parent_move <- Array.make 16 (RM.Load 0)
  end;
  Deque01.push_back ctx.dq 0;
  let result = ref None in
  (try
     let continue = ref true in
     while !continue do
       match Deque01.pop_front ctx.dq with
       | None -> continue := false
       | Some idx ->
           let d = T.value ctx.tbl idx in
           if d >= 0 then begin
             T.set_value ctx.tbl idx (lnot d);
             if T.key2 ctx.tbl idx land ctx.sinks = ctx.sinks then begin
               result := Some (idx, d);
               continue := false
             end
             else expand ctx idx d
           end
     done
   with Too_large _ as e ->
     (* drop every per-search structure, not just the distance table:
        a caught exception must not pin hundreds of MB alive *)
     T.reset ctx.tbl;
     Deque01.clear ctx.dq;
     ctx.parent_idx <- [||];
     ctx.parent_move <- [||];
     raise e);
  let explored = T.length ctx.tbl in
  match !result with
  | None -> None
  | Some (goal, d) ->
      let moves =
        if not want_strategy then []
        else begin
          let acc = ref [] in
          let idx = ref goal in
          while !idx <> 0 do
            acc := ctx.parent_move.(!idx) :: !acc;
            idx := ctx.parent_idx.(!idx)
          done;
          !acc
        end
      in
      Some (d, moves, { cost = d; explored; pruned = ctx.pruned })

let opt_opt ?max_states ?prune cfg g =
  Option.map
    (fun (d, _, _) -> d)
    (search ?max_states ?prune ~want_strategy:false cfg g)

let opt_stats ?max_states ?eager_deletes ?prune cfg g =
  Option.map
    (fun (_, _, stats) -> stats)
    (search ?max_states ?eager_deletes ?prune ~want_strategy:false cfg g)

let opt ?max_states ?prune cfg g =
  match opt_opt ?max_states ?prune cfg g with
  | Some d -> d
  | None -> failwith "Exact_rbp.opt: no valid pebbling exists"

let opt_with_strategy ?max_states ?prune cfg g =
  Option.map
    (fun (d, moves, _) -> (d, moves))
    (search ?max_states ?prune ~want_strategy:true cfg g)

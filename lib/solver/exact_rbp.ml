module Dag = Prbp_dag.Dag
module Rbp = Prbp_pebble.Rbp
module RM = Prbp_pebble.Move.R


type stats = Game.stats = { cost : int; explored : int; pruned : int }

(* The classic-RBP instance of the generic engine: a state is the
   (red, blue, comp) bitmask triple, packed as 3 ints.  All search
   machinery (state table, 0-1 deque, settled encoding, B&B) lives in
   {!Engine.Make}; this module only knows the game rules. *)
module G = struct
  type inst = {
    cfg : Rbp.config;
    eager_deletes : bool;
    n : int;
    pred_mask : int array;
    succ_mask : int array;
    sinks : int;
    sources : int;
    srcs : int array;  (* source nodes, for the residual lower bound *)
    ub : int;
  }

  type move = RM.t

  let name = "rbp"

  let dummy_move = RM.Load 0

  let width _ = 3

  let write_init inst buf =
    buf.(0) <- 0;
    buf.(1) <- inst.sources;
    buf.(2) <- 0

  let is_goal inst buf = buf.(1) land inst.sinks = inst.sinks

  (* Admissible residual bound: every not-yet-blue sink still costs
     one SAVE, and (one-shot only) every source that is not red but
     still feeds an uncomputed successor costs one LOAD.  All these
     I/Os are distinct moves on distinct nodes, so the sum is a lower
     bound on the cost-to-go. *)
  let residual_lb inst buf =
    let red = buf.(0) and blue = buf.(1) and comp = buf.(2) in
    let lb = ref (Bits.popcount (inst.sinks land lnot blue)) in
    if inst.cfg.Rbp.one_shot then
      Array.iter
        (fun s ->
          if
            red land (1 lsl s) = 0
            && inst.succ_mask.(s) land lnot comp <> 0
          then incr lb)
        inst.srcs;
    !lb

  let heuristic_ub inst = inst.ub

  (* A value may be deleted (or need not be saved) once it can never
     be used again: all successors computed and, for sinks, already
     blue.  Only sound in the one-shot game. *)
  let obsolete inst blue comp v =
    inst.cfg.Rbp.one_shot
    && inst.succ_mask.(v) land lnot comp = 0
    && (inst.sinks land (1 lsl v) = 0 || blue land (1 lsl v) <> 0)

  let expand inst cur ~scratch ~emit =
    let red = cur.(0) and blue = cur.(1) and comp = cur.(2) in
    let put r b c (m : move) cost01 =
      (* scratch is engine-allocated at exactly [width inst] *)
      Array.unsafe_set scratch 0 r;
      Array.unsafe_set scratch 1 b;
      Array.unsafe_set scratch 2 c;
      emit m cost01
    in
    (* hot loop: hoist the loop-invariant loads *)
    let r = inst.cfg.Rbp.r in
    let n_red = Bits.popcount red in
    for v = 0 to inst.n - 1 do
      let b = 1 lsl v in
      (* LOAD *)
      if
        blue land b <> 0
        && red land b = 0
        && n_red < r
        && not (obsolete inst blue comp v)
      then put (red lor b) blue comp (RM.Load v) 1;
      (* SAVE; in the no-delete variant saving an already-blue node is
         meaningful (it is the only way to release the red pebble) *)
      if red land b <> 0 && (blue land b = 0 || inst.cfg.Rbp.no_delete)
      then begin
        let red' = if inst.cfg.Rbp.no_delete then red lxor b else red in
        if inst.cfg.Rbp.no_delete || not (obsolete inst blue comp v) then
          put red' (blue lor b) comp (RM.Save v) 1
      end;
      (* COMPUTE *)
      if
        inst.sources land b = 0
        && red land b = 0
        && (not (inst.cfg.Rbp.one_shot && comp land b <> 0))
        && red land inst.pred_mask.(v) = inst.pred_mask.(v)
      then begin
        let comp' = if inst.cfg.Rbp.one_shot then comp lor b else comp in
        if n_red < r then put (red lor b) blue comp' (RM.Compute v) 0;
        (* SLIDE *)
        if inst.cfg.Rbp.sliding then
          Bits.iter_bits
            (fun u ->
              put
                (red lxor (1 lsl u) lor b)
                blue comp'
                (RM.Slide (u, v))
                0)
            inst.pred_mask.(v)
      end;
      (* DELETE.  Deleting an unsaved, still-needed value is a dead
         end in the one-shot game (pruned); deleting a recoverable
         value (blue-backed or re-computable) is postponed until the
         cache is actually full — extra cached copies only ever
         consume capacity, so this normalization preserves optimality.
         Obsolete values are cleaned up eagerly for free.
         [eager_deletes] disables the capacity normalization (for
         ablation measurements only). *)
      if
        (not inst.cfg.Rbp.no_delete)
        && red land b <> 0
        && (obsolete inst blue comp v
           || ((inst.eager_deletes || n_red = r)
              && ((not inst.cfg.Rbp.one_shot) || blue land b <> 0)))
      then put (red lxor b) blue comp (RM.Delete v) 0
    done
end

module E = Engine.Make (G)

(* Branch-and-bound incumbent: a heuristic strategy and its I/O count.
   The Belady pebbler plays the standard one-shot game, whose move set
   is legal in every variant except no-delete (sliding and
   re-computation only relax the rules), so its cost bounds OPT from
   above there; in the no-delete variant (or when the heuristic cannot
   run at all, e.g. r < Δin + 1) pruning is disabled. *)
let heuristic_seed cfg g =
  if cfg.Rbp.no_delete then None
  else
    match Heuristic.rbp ~r:cfg.Rbp.r g with
    | moves ->
        let c =
          List.fold_left
            (fun acc m ->
              match m with RM.Load _ | RM.Save _ -> acc + 1 | _ -> acc)
            0 moves
        in
        Some (c, moves)
    | exception _ -> None

let inst ~eager_deletes ~ub cfg g =
  let n = Dag.n_nodes g in
  if n > 62 then invalid_arg "Exact_rbp: at most 62 nodes";
  let mask_of fold v = fold (fun u acc -> acc lor (1 lsl u)) g v 0 in
  {
    G.cfg;
    eager_deletes;
    n;
    pred_mask = Array.init n (mask_of Dag.fold_pred);
    succ_mask = Array.init n (mask_of Dag.fold_succ);
    sinks = List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sinks g);
    sources =
      List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sources g);
    srcs = Array.of_list (Dag.sources g);
    ub;
  }

let solve ?budget ?telemetry ?(want_strategy = false) ?(prune = true)
    ?(eager_deletes = false) ?jobs cfg g =
  let seed = if prune then heuristic_seed cfg g else None in
  let ub = match seed with Some (c, _) -> c | None -> max_int in
  let outcome =
    E.solve ?budget ?telemetry ~want_strategy ~prune ?jobs
      (inst ~eager_deletes ~ub cfg g)
  in
  (* move lists are strictly opt-in, incumbent included *)
  match (outcome, seed) with
  | Solver.Bounded b, Some (_, moves) when want_strategy ->
      Solver.Bounded { b with Solver.incumbent_strategy = Some moves }
  | _ -> outcome

module Dag = Prbp_dag.Dag

exception Too_large = Game.Too_large

(* The black pebble game as an all-zero-cost instance of the generic
   engine: a state is the (pebbled-node mask, visited-sink mask) pair,
   every transition is free (only the peak pebble count matters, and
   that is capped by construction), so feasibility at capacity s is
   plain reachability — [opt_opt] returns [Some 0] iff a complete
   pebbling exists.  Branch-and-bound never fires (all distances are
   0); the engine is used purely as the shared table + queue + budget
   machinery. *)

type move = Place of int | Slide of int * int | Remove of int

module G = struct
  type inst = {
    n : int;
    s : int;
    sliding : bool;
    pred_mask : int array;
    sinks : int;
  }

  type nonrec move = move

  let name = "black"

  let dummy_move = Place 0

  let width _ = 2

  let write_init _ buf =
    buf.(0) <- 0;
    buf.(1) <- 0

  let is_goal inst buf = buf.(1) = inst.sinks

  let residual_lb _ _ = 0

  let heuristic_ub _ = max_int

  let expand inst cur ~scratch ~emit =
    let mask = cur.(0) and visited = cur.(1) in
    let put m v (mv : move) =
      scratch.(0) <- m;
      scratch.(1) <- v;
      emit mv 0
    in
    for v = 0 to inst.n - 1 do
      let b = 1 lsl v in
      if mask land b = 0 && inst.pred_mask.(v) land lnot mask = 0 then begin
        (* PLACE (needs a free pebble) *)
        if Bits.popcount mask < inst.s then
          put (mask lor b) (visited lor (b land inst.sinks)) (Place v);
        (* SLIDE from one of the (pebbled) in-neighbors *)
        if inst.sliding && inst.pred_mask.(v) <> 0 then
          Bits.iter_bits
            (fun u ->
              put
                (mask lxor (1 lsl u) lor b)
                (visited lor (b land inst.sinks))
                (Slide (u, v)))
            inst.pred_mask.(v)
      end;
      (* REMOVE *)
      if mask land b <> 0 then put (mask lxor b) visited (Remove v)
    done
end

module E = Engine.Make (G)

let inst ?(sliding = false) ~s g =
  let n = Dag.n_nodes g in
  if n > 31 then invalid_arg "Black.feasible: at most 31 nodes";
  if s < 0 then invalid_arg "Black.feasible: negative capacity";
  {
    G.n;
    s;
    sliding;
    pred_mask =
      Array.init n (fun v ->
          Dag.fold_pred (fun u acc -> acc lor (1 lsl u)) g v 0);
    sinks = List.fold_left (fun a v -> a lor (1 lsl v)) 0 (Dag.sinks g);
  }

let solve ?budget ?telemetry ?want_strategy ?sliding ?jobs ~s g =
  E.solve ?budget ?telemetry ?want_strategy ~prune:false ?jobs
    (inst ?sliding ~s g)

(* The historical default budget for the black game (its states are a
   third the width of the red-blue ones, but `number` runs a whole
   upward scan of solves). *)
let default_states = 2_000_000

let budget_of_max_states max_states =
  Solver.Budget.states (Option.value max_states ~default:default_states)

let feasible ?sliding ?max_states ~s g =
  match solve ~budget:(budget_of_max_states max_states) ?sliding ~s g with
  | Solver.Optimal _ -> true
  | Solver.Unsolvable _ -> false
  | Solver.Bounded _ ->
      raise (Game.Too_large (Option.value max_states ~default:default_states))

let feasible_stats ?sliding ?max_states ~s g =
  match solve ~budget:(budget_of_max_states max_states) ?sliding ~s g with
  | Solver.Optimal { Solver.cost; stats; _ } ->
      Some
        {
          Game.cost;
          explored = stats.Solver.explored;
          pruned = stats.Solver.pruned;
        }
  | Solver.Unsolvable _ -> None
  | Solver.Bounded _ ->
      raise (Game.Too_large (Option.value max_states ~default:default_states))

let number ?sliding ?max_states g =
  let n = Dag.n_nodes g in
  if n = 0 then 0
  else begin
    let rec go s =
      if s > n then
        failwith "Black.number: internal: no feasible capacity up to n"
      else if feasible ?sliding ?max_states ~s g then s
      else go (s + 1)
    in
    go 1
  end

(** Exact optimal multiprocessor pebbling costs (RBP-MC and PRBP-MC)
    by exhaustive 0–1 shortest-path search — two more instances of the
    generic {!Engine}, for the Section-8.1 extension formalized in
    {!Prbp_pebble.Multi}.

    {b State packings.}  RBP-MC packs a state as [p + 2] ints: one red
    bitmask per processor, the shared blue mask, and the computed mask.
    PRBP-MC uses [2p + 2] ints: a light mask and a dark mask per
    processor (dark pebbles are exclusive — a partial value lives on at
    most one processor), the blue mask, and the marked-edge mask.

    {b Symmetry.}  Processors are interchangeable (each has the same
    capacity [r]), so successor states are canonicalized by sorting the
    per-processor masks, cutting the reachable space by up to [p!].
    [solve ~want_strategy:true] disables the canonicalization — its
    moves name concrete processors and replay through
    {!Prbp_pebble.Multi}'s rule engines — and therefore explores more
    states.

    {b Limits.}  One-shot configs only ([one_shot = false] raises
    [Invalid_argument]), at most 8 processors, at most 62 nodes (and,
    for PRBP-MC, 62 edges).  The state space grows like the
    single-processor games raised to the [p]-th power, so in practice
    expect [p ≤ 3] and [n ≲ 12]; past the budget the solves return a
    certified {!Solver.Bounded} interval.

    {b Sanity anchor.}  At [p = 1] both games coincide move-for-move
    with the Section-1/3 games, so [rbp_solve] / [prbp_solve] must
    match {!Exact_rbp.solve} / {!Exact_prbp.solve} on one-shot
    configs — checked by the engine regression suite and certified
    across DAG families by experiment E29. *)

exception Too_large of int
(** Raised only by the deprecated wrappers.  Alias (rebinding) of the
    engine-wide {!Game.Too_large} — matching either name catches the
    same exception.  The [solve] entry points never raise it. *)

type stats = Game.stats = {
  cost : int;  (** the optimal I/O cost *)
  explored : int;  (** distinct states inserted into the search *)
  pruned : int;
      (** states cut by branch-and-bound against the single-processor
          heuristic upper bound (sound: any 1-processor strategy is a
          [p]-processor strategy played on processor 0) *)
}

(** {1 RBP-MC} *)

val rbp_solve :
  ?budget:Solver.Budget.t ->
  ?telemetry:Solver.Telemetry.sink ->
  ?want_strategy:bool ->
  ?prune:bool ->
  ?jobs:int ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Multi.Move.rbp Solver.outcome
(** Anytime exact solve for the total I/O (communication volume) of a
    complete RBP-MC pebbling under [budget] (default
    {!Solver.Budget.default}).  {!Solver.Optimal} carries one optimal
    strategy when [want_strategy] (default off; replayable through
    {!Prbp_pebble.Multi.R.check}, at the cost of disabling the
    processor-symmetry canonicalization); {!Solver.Bounded} attaches
    (under [want_strategy]) the single-processor heuristic incumbent
    lifted onto processor 0;
    {!Solver.Unsolvable} when no pebbling exists (e.g. [r < Δin + 1]).
    [prune] (default on) is the branch-and-bound switch.  [jobs]
    (default 1) searches on that many domains; see
    {!Engine.Make.solve} for the determinism contract. *)

val rbp_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int
[@@deprecated "use rbp_solve"]
(** Optimal total I/O, or [Failure] when none exists.  [max_states]
    defaults to [5_000_000]; raises {!Too_large} where [rbp_solve]
    would return [Bounded]. *)

val rbp_opt_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int option
[@@deprecated "use rbp_solve"]

val rbp_opt_stats :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  stats option
[@@deprecated "use rbp_solve"]

val rbp_opt_with_strategy :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  (int * Prbp_pebble.Multi.Move.rbp list) option
[@@deprecated "use rbp_solve ~want_strategy:true"]

(** {1 PRBP-MC} *)

val prbp_solve :
  ?budget:Solver.Budget.t ->
  ?telemetry:Solver.Telemetry.sink ->
  ?want_strategy:bool ->
  ?prune:bool ->
  ?jobs:int ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Multi.Move.prbp Solver.outcome
(** Anytime exact solve for the total I/O of a complete PRBP-MC
    pebbling; same contract as {!rbp_solve}, with strategies
    replayable through {!Prbp_pebble.Multi.P.check}.
    {!Solver.Unsolvable} only at [r = 1] — PRBP pebbles every DAG once
    [r ≥ 2]. *)

val prbp_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int
[@@deprecated "use prbp_solve"]

val prbp_opt_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int option
[@@deprecated "use prbp_solve"]

val prbp_opt_stats :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  stats option
[@@deprecated "use prbp_solve"]

val prbp_opt_with_strategy :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  (int * Prbp_pebble.Multi.Move.prbp list) option
[@@deprecated "use prbp_solve ~want_strategy:true"]

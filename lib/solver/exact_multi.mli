(** Exact optimal multiprocessor pebbling costs (RBP-MC and PRBP-MC)
    by exhaustive 0–1 shortest-path search — two more instances of the
    generic {!Engine}, for the Section-8.1 extension formalized in
    {!Prbp_pebble.Multi}.

    {b State packings.}  RBP-MC packs a state as [p + 2] ints: one red
    bitmask per processor, the shared blue mask, and the computed mask.
    PRBP-MC uses [2p + 2] ints: a light mask and a dark mask per
    processor (dark pebbles are exclusive — a partial value lives on at
    most one processor), the blue mask, and the marked-edge mask.

    {b Symmetry.}  Processors are interchangeable (each has the same
    capacity [r]), so successor states are canonicalized by sorting the
    per-processor masks, cutting the reachable space by up to [p!].
    [*_opt_with_strategy] disables the canonicalization — its moves
    name concrete processors and replay through {!Prbp_pebble.Multi}'s
    rule engines — and therefore explores more states.

    {b Limits.}  One-shot configs only ([one_shot = false] raises
    [Invalid_argument]), at most 8 processors, at most 62 nodes (and,
    for PRBP-MC, 62 edges).  The state space grows like the
    single-processor games raised to the [p]-th power, so in practice
    expect [p ≤ 3] and [n ≲ 12]; the search raises {!Too_large} beyond
    [max_states].

    {b Sanity anchor.}  At [p = 1] both games coincide move-for-move
    with the Section-1/3 games, so [rbp_opt] / [prbp_opt] must equal
    {!Exact_rbp.opt} / {!Exact_prbp.opt} on one-shot configs — checked
    by the engine regression suite and certified across DAG families by
    experiment E29. *)

exception Too_large of int
(** Alias (rebinding) of the engine-wide {!Game.Too_large} — matching
    either name catches the same exception. *)

type stats = Game.stats = {
  cost : int;  (** the optimal I/O cost *)
  explored : int;  (** distinct states inserted into the search *)
  pruned : int;
      (** states cut by branch-and-bound against the single-processor
          heuristic upper bound (sound: any 1-processor strategy is a
          [p]-processor strategy played on processor 0) *)
}

(** {1 RBP-MC} *)

val rbp_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int
(** Optimal total I/O (communication volume) of a complete RBP-MC
    pebbling, or [Failure] when none exists (e.g. [r < Δin + 1]).
    [max_states] defaults to [5_000_000]; [prune] (default on) is the
    branch-and-bound switch. *)

val rbp_opt_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int option

val rbp_opt_stats :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  stats option

val rbp_opt_with_strategy :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  (int * Prbp_pebble.Multi.Move.rbp list) option
(** Also reconstruct one optimal strategy, replayable through
    {!Prbp_pebble.Multi.R.check}.  Disables the processor-symmetry
    canonicalization, so it explores more states than [rbp_opt]. *)

(** {1 PRBP-MC} *)

val prbp_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int
(** Optimal total I/O of a complete PRBP-MC pebbling ([Failure] only at
    [r = 1] or on out-of-range inputs — PRBP pebbles every DAG once
    [r ≥ 2]). *)

val prbp_opt_opt :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  int option

val prbp_opt_stats :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  stats option

val prbp_opt_with_strategy :
  ?max_states:int ->
  ?prune:bool ->
  Prbp_pebble.Multi.config ->
  Prbp_dag.Dag.t ->
  (int * Prbp_pebble.Multi.Move.prbp list) option
(** Also reconstruct one optimal strategy, replayable through
    {!Prbp_pebble.Multi.P.check}; canonicalization off, as above. *)

(** Exact optimal PRBP pebbling cost by exhaustive 0–1 shortest-path
    search over game states.

    A state packs the four-valued pebble state of every node (2 bits
    each) together with the set of marked edges; the search explores
    save/load (cost 1) and partial-compute/delete (cost 0) transitions
    with the same bucketed 0–1 BFS as {!Exact_rbp}, plus safe prunings
    (a dark sink is never deleted — that state cannot be completed in
    the one-shot game; no-op loads are skipped).

    Limits: at most 31 nodes and 62 edges.  This certifies statements
    like [OPT_PRBP = 2] on the Figure-1 DAG (Proposition 4.2) and the
    per-copy optimality of Proposition 4.7 chains.

    The Appendix-B.1 re-computation variant ([recompute = true] in the
    config) is supported: [Clear] transitions rebuild internal values
    from scratch, making the marked-edge set non-monotone — the state
    space stays finite, but grows quickly; expect smaller feasible
    sizes. *)

type stats = Game.stats = {
  cost : int;  (** the optimal I/O cost *)
  explored : int;  (** distinct states inserted into the search *)
  pruned : int;
      (** states cut by branch-and-bound: their distance plus an
          admissible residual bound exceeded the heuristic upper
          bound, so they were never inserted *)
}

val solve :
  ?budget:Solver.Budget.t ->
  ?telemetry:Solver.Telemetry.sink ->
  ?want_strategy:bool ->
  ?prune:bool ->
  ?eager_deletes:bool ->
  ?jobs:int ->
  Prbp_pebble.Prbp.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.P.t Solver.outcome
(** [solve cfg g] is the unified entry point: an anytime exact solve
    under [budget] (default {!Solver.Budget.default}).  Returns
    {!Solver.Optimal} (with one optimal strategy when [want_strategy],
    default off), {!Solver.Bounded} with a certified
    [lower <= OPT <= upper] interval (plus, under [want_strategy], the
    heuristic incumbent strategy) when the budget stops the search
    first, or {!Solver.Unsolvable} (only
    at [r = 1] — PRBP pebbles every DAG at [r >= 2]).

    [prune] (default on) seeds branch-and-bound from the cheaper of
    the two {!Heuristic} pebblers; any state whose distance plus an
    admissible residual bound (non-blue sinks + unloaded sources with
    unmarked out-edges) exceeds it is discarded — the optimum is
    unchanged.  [eager_deletes] disables the light-red
    capacity-normalization pruning (ablation measurements only).
    [telemetry] streams start/progress/prune/stop events.  [jobs]
    (default 1) searches on that many domains — same optimum, same
    certified interval on state-count-stopped runs; see
    {!Engine.Make.solve} for the exact determinism contract and the
    {!Solver.Budget.spill_words} interaction. *)

(* Bit-twiddling shared by the exact solvers.  These run in the
   innermost loops of the state search, so no allocation and no
   recursion. *)

(* SWAR popcount on OCaml's 63-bit ints: the classic parallel bit
   count; the 64th (sign) bit is never set in our masks. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x5555555555555555) in
  let x =
    (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333)
  in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f0f0f0f0f in
  (x * 0x0101010101010101) lsr 56

(* Index of the lowest set bit by binary descent on the isolated bit:
   six well-predicted tests, no division, no recursion.  Undefined on
   [0]. *)
let lowest_set_index x =
  let b = x land -x in
  let i = if b land 0xffffffff = 0 then 32 else 0 in
  let b = b lsr i in
  let j = if b land 0xffff = 0 then 16 else 0 in
  let b = b lsr j in
  let k = if b land 0xff = 0 then 8 else 0 in
  let b = b lsr k in
  let l = if b land 0xf = 0 then 4 else 0 in
  let b = b lsr l in
  let m = if b land 0x3 = 0 then 2 else 0 in
  let b = b lsr m in
  i + j + k + l + m + (1 - (b land 1))

let iter_bits f mask =
  let m = ref mask in
  while !m <> 0 do
    f (lowest_set_index !m);
    m := !m land (!m - 1)
  done

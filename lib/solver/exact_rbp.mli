(** Exact optimal RBP pebbling cost by exhaustive 0–1 shortest-path
    search over game states.

    A state is [(red, blue, computed)] as bitmasks; moves with cost 0
    (compute, slide, delete) and cost 1 (load, save) make the state
    graph a 0/1-weighted digraph, explored with a bucketed BFS (Dial's
    algorithm).  Safe prunings keep the space manageable: values are
    never deleted while still needed and unsaved (such states are dead
    ends in the one-shot game), and no-op loads/saves are skipped.

    Supports the same variants as {!Prbp_pebble.Rbp.config}: sliding,
    re-computation ([one_shot = false]), and no-deletion.  Intended for
    DAGs of ≲ 20 nodes; beyond the budget the search returns a
    certified {!Solver.Bounded} interval instead of an answer.

    This is what certifies statements like [OPT_RBP = 3] on the
    Figure-1 DAG (Proposition 4.2). *)

type stats = Game.stats = {
  cost : int;  (** the optimal I/O cost *)
  explored : int;  (** distinct states inserted into the search *)
  pruned : int;
      (** states cut by branch-and-bound: their distance plus an
          admissible residual bound exceeded the heuristic upper
          bound, so they were never inserted *)
}

val solve :
  ?budget:Solver.Budget.t ->
  ?telemetry:Solver.Telemetry.sink ->
  ?want_strategy:bool ->
  ?prune:bool ->
  ?eager_deletes:bool ->
  ?jobs:int ->
  Prbp_pebble.Rbp.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.R.t Solver.outcome
(** [solve cfg g] is the unified entry point: an anytime exact solve
    under [budget] (default {!Solver.Budget.default}).

    - {!Solver.Optimal} carries the optimal I/O cost, search stats and
      (with [want_strategy], default off) one optimal move sequence
      replayable through {!Prbp_pebble.Rbp.run}.
    - {!Solver.Bounded} is returned when the budget stops the search
      first: a certified [lower <= OPT <= upper] interval, with the
      heuristic incumbent strategy attached when one exists and
      [want_strategy] is set.
    - {!Solver.Unsolvable} means no valid pebbling exists
      (e.g. [r < Δin + 1]).

    [prune] (default on) enables branch-and-bound seeded from the
    {!Heuristic} pebbler; any state whose distance plus an admissible
    residual bound (unsaved sinks + unloaded, still-needed sources)
    exceeds the seed is discarded.  This never changes the optimum.
    [eager_deletes] disables the capacity-normalization pruning
    (deletes of recoverable values are then branched on at every
    state) — the optimum is unchanged, only the explored-state count
    differs; exposed for the pruning ablation in the benchmark
    harness.  [telemetry] streams start/progress/prune/stop events.
    [jobs] (default 1) searches on that many domains — same optimum,
    same certified interval on state-count-stopped runs; see
    {!Engine.Make.solve} for the exact determinism contract and the
    {!Solver.Budget.spill_words} interaction. *)

(** Allocation-free bit operations for the packed-bitmask state
    encodings of {!Exact_rbp} and {!Exact_prbp}. *)

val popcount : int -> int
(** Number of set bits, SWAR (no loop, no table). *)

val lowest_set_index : int -> int
(** Index of the least significant set bit.  Undefined on [0]. *)

val iter_bits : (int -> unit) -> int -> unit
(** [iter_bits f mask] calls [f i] for every set bit index [i] of
    [mask], in increasing order. *)

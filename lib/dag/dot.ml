let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

(* Light, print-friendly fills (ColorBrewer-ish); class i cycles
   through them.  Kept distinct from the highlight blue. *)
let palette =
  [| "#a6cee3"; "#b2df8a"; "#fb9a99"; "#fdbf6f"; "#cab2d6"; "#ffff99";
     "#fdd0a2"; "#ccebc5"; "#f2f0f7"; "#d9d9d9"; "#e5d8bd"; "#fddaec" |]

let class_color i = palette.(i mod Array.length palette)

(* total -> classes -> per-element class index (-1 = unclassed) *)
let class_index total classes =
  let idx = Array.make total (-1) in
  Array.iteri (fun i cls -> Bitset.iter (fun x -> idx.(x) <- i) cls) classes;
  idx

let to_string ?highlight ?edge_highlight ?classes ?edge_classes
    ?(rankdir = "TB") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n";
  Buffer.add_string buf (Printf.sprintf "  rankdir=%s;\n" rankdir);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  let node_class =
    Option.map (class_index (Dag.n_nodes g)) classes
  in
  let edge_class =
    Option.map (class_index (Dag.n_edges g)) edge_classes
  in
  for v = 0 to Dag.n_nodes g - 1 do
    let hl =
      match highlight with Some h -> Bitset.mem h v | None -> false
    in
    let style =
      match node_class with
      | Some idx when idx.(v) >= 0 ->
          Printf.sprintf
            ", style=filled, fillcolor=\"%s\", tooltip=\"class %d\""
            (class_color idx.(v))
            idx.(v)
      | _ -> if hl then ", style=filled, fillcolor=lightblue" else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v
         (escape (Dag.name g v))
         style)
  done;
  Dag.iter_edges
    (fun e u v ->
      let hl =
        match edge_highlight with
        | Some h -> Bitset.mem h e
        | None -> false
      in
      let style =
        match edge_class with
        | Some idx when idx.(e) >= 0 ->
            Printf.sprintf " [color=\"%s\", penwidth=2, tooltip=\"class %d\"]"
              (class_color idx.(e))
              idx.(e)
        | _ -> if hl then " [color=red, penwidth=2]" else ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" u v style))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?highlight ?edge_highlight ?classes ?edge_classes ?rankdir path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (to_string ?highlight ?edge_highlight ?classes ?edge_classes ?rankdir
           g))

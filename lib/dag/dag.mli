(** Immutable computational DAGs.

    Nodes are integers [0 .. n_nodes g - 1]; every edge carries a stable
    {e edge id} in [0 .. n_edges g - 1].  Edge ids are the currency of the
    PRBP game (partial-compute steps mark {e edges}) and of the S-edge
    partition machinery, so they are first-class here.

    The representation is CSR-style (offset + target arrays) in both
    directions, giving O(1) degree queries and allocation-free neighbor
    iteration.  Construction validates that the graph is acyclic and
    simple (no self-loops, no parallel edges). *)

type t

type node = int

type edge_id = int

exception Cycle of node list
(** Raised by {!make} when the edge set contains a directed cycle; the
    payload is one offending cycle, in order. *)

val make : ?names:string array -> ?family:string -> n:int -> (node * node) list -> t
(** [make ~n edges] builds a DAG on nodes [0..n-1].

    @param names optional display names, length [n].
    @param family optional family tag (e.g. ["fft:128"]) identifying the
      parameterized generator the DAG came from; the closed-form
      lower-bound registry keys off it.
    @raise Invalid_argument on out-of-range endpoints, self-loops or
      duplicate edges.
    @raise Cycle if [edges] contains a directed cycle. *)

val family : t -> string option
(** The family tag, if the DAG came from a tagged generator.  Derived
    views ({!reverse}, {!induced}) drop the tag: they are no longer the
    generated graph. *)

val with_family : t -> string -> t
(** [with_family g f] is [g] re-tagged with family [f]. *)

val n_nodes : t -> int

val n_edges : t -> int

val name : t -> node -> string
(** Display name of a node: the supplied name, or ["v<i>"]. *)

(** {1 Edges} *)

val edge_src : t -> edge_id -> node

val edge_dst : t -> edge_id -> node

val edge_id : t -> node -> node -> edge_id
(** [edge_id g u v] is the id of edge [(u, v)].
    @raise Not_found if there is no such edge. *)

val has_edge : t -> node -> node -> bool

val edges : t -> (node * node) list
(** All edges as pairs, in edge-id order. *)

val iter_edges : (edge_id -> node -> node -> unit) -> t -> unit
(** [iter_edges f g] calls [f e u v] for every edge, in edge-id order. *)

(** {1 Adjacency} *)

val in_degree : t -> node -> int

val out_degree : t -> node -> int

val max_in_degree : t -> int
(** The paper's Δ_in; 0 on an edgeless graph. *)

val max_out_degree : t -> int

val succs : t -> node -> node list

val preds : t -> node -> node list

val iter_succ : (node -> unit) -> t -> node -> unit

val iter_pred : (node -> unit) -> t -> node -> unit

val iter_succ_e : (edge_id -> node -> unit) -> t -> node -> unit
(** [iter_succ_e f g u] calls [f e v] for each out-edge [e = (u, v)]. *)

val iter_pred_e : (edge_id -> node -> unit) -> t -> node -> unit
(** [iter_pred_e f g v] calls [f e u] for each in-edge [e = (u, v)]. *)

val fold_succ : (node -> 'a -> 'a) -> t -> node -> 'a -> 'a

val fold_pred : (node -> 'a -> 'a) -> t -> node -> 'a -> 'a

(** {1 Sources and sinks} *)

val is_source : t -> node -> bool
(** In-degree 0. *)

val is_sink : t -> node -> bool
(** Out-degree 0. *)

val sources : t -> node list
(** In increasing node order. *)

val sinks : t -> node list

val n_sources : t -> int

val n_sinks : t -> int

val trivial_cost : t -> int
(** The paper's {e trivial cost} [m]: number of sources plus number of
    sinks — a lower bound on the I/O cost of any pebbling in both RBP
    and PRBP (every source is loaded and every sink saved at least
    once). *)

val has_isolated_nodes : t -> bool
(** The paper assumes DAGs without isolated nodes; generators never
    produce them, but user-built graphs may. *)

(** {1 Derived views} *)

val reverse : t -> t
(** The DAG with every edge flipped.  Edge ids are {e not} preserved. *)

val induced : t -> Bitset.t -> t * node array
(** [induced g keep] is the subgraph induced by the node set [keep],
    with nodes renumbered compactly; the returned array maps new node
    ids back to the original ones. *)

(** {1 Canonical form} *)

val canonical_order : t -> int array
(** A canonical relabeling of the nodes: [canonical_order g] is a
    permutation [id_of] with [id_of.(v)] the canonical id of node [v].
    Computed by Weisfeiler–Leman color refinement with an
    individualize-and-refine search for the lexicographically smallest
    labeling, so it depends only on the structure of the graph — two
    isomorphic relabelings of the same DAG get the same canonical form
    — except on highly symmetric DAGs, where a bounded search budget
    makes the remaining ties break by node id (still deterministic and
    byte-stable across runs, merely labeling-sensitive).  Names and the
    family tag never participate. *)

val hash : t -> string
(** Content hash of the canonical form (node count + canonically
    relabeled sorted edge list), as a 32-character hex digest.  Equal
    for isomorphic relabelings of the same structure (up to the
    {!canonical_order} search budget), different with overwhelming
    probability otherwise; byte-stable across runs and processes.  The
    key of the [prbpd] certificate cache. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: node/edge counts and degree bounds. *)

val pp_full : Format.formatter -> t -> unit
(** Full adjacency dump, one node per line. *)

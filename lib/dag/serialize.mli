(** Plain-text DAG serialization.

    A simple line-based format so DAGs can be exchanged with other
    tools and fed to the CLI:

    {v
    # anything after '#' is a comment
    nodes 4
    name 0 input
    edge 0 1
    edge 0 2
    edge 1 3
    edge 2 3
    v}

    [name] lines are optional; unnamed nodes print as [v<i>].
    Round-trips exactly: [of_string (to_string g)] rebuilds a DAG with
    identical nodes, names and edge ids. *)

val to_string : Dag.t -> string

val canonical : Dag.t -> string
(** The canonical rendering of the graph's {e structure}: nodes
    renumbered by {!Dag.canonical_order}, [edge] lines sorted, no
    [name] lines (names and the family tag are presentation, not
    structure).  Two isomorphic relabelings of the same DAG render
    identically (up to the canonicalization search budget, see
    {!Dag.canonical_order}); [of_string] parses it back into a DAG
    with the canonical numbering.  [Dag.hash] digests this form. *)

val of_string : string -> (Dag.t, string) result
(** Parse; errors carry the offending line number. *)

val to_file : string -> Dag.t -> unit

val of_file : string -> (Dag.t, string) result
(** [Error] also covers unreadable files. *)

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Dag.n_nodes g));
  for v = 0 to Dag.n_nodes g - 1 do
    let name = Dag.name g v in
    if name <> "v" ^ string_of_int v then
      Buffer.add_string buf (Printf.sprintf "name %d %s\n" v name)
  done;
  Dag.iter_edges
    (fun _ u v -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v))
    g;
  Buffer.contents buf

(* Canonical rendering: same line format, nodes renumbered by
   [Dag.canonical_order], edges sorted, names and family dropped
   (structure only — the form two isomorphic relabelings share). *)
let canonical g =
  let id_of = Dag.canonical_order g in
  let es = ref [] in
  Dag.iter_edges (fun _ u v -> es := (id_of.(u), id_of.(v)) :: !es) g;
  let es = List.sort compare !es in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Dag.n_nodes g));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v))
    es;
  Buffer.contents buf

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let of_string text =
  let lines = String.split_on_char '\n' text in
  let n = ref (-1) in
  let names = Hashtbl.create 16 in
  let edges = ref [] in
  let error = ref None in
  let fail lineno msg =
    if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment line) in
      if line <> "" && !error = None then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "nodes"; x ] -> (
            match int_of_string_opt x with
            | Some k when k >= 0 ->
                if !n >= 0 then fail lineno "duplicate nodes declaration"
                else n := k
            | _ -> fail lineno "invalid node count")
        | "name" :: x :: rest -> (
            match (int_of_string_opt x, rest) with
            | Some v, _ :: _ -> Hashtbl.replace names v (String.concat " " rest)
            | _ -> fail lineno "invalid name line")
        | [ "edge"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some u, Some v -> edges := (u, v) :: !edges
            | _ -> fail lineno "invalid edge line")
        | _ -> fail lineno (Printf.sprintf "unrecognized line %S" line))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !n < 0 then Error "missing 'nodes <n>' declaration"
      else begin
        let name_array =
          if Hashtbl.length names = 0 then None
          else begin
            let a = Array.make !n "" in
            Hashtbl.iter
              (fun v s -> if v >= 0 && v < !n then a.(v) <- s)
              names;
            Some a
          end
        in
        match Dag.make ?names:name_array ~n:!n (List.rev !edges) with
        | g -> Ok g
        | exception Invalid_argument msg -> Error msg
        | exception Dag.Cycle _ -> Error "the edge list contains a cycle"
      end

let to_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let of_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          of_string (really_input_string ic len))

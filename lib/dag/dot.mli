(** Graphviz DOT export, for inspecting generated constructions and
    partition certificates. *)

val to_string :
  ?highlight:Bitset.t ->
  ?edge_highlight:Bitset.t ->
  ?classes:Bitset.t array ->
  ?edge_classes:Bitset.t array ->
  ?rankdir:string ->
  Dag.t ->
  string
(** Render the DAG as a DOT digraph.  [highlight] nodes are filled,
    [edge_highlight] edges (by edge id) are drawn bold red.

    [classes] (node bitsets) / [edge_classes] (edge-id bitsets) render
    a partition: class [i] is filled/stroked with the [i]-th color of a
    cycling 12-color palette, with a [class i] tooltip — the visual
    form of an S-partition certificate.  Where a node (edge) has a
    class, the class color wins over [highlight] ([edge_highlight]);
    unclassed elements fall back to the highlight rendering.

    [rankdir] defaults to ["TB"]. *)

val to_file :
  ?highlight:Bitset.t ->
  ?edge_highlight:Bitset.t ->
  ?classes:Bitset.t array ->
  ?edge_classes:Bitset.t array ->
  ?rankdir:string ->
  string ->
  Dag.t ->
  unit

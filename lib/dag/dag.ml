type node = int

type edge_id = int

type t = {
  n : int;
  succ_off : int array;  (* length n+1; out-edges of u are ids succ_off.(u) .. succ_off.(u+1)-1 *)
  succ_tgt : int array;  (* edge id -> destination node *)
  esrc : int array;      (* edge id -> source node *)
  pred_off : int array;
  pred_src : int array;  (* pred slot -> predecessor node *)
  pred_eid : int array;  (* pred slot -> edge id *)
  names : string array option;
  family : string option;
}

exception Cycle of node list

let n_nodes g = g.n

let family g = g.family

let with_family g f = { g with family = Some f }

let n_edges g = Array.length g.succ_tgt

let name g v =
  match g.names with
  | Some a when a.(v) <> "" -> a.(v)
  | _ -> "v" ^ string_of_int v

let edge_src g e = g.esrc.(e)

let edge_dst g e = g.succ_tgt.(e)

let in_degree g v = g.pred_off.(v + 1) - g.pred_off.(v)

let out_degree g v = g.succ_off.(v + 1) - g.succ_off.(v)

(* Out-edge targets within a node's CSR segment are sorted, so edge lookup
   is a binary search. *)
let edge_id g u v =
  let lo = ref g.succ_off.(u) and hi = ref (g.succ_off.(u + 1) - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.succ_tgt.(mid) in
    if w = v then begin
      found := mid;
      lo := !hi + 1
    end
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then raise Not_found else !found

let has_edge g u v =
  match edge_id g u v with _ -> true | exception Not_found -> false

let iter_edges f g =
  for e = 0 to n_edges g - 1 do
    f e g.esrc.(e) g.succ_tgt.(e)
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun _ u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let iter_succ f g u =
  for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
    f g.succ_tgt.(i)
  done

let iter_succ_e f g u =
  for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
    f i g.succ_tgt.(i)
  done

let iter_pred f g v =
  for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
    f g.pred_src.(i)
  done

let iter_pred_e f g v =
  for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
    f g.pred_eid.(i) g.pred_src.(i)
  done

let fold_succ f g u init =
  let acc = ref init in
  iter_succ (fun v -> acc := f v !acc) g u;
  !acc

let fold_pred f g v init =
  let acc = ref init in
  iter_pred (fun u -> acc := f u !acc) g v;
  !acc

let succs g u = List.rev (fold_succ (fun v acc -> v :: acc) g u [])

let preds g v = List.rev (fold_pred (fun u acc -> u :: acc) g v [])

let is_source g v = in_degree g v = 0

let is_sink g v = out_degree g v = 0

let nodes_where p g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if p g v then acc := v :: !acc
  done;
  !acc

let sources g = nodes_where is_source g

let sinks g = nodes_where is_sink g

let count_where p g =
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if p g v then incr c
  done;
  !c

let n_sources g = count_where is_source g

let n_sinks g = count_where is_sink g

let trivial_cost g = n_sources g + n_sinks g

let has_isolated_nodes g =
  let rec go v =
    v < g.n && ((in_degree g v = 0 && out_degree g v = 0) || go (v + 1))
  in
  go 0

let max_in_degree g =
  let m = ref 0 in
  for v = 0 to g.n - 1 do
    if in_degree g v > !m then m := in_degree g v
  done;
  !m

let max_out_degree g =
  let m = ref 0 in
  for v = 0 to g.n - 1 do
    if out_degree g v > !m then m := out_degree g v
  done;
  !m

(* Cycle detection by iterative DFS with colors; returns one cycle. *)
let find_cycle n succ_of =
  let color = Array.make n 0 in
  (* 0 white, 1 gray, 2 black *)
  let parent = Array.make n (-1) in
  let cycle = ref None in
  let rec dfs v =
    color.(v) <- 1;
    List.iter
      (fun w ->
        if !cycle = None then
          if color.(w) = 0 then begin
            parent.(w) <- v;
            dfs w
          end
          else if color.(w) = 1 then begin
            (* found a back edge v -> w: walk parents from v back to w *)
            let rec collect u acc =
              if u = w then w :: acc else collect parent.(u) (u :: acc)
            in
            cycle := Some (collect v [])
          end)
      (succ_of v);
    color.(v) <- 2
  in
  let v = ref 0 in
  while !cycle = None && !v < n do
    if color.(!v) = 0 then dfs !v;
    incr v
  done;
  !cycle

let make ?names ?family ~n edge_list =
  if n < 0 then invalid_arg "Dag.make: negative node count";
  (match names with
  | Some a when Array.length a <> n ->
      invalid_arg "Dag.make: names array length mismatch"
  | _ -> ());
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Dag.make: edge (%d,%d) out of range [0,%d)" u v n);
      if u = v then
        invalid_arg (Printf.sprintf "Dag.make: self-loop on node %d" u))
    edge_list;
  let seen = Hashtbl.create (List.length edge_list) in
  List.iter
    (fun (u, v) ->
      if Hashtbl.mem seen (u, v) then
        invalid_arg (Printf.sprintf "Dag.make: duplicate edge (%d,%d)" u v);
      Hashtbl.add seen (u, v) ())
    edge_list;
  let m = List.length edge_list in
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      out_deg.(u) <- out_deg.(u) + 1;
      in_deg.(v) <- in_deg.(v) + 1)
    edge_list;
  let succ_off = Array.make (n + 1) 0 and pred_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    succ_off.(v + 1) <- succ_off.(v) + out_deg.(v);
    pred_off.(v + 1) <- pred_off.(v) + in_deg.(v)
  done;
  let succ_tgt = Array.make m 0 and esrc = Array.make m 0 in
  let fill = Array.copy succ_off in
  (* sort edges by (src, dst) so each CSR segment is sorted for lookup *)
  let sorted = List.sort compare edge_list in
  List.iter
    (fun (u, v) ->
      succ_tgt.(fill.(u)) <- v;
      esrc.(fill.(u)) <- u;
      fill.(u) <- fill.(u) + 1)
    sorted;
  let pred_src = Array.make m 0 and pred_eid = Array.make m 0 in
  let pfill = Array.copy pred_off in
  for e = 0 to m - 1 do
    let u = esrc.(e) and v = succ_tgt.(e) in
    pred_src.(pfill.(v)) <- u;
    pred_eid.(pfill.(v)) <- e;
    pfill.(v) <- pfill.(v) + 1
  done;
  let g =
    { n; succ_off; succ_tgt; esrc; pred_off; pred_src; pred_eid; names; family }
  in
  (match find_cycle n (fun v -> succs g v) with
  | Some c -> raise (Cycle c)
  | None -> ());
  g

let reverse g =
  make ~n:g.n ?names:g.names
    (List.rev_map (fun (u, v) -> (v, u)) (edges g))

let induced g keep =
  if Bitset.capacity keep <> g.n then
    invalid_arg "Dag.induced: bitset capacity mismatch";
  let old_of_new = Array.of_list (Bitset.to_list keep) in
  let n' = Array.length old_of_new in
  let new_of_old = Array.make g.n (-1) in
  Array.iteri (fun i v -> new_of_old.(v) <- i) old_of_new;
  let es = ref [] in
  iter_edges
    (fun _ u v ->
      if new_of_old.(u) >= 0 && new_of_old.(v) >= 0 then
        es := (new_of_old.(u), new_of_old.(v)) :: !es)
    g;
  let names =
    Option.map (fun a -> Array.map (fun v -> a.(v)) old_of_new) g.names
  in
  (make ?names ~n:n' !es, old_of_new)

(* ------------------------------------------------------------------ *)
(* Canonical order and content hash.

   Weisfeiler–Leman color refinement with individualize-and-refine:
   node colors start uniform and are repeatedly replaced by the dense
   rank of (old color, sorted predecessor colors, sorted successor
   colors) until the partition stops splitting.  Signatures depend only
   on the isomorphism class, so the refined ranks are invariant under
   relabeling.  When the stable partition is not discrete (the DAG has
   nontrivial candidate automorphisms), one node of the first ambiguous
   class is individualized and refinement recurses, keeping the
   lexicographically smallest resulting encoding — the classic
   canonical-labeling search.  The branch budget [canon_fuel] bounds
   that search: highly symmetric DAGs (e.g. matmul cubes) fall back to
   breaking the remaining ties by node id, which is still deterministic
   and byte-stable, just no longer invariant under relabeling.  *)

let canon_fuel = 64

(* One refinement round: permutation-invariant dense re-ranking. *)
let refine g rank =
  let n = g.n in
  let sig_of v =
    let ps =
      List.sort compare (fold_pred (fun u acc -> rank.(u) :: acc) g v [])
    in
    let ss =
      List.sort compare (fold_succ (fun u acc -> rank.(u) :: acc) g v [])
    in
    (rank.(v), ps, ss)
  in
  let sigs = Array.init n sig_of in
  let sorted = Array.copy sigs in
  Array.sort compare sorted;
  let tbl = Hashtbl.create (2 * n) in
  let c = ref (-1) in
  Array.iter
    (fun s ->
      if not (Hashtbl.mem tbl s) then begin
        incr c;
        Hashtbl.add tbl s !c
      end)
    sorted;
  (Array.map (fun s -> Hashtbl.find tbl s) sigs, !c + 1)

let rec refine_fixpoint g rank classes =
  let rank', classes' = refine g rank in
  if classes' = classes then (rank', classes')
  else refine_fixpoint g rank' classes'

(* Compact byte encoding of the graph under the node order [id_of]:
   node count then the sorted relabeled edge list.  This is what both
   the hash and the lexicographic branch comparison consume. *)
let encode_under g id_of =
  let m = n_edges g in
  let es = Array.make m (0, 0) in
  iter_edges (fun e u v -> es.(e) <- (id_of.(u), id_of.(v))) g;
  Array.sort compare es;
  let b = Buffer.create (16 + (m * 8)) in
  Buffer.add_string b (string_of_int g.n);
  Array.iter
    (fun (u, v) ->
      Buffer.add_char b ';';
      Buffer.add_string b (string_of_int u);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    es;
  Buffer.contents b

(* Ties left by an exhausted search break by node id: stable sort of
   nodes under (rank, id) yields the final ids. *)
let ids_by_rank_tiebreak g rank =
  let order = Array.init g.n (fun v -> (rank.(v), v)) in
  Array.sort compare order;
  let id_of = Array.make g.n 0 in
  Array.iteri (fun i (_, v) -> id_of.(v) <- i) order;
  id_of

(* Smallest ambiguous color class, by color value; [None] if the
   partition is discrete. *)
let first_ambiguous rank classes =
  let count = Array.make classes 0 in
  Array.iter (fun r -> count.(r) <- count.(r) + 1) rank;
  let rec go c = if c >= classes then None else if count.(c) > 1 then Some c else go (c + 1) in
  go 0

let rec canon_search g rank classes fuel =
  let rank, classes = refine_fixpoint g rank classes in
  match first_ambiguous rank classes with
  | None ->
      (* discrete: rank is the canonical id assignment *)
      (encode_under g rank, rank)
  | Some target ->
      let members = ref [] in
      for v = g.n - 1 downto 0 do
        if rank.(v) = target then members := v :: !members
      done;
      let best = ref None in
      List.iter
        (fun v ->
          if !fuel > 0 then begin
            decr fuel;
            (* [-1] is the same fresh color whichever member we pick,
               so the branches stay comparable across relabelings *)
            let rank' = Array.copy rank in
            rank'.(v) <- -1;
            let enc = canon_search g rank' classes fuel in
            match !best with
            | Some (e, _) when compare e (fst enc) <= 0 -> ()
            | _ -> best := Some enc
          end)
        !members;
      (match !best with
      | Some enc -> enc
      | None ->
          (* out of fuel before exploring any branch *)
          let id_of = ids_by_rank_tiebreak g rank in
          (encode_under g id_of, id_of))

let canonical_parts g =
  if g.n = 0 then ("0", [||])
  else canon_search g (Array.make g.n 0) 1 (ref canon_fuel)

let canonical_order g = snd (canonical_parts g)

let hash g = Digest.to_hex (Digest.string (fst (canonical_parts g)))

let pp ppf g =
  Format.fprintf ppf "dag(n=%d, m=%d, sources=%d, sinks=%d, Δin=%d, Δout=%d)"
    (n_nodes g) (n_edges g) (n_sources g) (n_sinks g) (max_in_degree g)
    (max_out_degree g)

let pp_full ppf g =
  pp ppf g;
  for v = 0 to g.n - 1 do
    Format.fprintf ppf "@\n  %s ->" (name g v);
    iter_succ (fun w -> Format.fprintf ppf " %s" (name g w)) g v
  done

(** Public facade of the PRBP library.

    [open Prbp] (or use qualified [Prbp.Game.…]) to reach the whole
    system through one module:

    {ul
    {- {!Dag}, {!Bitset}, {!Topo}, {!Reach}, {!Dominator}, {!Flow},
       {!Dot} — the DAG substrate;}
    {- {!Graphs} — every DAG family and proof construction of the
       paper;}
    {- {!Move}, {!Rbp}, {!Prbp_game} — the two pebble games and their
       Appendix-B variants;}
    {- {!Game}, {!Solver}, {!Engine} — the generic exact-solver core
       with its budget / telemetry / outcome vocabulary;
       {!Exact_rbp}, {!Exact_prbp}, {!Black}, {!Exact_multi},
       {!Heuristic}, {!Strategies} — its game instances, heuristic
       pebblers, and the paper's constructive strategies;}
    {- {!Spart}, {!Extract} — the S-partition lower-bound machinery;}
    {- {!Bounds} — certified brackets at scale: constructive
       partitioners ({!Bounds.Segment}), the lower- and upper-bound
       portfolios ({!Bounds.Lower}, {!Bounds.Upper}) and their
       orchestrator ({!Bounds.Bracket});}
    {- {!Obs} — spans, metrics and their exporters (Chrome trace,
       Prometheus text, JSON), plus the monotonic clock;}
    {- {!Wire} — the versioned JSON wire schema every emitter and the
       [prbpd] daemon speak;}
    {- {!Serve} — the [prbpd] daemon: HTTP service, worker pool with
       admission control, content-addressed certificate cache;}
    {- {!Table}, {!Experiment} — the experiment harness.}} *)

module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Topo = Prbp_dag.Topo
module Reach = Prbp_dag.Reach
module Dominator = Prbp_dag.Dominator
module Flow = Prbp_dag.Flow
module Dot = Prbp_dag.Dot
module Serialize = Prbp_dag.Serialize

module Graphs = struct
  module Basic = Prbp_graphs.Basic
  module Tree = Prbp_graphs.Tree
  module Zipper = Prbp_graphs.Zipper
  module Collect = Prbp_graphs.Collect
  module Fig1 = Prbp_graphs.Fig1
  module Matvec = Prbp_graphs.Matvec
  module Matmul = Prbp_graphs.Matmul
  module Fft = Prbp_graphs.Fft
  module Attention = Prbp_graphs.Attention
  module Lemma54 = Prbp_graphs.Lemma54
  module Ugraph = Prbp_graphs.Ugraph
  module Hardness48 = Prbp_graphs.Hardness48
  module Levels71 = Prbp_graphs.Levels71
  module Random_dag = Prbp_graphs.Random_dag
  module Spmv = Prbp_graphs.Spmv
  module Closed_form = Prbp_graphs.Closed_form
end

(** Observability: the monotonic {!Obs.Clock} every deadline reads,
    hierarchical {!Obs.Span} tracing with Chrome-trace/text exporters,
    and the {!Obs.Metrics} registry with Prometheus/JSON exporters.
    Both recorders are off by default and cost the hot paths one
    branch. *)
module Obs = struct
  module Clock = Prbp_obs.Clock
  module Span = Prbp_obs.Span
  module Metrics = Prbp_obs.Metrics
  module Json = Prbp_obs.Json
  module Flight = Prbp_obs.Flight
end

module Move = Prbp_pebble.Move
module Rbp = Prbp_pebble.Rbp
module Trace = Prbp_pebble.Trace
module Verifier = Prbp_pebble.Verifier
module Multi = Prbp_pebble.Multi

module Prbp_game = Prbp_pebble.Prbp
(** Named [Prbp_game] to avoid clashing with this facade module. *)

module Game = Prbp_solver.Game
module Solver = Prbp_solver.Solver
module Engine = Prbp_solver.Engine
module Exact_rbp = Prbp_solver.Exact_rbp
module Exact_prbp = Prbp_solver.Exact_prbp
module Exact_multi = Prbp_solver.Exact_multi
module Black = Prbp_solver.Black
module Heuristic = Prbp_solver.Heuristic
module Thresholds = Prbp_solver.Thresholds
module Optimize = Prbp_solver.Optimize
module Strategies = Prbp_solver.Strategies
module Spart = Prbp_partition.Spart
module Extract = Prbp_partition.Extract
module Minpart = Prbp_partition.Minpart

(** The certified-bracket subsystem: constructive partitioners, the
    lower-bound rule portfolio, the verified-strategy upper-bound
    portfolio, and the bracket orchestrator. *)
module Bounds = struct
  module Segment = Prbp_bounds.Segment
  module Lower = Prbp_bounds.Lower
  module Upper = Prbp_bounds.Upper
  module Bracket = Prbp_bounds.Bracket
  module Multi_bounds = Prbp_bounds.Multi_bounds
end

(** Certified multiprocessor trade-off frontiers: the per-move
    {!Frontier.Cost_model} pricing (compute time, communication,
    resident memory) and the anytime ε-constraint Pareto enumerator
    {!Frontier.Frontier} over {!Exact_multi} and
    {!Bounds.Multi_bounds}. *)
module Frontier = struct
  module Cost_model = Prbp_frontier.Cost_model
  module Frontier = Prbp_frontier.Frontier
end

(** The versioned wire schema ([{"v":1}]): JSON request / outcome /
    bracket-certificate / telemetry records with deterministic
    encoders and hardened decoders — the one format [pebble_cli]'s
    [--json]/[--trace], the [prbpd] daemon and the bench load
    generator all speak.  {!Wire.Json} is its minimal JSON substrate. *)
module Wire = struct
  include Prbp_wire.Wire
  module Json = Prbp_wire.Json
end

(** The [prbpd] daemon: HTTP service over the wire schema with worker
    domains behind admission control ({!Serve.Pool}), a
    content-addressed LRU certificate cache ({!Serve.Cache}) keyed by
    {!Dag.hash}, and a minimal stdlib-[Unix] HTTP/1.1 layer
    ({!Serve.Http}). *)
module Serve = struct
  module Http = Prbp_serve.Http
  module Pool = Prbp_serve.Pool
  module Cache = Prbp_serve.Cache
  module Server = Prbp_serve.Server
end

module Table = Prbp_harness.Table
module Chart = Prbp_harness.Chart
module Experiment = Prbp_harness.Experiment
module Regression = Prbp_harness.Regression

type source = unit -> float

let source = ref Unix.gettimeofday

(* Process-wide high-water mark.  A CAS loop rather than a plain write
   so that two domains racing cannot move the latch backwards. *)
let last = Atomic.make neg_infinity

let now () =
  let t = !source () in
  let rec latch () =
    let l = Atomic.get last in
    if t <= l then l
    else if Atomic.compare_and_set last l t then t
    else latch ()
  in
  latch ()

let elapsed_s t0 = now () -. t0

let deadline_of_millis = function
  | Some ms -> now () +. (float_of_int ms /. 1000.)
  | None -> infinity

let expired d = now () > d

let set_source s =
  source := (match s with Some f -> f | None -> Unix.gettimeofday);
  Atomic.set last neg_infinity

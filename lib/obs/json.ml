let escape s =
  (* fast path: nothing to escape, return the original string *)
  let clean = ref true in
  String.iter
    (fun c -> if c = '"' || c = '\\' || Char.code c < 0x20 then clean := false)
    s;
  if !clean then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | '\b' -> Buffer.add_string b "\\b"
        | '\012' -> Buffer.add_string b "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let string s = "\"" ^ escape s ^ "\""

(* The flight recorder: a bounded ring of the last N request
   summaries, plus the full span trees of the slowest K requests seen
   since the last reset.  It is deliberately tiny and lossy — a
   post-mortem window, not a log — so recording stays O(capacity) and
   the daemon can leave it on permanently. *)

type summary = {
  trace_id : int;
  route : string;
  status : int;
  cache : string;  (* "hit" | "miss" | "" *)
  t_start : float;
  dur_s : float;
  outcome : string;  (* solver outcome label, "" when not a solve *)
}

type entry = { summary : summary; spans : Span.t list }

let default_capacity = 64

let slowest_k = 8

type state = {
  mutable ring : summary option array;  (* oldest slot overwritten *)
  mutable next : int;  (* next slot to write *)
  mutable seen : int;  (* total records since reset *)
  mutable slow : entry list;  (* ≤ slowest_k, slowest first *)
  lock : Mutex.t;
}

let st =
  {
    ring = Array.make default_capacity None;
    next = 0;
    seen = 0;
    slow = [];
    lock = Mutex.create ();
  }

let set_capacity n =
  let n = max 1 n in
  Mutex.lock st.lock;
  st.ring <- Array.make n None;
  st.next <- 0;
  st.seen <- 0;
  st.slow <- [];
  Mutex.unlock st.lock

let capacity () =
  Mutex.lock st.lock;
  let n = Array.length st.ring in
  Mutex.unlock st.lock;
  n

let reset () = set_capacity (capacity ())

let insert_slow entry slow =
  let merged =
    List.stable_sort
      (fun a b -> compare b.summary.dur_s a.summary.dur_s)
      (entry :: slow)
  in
  List.filteri (fun i _ -> i < slowest_k) merged

let record ~summary ~spans =
  Mutex.lock st.lock;
  st.ring.(st.next) <- Some summary;
  st.next <- (st.next + 1) mod Array.length st.ring;
  st.seen <- st.seen + 1;
  st.slow <- insert_slow { summary; spans } st.slow;
  Mutex.unlock st.lock

let seen () =
  Mutex.lock st.lock;
  let n = st.seen in
  Mutex.unlock st.lock;
  n

(* Newest first. *)
let recent () =
  Mutex.lock st.lock;
  let n = Array.length st.ring in
  let acc = ref [] in
  for i = 0 to n - 1 do
    match st.ring.((st.next + i) mod n) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  Mutex.unlock st.lock;
  !acc

(* Slowest first. *)
let slowest () =
  Mutex.lock st.lock;
  let l = st.slow in
  Mutex.unlock st.lock;
  l

(* One Chrome trace document merging the slowest traces; each request
   keeps its own pid (= trace id), so Perfetto draws them as separate
   processes. *)
let to_chrome () =
  let entries = slowest () in
  let epoch =
    List.fold_left
      (fun acc e -> min acc (Span.chrome_epoch e.spans))
      infinity entries
  in
  let epoch = if epoch = infinity then 0. else epoch in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun e ->
      Span.add_chrome_events b ~pid:(max 1 e.summary.trace_id) ~epoch ~first
        e.spans)
    entries;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let enabled_flag = ref false

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0

  let incr t = if !enabled_flag then ignore (Atomic.fetch_and_add t 1)

  let add t n =
    if !enabled_flag then begin
      if n < 0 then invalid_arg "Obs.Metrics.Counter.add: negative increment";
      if n > 0 then ignore (Atomic.fetch_and_add t n)
    end

  let value = Atomic.get

  let reset t = Atomic.set t 0
end

module Gauge = struct
  (* a float in a record field is unboxed and word-sized, so reads and
     writes are atomic at the hardware level; racing [max_] updates can
     lose one of two concurrent maxima, which is acceptable for a
     high-water mark *)
  type t = { mutable v : float }

  let make () = { v = 0. }

  let set t v = if !enabled_flag then t.v <- v

  let max_ t v = if !enabled_flag && v > t.v then t.v <- v

  let value t = t.v

  let reset t = t.v <- 0.
end

module Histogram = struct
  let n_buckets = 64

  (* bucket [i] has upper bound 2^(i - 32) *)
  let exponent i = i - 32

  let bucket_of v =
    if v <= 0. then 0
    else
      let e = int_of_float (Float.ceil (Float.log2 v)) in
      min (n_buckets - 1) (max 0 (e + 32))

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
    m : Mutex.t;
  }

  let make () =
    { counts = Array.make n_buckets 0; count = 0; sum = 0.; m = Mutex.create () }

  let observe t v =
    if !enabled_flag then begin
      Mutex.lock t.m;
      let i = bucket_of v in
      t.counts.(i) <- t.counts.(i) + 1;
      t.count <- t.count + 1;
      t.sum <- t.sum +. v;
      Mutex.unlock t.m
    end

  let count t = t.count

  let sum t = t.sum

  let reset t =
    Mutex.lock t.m;
    Array.fill t.counts 0 n_buckets 0;
    t.count <- 0;
    t.sum <- 0.;
    Mutex.unlock t.m

  (* (le, cumulative count) over the occupied prefix of buckets, in
     ascending [le] order; the final +Inf sample is the exporter's
     job.  Assembled under the instrument's mutex so a concurrent
     [observe] cannot tear the cumulative counts. *)
  let cumulative_unlocked t =
    let acc = ref [] and running = ref 0 in
    let last = ref (-1) in
    for i = n_buckets - 1 downto 0 do
      if t.counts.(i) > 0 && !last < 0 then last := i
    done;
    for i = 0 to !last do
      running := !running + t.counts.(i);
      acc := (Float.pow 2. (float_of_int (exponent i)), !running) :: !acc
    done;
    List.rev !acc

  (* One consistent view of the whole instrument: the cumulative
     buckets, total count and sum all from the same locked read, so
     the exported [+Inf] bucket always equals [_count]. *)
  let snapshot t =
    Mutex.lock t.m;
    let r = (cumulative_unlocked t, t.count, t.sum) in
    Mutex.unlock t.m;
    r
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type instr =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

let kind_label = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"

type entry = {
  name : string;
  labels : (string * string) list;
  help : string;
  instr : instr;
}

(* reversed registration order; small (tens of instruments), so the
   linear scans below are fine and keep export order deterministic *)
let registry : entry list ref = ref []

let reg_lock = Mutex.create ()

let valid_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n

let register ~help ~labels name make_instr same_kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Metrics: invalid metric name %S" name);
  Mutex.lock reg_lock;
  let found =
    List.find_opt (fun e -> e.name = name && e.labels = labels) !registry
  in
  let family_kind =
    List.find_opt (fun e -> e.name = name) !registry
    |> Option.map (fun e -> e.instr)
  in
  let result =
    match found with
    | Some e -> e.instr
    | None ->
        let instr = make_instr () in
        (match family_kind with
        | Some k when kind_label k <> kind_label instr ->
            Mutex.unlock reg_lock;
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics: %s already registered as a %s" name
                 (kind_label k))
        | _ -> ());
        registry := { name; labels; help; instr } :: !registry;
        instr
  in
  Mutex.unlock reg_lock;
  match same_kind result with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
           (kind_label result))

let counter ?(help = "") ?(labels = []) name =
  register ~help ~labels name
    (fun () -> C (Counter.make ()))
    (function C c -> Some c | _ -> None)

let gauge ?(help = "") ?(labels = []) name =
  register ~help ~labels name
    (fun () -> G (Gauge.make ()))
    (function G g -> Some g | _ -> None)

let histogram ?(help = "") ?(labels = []) name =
  register ~help ~labels name
    (fun () -> H (Histogram.make ()))
    (function H h -> Some h | _ -> None)

let entries () =
  Mutex.lock reg_lock;
  let l = !registry in
  Mutex.unlock reg_lock;
  List.rev l

let reset () =
  List.iter
    (fun e ->
      match e.instr with
      | C c -> Counter.reset c
      | G g -> Gauge.reset g
      | H h -> Histogram.reset h)
    (entries ())

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label_block ?extra labels =
  let labels =
    match extra with Some kv -> labels @ [ kv ] | None -> labels
  in
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             labels)
      ^ "}"

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus () =
  let es = entries () in
  let b = Buffer.create 2048 in
  let seen_family = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem seen_family e.name) then begin
        Hashtbl.add seen_family e.name ();
        let kind =
          match e.instr with C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"
        in
        if e.help <> "" then
          Printf.bprintf b "# HELP %s %s\n" e.name (prom_escape e.help);
        Printf.bprintf b "# TYPE %s %s\n" e.name kind;
        (* every label set of the family, in registration order *)
        List.iter
          (fun e' ->
            if e'.name = e.name then
              match e'.instr with
              | C c ->
                  Printf.bprintf b "%s%s %d\n" e'.name
                    (label_block e'.labels) (Counter.value c)
              | G g ->
                  Printf.bprintf b "%s%s %s\n" e'.name
                    (label_block e'.labels)
                    (fmt_float (Gauge.value g))
              | H h ->
                  let buckets, count, sum = Histogram.snapshot h in
                  List.iter
                    (fun (le, n) ->
                      Printf.bprintf b "%s_bucket%s %d\n" e'.name
                        (label_block ~extra:("le", fmt_float le) e'.labels)
                        n)
                    buckets;
                  Printf.bprintf b "%s_bucket%s %d\n" e'.name
                    (label_block ~extra:("le", "+Inf") e'.labels)
                    count;
                  Printf.bprintf b "%s_sum%s %s\n" e'.name
                    (label_block e'.labels) (fmt_float sum);
                  Printf.bprintf b "%s_count%s %d\n" e'.name
                    (label_block e'.labels) count)
          es
      end)
    es;
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Json.string k ^ ":" ^ Json.string v) labels)
  ^ "}"

let to_json () =
  let es = entries () in
  let pick f = List.filter_map f es in
  let counters =
    pick (fun e ->
        match e.instr with
        | C c ->
            Some
              (Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%d}"
                 (Json.string e.name) (json_labels e.labels)
                 (Counter.value c))
        | _ -> None)
  in
  let gauges =
    pick (fun e ->
        match e.instr with
        | G g ->
            Some
              (Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%s}"
                 (Json.string e.name) (json_labels e.labels)
                 (fmt_float (Gauge.value g)))
        | _ -> None)
  in
  let histograms =
    pick (fun e ->
        match e.instr with
        | H h ->
            let bs, count, sum = Histogram.snapshot h in
            let buckets =
              List.map
                (fun (le, n) ->
                  Printf.sprintf "{\"le\":%s,\"n\":%d}" (fmt_float le) n)
                bs
            in
            Some
              (Printf.sprintf
                 "{\"name\":%s,\"labels\":%s,\"count\":%d,\"sum\":%s,\
                  \"buckets\":[%s]}"
                 (Json.string e.name) (json_labels e.labels) count
                 (fmt_float sum)
                 (String.concat "," buckets))
        | _ -> None)
  in
  Printf.sprintf
    "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}"
    (String.concat "," counters)
    (String.concat "," gauges)
    (String.concat "," histograms)

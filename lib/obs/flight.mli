(** The flight recorder: a bounded in-memory window over recent
    requests for live status and post-mortems.

    A server records one {!summary} per finished request (with the
    request's trace-context spans); the recorder keeps the last
    [capacity] summaries in a ring plus the full span trees of the
    {!slowest_k} slowest requests.  Everything is mutex-protected and
    O(capacity), so it stays on permanently.

    [GET /v1/status] serves {!recent} and {!slowest}; [prbpd
    --profile-out] dumps {!to_chrome} on clean shutdown. *)

type summary = {
  trace_id : int;  (** the request's {!Span.context} trace id *)
  route : string;
  status : int;  (** HTTP status served *)
  cache : string;  (** ["hit"], ["miss"], or [""] for uncached routes *)
  t_start : float;  (** {!Clock} time the request started *)
  dur_s : float;
  outcome : string;  (** solver outcome label, [""] when not a solve *)
}

type entry = { summary : summary; spans : Span.t list }

val default_capacity : int
(** 64 requests. *)

val slowest_k : int
(** 8: how many full span trees are retained. *)

val set_capacity : int -> unit
(** Resize the ring (clamped to ≥ 1).  Drops everything recorded so
    far. *)

val capacity : unit -> int

val record : summary:summary -> spans:Span.t list -> unit

val seen : unit -> int
(** Total requests recorded since the last reset (≥ the ring's
    current occupancy). *)

val recent : unit -> summary list
(** The ring's summaries, newest first. *)

val slowest : unit -> entry list
(** The retained slowest requests, slowest first, with their spans. *)

val to_chrome : unit -> string
(** One Chrome trace-event document merging the {!slowest} traces;
    each request keeps its trace id as [pid], so viewers draw the
    requests as separate processes. *)

val reset : unit -> unit

(** The library's one wall-clock source.

    Every deadline, elapsed-time report and span timestamp in the
    library reads this clock instead of calling [Unix.gettimeofday]
    directly.  Two properties follow:

    {ul
    {- {e monotonicity}: {!now} never decreases, even if the system
       clock is stepped backwards mid-run (NTP adjustment, manual
       [date]).  The raw source is latched through a process-wide
       high-water mark, so a backwards jump freezes the clock until
       real time catches up rather than making deadlines fire early or
       [elapsed_s] go negative;}
    {- {e substitutability}: tests install a deterministic source with
       {!set_source} and every duration in the system — span
       durations, exporter timestamps, deadline expiry — becomes
       reproducible to the byte.}}

    Reading the clock costs one indirect call plus an atomic
    compare-and-set; nothing on the solvers' per-expansion hot path
    reads it (deadline polls happen on the slow path every
    [check_every] expansions). *)

type source = unit -> float
(** A raw time source: seconds as an absolute float.  Need not be
    monotonic — {!now} latches it. *)

val now : unit -> float
(** Current time in seconds, monotonic non-decreasing across the whole
    process (all domains share the latch). *)

val elapsed_s : float -> float
(** [elapsed_s t0] is [now () -. t0]; never negative when [t0] was
    itself read from {!now}. *)

val deadline_of_millis : int option -> float
(** [deadline_of_millis (Some ms)] is an absolute deadline [ms]
    milliseconds from now; [None] maps to [infinity] (no deadline). *)

val expired : float -> bool
(** [expired d] is [now () > d]; always [false] for [infinity]. *)

val set_source : source option -> unit
(** Install a test source ([None] restores [Unix.gettimeofday]).
    Resets the monotonic latch, so the new source starts fresh; not
    intended for concurrent use with running solvers. *)

type t = {
  id : int;
  parent : int;
  name : string;
  tid : int;
  t0 : float;
  t1 : float;
  attrs : (string * string) list;
}

let enabled_flag = ref false

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

let next_id = Atomic.make 0

(* Completed spans, newest first; reversed on export. *)
let recorded : t list ref = ref []

let lock = Mutex.create ()

(* The open-span stack is domain-local: nesting is lexical within a
   domain, and spans started on a worker domain must not adopt a
   parent from another domain's stack. *)
type frame = {
  fid : int;
  fname : string;
  fparent : int;
  ft0 : float;
  mutable fattrs : (string * string) list;  (* reversed *)
}

let stack_key : frame list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let record s =
  Mutex.lock lock;
  recorded := s :: !recorded;
  Mutex.unlock lock

let with_ ?(attrs = []) ~name f =
  if not !enabled_flag then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match stack with [] -> -1 | fr :: _ -> fr.fid in
    let fr =
      {
        fid = Atomic.fetch_and_add next_id 1;
        fname = name;
        fparent = parent;
        ft0 = Clock.now ();
        fattrs = List.rev attrs;
      }
    in
    Domain.DLS.set stack_key (fr :: stack);
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now () in
        (match Domain.DLS.get stack_key with
        | fr' :: rest when fr' == fr -> Domain.DLS.set stack_key rest
        | _ ->
            (* unbalanced (an inner with_ escaped by effect/continuation
               tricks); drop everything down to and including [fr] *)
            let rec pop = function
              | fr' :: rest when fr' == fr -> rest
              | _ :: rest -> pop rest
              | [] -> []
            in
            Domain.DLS.set stack_key (pop (Domain.DLS.get stack_key)));
        record
          {
            id = fr.fid;
            parent = fr.fparent;
            name = fr.fname;
            tid = (Domain.self () :> int);
            t0 = fr.ft0;
            t1;
            attrs = List.rev fr.fattrs;
          })
      f
  end

let add_attr k v =
  if !enabled_flag then
    match Domain.DLS.get stack_key with
    | [] -> ()
    | fr :: _ -> fr.fattrs <- (k, v) :: fr.fattrs

(* [recorded] is completion-ordered (a parent lands after its
   children); sort to honor the documented start (= id) order. *)
let spans () =
  Mutex.lock lock;
  let l = !recorded in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.id b.id) l

let reset () =
  Mutex.lock lock;
  recorded := [];
  Mutex.unlock lock;
  Atomic.set next_id 0

(* ------------------------------------------------------------------ *)
(* Exporters.  Both consume [spans ()], so they see a consistent
   snapshot and their output order is the deterministic start order.  *)

let to_chrome () =
  let ss = spans () in
  let epoch = List.fold_left (fun acc s -> min acc s.t0) infinity ss in
  let epoch = if epoch = infinity then 0. else epoch in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n{\"name\":%s,\"cat\":\"prbp\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\
         \"ts\":%.3f,\"dur\":%.3f,\"args\":{"
        (Json.string s.name) s.tid
        ((s.t0 -. epoch) *. 1e6)
        ((s.t1 -. s.t0) *. 1e6);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%s:%s" (Json.string k) (Json.string v))
        s.attrs;
      Buffer.add_string b "}}")
    ss;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let to_text () =
  let ss = spans () in
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.id s) ss;
  (* children in start (= id) order; [ss] is already id-sorted *)
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun s ->
      if s.parent >= 0 && Hashtbl.mem known s.parent then
        Hashtbl.replace children s.parent
          (s :: (try Hashtbl.find children s.parent with Not_found -> []))
      else roots := s :: !roots)
    ss;
  let b = Buffer.create 4096 in
  let rec pr indent s =
    Printf.bprintf b "%s%s %.3fms" indent s.name ((s.t1 -. s.t0) *. 1e3);
    (match s.attrs with
    | [] -> ()
    | attrs ->
        Buffer.add_string b " {";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Printf.bprintf b "%s=%s" k v)
          attrs;
        Buffer.add_char b '}');
    Buffer.add_char b '\n';
    List.iter (pr (indent ^ "  "))
      (List.rev (try Hashtbl.find children s.id with Not_found -> []))
  in
  List.iter (pr "") (List.rev !roots);
  Buffer.contents b

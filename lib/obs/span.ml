type t = {
  id : int;
  parent : int;
  name : string;
  tid : int;
  t0 : float;
  t1 : float;
  attrs : (string * string) list;
}

let enabled_flag = ref false

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

(* ------------------------------------------------------------------ *)
(* Trace contexts.  A context owns a span recorder and a span-id
   counter of its own, so concurrent daemon requests routed through
   [with_current] produce disjoint traces with ids that restart at 0
   per request — deterministic for a given request shape, and parent
   links that cannot cross requests.  The default context backs the
   classic process-wide API ([spans]/[reset]/[to_chrome]/[to_text]),
   which CLI and bench runs keep using unchanged. *)

type context = {
  trace_id : int;
  mutable c_recorded : t list;  (* completed spans, newest first *)
  c_lock : Mutex.t;
  c_next : int Atomic.t;
}

let next_trace_id = Atomic.make 1

let make_context trace_id =
  {
    trace_id;
    c_recorded = [];
    c_lock = Mutex.create ();
    c_next = Atomic.make 0;
  }

let default_context = make_context 0

let new_context () = make_context (Atomic.fetch_and_add next_trace_id 1)

let trace_id ctx = ctx.trace_id

(* The ambient context is domain-local: a worker domain serving one
   request must not leak spans into another domain's request. *)
let ctx_key : context Domain.DLS.key =
  Domain.DLS.new_key (fun () -> default_context)

let current () = Domain.DLS.get ctx_key

(* The open-span stack is domain-local too: nesting is lexical within
   a domain, and spans started on a worker domain must not adopt a
   parent from another domain's stack. *)
type frame = {
  fid : int;
  fname : string;
  fparent : int;
  ft0 : float;
  mutable fattrs : (string * string) list;  (* reversed *)
}

let stack_key : frame list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_current ctx f =
  let prev_ctx = Domain.DLS.get ctx_key in
  let prev_stack = Domain.DLS.get stack_key in
  Domain.DLS.set ctx_key ctx;
  Domain.DLS.set stack_key [];
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set ctx_key prev_ctx;
      Domain.DLS.set stack_key prev_stack)
    f

let record ctx s =
  Mutex.lock ctx.c_lock;
  ctx.c_recorded <- s :: ctx.c_recorded;
  Mutex.unlock ctx.c_lock

let with_ ?(attrs = []) ~name f =
  if not !enabled_flag then f ()
  else begin
    let ctx = Domain.DLS.get ctx_key in
    let stack = Domain.DLS.get stack_key in
    let parent = match stack with [] -> -1 | fr :: _ -> fr.fid in
    let fr =
      {
        fid = Atomic.fetch_and_add ctx.c_next 1;
        fname = name;
        fparent = parent;
        ft0 = Clock.now ();
        fattrs = List.rev attrs;
      }
    in
    Domain.DLS.set stack_key (fr :: stack);
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now () in
        (match Domain.DLS.get stack_key with
        | fr' :: rest when fr' == fr -> Domain.DLS.set stack_key rest
        | _ ->
            (* unbalanced (an inner with_ escaped by effect/continuation
               tricks); drop everything down to and including [fr] *)
            let rec pop = function
              | fr' :: rest when fr' == fr -> rest
              | _ :: rest -> pop rest
              | [] -> []
            in
            Domain.DLS.set stack_key (pop (Domain.DLS.get stack_key)));
        record ctx
          {
            id = fr.fid;
            parent = fr.fparent;
            name = fr.fname;
            tid = (Domain.self () :> int);
            t0 = fr.ft0;
            t1;
            attrs = List.rev fr.fattrs;
          })
      f
  end

let add_attr k v =
  if !enabled_flag then
    match Domain.DLS.get stack_key with
    | [] -> ()
    | fr :: _ -> fr.fattrs <- (k, v) :: fr.fattrs

(* [c_recorded] is completion-ordered (a parent lands after its
   children); sort to honor the documented start (= id) order. *)
let context_spans ctx =
  Mutex.lock ctx.c_lock;
  let l = ctx.c_recorded in
  Mutex.unlock ctx.c_lock;
  List.sort (fun a b -> compare a.id b.id) l

let context_reset ctx =
  Mutex.lock ctx.c_lock;
  ctx.c_recorded <- [];
  Mutex.unlock ctx.c_lock;
  Atomic.set ctx.c_next 0

let spans () = context_spans default_context

let reset () = context_reset default_context

(* ------------------------------------------------------------------ *)
(* Exporters.  All consume a [spans]-style snapshot, so they see a
   consistent view and their output order is the deterministic start
   order. *)

(* One Chrome trace event per span, appended to [b]; [pid] separates
   traces when several contexts share one export (the flight
   recorder). *)
let add_chrome_events b ~pid ~epoch ~first ss =
  List.iter
    (fun s ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Printf.bprintf b
        "\n{\"name\":%s,\"cat\":\"prbp\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\
         \"ts\":%.3f,\"dur\":%.3f,\"args\":{"
        (Json.string s.name) pid s.tid
        ((s.t0 -. epoch) *. 1e6)
        ((s.t1 -. s.t0) *. 1e6);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%s:%s" (Json.string k) (Json.string v))
        s.attrs;
      Buffer.add_string b "}}")
    ss

let chrome_epoch ss =
  let epoch = List.fold_left (fun acc s -> min acc s.t0) infinity ss in
  if epoch = infinity then 0. else epoch

let context_to_chrome ctx =
  let ss = context_spans ctx in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  add_chrome_events b ~pid:(max 1 ctx.trace_id) ~epoch:(chrome_epoch ss)
    ~first:(ref true) ss;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let to_chrome () = context_to_chrome default_context

let to_text () =
  let ss = spans () in
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.id s) ss;
  (* children in start (= id) order; [ss] is already id-sorted *)
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun s ->
      if s.parent >= 0 && Hashtbl.mem known s.parent then
        Hashtbl.replace children s.parent
          (s :: (try Hashtbl.find children s.parent with Not_found -> []))
      else roots := s :: !roots)
    ss;
  let b = Buffer.create 4096 in
  let rec pr indent s =
    Printf.bprintf b "%s%s %.3fms" indent s.name ((s.t1 -. s.t0) *. 1e3);
    (match s.attrs with
    | [] -> ()
    | attrs ->
        Buffer.add_string b " {";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Printf.bprintf b "%s=%s" k v)
          attrs;
        Buffer.add_char b '}');
    Buffer.add_char b '\n';
    List.iter (pr (indent ^ "  "))
      (List.rev (try Hashtbl.find children s.id with Not_found -> []))
  in
  List.iter (pr "") (List.rev !roots);
  Buffer.contents b

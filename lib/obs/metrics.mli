(** Process-wide metrics: counters, gauges and log₂-bucketed
    histograms, with Prometheus text-exposition and JSON-snapshot
    exporters.

    Instruments are registered once by name (+ optional label pairs)
    and live for the process; registering the same name/labels again
    returns the existing instrument, so call sites in functors or
    loops need no caching discipline.  Recording is {e disabled by
    default}: a disabled [incr]/[add]/[set]/[observe] is one load and
    one branch, so instrumented hot paths cost nothing until an
    operator turns recording on with {!set_enabled}.  Reads
    ([value]/exporters) work regardless.

    Counters are domain-safe (atomics); gauges are word-sized writes;
    histograms take a per-instrument mutex (they are observed per
    stage or per solve, never per state). *)

val enabled : unit -> bool

val set_enabled : bool -> unit

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit
  (** Monotonic: [add t n] with [n < 0] is [Invalid_argument] (checked
      only when recording is enabled); [n = 0] is a no-op. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val max_ : t -> float -> unit
  (** Raise the gauge to [v] if below it — high-water marks (peak
      frontier, peak table load). *)

  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Buckets are powers of two: an observation [v] lands in the
      bucket with the least upper bound [2^e ≥ v] (exponents clamped
      to [-32, 31]; [v ≤ 0] lands in the lowest bucket). *)

  val count : t -> int

  val sum : t -> float

  val snapshot : t -> (float * int) list * int * float
  (** [(buckets, count, sum)] read atomically under the instrument's
      mutex: [buckets] are [(le, cumulative count)] pairs in ascending
      [le] order over the occupied prefix of power-of-two buckets
      (without the implicit [+Inf] bucket, whose count is [count]).
      The exporters build from this one consistent view, so a
      concurrent {!observe} can never tear a snapshot. *)
end

val counter : ?help:string -> ?labels:(string * string) list -> string -> Counter.t
(** Register (or retrieve) a counter.  [name] must match Prometheus
    conventions ([[a-zA-Z_:][a-zA-Z0-9_:]*]); [labels] are fixed at
    registration.  [Invalid_argument] if the name exists with a
    different instrument kind.  [help] is kept from the first
    registration. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram : ?help:string -> ?labels:(string * string) list -> string -> Histogram.t

val reset : unit -> unit
(** Zero every instrument's value (the registry itself is permanent). *)

val to_prometheus : unit -> string
(** Prometheus text exposition format, families in first-registration
    order: [# HELP] / [# TYPE] once per family, one sample line per
    label set; histograms expose cumulative [_bucket{le="..."}]
    samples over the non-empty power-of-two buckets plus [le="+Inf"],
    [_sum] and [_count]. *)

val to_json : unit -> string
(** One JSON object [{"counters": [...], "gauges": [...],
    "histograms": [...]}] snapshotting every instrument; bucket keys
    are the [le] upper bounds. *)

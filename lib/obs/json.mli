(** Minimal JSON string encoding, shared by every exporter in the
    library (span traces, metric snapshots, solver telemetry).

    Only the string production is here — the exporters assemble their
    own objects — because escaping is the one part that is easy to get
    subtly wrong ([Printf]'s [%S] emits OCaml lexical conventions,
    e.g. [\ddd] decimal escapes, which are not valid JSON). *)

val escape : string -> string
(** The body of a JSON string literal for [s]: every double quote,
    backslash and control character (U+0000–U+001F) escaped per RFC
    8259; bytes ≥ 0x80 pass through untouched (JSON strings carry raw
    UTF-8). *)

val string : string -> string
(** [string s] is [escape s] wrapped in double quotes — a complete
    JSON string token. *)

(** Lightweight hierarchical span tracing.

    A span is a named wall-clock interval with string attributes;
    spans nest lexically through {!with_}, and the per-domain nesting
    stack makes the tracer safe under the harness's parallel worker
    domains (each domain owns its own stack, the completed-span
    recorder is mutex-protected, and parent links never cross
    domains).

    Tracing is {e disabled by default}: a disabled {!with_} is one
    load, one branch and a tail call to the traced function, so
    instrumented code paths cost nothing in production.  Enable with
    {!set_enabled}, run the workload, then export:

    {ul
    {- {!to_chrome} — Chrome trace-event JSON, loadable in Perfetto
       ([ui.perfetto.dev]) or [chrome://tracing];}
    {- {!to_text} — an indented tree with durations and attributes,
       for terminal consumption.}}

    Timestamps come from {!Clock}, so a test-installed deterministic
    source makes both exporters byte-stable. *)

type t = {
  id : int;  (** unique, assigned at span start in start order *)
  parent : int;  (** enclosing span's [id], or [-1] for a root *)
  name : string;
  tid : int;  (** the domain the span ran on *)
  t0 : float;  (** {!Clock} time at entry *)
  t1 : float;  (** {!Clock} time at exit; [t1 >= t0] *)
  attrs : (string * string) list;
      (** creation attributes followed by {!add_attr} additions, in
          insertion order *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggling mid-span is safe: a span records iff its [with_] entry
    saw tracing enabled. *)

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f ()] inside a new span, a child of the
    innermost open span on the calling domain.  The span is recorded
    even when [f] raises (the exception is re-raised). *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span of the calling
    domain; a no-op when tracing is off or no span is open.  This is
    how solver telemetry (outcome, state counts) lands on the
    enclosing solve span. *)

val spans : unit -> t list
(** All completed spans, in [id] (start) order. *)

val reset : unit -> unit
(** Drop every recorded span and restart [id] numbering from 0.  Open
    spans on other domains still record on exit (with their old ids);
    call between workloads, not during one. *)

val to_chrome : unit -> string
(** Chrome trace-event JSON: one complete ("ph":"X") event per span,
    microsecond timestamps relative to the earliest span, [pid] 1,
    [tid] the domain id, attributes under ["args"].  Valid JSON for
    any span names/attribute strings. *)

val to_text : unit -> string
(** Indented forest, one line per span: name, duration in
    milliseconds, then [{k=v, …}] when attributes are present.
    Children are ordered by start; a span whose parent was still open
    at export time prints as a root. *)

(** Lightweight hierarchical span tracing with request-scoped trace
    contexts.

    A span is a named wall-clock interval with string attributes;
    spans nest lexically through {!with_}, and the per-domain nesting
    stack makes the tracer safe under the harness's parallel worker
    domains (each domain owns its own stack, the completed-span
    recorders are mutex-protected, and parent links never cross
    domains).

    Spans land in the calling domain's {e current context}.  By
    default that is the process-wide {!default_context} — the classic
    behavior CLI and bench runs rely on.  A server handling concurrent
    requests instead allocates a {!new_context} per request and runs
    the handler under {!with_current}: each request then gets a
    disjoint trace with its own id space (span ids restart at 0 per
    context, so equal requests produce equal traces) and parent links
    that cannot cross requests.

    Tracing is {e disabled by default}: a disabled {!with_} is one
    load, one branch and a tail call to the traced function, so
    instrumented code paths cost nothing in production.  Enable with
    {!set_enabled}, run the workload, then export:

    {ul
    {- {!to_chrome} — Chrome trace-event JSON, loadable in Perfetto
       ([ui.perfetto.dev]) or [chrome://tracing];}
    {- {!to_text} — an indented tree with durations and attributes,
       for terminal consumption.}}

    Timestamps come from {!Clock}, so a test-installed deterministic
    source makes both exporters byte-stable. *)

type t = {
  id : int;  (** unique within its context, assigned in start order *)
  parent : int;  (** enclosing span's [id], or [-1] for a root *)
  name : string;
  tid : int;  (** the domain the span ran on *)
  t0 : float;  (** {!Clock} time at entry *)
  t1 : float;  (** {!Clock} time at exit; [t1 >= t0] *)
  attrs : (string * string) list;
      (** creation attributes followed by {!add_attr} additions, in
          insertion order *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggling mid-span is safe: a span records iff its [with_] entry
    saw tracing enabled. *)

(** {1 Trace contexts} *)

type context
(** A trace id plus a private span recorder and id counter. *)

val default_context : context
(** The process-wide context (trace id 0) every domain starts in. *)

val new_context : unit -> context
(** A fresh context with a process-unique trace id (> 0). *)

val trace_id : context -> int

val current : unit -> context
(** The calling domain's current context. *)

val with_current : context -> (unit -> 'a) -> 'a
(** [with_current ctx f] runs [f ()] with [ctx] as the calling
    domain's current context and a fresh (empty) open-span stack, so
    spans opened inside [f] parent only among themselves.  The
    previous context and stack are restored on exit, even when [f]
    raises. *)

val context_spans : context -> t list
(** Completed spans of one context, in [id] (start) order. *)

val context_reset : context -> unit

val context_to_chrome : context -> string
(** Chrome trace-event JSON of one context; [pid] is the trace id. *)

val add_chrome_events :
  Buffer.t -> pid:int -> epoch:float -> first:bool ref -> t list -> unit
(** Append one complete ("ph":"X") Chrome trace event per span to the
    buffer — the building block multi-trace exporters (the flight
    recorder) use to merge several contexts into one document.
    [first] tracks whether a comma separator is still owed. *)

val chrome_epoch : t list -> float
(** Earliest [t0] of the spans, or [0.] when empty — the timestamp
    origin for {!add_chrome_events}. *)

(** {1 Recording} *)

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f ()] inside a new span, a child of the
    innermost open span on the calling domain, recorded into the
    calling domain's current context.  The span is recorded even when
    [f] raises (the exception is re-raised). *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span of the calling
    domain; a no-op when tracing is off or no span is open.  This is
    how solver telemetry (outcome, state counts) lands on the
    enclosing solve span. *)

(** {1 Process-wide API (the default context)} *)

val spans : unit -> t list
(** All completed spans of {!default_context}, in [id] (start)
    order. *)

val reset : unit -> unit
(** Drop every recorded span of {!default_context} and restart its
    [id] numbering from 0.  Open spans on other domains still record
    on exit (with their old ids); call between workloads, not during
    one. *)

val to_chrome : unit -> string
(** Chrome trace-event JSON of {!default_context}: one complete
    ("ph":"X") event per span, microsecond timestamps relative to the
    earliest span, [tid] the domain id, attributes under ["args"].
    Valid JSON for any span names/attribute strings. *)

val to_text : unit -> string
(** Indented forest, one line per span: name, duration in
    milliseconds, then [{k=v, …}] when attributes are present.
    Children are ordered by start; a span whose parent was still open
    at export time prints as a root. *)

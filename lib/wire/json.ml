type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer *)

let add_float b f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    (* JSON has no NaN/Inf; null is the conventional degradation *)
    Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* integral floats print without the exponent noise *)
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (Prbp_obs.Json.escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (Prbp_obs.Json.escape k);
          Buffer.add_string b "\":";
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent, depth-capped, exception-free interface. *)

exception Fail of string

let max_depth = 100

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "byte %d: %s" !pos msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let wl = String.length word in
    if !pos + wl <= len && String.sub s !pos wl = word then begin
      pos := !pos + wl;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= len then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   (* high surrogate: a \uXXXX low surrogate must follow *)
                   if
                     !pos + 2 <= len && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then
                       fail "bad low surrogate";
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   end
                   else fail "lone high surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then
                   fail "lone low surrogate"
                 else cp
               in
               add_utf8 b cp
           | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | '\000' .. '\031' -> fail "raw control character in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < len
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_int =
      String.for_all (function '0' .. '9' | '-' -> true | _ -> false) tok
    in
    if is_int then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* out of int range: degrade to float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let items = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            items := (k, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !items)
        end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg
  | exception Stack_overflow -> Error "nesting too deep"

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

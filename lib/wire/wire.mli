(** The versioned wire schema ([{"v":1}]) shared by every JSON emitter
    and consumer in the system: [pebble_cli --json]/[--trace], the
    [prbpd] daemon, the bench load generator and the bracket rows of
    [BENCH_solver.json] all speak exactly these records.

    Four record families, each with an encoder and a decoder that
    round-trip ([decode (encode x) = Ok x]):

    - {e requests} — a DAG plus game, capacity, variant flags, budget
      and delivery options ({!request});
    - {e outcomes} — the anytime solve verdict with its certified
      interval, stats and optional strategy certificate ({!outcome});
    - {e certificates} — the bracket record with both bounds, rule
      attribution and the verified move list ({!bracket});
    - {e telemetry} — the {!Prbp_solver.Solver.Telemetry} events as
      JSON lines ({!encode_event}/{!jsonl}).

    Encoders are deterministic: equal values encode to equal bytes
    (what makes "a cache hit returns the byte-identical certificate"
    testable).  Decoders are total and hardened — any malformed input
    is an [Error], never an exception — because the daemon feeds them
    straight from the network. *)

val version : int
(** [1].  Every encoded record carries ["v":1]; decoders reject other
    versions with a distinct error message. *)

val bench_schema : string
(** ["prbp-solver-bench/v10"] — the [BENCH_solver.json] schema tag this
    wire release pairs with.  Single-sourced here so the bench writer,
    the regression gate and the daemon's [/healthz] body can never
    disagree. *)

(** {1 Vocabulary} *)

type game =
  | Rbp
  | Prbp
  | Black  (** black pebbling feasibility at capacity [r] *)
  | Multi_rbp of int  (** RBP-MC with [p] processors *)
  | Multi_prbp of int

val game_label : game -> string
(** ["rbp"] | ["prbp"] | ["black"] | ["multi-rbp:P"] | ["multi-prbp:P"]. *)

val game_of_label : string -> (game, string) result

type variants = { sliding : bool; recompute : bool; no_delete : bool }

val no_variants : variants

type budget = {
  max_states : int option;
  max_millis : int option;
  max_words : int option;
}
(** The wire projection of {!Prbp_solver.Solver.Budget.t}: the three
    externally meaningful caps.  [None] everywhere means the server's
    defaults. *)

val no_budget : budget

val budget_class : budget -> string
(** The cache-key quantization of a budget: each set cap contributes
    its power-of-two bucket (so near-identical budgets share cache
    entries), unset caps contribute ["_"].  E.g. ["s22:m13:w_"]. *)

(** {1 Requests} *)

type kind = Solve | Bracket | Frontier

type request = {
  v : int;
  kind : kind;
  game : game;
  r : int;
  variants : variants;
  budget : budget;
  want_strategy : bool;  (** include the move-list certificate *)
  stream : bool;  (** stream telemetry as JSON-lines before the result *)
  rules : string list option;  (** bracket only: restrict {!Prbp_bounds.Lower} *)
  rs : int list option;
      (** frontier only: the capacities to sweep; [None] means just
          [r] *)
  dag : Prbp_dag.Dag.t;
}

val request :
  ?variants:variants ->
  ?budget:budget ->
  ?want_strategy:bool ->
  ?stream:bool ->
  ?rules:string list ->
  ?rs:int list ->
  kind:kind ->
  game:game ->
  r:int ->
  Prbp_dag.Dag.t ->
  request
(** Smart constructor: [v = version], flags default to false. *)

val encode_request : request -> string

val decode_request : string -> (request, string) result
(** Rejects [v <> 1], unknown games/kinds, negative [r], and any DAG
    payload {!Prbp_dag.Dag.make} refuses (cycles, duplicate edges,
    out-of-range endpoints). *)

(** {1 Strategies} *)

type strategy =
  | Rbp_strategy of Prbp_pebble.Move.R.t list
  | Prbp_strategy of Prbp_pebble.Move.P.t list
  | Multi_rbp_strategy of int * Prbp_pebble.Multi.Move.rbp list
      (** processor count, then moves; each move's JSON carries the
          acting processor as ["q"] *)
  | Multi_prbp_strategy of int * Prbp_pebble.Multi.Move.prbp list
      (** the move-list certificate, tagged by move vocabulary (black
          strategies have no wire form and are omitted) *)

(** {1 Outcomes} *)

type outcome = {
  v : int;
  game : game;
  r : int;
  variants : variants;
  dag_hash : string;  (** {!Prbp_dag.Dag.hash} of the solved DAG *)
  n : int;
  m : int;
  status : [ `Optimal | `Bounded | `Unsolvable ];
  lower : int;  (** [= upper = OPT] when optimal *)
  upper : int option;
  stopped : string option;  (** {!Prbp_solver.Solver.reason_label} *)
  strategy : strategy option;
  stats : Prbp_solver.Solver.stats;
  curve : Prbp_solver.Solver.Convergence.curve;
      (** how the certified interval tightened over the solve; [[]]
          when the producer did not record one.  Encoded as compact
          [[t_s, lower, upper]] triples ([null] upper before an
          incumbent exists); absent on the wire when empty, so
          pre-curve records still round-trip. *)
}

val outcome_of :
  game:game ->
  r:int ->
  ?variants:variants ->
  ?strategy:strategy ->
  ?curve:Prbp_solver.Solver.Convergence.curve ->
  dag:Prbp_dag.Dag.t ->
  _ Prbp_solver.Solver.outcome ->
  outcome
(** Project a solver outcome onto the wire (the caller extracts the
    typed strategy, if any, since move types are per game; [curve]
    likewise rides in from a {!Prbp_solver.Solver.Convergence}
    recorder the caller owns, default [[]]). *)

val encode_outcome : outcome -> string

val decode_outcome : string -> (outcome, string) result

(** {1 Bracket certificates} *)

type bracket = {
  v : int;
  family : string option;
  game : game;  (** {!Rbp} or {!Prbp} only *)
  r : int;
  n : int;
  m : int;
  lower : int;
  lower_rule : string;
  upper : int;
  upper_rule : string;
  verifier : string;  (** ["literal"] | ["engine"] *)
  tight : bool;
  width : int;
  rules : (string * int) list;  (** per-rule attribution, (label, bound) *)
  profile_classes : int option;
  strategy : strategy option;  (** the verified moves achieving [upper] *)
  curve : Prbp_solver.Solver.Convergence.curve;
      (** the bracket's stage-boundary convergence curve
          ({!Prbp_bounds.Bracket.t.curve}); its final point equals
          [(elapsed_s, lower, Some upper)] *)
  elapsed_s : float;
}

val bracket_of :
  ?family:string -> ?with_moves:bool -> Prbp_bounds.Bracket.t -> bracket
(** [with_moves] (default false) embeds the verified strategy — the
    re-checkable certificate the daemon caches and serves. *)

val encode_bracket : bracket -> string
(** One object (no trailing newline) carrying ["kind":"bracket"] plus
    the historical row fields ([family], [game], [r], [lower], [rule],
    [lower_rule], [upper], [method], [upper_rule], [verifier],
    [tight], [interval_width], [rules], [profile_classes],
    [elapsed_s]) — the row format of [BENCH_solver.json] and
    [pebble_cli bracket --json], still parsed by
    {!Prbp_harness.Regression}. *)

val decode_bracket : string -> (bracket, string) result

(** {1 Frontier certificates} *)

type frontier_point = {
  p : int;
  r : int;
  comm_lower : int;
  comm_upper : int option;
  time_lower : int;
  time_upper : int option;
  status : [ `Exact | `Bracketed ];
  source : string;
  verified : bool;
  settled : bool;
  dominated : bool;
  strategy : strategy option;
      (** the witness ({!Multi_rbp_strategy} / {!Multi_prbp_strategy})
          jointly achieving [comm_upper] and [time_upper] *)
  curve : Prbp_solver.Solver.Convergence.curve;
      (** the probe's communication-interval convergence curve,
          probe-relative seconds *)
}
(** One swept capacity of a {!Prbp_frontier.Frontier.t}. *)

type frontier = {
  v : int;
  family : string option;
  game : game;  (** {!Multi_rbp} or {!Multi_prbp} *)
  dag_hash : string;
  n : int;
  m : int;
  model : string;  (** the {!Prbp_frontier.Cost_model} name *)
  points : frontier_point list;
  infeasible_rs : int list;
  exhausted : bool;
  elapsed_s : float;
}

val frontier_of :
  ?family:string ->
  ?with_moves:bool ->
  dag:Prbp_dag.Dag.t ->
  Prbp_frontier.Frontier.t ->
  frontier
(** [with_moves] (default false) embeds each point's witness strategy
    — the re-checkable certificates the daemon caches and serves. *)

val encode_frontier : frontier -> string
(** One object carrying ["kind":"frontier"] plus the derived row
    metrics ([points_n], [front_n], [open_n], [front_width] — the
    summed communication interval widths) that the
    {!Prbp_harness.Regression} gate compares, with [elapsed_s] as the
    final field so golden-file comparisons can normalize it. *)

val decode_frontier : string -> (frontier, string) result

(** {1 Telemetry} *)

val encode_event : Prbp_solver.Solver.Telemetry.event -> string
(** One JSON object, no trailing newline, ["v":1] first.  Progress
    payloads carry the certified [lower] bound and (when an incumbent
    exists) the [upper] bound alongside the search counters. *)

val decode_event :
  string -> (Prbp_solver.Solver.Telemetry.event, string) result
(** Tolerant of pre-curve traces: a progress payload without [lower]
    decodes as [lower = 0] (the weakest certified statement) and a
    missing [upper] as [None]. *)

val jsonl :
  ?every:int -> out_channel -> Prbp_solver.Solver.Telemetry.sink
(** JSON-lines emitter: one {!encode_event} line per event ([Stop]
    events flush the channel) — the sink behind [pebble_cli --trace]. *)

(** {1 Daemon status} *)

type req = {
  trace_id : int;  (** the request's {!Prbp_obs.Span} trace id *)
  route : string;
  status : int;  (** HTTP status served *)
  cache : string;  (** ["hit"] | ["miss"] | ["-"] *)
  dur_s : float;
  outcome : string;  (** solve status, or ["-"] for non-solve routes *)
}
(** One finished request, as the flight recorder remembers it. *)

type route_stat = {
  route : string;
  count : int;
  sum_s : float;
  buckets : (float * int) list;
      (** latency histogram: [(le, cumulative count)] in ascending
          [le] order, the +Inf bucket implied by [count] *)
}

type status_report = {
  v : int;
  uptime_s : float;
  workers : int;
  in_flight : int;  (** requests being served right now *)
  queued : int;  (** accepted connections waiting for a worker *)
  requests_total : int;
  cache_hits : int;
  cache_misses : int;
  flight_seen : int;  (** requests the flight recorder has recorded *)
  flight_capacity : int;
  routes : route_stat list;  (** per-route latency, registration order *)
  recent : req list;  (** newest first *)
  slowest : req list;  (** slowest first; spans retained server-side *)
}
(** The body of [GET /v1/status] — a live snapshot of the daemon. *)

val status_report :
  uptime_s:float ->
  workers:int ->
  in_flight:int ->
  queued:int ->
  requests_total:int ->
  cache_hits:int ->
  cache_misses:int ->
  flight_seen:int ->
  flight_capacity:int ->
  routes:route_stat list ->
  recent:req list ->
  slowest:req list ->
  unit ->
  status_report
(** Smart constructor, [v = version]. *)

val encode_status : status_report -> string
(** One object carrying ["kind":"status"]. *)

val decode_status : string -> (status_report, string) result

(** {1 Health} *)

type healthz = {
  v : int;
  wire : int;  (** = {!version} *)
  bench : string;  (** = {!bench_schema} *)
  uptime_s : float;
}
(** The body of [GET /healthz]: enough for a probe to check liveness
    {e and} that it is talking to a compatible schema generation. *)

val healthz : uptime_s:float -> healthz

val encode_healthz : healthz -> string
(** One object carrying ["kind":"healthz"]. *)

val decode_healthz : string -> (healthz, string) result

(** {1 Errors} *)

val encode_error : ?code:string -> string -> string
(** [{"v":1,"error":"...","code":"..."}] — the daemon's error body.
    [code] (omitted when absent, keeping historical bodies
    byte-identical) is a stable machine-readable discriminator, e.g.
    ["invalid-argument"] for requests the solvers structurally
    reject. *)

val decode_error : string -> string option
(** The ["error"] field of an error body, if that is what this is. *)

val decode_error_code : string -> string option
(** The ["code"] field of an error body, when present. *)

(** Minimal JSON values, parser and printer — the substrate of the
    versioned wire schema ({!Wire}).

    Deliberately tiny and dependency-free: the wire records only need
    objects, arrays, strings, booleans and numbers.  Integers are kept
    exact (node ids, costs and state counts must survive a round
    trip); floats print with enough digits to round-trip a double.
    The parser is hardened for server use: malformed input is an
    [Error], never an exception, and nesting depth is capped. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace), object fields in list order.
    Deterministic: equal values render to equal bytes. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  Numbers without ['.'], ['e'] or ['E'] that
    fit in an OCaml [int] parse as {!Int}, everything else as
    {!Float}.  [\uXXXX] escapes decode to UTF-8 (surrogate pairs
    included).  Nesting deeper than 100 levels is an error. *)

(** {1 Accessors} — total, for decoder plumbing. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k]; [None] otherwise. *)

val to_int : t -> int option
(** {!Int}, or a {!Float} with an exact integer value. *)

val to_float : t -> float option

val to_bool : t -> bool option

val to_str : t -> string option

val to_list : t -> t list option

module Dag = Prbp_dag.Dag
module Move = Prbp_pebble.Move
module Multi = Prbp_pebble.Multi
module Solver = Prbp_solver.Solver
module Bracket = Prbp_bounds.Bracket
module Lower = Prbp_bounds.Lower
module Upper = Prbp_bounds.Upper
module Segment = Prbp_bounds.Segment
module Multi_bounds = Prbp_bounds.Multi_bounds
module Frontier = Prbp_frontier.Frontier

let version = 1

(* the BENCH_solver.json schema this wire release pairs with; bumped
   whenever the row format gains fields the regression gate compares *)
let bench_schema = "prbp-solver-bench/v10"

(* ------------------------------------------------------------------ *)
(* Decoder plumbing.  Decoders thread a [(_, string) result] monad so
   every failure carries the field that caused it. *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_ what conv name j =
  let* v = field name j in
  match conv v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "field %S: expected %s" name what)

let int_field = as_ "an integer" Json.to_int

let float_field = as_ "a number" Json.to_float

let bool_field = as_ "a boolean" Json.to_bool

let str_field = as_ "a string" Json.to_str

let list_field = as_ "an array" Json.to_list

let flag name j =
  (* absent boolean flags read as false, so clients can omit them *)
  match Json.member name j with
  | Some v -> (
      match Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S: expected a boolean" name))
  | None -> Ok false

let opt_conv what conv name j =
  match Json.member name j with
  | Some Json.Null | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S: expected %s" name what))

let opt_int = opt_conv "an integer" Json.to_int

let opt_str = opt_conv "a string" Json.to_str

let check_version j =
  let* v = int_field "v" j in
  if v = version then Ok ()
  else Error (Printf.sprintf "unsupported wire version %d (want %d)" v version)

let parse s =
  match Json.of_string s with
  | Ok j -> Ok j
  | Error e -> Error ("invalid JSON: " ^ e)

let rec map_m f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_m f xs in
      Ok (y :: ys)

(* ------------------------------------------------------------------ *)
(* Vocabulary *)

type game = Rbp | Prbp | Black | Multi_rbp of int | Multi_prbp of int

let game_label = function
  | Rbp -> "rbp"
  | Prbp -> "prbp"
  | Black -> "black"
  | Multi_rbp p -> Printf.sprintf "multi-rbp:%d" p
  | Multi_prbp p -> Printf.sprintf "multi-prbp:%d" p

let game_of_label s =
  let multi prefix mk =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      match int_of_string_opt (String.sub s pl (String.length s - pl)) with
      | Some p when p >= 1 -> Some (Ok (mk p))
      | _ -> Some (Error (Printf.sprintf "bad processor count in %S" s))
    else None
  in
  match s with
  | "rbp" -> Ok Rbp
  | "prbp" -> Ok Prbp
  | "black" -> Ok Black
  | _ -> (
      match multi "multi-rbp:" (fun p -> Multi_rbp p) with
      | Some r -> r
      | None -> (
          match multi "multi-prbp:" (fun p -> Multi_prbp p) with
          | Some r -> r
          | None -> Error (Printf.sprintf "unknown game %S" s)))

let game_field j =
  let* s = str_field "game" j in
  game_of_label s

type variants = { sliding : bool; recompute : bool; no_delete : bool }

let no_variants = { sliding = false; recompute = false; no_delete = false }

let variants_json v =
  Json.Obj
    [
      ("sliding", Json.Bool v.sliding);
      ("recompute", Json.Bool v.recompute);
      ("no_delete", Json.Bool v.no_delete);
    ]

let variants_field j =
  match Json.member "variants" j with
  | Some Json.Null | None -> Ok no_variants
  | Some vj ->
      let* sliding = flag "sliding" vj in
      let* recompute = flag "recompute" vj in
      let* no_delete = flag "no_delete" vj in
      Ok { sliding; recompute; no_delete }

type budget = {
  max_states : int option;
  max_millis : int option;
  max_words : int option;
}

let no_budget = { max_states = None; max_millis = None; max_words = None }

let budget_json b =
  Json.Obj
    (List.filter_map
       (fun (k, v) -> Option.map (fun i -> (k, Json.Int i)) v)
       [
         ("max_states", b.max_states);
         ("max_millis", b.max_millis);
         ("max_words", b.max_words);
       ])

let budget_field j =
  match Json.member "budget" j with
  | Some Json.Null | None -> Ok no_budget
  | Some bj ->
      let* max_states = opt_int "max_states" bj in
      let* max_millis = opt_int "max_millis" bj in
      let* max_words = opt_int "max_words" bj in
      Ok { max_states; max_millis; max_words }

let budget_class b =
  (* power-of-two bucket per cap: v and v' share a bucket iff the
     smallest power of two >= max(v,1) coincides *)
  let bucket tag = function
    | None -> tag ^ "_"
    | Some v ->
        let bits = ref 0 and x = ref 1 in
        while !x < v do
          incr bits;
          x := !x * 2
        done;
        Printf.sprintf "%s%d" tag !bits
  in
  String.concat ":"
    [
      bucket "s" b.max_states; bucket "m" b.max_millis; bucket "w" b.max_words;
    ]

(* ------------------------------------------------------------------ *)
(* DAG payload *)

let default_name i = "v" ^ string_of_int i

let dag_json g =
  let n = Dag.n_nodes g in
  let edges =
    List.map (fun (u, v) -> Json.List [ Json.Int u; Json.Int v ]) (Dag.edges g)
  in
  let base = [ ("nodes", Json.Int n); ("edges", Json.List edges) ] in
  let named =
    (* Dag only exposes resolved names; serialize them iff any differ
       from the positional default *)
    let custom = ref false in
    for i = 0 to n - 1 do
      if Dag.name g i <> default_name i then custom := true
    done;
    if !custom then
      base
      @ [
          ( "names",
            Json.List (List.init n (fun i -> Json.String (Dag.name g i))) );
        ]
    else base
  in
  match Dag.family g with
  | Some f -> Json.Obj (named @ [ ("family", Json.String f) ])
  | None -> Json.Obj named

let dag_of_json j =
  let* n = int_field "nodes" j in
  if n < 0 then Error "field \"nodes\": negative"
  else
    let* edges_j = list_field "edges" j in
    let* edges =
      map_m
        (fun e ->
          match e with
          | Json.List [ u; v ] -> (
              match (Json.to_int u, Json.to_int v) with
              | Some u, Some v -> Ok (u, v)
              | _ -> Error "field \"edges\": endpoints must be integers")
          | _ -> Error "field \"edges\": expected [u,v] pairs")
        edges_j
    in
    let* names =
      match Json.member "names" j with
      | Some Json.Null | None -> Ok None
      | Some (Json.List l) when List.length l = n ->
          let* names =
            map_m
              (fun s ->
                match Json.to_str s with
                | Some s -> Ok s
                | None -> Error "field \"names\": expected strings")
              l
          in
          Ok (Some (Array.of_list names))
      | Some _ -> Error "field \"names\": expected an array of length nodes"
    in
    let* family = opt_str "family" j in
    match Dag.make ?names ?family ~n edges with
    | g -> Ok g
    | exception Invalid_argument e -> Error ("invalid DAG: " ^ e)
    | exception Dag.Cycle _ -> Error "invalid DAG: contains a cycle"

(* ------------------------------------------------------------------ *)
(* Requests *)

type kind = Solve | Bracket | Frontier

let kind_label = function
  | Solve -> "solve"
  | Bracket -> "bracket"
  | Frontier -> "frontier"

let kind_of_label = function
  | "solve" -> Ok Solve
  | "bracket" -> Ok Bracket
  | "frontier" -> Ok Frontier
  | s -> Error (Printf.sprintf "unknown request kind %S" s)

type request = {
  v : int;
  kind : kind;
  game : game;
  r : int;
  variants : variants;
  budget : budget;
  want_strategy : bool;
  stream : bool;
  rules : string list option;
  rs : int list option;
  dag : Dag.t;
}

let request ?(variants = no_variants) ?(budget = no_budget)
    ?(want_strategy = false) ?(stream = false) ?rules ?rs ~kind ~game ~r dag =
  { v = version; kind; game; r; variants; budget; want_strategy; stream;
    rules; rs; dag }

let encode_request rq =
  Json.to_string
    (Json.Obj
       ([
          ("v", Json.Int rq.v);
          ("kind", Json.String (kind_label rq.kind));
          ("game", Json.String (game_label rq.game));
          ("r", Json.Int rq.r);
          ("variants", variants_json rq.variants);
          ("budget", budget_json rq.budget);
          ("want_strategy", Json.Bool rq.want_strategy);
          ("stream", Json.Bool rq.stream);
        ]
       @ (match rq.rules with
         | None -> []
         | Some rs ->
             [ ("rules", Json.List (List.map (fun r -> Json.String r) rs)) ])
       @ (match rq.rs with
         | None -> []
         | Some rs -> [ ("rs", Json.List (List.map (fun r -> Json.Int r) rs)) ])
       @ [ ("dag", dag_json rq.dag) ]))

let decode_request s =
  let* j = parse s in
  let* () = check_version j in
  let* kind =
    let* k = str_field "kind" j in
    kind_of_label k
  in
  let* game = game_field j in
  let* r = int_field "r" j in
  if r < 0 then Error "field \"r\": negative"
  else
    let* variants = variants_field j in
    let* budget = budget_field j in
    let* want_strategy = flag "want_strategy" j in
    let* stream = flag "stream" j in
    let* rules =
      match Json.member "rules" j with
      | Some Json.Null | None -> Ok None
      | Some (Json.List l) ->
          let* rs =
            map_m
              (fun s ->
                match Json.to_str s with
                | Some s -> Ok s
                | None -> Error "field \"rules\": expected strings")
              l
          in
          Ok (Some rs)
      | Some _ -> Error "field \"rules\": expected an array"
    in
    let* rs =
      match Json.member "rs" j with
      | Some Json.Null | None -> Ok None
      | Some (Json.List l) ->
          let* rs =
            map_m
              (fun x ->
                match Json.to_int x with
                | Some i when i >= 1 -> Ok i
                | Some _ -> Error "field \"rs\": capacities must be >= 1"
                | None -> Error "field \"rs\": expected integers")
              l
          in
          Ok (Some rs)
      | Some _ -> Error "field \"rs\": expected an array"
    in
    let* dag_j = field "dag" j in
    let* dag = dag_of_json dag_j in
    Ok { v = version; kind; game; r; variants; budget; want_strategy; stream;
         rules; rs; dag }

(* ------------------------------------------------------------------ *)
(* Strategies *)

type strategy =
  | Rbp_strategy of Move.R.t list
  | Prbp_strategy of Move.P.t list
  | Multi_rbp_strategy of int * Multi.Move.rbp list
  | Multi_prbp_strategy of int * Multi.Move.prbp list

let op op fields = Json.Obj (("op", Json.String op) :: fields)

let v_field v = [ ("v", Json.Int v) ]

let uv_fields u v = [ ("u", Json.Int u); ("v", Json.Int v) ]

let rbp_move_json : Move.R.t -> Json.t = function
  | Load v -> op "load" (v_field v)
  | Save v -> op "save" (v_field v)
  | Compute v -> op "compute" (v_field v)
  | Delete v -> op "delete" (v_field v)
  | Slide (u, v) -> op "slide" (uv_fields u v)

let prbp_move_json : Move.P.t -> Json.t = function
  | Load v -> op "load" (v_field v)
  | Save v -> op "save" (v_field v)
  | Compute (u, v) -> op "compute" (uv_fields u v)
  | Delete v -> op "delete" (v_field v)
  | Clear v -> op "clear" (v_field v)

let rbp_move_of_json j =
  let* o = str_field "op" j in
  match o with
  | "load" ->
      let* v = int_field "v" j in
      Ok (Move.R.Load v)
  | "save" ->
      let* v = int_field "v" j in
      Ok (Move.R.Save v)
  | "compute" ->
      let* v = int_field "v" j in
      Ok (Move.R.Compute v)
  | "delete" ->
      let* v = int_field "v" j in
      Ok (Move.R.Delete v)
  | "slide" ->
      let* u = int_field "u" j in
      let* v = int_field "v" j in
      Ok (Move.R.Slide (u, v))
  | o -> Error (Printf.sprintf "unknown rbp move op %S" o)

(* multiprocessor moves carry the acting processor as "q" *)
let q_field q = ("q", Json.Int q)

let multi_rbp_move_json : Multi.Move.rbp -> Json.t = function
  | Load (q, v) -> op "load" (q_field q :: v_field v)
  | Save (q, v) -> op "save" (q_field q :: v_field v)
  | Compute (q, v) -> op "compute" (q_field q :: v_field v)
  | Delete (q, v) -> op "delete" (q_field q :: v_field v)

let multi_prbp_move_json : Multi.Move.prbp -> Json.t = function
  | Load (q, v) -> op "load" (q_field q :: v_field v)
  | Save (q, v) -> op "save" (q_field q :: v_field v)
  | Compute (q, (u, v)) -> op "compute" (q_field q :: uv_fields u v)
  | Delete (q, v) -> op "delete" (q_field q :: v_field v)

let multi_rbp_move_of_json j : (Multi.Move.rbp, string) result =
  (* annotate each arm: rbp and prbp constructors share names, and the
     prbp ones (declared later) would otherwise win disambiguation *)
  let ok (m : Multi.Move.rbp) = Ok m in
  let* o = str_field "op" j in
  let* q = int_field "q" j in
  if q < 0 then Error "field \"q\": negative"
  else
    match o with
    | "load" ->
        let* v = int_field "v" j in
        ok (Multi.Move.Load (q, v))
    | "save" ->
        let* v = int_field "v" j in
        ok (Multi.Move.Save (q, v))
    | "compute" ->
        let* v = int_field "v" j in
        ok (Multi.Move.Compute (q, v))
    | "delete" ->
        let* v = int_field "v" j in
        ok (Multi.Move.Delete (q, v))
    | o -> Error (Printf.sprintf "unknown multi-rbp move op %S" o)

let multi_prbp_move_of_json j : (Multi.Move.prbp, string) result =
  let* o = str_field "op" j in
  let* q = int_field "q" j in
  if q < 0 then Error "field \"q\": negative"
  else
    match o with
    | "load" ->
        let* v = int_field "v" j in
        Ok (Multi.Move.Load (q, v))
    | "save" ->
        let* v = int_field "v" j in
        Ok (Multi.Move.Save (q, v))
    | "compute" ->
        let* u = int_field "u" j in
        let* v = int_field "v" j in
        Ok (Multi.Move.Compute (q, (u, v)))
    | "delete" ->
        let* v = int_field "v" j in
        Ok (Multi.Move.Delete (q, v))
    | o -> Error (Printf.sprintf "unknown multi-prbp move op %S" o)

let prbp_move_of_json j =
  let* o = str_field "op" j in
  match o with
  | "load" ->
      let* v = int_field "v" j in
      Ok (Move.P.Load v)
  | "save" ->
      let* v = int_field "v" j in
      Ok (Move.P.Save v)
  | "compute" ->
      let* u = int_field "u" j in
      let* v = int_field "v" j in
      Ok (Move.P.Compute (u, v))
  | "delete" ->
      let* v = int_field "v" j in
      Ok (Move.P.Delete v)
  | "clear" ->
      let* v = int_field "v" j in
      Ok (Move.P.Clear v)
  | o -> Error (Printf.sprintf "unknown prbp move op %S" o)

let strategy_json = function
  | Rbp_strategy ms ->
      Json.Obj
        [
          ("game", Json.String "rbp");
          ("moves", Json.List (List.map rbp_move_json ms));
        ]
  | Prbp_strategy ms ->
      Json.Obj
        [
          ("game", Json.String "prbp");
          ("moves", Json.List (List.map prbp_move_json ms));
        ]
  | Multi_rbp_strategy (p, ms) ->
      Json.Obj
        [
          ("game", Json.String (game_label (Multi_rbp p)));
          ("moves", Json.List (List.map multi_rbp_move_json ms));
        ]
  | Multi_prbp_strategy (p, ms) ->
      Json.Obj
        [
          ("game", Json.String (game_label (Multi_prbp p)));
          ("moves", Json.List (List.map multi_prbp_move_json ms));
        ]

let strategy_of_json j =
  let* g = str_field "game" j in
  let* ms = list_field "moves" j in
  match g with
  | "rbp" ->
      let* moves = map_m rbp_move_of_json ms in
      Ok (Rbp_strategy moves)
  | "prbp" ->
      let* moves = map_m prbp_move_of_json ms in
      Ok (Prbp_strategy moves)
  | g -> (
      match game_of_label g with
      | Ok (Multi_rbp p) ->
          let* moves = map_m multi_rbp_move_of_json ms in
          Ok (Multi_rbp_strategy (p, moves))
      | Ok (Multi_prbp p) ->
          let* moves = map_m multi_prbp_move_of_json ms in
          Ok (Multi_prbp_strategy (p, moves))
      | _ -> Error (Printf.sprintf "unknown strategy game %S" g))

let opt_strategy_field j =
  match Json.member "strategy" j with
  | Some Json.Null | None -> Ok None
  | Some sj ->
      let* s = strategy_of_json sj in
      Ok (Some s)

(* ------------------------------------------------------------------ *)
(* Outcomes *)

let stats_json (s : Solver.stats) =
  Json.Obj
    [
      ("explored", Json.Int s.explored);
      ("pruned", Json.Int s.pruned);
      ("expansions", Json.Int s.expansions);
      ("frontier", Json.Int s.frontier);
      ("elapsed_s", Json.Float s.elapsed_s);
      ("mem_words", Json.Int s.mem_words);
      ("prune_disabled", Json.Bool s.prune_disabled);
      ("spilled", Json.Int s.spilled);
    ]

let stats_of_json j : (Solver.stats, string) result =
  let* explored = int_field "explored" j in
  let* pruned = int_field "pruned" j in
  let* expansions = int_field "expansions" j in
  let* frontier = int_field "frontier" j in
  let* elapsed_s = float_field "elapsed_s" j in
  let* mem_words = int_field "mem_words" j in
  let* prune_disabled = bool_field "prune_disabled" j in
  let* spilled = int_field "spilled" j in
  Ok
    {
      Solver.explored;
      pruned;
      expansions;
      frontier;
      elapsed_s;
      mem_words;
      prune_disabled;
      spilled;
    }

(* convergence curves ride as compact triples [t_s, lower, upper],
   with [null] for a missing upper bound; absent or null curves decode
   as [] so every v1 record before the field existed still parses *)
let curve_json (c : Solver.Convergence.curve) =
  Json.List
    (List.map
       (fun (pt : Solver.Convergence.point) ->
         Json.List
           [
             Json.Float pt.Solver.Convergence.t_s;
             Json.Int pt.Solver.Convergence.lower;
             (match pt.Solver.Convergence.upper with
             | Some u -> Json.Int u
             | None -> Json.Null);
           ])
       c)

let curve_field j : (Solver.Convergence.curve, string) result =
  match Json.member "curve" j with
  | Some Json.Null | None -> Ok []
  | Some (Json.List l) ->
      map_m
        (fun pj ->
          match pj with
          | Json.List [ t; lo; up ] -> (
              match (Json.to_float t, Json.to_int lo) with
              | Some t_s, Some lower -> (
                  match up with
                  | Json.Null ->
                      Ok { Solver.Convergence.t_s; lower; upper = None }
                  | _ -> (
                      match Json.to_int up with
                      | Some u ->
                          Ok
                            {
                              Solver.Convergence.t_s;
                              lower;
                              upper = Some u;
                            }
                      | None ->
                          Error
                            "field \"curve\": upper must be an integer or \
                             null"))
              | _ -> Error "field \"curve\": expected [t_s, lower, upper]")
          | _ -> Error "field \"curve\": expected [t_s, lower, upper] triples")
        l
  | Some _ -> Error "field \"curve\": expected an array"

type outcome = {
  v : int;
  game : game;
  r : int;
  variants : variants;
  dag_hash : string;
  n : int;
  m : int;
  status : [ `Optimal | `Bounded | `Unsolvable ];
  lower : int;
  upper : int option;
  stopped : string option;
  strategy : strategy option;
  stats : Solver.stats;
  curve : Solver.Convergence.curve;
}

let status_label = function
  | `Optimal -> "optimal"
  | `Bounded -> "bounded"
  | `Unsolvable -> "unsolvable"

let status_of_label = function
  | "optimal" -> Ok `Optimal
  | "bounded" -> Ok `Bounded
  | "unsolvable" -> Ok `Unsolvable
  | s -> Error (Printf.sprintf "unknown status %S" s)

let outcome_of ~game ~r ?(variants = no_variants) ?strategy ?(curve = [])
    ~dag (oc : _ Solver.outcome) =
  let dag_hash = Dag.hash dag in
  let n = Dag.n_nodes dag and m = Dag.n_edges dag in
  let base status lower upper stopped stats =
    { v = version; game; r; variants; dag_hash; n; m; status; lower; upper;
      stopped; strategy; stats; curve }
  in
  match oc with
  | Solver.Optimal { cost; stats; _ } ->
      base `Optimal cost (Some cost) None stats
  | Solver.Bounded { lower; upper; stats; stopped; _ } ->
      base `Bounded lower upper (Some (Solver.reason_label stopped)) stats
  | Solver.Unsolvable stats -> base `Unsolvable 0 None None stats

let encode_outcome (o : outcome) =
  Json.to_string
    (Json.Obj
       ([
          ("v", Json.Int o.v);
          ("game", Json.String (game_label o.game));
          ("r", Json.Int o.r);
          ("variants", variants_json o.variants);
          ("dag_hash", Json.String o.dag_hash);
          ("n", Json.Int o.n);
          ("m", Json.Int o.m);
          ("status", Json.String (status_label o.status));
          ("lower", Json.Int o.lower);
        ]
       @ (match o.upper with Some u -> [ ("upper", Json.Int u) ] | None -> [])
       @ (match o.stopped with
         | Some s -> [ ("stopped", Json.String s) ]
         | None -> [])
       @ (match o.strategy with
         | Some s -> [ ("strategy", strategy_json s) ]
         | None -> [])
       @ (match o.curve with
         | [] -> []
         | c -> [ ("curve", curve_json c) ])
       @ [ ("stats", stats_json o.stats) ]))

let decode_outcome s =
  let* j = parse s in
  let* () = check_version j in
  let* game = game_field j in
  let* r = int_field "r" j in
  let* variants = variants_field j in
  let* dag_hash = str_field "dag_hash" j in
  let* n = int_field "n" j in
  let* m = int_field "m" j in
  let* status =
    let* s = str_field "status" j in
    status_of_label s
  in
  let* lower = int_field "lower" j in
  let* upper = opt_int "upper" j in
  let* stopped = opt_str "stopped" j in
  let* strategy = opt_strategy_field j in
  let* curve = curve_field j in
  let* stats_j = field "stats" j in
  let* stats = stats_of_json stats_j in
  Ok { v = version; game; r; variants; dag_hash; n; m; status; lower; upper;
       stopped; strategy; stats; curve }

(* ------------------------------------------------------------------ *)
(* Bracket certificates *)

type bracket = {
  v : int;
  family : string option;
  game : game;
  r : int;
  n : int;
  m : int;
  lower : int;
  lower_rule : string;
  upper : int;
  upper_rule : string;
  verifier : string;
  tight : bool;
  width : int;
  rules : (string * int) list;
  profile_classes : int option;
  strategy : strategy option;
  curve : Solver.Convergence.curve;
  elapsed_s : float;
}

let bracket_of ?family ?(with_moves = false) (b : Bracket.t) =
  {
    v = version;
    family;
    game = (match b.game with Lower.Rbp -> Rbp | Lower.Prbp -> Prbp);
    r = b.r;
    n = b.n;
    m = b.m;
    lower = b.lower.Lower.bound;
    lower_rule = b.lower.Lower.rule;
    upper = b.upper;
    upper_rule = Upper.meth_label b.meth;
    verifier = (match b.verified with `Literal -> "literal" | `Engine -> "engine");
    tight = b.tight;
    width = b.width;
    rules = b.lower.Lower.evaluated;
    profile_classes = Option.map Segment.n_classes b.profile;
    strategy =
      (if with_moves then
         Some
           (match b.moves with
           | Bracket.Rbp_moves ms -> Rbp_strategy ms
           | Bracket.Prbp_moves ms -> Prbp_strategy ms)
       else None);
    curve = b.Bracket.curve;
    elapsed_s = b.elapsed_s;
  }

let encode_bracket (b : bracket) =
  (* [rule]/[lower_rule] and [method]/[upper_rule] are intentionally
     duplicated pairs: the historical row format of BENCH_solver.json
     carried both spellings and downstream greps key off either *)
  Json.to_string
    (Json.Obj
       ([ ("v", Json.Int b.v); ("kind", Json.String "bracket") ]
       @ (match b.family with
         | Some f -> [ ("family", Json.String f) ]
         | None -> [])
       @ [
           ("game", Json.String (game_label b.game));
           ("r", Json.Int b.r);
           ("n", Json.Int b.n);
           ("m", Json.Int b.m);
           ("lower", Json.Int b.lower);
           ("rule", Json.String b.lower_rule);
           ("lower_rule", Json.String b.lower_rule);
           ("upper", Json.Int b.upper);
           ("method", Json.String b.upper_rule);
           ("upper_rule", Json.String b.upper_rule);
           ("verifier", Json.String b.verifier);
           ("tight", Json.Bool b.tight);
           ("interval_width", Json.Int b.width);
           ( "rules",
             Json.List
               (List.map
                  (fun (rule, bound) ->
                    Json.Obj
                      [
                        ("rule", Json.String rule); ("bound", Json.Int bound);
                      ])
                  b.rules) );
           ( "profile_classes",
             match b.profile_classes with
             | Some c -> Json.Int c
             | None -> Json.Null );
         ]
       @ (match b.strategy with
         | Some s -> [ ("strategy", strategy_json s) ]
         | None -> [])
       @ (match b.curve with [] -> [] | c -> [ ("curve", curve_json c) ])
       @ [ ("elapsed_s", Json.Float b.elapsed_s) ]))

let decode_bracket s =
  let* j = parse s in
  let* () = check_version j in
  let* kind = str_field "kind" j in
  if kind <> "bracket" then
    Error (Printf.sprintf "expected kind \"bracket\", got %S" kind)
  else
    let* family = opt_str "family" j in
    let* game = game_field j in
    let* r = int_field "r" j in
    let* n = int_field "n" j in
    let* m = int_field "m" j in
    let* lower = int_field "lower" j in
    let* lower_rule = str_field "lower_rule" j in
    let* upper = int_field "upper" j in
    let* upper_rule = str_field "upper_rule" j in
    let* verifier = str_field "verifier" j in
    let* tight = bool_field "tight" j in
    let* width = int_field "interval_width" j in
    let* rules_j = list_field "rules" j in
    let* rules =
      map_m
        (fun rj ->
          let* rule = str_field "rule" rj in
          let* bound = int_field "bound" rj in
          Ok (rule, bound))
        rules_j
    in
    let* profile_classes = opt_int "profile_classes" j in
    let* strategy = opt_strategy_field j in
    let* curve = curve_field j in
    let* elapsed_s = float_field "elapsed_s" j in
    Ok { v = version; family; game; r; n; m; lower; lower_rule; upper;
         upper_rule; verifier; tight; width; rules; profile_classes; strategy;
         curve; elapsed_s }

(* ------------------------------------------------------------------ *)
(* Frontier certificates *)

type frontier_point = {
  p : int;
  r : int;
  comm_lower : int;
  comm_upper : int option;
  time_lower : int;
  time_upper : int option;
  status : [ `Exact | `Bracketed ];
  source : string;
  verified : bool;
  settled : bool;
  dominated : bool;
  strategy : strategy option;
  curve : Solver.Convergence.curve;
}

type frontier = {
  v : int;
  family : string option;
  game : game;
  dag_hash : string;
  n : int;
  m : int;
  model : string;
  points : frontier_point list;
  infeasible_rs : int list;
  exhausted : bool;
  elapsed_s : float;
}

let point_status_label = function `Exact -> "exact" | `Bracketed -> "bracketed"

let point_status_of_label = function
  | "exact" -> Ok `Exact
  | "bracketed" -> Ok `Bracketed
  | s -> Error (Printf.sprintf "unknown point status %S" s)

let frontier_of ?family ?(with_moves = false) ~dag (f : Frontier.t) =
  let game =
    match f.Frontier.game with
    | Frontier.Rbp_mc -> Multi_rbp f.Frontier.p
    | Frontier.Prbp_mc -> Multi_prbp f.Frontier.p
  in
  let point (pt : Frontier.point) =
    {
      p = pt.Frontier.p;
      r = pt.Frontier.r;
      comm_lower = pt.Frontier.comm_lower;
      comm_upper = pt.Frontier.comm_upper;
      time_lower = pt.Frontier.time_lower;
      time_upper = pt.Frontier.time_upper;
      status = pt.Frontier.status;
      source = pt.Frontier.source;
      verified = pt.Frontier.verified;
      settled = pt.Frontier.settled;
      dominated = pt.Frontier.dominated;
      strategy =
        (if with_moves then
           Option.map
             (function
               | Multi_bounds.Rbp_mc_moves ms ->
                   Multi_rbp_strategy (pt.Frontier.p, ms)
               | Multi_bounds.Prbp_mc_moves ms ->
                   Multi_prbp_strategy (pt.Frontier.p, ms))
             pt.Frontier.witness
         else None);
      curve = pt.Frontier.curve;
    }
  in
  {
    v = version;
    family;
    game;
    dag_hash = Dag.hash dag;
    n = Dag.n_nodes dag;
    m = Dag.n_edges dag;
    model = f.Frontier.model;
    points = List.map point f.Frontier.points;
    infeasible_rs = f.Frontier.infeasible_rs;
    exhausted = f.Frontier.exhausted;
    elapsed_s = f.Frontier.elapsed_s;
  }

let frontier_point_json (pt : frontier_point) =
  Json.Obj
    ([
       ("p", Json.Int pt.p);
       ("r", Json.Int pt.r);
       ("comm_lower", Json.Int pt.comm_lower);
     ]
    @ (match pt.comm_upper with
      | Some u -> [ ("comm_upper", Json.Int u) ]
      | None -> [])
    @ [ ("time_lower", Json.Int pt.time_lower) ]
    @ (match pt.time_upper with
      | Some u -> [ ("time_upper", Json.Int u) ]
      | None -> [])
    @ [
        ("status", Json.String (point_status_label pt.status));
        ("source", Json.String pt.source);
        ("verified", Json.Bool pt.verified);
        ("settled", Json.Bool pt.settled);
        ("dominated", Json.Bool pt.dominated);
      ]
    @ (match pt.strategy with
      | Some s -> [ ("strategy", strategy_json s) ]
      | None -> [])
    @ match pt.curve with [] -> [] | c -> [ ("curve", curve_json c) ])

let frontier_point_of_json j =
  let* p = int_field "p" j in
  let* r = int_field "r" j in
  let* comm_lower = int_field "comm_lower" j in
  let* comm_upper = opt_int "comm_upper" j in
  let* time_lower = int_field "time_lower" j in
  let* time_upper = opt_int "time_upper" j in
  let* status =
    let* s = str_field "status" j in
    point_status_of_label s
  in
  let* source = str_field "source" j in
  let* verified = bool_field "verified" j in
  let* settled = bool_field "settled" j in
  let* dominated = bool_field "dominated" j in
  let* strategy = opt_strategy_field j in
  let* curve = curve_field j in
  Ok
    { p; r; comm_lower; comm_upper; time_lower; time_upper; status; source;
      verified; settled; dominated; strategy; curve }

(* derived row metrics: the regression gate compares these without
   re-deriving them from the points *)
let frontier_points_n f = List.length f.points

let frontier_front_n f =
  List.length (List.filter (fun pt -> not pt.dominated) f.points)

let frontier_open_n f =
  List.length (List.filter (fun pt -> not pt.settled) f.points)

let frontier_width f =
  List.fold_left
    (fun acc pt ->
      match pt.comm_upper with
      | Some u -> acc + (u - pt.comm_lower)
      | None -> acc)
    0 f.points

let encode_frontier (f : frontier) =
  Json.to_string
    (Json.Obj
       ([ ("v", Json.Int f.v); ("kind", Json.String "frontier") ]
       @ (match f.family with
         | Some fam -> [ ("family", Json.String fam) ]
         | None -> [])
       @ [
           ("game", Json.String (game_label f.game));
           ("dag_hash", Json.String f.dag_hash);
           ("n", Json.Int f.n);
           ("m", Json.Int f.m);
           ("model", Json.String f.model);
           ("points_n", Json.Int (frontier_points_n f));
           ("front_n", Json.Int (frontier_front_n f));
           ("open_n", Json.Int (frontier_open_n f));
           ("front_width", Json.Int (frontier_width f));
           ("points", Json.List (List.map frontier_point_json f.points));
           ( "infeasible_rs",
             Json.List (List.map (fun r -> Json.Int r) f.infeasible_rs) );
           ("exhausted", Json.Bool f.exhausted);
           ("elapsed_s", Json.Float f.elapsed_s);
         ]))

let decode_frontier s =
  let* j = parse s in
  let* () = check_version j in
  let* kind = str_field "kind" j in
  if kind <> "frontier" then
    Error (Printf.sprintf "expected kind \"frontier\", got %S" kind)
  else
    let* family = opt_str "family" j in
    let* game = game_field j in
    let* dag_hash = str_field "dag_hash" j in
    let* n = int_field "n" j in
    let* m = int_field "m" j in
    let* model = str_field "model" j in
    let* points_j = list_field "points" j in
    let* points = map_m frontier_point_of_json points_j in
    let* infeasible_rs =
      let* l = list_field "infeasible_rs" j in
      map_m
        (fun x ->
          match Json.to_int x with
          | Some i -> Ok i
          | None -> Error "field \"infeasible_rs\": expected integers")
        l
    in
    let* exhausted = bool_field "exhausted" j in
    let* elapsed_s = float_field "elapsed_s" j in
    Ok
      { v = version; family; game; dag_hash; n; m; model; points;
        infeasible_rs; exhausted; elapsed_s }

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let progress_fields (p : Solver.Telemetry.progress) =
  [
    ("expansions", Json.Int p.expansions);
    ("explored", Json.Int p.explored);
    ("pruned", Json.Int p.pruned);
    ("frontier", Json.Int p.frontier);
    ("depth", Json.Int p.depth);
    ("table_load", Json.Float p.table_load);
    ("elapsed_s", Json.Float p.elapsed_s);
    ("lower", Json.Int p.lower);
  ]
  @ match p.upper with Some u -> [ ("upper", Json.Int u) ] | None -> []

let encode_event (ev : Solver.Telemetry.event) =
  let tagged ev_name fields =
    Json.Obj
      (("v", Json.Int version) :: ("ev", Json.String ev_name) :: fields)
  in
  Json.to_string
    (match ev with
    | Start { width; max_states } ->
        tagged "start"
          [ ("width", Json.Int width); ("max_states", Json.Int max_states) ]
    | Progress p -> tagged "progress" (progress_fields p)
    | Prune { pruned } -> tagged "prune" [ ("pruned", Json.Int pruned) ]
    | Stop { outcome; progress } ->
        tagged "stop"
          (("outcome", Json.String outcome) :: progress_fields progress))

let progress_of_json j : (Solver.Telemetry.progress, string) result =
  let* expansions = int_field "expansions" j in
  let* explored = int_field "explored" j in
  let* pruned = int_field "pruned" j in
  let* frontier = int_field "frontier" j in
  let* depth = int_field "depth" j in
  let* table_load = float_field "table_load" j in
  let* elapsed_s = float_field "elapsed_s" j in
  (* [lower]/[upper] arrived after v1 shipped; absent values decode to
     the weakest certified statement so old JSONL traces still parse *)
  let* lower =
    match Json.member "lower" j with
    | Some Json.Null | None -> Ok 0
    | Some v -> (
        match Json.to_int v with
        | Some i -> Ok i
        | None -> Error "field \"lower\": expected an integer")
  in
  let* upper = opt_int "upper" j in
  Ok
    {
      Solver.Telemetry.expansions;
      explored;
      pruned;
      frontier;
      depth;
      table_load;
      elapsed_s;
      lower;
      upper;
    }

let decode_event s : (Solver.Telemetry.event, string) result =
  let* j = parse s in
  let* () = check_version j in
  let* ev = str_field "ev" j in
  match ev with
  | "start" ->
      let* width = int_field "width" j in
      let* max_states = int_field "max_states" j in
      Ok (Solver.Telemetry.Start { width; max_states })
  | "progress" ->
      let* p = progress_of_json j in
      Ok (Solver.Telemetry.Progress p)
  | "prune" ->
      let* pruned = int_field "pruned" j in
      Ok (Solver.Telemetry.Prune { pruned })
  | "stop" ->
      let* outcome = str_field "outcome" j in
      let* progress = progress_of_json j in
      Ok (Solver.Telemetry.Stop { outcome; progress })
  | ev -> Error (Printf.sprintf "unknown telemetry event %S" ev)

let jsonl ?every oc =
  Solver.Telemetry.make ?every (fun ev ->
      output_string oc (encode_event ev);
      output_char oc '\n';
      (* stop events close a solve; make sure they reach the reader
         even when the process is about to exit non-zero *)
      match ev with Solver.Telemetry.Stop _ -> flush oc | _ -> ())

(* ------------------------------------------------------------------ *)
(* Daemon status *)

type req = {
  trace_id : int;
  route : string;
  status : int;
  cache : string;
  dur_s : float;
  outcome : string;
}

type route_stat = {
  route : string;
  count : int;
  sum_s : float;
  buckets : (float * int) list;
}

type status_report = {
  v : int;
  uptime_s : float;
  workers : int;
  in_flight : int;
  queued : int;
  requests_total : int;
  cache_hits : int;
  cache_misses : int;
  flight_seen : int;
  flight_capacity : int;
  routes : route_stat list;
  recent : req list;
  slowest : req list;
}

let req_json (r : req) =
  Json.Obj
    [
      ("trace_id", Json.Int r.trace_id);
      ("route", Json.String r.route);
      ("status", Json.Int r.status);
      ("cache", Json.String r.cache);
      ("dur_s", Json.Float r.dur_s);
      ("outcome", Json.String r.outcome);
    ]

let req_of_json j =
  let* trace_id = int_field "trace_id" j in
  let* route = str_field "route" j in
  let* status = int_field "status" j in
  let* cache = str_field "cache" j in
  let* dur_s = float_field "dur_s" j in
  let* outcome = str_field "outcome" j in
  Ok { trace_id; route; status; cache; dur_s; outcome }

let route_stat_json (rs : route_stat) =
  Json.Obj
    [
      ("route", Json.String rs.route);
      ("count", Json.Int rs.count);
      ("sum_s", Json.Float rs.sum_s);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, n) -> Json.List [ Json.Float le; Json.Int n ])
             rs.buckets) );
    ]

let route_stat_of_json j =
  let* route = str_field "route" j in
  let* count = int_field "count" j in
  let* sum_s = float_field "sum_s" j in
  let* buckets_j = list_field "buckets" j in
  let* buckets =
    map_m
      (fun bj ->
        match bj with
        | Json.List [ le; n ] -> (
            match (Json.to_float le, Json.to_int n) with
            | Some le, Some n -> Ok (le, n)
            | _ -> Error "field \"buckets\": expected [le, count] pairs")
        | _ -> Error "field \"buckets\": expected [le, count] pairs")
      buckets_j
  in
  Ok { route; count; sum_s; buckets }

let status_report ~uptime_s ~workers ~in_flight ~queued ~requests_total
    ~cache_hits ~cache_misses ~flight_seen ~flight_capacity ~routes ~recent
    ~slowest () =
  { v = version; uptime_s; workers; in_flight; queued; requests_total;
    cache_hits; cache_misses; flight_seen; flight_capacity; routes; recent;
    slowest }

let encode_status (st : status_report) =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int st.v);
         ("kind", Json.String "status");
         ("uptime_s", Json.Float st.uptime_s);
         ("workers", Json.Int st.workers);
         ("in_flight", Json.Int st.in_flight);
         ("queued", Json.Int st.queued);
         ("requests_total", Json.Int st.requests_total);
         ("cache_hits", Json.Int st.cache_hits);
         ("cache_misses", Json.Int st.cache_misses);
         ("flight_seen", Json.Int st.flight_seen);
         ("flight_capacity", Json.Int st.flight_capacity);
         ("routes", Json.List (List.map route_stat_json st.routes));
         ("recent", Json.List (List.map req_json st.recent));
         ("slowest", Json.List (List.map req_json st.slowest));
       ])

let decode_status s =
  let* j = parse s in
  let* () = check_version j in
  let* kind = str_field "kind" j in
  if kind <> "status" then
    Error (Printf.sprintf "expected kind \"status\", got %S" kind)
  else
    let* uptime_s = float_field "uptime_s" j in
    let* workers = int_field "workers" j in
    let* in_flight = int_field "in_flight" j in
    let* queued = int_field "queued" j in
    let* requests_total = int_field "requests_total" j in
    let* cache_hits = int_field "cache_hits" j in
    let* cache_misses = int_field "cache_misses" j in
    let* flight_seen = int_field "flight_seen" j in
    let* flight_capacity = int_field "flight_capacity" j in
    let* routes_j = list_field "routes" j in
    let* routes = map_m route_stat_of_json routes_j in
    let* recent_j = list_field "recent" j in
    let* recent = map_m req_of_json recent_j in
    let* slowest_j = list_field "slowest" j in
    let* slowest = map_m req_of_json slowest_j in
    Ok { v = version; uptime_s; workers; in_flight; queued; requests_total;
         cache_hits; cache_misses; flight_seen; flight_capacity; routes;
         recent; slowest }

(* ------------------------------------------------------------------ *)
(* Health *)

type healthz = { v : int; wire : int; bench : string; uptime_s : float }

let healthz ~uptime_s =
  { v = version; wire = version; bench = bench_schema; uptime_s }

let encode_healthz (h : healthz) =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int h.v);
         ("kind", Json.String "healthz");
         ("wire", Json.Int h.wire);
         ("bench_schema", Json.String h.bench);
         ("uptime_s", Json.Float h.uptime_s);
       ])

let decode_healthz s =
  let* j = parse s in
  let* () = check_version j in
  let* kind = str_field "kind" j in
  if kind <> "healthz" then
    Error (Printf.sprintf "expected kind \"healthz\", got %S" kind)
  else
    let* wire = int_field "wire" j in
    let* bench = str_field "bench_schema" j in
    let* uptime_s = float_field "uptime_s" j in
    Ok { v = version; wire; bench; uptime_s }

(* ------------------------------------------------------------------ *)
(* Errors *)

let encode_error ?code msg =
  Json.to_string
    (Json.Obj
       (("v", Json.Int version)
       :: ("error", Json.String msg)
       ::
       (match code with
       | Some c -> [ ("code", Json.String c) ]
       | None -> [])))

let decode_error s =
  match Json.of_string s with
  | Ok j -> Option.bind (Json.member "error" j) Json.to_str
  | Error _ -> None

let decode_error_code s =
  match Json.of_string s with
  | Ok j -> Option.bind (Json.member "code" j) Json.to_str
  | Error _ -> None

(** Polynomial-time constructive partitioners.

    {!Prbp_partition.Minpart} finds {e minimum} partitions by
    exponential lattice search; this module builds {e valid} (not
    necessarily minimum) partitions in polynomial time, at any scale
    the max-flow dominator oracle can handle.  They serve two roles in
    the bounds subsystem: as the partition {e profile} attached to a
    {!Bracket.t} (a structural certificate of how the DAG decomposes at
    cache size [s]), and as the re-validated witness wrapper for
    Minpart's minimum partitions.

    Soundness note: a constructive partition's class count only
    {e upper}-bounds the minimum [MIN(s)], so it must never be plugged
    into the paper's [r·(MIN(2r)−1)] lower-bound inequalities — only
    {!Lower} knows which class counts are admissible.  What a [t] does
    certify is validity: every constructor re-checks its result through
    the exact {!Prbp_partition.Spart} checkers (max-flow dominator
    minima included) before returning, so a [t] is never accepted on
    the construction's own argument. *)

type flavor =
  | Spartition  (** Definition 5.3: dominator ≤ s and terminal ≤ s *)
  | Dominator  (** Definition 6.6: dominator ≤ s only *)
  | Edge  (** Definition 6.3: edge classes, edge dominators *)

type t = {
  flavor : flavor;
  s : int;
  classes : Prbp_dag.Bitset.t array;
      (** node bitsets ([Spartition] / [Dominator]) or edge-id bitsets
          ([Edge]), in their partition order *)
  minimal : bool;
      (** [true] only for partitions produced by {!Prbp_partition.Minpart}'s
          exhaustive search (via {!of_minpart}); constructive partitions
          are always [false] *)
}

val flavor_label : flavor -> string
(** ["spartition"] | ["dominator"] | ["edge"]. *)

val n_classes : t -> int

val validate : Prbp_dag.Dag.t -> t -> (unit, string) result
(** Re-run the exact {!Prbp_partition.Spart} checker for [t.flavor];
    this is the same check every constructor already performed. *)

val greedy : ?flavor:flavor -> Prbp_dag.Dag.t -> s:int -> (t, string) result
(** Greedy topological sweep ([flavor] defaults to [Spartition]):
    process the nodes in {!Prbp_dag.Topo.sort} order (edges in
    {!Prbp_dag.Topo.edge_order} for [Edge]) and grow each class as far
    as the exact max-flow dominator minimum (and, per flavor, the
    terminal-set size) allows, probing by galloping — doubling steps
    plus a binary search — so each class costs O(log n) flow
    computations.  Contiguous segments of a topological order satisfy
    the ordering conditions by construction; feasibility of every cut
    is established by the exact oracle, never assumed (the terminal-set
    size is not monotone in the class, so the cut may be non-maximal —
    but it is always {e checked}).  [Error] only for [s < 1] or an
    internal validation failure. *)

val level_cut : ?flavor:flavor -> Prbp_dag.Dag.t -> s:int -> (t, string) result
(** Partitioner for layered DAGs (FFT, deep pipelines): split each
    {!Prbp_dag.Topo.levels} depth level into chunks of at most [s]
    nodes.  Chunks of size ≤ s dominate themselves, and levels in
    depth order never see a backward edge, so the result is always a
    valid partition — cheaper than {!greedy} (no flow calls during
    construction) but typically coarser.  Node flavors only: [Edge]
    is rejected. *)

val of_minpart :
  flavor ->
  Prbp_dag.Dag.t ->
  s:int ->
  Prbp_dag.Bitset.t array ->
  (t, string) result
(** Wrap a witness partition from {!Prbp_partition.Minpart} (marking it
    [minimal]), re-validating it through {!Prbp_partition.Spart} first —
    the independence that lets {!Lower} trust a minimum class count
    without trusting the lattice search. *)

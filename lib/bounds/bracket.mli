(** Certified brackets: [lower ≤ OPT ≤ upper] at any scale.

    A bracket runs the {!Lower} rule portfolio and the {!Upper}
    strategy portfolio under one {!Prbp_solver.Solver.Budget} and
    returns the pair with its certificates embedded: the witness
    partition behind the winning lower-bound rule (when one exists),
    the complete verified move list behind the upper bound, and a
    constructive {!Segment} partition profile of the DAG at cache size
    [2r].  Each certificate re-validates independently — {!Segment}
    re-checks partitions through {!Prbp_partition.Spart}, {!Upper}
    replays strategies through {!Prbp_pebble.Verifier} — so a bracket
    is trustworthy even where the exact solvers cannot reach.

    Where the exact solvers {e can} reach, a bracket must contain the
    optimum; the test suite and experiment E31 enforce exactly that. *)

type moves =
  | Rbp_moves of Prbp_pebble.Move.R.t list
  | Prbp_moves of Prbp_pebble.Move.P.t list
      (** the verified strategy achieving [upper], tagged by game *)

type t = {
  game : Lower.game;
  r : int;
  n : int;  (** nodes of the bracketed DAG *)
  m : int;  (** edges *)
  lower : Lower.t;  (** best certified lower bound, with its rule *)
  upper : int;  (** certified cost of [moves] *)
  width : int;  (** [upper − lower.bound], the interval width *)
  moves : moves;
  meth : Upper.meth;  (** how the winning strategy was found *)
  verified : [ `Literal | `Engine ];  (** which checker certified it *)
  profile : Segment.t option;
      (** constructive partition of the DAG at [s = 2r] (validated);
          [None] on very large DAGs or when no partition exists *)
  tight : bool;  (** [lower.bound = upper]: the bracket pins OPT *)
  elapsed_s : float;
  curve : Prbp_solver.Solver.Convergence.curve;
      (** how the bracket tightened over the run: one monotone
          [(t_s, lower, upper)] sighting per stage boundary (lower
          portfolio done, upper portfolio done, optional lower re-run,
          terminal).  The final point always equals
          [(elapsed_s, lower.bound, Some upper)] up to de-duplication
          of non-tightening sightings. *)
}

val rbp :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?telemetry:Prbp_solver.Solver.Telemetry.sink ->
  ?rules:string list ->
  r:int ->
  Prbp_dag.Dag.t ->
  (t, string) result
(** Bracket [OPT_RBP(r)].  The budget's wall clock is balanced across
    the two portfolios: the lower phase gets a 40% slice, the upper
    phase inherits {e everything still on the clock} when the lower
    phase finishes (so a short-circuiting rule portfolio donates its
    unused allotment), and leftover time after the upper phase flows
    back into a lower re-run when some rule was budget-truncated.
    Closed-form analytic bounds attach automatically from the DAG's
    {!Prbp_dag.Dag.family} tag.  [rules] restricts the {!Lower}
    registry (see {!Lower.compute}).  [telemetry] receives a [Start]
    event and a terminal [Stop] whose outcome is ["optimal"] when the
    bracket is tight, ["bounded"] otherwise.  [Error] when no valid
    strategy exists at this [r] (below the feasibility threshold). *)

val prbp :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?telemetry:Prbp_solver.Solver.Telemetry.sink ->
  ?rules:string list ->
  r:int ->
  Prbp_dag.Dag.t ->
  (t, string) result
(** Bracket [OPT_PRBP(r)]. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary. *)

module Dag = Prbp_dag.Dag
module Solver = Prbp_solver.Solver
module Minpart = Prbp_partition.Minpart
module Span = Prbp_obs.Span

type game = Rbp | Prbp

let game_label = function Rbp -> "rbp" | Prbp -> "prbp"

type rule =
  | Trivial
  | Source_cut
  | Exact_spartition
  | Exact_dominator
  | Exact_edge
  | Closed_form of string

let rule_label = function
  | Trivial -> "trivial"
  | Source_cut -> "source-cut"
  | Exact_spartition -> "exact-spartition"
  | Exact_dominator -> "exact-dominator"
  | Exact_edge -> "exact-edge"
  | Closed_form name -> "closed-form:" ^ name

type t = {
  game : game;
  r : int;
  bound : int;
  rule : rule;
  witness : Segment.t option;
}

(* Sources with an out-edge + sinks with an in-edge.  [Dag.trivial_cost]
   counts every source and sink, but an isolated node (both at once) is
   pebbled for free in either game, so it must not contribute here. *)
let trivial_bound g =
  let c = ref 0 in
  for v = 0 to Dag.n_nodes g - 1 do
    if Dag.is_source g v && Dag.out_degree g v > 0 then incr c;
    if Dag.is_sink g v && Dag.in_degree g v > 0 then incr c
  done;
  !c

(* Any dominator of a node set containing a source must contain that
   source (the one-node path), so min_dom(V) = #sources; dominator
   minima are subadditive over the classes of a dominator partition,
   hence MIN_dom(2r) ≥ ⌈#sources / 2r⌉ and Theorem 6.7 applies. *)
let source_cut_bound g ~r =
  let q = Dag.n_sources g in
  let s = 2 * r in
  max 0 (r * (((q + s - 1) / s) - 1))

(* Exact searches are worth attempting only where the lattice is
   representable (≤ 62) and either tiny or protected by a wall-clock
   deadline; tighten the poll cadence so a deadline lands promptly
   even though every lattice step costs a max-flow. *)
let exact_gate budget size =
  size <= 62
  && (size <= 18 || budget.Solver.Budget.max_millis <> None)

let minpart_budget budget slices =
  let open Solver.Budget in
  {
    budget with
    max_millis =
      Option.map (fun ms -> max 1 (ms / max 1 slices)) budget.max_millis;
    max_states = min budget.max_states 2_000_000;
    check_every = min budget.check_every 64;
  }

let compute ?(budget = Solver.Budget.default) ?(closed_forms = []) ~game ~r g =
  if r < 1 then invalid_arg "Lower.compute: r must be >= 1";
  let body () =
    let s = 2 * r in
    let candidates = ref [] in
    let add rule bound witness =
      if bound >= 0 then candidates := (rule, bound, witness) :: !candidates
    in
    add Trivial (trivial_bound g) None;
    add Source_cut (source_cut_bound g ~r) None;
    List.iter
      (fun (name, v) ->
        if v > 0. then add (Closed_form name) (int_of_float (floor v)) None)
      closed_forms;
    let node_gate = exact_gate budget (Dag.n_nodes g) in
    let edge_gate = exact_gate budget (Dag.n_edges g) in
    let slices =
      (if node_gate then match game with Rbp -> 2 | Prbp -> 1 else 0)
      + if edge_gate then 1 else 0
    in
    let mb = minpart_budget budget slices in
    let add_exact rule flavor verdict_of =
      let verdict =
        if Span.enabled () then
          Span.with_ ~name:"lower.exact"
            ~attrs:[ ("rule", rule_label rule) ]
            verdict_of
        else verdict_of ()
      in
      match verdict with
      | Minpart.Minimum { classes; witness } -> (
          (* believe the count only if the witness independently
             re-validates — a rejection would mean a Minpart bug, and
             then the count proves nothing *)
          match Segment.of_minpart flavor g ~s witness with
          | Ok seg -> add rule (max 0 (r * (classes - 1))) (Some seg)
          | Error _ -> ())
      | Minpart.No_partition | Minpart.Truncated _ -> ()
    in
    if node_gate then begin
      add_exact Exact_dominator Segment.Dominator (fun () ->
          Minpart.dominator_partition ~budget:mb g ~s);
      match game with
      | Rbp ->
          add_exact Exact_spartition Segment.Spartition (fun () ->
              Minpart.spartition ~budget:mb g ~s)
      | Prbp -> ()
    end;
    if edge_gate then
      add_exact Exact_edge Segment.Edge (fun () ->
          Minpart.edge_partition ~budget:mb g ~s);
    (* portfolio order = reverse insertion order; keep the earliest rule
       on ties, so fold over the list as inserted *)
    let best =
      List.fold_left
        (fun acc (rule, bound, witness) ->
          match acc with
          | Some (_, b, _) when b >= bound -> acc
          | _ -> Some (rule, bound, witness))
        None
        (List.rev !candidates)
    in
    match best with
    | Some (rule, bound, witness) -> { game; r; bound; rule; witness }
    | None -> { game; r; bound = 0; rule = Trivial; witness = None }
  in
  if not (Span.enabled ()) then body ()
  else
    Span.with_ ~name:"lower.compute"
      ~attrs:[ ("game", game_label game); ("r", string_of_int r) ]
      (fun () ->
        let t = body () in
        Span.add_attr "rule" (rule_label t.rule);
        Span.add_attr "bound" (string_of_int t.bound);
        t)

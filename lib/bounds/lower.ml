module Dag = Prbp_dag.Dag
module Solver = Prbp_solver.Solver
module Minpart = Prbp_partition.Minpart
module Closed_form = Prbp_graphs.Closed_form
module Span = Prbp_obs.Span

type game = Rbp | Prbp

let game_label = function Rbp -> "rbp" | Prbp -> "prbp"

let game_variant = function Rbp -> `Rbp | Prbp -> `Prbp

type result = {
  label : string;
  bound : int;
  witness : Segment.t option;
  truncated : bool;
}

module type RULE = sig
  val name : string

  val games : game list

  val share : int

  val applies :
    budget:Solver.Budget.t -> game:game -> r:int -> Prbp_dag.Dag.t -> bool

  val compute :
    budget:Solver.Budget.t ->
    game:game ->
    r:int ->
    Prbp_dag.Dag.t ->
    result list
end

(* ------------------------------------------------------------------ *)
(* Registry and scheduler.                                             *)

let registry : (module RULE) list ref = ref []

let register (module R : RULE) =
  if List.exists (fun (module R0 : RULE) -> R0.name = R.name) !registry then
    invalid_arg (Printf.sprintf "Lower.register: duplicate rule %S" R.name);
  registry := !registry @ [ (module R) ]

let names () = List.map (fun (module R : RULE) -> R.name) !registry

type t = {
  game : game;
  r : int;
  bound : int;
  rule : string;
  witness : Segment.t option;
  evaluated : (string * int) list;
  truncated : bool;
}

(* A rule's wall-clock slice: its share of the deadline, proportional
   among the applicable budget-consuming rules.  Zero-share rules are
   negligible and run under the unsliced budget. *)
let slice (budget : Solver.Budget.t) ~share ~total =
  if share = 0 || total = 0 then budget
  else
    {
      budget with
      Solver.Budget.max_millis =
        Option.map
          (fun ms -> max 1 (ms * share / total))
          budget.Solver.Budget.max_millis;
    }

let compute ?(budget = Solver.Budget.default) ?rules ~game ~r g =
  if r < 1 then invalid_arg "Lower.compute: r must be >= 1";
  let body () =
    let applicable =
      List.filter
        (fun (module R : RULE) ->
          List.mem game R.games
          && (match rules with
             | None -> true
             | Some names -> List.mem R.name names)
          && R.applies ~budget ~game ~r g)
        !registry
    in
    let total =
      List.fold_left (fun acc (module R : RULE) -> acc + R.share) 0 applicable
    in
    let results =
      List.concat_map
        (fun (module R : RULE) ->
          let budget = slice budget ~share:R.share ~total in
          let run () =
            match R.compute ~budget ~game ~r g with
            | rs -> List.filter (fun (res : result) -> res.bound >= 0) rs
            | exception (Invalid_argument _ | Failure _) -> []
          in
          if Span.enabled () then
            Span.with_ ~name:"lower.rule" ~attrs:[ ("rule", R.name) ] run
          else run ())
        applicable
    in
    let evaluated =
      List.map (fun (res : result) -> (res.label, res.bound)) results
    in
    let truncated = List.exists (fun (res : result) -> res.truncated) results in
    let best =
      List.fold_left
        (fun acc (res : result) ->
          match acc with
          | Some (b : result) when b.bound >= res.bound -> acc
          | _ -> Some res)
        None results
    in
    match best with
    | Some res ->
        {
          game;
          r;
          bound = res.bound;
          rule = res.label;
          witness = res.witness;
          evaluated;
          truncated;
        }
    | None ->
        {
          game;
          r;
          bound = 0;
          rule = "none";
          witness = None;
          evaluated = [];
          truncated = false;
        }
  in
  if not (Span.enabled ()) then body ()
  else
    Span.with_ ~name:"lower.compute"
      ~attrs:[ ("game", game_label game); ("r", string_of_int r) ]
      (fun () ->
        let t = body () in
        Span.add_attr "rule" t.rule;
        Span.add_attr "bound" (string_of_int t.bound);
        t)

(* ------------------------------------------------------------------ *)
(* Built-in rules, in registration (= tie-break priority) order.       *)

let always ~budget:_ ~game:_ ~r:_ _ = true

let cheap label bound =
  if bound > 0 then [ { label; bound; witness = None; truncated = false } ]
  else []

(* Sources with an out-edge + sinks with an in-edge.  [Dag.trivial_cost]
   counts every source and sink, but an isolated node (both at once) is
   pebbled for free in either game, so it must not contribute here. *)
let () =
  register
    (module struct
      let name = "trivial"
      let games = [ Rbp; Prbp ]
      let share = 0
      let applies = always

      let compute ~budget:_ ~game:_ ~r:_ g =
        let c = ref 0 in
        for v = 0 to Dag.n_nodes g - 1 do
          if Dag.is_source g v && Dag.out_degree g v > 0 then incr c;
          if Dag.is_sink g v && Dag.in_degree g v > 0 then incr c
        done;
        [ { label = "trivial"; bound = !c; witness = None; truncated = false } ]
    end)

(* Any dominator of a node set containing a source must contain that
   source (the one-node path), so min_dom(V) = #sources; dominator
   minima are subadditive over the classes of a dominator partition,
   hence MIN_dom(2r) ≥ ⌈#sources / 2r⌉ and Theorem 6.7 applies. *)
let () =
  register
    (module struct
      let name = "source-cut"
      let games = [ Rbp; Prbp ]
      let share = 0
      let applies = always

      let compute ~budget:_ ~game:_ ~r g =
        let q = Dag.n_sources g in
        let s = 2 * r in
        cheap "source-cut" (max 0 (r * (((q + s - 1) / s) - 1)))
    end)

(* The edge-side mirror: pick one in-edge per sink; each choice is an
   edge-terminal of the S-edge-partition class containing it (nothing
   after it can consume a sink's value), distinct sinks give distinct
   terminals, and a class carries at most s terminals — so
   MIN_edge(2r) ≥ ⌈#sinks' / 2r⌉ for the #sinks' sinks with an
   in-edge, and Theorem 6.5 applies (PRBP, hence also RBP). *)
let () =
  register
    (module struct
      let name = "sink-cut"
      let games = [ Rbp; Prbp ]
      let share = 0
      let applies = always

      let compute ~budget:_ ~game:_ ~r g =
        let q = ref 0 in
        for v = 0 to Dag.n_nodes g - 1 do
          if Dag.is_sink g v && Dag.in_degree g v > 0 then incr q
        done;
        let s = 2 * r in
        cheap "sink-cut" (max 0 (r * (((!q + s - 1) / s) - 1)))
    end)

(* Section 6.3 analytic bounds, auto-attached via the DAG's family tag
   and the {!Prbp_graphs.Closed_form} registry.  Floored conservatively:
   OPT ≥ v over the reals, so OPT ≥ ⌊v⌋ certainly — never ceil a float
   that may carry rounding error upward. *)
let () =
  register
    (module struct
      let name = "closed-form"
      let games = [ Rbp; Prbp ]
      let share = 0
      let applies ~budget:_ ~game:_ ~r:_ g = Dag.family g <> None

      let compute ~budget:_ ~game ~r g =
        match Dag.family g with
        | None -> []
        | Some family ->
            Closed_form.forms ~game:(game_variant game) ~r family
            |> List.concat_map (fun (name, v) ->
                   cheap ("closed-form:" ^ name) (int_of_float (floor v)))
    end)

(* Exact searches are worth attempting only where the lattice is
   representable (≤ 62) and either tiny or protected by a wall-clock
   deadline. *)
let exact_gate (budget : Solver.Budget.t) size =
  size <= 62 && (size <= 18 || budget.Solver.Budget.max_millis <> None)

(* Tighten the poll cadence so a deadline lands promptly even though
   every lattice step costs a max-flow; cap the mask count likewise. *)
let minpart_budget (budget : Solver.Budget.t) =
  {
    budget with
    Solver.Budget.max_states = min budget.Solver.Budget.max_states 2_000_000;
    check_every = min budget.Solver.Budget.check_every 64;
  }

(* The cheapest valid constructive partition on hand, to seed Minpart's
   early-certification floor (§ Minpart docs).  Its classes were already
   validated by Segment, and Minpart re-validates them independently. *)
let constructive_seed ~flavor g ~s =
  let candidates =
    Segment.greedy ~flavor g ~s
    ::
    (match flavor with
    | Segment.Edge -> []
    | Segment.Spartition | Segment.Dominator ->
        [ Segment.level_cut ~flavor g ~s ])
  in
  List.filter_map Result.to_option candidates
  |> List.sort (fun a b -> compare (Segment.n_classes a) (Segment.n_classes b))
  |> function
  | [] -> None
  | seg :: _ -> Some seg

(* The three Minpart-backed rules share their shape: seed a constructive
   witness, search under the sliced budget, and grade the verdict —
   exact-* for a finished search, constructive-* for an early
   certification (the constructive partition met the anytime floor),
   anytime-* for a truncated search's certified floor.  A Minimum's
   witness is believed only after {!Segment.of_minpart} independently
   re-validates it — a rejection would mean a Minpart bug, and then the
   count proves nothing. *)
let partition_rule ~name ~short ~flavor ~games ~size_of ~search : (module RULE)
    =
  (module struct
    let name = name
    let games = games
    let share = 1
    let applies ~budget ~game:_ ~r:_ g = exact_gate budget (size_of g)

    let compute ~budget ~game:_ ~r g =
      let s = 2 * r in
      let upper_witness =
        Option.map
          (fun seg -> seg.Segment.classes)
          (constructive_seed ~flavor g ~s)
      in
      match search ~budget:(minpart_budget budget) ?upper_witness g ~s with
      | Minpart.Minimum { classes; witness; exhaustive } -> (
          match Segment.of_minpart flavor g ~s witness with
          | Ok seg ->
              [
                {
                  label =
                    (if exhaustive then "exact-" else "constructive-") ^ short;
                  bound = max 0 (r * (classes - 1));
                  witness = Some seg;
                  truncated = false;
                };
              ]
          | Error _ -> [])
      | Minpart.Truncated { lower_so_far; _ } ->
          [
            {
              label = "anytime-" ^ short;
              bound = max 0 (r * (lower_so_far - 1));
              witness = None;
              truncated = true;
            };
          ]
      | Minpart.No_partition -> []
  end)

let () =
  (* Theorem 6.7: PRBP, hence also RBP. *)
  register
    (partition_rule ~name:"exact-dominator" ~short:"dominator"
       ~flavor:Segment.Dominator ~games:[ Rbp; Prbp ] ~size_of:Dag.n_nodes
       ~search:(fun ~budget ?upper_witness g ~s ->
         Minpart.dominator_partition ~budget ?upper_witness g ~s));
  (* Theorem 5.4 (Hong–Kung): RBP only. *)
  register
    (partition_rule ~name:"exact-spartition" ~short:"spartition"
       ~flavor:Segment.Spartition ~games:[ Rbp ] ~size_of:Dag.n_nodes
       ~search:(fun ~budget ?upper_witness g ~s ->
         Minpart.spartition ~budget ?upper_witness g ~s));
  (* Theorem 6.5: PRBP, hence also RBP. *)
  register
    (partition_rule ~name:"exact-edge" ~short:"edge" ~flavor:Segment.Edge
       ~games:[ Rbp; Prbp ] ~size_of:Dag.n_edges
       ~search:(fun ~budget ?upper_witness g ~s ->
         Minpart.edge_partition ~budget ?upper_witness g ~s))

(** Certified brackets for the multiprocessor games (RBP-MC /
    PRBP-MC), extending the {!Lower} rule registry and the {!Upper}
    strategy portfolio past the single-processor games.

    {b Lower bounds by pooled capacity.}  Any [p]-processor strategy
    at per-processor capacity [r] simulates on one processor with the
    pooled capacity [p·r] at no extra I/O: merge the per-processor red
    sets; a Load lands only if the value is not already red anywhere,
    a Save only if the value is not already blue, Computes run
    directly (all inputs are red in the merged set), and a Delete
    drops the value only when the last copy goes (PRBP-MC light/dark
    pebbles merge the same way, and a dark pebble is exclusive so it
    never collides).  Hence [OPT_1(p·r) ≤ OPT_p(r)] and {e every}
    single-processor rule of the {!Lower} registry evaluated at
    capacity [p·r] is a sound lower bound on the [p]-processor
    optimum.  Result labels are prefixed ["pooled:"] to record the
    reduction.

    {b Upper bounds by lifting.}  Conversely [OPT_p(r) ≤ OPT_1(r)]:
    a single-processor strategy {e is} a [p]-processor strategy played
    entirely on processor 0.  The {!Upper} portfolio runs at
    per-processor capacity [r] and its winner is lifted through
    {!Prbp_pebble.Multi.lift_rbp} / [lift_prbp], then re-verified —
    cost and all — through the {!Prbp_pebble.Multi} rule engines
    before being believed.

    Together these bracket [OPT_p(r)] for any [p], far past
    {!Prbp_solver.Exact_multi}'s [p ≤ 8], [n ≤ 62] exact reach. *)

type moves =
  | Rbp_mc_moves of Prbp_pebble.Multi.Move.rbp list
  | Prbp_mc_moves of Prbp_pebble.Multi.Move.prbp list
      (** the verified multiprocessor strategy achieving [upper] *)

type t = {
  game : Lower.game;  (** the underlying game; [p] rides separately *)
  p : int;
  r : int;  (** per-processor fast-memory capacity *)
  n : int;
  m : int;
  lower : Lower.t;
      (** best pooled-capacity bound; [lower.r] is the per-processor
          [r], the labels carry the ["pooled:"] provenance *)
  upper : int;  (** certified by {!Prbp_pebble.Multi} replay *)
  width : int;  (** [upper − lower.bound] *)
  moves : moves;
  meth : Upper.meth;
  verified : [ `Literal | `Engine ];
      (** always [`Literal]: the {!Prbp_pebble.Multi} rule engines are
          the literal checkers of the multiprocessor games *)
  tight : bool;
  elapsed_s : float;
}

val lower :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?rules:string list ->
  game:Lower.game ->
  p:int ->
  r:int ->
  Prbp_dag.Dag.t ->
  Lower.t
(** The {!Lower} portfolio at the pooled capacity [p·r], relabelled
    ["pooled:…"]; a certified lower bound on [OPT_p(r)] for the
    [p]-processor game.  [?rules] restricts the registry as in
    {!Lower.compute}. *)

val rbp :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?rules:string list ->
  p:int ->
  r:int ->
  Prbp_dag.Dag.t ->
  (t, string) result
(** Bracket [OPT^RBP-MC_p(r)] under one budget (40% lower slice, the
    rest to the upper portfolio, mirroring {!Bracket}).  [Error] below
    the feasibility threshold or when no lifted strategy survives the
    multiprocessor checker. *)

val prbp :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?rules:string list ->
  p:int ->
  r:int ->
  Prbp_dag.Dag.t ->
  (t, string) result
(** Bracket [OPT^PRBP-MC_p(r)]. *)

val pp : Format.formatter -> t -> unit

module Dag = Prbp_dag.Dag
module Solver = Prbp_solver.Solver
module Multi = Prbp_pebble.Multi
module Clock = Prbp_obs.Clock

type moves =
  | Rbp_mc_moves of Multi.Move.rbp list
  | Prbp_mc_moves of Multi.Move.prbp list

type t = {
  game : Lower.game;
  p : int;
  r : int;
  n : int;
  m : int;
  lower : Lower.t;
  upper : int;
  width : int;
  moves : moves;
  meth : Upper.meth;
  verified : [ `Literal | `Engine ];
  tight : bool;
  elapsed_s : float;
}

let pool_label s = if s = "none" then s else "pooled:" ^ s

(* OPT_1(p·r) ≤ OPT_p(r): merging the per-processor red sets turns any
   p-processor strategy into a 1-processor strategy at capacity p·r
   with no more I/O (see the .mli), so every single-processor lower
   bound at the pooled capacity is sound for the p-processor game. *)
let lower ?budget ?rules ~game ~p ~r g =
  if p < 1 then invalid_arg "Multi_bounds.lower: p must be >= 1";
  let l = Lower.compute ?budget ?rules ~game ~r:(p * r) g in
  {
    l with
    Lower.r;
    rule = pool_label l.Lower.rule;
    evaluated =
      List.map (fun (lbl, b) -> (pool_label lbl, b)) l.Lower.evaluated;
  }

let scale_budget (b : Solver.Budget.t) frac =
  {
    b with
    Solver.Budget.max_millis =
      Option.map
        (fun ms -> max 1 (int_of_float (float_of_int ms *. frac)))
        b.Solver.Budget.max_millis;
  }

let ms_left (budget : Solver.Budget.t) t0 =
  Option.map
    (fun ms -> ms - int_of_float (Clock.elapsed_s t0 *. 1000.))
    budget.Solver.Budget.max_millis

(* OPT_p(r) ≤ OPT_1(r): the single-processor winner played on
   processor 0.  The lifted move list is re-verified through the
   multiprocessor rule engine at exactly the single-processor cost —
   a lift the checker rejects (or re-prices) is a bug, not a bound,
   so it is refused rather than repaired. *)
let run ?(budget = Solver.Budget.default) ?rules ~game ~p ~r ~upper_fn
    ~lift ~check ~wrap g =
  if p < 1 then invalid_arg "Multi_bounds: p must be >= 1";
  let t0 = Clock.now () in
  let lo = lower ~budget:(scale_budget budget 0.4) ?rules ~game ~p ~r g in
  let upper_budget =
    match ms_left budget t0 with
    | None -> budget
    | Some ms -> { budget with Solver.Budget.max_millis = Some (max 1 ms) }
  in
  match upper_fn ~budget:upper_budget ~r g with
  | Error e -> Error e
  | Ok (cost, single_moves, meth) -> (
      match lift single_moves with
      | exception Invalid_argument e -> Error ("lift failed: " ^ e)
      | lifted -> (
          let cfg = Multi.config ~p ~r () in
          match check cfg g lifted with
          | Error e -> Error ("multi checker rejected lifted strategy: " ^ e)
          | Ok c when c <> cost ->
              Error
                (Printf.sprintf
                   "lifted strategy re-priced: single-proc %d, multi %d" cost c)
          | Ok _ ->
              if lo.Lower.bound > cost then
                Error
                  (Printf.sprintf
                     "inconsistent bracket: lower %d > upper %d (%s)"
                     lo.Lower.bound cost lo.Lower.rule)
              else
                Ok
                  {
                    game;
                    p;
                    r;
                    n = Dag.n_nodes g;
                    m = Dag.n_edges g;
                    lower = lo;
                    upper = cost;
                    width = cost - lo.Lower.bound;
                    moves = wrap lifted;
                    meth;
                    verified = `Literal;
                    tight = lo.Lower.bound = cost;
                    elapsed_s = Clock.elapsed_s t0;
                  }))

let rbp ?budget ?rules ~p ~r g =
  run ?budget ?rules ~game:Lower.Rbp ~p ~r
    ~upper_fn:(fun ~budget ~r g ->
      Result.map
        (fun (u : _ Upper.t) -> (u.Upper.cost, u.Upper.moves, u.Upper.meth))
        (Upper.rbp ~budget ~r g))
    ~lift:Multi.lift_rbp ~check:Multi.R.check
    ~wrap:(fun mv -> Rbp_mc_moves mv)
    g

let prbp ?budget ?rules ~p ~r g =
  run ?budget ?rules ~game:Lower.Prbp ~p ~r
    ~upper_fn:(fun ~budget ~r g ->
      Result.map
        (fun (u : _ Upper.t) -> (u.Upper.cost, u.Upper.moves, u.Upper.meth))
        (Upper.prbp ~budget ~r g))
    ~lift:Multi.lift_prbp ~check:Multi.P.check
    ~wrap:(fun mv -> Prbp_mc_moves mv)
    g

let pp ppf t =
  Format.fprintf ppf "%s-mc p=%d r=%d: [%d, %d] width %d (%s / %s)%s"
    (Lower.game_label t.game) t.p t.r t.lower.Lower.bound t.upper t.width
    t.lower.Lower.rule (Upper.meth_label t.meth)
    (if t.tight then " tight" else "")

(** Certified I/O lower bounds: a portfolio of admissible rules.

    Every rule here is a theorem-backed inequality on the {e optimal}
    cost, so the maximum over the portfolio is itself a certified lower
    bound.  Crucially, only {e minimum} class counts are admissible in
    the paper's [r·(MIN(2r)−1)] bounds — a constructive partition's
    class count merely upper-bounds [MIN] and proves nothing — so the
    exact rules run {!Prbp_partition.Minpart} under a budget and use
    its result only when the search finished, re-validating the witness
    partition through {!Segment.of_minpart} before believing the count.

    The rules, in portfolio order (ties keep the earlier rule):

    - {!Trivial} — sources with an out-edge plus sinks with an in-edge;
      sound for both games (an isolated node needs no I/O, so the
      library-wide [Dag.trivial_cost] would overcount here).
    - {!Source_cut} — [r·(⌈q/2r⌉−1)] for [q] sources: any dominator of
      the full node set contains every source, and dominator minima are
      subadditive across the classes of a [2r]-dominator partition, so
      [MIN_dom(2r) ≥ ⌈q/2r⌉].  Theorem 6.7 then applies (PRBP, hence
      also RBP).
    - {!Closed_form} — caller-supplied analytic bounds (the paper's
      per-family theorems), floored conservatively.  {b The caller must
      only pass forms valid for the requested game} — Hong–Kung-style
      S-partition bounds do not hold for PRBP (Example 10).
    - {!Exact_dominator} / {!Exact_edge} — Theorems 6.7 / 6.5 with
      [MIN] computed exactly by {!Prbp_partition.Minpart}; valid for
      PRBP and therefore for RBP ([OPT_RBP ≥ OPT_PRBP]).
    - {!Exact_spartition} — Theorem 5.4 (Hong–Kung); {e RBP only}. *)

type game = Rbp | Prbp

val game_label : game -> string
(** ["rbp"] | ["prbp"]. *)

type rule =
  | Trivial
  | Source_cut
  | Exact_spartition
  | Exact_dominator
  | Exact_edge
  | Closed_form of string  (** payload: the form's name *)

val rule_label : rule -> string

type t = {
  game : game;
  r : int;
  bound : int;  (** the best certified lower bound on [OPT_game(r)] *)
  rule : rule;  (** which rule produced it *)
  witness : Segment.t option;
      (** for exact rules: the minimum partition realizing the class
          count, re-validated through {!Segment.of_minpart} (and marked
          [minimal]); [None] for analytic rules *)
}

val compute :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?closed_forms:(string * float) list ->
  game:game ->
  r:int ->
  Prbp_dag.Dag.t ->
  t
(** Run the portfolio and keep the best bound.  Total function: the
    trivial rule always applies, so the result is at least 0.

    The exact rules are gated — at most 62 nodes / edges (the lattice
    representation's hard limit), and beyond 18 only when [budget]
    carries a wall-clock deadline — and [budget]'s deadline is split
    evenly across the exact searches; a search that exhausts its slice
    returns {!Prbp_partition.Minpart.Truncated} and simply contributes
    no candidate.  A Minpart witness that fails independent
    re-validation discards its rule entirely (defense in depth; it
    would indicate a search bug). *)

(** Certified I/O lower bounds: a pluggable registry of admissible
    rules with a budget-aware scheduler.

    Every rule is a theorem-backed inequality on the {e optimal} cost,
    so the maximum over every result is itself a certified lower bound.
    Crucially, only {e minimum} class counts are admissible in the
    paper's [r·(MIN(2r)−1)] bounds — a constructive partition's class
    count merely upper-bounds [MIN] and proves nothing by itself — so
    partition-backed rules only report counts that are certified exact
    (a finished {!Prbp_partition.Minpart} search, or its early
    certification where a validated constructive partition meets the
    search's anytime floor) or certified floors (the anytime floor of a
    truncated search).  Witness partitions are re-validated through
    {!Segment.of_minpart} before any count is believed.

    The built-in rules, in registration (= tie-break priority) order:

    - ["trivial"] — sources with an out-edge plus sinks with an
      in-edge; both games (an isolated node needs no I/O, so the
      library-wide [Dag.trivial_cost] would overcount here).
    - ["source-cut"] — [r·(⌈q/2r⌉−1)] for [q] sources: any dominator
      of the full node set contains every source, and dominator minima
      are subadditive across the classes of a [2r]-dominator partition,
      so [MIN_dom(2r) ≥ ⌈q/2r⌉]; Theorem 6.7 applies (PRBP, hence also
      RBP).
    - ["sink-cut"] — the edge-side mirror: one in-edge per sink is an
      edge-terminal of its S-edge-partition class and a class carries
      at most [2r] terminals, so [MIN_edge(2r) ≥ ⌈#sinks'/2r⌉];
      Theorem 6.5 applies (both games).
    - ["closed-form"] — the Section 6.3 analytic bounds, auto-attached
      from the DAG's {!Prbp_dag.Dag.family} tag through the
      {!Prbp_graphs.Closed_form} registry; results are labelled
      ["closed-form:<name>"].
    - ["exact-dominator"] / ["exact-spartition"] / ["exact-edge"] —
      Theorems 6.7 / 5.4 / 6.5 with [MIN] computed by
      {!Prbp_partition.Minpart} under the rule's budget slice
      (["exact-spartition"] is RBP-only; the others hold for PRBP and
      therefore RBP).  Result labels grade the provenance:
      ["exact-*"] for a finished search, ["constructive-*"] for an
      early certification seeded by a {!Segment} partition, and
      ["anytime-*"] for a truncated search's certified floor. *)

type game = Rbp | Prbp

val game_label : game -> string
(** ["rbp"] | ["prbp"]. *)

type result = {
  label : string;
      (** attribution label, e.g. ["closed-form:fft"]; need not equal
          the rule's name when one rule yields graded or multiple
          results *)
  bound : int;  (** a certified lower bound on [OPT_game(r)]; ≥ 0 *)
  witness : Segment.t option;
      (** for partition rules: the minimum partition realizing the
          count, re-validated through {!Segment.of_minpart} *)
  truncated : bool;
      (** [true] when the result is a budget-truncated floor that more
          budget could improve *)
}

(** A lower-bound rule.  {b Soundness contract}: every [result.bound]
    returned by [compute] must be a certified lower bound on
    [OPT_game(r)] for each game the rule declares. *)
module type RULE = sig
  val name : string
  (** Registry key, unique; also the [?rules] selection handle. *)

  val games : game list
  (** Games the rule's inequality holds for. *)

  val share : int
  (** Relative weight of the rule's wall-clock consumption; the
      scheduler splits the budget deadline among applicable rules
      proportionally.  0 marks a negligible (closed-form style) rule,
      which runs under the unsliced budget. *)

  val applies :
    budget:Prbp_solver.Solver.Budget.t ->
    game:game ->
    r:int ->
    Prbp_dag.Dag.t ->
    bool
  (** Cheap feasibility gate, evaluated before budget slicing (so only
      rules that will actually run dilute the shares). *)

  val compute :
    budget:Prbp_solver.Solver.Budget.t ->
    game:game ->
    r:int ->
    Prbp_dag.Dag.t ->
    result list
  (** Run the rule under its budget slice.  May return several graded
      results, or none; raising [Invalid_argument]/[Failure] is treated
      as none. *)
end

val register : (module RULE) -> unit
(** Append a rule to the registry (registration order is the tie-break
    priority in {!compute}).
    @raise Invalid_argument on a duplicate name. *)

val names : unit -> string list
(** Registered rule names, in registration order. *)

type t = {
  game : game;
  r : int;
  bound : int;  (** the best certified lower bound on [OPT_game(r)] *)
  rule : string;  (** label of the winning result; ["none"] if empty *)
  witness : Segment.t option;
      (** the winning result's witness partition, when it has one *)
  evaluated : (string * int) list;
      (** every result produced, as (label, bound) — the per-rule
          attribution trail *)
  truncated : bool;
      (** some rule was budget-truncated: a re-run with more budget
          could tighten the bound *)
}

val compute :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?rules:string list ->
  game:game ->
  r:int ->
  Prbp_dag.Dag.t ->
  t
(** Run every applicable registered rule and keep the best bound (ties
    keep the earliest-registered).  [?rules] restricts to the named
    rules (unknown names simply select nothing).  Total function: with
    the built-ins registered the trivial rule always applies, so the
    result is at least 0.

    The exact rules are gated — at most 62 nodes / edges (the lattice
    representation's hard limit), and beyond 18 only when [budget]
    carries a wall-clock deadline — and the deadline is split across
    the applicable budget-consuming rules by [share]; a search that
    exhausts its slice still contributes its certified anytime floor,
    marked [truncated]. *)

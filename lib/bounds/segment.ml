module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Topo = Prbp_dag.Topo
module Dominator = Prbp_dag.Dominator
module Spart = Prbp_partition.Spart
module Span = Prbp_obs.Span

type flavor = Spartition | Dominator | Edge

type t = {
  flavor : flavor;
  s : int;
  classes : Bitset.t array;
  minimal : bool;
}

let flavor_label = function
  | Spartition -> "spartition"
  | Dominator -> "dominator"
  | Edge -> "edge"

let n_classes t = Array.length t.classes

let check flavor g ~s classes =
  match flavor with
  | Spartition -> Spart.is_spartition g ~s classes
  | Dominator -> Spart.is_dominator_partition g ~s classes
  | Edge -> Spart.is_edge_partition g ~s classes

let validate g t = check t.flavor g ~s:t.s t.classes

(* Every constructor funnels through here: nothing becomes a [t]
   without passing the exact checker. *)
let make ~minimal flavor g ~s classes =
  match check flavor g ~s classes with
  | Ok () -> Ok { flavor; s; classes; minimal }
  | Error e ->
      Error (Printf.sprintf "Segment: %s partition failed validation: %s"
               (flavor_label flavor) e)

let of_minpart flavor g ~s witness = make ~minimal:true flavor g ~s witness

(* ------------------------------------------------------------------ *)
(* Greedy galloping sweep.

   [elems] is a processing order whose contiguous segments satisfy the
   flavor's ordering condition; [fits start len] asks the exact oracle
   whether the block [elems.(start .. start+len-1)] is a legal class.
   Any block of size ≤ s is legal (it dominates itself and contains
   its own terminals), so each class advances by at least
   [min s remaining] elements.  Beyond that the sweep gallops: double
   the candidate length while the oracle accepts, then binary-search
   the boundary.  Feasibility of dominator minima is antitone in the
   block but terminal-set size is not, so the boundary found may not be
   the global maximum — harmless, because only lengths the oracle
   actually accepted are ever used. *)

let sweep ~n_elems ~s ~fits =
  let classes = ref [] in
  let start = ref 0 in
  while !start < n_elems do
    let remaining = n_elems - !start in
    let fits_len len = fits ~start:!start ~len in
    let rec bsearch good bad =
      if bad - good <= 1 then good
      else
        let mid = (good + bad) / 2 in
        if fits_len mid then bsearch mid bad else bsearch good mid
    in
    let rec gallop good =
      if good >= remaining then remaining
      else
        let cand = min remaining (2 * good) in
        if fits_len cand then gallop cand else bsearch good cand
    in
    let len = if remaining <= s then remaining else gallop s in
    classes := (!start, len) :: !classes;
    start := !start + len
  done;
  List.rev !classes

(* Trace a constructive partitioner: flavor/s at entry, class count on
   success.  One branch when tracing is off. *)
let traced name flavor ~s body =
  if not (Span.enabled ()) then body ()
  else
    Span.with_ ~name
      ~attrs:[ ("flavor", flavor_label flavor); ("s", string_of_int s) ]
      (fun () ->
        let r = body () in
        (match r with
        | Ok t -> Span.add_attr "classes" (string_of_int (n_classes t))
        | Error _ -> ());
        r)

let block_bitset ~capacity elems ~start ~len =
  let b = Bitset.create capacity in
  for i = start to start + len - 1 do
    Bitset.add b elems.(i)
  done;
  b

let greedy ?(flavor = Spartition) g ~s =
  if s < 1 then Error "Segment: s must be >= 1"
  else
    traced "segment.greedy" flavor ~s @@ fun () ->
    match flavor with
    | Spartition | Dominator ->
        let elems = Topo.sort g in
        let n = Dag.n_nodes g in
        let fits ~start ~len =
          let b = block_bitset ~capacity:n elems ~start ~len in
          Dominator.min_dominator_size g b <= s
          && (flavor = Dominator
             || Bitset.cardinal (Dominator.terminal_set g b) <= s)
        in
        let cuts = sweep ~n_elems:n ~s ~fits in
        let classes =
          Array.of_list
            (List.map
               (fun (start, len) -> block_bitset ~capacity:n elems ~start ~len)
               cuts)
        in
        make ~minimal:false flavor g ~s classes
    | Edge ->
        let elems = Topo.edge_order g in
        let m = Dag.n_edges g in
        let fits ~start ~len =
          let b = block_bitset ~capacity:m elems ~start ~len in
          Dominator.min_edge_dominator_size g b <= s
          && Bitset.cardinal (Dominator.edge_terminal_set g b) <= s
        in
        let cuts = sweep ~n_elems:m ~s ~fits in
        let classes =
          Array.of_list
            (List.map
               (fun (start, len) -> block_bitset ~capacity:m elems ~start ~len)
               cuts)
        in
        make ~minimal:false flavor g ~s classes

let level_cut ?(flavor = Spartition) g ~s =
  if s < 1 then Error "Segment: s must be >= 1"
  else
    traced "segment.level-cut" flavor ~s @@ fun () ->
    match flavor with
    | Edge -> Error "Segment: level_cut supports node flavors only"
    | Spartition | Dominator ->
        let n = Dag.n_nodes g in
        let classes = ref [] in
        Array.iter
          (fun level ->
            let rec chunk = function
              | [] -> ()
              | nodes ->
                  let b = Bitset.create n in
                  let rest = ref nodes in
                  let k = ref 0 in
                  while !k < s && !rest <> [] do
                    (match !rest with
                    | v :: tl ->
                        Bitset.add b v;
                        rest := tl
                    | [] -> ());
                    incr k
                  done;
                  classes := b :: !classes;
                  chunk !rest
            in
            chunk level)
          (Topo.levels g);
        make ~minimal:false flavor g ~s (Array.of_list (List.rev !classes))

module Dag = Prbp_dag.Dag
module Solver = Prbp_solver.Solver
module Clock = Prbp_obs.Clock
module Span = Prbp_obs.Span
module Metrics = Prbp_obs.Metrics

type moves =
  | Rbp_moves of Prbp_pebble.Move.R.t list
  | Prbp_moves of Prbp_pebble.Move.P.t list

type t = {
  game : Lower.game;
  r : int;
  n : int;
  m : int;
  lower : Lower.t;
  upper : int;
  width : int;
  moves : moves;
  meth : Upper.meth;
  verified : [ `Literal | `Engine ];
  profile : Segment.t option;
  tight : bool;
  elapsed_s : float;
  curve : Solver.Convergence.curve;
}

let scale_budget (b : Solver.Budget.t) frac =
  {
    b with
    Solver.Budget.max_millis =
      Option.map
        (fun ms -> max 1 (int_of_float (float_of_int ms *. frac)))
        b.Solver.Budget.max_millis;
  }

let emit telemetry event =
  match telemetry with
  | Some sink -> sink.Solver.Telemetry.emit event
  | None -> ()

(* Brackets report certified bounds at stage boundaries, not search
   counters, so the counter fields of their progress events are 0. *)
let stage_progress ~elapsed_s ~lower ~upper : Solver.Telemetry.progress =
  {
    expansions = 0;
    explored = 0;
    pruned = 0;
    frontier = 0;
    depth = 0;
    table_load = 0.;
    elapsed_s;
    lower;
    upper;
  }

(* Stage timings, one histogram family labeled by stage; observed once
   per bracket run, far from any hot loop. *)
let stage_hist stage =
  Metrics.histogram ~help:"Wall-clock seconds spent per bracket stage"
    ~labels:[ ("stage", stage) ]
    "prbp_bracket_stage_seconds"

let m_stage_lower = stage_hist "lower"
let m_stage_upper = stage_hist "upper"
let m_stage_profile = stage_hist "profile"

let m_runs =
  Metrics.counter ~help:"Bracket runs completed (any outcome)"
    "prbp_bracket_runs_total"

(* Run [f] as a named bracket stage: a child span when tracing is on,
   and a stage-seconds observation either way (disabled observes are
   one branch). *)
let stage ~name hist f =
  let t0 = Clock.now () in
  let timed () =
    let r = f () in
    Metrics.Histogram.observe hist (Clock.elapsed_s t0);
    r
  in
  if Span.enabled () then Span.with_ ~name timed else timed ()

(* Constructive profile of the DAG at s = 2r: how the greedy
   partitioner decomposes it.  Flow computations make this O(n·poly),
   so skip it on very large DAGs; its absence never weakens the
   bracket (profiles are descriptive, the bounds carry the proof). *)
let profile_gate = 4096

let make_profile ~flavor g ~s =
  if Dag.n_nodes g > profile_gate then None
  else match Segment.greedy ~flavor g ~s with Ok seg -> Some seg | Error _ -> None

(* The leftover wall clock after [t0], under the run's total
   [max_millis]; [None] when the budget is unbounded. *)
let ms_left (budget : Solver.Budget.t) t0 =
  Option.map
    (fun ms -> ms - int_of_float (Clock.elapsed_s t0 *. 1000.))
    budget.Solver.Budget.max_millis

let run ?(budget = Solver.Budget.default) ?telemetry ?rules ~game ~r
    ~upper_portfolio ~profile_flavor g =
  let body () =
    let t0 = Clock.now () in
    emit telemetry
      (Solver.Telemetry.Start
         { width = Dag.n_nodes g; max_states = budget.Solver.Budget.max_states });
    (* the bracket's convergence curve: one certified (lower, upper)
       sighting per stage boundary, folded monotone *)
    let conv, _ = Solver.Convergence.recorder () in
    let sight ~lower ~upper =
      let elapsed_s = Clock.elapsed_s t0 in
      Solver.Convergence.observe conv ~t_s:elapsed_s ~lower ~upper;
      emit telemetry
        (Solver.Telemetry.Progress (stage_progress ~elapsed_s ~lower ~upper))
    in
    let finish outcome ~lower ~upper result =
      let elapsed_s = Clock.elapsed_s t0 in
      Solver.Convergence.observe conv ~t_s:elapsed_s ~lower ~upper;
      Metrics.Counter.incr m_runs;
      Span.add_attr "outcome" outcome;
      emit telemetry
        (Solver.Telemetry.Stop
           { outcome; progress = stage_progress ~elapsed_s ~lower ~upper });
      Result.map (fun mk -> mk elapsed_s (Solver.Convergence.curve conv)) result
    in
    let lower =
      stage ~name:"bracket.lower" m_stage_lower (fun () ->
          let l =
            Lower.compute ~budget:(scale_budget budget 0.4) ?rules ~game ~r g
          in
          Span.add_attr "rule" l.Lower.rule;
          Span.add_attr "bound" (string_of_int l.Lower.bound);
          l)
    in
    sight ~lower:lower.Lower.bound ~upper:None;
    (* rebalance: a lower phase that short-circuits hands its unused
       allotment to the upper phase (everything left on the clock, not
       a fixed 60%) *)
    let upper_budget =
      match ms_left budget t0 with
      | None -> budget
      | Some left ->
          { budget with Solver.Budget.max_millis = Some (max 1 left) }
    in
    let upper_result =
      stage ~name:"bracket.upper" m_stage_upper (fun () ->
          let u = upper_portfolio ~budget:upper_budget ~r g in
          (match u with
          | Ok (cost, _, meth, _) ->
              Span.add_attr "method" (Upper.meth_label meth);
              Span.add_attr "cost" (string_of_int cost)
          | Error _ -> ());
          u)
    in
    (match upper_result with
    | Ok (cost, _, _, _) -> sight ~lower:lower.Lower.bound ~upper:(Some cost)
    | Error _ -> ());
    (* and vice versa: if a lower rule was budget-truncated and the
       upper phase left usable time, spend it tightening the floor *)
    let lower =
      if not lower.Lower.truncated then lower
      else
        match ms_left budget t0 with
        | Some left
          when left
               >= max 50
                    (Option.value ~default:0 budget.Solver.Budget.max_millis
                    / 10) ->
            let l2 =
              stage ~name:"bracket.lower" m_stage_lower (fun () ->
                  Lower.compute
                    ~budget:
                      { budget with Solver.Budget.max_millis = Some left }
                    ?rules ~game ~r g)
            in
            if l2.Lower.bound > lower.Lower.bound then begin
              (match upper_result with
              | Ok (cost, _, _, _) ->
                  sight ~lower:l2.Lower.bound ~upper:(Some cost)
              | Error _ -> ());
              l2
            end
            else lower
        | _ -> lower
    in
    match upper_result with
    | Error e -> finish "unsolvable" ~lower:max_int ~upper:None (Error e)
    | Ok (upper, moves, meth, verified) ->
        if lower.Lower.bound > upper then
          (* both sides are independently certified, so this cannot
             happen unless a rule is unsound — refuse to report it *)
          finish "unsolvable" ~lower:max_int ~upper:None
            (Error
               (Printf.sprintf
                  "Bracket: certified lower bound %d exceeds verified upper \
                   bound %d — unsound rule?"
                  lower.Lower.bound upper))
        else begin
          let profile =
            stage ~name:"bracket.profile" m_stage_profile (fun () ->
                make_profile ~flavor:profile_flavor g ~s:(2 * r))
          in
          let tight = lower.Lower.bound = upper in
          finish
            (if tight then "optimal" else "bounded")
            ~lower:lower.Lower.bound ~upper:(Some upper)
            (Ok
               (fun elapsed_s curve ->
                 {
                   game;
                   r;
                   n = Dag.n_nodes g;
                   m = Dag.n_edges g;
                   lower;
                   upper;
                   width = upper - lower.Lower.bound;
                   moves;
                   meth;
                   verified;
                   profile;
                   tight;
                   elapsed_s;
                   curve;
                 }))
        end
  in
  if not (Span.enabled ()) then body ()
  else
    Span.with_ ~name:"bracket"
      ~attrs:
        [
          ("game", Lower.game_label game);
          ("r", string_of_int r);
          ("n", string_of_int (Dag.n_nodes g));
        ]
      body

let rbp ?budget ?telemetry ?rules ~r g =
  run ?budget ?telemetry ?rules ~game:Lower.Rbp ~r
    ~upper_portfolio:(fun ~budget ~r g ->
      Result.map
        (fun (u : _ Upper.t) ->
          (u.Upper.cost, Rbp_moves u.Upper.moves, u.Upper.meth, u.Upper.verified))
        (Upper.rbp ~budget ~r g))
    ~profile_flavor:Segment.Spartition g

let prbp ?budget ?telemetry ?rules ~r g =
  run ?budget ?telemetry ?rules ~game:Lower.Prbp ~r
    ~upper_portfolio:(fun ~budget ~r g ->
      Result.map
        (fun (u : _ Upper.t) ->
          (u.Upper.cost, Prbp_moves u.Upper.moves, u.Upper.meth, u.Upper.verified))
        (Upper.prbp ~budget ~r g))
    ~profile_flavor:Segment.Dominator g

let pp ppf t =
  Format.fprintf ppf "%s r=%d: %d <= OPT <= %d (width %d, %s / %s%s, %.2fs)"
    (Lower.game_label t.game) t.r t.lower.Lower.bound t.upper t.width
    t.lower.Lower.rule
    (Upper.meth_label t.meth)
    (if t.tight then ", tight" else "")
    t.elapsed_s

(** Certified I/O upper bounds: local search over heuristic strategies.

    A candidate strategy's cost is {e never} taken from the pebbler
    that produced it: every candidate is replayed through an
    independent rule checker — {!Prbp_pebble.Verifier} (the literal,
    paper-transcribed rules) at small scale, the optimized engine's own
    [check] beyond the verifier's comfortable range — and a candidate
    the checker rejects is dropped from the portfolio, not repaired.
    The returned cost is therefore the certified cost of a complete
    pebbling whose move list is included as the certificate.

    The portfolio, per game:

    - every eviction policy of {!Prbp_solver.Heuristic} (Belady / LRU /
      FIFO), and for PRBP each policy with and without [defer_saves] —
      the recompute-vs-save trade: deferring the save of a
      partially-aggregated value in favor of evicting a free resident;
    - {e banded} orders ({!banded_order} at heights 1–3) under Belady:
      blocked schedules that keep a band of consecutive depth levels'
      components cache-resident — the classic tiling win on layered
      DAGs like FFT, where the default row-by-row order thrashes;
    - the PRBP greedy {e edge} scheduler (small DAGs);
    - hill climbing over the processing order: deterministic LCG-driven
      adjacent transpositions of the topological order (only swaps that
      keep the order topological), re-running the Belady pebbler on
      each perturbed order while the budget's wall clock allows;
    - a final {!Prbp_solver.Optimize} pass on the incumbent (deletes
      redundant saves/loads, each deletion re-verified by replay). *)

type meth = {
  base : string;  (** ["belady"], ["lru+defer"], ["greedy-edges"], … *)
  reorder_seed : int option;
      (** LCG seed of the order perturbation, when hill climbing won *)
  optimized : bool;  (** the {!Prbp_solver.Optimize} pass improved it *)
}

val meth_label : meth -> string
(** E.g. ["belady+reorder+opt"]. *)

type 'm t = {
  cost : int;  (** certified by independent replay *)
  moves : 'm list;  (** the complete pebbling achieving [cost] *)
  meth : meth;
  verified : [ `Literal | `Engine ];
      (** which checker certified it: the literal {!Prbp_pebble.Verifier}
          or the optimized engine's [check] *)
}

val banded_order : Prbp_dag.Dag.t -> h:int -> Prbp_dag.Dag.node array
(** A topological order that groups [h] consecutive depth levels into a
    band and emits each band connected-component by connected-component
    (components of the edges inside the band's one-level-overlapping
    span; deterministic: components by minimum emitted node id, nodes
    by (level, id)).  Always a valid topological order, for any DAG and
    any [h ≥ 1]. *)

val rbp :
  ?budget:Prbp_solver.Solver.Budget.t ->
  r:int ->
  Prbp_dag.Dag.t ->
  (Prbp_pebble.Move.R.t t, string) result
(** Best verified RBP strategy found within [budget] (wall clock and
    cancellation honored between candidates; at least the base policy
    portfolio always runs).  [Error] if [r] is below the RBP
    feasibility threshold [Δin + 1] or no candidate survives
    verification. *)

val prbp :
  ?budget:Prbp_solver.Solver.Budget.t ->
  r:int ->
  Prbp_dag.Dag.t ->
  (Prbp_pebble.Move.P.t t, string) result
(** PRBP counterpart; requires [r ≥ 2] on any DAG with an edge. *)

module Dag = Prbp_dag.Dag
module Topo = Prbp_dag.Topo
module Solver = Prbp_solver.Solver
module Heuristic = Prbp_solver.Heuristic
module Thresholds = Prbp_solver.Thresholds
module Optimize = Prbp_solver.Optimize
module Verifier = Prbp_pebble.Verifier
module Rbp_engine = Prbp_pebble.Rbp
module Prbp_engine = Prbp_pebble.Prbp
module Clock = Prbp_obs.Clock
module Span = Prbp_obs.Span
module Metrics = Prbp_obs.Metrics

let m_candidates =
  Metrics.counter ~help:"Upper-bound candidate strategies attempted"
    "prbp_upper_candidates_total"

let m_accepted =
  Metrics.counter ~help:"Upper-bound candidates that survived verification"
    "prbp_upper_accepted_total"

type meth = { base : string; reorder_seed : int option; optimized : bool }

let meth_label m =
  m.base
  ^ (if m.reorder_seed <> None then "+reorder" else "")
  ^ if m.optimized then "+opt" else ""

type 'm t = {
  cost : int;
  moves : 'm list;
  meth : meth;
  verified : [ `Literal | `Engine ];
}

(* The literal verifier keeps whole states as sorted lists — fine up to
   a few thousand edges and a few ten-thousand moves; beyond that, the
   optimized engine's rule checker is the independent certifier. *)
let literal_ok g moves =
  Dag.n_edges g <= 4000 && List.length moves <= 20_000

let verify_rbp ~r g moves =
  if literal_ok g moves then
    match Verifier.R.check ~r g moves with
    | Ok c -> Ok (c, `Literal)
    | Error e -> Error e
  else
    match Rbp_engine.check (Rbp_engine.config ~r ()) g moves with
    | Ok c -> Ok (c, `Engine)
    | Error e -> Error e

let verify_prbp ~r g moves =
  if literal_ok g moves then
    match Verifier.P.check ~r g moves with
    | Ok c -> Ok (c, `Literal)
    | Error e -> Error e
  else
    match Prbp_engine.check (Prbp_engine.config ~r ()) g moves with
    | Ok c -> Ok (c, `Engine)
    | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Deterministic order perturbation: a Lehmer LCG drives adjacent
   transpositions, applied only where the pair is not an edge — the
   perturbed array stays a topological order, so the pebblers accept
   it without re-checking. *)

let lcg st = st * 48271 mod 0x7fffffff

let perturb g base seed =
  let order = Array.copy base in
  let n = Array.length order in
  let st = ref (max 1 seed) in
  for _ = 1 to max 4 (n / 8) do
    st := lcg !st;
    let i = !st mod (n - 1) in
    let u = order.(i) and v = order.(i + 1) in
    if not (Dag.has_edge g u v) then begin
      order.(i) <- v;
      order.(i + 1) <- u
    end
  done;
  order

let hill_climb_iters = 24

type clock = { time_ok : unit -> bool }

let make_clock (budget : Solver.Budget.t) =
  let deadline = Clock.deadline_of_millis budget.Solver.Budget.max_millis in
  let time_ok () =
    (not (Clock.expired deadline))
    && match budget.Solver.Budget.cancelled with
       | Some f -> not (f ())
       | None -> true
  in
  { time_ok }

(* Shared portfolio driver: [candidates] yields (meth, lazy moves);
   every candidate is certified by [verify] before its cost is
   believed, and a rejected or crashing candidate is skipped. *)
let run_portfolio ~verify ~clock ~base_candidates ~reorder ~optimize =
  let best = ref None in
  let consider meth moves =
    match verify moves with
    | Error _ -> ()
    | Ok (cost, verified) ->
        Metrics.Counter.incr m_accepted;
        (match !best with
        | Some b when b.cost <= cost -> ()
        | _ -> best := Some { cost; moves; meth; verified })
  in
  let attempt ?(span = "upper.candidate") meth produce =
    Metrics.Counter.incr m_candidates;
    let go () =
      match produce () with
      | moves -> consider meth moves
      | exception (Invalid_argument _ | Failure _) -> ()
    in
    if Span.enabled () then
      Span.with_ ~name:span ~attrs:[ ("method", meth_label meth) ] go
    else go ()
  in
  let go () =
    List.iter (fun (meth, produce) -> attempt meth produce) base_candidates;
    (match reorder with
    | None -> ()
    | Some run_with_order ->
        let seed = ref 1 in
        let iters = ref 0 in
        while !iters < hill_climb_iters && clock.time_ok () do
          incr iters;
          seed := lcg !seed;
          let s = !seed in
          attempt ~span:"upper.reorder"
            { base = "belady"; reorder_seed = Some s; optimized = false }
            (fun () -> run_with_order s)
        done);
    (match !best with
    | Some b when List.length b.moves <= 2500 && clock.time_ok () ->
        attempt ~span:"upper.optimize" { b.meth with optimized = true }
          (fun () -> optimize b.moves)
    | _ -> ());
    match !best with
    | Some b -> Ok b
    | None -> Error "Upper: no candidate strategy survived verification"
  in
  if not (Span.enabled ()) then go ()
  else
    Span.with_ ~name:"upper.portfolio" (fun () ->
        let r = go () in
        (match r with
        | Ok b ->
            Span.add_attr "method" (meth_label b.meth);
            Span.add_attr "cost" (string_of_int b.cost)
        | Error _ -> ());
        r)

let policies =
  [ ("belady", Heuristic.Belady); ("lru", Heuristic.Lru);
    ("fifo", Heuristic.Fifo) ]

let meth base = { base; reorder_seed = None; optimized = false }

(* ------------------------------------------------------------------ *)
(* Banded topological orders.  The default topological order sweeps
   layered DAGs row by row, thrashing the cache on every long row;
   grouping [h] consecutive depth levels into a band and emitting the
   band component by component keeps each component's working set
   resident, so values are loaded once per band instead of once per
   level (on FFT this is the classic blocked schedule).

   Band [p] {e spans} levels [p·h .. (p+1)·h] and {e emits} levels
   (p·h .. (p+1)·h] — plus level 0 for band 0 — so each level is
   emitted exactly once and band boundaries overlap by one level (the
   values the next band consumes).  Components are connected components
   of the edges inside the span; emission order is bands ascending,
   components by minimum emitted node id, nodes by (level, id).

   The result is always a topological order: an edge (u,v) has
   level u < level v, so either u is emitted by an earlier band, or
   both endpoints lie in v's band's span — making them one component,
   ordered by level. *)

let banded_order g ~h =
  let n = Dag.n_nodes g in
  let levels = Topo.levels g in
  let nlev = Array.length levels in
  let level_of = Array.make n 0 in
  Array.iteri (fun l ns -> List.iter (fun v -> level_of.(v) <- l) ns) levels;
  let order = Array.make n 0 in
  let pos = ref 0 in
  let n_bands = max 1 ((nlev - 1 + h - 1) / h) in
  for p = 0 to n_bands - 1 do
    let lo = p * h and hi = min (nlev - 1) ((p + 1) * h) in
    let span = ref [] in
    for l = lo to hi do
      List.iter (fun v -> span := v :: !span) levels.(l)
    done;
    let span = !span in
    let parent = Hashtbl.create 64 in
    List.iter (fun v -> Hashtbl.replace parent v v) span;
    let rec find v =
      let pv = Hashtbl.find parent v in
      if pv = v then v
      else begin
        let root = find pv in
        Hashtbl.replace parent v root;
        root
      end
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
    in
    List.iter
      (fun v ->
        if level_of.(v) > lo then
          Dag.iter_pred (fun u -> if level_of.(u) >= lo then union u v) g v)
      span;
    let emitted =
      List.filter
        (fun v -> level_of.(v) > lo || (p = 0 && level_of.(v) = 0))
        span
    in
    let by_root = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let root = find v in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_root root) in
        Hashtbl.replace by_root root (v :: prev))
      emitted;
    let comps =
      Hashtbl.fold
        (fun _ vs acc ->
          let key = List.fold_left min max_int vs in
          let vs =
            List.sort
              (fun a b -> compare (level_of.(a), a) (level_of.(b), b))
              vs
          in
          (key, vs) :: acc)
        by_root []
    in
    List.iter
      (fun (_, vs) ->
        List.iter
          (fun v ->
            order.(!pos) <- v;
            incr pos)
          vs)
      (List.sort compare comps)
  done;
  order

let banded_heights = [ 1; 2; 3 ]

let banded_candidates run_with_order g =
  if Dag.n_nodes g < 2 then []
  else
    List.map
      (fun h ->
        ( meth (Printf.sprintf "banded%d" h),
          fun () -> run_with_order (banded_order g ~h) ))
      banded_heights

let rbp ?(budget = Solver.Budget.default) ~r g =
  if r < Thresholds.rbp_feasible_r g then
    Error "Upper.rbp: r is below the RBP feasibility threshold (max in-degree + 1)"
  else
    let clock = make_clock budget in
    let base_candidates =
      List.map
        (fun (name, policy) ->
          (meth name, fun () -> Heuristic.rbp ~policy ~r g))
        policies
      @ banded_candidates
          (fun order -> Heuristic.rbp ~policy:Heuristic.Belady ~order ~r g)
          g
    in
    let reorder =
      if Dag.n_nodes g >= 3 then
        let base = Topo.sort g in
        Some
          (fun s -> Heuristic.rbp ~policy:Heuristic.Belady ~order:(perturb g base s) ~r g)
      else None
    in
    run_portfolio ~verify:(verify_rbp ~r g) ~clock ~base_candidates ~reorder
      ~optimize:(fun moves -> Optimize.rbp (Rbp_engine.config ~r ()) g moves)

let prbp ?(budget = Solver.Budget.default) ~r g =
  if r < Thresholds.prbp_feasible_r g then
    Error "Upper.prbp: r is below the PRBP feasibility threshold (2 on any DAG with an edge)"
  else
    let clock = make_clock budget in
    let base_candidates =
      List.concat_map
        (fun (name, policy) ->
          [ (meth name, fun () -> Heuristic.prbp ~policy ~r g);
            ( meth (name ^ "+defer"),
              fun () -> Heuristic.prbp ~policy ~defer_saves:true ~r g ) ])
        policies
      @ banded_candidates
          (fun order -> Heuristic.prbp ~policy:Heuristic.Belady ~order ~r g)
          g
      @
      if Dag.n_edges g <= 4000 then
        [ (meth "greedy-edges", fun () -> Heuristic.prbp_greedy ~r g) ]
      else []
    in
    let reorder =
      if Dag.n_nodes g >= 3 then
        let base = Topo.sort g in
        Some
          (fun s ->
            Heuristic.prbp ~policy:Heuristic.Belady ~order:(perturb g base s) ~r g)
      else None
    in
    run_portfolio ~verify:(verify_prbp ~r g) ~clock ~base_candidates ~reorder
      ~optimize:(fun moves -> Optimize.prbp (Prbp_engine.config ~r ()) g moves)

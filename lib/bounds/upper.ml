module Dag = Prbp_dag.Dag
module Topo = Prbp_dag.Topo
module Solver = Prbp_solver.Solver
module Heuristic = Prbp_solver.Heuristic
module Thresholds = Prbp_solver.Thresholds
module Optimize = Prbp_solver.Optimize
module Verifier = Prbp_pebble.Verifier
module Rbp_engine = Prbp_pebble.Rbp
module Prbp_engine = Prbp_pebble.Prbp
module Clock = Prbp_obs.Clock
module Span = Prbp_obs.Span
module Metrics = Prbp_obs.Metrics

let m_candidates =
  Metrics.counter ~help:"Upper-bound candidate strategies attempted"
    "prbp_upper_candidates_total"

let m_accepted =
  Metrics.counter ~help:"Upper-bound candidates that survived verification"
    "prbp_upper_accepted_total"

type meth = { base : string; reorder_seed : int option; optimized : bool }

let meth_label m =
  m.base
  ^ (if m.reorder_seed <> None then "+reorder" else "")
  ^ if m.optimized then "+opt" else ""

type 'm t = {
  cost : int;
  moves : 'm list;
  meth : meth;
  verified : [ `Literal | `Engine ];
}

(* The literal verifier keeps whole states as sorted lists — fine up to
   a few thousand edges and a few ten-thousand moves; beyond that, the
   optimized engine's rule checker is the independent certifier. *)
let literal_ok g moves =
  Dag.n_edges g <= 4000 && List.length moves <= 20_000

let verify_rbp ~r g moves =
  if literal_ok g moves then
    match Verifier.R.check ~r g moves with
    | Ok c -> Ok (c, `Literal)
    | Error e -> Error e
  else
    match Rbp_engine.check (Rbp_engine.config ~r ()) g moves with
    | Ok c -> Ok (c, `Engine)
    | Error e -> Error e

let verify_prbp ~r g moves =
  if literal_ok g moves then
    match Verifier.P.check ~r g moves with
    | Ok c -> Ok (c, `Literal)
    | Error e -> Error e
  else
    match Prbp_engine.check (Prbp_engine.config ~r ()) g moves with
    | Ok c -> Ok (c, `Engine)
    | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Deterministic order perturbation: a Lehmer LCG drives adjacent
   transpositions, applied only where the pair is not an edge — the
   perturbed array stays a topological order, so the pebblers accept
   it without re-checking. *)

let lcg st = st * 48271 mod 0x7fffffff

let perturb g base seed =
  let order = Array.copy base in
  let n = Array.length order in
  let st = ref (max 1 seed) in
  for _ = 1 to max 4 (n / 8) do
    st := lcg !st;
    let i = !st mod (n - 1) in
    let u = order.(i) and v = order.(i + 1) in
    if not (Dag.has_edge g u v) then begin
      order.(i) <- v;
      order.(i + 1) <- u
    end
  done;
  order

let hill_climb_iters = 24

type clock = { time_ok : unit -> bool }

let make_clock (budget : Solver.Budget.t) =
  let deadline = Clock.deadline_of_millis budget.Solver.Budget.max_millis in
  let time_ok () =
    (not (Clock.expired deadline))
    && match budget.Solver.Budget.cancelled with
       | Some f -> not (f ())
       | None -> true
  in
  { time_ok }

(* Shared portfolio driver: [candidates] yields (meth, lazy moves);
   every candidate is certified by [verify] before its cost is
   believed, and a rejected or crashing candidate is skipped. *)
let run_portfolio ~verify ~clock ~base_candidates ~reorder ~optimize =
  let best = ref None in
  let consider meth moves =
    match verify moves with
    | Error _ -> ()
    | Ok (cost, verified) ->
        Metrics.Counter.incr m_accepted;
        (match !best with
        | Some b when b.cost <= cost -> ()
        | _ -> best := Some { cost; moves; meth; verified })
  in
  let attempt ?(span = "upper.candidate") meth produce =
    Metrics.Counter.incr m_candidates;
    let go () =
      match produce () with
      | moves -> consider meth moves
      | exception (Invalid_argument _ | Failure _) -> ()
    in
    if Span.enabled () then
      Span.with_ ~name:span ~attrs:[ ("method", meth_label meth) ] go
    else go ()
  in
  let go () =
    List.iter (fun (meth, produce) -> attempt meth produce) base_candidates;
    (match reorder with
    | None -> ()
    | Some run_with_order ->
        let seed = ref 1 in
        let iters = ref 0 in
        while !iters < hill_climb_iters && clock.time_ok () do
          incr iters;
          seed := lcg !seed;
          let s = !seed in
          attempt ~span:"upper.reorder"
            { base = "belady"; reorder_seed = Some s; optimized = false }
            (fun () -> run_with_order s)
        done);
    (match !best with
    | Some b when List.length b.moves <= 2500 && clock.time_ok () ->
        attempt ~span:"upper.optimize" { b.meth with optimized = true }
          (fun () -> optimize b.moves)
    | _ -> ());
    match !best with
    | Some b -> Ok b
    | None -> Error "Upper: no candidate strategy survived verification"
  in
  if not (Span.enabled ()) then go ()
  else
    Span.with_ ~name:"upper.portfolio" (fun () ->
        let r = go () in
        (match r with
        | Ok b ->
            Span.add_attr "method" (meth_label b.meth);
            Span.add_attr "cost" (string_of_int b.cost)
        | Error _ -> ());
        r)

let policies =
  [ ("belady", Heuristic.Belady); ("lru", Heuristic.Lru);
    ("fifo", Heuristic.Fifo) ]

let meth base = { base; reorder_seed = None; optimized = false }

let rbp ?(budget = Solver.Budget.default) ~r g =
  if r < Thresholds.rbp_feasible_r g then
    Error "Upper.rbp: r is below the RBP feasibility threshold (max in-degree + 1)"
  else
    let clock = make_clock budget in
    let base_candidates =
      List.map
        (fun (name, policy) ->
          (meth name, fun () -> Heuristic.rbp ~policy ~r g))
        policies
    in
    let reorder =
      if Dag.n_nodes g >= 3 then
        let base = Topo.sort g in
        Some
          (fun s -> Heuristic.rbp ~policy:Heuristic.Belady ~order:(perturb g base s) ~r g)
      else None
    in
    run_portfolio ~verify:(verify_rbp ~r g) ~clock ~base_candidates ~reorder
      ~optimize:(fun moves -> Optimize.rbp (Rbp_engine.config ~r ()) g moves)

let prbp ?(budget = Solver.Budget.default) ~r g =
  if r < Thresholds.prbp_feasible_r g then
    Error "Upper.prbp: r is below the PRBP feasibility threshold (2 on any DAG with an edge)"
  else
    let clock = make_clock budget in
    let base_candidates =
      List.concat_map
        (fun (name, policy) ->
          [ (meth name, fun () -> Heuristic.prbp ~policy ~r g);
            ( meth (name ^ "+defer"),
              fun () -> Heuristic.prbp ~policy ~defer_saves:true ~r g ) ])
        policies
      @
      if Dag.n_edges g <= 4000 then
        [ (meth "greedy-edges", fun () -> Heuristic.prbp_greedy ~r g) ]
      else []
    in
    let reorder =
      if Dag.n_nodes g >= 3 then
        let base = Topo.sort g in
        Some
          (fun s ->
            Heuristic.prbp ~policy:Heuristic.Belady ~order:(perturb g base s) ~r g)
      else None
    in
    run_portfolio ~verify:(verify_prbp ~r g) ~clock ~base_candidates ~reorder
      ~optimize:(fun moves -> Optimize.prbp (Prbp_engine.config ~r ()) g moves)

module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Dominator = Prbp_dag.Dominator
module Solver = Prbp_solver.Solver
module Clock = Prbp_obs.Clock
module Span = Prbp_obs.Span
module Metrics = Prbp_obs.Metrics

type verdict =
  | Minimum of { classes : int; witness : Bitset.t array; exhaustive : bool }
  | No_partition
  | Truncated of { reason : Solver.reason; lower_so_far : int }

(* ------------------------------------------------------------------ *)
(* Budget gate over the lattice enumeration.  "States" are distinct
   masks materialized by the search (BFS table entries plus the
   per-expansion successor enumeration); the wall clock and the
   cancellation hook are polled every [check_every] of them, matching
   the exact solvers' anytime contract.  [max_words] has no meaning
   here (the tables are tiny next to the enumeration work) and is
   ignored. *)

exception Stop

type gate = {
  budget : Solver.Budget.t;
  deadline : float;  (* [infinity] when unbounded *)
  mutable masks : int;
  mutable ticks : int;
  mutable stop : Solver.reason option;
}

let make_gate (budget : Solver.Budget.t) =
  {
    budget;
    deadline = Clock.deadline_of_millis budget.Solver.Budget.max_millis;
    masks = 0;
    ticks = 0;
    stop = None;
  }

let halt gate reason =
  gate.stop <- Some reason;
  raise Stop

let tick gate =
  gate.masks <- gate.masks + 1;
  if gate.masks > gate.budget.Solver.Budget.max_states then
    halt gate Solver.Max_states;
  gate.ticks <- gate.ticks + 1;
  if gate.ticks >= gate.budget.Solver.Budget.check_every then begin
    gate.ticks <- 0;
    if Clock.expired gate.deadline then halt gate Solver.Deadline;
    match gate.budget.Solver.Budget.cancelled with
    | Some f when f () -> halt gate Solver.Cancelled
    | _ -> ()
  end

let m_masks =
  Metrics.counter
    ~help:"Lattice masks materialized across every Minpart search"
    "prbp_minpart_masks_total"

(* End-of-search bookkeeping: publish the mask count to the metrics
   registry and annotate the enclosing search span with it. *)
let finish_gate gate =
  Metrics.Counter.add m_masks gate.masks;
  if Span.enabled () then Span.add_attr "masks" (string_of_int gate.masks)

let traced name f = if Span.enabled () then Span.with_ ~name f else f ()

(* ------------------------------------------------------------------ *)
(* Generic shortest-chain search over a lattice of masks.

   [grow ~from ~visit] must call [visit elt mask'] for every way of
   adding one eligible element to [mask]; a chain step I → J is any
   J ⊇ I reachable by repeated growth whose block J\I stays feasible.
   Feasibility must be antitone in the block (once infeasible, all
   supersets are), which holds for dominator minima: a dominator for a
   superset dominates the subset.

   Each table entry remembers the predecessor ideal it was reached
   from, so reaching [full] yields not just the distance but a
   shortest chain ∅ = I₀ ⊂ I₁ ⊂ … ⊂ I_k = V whose blocks I_j \ I_{j-1}
   are the classes of a witness minimum partition. *)

(* BFS pops ideals in nondecreasing distance, and an ideal's distance is
   final at {e discovery}: the moment a distance-[d] ideal is popped,
   every ideal of distance ≤ [d] — in particular [full], were its
   distance that small — has already been discovered.  So, whenever
   [full] is still undiscovered at a pop of distance [d], MIN ≥ d+1 is
   a certified fact.  This drives both the anytime floor returned on
   truncation and the early-certification short-circuit: a constructive
   partition with [k] classes (validated by the caller) upper-bounds
   MIN, so the first pop with d+1 ≥ k proves MIN = k without the BFS
   ever reaching [full].  Both depend on detecting [full] at discovery
   time, not at pop time. *)

exception Found

type outcome =
  | Chain of int list  (* blocks of a shortest chain, front to back *)
  | Early              (* floor met the constructive class count *)
  | Exhausted          (* lattice exhausted: no valid partition *)
  | Stopped of Solver.reason * int  (* reason, certified MIN floor *)

let bfs_min_chain ~gate ~full ?floor_classes ~grow ~block_feasible ~block_ok ()
    =
  let dist = Hashtbl.create 1024 in
  let q = Queue.create () in
  Hashtbl.replace dist 0 (0, 0);
  Queue.add 0 q;
  (* distance of the most recently popped ideal: all ideals at distance
     ≤ floor_d are discovered, so MIN ≥ floor_d + 1 while [full] is
     undiscovered (checked: Found fires the instant it is). *)
  let floor_d = ref 0 in
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let i = Queue.pop q in
       let d, _ = Hashtbl.find dist i in
       floor_d := d;
       (match floor_classes with
       | Some k when d + 1 >= k ->
           result := Some Early;
           raise Found
       | _ -> ());
       (* enumerate feasible successor masks j ⊇ i by growing blocks *)
       let seen = Hashtbl.create 64 in
       let rec extend j =
         grow ~from:j (fun _elt j' ->
             if not (Hashtbl.mem seen j') then begin
               Hashtbl.add seen j' ();
               tick gate;
               let block = j' land lnot i in
               if block_feasible block then begin
                 if block_ok block && not (Hashtbl.mem dist j') then begin
                   Hashtbl.replace dist j' (d + 1, i);
                   if j' = full then begin
                     (* walk the parent chain back from [full]: the
                        successive set differences, front to back, are
                        V₁ … V_k *)
                     let rec blocks acc mask =
                       if mask = 0 then acc
                       else
                         let _, parent = Hashtbl.find dist mask in
                         blocks ((mask land lnot parent) :: acc) parent
                     in
                     result := Some (Chain (blocks [] full));
                     raise Found
                   end;
                   Queue.add j' q
                 end;
                 extend j'
               end
             end)
       in
       extend i
     done
   with
  | Found -> ()
  | Stop -> ());
  match (gate.stop, !result) with
  | _, Some o -> o
  | Some reason, None -> Stopped (reason, !floor_d + 1)
  | None, None -> Exhausted

(* ------------------------------------------------------------------ *)
(* Node partitions: masks are downward-closed node sets.               *)

let node_masks g =
  let n = Dag.n_nodes g in
  if n > 62 then invalid_arg "Minpart: at most 62 nodes";
  let pred_mask =
    Array.init n (fun v -> Dag.fold_pred (fun u acc -> acc lor (1 lsl u)) g v 0)
  in
  let grow ~from visit =
    for v = 0 to n - 1 do
      if from land (1 lsl v) = 0 && pred_mask.(v) land lnot from = 0 then
        visit v (from lor (1 lsl v))
    done
  in
  (grow, if n = 0 then 0 else (1 lsl n) - 1)

let to_bitset n mask =
  let b = Bitset.create n in
  for v = 0 to n - 1 do
    if mask land (1 lsl v) <> 0 then Bitset.add b v
  done;
  b

let ideals ?(budget = Solver.Budget.default) g =
  traced "minpart.ideals" @@ fun () ->
  let grow, _full = node_masks g in
  let gate = make_gate budget in
  let seen = Hashtbl.create 1024 in
  Hashtbl.replace seen 0 ();
  (try
     let rec go mask =
       grow ~from:mask (fun _ mask' ->
           if not (Hashtbl.mem seen mask') then begin
             Hashtbl.add seen mask' ();
             tick gate;
             go mask'
           end)
     in
     go 0
   with Stop -> ());
  finish_gate gate;
  match gate.stop with
  | Some reason -> Error reason
  | None -> Ok (Hashtbl.length seen)

(* An [upper_witness] is believed only after re-validation through the
   exact {!Spart} checker for its flavor — the floor target, and the
   partition an early-certified verdict hands back, must not rest on a
   caller's claim. *)
let checked_witness ~validate ~s = function
  | None -> None
  | Some w -> (
      match validate ~s w with Ok () -> Some w | Error _ -> None)

let finish ~gate ~witness_of ~upper_witness outcome =
  finish_gate gate;
  match outcome with
  | Chain blocks ->
      let witness = witness_of blocks in
      Minimum { classes = Array.length witness; witness; exhaustive = true }
  | Early ->
      (* only reachable when a validated upper witness set the floor
         target: MIN ≥ target and the witness has target classes, so it
         is itself a minimum partition *)
      let witness = Option.get upper_witness in
      Minimum
        { classes = Array.length witness; witness; exhaustive = false }
  | Exhausted -> No_partition
  | Stopped (reason, lower_so_far) -> Truncated { reason; lower_so_far }

let node_partition ?(budget = Solver.Budget.default) ?upper_witness g ~s
    ~need_terminal =
  let n = Dag.n_nodes g in
  let grow, full = node_masks g in
  let block_feasible block =
    block <> 0 && Dominator.min_dominator_size g (to_bitset n block) <= s
  in
  let block_ok block =
    (not need_terminal)
    || Bitset.cardinal (Dominator.terminal_set g (to_bitset n block)) <= s
  in
  if n = 0 then Minimum { classes = 0; witness = [||]; exhaustive = true }
  else
    let validate =
      if need_terminal then Spart.is_spartition g
      else Spart.is_dominator_partition g
    in
    let upper_witness = checked_witness ~validate ~s upper_witness in
    let floor_classes = Option.map Array.length upper_witness in
    let gate = make_gate budget in
    let outcome =
      bfs_min_chain ~gate ~full ?floor_classes ~grow ~block_feasible
        ~block_ok ()
    in
    finish ~gate
      ~witness_of:(fun blocks ->
        Array.of_list (List.map (to_bitset n) blocks))
      ~upper_witness outcome

let spartition ?budget ?upper_witness g ~s =
  traced "minpart.spartition" @@ fun () ->
  node_partition ?budget ?upper_witness g ~s ~need_terminal:true

let dominator_partition ?budget ?upper_witness g ~s =
  traced "minpart.dominator" @@ fun () ->
  node_partition ?budget ?upper_witness g ~s ~need_terminal:false

(* ------------------------------------------------------------------ *)
(* Edge partitions: masks are edge sets closed under "all in-edges of
   the tail come first" (the well-ordering of Definition 6.3).         *)

let edge_partition ?(budget = Solver.Budget.default) ?upper_witness g ~s =
  traced "minpart.edge" @@ fun () ->
  let n = Dag.n_nodes g and m = Dag.n_edges g in
  if m > 62 then invalid_arg "Minpart: at most 62 edges";
  let in_mask = Array.make n 0 in
  Dag.iter_edges (fun e _ v -> in_mask.(v) <- in_mask.(v) lor (1 lsl e)) g;
  let grow ~from visit =
    for e = 0 to m - 1 do
      if from land (1 lsl e) = 0 && in_mask.(Dag.edge_src g e) land lnot from = 0
      then visit e (from lor (1 lsl e))
    done
  in
  let edge_bitset mask =
    let b = Bitset.create m in
    for e = 0 to m - 1 do
      if mask land (1 lsl e) <> 0 then Bitset.add b e
    done;
    b
  in
  let block_feasible block =
    block <> 0 && Dominator.min_edge_dominator_size g (edge_bitset block) <= s
  in
  let block_ok block =
    Bitset.cardinal (Dominator.edge_terminal_set g (edge_bitset block)) <= s
  in
  if m = 0 then Minimum { classes = 0; witness = [||]; exhaustive = true }
  else
    let upper_witness =
      checked_witness ~validate:(Spart.is_edge_partition g) ~s upper_witness
    in
    let floor_classes = Option.map Array.length upper_witness in
    let gate = make_gate budget in
    let outcome =
      bfs_min_chain ~gate ~full:((1 lsl m) - 1) ?floor_classes ~grow
        ~block_feasible ~block_ok ()
    in
    finish ~gate
      ~witness_of:(fun blocks -> Array.of_list (List.map edge_bitset blocks))
      ~upper_witness outcome

(* ------------------------------------------------------------------ *)
(* Lower bounds.  A truncated search still contributes its certified
   anytime floor on MIN; only an infeasible [s] (no partition at all)
   yields the vacuous 0.                                               *)

let bound_of ~r = function
  | Minimum { classes; _ } -> max 0 (r * (classes - 1))
  | Truncated { lower_so_far; _ } -> max 0 (r * (lower_so_far - 1))
  | No_partition -> 0

let rbp_bound ?budget g ~r = bound_of ~r (spartition ?budget g ~s:(2 * r))

let prbp_bound_edge ?budget g ~r =
  bound_of ~r (edge_partition ?budget g ~s:(2 * r))

let prbp_bound_dom ?budget g ~r =
  bound_of ~r (dominator_partition ?budget g ~s:(2 * r))

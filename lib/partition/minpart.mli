(** Exact minimum class counts — [MIN_part], [MIN_dom], [MIN_edge] —
    by exhaustive search over the ideal lattice, with witness
    partitions and certified anytime floors.

    The ordering condition of Definitions 5.3 / 6.3 / 6.6 makes the
    class prefixes [V₁ ∪ … ∪ V_i] downward-closed sets (ideals) of the
    DAG (resp. "in-edges-first"-closed edge sets).  A minimum partition
    is therefore a shortest chain of ideals whose successive differences
    satisfy the size conditions, found here by breadth-first search over
    the lattice with exact (max-flow) dominator minima on every block.
    The search remembers each ideal's predecessor, so a successful
    verdict carries the chain's blocks — a concrete minimum partition
    that callers can re-validate independently through {!Spart}.

    Exponential — intended for DAGs of ≲ 15 nodes / ≲ 20 edges, where
    it turns the paper's Theorem 6.5 / 6.7 inequalities into exactly
    checkable statements.  Every search runs under a
    {!Prbp_solver.Solver.Budget}: the state cap counts distinct lattice
    masks materialized, the wall-clock deadline and cancellation hook
    are polled every [check_every] masks, and the memory cap is ignored
    (the tables are negligible next to the enumeration).

    Two mechanisms let an unfinished search still certify something:

    - {e Anytime floor}.  BFS pops ideals in nondecreasing distance and
      distances are final at discovery, so the instant a distance-[d]
      ideal is popped with the full ideal still undiscovered,
      [MIN ≥ d+1] is proven.  A budget-killed search reports that floor
      as {!Truncated}[.lower_so_far] instead of returning nothing.
    - {e Early certification}.  A constructive partition with [k]
      classes (passed as [upper_witness] and re-validated through the
      exact {!Spart} checker before being believed) proves [MIN ≤ k];
      the first pop at distance [k−1] then proves [MIN = k] and the
      search stops with a {!Minimum} verdict — [exhaustive = false] —
      whose witness is the constructive partition itself. *)

type verdict =
  | Minimum of {
      classes : int;
      witness : Prbp_dag.Bitset.t array;
      exhaustive : bool;
    }
      (** The exact minimum, with a witness partition reaching it
          (node classes for {!spartition} / {!dominator_partition},
          edge-id classes for {!edge_partition}).  [exhaustive] is
          [true] when the BFS itself reached the full ideal and [false]
          when the minimum was certified early by the validated
          [upper_witness] meeting the anytime floor — the count is
          exact either way. *)
  | No_partition
      (** The lattice was exhausted: no valid partition exists at this
          [s] (e.g. [s] below some forced dominator). *)
  | Truncated of { reason : Prbp_solver.Solver.reason; lower_so_far : int }
      (** The budget stopped the search first.  [lower_so_far] is the
          certified anytime floor on the minimum ([MIN ≥ lower_so_far]);
          the exact value is unknown. *)

val spartition :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?upper_witness:Prbp_dag.Bitset.t array ->
  Prbp_dag.Dag.t ->
  s:int ->
  verdict
(** [MIN_part(s)]: minimum classes of any S-partition (Definition
    5.3).  [budget] defaults to {!Prbp_solver.Solver.Budget.default}.
    [upper_witness], when given, must be a valid S-partition at [s]
    (it is re-checked through {!Spart.is_spartition} and silently
    dropped if invalid); it enables early certification. *)

val dominator_partition :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?upper_witness:Prbp_dag.Bitset.t array ->
  Prbp_dag.Dag.t ->
  s:int ->
  verdict
(** [MIN_dom(s)] (Definition 6.6). *)

val edge_partition :
  ?budget:Prbp_solver.Solver.Budget.t ->
  ?upper_witness:Prbp_dag.Bitset.t array ->
  Prbp_dag.Dag.t ->
  s:int ->
  verdict
(** [MIN_edge(s)] (Definition 6.3), searching over well-ordered edge
    prefixes. *)

val ideals :
  ?budget:Prbp_solver.Solver.Budget.t ->
  Prbp_dag.Dag.t ->
  (int, Prbp_solver.Solver.reason) result
(** Number of downward-closed node sets (for sizing feasibility). *)

val bound_of : r:int -> verdict -> int
(** The I/O lower bound a verdict certifies: [r·(classes−1)] for
    {!Minimum}, [r·(lower_so_far−1)] for {!Truncated} (the anytime
    floor is a certified bound on [MIN], so this is sound), and 0 for
    {!No_partition}. *)

val rbp_bound :
  ?budget:Prbp_solver.Solver.Budget.t -> Prbp_dag.Dag.t -> r:int -> int
(** Hong–Kung: [r · (MIN_part(2r) − 1)] with [MIN_part] computed
    exactly; on truncation, the anytime floor's bound (always a sound
    [OPT_RBP] lower bound). *)

val prbp_bound_edge :
  ?budget:Prbp_solver.Solver.Budget.t -> Prbp_dag.Dag.t -> r:int -> int
(** Theorem 6.5: [r · (MIN_edge(2r) − 1)], exactly or by anytime
    floor. *)

val prbp_bound_dom :
  ?budget:Prbp_solver.Solver.Budget.t -> Prbp_dag.Dag.t -> r:int -> int
(** Theorem 6.7: [r · (MIN_dom(2r) − 1)], exactly or by anytime
    floor. *)

(** Exact minimum class counts — [MIN_part], [MIN_dom], [MIN_edge] —
    by exhaustive search over the ideal lattice, with witness
    partitions.

    The ordering condition of Definitions 5.3 / 6.3 / 6.6 makes the
    class prefixes [V₁ ∪ … ∪ V_i] downward-closed sets (ideals) of the
    DAG (resp. "in-edges-first"-closed edge sets).  A minimum partition
    is therefore a shortest chain of ideals whose successive differences
    satisfy the size conditions, found here by breadth-first search over
    the lattice with exact (max-flow) dominator minima on every block.
    The search remembers each ideal's predecessor, so a successful
    verdict carries the chain's blocks — a concrete minimum partition
    that callers can re-validate independently through {!Spart}.

    Exponential — intended for DAGs of ≲ 15 nodes / ≲ 20 edges, where
    it turns the paper's Theorem 6.5 / 6.7 inequalities into exactly
    checkable statements.  Every search runs under a
    {!Prbp_solver.Solver.Budget}: the state cap counts distinct lattice
    masks materialized, the wall-clock deadline and cancellation hook
    are polled every [check_every] masks, and the memory cap is ignored
    (the tables are negligible next to the enumeration).  Exhausting
    the budget yields {!Truncated}, never an exception — only the
    deprecated wrappers still raise {!Too_large}. *)

type verdict =
  | Minimum of { classes : int; witness : Prbp_dag.Bitset.t array }
      (** The exact minimum, with a witness partition reaching it
          (node classes for {!spartition} / {!dominator_partition},
          edge-id classes for {!edge_partition}). *)
  | No_partition
      (** The lattice was exhausted: no valid partition exists at this
          [s] (e.g. [s] below some forced dominator). *)
  | Truncated of Prbp_solver.Solver.reason
      (** The budget stopped the search first; the minimum is unknown
          (in particular {e not} certified by any partial count). *)

val spartition :
  ?budget:Prbp_solver.Solver.Budget.t ->
  Prbp_dag.Dag.t ->
  s:int ->
  verdict
(** [MIN_part(s)]: minimum classes of any S-partition (Definition
    5.3).  [budget] defaults to {!Prbp_solver.Solver.Budget.default}. *)

val dominator_partition :
  ?budget:Prbp_solver.Solver.Budget.t ->
  Prbp_dag.Dag.t ->
  s:int ->
  verdict
(** [MIN_dom(s)] (Definition 6.6). *)

val edge_partition :
  ?budget:Prbp_solver.Solver.Budget.t ->
  Prbp_dag.Dag.t ->
  s:int ->
  verdict
(** [MIN_edge(s)] (Definition 6.3), searching over well-ordered edge
    prefixes. *)

val ideals :
  ?budget:Prbp_solver.Solver.Budget.t ->
  Prbp_dag.Dag.t ->
  (int, Prbp_solver.Solver.reason) result
(** Number of downward-closed node sets (for sizing feasibility). *)

val rbp_bound :
  ?budget:Prbp_solver.Solver.Budget.t -> Prbp_dag.Dag.t -> r:int -> int
(** Hong–Kung: [r · (MIN_part(2r) − 1)] with [MIN_part] computed
    exactly; 0 when the minimum is unknown (no partition, or budget
    exhausted), so the result is always a sound [OPT_RBP] lower
    bound. *)

val prbp_bound_edge :
  ?budget:Prbp_solver.Solver.Budget.t -> Prbp_dag.Dag.t -> r:int -> int
(** Theorem 6.5: [r · (MIN_edge(2r) − 1)], exactly; 0 when unknown. *)

val prbp_bound_dom :
  ?budget:Prbp_solver.Solver.Budget.t -> Prbp_dag.Dag.t -> r:int -> int
(** Theorem 6.7: [r · (MIN_dom(2r) − 1)], exactly; 0 when unknown. *)

(** {1 Deprecated pre-anytime wrappers}

    These keep the original raising contract: a blown [max_ideals]
    budget raises {!Too_large} instead of returning {!Truncated}. *)

exception Too_large of int
(** Raised only by the deprecated wrappers when the enumeration
    exceeds [max_ideals]. *)

val n_ideals : ?max_ideals:int -> Prbp_dag.Dag.t -> int
[@@deprecated "use ideals"]

val min_spartition : ?max_ideals:int -> Prbp_dag.Dag.t -> s:int -> int option
[@@deprecated "use spartition"]

val min_dominator_partition :
  ?max_ideals:int -> Prbp_dag.Dag.t -> s:int -> int option
[@@deprecated "use dominator_partition"]

val min_edge_partition :
  ?max_ideals:int -> Prbp_dag.Dag.t -> s:int -> int option
[@@deprecated "use edge_partition"]

val rbp_lower_bound : ?max_ideals:int -> Prbp_dag.Dag.t -> r:int -> int
[@@deprecated "use rbp_bound"]

val prbp_lower_bound_edge : ?max_ideals:int -> Prbp_dag.Dag.t -> r:int -> int
[@@deprecated "use prbp_bound_edge"]

val prbp_lower_bound_dom : ?max_ideals:int -> Prbp_dag.Dag.t -> r:int -> int
[@@deprecated "use prbp_bound_dom"]

test/test_heuristic.ml: List Prbp Printf Test_util

test/test_rbp.ml: Alcotest List Prbp String Test_util

test/test_verifier.ml: Alcotest Lazy List Prbp QCheck Random Test_util

test/test_minpart.ml: Alcotest Array Lazy List Prbp Test_util

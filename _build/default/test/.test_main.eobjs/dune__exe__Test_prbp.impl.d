test/test_prbp.ml: Alcotest Lazy List Prbp Test_util

test/test_flow.ml: List Prbp Test_util

test/test_trace_serialize.ml: Alcotest Array Filename Fun Lazy List Prbp String Sys Test_util

test/test_dominator.ml: Alcotest List Prbp QCheck Test_util

test/test_props.ml: Array Prbp Printf QCheck Test_util

test/test_hardness.ml: Array List Prbp Test_util

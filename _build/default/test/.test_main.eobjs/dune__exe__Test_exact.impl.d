test/test_exact.ml: Alcotest Lazy List Prbp Test_util

test/test_topo.ml: Alcotest Array Prbp QCheck Test_util

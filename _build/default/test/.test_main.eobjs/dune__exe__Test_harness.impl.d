test/test_harness.ml: Buffer Format List Prbp String Test_util

test/test_util.ml: Alcotest List Prbp QCheck QCheck_alcotest

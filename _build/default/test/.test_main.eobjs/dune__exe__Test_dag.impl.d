test/test_dag.ml: Alcotest List Prbp QCheck Test_util

test/test_variants.ml: Alcotest Prbp Test_util

test/test_extensions.ml: Alcotest Lazy List Prbp Test_util

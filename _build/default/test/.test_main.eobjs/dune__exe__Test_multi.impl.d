test/test_multi.ml: Alcotest Lazy List Prbp Test_util

test/test_extract.ml: Array Lazy List Prbp Test_util

test/test_misc.ml: Alcotest Array Buffer Format Lazy List Prbp String Test_util

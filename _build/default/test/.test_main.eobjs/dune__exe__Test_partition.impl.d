test/test_partition.ml: Array Lazy List Prbp Test_util

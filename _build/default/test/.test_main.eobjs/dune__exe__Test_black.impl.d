test/test_black.ml: Alcotest Lazy List Prbp Test_util

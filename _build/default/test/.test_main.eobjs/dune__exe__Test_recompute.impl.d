test/test_recompute.ml: Alcotest Lazy List Prbp Test_util

test/test_graphs.ml: Array List Prbp Test_util

test/test_strategies.ml: List Prbp Test_util

test/test_levels.ml: Alcotest Array List Prbp Test_util

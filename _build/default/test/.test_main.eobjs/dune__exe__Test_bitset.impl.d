test/test_bitset.ml: Alcotest List Prbp QCheck Test_util

test/test_integration.ml: Alcotest Lazy List Prbp String Test_util

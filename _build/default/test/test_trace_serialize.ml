(* Trace instrumentation, DAG serialization, and the greedy PRBP
   scheduler. *)
open Test_util
module Dag = Prbp.Dag
module Trace = Prbp.Trace
module Serialize = Prbp.Serialize

let test_trace_rbp () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  match Trace.of_rbp (Prbp.Rbp.config ~r:4 ()) g (Prbp.Strategies.fig1_rbp ids) with
  | Error e -> Alcotest.fail e
  | Ok t ->
      check_int "cost" 3 t.Trace.cost;
      check_int "peak" 4 t.Trace.peak;
      check_int "steps" 20 (Array.length t.Trace.steps);
      (* io_so_far is non-decreasing and ends at the cost *)
      let last = t.Trace.steps.(Array.length t.Trace.steps - 1) in
      check_int "final io" 3 last.Trace.io_so_far;
      Array.iteri
        (fun i s ->
          if i > 0 then
            check_true "monotone io"
              (s.Trace.io_so_far >= t.Trace.steps.(i - 1).Trace.io_so_far))
        t.Trace.steps

let test_trace_prbp () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  match
    Trace.of_prbp (Prbp.Prbp_game.config ~r:4 ()) g (Prbp.Strategies.fig1_prbp ids)
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
      check_int "cost" 2 t.Trace.cost;
      check_int "peak" 4 t.Trace.peak;
      check_true "red never exceeds r"
        (Array.for_all (fun s -> s.Trace.red_count <= 4) t.Trace.steps)

let test_trace_rejects_invalid () =
  let g = Prbp.Graphs.Basic.diamond () in
  (match Trace.of_rbp (Prbp.Rbp.config ~r:3 ()) g [ Prbp.Move.R.Compute 3 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid accepted");
  match Trace.of_rbp (Prbp.Rbp.config ~r:3 ()) g [ Prbp.Move.R.Load 0 ] with
  | Error e -> check_true "incomplete detected" (String.length e > 0)
  | Ok _ -> Alcotest.fail "incomplete accepted"

let test_trace_rendering () =
  let mv = Prbp.Graphs.Matvec.make ~m:4 in
  match
    Trace.of_prbp
      (Prbp.Prbp_game.config ~r:7 ())
      mv.Prbp.Graphs.Matvec.dag
      (Prbp.Strategies.matvec_prbp mv)
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let chart = Trace.occupancy t in
      check_true "chart has rows"
        (List.length (String.split_on_char '\n' chart) >= 7);
      check_true "summary mentions peak"
        (let s = Trace.summary t in
         String.length s > 0)

let test_serialize_roundtrip () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  match Serialize.of_string (Serialize.to_string g) with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      check_int "nodes" (Dag.n_nodes g) (Dag.n_nodes g');
      check_int "edges" (Dag.n_edges g) (Dag.n_edges g');
      Alcotest.(check (list (pair int int))) "edge lists" (Dag.edges g)
        (Dag.edges g');
      Alcotest.(check string) "names kept" (Dag.name g 0) (Dag.name g' 0)

let test_serialize_roundtrip_random () =
  List.iter
    (fun g ->
      match Serialize.of_string (Serialize.to_string g) with
      | Error e -> Alcotest.fail e
      | Ok g' ->
          Alcotest.(check (list (pair int int))) "edges" (Dag.edges g)
            (Dag.edges g'))
    (Lazy.force random_dags)

let test_serialize_parse_errors () =
  check_true "missing nodes"
    (match Serialize.of_string "edge 0 1\n" with Error _ -> true | Ok _ -> false);
  check_true "bad count"
    (match Serialize.of_string "nodes x\n" with Error _ -> true | Ok _ -> false);
  check_true "cycle reported"
    (match Serialize.of_string "nodes 2\nedge 0 1\nedge 1 0\n" with
    | Error e -> e = "the edge list contains a cycle"
    | Ok _ -> false);
  check_true "comments and blanks ok"
    (match Serialize.of_string "# header\nnodes 2\n\nedge 0 1 # tail\n" with
    | Ok g -> Dag.n_edges g = 1
    | Error _ -> false)

let test_serialize_file_roundtrip () =
  let g = Prbp.Graphs.Basic.pyramid 3 in
  let path = Filename.temp_file "prbp" ".dag" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.to_file path g;
      match Serialize.of_file path with
      | Ok g' -> check_int "edges" (Dag.n_edges g) (Dag.n_edges g')
      | Error e -> Alcotest.fail e)

let test_greedy_valid_everywhere () =
  List.iter
    (fun g ->
      List.iter
        (fun r ->
          let c = Prbp.Heuristic.prbp_greedy_cost ~r g in
          check_true "above trivial" (c >= Dag.trivial_cost g))
        [ 2; 3; 5 ])
    (Lazy.force random_dags)

let test_greedy_hits_trivial_on_aggregations () =
  let mv = Prbp.Graphs.Matvec.make ~m:3 in
  check_int "matvec(3)" (Dag.trivial_cost mv.Prbp.Graphs.Matvec.dag)
    (Prbp.Heuristic.prbp_greedy_cost ~r:6 mv.Prbp.Graphs.Matvec.dag);
  let sp = Prbp.Graphs.Spmv.make ~seed:2 ~density:0.3 ~rows:8 ~cols:8 () in
  check_int "spmv" (Dag.trivial_cost sp.Prbp.Graphs.Spmv.dag)
    (Prbp.Heuristic.prbp_greedy_cost ~r:11 sp.Prbp.Graphs.Spmv.dag)

let test_greedy_optimal_on_tree () =
  let t = Prbp.Graphs.Tree.make ~k:2 ~depth:4 in
  check_int "matches OPT" (Prbp.Graphs.Tree.prbp_opt ~k:2 ~depth:4)
    (Prbp.Heuristic.prbp_greedy_cost ~r:3 t.Prbp.Graphs.Tree.dag)

let test_greedy_beats_node_major_where_it_matters () =
  let mv = Prbp.Graphs.Matvec.make ~m:4 in
  let g = mv.Prbp.Graphs.Matvec.dag in
  check_true "greedy < node-major on matvec"
    (Prbp.Heuristic.prbp_greedy_cost ~r:7 g < Prbp.Heuristic.prbp_cost ~r:7 g)

let test_prbp_best () =
  List.iter
    (fun g ->
      let best = Prbp.Heuristic.prbp_best_cost ~r:3 g in
      check_true "best <= node-major" (best <= Prbp.Heuristic.prbp_cost ~r:3 g);
      check_true "best <= greedy"
        (best <= Prbp.Heuristic.prbp_greedy_cost ~r:3 g))
    (Lazy.force random_dags)

let suite =
  [
    ( "trace+serialize+greedy",
      [
        case "RBP trace" test_trace_rbp;
        case "PRBP trace" test_trace_prbp;
        case "invalid traces rejected" test_trace_rejects_invalid;
        case "occupancy rendering" test_trace_rendering;
        case "serialize roundtrip (fig1)" test_serialize_roundtrip;
        case "serialize roundtrip (random)" test_serialize_roundtrip_random;
        case "parse errors" test_serialize_parse_errors;
        case "file roundtrip" test_serialize_file_roundtrip;
        case "greedy valid on the pool" test_greedy_valid_everywhere;
        case "greedy trivial on aggregation DAGs" test_greedy_hits_trivial_on_aggregations;
        case "greedy optimal on binary tree" test_greedy_optimal_on_tree;
        case "greedy beats node-major on matvec" test_greedy_beats_node_major_where_it_matters;
        case "prbp_best dominates both" test_prbp_best;
      ] );
  ]

(* appended: I/O breakdown, charts, stencil family *)

let test_breakdown_trivial_strategy () =
  (* a trivial-cost strategy has zero non-trivial I/O by definition *)
  let mv = Prbp.Graphs.Matvec.make ~m:4 in
  match
    Trace.breakdown_prbp
      (Prbp.Prbp_game.config ~r:7 ())
      mv.Prbp.Graphs.Matvec.dag
      (Prbp.Strategies.matvec_prbp mv)
  with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check_int "no reloads" 0 b.Trace.reloads;
      check_int "no spills" 0 b.Trace.spills;
      check_int "all sources once" 20 b.Trace.source_loads;
      check_int "all sinks once" 4 b.Trace.sink_saves;
      check_int "non-trivial" 0 (Trace.non_trivial b)

let test_breakdown_tree_matches_paper () =
  (* Appendix A.2: the non-trivial I/O of the optimal pebblings is
     2^d − 2 (RBP) and 2^(d−1) − 2 (PRBP) for binary trees at r = 3 *)
  let d = 5 in
  let t = Prbp.Graphs.Tree.make ~k:2 ~depth:d in
  let g = t.Prbp.Graphs.Tree.dag in
  (match Trace.breakdown_rbp (Prbp.Rbp.config ~r:3 ()) g (Prbp.Strategies.tree_rbp t) with
  | Error e -> Alcotest.fail e
  | Ok b -> check_int "RBP non-trivial" ((1 lsl d) - 2) (Trace.non_trivial b));
  match
    Trace.breakdown_prbp (Prbp.Prbp_game.config ~r:3 ()) g
      (Prbp.Strategies.tree_prbp t)
  with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check_int "PRBP non-trivial" ((1 lsl (d - 1)) - 2) (Trace.non_trivial b)

let test_breakdown_rejects_invalid () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_true "invalid"
    (match Trace.breakdown_rbp (Prbp.Rbp.config ~r:3 ()) g [] with
    | Error _ -> true
    | Ok _ -> false)

let test_chart_renders () =
  let s =
    Prbp.Chart.loglog ~x_label:"n" ~y_label:"cost"
      [
        { Prbp.Chart.label = "a"; glyph = '#';
          points = [ (1., 1.); (10., 10.); (100., 100.) ] };
        { Prbp.Chart.label = "b"; glyph = 'o';
          points = [ (1., 2.); (100., 200.) ] };
      ]
  in
  check_true "mentions legend" (String.length s > 100);
  check_true "positive required"
    (match
       Prbp.Chart.loglog ~x_label:"x" ~y_label:"y"
         [ { Prbp.Chart.label = "bad"; glyph = '#'; points = [ (0., 1.) ] } ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stencil_shape () =
  let g = Prbp.Graphs.Basic.stencil1d ~steps:4 ~width:5 in
  check_int "nodes" 20 (Dag.n_nodes g);
  check_int "sources" 5 (Dag.n_sources g);
  check_int "sinks" 5 (Dag.n_sinks g);
  check_int "interior in-degree" 3 (Dag.in_degree g ((5 * 2) + 2));
  check_int "boundary in-degree" 2 (Dag.in_degree g (5 * 2));
  check_int "height" 3 (Prbp.Topo.height g)

let test_stencil_pebbles () =
  let g = Prbp.Graphs.Basic.stencil1d ~steps:5 ~width:6 in
  (* PRBP needs only r = 2; with a row of cache both games work *)
  let c2 = Prbp.Heuristic.prbp_cost ~r:2 g in
  check_true "r=2 valid" (c2 >= Dag.trivial_cost g);
  let r = Dag.max_in_degree g + 2 in
  check_true "prbp no worse than rbp"
    (Prbp.Heuristic.prbp_best_cost ~r g <= Prbp.Heuristic.rbp_cost ~r g)

let suite =
  suite
  @ [
      ( "breakdown+chart+stencil",
        [
          case "trivial strategies have zero non-trivial I/O"
            test_breakdown_trivial_strategy;
          case "tree non-trivial I/O matches A.2" test_breakdown_tree_matches_paper;
          case "breakdown rejects invalid pebblings" test_breakdown_rejects_invalid;
          case "log-log chart" test_chart_renders;
          case "stencil shape" test_stencil_shape;
          case "stencil pebbling" test_stencil_pebbles;
        ] );
    ]

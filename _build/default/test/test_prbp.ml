open Test_util
module Dag = Prbp.Dag
module Pg = Prbp.Prbp_game
module P = Prbp.Move.P
module Pebble = Prbp.Prbp_game.Pebble

let diamond () = Prbp.Graphs.Basic.diamond ()

let cfg r = Pg.config ~r ()

let test_initial_state () =
  let t = Pg.start (cfg 3) (diamond ()) in
  check_true "source blue" (Pg.pebble t 0 = Pebble.Blue);
  check_true "others empty" (Pg.pebble t 3 = Pebble.None_);
  check_int "no reds" 0 (Pg.red_count t);
  check_int "unmarked in of sink" 2 (Pg.unmarked_in t 3);
  check_true "sources fully computed" (Pg.fully_computed t 0);
  check_false "sink not" (Pg.fully_computed t 3)

let test_load_save_states () =
  let t = Pg.start (cfg 3) (diamond ()) in
  check_ok "load" (Pg.apply t (P.Load 0));
  check_true "blue+light" (Pg.pebble t 0 = Pebble.Blue_light);
  (* save requires dark *)
  check_err "save light" (Pg.apply t (P.Save 0));
  check_ok "delete light" (Pg.apply t (P.Delete 0));
  check_true "back to blue" (Pg.pebble t 0 = Pebble.Blue)

let test_partial_compute_chain () =
  (* 0 -> 2 <- 1, 2 -> 3: node 2 aggregates two inputs *)
  let g = Dag.make ~n:4 [ (0, 2); (1, 2); (2, 3) ] in
  let t = Pg.start (cfg 3) g in
  check_ok "load src" (Pg.apply t (P.Load 0));
  check_ok "mark (0,2)" (Pg.apply t (P.Compute (0, 2)));
  check_true "target dark" (Pg.pebble t 2 = Pebble.Dark);
  check_false "2 partial" (Pg.fully_computed t 2);
  (* computing out of a partially computed node is illegal *)
  check_err "no out-compute of a partial node" (Pg.apply t (P.Compute (2, 3)));
  check_ok "delete src" (Pg.apply t (P.Delete 0));
  check_ok "load other" (Pg.apply t (P.Load 1));
  check_ok "mark (1,2)" (Pg.apply t (P.Compute (1, 2)));
  check_true "2 complete" (Pg.fully_computed t 2);
  check_ok "now out-compute works" (Pg.apply t (P.Compute (2, 3)))

let test_input_must_be_fully_computed () =
  let g = Prbp.Graphs.Basic.path 3 in
  let t = Pg.start (cfg 3) g in
  check_ok "load" (Pg.apply t (P.Load 0));
  check_ok "mark (0,1)" (Pg.apply t (P.Compute (0, 1)));
  check_ok "mark (1,2)" (Pg.apply t (P.Compute (1, 2)));
  check_err "edge already marked" (Pg.apply t (P.Compute (1, 2)))

let test_compute_onto_blue_forbidden () =
  let g = Prbp.Graphs.Basic.fan_in 2 in
  let t = Pg.start (cfg 2) g in
  check_ok "load u0" (Pg.apply t (P.Load 0));
  check_ok "mark (0,2)" (Pg.apply t (P.Compute (0, 2)));
  check_ok "save partial" (Pg.apply t (P.Save 2));
  check_ok "delete light" (Pg.apply t (P.Delete 2));
  check_ok "delete src light" (Pg.apply t (P.Delete 0));
  check_ok "load u1" (Pg.apply t (P.Load 1));
  (* 2 is blue-only: the paper requires a load before continuing *)
  check_err "blue target" (Pg.apply t (P.Compute (1, 2)));
  check_ok "reload partial" (Pg.apply t (P.Load 2));
  check_ok "finish" (Pg.apply t (P.Compute (1, 2)));
  check_ok "save sink" (Pg.apply t (P.Save 2));
  check_true "terminal" (Pg.is_terminal t);
  check_int "cost 5" 5 (Pg.io_cost t)

let test_dark_delete_needs_marked_outputs () =
  let g = Prbp.Graphs.Basic.path 3 in
  let t = Pg.start (cfg 3) g in
  check_ok "load" (Pg.apply t (P.Load 0));
  check_ok "mark (0,1)" (Pg.apply t (P.Compute (0, 1)));
  (* 1 is dark with an unmarked out-edge: deletion forbidden *)
  check_err "dark delete blocked" (Pg.apply t (P.Delete 1));
  check_ok "mark (1,2)" (Pg.apply t (P.Compute (1, 2)));
  check_ok "now deletable" (Pg.apply t (P.Delete 1))

let test_capacity () =
  let g = Prbp.Graphs.Basic.fan_in 3 in
  let t = Pg.start (cfg 2) g in
  check_ok "load 0" (Pg.apply t (P.Load 0));
  check_ok "mark" (Pg.apply t (P.Compute (0, 3)));
  check_err "full" (Pg.apply t (P.Load 1));
  check_ok "drop src" (Pg.apply t (P.Delete 0));
  check_ok "now load" (Pg.apply t (P.Load 1))

let test_any_dag_with_r2 () =
  (* Section 3: PRBP admits a pebbling of every DAG with r = 2 *)
  List.iter
    (fun g ->
      let moves = Prbp.Heuristic.prbp ~r:2 g in
      match Pg.check (cfg 2) g moves with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "r=2 pebbling failed: %s" e)
    (Lazy.force random_dags)

let test_terminal_needs_all_edges () =
  let g = diamond () in
  let t = Pg.start (cfg 4) g in
  check_ok "l" (Pg.apply t (P.Load 0));
  check_ok "c1" (Pg.apply t (P.Compute (0, 1)));
  check_ok "c2" (Pg.apply t (P.Compute (0, 2)));
  check_ok "c3" (Pg.apply t (P.Compute (1, 3)));
  (* sink got a pebble but edge (2,3) is unmarked *)
  check_ok "c4" (Pg.apply t (P.Compute (2, 3)));
  check_false "sink dark, not blue" (Pg.is_terminal t);
  check_ok "save" (Pg.apply t (P.Save 3));
  check_true "terminal" (Pg.is_terminal t)

let test_fig1_full_run () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  check_int "A.1 cost" 2
    (prbp_cost ~r:4 g (Prbp.Strategies.fig1_prbp ids))

let test_rbp_to_prbp_translation () =
  (* Proposition 4.1: any (normalized) RBP strategy maps to a PRBP
     strategy of the same I/O cost *)
  List.iter
    (fun g ->
      let r = max 2 (Dag.max_in_degree g + 1) in
      let moves = Prbp.Heuristic.rbp ~r g in
      let moves = Prbp.Rbp.normalize (Prbp.Rbp.config ~r ()) g moves in
      let c_rbp = rbp_cost ~r g moves in
      let translated = Prbp.Move.rbp_to_prbp g moves in
      let c_prbp = prbp_cost ~r g translated in
      check_int "same cost" c_rbp c_prbp)
    (Lazy.force random_dags)

let test_wasteful_load_legal () =
  let t = Pg.start (cfg 3) (diamond ()) in
  check_ok "load" (Pg.apply t (P.Load 0));
  check_ok "wasteful reload" (Pg.apply t (P.Load 0));
  check_int "charged" 2 (Pg.io_cost t);
  check_int "one red" 1 (Pg.red_count t)

let test_counters_and_peak () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  let t =
    Pg.run_exn (cfg 4) g (Prbp.Strategies.fig1_prbp ids)
  in
  check_int "loads" 1 (Pg.loads t);
  check_int "saves" 1 (Pg.saves t);
  check_int "computes = edges" (Dag.n_edges g) (Pg.computes t);
  check_int "peak red" 4 (Pg.max_red_seen t)

let test_normalized_compute_cost () =
  let g = Prbp.Graphs.Basic.fan_in 4 in
  let c = Pg.config ~r:2 ~compute_cost:1.0 ~normalized_cost:true () in
  let moves =
    List.concat_map
      (fun i -> P.[ Load i; Compute (i, 4); Delete i ])
      [ 0; 1; 2; 3 ]
    @ P.[ Save 4 ]
  in
  let t = Pg.run_exn c g moves in
  (* 4 partial computes, each worth 1/deg = 1/4: total ε-cost 1 *)
  Alcotest.(check (float 1e-9)) "normalized" 6.0 (Pg.total_cost t)

let suite =
  [
    ( "prbp",
      [
        case "initial state" test_initial_state;
        case "load/save state transitions" test_load_save_states;
        case "partial compute" test_partial_compute_chain;
        case "one-shot per edge" test_input_must_be_fully_computed;
        case "compute onto blue forbidden" test_compute_onto_blue_forbidden;
        case "dark deletion discipline" test_dark_delete_needs_marked_outputs;
        case "capacity" test_capacity;
        case "every DAG pebbles with r=2" test_any_dag_with_r2;
        case "terminal requires all edges marked" test_terminal_needs_all_edges;
        case "Figure-1 full run" test_fig1_full_run;
        case "Prop 4.1 translation preserves cost" test_rbp_to_prbp_translation;
        case "wasteful load stays legal" test_wasteful_load_legal;
        case "counters and peak" test_counters_and_peak;
        case "normalized compute cost (B.3)" test_normalized_compute_cost;
      ] );
  ]

open Test_util
module Dag = Prbp.Dag
module Extract = Prbp.Extract
module Spart = Prbp.Spart

let check_sandwich ~r ~cost ~k =
  check_true "r*k >= C" (r * k >= cost);
  check_true "C >= r*(k-1)" (cost >= r * (k - 1))

let test_hong_kung_fig1 () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  let r = 4 in
  let moves = Prbp.Strategies.fig1_rbp ids in
  let cls = Extract.hong_kung ~r g moves in
  check_ok "valid 2r-partition" (Spart.is_spartition g ~s:(2 * r) cls);
  check_sandwich ~r ~cost:3 ~k:(Array.length cls)

let test_lemma64_fig1 () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  let r = 4 in
  let moves = Prbp.Strategies.fig1_prbp ids in
  let cls = Extract.edge_partition_of_prbp ~r g moves in
  check_ok "valid 2r-edge-partition" (Spart.is_edge_partition g ~s:(2 * r) cls);
  check_sandwich ~r ~cost:2 ~k:(Array.length cls)

let test_lemma68_fig1 () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  let r = 4 in
  let moves = Prbp.Strategies.fig1_prbp ids in
  let cls = Extract.dominator_partition_of_prbp ~r g moves in
  check_ok "valid 2r-dominator-partition"
    (Spart.is_dominator_partition g ~s:(2 * r) cls);
  check_sandwich ~r ~cost:2 ~k:(Array.length cls)

(* The lemma statements quantify over all strategies: check them on
   heuristic traces across the random pool and several r values. *)
let test_lemma64_heuristic_traces () =
  List.iter
    (fun g ->
      List.iter
        (fun r ->
          let moves = Prbp.Heuristic.prbp ~r g in
          let cost = prbp_cost ~r g moves in
          let cls = Extract.edge_partition_of_prbp ~r g moves in
          check_ok "valid" (Spart.is_edge_partition g ~s:(2 * r) cls);
          check_sandwich ~r ~cost ~k:(Array.length cls))
        [ 2; 3; 4 ])
    (Lazy.force random_dags)

let test_lemma68_heuristic_traces () =
  List.iter
    (fun g ->
      List.iter
        (fun r ->
          let moves = Prbp.Heuristic.prbp ~r g in
          let cost = prbp_cost ~r g moves in
          let cls = Extract.dominator_partition_of_prbp ~r g moves in
          check_ok "valid" (Spart.is_dominator_partition g ~s:(2 * r) cls);
          check_sandwich ~r ~cost ~k:(Array.length cls))
        [ 2; 3; 4 ])
    (Lazy.force random_dags)

let test_hong_kung_heuristic_traces () =
  List.iter
    (fun g ->
      let r = Dag.max_in_degree g + 1 in
      let moves = Prbp.Heuristic.rbp ~r g in
      let cost = rbp_cost ~r g moves in
      let cls = Extract.hong_kung ~r g moves in
      check_ok "valid" (Spart.is_spartition g ~s:(2 * r) cls);
      check_sandwich ~r ~cost ~k:(Array.length cls))
    (Lazy.force random_dags)

let test_extraction_on_strategy_families () =
  (* the paper's own strategies also extract to valid partitions *)
  let t = Prbp.Graphs.Tree.make ~k:2 ~depth:4 in
  let g = t.Prbp.Graphs.Tree.dag in
  let moves = Prbp.Strategies.tree_prbp t in
  let r = 3 in
  let cost = prbp_cost ~r g moves in
  let e = Extract.edge_partition_of_prbp ~r g moves in
  check_ok "tree edges" (Spart.is_edge_partition g ~s:(2 * r) e);
  check_sandwich ~r ~cost ~k:(Array.length e);
  let z = Prbp.Graphs.Zipper.make ~d:3 ~len:6 in
  let moves = Prbp.Strategies.zipper_prbp z in
  let r = 5 in
  let cost = prbp_cost ~r z.Prbp.Graphs.Zipper.dag moves in
  let dcls = Extract.dominator_partition_of_prbp ~r z.Prbp.Graphs.Zipper.dag moves in
  check_ok "zipper dominators"
    (Spart.is_dominator_partition z.Prbp.Graphs.Zipper.dag ~s:(2 * r) dcls);
  check_sandwich ~r ~cost ~k:(Array.length dcls)

let test_classes_of_cost () =
  check_int "exact multiple" 2 (Extract.classes_of_cost ~r:4 ~cost:8);
  check_int "round up" 3 (Extract.classes_of_cost ~r:4 ~cost:9);
  check_int "zero cost still one class" 1 (Extract.classes_of_cost ~r:4 ~cost:0)

let test_invalid_trace_rejected () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  check_true "incomplete trace rejected"
    (match
       Extract.edge_partition_of_prbp ~r:4 g
         [ Prbp.Move.P.Load ids.Prbp.Graphs.Fig1.u0 ]
     with
    | exception Failure _ -> true
    | _ -> false)

let suite =
  [
    ( "extract",
      [
        case "Hong-Kung on fig1" test_hong_kung_fig1;
        case "Lemma 6.4 on fig1" test_lemma64_fig1;
        case "Lemma 6.8 on fig1" test_lemma68_fig1;
        case "Lemma 6.4 across traces" test_lemma64_heuristic_traces;
        case "Lemma 6.8 across traces" test_lemma68_heuristic_traces;
        case "Hong-Kung across traces" test_hong_kung_heuristic_traces;
        case "extraction on paper strategies" test_extraction_on_strategy_families;
        case "class count arithmetic" test_classes_of_cost;
        case "invalid traces rejected" test_invalid_trace_rejected;
      ] );
  ]

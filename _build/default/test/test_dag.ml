open Test_util
module Dag = Prbp.Dag
module Bitset = Prbp.Bitset

let diamond () = Prbp.Graphs.Basic.diamond ()

let test_counts () =
  let g = diamond () in
  check_int "nodes" 4 (Dag.n_nodes g);
  check_int "edges" 4 (Dag.n_edges g);
  check_int "sources" 1 (Dag.n_sources g);
  check_int "sinks" 1 (Dag.n_sinks g);
  check_int "trivial cost" 2 (Dag.trivial_cost g)

let test_degrees () =
  let g = diamond () in
  check_int "out 0" 2 (Dag.out_degree g 0);
  check_int "in 3" 2 (Dag.in_degree g 3);
  check_int "max in" 2 (Dag.max_in_degree g);
  check_int "max out" 2 (Dag.max_out_degree g)

let test_adjacency () =
  let g = diamond () in
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (Dag.succs g 0);
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (Dag.preds g 3);
  check_true "has_edge" (Dag.has_edge g 0 1);
  check_false "no edge" (Dag.has_edge g 1 2);
  check_false "no reverse edge" (Dag.has_edge g 1 0)

let test_edge_ids () =
  let g = diamond () in
  (* edge ids are consistent between lookup and endpoints *)
  Dag.iter_edges
    (fun e u v ->
      check_int "roundtrip id" e (Dag.edge_id g u v);
      check_int "src" u (Dag.edge_src g e);
      check_int "dst" v (Dag.edge_dst g e))
    g;
  Alcotest.check_raises "missing edge" Not_found (fun () ->
      ignore (Dag.edge_id g 3 0))

let test_cycle_detection () =
  match Dag.make ~n:3 [ (0, 1); (1, 2); (2, 0) ] with
  | exception Dag.Cycle c ->
      check_int "cycle length" 3 (List.length c)
  | _ -> Alcotest.fail "cycle not detected"

let test_self_loop_rejected () =
  check_true "self loop"
    (match Dag.make ~n:2 [ (0, 0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_duplicate_rejected () =
  check_true "duplicate"
    (match Dag.make ~n:2 [ (0, 1); (0, 1) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_out_of_range_rejected () =
  check_true "range"
    (match Dag.make ~n:2 [ (0, 2) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_names () =
  let g = Dag.make ~names:[| "a"; "b" |] ~n:2 [ (0, 1) ] in
  Alcotest.(check string) "named" "a" (Dag.name g 0);
  let g' = Dag.make ~n:2 [ (0, 1) ] in
  Alcotest.(check string) "default" "v1" (Dag.name g' 1)

let test_reverse () =
  let g = diamond () in
  let r = Dag.reverse g in
  check_true "reversed edge" (Dag.has_edge r 3 1);
  check_int "sources swap" (Dag.n_sinks g) (Dag.n_sources r);
  check_int "edges kept" (Dag.n_edges g) (Dag.n_edges r)

let test_induced () =
  let g = diamond () in
  let keep = Bitset.of_list 4 [ 0; 1; 3 ] in
  let sub, back = Dag.induced g keep in
  check_int "nodes" 3 (Dag.n_nodes sub);
  check_int "edges" 2 (Dag.n_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 3 |] back

let test_isolated () =
  let g = Dag.make ~n:3 [ (0, 1) ] in
  check_true "isolated detected" (Dag.has_isolated_nodes g);
  check_false "diamond has none" (Dag.has_isolated_nodes (diamond ()))

let test_iter_pred_e () =
  let g = diamond () in
  let ids = ref [] in
  Dag.iter_pred_e (fun e u -> ids := (e, u) :: !ids) g 3;
  check_int "two in-edges" 2 (List.length !ids);
  List.iter
    (fun (e, u) ->
      check_int "edge src matches" u (Dag.edge_src g e);
      check_int "edge dst is 3" 3 (Dag.edge_dst g e))
    !ids

let test_empty_graph () =
  let g = Dag.make ~n:0 [] in
  check_int "no nodes" 0 (Dag.n_nodes g);
  check_int "trivial cost" 0 (Dag.trivial_cost g)

let prop_random_wellformed =
  qcase ~count:50 "random DAGs are well-formed"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = Prbp.Graphs.Random_dag.make ~seed ~layers:4 ~width:3 () in
      (not (Dag.has_isolated_nodes g))
      && Dag.n_sources g = 3
      && Dag.n_edges g > 0
      &&
      (* in/out degree sums both equal the edge count *)
      let sum f =
        List.init (Dag.n_nodes g) (fun v -> f g v) |> List.fold_left ( + ) 0
      in
      sum Dag.in_degree = Dag.n_edges g && sum Dag.out_degree = Dag.n_edges g)

let suite =
  [
    ( "dag",
      [
        case "counts" test_counts;
        case "degrees" test_degrees;
        case "adjacency" test_adjacency;
        case "edge ids" test_edge_ids;
        case "cycle detection" test_cycle_detection;
        case "self-loops rejected" test_self_loop_rejected;
        case "duplicates rejected" test_duplicate_rejected;
        case "range checked" test_out_of_range_rejected;
        case "names" test_names;
        case "reverse" test_reverse;
        case "induced subgraph" test_induced;
        case "isolated nodes" test_isolated;
        case "pred edge iteration" test_iter_pred_e;
        case "empty graph" test_empty_graph;
        prop_random_wellformed;
      ] );
  ]

(* Shared helpers for the test suite. *)

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?count name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ?count ~name gen prop)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true name b = Alcotest.(check bool) name true b

let check_false name b = Alcotest.(check bool) name false b

let check_ok name = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: unexpected error: %s" name e

let check_err name = function
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

(* Replay an RBP strategy, requiring completeness, and return its cost. *)
let rbp_cost ?(cfg_of = fun r -> Prbp.Rbp.config ~r ()) ~r g moves =
  match Prbp.Rbp.check (cfg_of r) g moves with
  | Ok c -> c
  | Error e -> Alcotest.failf "invalid RBP pebbling: %s" e

let prbp_cost ?(cfg_of = fun r -> Prbp.Prbp_game.config ~r ()) ~r g moves =
  match Prbp.Prbp_game.check (cfg_of r) g moves with
  | Ok c -> c
  | Error e -> Alcotest.failf "invalid PRBP pebbling: %s" e

(* A deterministic pool of small random DAGs for cross-module tests. *)
let random_dags =
  lazy
    (List.concat_map
       (fun seed ->
         [
           Prbp.Graphs.Random_dag.make ~seed ~layers:3 ~width:3 ();
           Prbp.Graphs.Random_dag.make ~seed ~layers:4 ~width:2
             ~density:0.5 ();
         ])
       [ 1; 2; 3; 4; 5 ])

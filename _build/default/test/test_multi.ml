(* Multiprocessor pebbling (Section 8.1 outlook). *)
open Test_util
module Dag = Prbp.Dag
module Multi = Prbp.Multi
module MM = Prbp.Multi.Move

let cfg ?(one_shot = true) p r = Multi.config ~one_shot ~p ~r ()

let test_p1_specializes_rbp () =
  (* with one processor the game is exactly the Section-1 RBP *)
  let g, ids = Prbp.Graphs.Fig1.full () in
  let moves = Prbp.Strategies.fig1_rbp ids in
  match Multi.R.check (cfg 1 4) g (Multi.lift_rbp moves) with
  | Ok c -> check_int "same cost" 3 c
  | Error e -> Alcotest.fail e

let test_p1_specializes_prbp () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  let moves = Prbp.Strategies.fig1_prbp ids in
  match Multi.P.check (cfg 1 4) g (Multi.lift_prbp moves) with
  | Ok c -> check_int "same cost" 2 c
  | Error e -> Alcotest.fail e

let test_p1_specialization_on_pool () =
  List.iter
    (fun g ->
      let r = max 2 (Dag.max_in_degree g + 1) in
      let single = Prbp.Heuristic.rbp ~r g in
      let expected = rbp_cost ~r g single in
      (match Multi.R.check (cfg 1 r) g (Multi.lift_rbp single) with
      | Ok c -> check_int "rbp cost equal" expected c
      | Error e -> Alcotest.fail e);
      let psingle = Prbp.Heuristic.prbp ~r:2 g in
      let pexpected = prbp_cost ~r:2 g psingle in
      match Multi.P.check (cfg 1 2) g (Multi.lift_prbp psingle) with
      | Ok c -> check_int "prbp cost equal" pexpected c
      | Error e -> Alcotest.fail e)
    (Lazy.force random_dags)

let test_capacity_per_processor () =
  let g = Prbp.Graphs.Basic.fan_in 3 in
  let t = Multi.R.start (cfg 2 2) g in
  check_ok "p0 load" (Multi.R.apply t (MM.Load (0, 0)));
  check_ok "p0 load" (Multi.R.apply t (MM.Load (0, 1)));
  check_err "p0 full" (Multi.R.apply t (MM.Load (0, 2)));
  (* the other processor's memory is separate *)
  check_ok "p1 load" (Multi.R.apply t (MM.Load (1, 2)));
  check_int "p0 count" 2 (Multi.R.red_count t 0);
  check_int "p1 count" 1 (Multi.R.red_count t 1)

let test_compute_locality () =
  (* inputs must be red on the SAME processor *)
  let g = Prbp.Graphs.Basic.fan_in 2 in
  let t = Multi.R.start (cfg 2 3) g in
  check_ok "p0 load u0" (Multi.R.apply t (MM.Load (0, 0)));
  check_ok "p1 load u1" (Multi.R.apply t (MM.Load (1, 1)));
  check_err "split inputs" (Multi.R.apply t (MM.Compute (0, 2)));
  check_ok "p0 load u1 too" (Multi.R.apply t (MM.Load (0, 1)));
  check_ok "now computes" (Multi.R.apply t (MM.Compute (0, 2)))

let test_dark_exclusivity () =
  (* a partial value lives on one processor; the other must wait for a
     save/load handoff *)
  let g = Prbp.Graphs.Basic.fan_in 2 in
  let t = Multi.P.start (cfg 2 2) g in
  check_ok "p0 load u0" (Multi.P.apply t (MM.Load (0, 0)));
  check_ok "p0 partial" (Multi.P.apply t (MM.Compute (0, (0, 2))));
  check_ok "p1 load u1" (Multi.P.apply t (MM.Load (1, 1)));
  check_err "p1 cannot touch p0's dark value"
    (Multi.P.apply t (MM.Compute (1, (1, 2))));
  check_ok "p0 saves" (Multi.P.apply t (MM.Save (0, 2)));
  check_ok "p0 drops copy" (Multi.P.apply t (MM.Delete (0, 2)));
  check_ok "p1 loads partial" (Multi.P.apply t (MM.Load (1, 2)));
  check_ok "p1 finishes" (Multi.P.apply t (MM.Compute (1, (1, 2))));
  check_ok "p1 saves sink" (Multi.P.apply t (MM.Save (1, 2)));
  check_true "terminal" (Multi.P.is_terminal t);
  check_int "cost" 5 (Multi.P.io_cost t)

let test_stale_copies_invalidated () =
  (* updating a value destroys other processors' light copies *)
  let g = Prbp.Dag.make ~n:4 [ (0, 2); (1, 2); (2, 3) ] in
  let t = Multi.P.start (cfg 2 3) g in
  check_ok "p0 load u0" (Multi.P.apply t (MM.Load (0, 0)));
  check_ok "p0 partial into 2" (Multi.P.apply t (MM.Compute (0, (0, 2))));
  check_ok "p0 save" (Multi.P.apply t (MM.Save (0, 2)));
  check_ok "p1 loads the partial" (Multi.P.apply t (MM.Load (1, 2)));
  check_int "p1 holds a copy" 1 (Multi.P.red_count t 1);
  (* p1 aggregates the second input: p0's light copy must die *)
  check_ok "p1 load u1" (Multi.P.apply t (MM.Load (1, 1)));
  check_ok "p1 continues" (Multi.P.apply t (MM.Compute (1, (1, 2))));
  check_int "p0 copy invalidated" 1 (Multi.P.red_count t 0)
  (* p0 still holds u0's light red only *)

let test_matvec_multi () =
  List.iter
    (fun (m, p) ->
      let mv = Prbp.Graphs.Matvec.make ~m in
      let g = mv.Prbp.Graphs.Matvec.dag in
      let r = ((m + p - 1) / p) + 3 in
      match Multi.P.check (cfg p r) g (Prbp.Strategies.matvec_prbp_multi ~p mv) with
      | Ok c -> check_int "formula" ((m * m) + ((p + 1) * m)) c
      | Error e -> Alcotest.fail e)
    [ (4, 1); (4, 2); (6, 2); (6, 3); (8, 4) ]

let test_matvec_multi_p1_matches_single () =
  let m = 5 in
  let mv = Prbp.Graphs.Matvec.make ~m in
  let g = mv.Prbp.Graphs.Matvec.dag in
  match Multi.P.check (cfg 1 (m + 3)) g (Prbp.Strategies.matvec_prbp_multi ~p:1 mv) with
  | Ok c -> check_int "same as Prop 4.3" (Prbp.Graphs.Matvec.prbp_opt ~m) c
  | Error e -> Alcotest.fail e

let test_fan_in_handoff () =
  List.iter
    (fun (d, halves) ->
      let g = Prbp.Graphs.Basic.fan_in d in
      match Multi.P.check (cfg halves 2) g (Prbp.Strategies.fan_in_handoff ~halves g) with
      | Ok c -> check_int "handoff cost" (d + 1 + (2 * (halves - 1))) c
      | Error e -> Alcotest.fail e)
    [ (6, 1); (6, 2); (6, 3); (9, 3); (8, 4) ]

let test_bad_processor_rejected () =
  let g = Prbp.Graphs.Basic.diamond () in
  let t = Multi.R.start (cfg 2 3) g in
  check_err "out of range" (Multi.R.apply t (MM.Load (2, 0)));
  let tp = Multi.P.start (cfg 2 3) g in
  check_err "out of range" (Multi.P.apply tp (MM.Load (~-1, 0)))

let suite =
  [
    ( "multi",
      [
        case "p=1 specializes to RBP" test_p1_specializes_rbp;
        case "p=1 specializes to PRBP" test_p1_specializes_prbp;
        case "p=1 specialization on the pool" test_p1_specialization_on_pool;
        case "per-processor capacity" test_capacity_per_processor;
        case "compute locality" test_compute_locality;
        case "dark pebbles are exclusive" test_dark_exclusivity;
        case "stale copies invalidated" test_stale_copies_invalidated;
        case "parallel matvec formula" test_matvec_multi;
        case "p=1 matvec = Prop 4.3" test_matvec_multi_p1_matches_single;
        case "fan-in handoff cost" test_fan_in_handoff;
        case "processor ids validated" test_bad_processor_rejected;
      ] );
  ]

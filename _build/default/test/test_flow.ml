open Test_util
module Flow = Prbp.Flow

let test_single_edge () =
  let net = Flow.create 2 in
  Flow.add_edge net 0 1 7;
  check_int "flow" 7 (Flow.max_flow net ~src:0 ~dst:1)

let test_no_path () =
  let net = Flow.create 3 in
  Flow.add_edge net 0 1 5;
  check_int "no path" 0 (Flow.max_flow net ~src:0 ~dst:2)

let test_bottleneck () =
  let net = Flow.create 4 in
  Flow.add_edge net 0 1 10;
  Flow.add_edge net 1 2 3;
  Flow.add_edge net 2 3 10;
  check_int "bottleneck" 3 (Flow.max_flow net ~src:0 ~dst:3)

let test_parallel_paths () =
  let net = Flow.create 4 in
  Flow.add_edge net 0 1 4;
  Flow.add_edge net 1 3 4;
  Flow.add_edge net 0 2 5;
  Flow.add_edge net 2 3 2;
  check_int "sum of paths" 6 (Flow.max_flow net ~src:0 ~dst:3)

let test_classic_network () =
  (* CLRS-style example with a cross edge *)
  let net = Flow.create 6 in
  List.iter
    (fun (u, v, c) -> Flow.add_edge net u v c)
    [
      (0, 1, 16); (0, 2, 13); (1, 3, 12); (2, 1, 4); (2, 4, 14); (3, 2, 9);
      (3, 5, 20); (4, 3, 7); (4, 5, 4);
    ];
  check_int "CLRS value" 23 (Flow.max_flow net ~src:0 ~dst:5)

let test_min_cut_side () =
  let net = Flow.create 4 in
  Flow.add_edge net 0 1 1;
  Flow.add_edge net 0 2 1;
  Flow.add_edge net 1 3 Flow.infinity;
  Flow.add_edge net 2 3 Flow.infinity;
  check_int "flow" 2 (Flow.max_flow net ~src:0 ~dst:3);
  let side = Flow.min_cut_side net ~src:0 in
  check_true "src inside" (Prbp.Bitset.mem side 0);
  check_false "dst outside" (Prbp.Bitset.mem side 3)

let test_infinite_capacity () =
  let net = Flow.create 3 in
  Flow.add_edge net 0 1 Flow.infinity;
  Flow.add_edge net 1 2 42;
  check_int "clamped at bottleneck" 42 (Flow.max_flow net ~src:0 ~dst:2)

let suite =
  [
    ( "flow",
      [
        case "single edge" test_single_edge;
        case "no path" test_no_path;
        case "bottleneck" test_bottleneck;
        case "parallel paths" test_parallel_paths;
        case "classic network" test_classic_network;
        case "min cut side" test_min_cut_side;
        case "infinite capacity" test_infinite_capacity;
      ] );
  ]

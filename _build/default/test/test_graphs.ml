open Test_util
module Dag = Prbp.Dag
module G = Prbp.Graphs

let test_path () =
  let g = G.Basic.path 6 in
  check_int "nodes" 6 (Dag.n_nodes g);
  check_int "edges" 5 (Dag.n_edges g);
  check_int "height" 5 (Prbp.Topo.height g)

let test_fan () =
  let g = G.Basic.fan_in 5 in
  check_int "Δin" 5 (Dag.max_in_degree g);
  check_int "sinks" 1 (Dag.n_sinks g);
  let g' = G.Basic.fan_out 5 in
  check_int "Δout" 5 (Dag.max_out_degree g');
  check_int "sinks'" 5 (Dag.n_sinks g')

let test_pyramid () =
  let g = G.Basic.pyramid 3 in
  check_int "nodes" 10 (Dag.n_nodes g);
  check_int "sources" 4 (Dag.n_sources g);
  check_int "sinks" 1 (Dag.n_sinks g);
  check_true "apex is sink" (Dag.is_sink g (G.Basic.pyramid_apex 3));
  check_int "Δin" 2 (Dag.max_in_degree g)

let test_grid () =
  let g = G.Basic.grid 3 4 in
  check_int "nodes" 12 (Dag.n_nodes g);
  check_int "edges" ((2 * 4) + (3 * 3)) (Dag.n_edges g);
  check_int "single source" 1 (Dag.n_sources g);
  check_int "single sink" 1 (Dag.n_sinks g)

let test_tree_structure () =
  let t = G.Tree.make ~k:3 ~depth:2 in
  let g = t.G.Tree.dag in
  check_int "nodes" 13 (Dag.n_nodes g);
  check_int "leaves are sources" 9 (Dag.n_sources g);
  check_int "root is sink" 1 (Dag.n_sinks g);
  check_int "root id" 0 (G.Tree.root t);
  check_int "Δin" 3 (Dag.max_in_degree g);
  check_int "level width" 3 (G.Tree.n_at_level t 1);
  check_int "leaf count" 9 (List.length (G.Tree.leaves t));
  (* children of (1, 0) are (2, 0..2) *)
  let parent = G.Tree.node t ~level:1 0 in
  List.iter
    (fun c -> check_true "child edge" (Dag.has_edge g (G.Tree.node t ~level:2 c) parent))
    [ 0; 1; 2 ]

let test_tree_formulas_small () =
  (* closed forms match the worked example in Appendix A.2 *)
  check_int "rbp d=3 k=2" 15 (G.Tree.rbp_opt ~k:2 ~depth:3);
  check_int "prbp d=3 k=2" 11 (G.Tree.prbp_opt ~k:2 ~depth:3);
  (* trivial cost below the interesting depths *)
  check_int "prbp d=1 k=3" 4 (G.Tree.prbp_opt ~k:3 ~depth:1);
  check_int "rbp d=1 k=3" 4 (G.Tree.rbp_opt ~k:3 ~depth:1)

let test_zipper () =
  let z = G.Zipper.make ~d:3 ~len:5 in
  let g = z.G.Zipper.dag in
  check_int "nodes" 11 (Dag.n_nodes g);
  check_int "sources" 6 (Dag.n_sources g);
  check_int "sinks" 1 (Dag.n_sinks g);
  (* chain node 0 reads group A only; node 1 reads B and the chain *)
  let chain = Array.of_list (G.Zipper.chain z) in
  check_int "in chain0" 3 (Dag.in_degree g chain.(0));
  check_int "in chain1" 4 (Dag.in_degree g chain.(1));
  List.iter
    (fun b -> check_true "b feeds chain1" (Dag.has_edge g b chain.(1)))
    (G.Zipper.group_b z)

let test_collect () =
  let c = G.Collect.make ~d:3 ~len:7 in
  let g = c.G.Collect.dag in
  check_int "nodes" 10 (Dag.n_nodes g);
  let chain = Array.of_list (G.Collect.chain c) in
  (* v_i reads source (i mod d) *)
  check_true "v4 reads u1" (Dag.has_edge g (G.Collect.source c 1) chain.(4));
  check_int "lower bound" 2 (G.Collect.lower_bound_capped c)

let test_fig1 () =
  let g, ids = G.Fig1.full () in
  check_int "nodes" 10 (Dag.n_nodes g);
  check_int "edges" 14 (Dag.n_edges g);
  check_true "w3 <- w1" (Dag.has_edge g ids.G.Fig1.w1 ids.G.Fig1.w3);
  check_true "w4 <- u1" (Dag.has_edge g ids.G.Fig1.u1 ids.G.Fig1.w4);
  check_int "Δin" 2 (Dag.max_in_degree g);
  check_int "Δout" 3 (Dag.max_out_degree g)

let test_fig1_chained () =
  List.iter
    (fun copies ->
      let g = G.Fig1.chained ~copies in
      check_int "node count" ((6 * copies) + 4) (Dag.n_nodes g);
      check_int "Δin stays 2" 2 (Dag.max_in_degree g);
      check_int "Δout stays 3" 3 (Dag.max_out_degree g);
      check_int "one source" 1 (Dag.n_sources g);
      check_int "one sink" 1 (Dag.n_sinks g))
    [ 1; 2; 7 ]

let test_matvec () =
  let mv = G.Matvec.make ~m:4 in
  let g = mv.G.Matvec.dag in
  (* paper: m²+m sources, m² in-degree-2 internals, m in-degree-m sinks *)
  check_int "sources" 20 (Dag.n_sources g);
  check_int "sinks" 4 (Dag.n_sinks g);
  check_int "nodes" 40 (Dag.n_nodes g);
  check_int "sink in-degree" 4 (Dag.in_degree g (G.Matvec.y mv 0));
  check_int "product in-degree" 2 (Dag.in_degree g (G.Matvec.p mv 2 3));
  check_true "A feeds p" (Dag.has_edge g (G.Matvec.a mv 1 2) (G.Matvec.p mv 1 2));
  check_true "x feeds p" (Dag.has_edge g (G.Matvec.x mv 2) (G.Matvec.p mv 1 2));
  check_int "trivial" (G.Matvec.prbp_opt ~m:4) (Dag.trivial_cost g)

let test_matmul () =
  let mm = G.Matmul.make ~m1:2 ~m2:3 ~m3:4 in
  let g = mm.G.Matmul.dag in
  check_int "nodes" ((2 * 3) + (3 * 4) + (2 * 3 * 4) + (2 * 4)) (Dag.n_nodes g);
  check_int "sink in-degree" 3 (Dag.in_degree g (G.Matmul.c mm 1 2));
  check_int "product out-degree" 1 (Dag.out_degree g (G.Matmul.p mm 1 2 3));
  check_int "internal edges" (2 * 3 * 4)
    (Prbp.Bitset.cardinal (G.Matmul.internal_edges mm))

let test_fft () =
  let f = G.Fft.make ~m:8 in
  let g = f.G.Fft.dag in
  check_int "nodes" 32 (Dag.n_nodes g);
  check_int "edges" (2 * 8 * 3) (Dag.n_edges g);
  check_int "sources" 8 (Dag.n_sources g);
  check_int "sinks" 8 (Dag.n_sinks g);
  check_int "Δin" 2 (Dag.max_in_degree g);
  (* butterfly wiring of the first layer *)
  check_true "straight" (Dag.has_edge g (G.Fft.node f ~layer:0 5) (G.Fft.node f ~layer:1 5));
  check_true "cross" (Dag.has_edge g (G.Fft.node f ~layer:0 5) (G.Fft.node f ~layer:1 4));
  check_true "pow2 required"
    (match G.Fft.make ~m:6 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_attention () =
  let mm = G.Attention.qkt ~m:3 ~d:2 in
  check_int "qkt is m x d x m" 3 mm.G.Matmul.m1;
  check_int "qkt inner" 2 mm.G.Matmul.m2;
  let a = G.Attention.full ~m:3 ~d:2 in
  let g = a.G.Attention.dag in
  (* sources: Q, K, V *)
  check_int "sources" (3 * 3 * 2) (Dag.n_sources g);
  (* sinks: O only *)
  check_int "sinks" (3 * 2) (Dag.n_sinks g);
  check_false "no isolated" (Dag.has_isolated_nodes g);
  (* the large-cache bound kicks in at r = d² *)
  check_true "bound positive" (G.Attention.lower_bound ~m:64 ~d:4 ~r:16 > 0.)

let test_lemma54 () =
  let l = G.Lemma54.make ~group_size:10 in
  let g = l.G.Lemma54.dag in
  check_int "nodes" (7 + 70 + 1) (Dag.n_nodes g);
  check_int "sources" 7 (Dag.n_sources g);
  check_int "sinks" 1 (Dag.n_sinks g);
  check_int "sink in-degree" 70 (Dag.in_degree g (G.Lemma54.sink l));
  check_int "group member in/out" 1
    (Dag.in_degree g (List.hd (G.Lemma54.group l 3)));
  check_int "class bound" 1 (G.Lemma54.spartition_class_lower_bound l)

let test_ugraph () =
  let g = G.Ugraph.cycle_graph 5 in
  check_int "nodes" 5 (G.Ugraph.n_nodes g);
  check_int "edges" 5 (G.Ugraph.n_edges g);
  check_true "adjacent" (G.Ugraph.adjacent g 0 4);
  check_int "degree" 2 (G.Ugraph.degree g 2);
  check_int "max inset C5" 2 (G.Ugraph.max_independent_size g);
  check_true "every C5 node in some max inset"
    (List.for_all (G.Ugraph.maxinset_vertex g) [ 0; 1; 2; 3; 4 ]);
  (* path P3: max inset {0,2}; middle node not in any *)
  let p = G.Ugraph.path_graph 3 in
  check_true "end in" (G.Ugraph.maxinset_vertex p 0);
  check_false "middle out" (G.Ugraph.maxinset_vertex p 1);
  check_int "K4 inset" 1 (G.Ugraph.max_independent_size (G.Ugraph.complete 4));
  (* complement of complete is empty: all nodes independent *)
  check_int "complement" 4
    (G.Ugraph.max_independent_size (G.Ugraph.complement (G.Ugraph.complete 4)))

let test_independent_sets_listing () =
  let p = G.Ugraph.path_graph 4 in
  (* P4 maximum independent sets of size 2: {0,2},{0,3},{1,3} *)
  let sets = G.Ugraph.max_independent_sets p in
  check_int "count" 3 (List.length sets);
  check_true "all independent" (List.for_all (G.Ugraph.is_independent p) sets)

let suite =
  [
    ( "graphs",
      [
        case "path" test_path;
        case "fans" test_fan;
        case "pyramid" test_pyramid;
        case "grid" test_grid;
        case "k-ary tree structure" test_tree_structure;
        case "tree closed forms (A.2 example)" test_tree_formulas_small;
        case "zipper gadget" test_zipper;
        case "collection gadget" test_collect;
        case "figure-1 DAG" test_fig1;
        case "figure-1 chain (Prop 4.7)" test_fig1_chained;
        case "matvec DAG (Prop 4.3 shape)" test_matvec;
        case "matmul DAG" test_matmul;
        case "FFT butterfly" test_fft;
        case "attention DAGs" test_attention;
        case "Lemma 5.4 construction" test_lemma54;
        case "undirected graphs + MaxInSet-Vertex" test_ugraph;
        case "maximum independent set listing" test_independent_sets_listing;
      ] );
  ]

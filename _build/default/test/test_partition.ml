open Test_util
module Dag = Prbp.Dag
module Bitset = Prbp.Bitset
module Spart = Prbp.Spart

let diamond () = Prbp.Graphs.Basic.diamond ()

let bs g xs = Bitset.of_list (Dag.n_nodes g) xs

let es g xs = Bitset.of_list (Dag.n_edges g) xs

let test_single_class_spartition () =
  let g = diamond () in
  let all = Bitset.create (Dag.n_nodes g) in
  Bitset.fill all;
  check_ok "whole graph, S=2" (Spart.is_spartition g ~s:2 [| all |]);
  check_err "S=0 fails" (Spart.is_spartition g ~s:0 [| all |])

let test_cover_violations () =
  let g = diamond () in
  check_err "missing nodes" (Spart.is_spartition g ~s:4 [| bs g [ 0; 1 ] |]);
  check_err "duplicate nodes"
    (Spart.is_spartition g ~s:4 [| bs g [ 0; 1 ]; bs g [ 1; 2; 3 ] |])

let test_ordering_violation () =
  let g = diamond () in
  (* sink in the first class, its inputs in the second: backwards edge *)
  check_err "cyclic dependency"
    (Spart.is_spartition g ~s:4 [| bs g [ 0; 3 ]; bs g [ 1; 2 ] |])

let test_valid_two_class () =
  let g = diamond () in
  check_ok "split"
    (Spart.is_spartition g ~s:2 [| bs g [ 0; 1 ]; bs g [ 2; 3 ] |])

let test_terminal_size_violation () =
  (* fan-out: one source, 5 sinks; class of all sinks has terminal 5 *)
  let g = Prbp.Graphs.Basic.fan_out 5 in
  let cls = [| bs g [ 0 ]; bs g [ 1; 2; 3; 4; 5 ] |] in
  check_err "terminal too big" (Spart.is_spartition g ~s:2 cls);
  check_ok "dominator-only version accepts"
    (Spart.is_dominator_partition g ~s:2 cls)

let test_dominator_size_violation () =
  let g = Prbp.Graphs.Basic.fan_in 5 in
  let cls = [| bs g [ 0; 1; 2; 3; 4 ]; bs g [ 5 ] |] in
  (* the source class needs a dominator of size 5 *)
  check_err "dominator too big" (Spart.is_dominator_partition g ~s:4 cls);
  check_ok "big enough S" (Spart.is_dominator_partition g ~s:5 cls)

let test_edge_partition_basics () =
  let g = diamond () in
  let e u v = Dag.edge_id g u v in
  let all = Bitset.create (Dag.n_edges g) in
  Bitset.fill all;
  check_ok "one class" (Spart.is_edge_partition g ~s:3 [| all |]);
  check_ok "two classes"
    (Spart.is_edge_partition g ~s:2
       [| es g [ e 0 1; e 0 2 ]; es g [ e 1 3; e 2 3 ] |]);
  check_err "out-edge before in-edge"
    (Spart.is_edge_partition g ~s:4
       [| es g [ e 1 3; e 0 2 ]; es g [ e 0 1; e 2 3 ] |])

let test_edge_partition_split_target_ok () =
  (* unlike node partitions, the two in-edges of the sink may live in
     different classes *)
  let g = diamond () in
  let e u v = Dag.edge_id g u v in
  check_ok "sink edges split"
    (Spart.is_edge_partition g ~s:2
       [| es g [ e 0 1; e 1 3 ]; es g [ e 0 2; e 2 3 ] |])

let test_greedy_spartition_valid () =
  List.iter
    (fun g ->
      let s = max 2 (2 * (Dag.max_in_degree g + 1)) in
      let cls = Spart.greedy_spartition g ~s in
      check_ok "greedy valid" (Spart.is_spartition g ~s cls))
    (Lazy.force random_dags)

let test_greedy_edge_partition_valid () =
  List.iter
    (fun g ->
      let s = max 2 (2 * (Dag.max_in_degree g + 1)) in
      let cls = Spart.greedy_edge_partition g ~s in
      check_ok "greedy valid" (Spart.is_edge_partition g ~s cls))
    (Lazy.force random_dags)

let test_lemma54_class_growth () =
  (* Lemma 5.4: S(=6)-partitions of the Figure-3 DAG need Θ(n) classes
     while OPT_PRBP stays 8; the greedy witness grows linearly *)
  let counts =
    List.map
      (fun h ->
        let l = Prbp.Graphs.Lemma54.make ~group_size:h in
        let cls = Spart.greedy_spartition l.Prbp.Graphs.Lemma54.dag ~s:6 in
        check_ok "valid"
          (Spart.is_spartition l.Prbp.Graphs.Lemma54.dag ~s:6 cls);
        check_true "at least the proof bound"
          (Array.length cls
          >= Prbp.Graphs.Lemma54.spartition_class_lower_bound l);
        Array.length cls)
      [ 6; 12; 24 ]
  in
  match counts with
  | [ a; b; c ] ->
      check_true "growing" (a < b && b < c)
  | _ -> assert false

let test_io_lower_bound_formula () =
  check_int "formula" 12 (Spart.io_lower_bound ~r:4 ~min_classes:4);
  check_int "one class gives zero" 0 (Spart.io_lower_bound ~r:4 ~min_classes:1)

let suite =
  [
    ( "partition",
      [
        case "single-class S-partition" test_single_class_spartition;
        case "cover violations" test_cover_violations;
        case "ordering violation" test_ordering_violation;
        case "valid split" test_valid_two_class;
        case "terminal size violation" test_terminal_size_violation;
        case "dominator size violation" test_dominator_size_violation;
        case "edge partitions (Def 6.3)" test_edge_partition_basics;
        case "edge classes may split a target" test_edge_partition_split_target_ok;
        case "greedy node partitions valid" test_greedy_spartition_valid;
        case "greedy edge partitions valid" test_greedy_edge_partition_valid;
        case "Lemma 5.4 class growth" test_lemma54_class_growth;
        case "Theorem 6.5/6.7 bound formula" test_io_lower_bound_formula;
      ] );
  ]

(* Differential testing: the optimized engines vs the literal-rules
   verifier, on hand-written strategies, heuristic traces, and random
   walks probing every candidate move at every state. *)
open Test_util
module Dag = Prbp.Dag
module V = Prbp.Verifier
module R = Prbp.Move.R
module P = Prbp.Move.P

let test_agree_on_strategies () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  check_ok "fig1 rbp" (V.agree_rbp ~r:4 g (Prbp.Strategies.fig1_rbp ids));
  check_ok "fig1 prbp" (V.agree_prbp ~r:4 g (Prbp.Strategies.fig1_prbp ids));
  let t = Prbp.Graphs.Tree.make ~k:2 ~depth:3 in
  check_ok "tree rbp" (V.agree_rbp ~r:3 t.Prbp.Graphs.Tree.dag (Prbp.Strategies.tree_rbp t));
  check_ok "tree prbp"
    (V.agree_prbp ~r:3 t.Prbp.Graphs.Tree.dag (Prbp.Strategies.tree_prbp t));
  let mv = Prbp.Graphs.Matvec.make ~m:3 in
  check_ok "matvec"
    (V.agree_prbp ~r:6 mv.Prbp.Graphs.Matvec.dag (Prbp.Strategies.matvec_prbp mv))

let test_agree_on_heuristic_traces () =
  List.iter
    (fun g ->
      let r = max 2 (Dag.max_in_degree g + 1) in
      check_ok "rbp trace" (V.agree_rbp ~r g (Prbp.Heuristic.rbp ~r g));
      check_ok "prbp trace" (V.agree_prbp ~r:2 g (Prbp.Heuristic.prbp ~r:2 g));
      check_ok "greedy trace"
        (V.agree_prbp ~r:3 g (Prbp.Heuristic.prbp_greedy ~r:3 g)))
    (Lazy.force random_dags)

let test_verifier_run_costs () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  (match V.R.run ~r:4 g (Prbp.Strategies.fig1_rbp ids) with
  | Ok st ->
      check_int "rbp cost" 3 st.V.R.io;
      check_true "terminal" (V.R.is_terminal g st)
  | Error e -> Alcotest.fail e);
  match V.P.run ~r:4 g (Prbp.Strategies.fig1_prbp ids) with
  | Ok st ->
      check_int "prbp cost" 2 st.V.P.io;
      check_true "terminal" (V.P.is_terminal g st)
  | Error e -> Alcotest.fail e

let test_verifier_rejects () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_err "rbp bad compute" (V.R.run ~r:3 g [ R.Compute 3 ]);
  check_err "rbp slide rejected" (V.R.run ~r:3 g [ R.Load 0; R.Slide (0, 1) ]);
  check_err "prbp clear rejected" (V.P.run ~r:3 g [ P.Clear 1 ]);
  check_err "prbp blue target"
    (V.P.run ~r:3 g [ P.Load 0; P.Compute (3, 3) ])

(* Random walk probing all candidate moves at every state: the engine
   and the verifier must agree on the legality of every candidate, not
   just on the chosen path. *)
let all_rbp_candidates g =
  let n = Dag.n_nodes g in
  List.concat_map
    (fun v -> [ R.Load v; R.Save v; R.Compute v; R.Delete v ])
    (List.init n (fun v -> v))

let all_prbp_candidates g =
  let n = Dag.n_nodes g in
  List.concat_map (fun v -> [ P.Load v; P.Save v; P.Delete v ])
    (List.init n (fun v -> v))
  @ List.map (fun (u, v) -> P.Compute (u, v)) (Dag.edges g)

let prop_rbp_walk =
  qcase ~count:25 "random RBP walks: engines agree on every candidate"
    QCheck.(pair (int_range 1 5_000) (int_range 0 1_000_000))
    (fun (seed, walk_seed) ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~layers:3 ~width:3 ~density:0.4 ()
      in
      let r = Dag.max_in_degree g + 1 in
      let st = Random.State.make [| walk_seed |] in
      let eng = Prbp.Rbp.start (Prbp.Rbp.config ~r ()) g in
      let vstate = ref (V.R.initial g) in
      let candidates = all_rbp_candidates g in
      let ok = ref true in
      (try
         for _step = 1 to 60 do
           (* the verifier (persistent state) probes candidates; the
              engine is then required to agree on the chosen one, and
              on every rejected one after the walk *)
           let legal =
             List.filter
               (fun m ->
                 match V.R.step ~r g !vstate m with
                 | Ok _ -> true
                 | Error _ -> false)
               candidates
           in
           match legal with
           | [] -> raise Exit
           | _ ->
               let m = List.nth legal (Random.State.int st (List.length legal)) in
               (match (Prbp.Rbp.apply eng m, V.R.step ~r g !vstate m) with
               | Ok (), Ok st' -> vstate := st'
               | Error _, Error _ -> ()
               | _ -> ok := false)
         done
       with Exit -> ());
      (* the illegal candidates must be rejected by the engine too *)
      List.iter
        (fun m ->
          match V.R.step ~r g !vstate m with
          | Ok _ -> ()
          | Error _ -> (
              (* engine must also reject; apply on a scratch replay *)
              match Prbp.Rbp.apply eng m with
              | Error _ -> ()
              | Ok () -> ok := false))
        candidates;
      !ok && Prbp.Rbp.io_cost eng = !vstate.V.R.io)

let prop_prbp_walk =
  qcase ~count:25 "random PRBP walks: engines agree on every candidate"
    QCheck.(pair (int_range 1 5_000) (int_range 0 1_000_000))
    (fun (seed, walk_seed) ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~layers:3 ~width:2 ~density:0.4 ()
      in
      let r = 3 in
      let st = Random.State.make [| walk_seed |] in
      let eng = Prbp.Prbp_game.start (Prbp.Prbp_game.config ~r ()) g in
      let vstate = ref (V.P.initial g) in
      let candidates = all_prbp_candidates g in
      let ok = ref true in
      (try
         for _step = 1 to 80 do
           let legal =
             List.filter
               (fun m ->
                 match V.P.step ~r g !vstate m with
                 | Ok _ -> true
                 | Error _ -> false)
               candidates
           in
           match legal with
           | [] -> raise Exit
           | _ ->
               let m = List.nth legal (Random.State.int st (List.length legal)) in
               (match (Prbp.Prbp_game.apply eng m, V.P.step ~r g !vstate m) with
               | Ok (), Ok st' -> vstate := st'
               | Error _, Error _ -> ()
               | _ -> ok := false)
         done
       with Exit -> ());
      List.iter
        (fun m ->
          match V.P.step ~r g !vstate m with
          | Ok _ -> ()
          | Error _ -> (
              match Prbp.Prbp_game.apply eng m with
              | Error _ -> ()
              | Ok () -> ok := false))
        candidates;
      !ok && Prbp.Prbp_game.io_cost eng = !vstate.V.P.io)

let suite =
  [
    ( "verifier",
      [
        case "agrees on paper strategies" test_agree_on_strategies;
        case "agrees on heuristic traces" test_agree_on_heuristic_traces;
        case "literal costs" test_verifier_run_costs;
        case "literal rejections" test_verifier_rejects;
        prop_rbp_walk;
        prop_prbp_walk;
      ] );
  ]

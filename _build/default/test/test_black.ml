(* Black pebble game + cache thresholds. *)
open Test_util
module Dag = Prbp.Dag
module Black = Prbp.Black
module Th = Prbp.Thresholds

let test_known_numbers () =
  check_int "path" 2 (Black.number (Prbp.Graphs.Basic.path 6));
  check_int "path sliding" 1 (Black.number ~sliding:true (Prbp.Graphs.Basic.path 6));
  check_int "diamond" 3 (Black.number (Prbp.Graphs.Basic.diamond ()));
  check_int "fan-in d+1" 5 (Black.number (Prbp.Graphs.Basic.fan_in 4));
  check_int "fan-out" 2 (Black.number (Prbp.Graphs.Basic.fan_out 4))

let test_pyramids_classic () =
  (* the classic pyramid results: h+2 pebbles, h+1 with sliding *)
  List.iter
    (fun h ->
      let g = Prbp.Graphs.Basic.pyramid h in
      check_int "pyramid" (h + 2) (Black.number g);
      check_int "pyramid sliding" (h + 1) (Black.number ~sliding:true g))
    [ 1; 2; 3 ]

let test_trees () =
  (* binary in-trees: depth + 2 pebbles without sliding *)
  List.iter
    (fun d ->
      let t = Prbp.Graphs.Tree.make ~k:2 ~depth:d in
      check_int "tree" (d + 2) (Black.number t.Prbp.Graphs.Tree.dag))
    [ 1; 2; 3 ]

let test_bounds () =
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 12 then begin
        let b = Black.number g in
        let bs = Black.number ~sliding:true g in
        check_true "≥ Δin+1" (b >= Dag.max_in_degree g + 1);
        check_true "≤ n" (b <= Dag.n_nodes g);
        check_true "sliding saves ≤ 1" (bs <= b && b <= bs + 1)
      end)
    (Lazy.force random_dags)

let test_feasible_monotone () =
  let g = Prbp.Graphs.Basic.pyramid 2 in
  check_false "3 too few" (Black.feasible ~s:3 g);
  check_true "4 enough" (Black.feasible ~s:4 g);
  check_true "5 enough" (Black.feasible ~s:5 g)

let test_budget () =
  let g = Prbp.Graphs.Basic.grid 4 4 in
  check_true "budget raises"
    (match Black.feasible ~max_states:10 ~s:8 g with
    | exception Black.Too_large _ -> true
    | _ -> false)

let test_thresholds_fig1 () =
  (* Proposition 4.2 in threshold form: at r = 4 PRBP is already at the
     trivial cost while RBP still needs r = 5 *)
  let g, _ = Prbp.Graphs.Fig1.full () in
  Alcotest.(check (option int)) "RBP" (Some 5) (Th.rbp_trivial_r g);
  Alcotest.(check (option int)) "PRBP" (Some 4) (Th.prbp_trivial_r g)

let test_thresholds_fan_in () =
  (* the aggregation case: PRBP streams with 2 pebbles, RBP needs d+1 *)
  let g = Prbp.Graphs.Basic.fan_in 4 in
  Alcotest.(check (option int)) "RBP" (Some 5) (Th.rbp_trivial_r g);
  Alcotest.(check (option int)) "PRBP" (Some 2) (Th.prbp_trivial_r g)

let test_threshold_relations () =
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 10 && Dag.n_edges g <= 18 then
        match (Th.rbp_trivial_r g, Th.prbp_trivial_r g) with
        | Some rr, Some rp ->
            check_true "PRBP needs no more cache" (rp <= rr);
            (* a trivial-cost RBP pebbling is a one-shot black pebbling,
               so r* is at least the black pebbling number *)
            check_true "r*_RBP >= black number" (rr >= Black.number g)
        | _ -> ())
    (Lazy.force random_dags)

let test_feasibility_thresholds () =
  let g = Prbp.Graphs.Basic.fan_in 7 in
  check_int "rbp needs Δin+1" 8 (Th.rbp_feasible_r g);
  check_int "prbp needs 2" 2 (Th.prbp_feasible_r g);
  let e = Prbp.Dag.make ~n:1 [] in
  check_int "edgeless" 1 (Th.prbp_feasible_r e)

let suite =
  [
    ( "black+thresholds",
      [
        case "known pebbling numbers" test_known_numbers;
        case "pyramids (classic)" test_pyramids_classic;
        case "binary in-trees" test_trees;
        case "bounds on the pool" test_bounds;
        case "feasibility monotone in s" test_feasible_monotone;
        case "state budget" test_budget;
        case "fig1 thresholds (Prop 4.2 reframed)" test_thresholds_fig1;
        case "fan-in thresholds" test_thresholds_fan_in;
        case "threshold relations" test_threshold_relations;
        case "feasibility thresholds" test_feasibility_thresholds;
      ] );
  ]

open Test_util
module Dag = Prbp.Dag
module Bitset = Prbp.Bitset
module Dominator = Prbp.Dominator
module Reach = Prbp.Reach

let diamond () = Prbp.Graphs.Basic.diamond ()

let bs g xs = Bitset.of_list (Dag.n_nodes g) xs

let es g xs = Bitset.of_list (Dag.n_edges g) xs

let test_reach () =
  let g = diamond () in
  Alcotest.(check (list int)) "descendants of 1" [ 1; 3 ]
    (Bitset.to_list (Reach.descendants g 1));
  Alcotest.(check (list int)) "ancestors of 3" [ 0; 1; 2; 3 ]
    (Bitset.to_list (Reach.ancestors g 3));
  let avoid = bs g [ 1 ] in
  Alcotest.(check (list int)) "avoiding 1" [ 0; 2; 3 ]
    (Bitset.to_list (Reach.from_avoiding g ~avoid [ 0 ]))

let test_is_dominator () =
  let g = diamond () in
  check_true "source dominates everything"
    (Dominator.is_dominator g (bs g [ 0 ]) (bs g [ 3 ]));
  check_true "both middles dominate sink"
    (Dominator.is_dominator g (bs g [ 1; 2 ]) (bs g [ 3 ]));
  check_false "one middle is not enough"
    (Dominator.is_dominator g (bs g [ 1 ]) (bs g [ 3 ]));
  check_true "self domination"
    (Dominator.is_dominator g (bs g [ 3 ]) (bs g [ 3 ]));
  (* a source in V0 must itself be covered *)
  check_false "uncovered source"
    (Dominator.is_dominator g (bs g [ 1 ]) (bs g [ 0 ]))

let test_min_dominator_size () =
  let g = diamond () in
  check_int "sink via source" 1 (Dominator.min_dominator_size g (bs g [ 3 ]));
  check_int "middles" 1 (Dominator.min_dominator_size g (bs g [ 1; 2 ]));
  check_int "empty" 0 (Dominator.min_dominator_size g (Bitset.create 4))

let test_min_dominator_witness () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  for v = 0 to Dag.n_nodes g - 1 do
    let v0 = bs g [ v ] in
    let d = Dominator.min_dominator g v0 in
    check_true "witness dominates" (Dominator.is_dominator g d v0);
    check_int "witness is minimum"
      (Dominator.min_dominator_size g v0)
      (Bitset.cardinal d)
  done

let test_lemma54_seven_sources () =
  (* the core of the Lemma 5.4 argument: a set meeting all 7 groups
     plus the sink admits no dominator of size 6 *)
  let l = Prbp.Graphs.Lemma54.make ~group_size:5 in
  let g = l.Prbp.Graphs.Lemma54.dag in
  let v0 = Bitset.create (Dag.n_nodes g) in
  Bitset.add v0 (Prbp.Graphs.Lemma54.sink l);
  for i = 0 to 6 do
    Bitset.add v0 (List.hd (Prbp.Graphs.Lemma54.group l i))
  done;
  check_int "needs 7" 7 (Dominator.min_dominator_size g v0)

let test_terminal_set () =
  let g = diamond () in
  Alcotest.(check (list int)) "terminal of {0,1,2}" [ 1; 2 ]
    (Bitset.to_list (Dominator.terminal_set g (bs g [ 0; 1; 2 ])));
  Alcotest.(check (list int)) "terminal of all" [ 3 ]
    (Bitset.to_list (Dominator.terminal_set g (bs g [ 0; 1; 2; 3 ])))

let test_edge_terminal_set () =
  (* paper's remark after Def 6.2: both v2 and its out-neighbor v3 can
     be edge-terminal, unlike node terminal sets *)
  let g = Dag.make ~n:5 [ (0, 1); (1, 2); (2, 3); (4, 3) ] in
  let e01 = Dag.edge_id g 0 1
  and e12 = Dag.edge_id g 1 2
  and e43 = Dag.edge_id g 4 3 in
  ignore e01;
  let e0 = es g [ e12; e43 ] in
  Alcotest.(check (list int)) "both 2 and 3" [ 2; 3 ]
    (Bitset.to_list (Dominator.edge_terminal_set g e0))

let test_start_nodes_and_edge_dominator () =
  let g = diamond () in
  let all_edges = Bitset.create (Dag.n_edges g) in
  Bitset.fill all_edges;
  Alcotest.(check (list int)) "starts" [ 0; 1; 2 ]
    (Bitset.to_list (Dominator.start_nodes g all_edges));
  check_true "source edge-dominates"
    (Dominator.is_edge_dominator g (bs g [ 0 ]) all_edges);
  check_int "min edge dominator" 1
    (Dominator.min_edge_dominator_size g all_edges);
  (* edges out of the middles only *)
  let mid = es g [ Dag.edge_id g 1 3; Dag.edge_id g 2 3 ] in
  check_true "middles dominate their edges"
    (Dominator.is_edge_dominator g (bs g [ 1; 2 ]) mid);
  check_false "one middle does not"
    (Dominator.is_edge_dominator g (bs g [ 1 ]) mid)

let prop_min_dominator_vs_check =
  qcase ~count:30 "flow minimum agrees with the dominator predicate"
    QCheck.(pair (int_range 1 200) (int_range 0 8))
    (fun (seed, pick) ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~layers:3 ~width:3 ~density:0.4 ()
      in
      let v = pick mod Dag.n_nodes g in
      let v0 = Bitset.of_list (Dag.n_nodes g) [ v ] in
      let size = Dominator.min_dominator_size g v0 in
      let d = Dominator.min_dominator g v0 in
      Dominator.is_dominator g d v0 && Bitset.cardinal d = size && size >= 1)

let suite =
  [
    ( "dominator",
      [
        case "reachability" test_reach;
        case "is_dominator" test_is_dominator;
        case "min dominator size" test_min_dominator_size;
        case "min dominator witness" test_min_dominator_witness;
        case "Lemma 5.4 seven-source core" test_lemma54_seven_sources;
        case "terminal set" test_terminal_set;
        case "edge-terminal set (Def 6.2 remark)" test_edge_terminal_set;
        case "edge dominators" test_start_nodes_and_edge_dominator;
        prop_min_dominator_vs_check;
      ] );
  ]

(* Theorem 4.8 reduction and its MaxInSet-Vertex substrate. *)
open Test_util
module Dag = Prbp.Dag
module G = Prbp.Graphs
module H = Prbp.Graphs.Hardness48

let mini g0 v0 = H.make ~b:4 ~ell0:30 ~g0 ~v0 ()

let test_parameters () =
  let g0 = G.Ugraph.path_graph 3 in
  let t = H.make ~g0 ~v0:0 () in
  let n0 = 3 and e0 = 2 in
  check_int "r = b + 4n0 + 5" (4 + (4 * n0) + 5) t.H.r;
  let d = t.H.r - 2 in
  check_int "default ell0" (2 * d * ((n0 * t.H.b) + (2 * e0) + 6 + t.H.r))
    t.H.ell0;
  check_int "ell" ((2 * t.H.ell0) + n0 + (2 * d)) t.H.ell

let test_gadget_shapes () =
  let g0 = G.Ugraph.cycle_graph 4 in
  let t = mini g0 1 in
  let d = t.H.r - 2 in
  Array.iter
    (fun (gad : H.gadget) ->
      check_int "group size" d (Array.length gad.H.group);
      check_int "chain length" t.H.ell (Array.length gad.H.chain))
    (Array.append t.H.h1 t.H.h2);
  (* chain node i has in-edges from chain i-1 and group (i mod d) *)
  let gad = t.H.h1.(2) in
  check_true "chain edge" (Dag.has_edge t.H.dag gad.H.chain.(4) gad.H.chain.(5));
  check_true "group edge"
    (Dag.has_edge t.H.dag gad.H.group.(5 mod d) gad.H.chain.(5))

let test_merged_sources () =
  let g0 = G.Ugraph.path_graph 2 in
  let t = mini g0 0 in
  (* the first b group members of H1(u) and H2(u) are the same nodes *)
  for u = 0 to 1 do
    for i = 0 to t.H.b - 1 do
      check_int "merged" t.H.h1.(u).H.group.(i) t.H.h2.(u).H.group.(i)
    done
  done

let test_cross_dependencies () =
  let g0 = G.Ugraph.path_graph 2 in
  let t = mini g0 0 in
  (* for edge (0,1): some middle chain node of H1(0) is a group member
     of H2(1), and vice versa *)
  let middles side u = Array.to_list (H.middle_nodes t ~side u) in
  let group_mem u x = Array.exists (fun y -> y = x) t.H.h2.(u).H.group in
  check_true "H1(0) middle in H2(1)"
    (List.exists (group_mem 1) (middles 1 0));
  check_true "H1(1) middle in H2(0)"
    (List.exists (group_mem 0) (middles 1 1));
  (* self-dependence H1(u) -> H2(u) *)
  check_true "H1(0) middle in H2(0)"
    (List.exists (group_mem 0) (middles 1 0))

let test_z_and_sink () =
  let g0 = G.Ugraph.path_graph 3 in
  let t = mini g0 1 in
  check_int "z sizes" 3 (Array.length t.H.z1);
  check_true "w is a sink" (Dag.is_sink t.H.dag t.H.w);
  check_int "w in-degree 6" 6 (Dag.in_degree t.H.dag t.H.w);
  Array.iter
    (fun z -> check_true "z1 feeds w" (Dag.has_edge t.H.dag z t.H.w))
    t.H.z1;
  Array.iter
    (fun z -> check_true "z2 feeds w" (Dag.has_edge t.H.dag z t.H.w))
    t.H.z2

let test_acyclic_and_wellformed () =
  List.iter
    (fun (g0, v0) ->
      let t = mini g0 v0 in
      (* Dag.make already guarantees acyclicity; check basic shape *)
      check_false "no isolated nodes" (Dag.has_isolated_nodes t.H.dag);
      check_true "v0 recorded" (t.H.v0 = v0))
    [
      (G.Ugraph.path_graph 2, 0);
      (G.Ugraph.path_graph 3, 1);
      (G.Ugraph.cycle_graph 5, 2);
      (G.Ugraph.complete 3, 0);
    ]

let test_maxinset_vertex_oracle_cases () =
  (* ground truths used by the reduction's correctness statement *)
  let p5 = G.Ugraph.path_graph 5 in
  (* P5 max inset {0,2,4} is unique: middle-adjacent nodes excluded *)
  check_true "0 in" (G.Ugraph.maxinset_vertex p5 0);
  check_false "1 out" (G.Ugraph.maxinset_vertex p5 1);
  check_true "2 in" (G.Ugraph.maxinset_vertex p5 2);
  let c4 = G.Ugraph.cycle_graph 4 in
  check_true "C4 all in" (List.for_all (G.Ugraph.maxinset_vertex c4) [ 0; 1; 2; 3 ])

let test_reduction_answer_recorded () =
  (* end-to-end: build the reduction for both a yes- and a no-instance
     and confirm the decision the construction encodes *)
  let p3 = G.Ugraph.path_graph 3 in
  let yes = G.Ugraph.maxinset_vertex p3 0 in
  let no = G.Ugraph.maxinset_vertex p3 1 in
  check_true "yes instance" yes;
  check_false "no instance" no;
  (* the reduction is polynomial: the DAG size is bounded by a
     polynomial in n0 for the default parameters *)
  let t = H.make ~g0:p3 ~v0:0 () in
  check_true "polynomial size" (Dag.n_nodes t.H.dag < 2_000_000)

let test_source_count () =
  let g0 = G.Ugraph.path_graph 2 in
  let t = mini g0 0 in
  (* every group member is a source except the dependency slots that
     are chain nodes of H1 gadgets *)
  let n0 = 2 in
  let deps = List.fold_left (fun acc u -> acc + 1 + G.Ugraph.degree g0 u) 0 [ 0; 1 ] in
  let expected_sources =
    (* per node: b merged + (per side) 3n0 anchors + 3 z + fillers *)
    let d = t.H.r - 2 in
    let h1_fresh = d - t.H.b in
    let h2_fresh u = d - t.H.b - (1 + G.Ugraph.degree g0 u) in
    (n0 * t.H.b) + (n0 * h1_fresh) + h2_fresh 0 + h2_fresh 1
  in
  ignore deps;
  check_int "sources" expected_sources (Dag.n_sources t.H.dag)

let suite =
  [
    ( "hardness48",
      [
        case "A.4 parameter choices" test_parameters;
        case "gadget shapes" test_gadget_shapes;
        case "merged sources" test_merged_sources;
        case "cross dependencies" test_cross_dependencies;
        case "Z sets and sink w" test_z_and_sink;
        case "well-formed across instances" test_acyclic_and_wellformed;
        case "MaxInSet-Vertex oracle" test_maxinset_vertex_oracle_cases;
        case "reduction end-to-end" test_reduction_answer_recorded;
        case "source accounting" test_source_count;
      ] );
  ]

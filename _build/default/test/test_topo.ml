open Test_util
module Dag = Prbp.Dag
module Topo = Prbp.Topo

let test_sort_diamond () =
  let g = Prbp.Graphs.Basic.diamond () in
  let ord = Topo.sort g in
  check_true "valid order" (Topo.is_order g ord);
  (* Kahn with a min-heap is deterministic: 0, then 1 before 2 *)
  Alcotest.(check (array int)) "deterministic" [| 0; 1; 2; 3 |] ord

let test_is_order_rejects () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_false "reversed" (Topo.is_order g [| 3; 2; 1; 0 |]);
  check_false "not a permutation" (Topo.is_order g [| 0; 0; 1; 2 |]);
  check_false "wrong length" (Topo.is_order g [| 0; 1; 2 |])

let test_depth () =
  let g = Prbp.Graphs.Basic.path 5 in
  Alcotest.(check (array int)) "path depths" [| 0; 1; 2; 3; 4 |] (Topo.depth g);
  check_int "height" 4 (Topo.height g)

let test_depth_longest_path () =
  (* depth follows the longest path, not the shortest *)
  let g = Prbp.Dag.make ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check (array int)) "depths" [| 0; 1; 2; 3 |] (Topo.depth g)

let test_levels () =
  let g = Prbp.Graphs.Basic.diamond () in
  let lv = Topo.levels g in
  check_int "three levels" 3 (Array.length lv);
  Alcotest.(check (list int)) "middle" [ 1; 2 ] lv.(1)

let test_edge_order () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  let eo = Topo.edge_order g in
  check_int "all edges" (Dag.n_edges g) (Array.length eo);
  (* in-edges of any node come before its out-edges *)
  let pos = Array.make (Dag.n_edges g) 0 in
  Array.iteri (fun i e -> pos.(e) <- i) eo;
  Dag.iter_edges
    (fun e _ v ->
      Dag.iter_succ_e
        (fun e' _ -> check_true "in before out" (pos.(e) < pos.(e')))
        g v)
    g

let prop_sort_random =
  qcase ~count:50 "topological order on random DAGs"
    QCheck.(int_range 1 500)
    (fun seed ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~layers:5 ~width:3 ~density:0.4 ()
      in
      Topo.is_order g (Topo.sort g))

let suite =
  [
    ( "topo",
      [
        case "sort diamond" test_sort_diamond;
        case "is_order rejects" test_is_order_rejects;
        case "depth on path" test_depth;
        case "depth is longest path" test_depth_longest_path;
        case "levels" test_levels;
        case "edge order respects marking" test_edge_order;
        prop_sort_random;
      ] );
  ]

open Test_util
module Bitset = Prbp.Bitset

let test_empty () =
  let b = Bitset.create 100 in
  check_true "empty" (Bitset.is_empty b);
  check_int "cardinal" 0 (Bitset.cardinal b);
  check_int "capacity" 100 (Bitset.capacity b);
  check_false "mem" (Bitset.mem b 42)

let test_add_remove () =
  let b = Bitset.create 130 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 129;
  check_int "cardinal" 4 (Bitset.cardinal b);
  check_true "mem 63" (Bitset.mem b 63);
  check_true "mem 64" (Bitset.mem b 64);
  Bitset.remove b 63;
  check_false "removed" (Bitset.mem b 63);
  check_int "cardinal after remove" 3 (Bitset.cardinal b);
  (* removing twice is a no-op *)
  Bitset.remove b 63;
  check_int "idempotent remove" 3 (Bitset.cardinal b)

let test_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 out of [0, 10)")
    (fun () -> Bitset.add b (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index 10 out of [0, 10)")
    (fun () -> ignore (Bitset.mem b 10))

let test_set_ops () =
  let a = Bitset.of_list 20 [ 1; 3; 5; 7 ] in
  let b = Bitset.of_list 20 [ 3; 7; 9 ] in
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 3; 5; 7; 9 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 3; 7 ] (Bitset.to_list i);
  let d = Bitset.copy a in
  Bitset.diff_into d b;
  Alcotest.(check (list int)) "diff" [ 1; 5 ] (Bitset.to_list d);
  check_true "subset" (Bitset.subset i a);
  check_false "not subset" (Bitset.subset b a)

let test_fill_clear () =
  let b = Bitset.create 70 in
  Bitset.fill b;
  check_int "full" 70 (Bitset.cardinal b);
  Bitset.clear b;
  check_true "cleared" (Bitset.is_empty b)

let test_copy_independent () =
  let a = Bitset.of_list 8 [ 2 ] in
  let b = Bitset.copy a in
  Bitset.add b 5;
  check_false "copy is independent" (Bitset.mem a 5);
  check_true "original kept" (Bitset.mem b 2)

let test_equal_capacity_mismatch () =
  let a = Bitset.create 8 and b = Bitset.create 9 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.equal a b))

let test_choose () =
  let b = Bitset.create 50 in
  Alcotest.(check (option int)) "empty" None (Bitset.choose b);
  Bitset.add b 17;
  Bitset.add b 3;
  Alcotest.(check (option int)) "min" (Some 3) (Bitset.choose b)

let test_iter_order () =
  let b = Bitset.of_list 200 [ 150; 7; 64; 0 ] in
  Alcotest.(check (list int)) "sorted" [ 0; 7; 64; 150 ] (Bitset.to_list b)

let prop_roundtrip =
  qcase "of_list/to_list roundtrip"
    QCheck.(list (int_bound 99))
    (fun xs ->
      let b = Prbp.Bitset.of_list 100 xs in
      Prbp.Bitset.to_list b = List.sort_uniq compare xs)

let prop_union_cardinal =
  qcase "cardinal union <= sum"
    QCheck.(pair (list (int_bound 63)) (list (int_bound 63)))
    (fun (xs, ys) ->
      let a = Prbp.Bitset.of_list 64 xs and b = Prbp.Bitset.of_list 64 ys in
      let u = Prbp.Bitset.copy a in
      Prbp.Bitset.union_into u b;
      Prbp.Bitset.cardinal u
      <= Prbp.Bitset.cardinal a + Prbp.Bitset.cardinal b
      && Prbp.Bitset.subset a u
      && Prbp.Bitset.subset b u)

let suite =
  [
    ( "bitset",
      [
        case "empty" test_empty;
        case "add/remove" test_add_remove;
        case "bounds checking" test_bounds;
        case "set operations" test_set_ops;
        case "fill/clear" test_fill_clear;
        case "copy independence" test_copy_independent;
        case "capacity mismatch" test_equal_capacity_mismatch;
        case "choose" test_choose;
        case "iteration order" test_iter_order;
        prop_roundtrip;
        prop_union_cardinal;
      ] );
  ]

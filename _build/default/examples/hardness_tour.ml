(* Theorem 4.8: deciding whether partial computations help at all is
   NP-hard.  This example walks the reduction from MaxInSet-Vertex.

   Run with:  dune exec examples/hardness_tour.exe

   Given an undirected graph G0 and a vertex v0, the reduction builds a
   DAG in which OPT_PRBP < OPT_RBP exactly when NO maximum independent
   set of G0 contains v0 (the PRBP game can then bridge the never-
   adjacent gadget pair of v0 by saving a partially computed sink).  On
   small instances we can decide MaxInSet-Vertex exhaustively, so the
   expected answer for each constructed DAG is printed alongside. *)

let describe g0 name v0 =
  let module U = Prbp.Graphs.Ugraph in
  let yes = U.maxinset_vertex g0 v0 in
  let t = Prbp.Graphs.Hardness48.make ~g0 ~v0 () in
  let module H = Prbp.Graphs.Hardness48 in
  Format.printf "%s, v0 = %d:@." name v0;
  Format.printf "  max independent set size: %d@."
    (U.max_independent_size g0);
  Format.printf "  is v0 in some maximum independent set? %b@." yes;
  Format.printf "  reduction DAG: %a@." Prbp.Dag.pp t.H.dag;
  Format.printf "  cache size posed: r = %d, chains of length %d@." t.H.r
    t.H.ell;
  Format.printf "  encoded answer: OPT_PRBP %s OPT_RBP@.@."
    (if yes then "=" else "<")

let () =
  Format.printf "The Theorem 4.8 reduction, instance by instance@.@.";
  let module U = Prbp.Graphs.Ugraph in
  describe (U.path_graph 3) "P3 (path on 3 nodes)" 0;
  describe (U.path_graph 3) "P3 (path on 3 nodes)" 1;
  describe (U.cycle_graph 5) "C5 (5-cycle)" 2;
  describe (U.complete 4) "K4 (complete)" 0;

  (* the gadget the reduction is built from: Proposition 4.6 *)
  Format.printf
    "The construction rests on the pebble-collection gadget: with all\n\
     d+2 pebbles it costs only the trivial I/O, capped strategies pay\n\
     Θ(len/d) (Proposition 4.6):@.@.";
  let tbl =
    Prbp.Table.make
      ~header:[ "d"; "len"; "full (r=d+2)"; "capped (r=d+1)"; "bound len/2d" ]
  in
  List.iter
    (fun (d, len) ->
      let c = Prbp.Graphs.Collect.make ~d ~len in
      let g = c.Prbp.Graphs.Collect.dag in
      let full =
        match
          Prbp.Rbp.check
            (Prbp.Rbp.config ~r:(d + 2) ())
            g
            (Prbp.Strategies.collect_full c)
        with
        | Ok x -> x
        | Error e -> failwith e
      in
      let capped =
        match
          Prbp.Prbp_game.check
            (Prbp.Prbp_game.config ~r:(d + 1) ())
            g
            (Prbp.Strategies.collect_capped c)
        with
        | Ok x -> x
        | Error e -> failwith e
      in
      Prbp.Table.add_rowf tbl "%d|%d|%d|%d|%d" d len full capped
        (Prbp.Graphs.Collect.lower_bound_capped c))
    [ (3, 30); (4, 40); (5, 100); (8, 160) ];
  Format.printf "%s@." (Prbp.Table.render tbl);

  (* MaxInSet-Vertex itself (Lemma 4.10) *)
  Format.printf
    "Lemma 4.10 (MaxInSet-Vertex is NP-hard) — decided exhaustively on\n\
     small instances here:@.@.";
  let show name g0 =
    let module U = Prbp.Graphs.Ugraph in
    let members =
      List.filter (U.maxinset_vertex g0)
        (List.init (U.n_nodes g0) (fun i -> i))
    in
    Format.printf "  %-6s max size %d; vertices in some maximum set: %s@."
      name
      (U.max_independent_size g0)
      (String.concat ", " (List.map string_of_int members))
  in
  show "P5" (U.path_graph 5);
  show "C6" (U.cycle_graph 6);
  show "K3" (U.complete 3)

(* Section 8.2 outlook: sparse computations under partial computation.

   Run with:  dune exec examples/spmv_stream.exe

   The paper closes by suggesting its new tools be pointed at irregular
   graphs and sparse computations.  This example builds random SpMV
   DAGs, pebbles them three ways — the column-streaming strategy, the
   greedy edge scheduler, and the node-major Belady pebbler — and draws
   the cache-occupancy timelines, which make the difference visible:
   the streaming schedules hold the partial outputs flat at the
   capacity line, while the node-major schedule churns. *)

let () =
  let tbl =
    Prbp.Table.make
      ~header:
        [ "pattern"; "nnz"; "trivial"; "streamed"; "greedy"; "node-major" ]
  in
  List.iter
    (fun (seed, rows, cols, density) ->
      let sp = Prbp.Graphs.Spmv.make ~seed ~density ~rows ~cols () in
      let g = sp.Prbp.Graphs.Spmv.dag in
      let r = rows + 3 in
      let streamed =
        match
          Prbp.Prbp_game.check
            (Prbp.Prbp_game.config ~r ())
            g
            (Prbp.Strategies.spmv_prbp sp)
        with
        | Ok c -> c
        | Error e -> failwith e
      in
      Prbp.Table.add_rowf tbl "%dx%d @ %.2f|%d|%d|%d|%d|%d" rows cols density
        (Prbp.Graphs.Spmv.nnz sp)
        (Prbp.Dag.trivial_cost g)
        streamed
        (Prbp.Heuristic.prbp_greedy_cost ~r g)
        (Prbp.Heuristic.prbp_cost ~r g))
    [ (1, 6, 6, 0.3); (2, 8, 8, 0.25); (3, 12, 12, 0.2); (4, 10, 20, 0.15) ];
  Format.printf "Sparse matrix-vector multiplication, PRBP at r = rows+3:@.@.%s@."
    (Prbp.Table.render tbl);
  Format.printf
    "The hand-written streaming strategy always hits the trivial cost;\n\
     the generic greedy edge scheduler matches it without being told\n\
     anything about the structure — partial computation is what makes\n\
     both possible.@.@.";

  (* timelines for one instance *)
  let sp = Prbp.Graphs.Spmv.make ~seed:2 ~density:0.25 ~rows:8 ~cols:8 () in
  let g = sp.Prbp.Graphs.Spmv.dag in
  let r = 11 in
  let show name moves =
    match Prbp.Trace.of_prbp (Prbp.Prbp_game.config ~r ()) g moves with
    | Ok t ->
        Format.printf "%s — %s@.%s@." name (Prbp.Trace.summary t)
          (Prbp.Trace.occupancy t)
    | Error e -> Format.printf "%s failed: %s@." name e
  in
  show "column streaming (Strategies.spmv_prbp)" (Prbp.Strategies.spmv_prbp sp);
  show "greedy edge scheduler (Heuristic.prbp_greedy)"
    (Prbp.Heuristic.prbp_greedy ~r g);
  show "node-major Belady (Heuristic.prbp)" (Prbp.Heuristic.prbp ~r g)

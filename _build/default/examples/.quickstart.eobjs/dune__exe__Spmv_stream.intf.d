examples/spmv_stream.mli:

examples/tree_study.ml: Format List Prbp

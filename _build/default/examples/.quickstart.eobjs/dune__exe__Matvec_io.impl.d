examples/matvec_io.ml: Format List Prbp

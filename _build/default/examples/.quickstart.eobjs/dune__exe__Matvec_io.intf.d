examples/matvec_io.mli:

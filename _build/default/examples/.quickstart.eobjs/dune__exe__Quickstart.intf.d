examples/quickstart.mli:

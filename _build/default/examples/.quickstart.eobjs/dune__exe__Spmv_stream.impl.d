examples/spmv_stream.ml: Format List Prbp

examples/variants_tour.mli:

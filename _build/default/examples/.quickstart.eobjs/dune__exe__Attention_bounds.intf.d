examples/attention_bounds.mli:

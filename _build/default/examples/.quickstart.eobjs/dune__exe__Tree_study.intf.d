examples/tree_study.mli:

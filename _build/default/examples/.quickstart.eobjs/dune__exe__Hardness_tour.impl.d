examples/hardness_tour.ml: Format List Prbp String

examples/quickstart.ml: Format List Prbp

examples/variants_tour.ml: Format Prbp

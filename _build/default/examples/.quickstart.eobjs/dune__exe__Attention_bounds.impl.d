examples/attention_bounds.ml: Format List Prbp

(* Proposition 4.3 as a narrative: why partial computations matter for
   the I/O cost of matrix–vector multiplication.

   Run with:  dune exec examples/matvec_io.exe

   The DAG of y = A·x (A of size m×m) has m²+m sources, m² in-degree-2
   products and m in-degree-m output sums.  With a cache that holds the
   m partial outputs plus 3 streaming slots (r = m+3), PRBP computes
   everything at the trivial cost m²+2m, while one-shot RBP provably
   pays at least m²+3m−1 whenever r ≤ 2m. *)

let () =
  let tbl =
    Prbp.Table.make
      ~header:
        [ "m"; "r"; "PRBP (streamed)"; "trivial"; "RBP lower bound";
          "RBP heuristic" ]
  in
  List.iter
    (fun m ->
      let mv = Prbp.Graphs.Matvec.make ~m in
      let g = mv.Prbp.Graphs.Matvec.dag in
      let r = m + 3 in
      let prbp =
        match
          Prbp.Prbp_game.check
            (Prbp.Prbp_game.config ~r ())
            g
            (Prbp.Strategies.matvec_prbp mv)
        with
        | Ok c -> c
        | Error e -> failwith e
      in
      let rbp_heur = Prbp.Heuristic.rbp_cost ~r g in
      Prbp.Table.add_rowf tbl "%d|%d|%d|%d|%d|%d" m r prbp
        (Prbp.Dag.trivial_cost g)
        (Prbp.Graphs.Matvec.rbp_lower ~m)
        rbp_heur)
    [ 3; 4; 5; 6; 8; 10; 12 ];
  Format.printf
    "I/O cost of m x m matrix-vector multiplication at r = m+3:@.@.%s@."
    (Prbp.Table.render tbl);
  Format.printf
    "The streamed PRBP strategy hits the trivial cost exactly (loads\n\
     every input once, saves every output once): partial computations\n\
     eliminate all other traffic.  One-shot RBP must gather all m\n\
     products of a row simultaneously, and provably cannot do better\n\
     than m^2+3m-1 (Proposition 4.3).@.@.";

  (* Show the first column being streamed, move by move. *)
  let m = 3 in
  let mv = Prbp.Graphs.Matvec.make ~m in
  let g = mv.Prbp.Graphs.Matvec.dag in
  let eng = Prbp.Prbp_game.start (Prbp.Prbp_game.config ~r:(m + 3) ()) g in
  Format.printf "First column of the m=%d streaming schedule:@." m;
  List.iteri
    (fun i mv' ->
      if i < 20 then begin
        (match Prbp.Prbp_game.apply eng mv' with
        | Ok () -> ()
        | Error e -> failwith e);
        Format.printf "  %-22s cache: %d/%d@."
          (Prbp.Move.P.to_string mv')
          (Prbp.Prbp_game.red_count eng)
          (m + 3)
      end)
    (Prbp.Strategies.matvec_prbp mv)

(* Theorem 6.11: I/O lower bounds for self-attention carry over to
   partial computations — and tiled strategies trace the same shape.

   Run with:  dune exec examples/attention_bounds.exe

   The bottleneck of attention is the score computation S = Q·K^T with
   Q, K of size m×d.  The paper proves (via S-edge partitions)

     OPT_PRBP >= Ω( min( m²·d/√r , m²·d²/r ) ),

   the second term taking over in the large-cache regime r ≥ d².  We
   run the tiled strategy across a cache sweep and print measured cost
   against the bound, so the crossover is visible in the numbers. *)

let () =
  let m = 12 and d = 3 in
  Format.printf
    "Attention scores S = Q.K^T with m = %d, d = %d (d^2 = %d):@.@." m d
    (d * d);
  let mm = Prbp.Graphs.Attention.qkt ~m ~d in
  let g = mm.Prbp.Graphs.Matmul.dag in
  Format.printf "%a@.@." Prbp.Dag.pp g;
  let tbl =
    Prbp.Table.make
      ~header:
        [ "r"; "regime"; "tiles (ti,tk,tj)"; "measured I/O"; "bound";
          "measured/bound" ]
  in
  List.iter
    (fun r ->
      let ti, tk, tj = Prbp.Strategies.attention_tiles ~r ~m ~d in
      let cost =
        match
          Prbp.Prbp_game.check
            (Prbp.Prbp_game.config ~r ())
            g
            (Prbp.Strategies.matmul_tiled ~ti ~tk ~tj mm)
        with
        | Ok c -> c
        | Error e -> failwith e
      in
      let bound = Prbp.Graphs.Attention.lower_bound ~m ~d ~r in
      Prbp.Table.add_rowf tbl "%d|%s|%d,%d,%d|%d|%.1f|%.1f" r
        (if r >= d * d then "large cache" else "small cache")
        ti tk tj cost bound
        (float_of_int cost /. bound))
    [ 7; 9; 12; 16; 27; 40; 64 ];
  Format.printf "%s@." (Prbp.Table.render tbl)

(* the full attention DAG, beyond the theorem *)
let () =
  Format.printf
    "@.Full attention DAG (scores, softmax row reduction, P.V):@.@.";
  let tbl =
    Prbp.Table.make ~header:[ "m"; "d"; "nodes"; "edges"; "PRBP heuristic r=16" ]
  in
  List.iter
    (fun (m, d) ->
      let a = Prbp.Graphs.Attention.full ~m ~d in
      let g = a.Prbp.Graphs.Attention.dag in
      Prbp.Table.add_rowf tbl "%d|%d|%d|%d|%d" m d (Prbp.Dag.n_nodes g)
        (Prbp.Dag.n_edges g)
        (Prbp.Heuristic.prbp_cost ~r:16 g))
    [ (4, 2); (6, 2); (6, 4); (8, 4) ];
  Format.printf "%s@." (Prbp.Table.render tbl);
  Format.printf
    "Every aggregation in this DAG (matmul sums, softmax denominators)\n\
     combines an associative-commutative operator, which is exactly the\n\
     class of computations the PRBP model is built for (Section 1).@."

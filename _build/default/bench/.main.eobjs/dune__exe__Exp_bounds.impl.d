bench/exp_bounds.ml: Format List Prbp

bench/exp_variants.ml: Array Format List Prbp String

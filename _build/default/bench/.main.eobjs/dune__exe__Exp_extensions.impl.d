bench/exp_extensions.ml: Format List Prbp

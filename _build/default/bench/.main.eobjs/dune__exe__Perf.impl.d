bench/perf.ml: Analyze Bechamel Benchmark Format Hashtbl Instance Lazy List Measure Prbp Printf Staged Test Time Toolkit

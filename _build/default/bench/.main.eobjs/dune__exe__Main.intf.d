bench/main.mli:

bench/main.ml: Array Exp_bounds Exp_extensions Exp_fundamentals Exp_partitions Exp_variants Format List Perf Prbp String Sys

bench/exp_fundamentals.ml: Format List Prbp Printf

bench/exp_partitions.ml: Array Format List Prbp Printf

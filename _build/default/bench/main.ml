(* Benchmark & experiment harness: regenerates every quantitative claim
   of the paper (one experiment per proposition / theorem / figure),
   then runs Bechamel micro-benchmarks of the library.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- --no-perf  # experiments only
     dune exec bench/main.exe -- --perf     # micro-benchmarks only
     dune exec bench/main.exe -- E03 E08    # a subset of experiments  *)

let experiments =
  Exp_fundamentals.all @ Exp_partitions.all @ Exp_bounds.all
  @ Exp_variants.all @ Exp_extensions.all

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let perf_only = List.mem "--perf" args in
  let no_perf = List.mem "--no-perf" args in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "PRBP experiment harness — reproducing \"The Impact of Partial \
     Computations on the Red-Blue Pebble Game\" (SPAA 2025)@.";
  if not perf_only then begin
    let selected =
      match ids with
      | [] -> experiments
      | ids -> List.filter (fun e -> List.mem e.Prbp.Experiment.id ids) experiments
    in
    let confirmed, total = Prbp.Experiment.run_all ppf selected in
    if confirmed <> total then exit 1
  end;
  if not no_perf then Perf.run ppf;
  Format.pp_print_flush ppf ()

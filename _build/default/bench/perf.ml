(* Bechamel micro-benchmarks of the library itself: simulator step
   rate, exact-solver throughput, generator and extraction speed. *)

open Bechamel
open Toolkit

let fig1 = lazy (Prbp.Graphs.Fig1.full ())

let fig1_rbp_moves =
  lazy (Prbp.Strategies.fig1_rbp (snd (Lazy.force fig1)))

let fig1_prbp_moves =
  lazy (Prbp.Strategies.fig1_prbp (snd (Lazy.force fig1)))

let matvec8 = lazy (Prbp.Graphs.Matvec.make ~m:8)

let matvec8_moves =
  lazy (Prbp.Strategies.matvec_prbp (Lazy.force matvec8))

let tree26 = lazy (Prbp.Graphs.Tree.make ~k:2 ~depth:6)

let tree26_moves = lazy (Prbp.Strategies.tree_prbp (Lazy.force tree26))

let random240 =
  lazy (Prbp.Graphs.Random_dag.make ~seed:3 ~layers:12 ~width:20 ())

let tests =
  [
    Test.make ~name:"simulate: RBP fig1 strategy"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Prbp.Rbp.run_exn (Prbp.Rbp.config ~r:4 ()) g
             (Lazy.force fig1_rbp_moves)));
    Test.make ~name:"simulate: PRBP fig1 strategy"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Prbp.Prbp_game.run_exn
             (Prbp.Prbp_game.config ~r:4 ())
             g
             (Lazy.force fig1_prbp_moves)));
    Test.make ~name:"simulate: PRBP matvec(8) stream (208 I/Os)"
      (Staged.stage (fun () ->
           let mv = Lazy.force matvec8 in
           Prbp.Prbp_game.run_exn
             (Prbp.Prbp_game.config ~r:11 ())
             mv.Prbp.Graphs.Matvec.dag
             (Lazy.force matvec8_moves)));
    Test.make ~name:"exact: OPT_RBP fig1 (r=4)"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Prbp.Exact_rbp.opt (Prbp.Rbp.config ~r:4 ()) g));
    Test.make ~name:"exact: OPT_PRBP fig1 (r=4)"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Prbp.Exact_prbp.opt (Prbp.Prbp_game.config ~r:4 ()) g));
    Test.make ~name:"generate: FFT(1024) DAG (11264 nodes)"
      (Staged.stage (fun () -> Prbp.Graphs.Fft.make ~m:1024));
    Test.make ~name:"generate: matmul 16^3 DAG (4864 nodes)"
      (Staged.stage (fun () -> Prbp.Graphs.Matmul.make ~m1:16 ~m2:16 ~m3:16));
    Test.make ~name:"heuristic: PRBP Belady on 240-node DAG (r=6)"
      (Staged.stage (fun () ->
           Prbp.Heuristic.prbp ~r:6 (Lazy.force random240)));
    Test.make ~name:"strategy: blocked FFT(256) moves"
      (Staged.stage (fun () ->
           Prbp.Strategies.fft_blocked ~r:10 (Prbp.Graphs.Fft.make ~m:256)));
    Test.make ~name:"extract: edge partition of tree(2,6) trace"
      (Staged.stage (fun () ->
           let t = Lazy.force tree26 in
           Prbp.Extract.edge_partition_of_prbp ~r:3 t.Prbp.Graphs.Tree.dag
             (Lazy.force tree26_moves)));
    Test.make ~name:"greedy scheduler: matvec(6) (120 nodes)"
      (Staged.stage
         (let mv = Prbp.Graphs.Matvec.make ~m:6 in
          fun () ->
            Prbp.Heuristic.prbp_greedy ~r:9 mv.Prbp.Graphs.Matvec.dag));
    Test.make ~name:"black: pebbling number of pyramid(3)"
      (Staged.stage
         (let g = Prbp.Graphs.Basic.pyramid 3 in
          fun () -> Prbp.Black.number g));
    Test.make ~name:"minpart: MIN_edge of fig1 (S=8)"
      (Staged.stage
         (let g, _ = Prbp.Graphs.Fig1.full () in
          fun () -> Prbp.Minpart.min_edge_partition g ~s:8));
    Test.make ~name:"flow: min dominator in matmul 6^3 (300 nodes)"
      (Staged.stage
         (let mm = Prbp.Graphs.Matmul.make ~m1:6 ~m2:6 ~m3:6 in
          let g = mm.Prbp.Graphs.Matmul.dag in
          let sinks =
            Prbp.Bitset.of_list (Prbp.Dag.n_nodes g) (Prbp.Dag.sinks g)
          in
          fun () -> Prbp.Dominator.min_dominator_size g sinks));
  ]

let run ppf =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"prbp" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) clock [] in
  let t = Prbp.Table.make ~header:[ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, v) ->
      let est =
        match Analyze.OLS.estimates v with
        | Some [ e ] ->
            if e > 1e9 then Printf.sprintf "%.2f s" (e /. 1e9)
            else if e > 1e6 then Printf.sprintf "%.2f ms" (e /. 1e6)
            else if e > 1e3 then Printf.sprintf "%.2f us" (e /. 1e3)
            else Printf.sprintf "%.0f ns" e
        | _ -> "n/a"
      in
      Prbp.Table.add_row t [ name; est ])
    (List.sort compare rows);
  Format.fprintf ppf "@.=== PERF — Bechamel micro-benchmarks ===@.@.";
  Prbp.Table.print ppf t

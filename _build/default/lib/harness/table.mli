(** Column-aligned plain-text tables and CSV output for the experiment
    harness. *)

type t

val make : header:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t "%d|%s|%f" …]: cells separated by ['|'] in one format
    string — convenient for numeric rows. *)

val render : t -> string
(** Aligned text rendering with a header rule. *)

val to_csv : t -> string

val print : Format.formatter -> t -> unit

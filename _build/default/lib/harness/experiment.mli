(** Experiment registry: one entry per proposition / theorem / figure
    reproduced from the paper.  [bench/main.exe] runs these and prints
    the paper-vs-measured comparison recorded in EXPERIMENTS.md. *)

type t = {
  id : string;  (** e.g. "E01" *)
  paper : string;  (** e.g. "Proposition 4.2 / Figure 1" *)
  claim : string;  (** one-line statement of what the paper claims *)
  run : Format.formatter -> bool;
      (** print measurements; return whether the claim was confirmed *)
}

val make :
  id:string ->
  paper:string ->
  claim:string ->
  (Format.formatter -> bool) ->
  t

val run_one : Format.formatter -> t -> bool

val run_all : Format.formatter -> t list -> int * int
(** Run every experiment; returns (confirmed, total). *)

type t = { header : string list; mutable rows : string list list }

let make ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let widths t =
  let max_widths acc row =
    List.map2 (fun w cell -> max w (String.length cell)) acc row
  in
  List.fold_left max_widths
    (List.map String.length t.header)
    (List.rev t.rows)

let render t =
  let ws = widths t in
  let buf = Buffer.create 256 in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let line row =
    Buffer.add_string buf
      (String.concat "  " (List.map2 pad row ws));
    Buffer.add_char buf '\n'
  in
  line t.header;
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  Buffer.add_char buf '\n';
  List.iter line (List.rev t.rows);
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.header :: List.rev_map line t.rows) ^ "\n"

let print ppf t = Format.pp_print_string ppf (render t)

lib/harness/experiment.ml: Format List Sys

lib/harness/chart.mli:

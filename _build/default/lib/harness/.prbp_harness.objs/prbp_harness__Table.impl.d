lib/harness/table.ml: Buffer Format List Printf String

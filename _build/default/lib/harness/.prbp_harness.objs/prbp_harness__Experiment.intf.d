lib/harness/experiment.mli: Format

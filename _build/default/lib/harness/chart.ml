type series = { label : string; points : (float * float) list; glyph : char }

let loglog ?(width = 64) ?(height = 16) ~x_label ~y_label series =
  let all = List.concat_map (fun s -> s.points) series in
  if all = [] then invalid_arg "Chart.loglog: no points";
  List.iter
    (fun (x, y) ->
      if x <= 0. || y <= 0. then
        invalid_arg "Chart.loglog: coordinates must be positive")
    all;
  let lx (x, _) = log x and ly (_, y) = log y in
  let fold f init sel = List.fold_left (fun a p -> f a (sel p)) init all in
  let x0 = fold min infinity lx and x1 = fold max neg_infinity lx in
  let y0 = fold min infinity ly and y1 = fold max neg_infinity ly in
  let spanx = if x1 -. x0 < 1e-9 then 1. else x1 -. x0 in
  let spany = if y1 -. y0 < 1e-9 then 1. else y1 -. y0 in
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          let cx =
            int_of_float ((lx p -. x0) /. spanx *. float_of_int (width - 1))
          in
          let cy =
            int_of_float ((ly p -. y0) /. spany *. float_of_int (height - 1))
          in
          grid.(height - 1 - cy).(cx) <- s.glyph)
        s.points)
    series;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s (log scale)\n" y_label);
  Array.iter
    (fun row ->
      Buffer.add_string buf "  |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf "  +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_string buf (Printf.sprintf "\n   %s (log scale)\n" x_label);
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "   %c = %s\n" s.glyph s.label))
    series;
  Buffer.contents buf

(** Minimal ASCII charts for the experiment harness: log–log scatter
    of measured series against reference slopes, so the Ω(·) shape
    comparisons of E13–E15 can be eyeballed directly in the bench
    output. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), all positive *)
  glyph : char;
}

val loglog :
  ?width:int -> ?height:int -> x_label:string -> y_label:string ->
  series list -> string
(** Render the series on shared log–log axes.  Each point becomes its
    series' glyph; collisions keep the glyph of the later series.
    Raises [Invalid_argument] on non-positive coordinates. *)

type t = {
  id : string;
  paper : string;
  claim : string;
  run : Format.formatter -> bool;
}

let make ~id ~paper ~claim run = { id; paper; claim; run }

let run_one ppf e =
  Format.fprintf ppf "@.=== %s — %s ===@." e.id e.paper;
  Format.fprintf ppf "claim: %s@.@." e.claim;
  let t0 = Sys.time () in
  let ok = e.run ppf in
  Format.fprintf ppf "@.[%s] %s  (%.2fs)@." e.id
    (if ok then "CONFIRMED" else "NOT CONFIRMED")
    (Sys.time () -. t0);
  ok

let run_all ppf es =
  let confirmed =
    List.fold_left (fun acc e -> acc + if run_one ppf e then 1 else 0) 0 es
  in
  Format.fprintf ppf "@.%d/%d experiments confirmed@." confirmed
    (List.length es);
  (confirmed, List.length es)

(** The zipper gadget of Section 4.2.1 (Figure 2, left).

    Two groups [A] and [B] of [d] source nodes each, and a chain of
    [len] nodes.  Chain node [i] (0-based) has an in-edge from chain
    node [i−1], and in-edges from {e all} nodes of group [A] when [i]
    is even, of group [B] when [i] is odd.  Chain node 0 additionally
    draws its "previous" input from group [A] only (it is the start of
    the chain).

    At [r = d + 2], RBP must ferry [d] red pebbles between the groups
    for every chain step ([d] loads per node), while PRBP pays only 2
    I/Os per chain node (save/reload of the partially-computed value),
    which wins for [d ≥ 3] (Proposition 4.4). *)

type t = {
  dag : Prbp_dag.Dag.t;
  d : int;
  len : int;
}

val make : d:int -> len:int -> t
(** @raise Invalid_argument unless [d ≥ 1] and [len ≥ 2]. *)

val group_a : t -> int list
(** Source nodes [0 .. d−1]. *)

val group_b : t -> int list
(** Source nodes [d .. 2d−1]. *)

val chain : t -> int list
(** Chain nodes in order; node [i] of the chain has id [2d + i]. *)

val rbp_cost_upper : t -> int
(** Cost of the natural RBP strategy at [r = d+2]: trivial cost
    [2d + 1] plus [d] loads for every chain node from the second
    onwards. *)

val prbp_cost_upper : t -> int
(** Cost of the partial-computation strategy at [r = d+2]: trivial
    plus 2 I/Os per chain node from the second onwards. *)

type t = { n : int; adj : int array (* bitmask of neighbors per node *) }

let make ~n edge_list =
  if n < 0 then invalid_arg "Ugraph.make: negative node count";
  if n > 62 then invalid_arg "Ugraph.make: at most 62 nodes supported";
  let adj = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Ugraph.make: endpoint out of range";
      if u = v then invalid_arg "Ugraph.make: self-loop";
      if adj.(u) land (1 lsl v) <> 0 then
        invalid_arg "Ugraph.make: duplicate edge";
      adj.(u) <- adj.(u) lor (1 lsl v);
      adj.(v) <- adj.(v) lor (1 lsl u))
    edge_list;
  { n; adj }

let n_nodes g = g.n

let adjacent g u v = g.adj.(u) land (1 lsl v) <> 0

let neighbors g u =
  List.filter (fun v -> adjacent g u v) (List.init g.n (fun i -> i))

let degree g u =
  let rec pop acc x = if x = 0 then acc else pop (acc + 1) (x land (x - 1)) in
  pop 0 g.adj.(u)

let edges g =
  List.concat_map
    (fun u -> List.filter_map
        (fun v -> if v > u && adjacent g u v then Some (u, v) else None)
        (List.init g.n (fun i -> i)))
    (List.init g.n (fun i -> i))

let n_edges g = List.length (edges g)

let complement g =
  let es = ref [] in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (adjacent g u v) then es := (u, v) :: !es
    done
  done;
  make ~n:g.n !es

let path_graph n =
  if n < 1 then invalid_arg "Ugraph.path_graph";
  make ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle_graph n =
  if n < 3 then invalid_arg "Ugraph.cycle_graph";
  make ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  if n < 1 then invalid_arg "Ugraph.complete";
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  make ~n !es

let is_independent g vs =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> not (adjacent g v w)) rest && go rest
  in
  go vs

let mask_independent g mask =
  let rec go m ok =
    if (not ok) || m = 0 then ok
    else
      let v = m land -m in
      let i =
        let rec lg k x = if x = 1 then k else lg (k + 1) (x lsr 1) in
        lg 0 v
      in
      go (m lxor v) (g.adj.(i) land mask land lnot v = 0)
  in
  go mask true

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let check_small g =
  if g.n > 24 then
    invalid_arg "Ugraph: exhaustive independent-set search limited to n <= 24"

let fold_max_independent g f init =
  check_small g;
  let best = ref 0 and acc = ref init in
  for mask = 0 to (1 lsl g.n) - 1 do
    if mask_independent g mask then begin
      let c = popcount mask in
      if c > !best then begin
        best := c;
        acc := init
      end;
      if c = !best then acc := f mask !acc
    end
  done;
  (!best, !acc)

let max_independent_size g = fst (fold_max_independent g (fun _ () -> ()) ())

let mask_to_list n mask =
  List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n (fun i -> i))

let max_independent_sets g =
  let _, masks = fold_max_independent g (fun m acc -> m :: acc) [] in
  List.rev_map (mask_to_list g.n) masks

let maxinset_vertex g v0 =
  if v0 < 0 || v0 >= g.n then invalid_arg "Ugraph.maxinset_vertex";
  let _, found =
    fold_max_independent g
      (fun m acc -> acc || m land (1 lsl v0) <> 0)
      false
  in
  found

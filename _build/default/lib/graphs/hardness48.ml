module Dag = Prbp_dag.Dag

type gadget = { group : int array; chain : int array }

type t = {
  dag : Prbp_dag.Dag.t;
  g0 : Ugraph.t;
  v0 : int;
  r : int;
  b : int;
  ell : int;
  ell0 : int;
  h1 : gadget array;
  h2 : gadget array;
  w : int;
  z1 : int array;
  z2 : int array;
}

let make ?(b = 4) ?ell0 ~g0 ~v0 () =
  if b <= 3 then invalid_arg "Hardness48.make: b must exceed |Z| = 3";
  let n0 = Ugraph.n_nodes g0 in
  if n0 < 1 then invalid_arg "Hardness48.make: empty G0";
  if v0 < 0 || v0 >= n0 then invalid_arg "Hardness48.make: v0 out of range";
  let e0 = Ugraph.n_edges g0 in
  let d = b + (4 * n0) + 3 in
  let r = d + 2 in
  let ell0 =
    match ell0 with
    | Some l -> if l < 1 then invalid_arg "Hardness48.make: ell0 >= 1" else l
    | None -> 2 * d * ((n0 * b) + (2 * e0) + 6 + r)
  in
  let ell = (2 * ell0) + n0 + (2 * d) in
  let counter = ref 0 in
  let fresh () =
    let v = !counter in
    incr counter;
    v
  in
  let fresh_array k = Array.init k (fun _ -> fresh ()) in
  (* merged group members, per G0 node *)
  let merged = Array.init n0 (fun _ -> fresh_array b) in
  (* the H1 gadgets: groups are fresh sources; chains fresh *)
  let mk_h1_group _u =
    Array.concat [ merged.(_u); fresh_array ((3 * n0) + 3 + n0) ]
  in
  let h1 =
    Array.init n0 (fun u ->
        { group = mk_h1_group u; chain = fresh_array ell })
  in
  let middle_base = (2 * d) + ell0 in
  let middle side u i =
    match side with
    | 1 -> h1.(u).chain.(middle_base + i)
    | _ -> invalid_arg "middle"
  in
  (* dependency slots of H2(u): chain-middle nodes of H1(u') for each
     neighbor u', plus one of H1(u) itself; remaining slots fresh. *)
  let next_middle = Array.make n0 0 in
  let take_middle u' =
    let i = next_middle.(u') in
    if i >= n0 then invalid_arg "Hardness48: middle-section overflow";
    next_middle.(u') <- i + 1;
    middle 1 u' i
  in
  let h2 =
    Array.init n0 (fun u ->
        let deps = u :: Ugraph.neighbors g0 u in
        let n_deps = List.length deps in
        if n_deps > n0 then invalid_arg "Hardness48: degree too high";
        let dep_members = Array.of_list (List.map take_middle deps) in
        let group =
          Array.concat
            [
              merged.(u);
              fresh_array (3 * n0);
              fresh_array 3;
              dep_members;
              fresh_array (n0 - n_deps);
            ]
        in
        { group; chain = fresh_array ell })
  in
  let w = fresh () in
  let n = !counter in
  let z_of g = Array.sub g.group (b + (3 * n0)) 3 in
  let z1 = z_of h1.(v0) and z2 = z_of h2.(v0) in
  let edges = ref [] in
  let add u v = edges := (u, v) :: !edges in
  let wire { group; chain } =
    for i = 0 to ell - 1 do
      if i > 0 then add chain.(i - 1) chain.(i);
      add group.(i mod d) chain.(i)
    done
  in
  Array.iter wire h1;
  Array.iter wire h2;
  Array.iter (fun z -> add z w) z1;
  Array.iter (fun z -> add z w) z2;
  { dag = Dag.make ~n !edges; g0; v0; r; b; ell; ell0; h1; h2; w; z1; z2 }

let middle_nodes t ~side u =
  let g = match side with 1 -> t.h1.(u) | 2 -> t.h2.(u) | _ -> invalid_arg "side" in
  let base = t.ell0 + (2 * (t.r - 2)) in
  Array.init (Ugraph.n_nodes t.g0) (fun i -> g.chain.(base + i))

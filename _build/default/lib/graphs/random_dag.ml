module Dag = Prbp_dag.Dag

let make ?(density = 0.3) ?(max_in_degree = max_int) ~seed ~layers ~width () =
  if layers < 2 then invalid_arg "Random_dag.make: layers >= 2";
  if width < 1 then invalid_arg "Random_dag.make: width >= 1";
  if density < 0. || density > 1. then invalid_arg "Random_dag.make: density";
  if max_in_degree < 1 then invalid_arg "Random_dag.make: max_in_degree >= 1";
  let st = Random.State.make [| seed; layers; width |] in
  let id l i = (l * width) + i in
  let n = layers * width in
  let in_deg = Array.make n 0 in
  let edges = ref [] in
  let seen = Hashtbl.create (4 * n) in
  let out_deg = Array.make n 0 in
  let add u v =
    Hashtbl.add seen (u, v) ();
    edges := (u, v) :: !edges;
    in_deg.(v) <- in_deg.(v) + 1;
    out_deg.(u) <- out_deg.(u) + 1
  in
  for l = 1 to layers - 1 do
    for i = 0 to width - 1 do
      let v = id l i in
      (* mandatory in-edge from a random node of the previous layer *)
      add (id (l - 1) (Random.State.int st width)) v;
      (* optional extra edges from any earlier layer *)
      for l' = 0 to l - 1 do
        for j = 0 to width - 1 do
          let u = id l' j in
          if
            in_deg.(v) < max_in_degree
            && (not (Hashtbl.mem seen (u, v)))
            && Random.State.float st 1.0 < density
          then add u v
        done
      done
    done
  done;
  (* no node may end up without out-edges except the final layer: give
     stranded nodes an edge to the least-loaded node of the next layer,
     so the generator never produces isolated or dead-end sources *)
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      let u = id l i in
      if out_deg.(u) = 0 then begin
        let best = ref (id (l + 1) 0) in
        for j = 1 to width - 1 do
          let v = id (l + 1) j in
          if in_deg.(v) < in_deg.(!best) then best := v
        done;
        add u !best
      end
    done
  done;
  Dag.make ~n !edges

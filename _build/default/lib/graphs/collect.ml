module Dag = Prbp_dag.Dag

type t = { dag : Prbp_dag.Dag.t; d : int; len : int }

let make ~d ~len =
  if d < 1 then invalid_arg "Collect.make: d must be >= 1";
  if len < 1 then invalid_arg "Collect.make: len must be >= 1";
  let n = d + len in
  let chain i = d + i in
  let names =
    Array.init n (fun v ->
        if v < d then Printf.sprintf "u%d" v
        else Printf.sprintf "v%d" (v - d))
  in
  let edges = ref [] in
  for i = 0 to len - 1 do
    if i > 0 then edges := (chain (i - 1), chain i) :: !edges;
    edges := (i mod d, chain i) :: !edges
  done;
  { dag = Dag.make ~names ~n !edges; d; len }

let source t i =
  if i < 0 || i >= t.d then invalid_arg "Collect.source";
  i

let chain t = List.init t.len (fun i -> t.d + i)

let lower_bound_capped t = (t.len + (2 * t.d) - 1) / (2 * t.d)

module Dag = Prbp_dag.Dag

type t = {
  dag : Prbp_dag.Dag.t;
  rows : int;
  cols : int;
  entries : (int * int) array;
}

(* Node layout: A entries | x | products | y. *)
let a_id _ e = e

let x_id t j = Array.length t.entries + j

let p_id t e = Array.length t.entries + t.cols + e

let y_id t i = (2 * Array.length t.entries) + t.cols + i

let make ?(seed = 0) ?(density = 0.25) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Spmv.make: sizes >= 1";
  if density <= 0. || density > 1. then invalid_arg "Spmv.make: density";
  let st = Random.State.make [| seed; rows; cols |] in
  let present = Array.make_matrix rows cols false in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Random.State.float st 1.0 < density then present.(i).(j) <- true
    done;
    (* guarantee a non-empty row *)
    if not (Array.exists Fun.id present.(i)) then
      present.(i).(Random.State.int st cols) <- true
  done;
  (* guarantee non-empty columns *)
  for j = 0 to cols - 1 do
    let covered = ref false in
    for i = 0 to rows - 1 do
      if present.(i).(j) then covered := true
    done;
    if not !covered then present.(Random.State.int st rows).(j) <- true
  done;
  let coords = ref [] in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      if present.(i).(j) then coords := (i, j) :: !coords
    done
  done;
  let entries = Array.of_list !coords in
  let nnz = Array.length entries in
  let n = (2 * nnz) + cols + rows in
  let t = { dag = Dag.make ~n []; rows; cols; entries } in
  (* t.dag above is a placeholder to use the id helpers; rebuild *)
  let edges = ref [] in
  Array.iteri
    (fun e (i, j) ->
      edges := (a_id t e, p_id t e) :: !edges;
      edges := (x_id t j, p_id t e) :: !edges;
      edges := (p_id t e, y_id t i) :: !edges)
    entries;
  let names = Array.make n "" in
  Array.iteri
    (fun e (i, j) ->
      names.(a_id t e) <- Printf.sprintf "A%d,%d" i j;
      names.(p_id t e) <- Printf.sprintf "p%d,%d" i j)
    entries;
  for j = 0 to cols - 1 do
    names.(x_id t j) <- Printf.sprintf "x%d" j
  done;
  for i = 0 to rows - 1 do
    names.(y_id t i) <- Printf.sprintf "y%d" i
  done;
  { t with dag = Dag.make ~names ~n !edges }

let nnz t = Array.length t.entries

let max_row_nnz t =
  let cnt = Array.make t.rows 0 in
  Array.iter (fun (i, _) -> cnt.(i) <- cnt.(i) + 1) t.entries;
  Array.fold_left max 0 cnt

let a t e =
  if e < 0 || e >= nnz t then invalid_arg "Spmv.a";
  a_id t e

let x t j =
  if j < 0 || j >= t.cols then invalid_arg "Spmv.x";
  x_id t j

let p t e =
  if e < 0 || e >= nnz t then invalid_arg "Spmv.p";
  p_id t e

let y t i =
  if i < 0 || i >= t.rows then invalid_arg "Spmv.y";
  y_id t i

let entries_of_col t j =
  List.filter
    (fun e -> snd t.entries.(e) = j)
    (List.init (nnz t) (fun e -> e))

let trivial_cost t = nnz t + t.cols + t.rows

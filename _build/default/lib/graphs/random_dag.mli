(** Seeded random layered DAGs, for property-based tests and
    integration sweeps.

    Nodes are arranged in layers; every non-first-layer node receives
    at least one in-edge from the previous layer and every
    non-last-layer node at least one out-edge (so there are no isolated
    nodes, sources are exactly layer 0 and sinks lie in the last
    layer); further edges from earlier layers are added independently
    with probability [density].  The generator is deterministic in
    [seed]. *)

val make :
  ?density:float ->
  ?max_in_degree:int ->
  seed:int ->
  layers:int ->
  width:int ->
  unit ->
  Prbp_dag.Dag.t
(** @param density probability of each optional extra edge (default 0.3)
    @param max_in_degree soft cap on in-degrees (default unlimited;
      the stranded-node repair pass may exceed it by one)
    @raise Invalid_argument unless [layers ≥ 2], [width ≥ 1]. *)

(** Rooted in-trees (Section 4.2.2 and Appendix A.2).

    A [k]-ary in-tree of depth [d] has [k^d] leaves (the sources) and
    all edges pointing towards the root (the unique sink).  The most
    interesting pebbling regime is [r = k + 1]. *)

type t = {
  dag : Prbp_dag.Dag.t;
  k : int;
  depth : int;
}

val make : k:int -> depth:int -> t
(** @raise Invalid_argument unless [k ≥ 2] and [depth ≥ 1]. *)

val root : t -> int

val node : t -> level:int -> int -> int
(** [node t ~level i] is the [i]-th node (0-based, left to right) at
    [level] below the root; level 0 is the root, level [depth] the
    leaves.  Children of [(level, i)] are [(level+1, k·i … k·i+k−1)]. *)

val n_at_level : t -> int -> int
(** [k^level]. *)

val leaves : t -> int list

val rbp_opt : k:int -> depth:int -> int
(** Closed-form optimal RBP cost at [r = k+1] from Appendix A.2:
    [k^d + 2·k^(d−1) − 1] (trivial cost [k^d + 1] plus
    [2(k−1)·(k^(d−1)−1)/(k−1)] non-trivial I/Os), valid for [d ≥ 2]. *)

val prbp_opt : k:int -> depth:int -> int
(** Closed-form optimal PRBP cost at [r = k+1] from Appendix A.2:
    [k^d + 2·k^(d−k) − 1] for [d ≥ k]; for [d < k] the tree costs only
    the trivial [k^d + 1]. *)

(** The Lemma 5.4 counterexample (Figure 3).

    Seven sources [u_1 … u_7], seven disjoint groups [H_1 … H_7] of
    [group_size] nodes each, and one sink [v]; [u_i] feeds every node
    of [H_i] and every node of every [H_i] feeds [v].

    At [r = 3], PRBP pebbles the whole DAG at the trivial cost of 8,
    yet every S-partition with [S = 2r = 6] needs [Θ(n)] classes —
    so the Hong–Kung S-partition lower bound does {e not} hold for
    PRBP. *)

type t = {
  dag : Prbp_dag.Dag.t;
  group_size : int;
}

val groups : int
(** Always 7: chosen in the paper so that no dominator of size
    [S = 6] can cover a class containing all groups. *)

val make : group_size:int -> t

val source : t -> int -> int
(** [source t i] is [u_i], [0 ≤ i < 7]. *)

val group : t -> int -> int list
(** [group t i] lists the nodes of [H_i]. *)

val sink : t -> int

val spartition_class_lower_bound : t -> int
(** [(group_size − 6)/6]: minimum number of classes forced on any
    6-partition by the group argument in the Lemma 5.4 proof. *)

module Dag = Prbp_dag.Dag

type t = { dag : Prbp_dag.Dag.t; group_size : int }

let groups = 7

let make ~group_size =
  if group_size < 1 then invalid_arg "Lemma54.make";
  let n = groups + (groups * group_size) + 1 in
  let h i j = groups + (i * group_size) + j in
  let sink = n - 1 in
  let names = Array.make n "" in
  names.(sink) <- "v";
  let edges = ref [] in
  for i = 0 to groups - 1 do
    names.(i) <- Printf.sprintf "u%d" (i + 1);
    for j = 0 to group_size - 1 do
      names.(h i j) <- Printf.sprintf "h%d,%d" (i + 1) j;
      edges := (i, h i j) :: !edges;
      edges := (h i j, sink) :: !edges
    done
  done;
  { dag = Dag.make ~names ~n !edges; group_size }

let source t i =
  if i < 0 || i >= groups then invalid_arg "Lemma54.source";
  ignore t;
  i

let group t i =
  if i < 0 || i >= groups then invalid_arg "Lemma54.group";
  List.init t.group_size (fun j -> groups + (i * t.group_size) + j)

let sink t = Dag.n_nodes t.dag - 1

let spartition_class_lower_bound t = max 1 ((t.group_size - 6) / 6)

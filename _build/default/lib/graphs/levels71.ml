module Dag = Prbp_dag.Dag

type tower = { levels : int array array; original : bool array }

type t = { dag : Prbp_dag.Dag.t; towers : tower array }

(* Chain edges inside a level, and the standard inter-level wiring of
   [3]: (u_i, v_i) pairwise, plus overflow edges from the surplus of a
   larger level into the last node of the smaller one above it. *)
let level_edges level acc =
  let acc = ref acc in
  for i = 1 to Array.length level - 1 do
    acc := (level.(i - 1), level.(i)) :: !acc
  done;
  !acc

let between_edges below above acc =
  let l = Array.length below and l' = Array.length above in
  let acc = ref acc in
  for i = 0 to min l l' - 1 do
    acc := (below.(i), above.(i)) :: !acc
  done;
  for i = l' to l - 1 do
    acc := (below.(i), above.(l' - 1)) :: !acc
  done;
  !acc

let build_tower ~fresh ~sizes_with_flags =
  let levels =
    List.map (fun (s, flag) -> (Array.init s (fun _ -> fresh ()), flag))
      sizes_with_flags
  in
  let arr = Array.of_list (List.map fst levels) in
  let flags = Array.of_list (List.map snd levels) in
  let edges = Array.fold_left (fun acc lv -> level_edges lv acc) [] arr in
  let edges = ref edges in
  for i = 1 to Array.length arr - 1 do
    edges := between_edges arr.(i - 1) arr.(i) !edges
  done;
  ({ levels = arr; original = flags }, !edges)

let plain_tower_edges ~fresh ~sizes =
  if sizes = [] || List.exists (fun s -> s < 1) sizes then
    invalid_arg "Levels71: sizes must be positive and non-empty";
  build_tower ~fresh
    ~sizes_with_flags:(List.map (fun s -> (s, true)) sizes)

let aux_tower_edges ~fresh ~sizes =
  if sizes = [] || List.exists (fun s -> s < 1) sizes then
    invalid_arg "Levels71: sizes must be positive and non-empty";
  (* expand the size list with auxiliary levels *)
  let rec expand prev = function
    | [] -> [ (Option.value prev ~default:1, false) ] (* top auxiliary *)
    | s :: rest ->
        let n_aux =
          match prev with
          | Some p when p > s -> p - s + 2
          | _ -> 1
        in
        List.init n_aux (fun _ -> (s, false))
        @ ((s, true) :: expand (Some s) rest)
  in
  let sizes_with_flags = expand None sizes in
  let tower, edges = build_tower ~fresh ~sizes_with_flags in
  (* extra lock-down edges: when an original level of size l is
     followed by a shrink to l', every auxiliary level in the block
     above it gets edges from the surplus nodes u_{l'}..u_{l-1} to its
     last node.  The first auxiliary already has them from the
     standard wiring; add them for the rest of the block. *)
  let edges = ref edges in
  let n_levels = Array.length tower.levels in
  let i = ref 0 in
  while !i < n_levels do
    if tower.original.(!i) then begin
      let below = tower.levels.(!i) in
      let l = Array.length below in
      (* find the block of auxiliary levels right above *)
      let j = ref (!i + 1) in
      while !j < n_levels && not (tower.original.(!j)) do
        let above = tower.levels.(!j) in
        let l' = Array.length above in
        if l' < l && !j > !i + 1 then
          for k = l' to l - 1 do
            edges := (below.(k), above.(l' - 1)) :: !edges
          done;
        incr j
      done
    end;
    incr i
  done;
  (tower, !edges)

let original_level tw k =
  let rec go i seen =
    if i >= Array.length tw.levels then invalid_arg "Levels71.original_level"
    else if tw.original.(i) then
      if seen = k then tw.levels.(i) else go (i + 1) (seen + 1)
    else go (i + 1) seen
  in
  go 0 0

(* Index (within the levels array) of the k-th original level. *)
let original_index tw k =
  let rec go i seen =
    if i >= Array.length tw.levels then invalid_arg "Levels71: level index"
    else if tw.original.(i) then
      if seen = k then i else go (i + 1) (seen + 1)
    else go (i + 1) seen
  in
  go 0 0

(* Lowest auxiliary level of the block directly below original level k,
   or the level itself when the block is empty. *)
let landing_level tw k =
  let idx = original_index tw k in
  let rec back i = if i > 0 && not tw.original.(i - 1) then back (i - 1) else i in
  tw.levels.(back idx)

let make ?(aux = true) ~sizes ~cross () =
  let counter = ref 0 in
  let fresh () =
    let v = !counter in
    incr counter;
    v
  in
  let build = if aux then aux_tower_edges else plain_tower_edges in
  let towers_edges = List.map (fun s -> build ~fresh ~sizes:s) sizes in
  let towers = Array.of_list (List.map fst towers_edges) in
  let edges = List.concat_map snd towers_edges in
  let cross_edges =
    List.concat_map
      (fun (ta, la, tb, lb) ->
        let src = original_level towers.(ta) la in
        let dst =
          if aux then landing_level towers.(tb) lb
          else original_level towers.(tb) lb
        in
        List.concat_map
          (fun u -> List.map (fun v -> (u, v)) (Array.to_list dst))
          (Array.to_list src))
      cross
  in
  let dag = Dag.make ~n:!counter (edges @ cross_edges) in
  { dag; towers }

(** The matrix–vector multiplication DAG [A·x = y] of Proposition 4.3.

    For an [m×m] matrix: [m² + m] sources (the entries of [A] and [x]),
    [m²] intermediate product nodes [p_{ij} = A_{ij}·x_j] of in-degree
    2, and [m] sink nodes [y_i] of in-degree [m].

    For [m ≥ 3] and [m+3 ≤ r ≤ 2m], [OPT_PRBP = m² + 2m] (the trivial
    cost, achieved by streaming column by column while keeping the [m]
    partial outputs resident) while [OPT_RBP ≥ m² + 3m − 1]. *)

type t = {
  dag : Prbp_dag.Dag.t;
  m : int;
}

val make : m:int -> t

val a : t -> int -> int -> int
(** [a t i j] is the source node for [A_{ij}] (row [i], column [j]). *)

val x : t -> int -> int
(** Source node for [x_j]. *)

val p : t -> int -> int -> int
(** Product node for [A_{ij}·x_j]. *)

val y : t -> int -> int
(** Sink node for [y_i]. *)

val prbp_opt : m:int -> int
(** [m² + 2m], the trivial cost — optimal in PRBP for [r ≥ m+3]. *)

val rbp_lower : m:int -> int
(** [m² + 3m − 1], the Proposition 4.3 lower bound on [OPT_RBP] for
    [r ≤ 2m]. *)

module Dag = Prbp_dag.Dag

type ids = {
  u0 : int;
  u1 : int;
  u2 : int;
  w1 : int;
  w2 : int;
  w3 : int;
  w4 : int;
  v1 : int;
  v2 : int;
  v0 : int;
}

let full () =
  let ids =
    { u0 = 0; u1 = 1; u2 = 2; w1 = 3; w2 = 4; w3 = 5; w4 = 6; v1 = 7; v2 = 8;
      v0 = 9 }
  in
  let names =
    [| "u0"; "u1"; "u2"; "w1"; "w2"; "w3"; "w4"; "v1"; "v2"; "v0" |]
  in
  let g =
    Dag.make ~names ~n:10
      [
        (ids.u0, ids.u1);
        (ids.u0, ids.u2);
        (ids.u1, ids.w1);
        (ids.u1, ids.w2);
        (ids.u1, ids.w4);
        (ids.w1, ids.w3);
        (ids.w2, ids.w3);
        (ids.w3, ids.w4);
        (ids.w4, ids.v1);
        (ids.w4, ids.v2);
        (ids.u2, ids.v1);
        (ids.u2, ids.v2);
        (ids.v1, ids.v0);
        (ids.v2, ids.v0);
      ]
  in
  (g, ids)

(* Chained layout: node 0 is u0; the merged pairs (u1_i, u2_i) for
   i = 0..copies come next; then the four w-nodes of each copy; v0 is
   last.  Copy i's (v1, v2) are copy (i+1)'s (u1, u2). *)
let chained_u1u2 ~copies ~copy =
  if copy < 0 || copy > copies then invalid_arg "Fig1.chained_u1u2";
  ((2 * copy) + 1, (2 * copy) + 2)

let chained ~copies =
  if copies < 1 then invalid_arg "Fig1.chained: need at least one copy";
  let n = (6 * copies) + 4 in
  let u0 = 0 and v0 = n - 1 in
  let wbase = (2 * copies) + 3 in
  let w j i = wbase + (4 * i) + (j - 1) in
  let names = Array.make n "" in
  names.(u0) <- "u0";
  names.(v0) <- "v0";
  for i = 0 to copies do
    let u1, u2 = chained_u1u2 ~copies ~copy:i in
    names.(u1) <- Printf.sprintf "u1_%d" i;
    names.(u2) <- Printf.sprintf "u2_%d" i
  done;
  for i = 0 to copies - 1 do
    for j = 1 to 4 do
      names.(w j i) <- Printf.sprintf "w%d_%d" j i
    done
  done;
  let edges = ref [] in
  let add u v = edges := (u, v) :: !edges in
  let u1_0, u2_0 = chained_u1u2 ~copies ~copy:0 in
  add u0 u1_0;
  add u0 u2_0;
  for i = 0 to copies - 1 do
    let u1, u2 = chained_u1u2 ~copies ~copy:i in
    let v1, v2 = chained_u1u2 ~copies ~copy:(i + 1) in
    add u1 (w 1 i);
    add u1 (w 2 i);
    add u1 (w 4 i);
    add (w 1 i) (w 3 i);
    add (w 2 i) (w 3 i);
    add (w 3 i) (w 4 i);
    add (w 4 i) v1;
    add (w 4 i) v2;
    add u2 v1;
    add u2 v2
  done;
  let v1_last, v2_last = chained_u1u2 ~copies ~copy:copies in
  add v1_last v0;
  add v2_last v0;
  Dag.make ~names ~n !edges

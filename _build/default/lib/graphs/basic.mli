(** Small classic DAG families used as building blocks and test
    fixtures. *)

val path : int -> Prbp_dag.Dag.t
(** [path n]: a directed path on [n ≥ 2] nodes, [0 → 1 → … → n−1]. *)

val diamond : unit -> Prbp_dag.Dag.t
(** Four nodes: [0 → 1 → 3], [0 → 2 → 3]. *)

val fan_in : int -> Prbp_dag.Dag.t
(** [fan_in d]: [d] sources all feeding one sink (node [d]); the
    simplest DAG with [Δin = d], pebbleable in PRBP with [r = 2]. *)

val fan_out : int -> Prbp_dag.Dag.t
(** One source feeding [d] sinks. *)

val pyramid : int -> Prbp_dag.Dag.t
(** [pyramid h]: the 2-pyramid of height [h] from the pebbling
    literature: rows of sizes [h+1, h, …, 1], node [j] of row [i]
    having edges to nodes [j−1] and [j] of row [i+1] (where they
    exist).  Row 0 nodes are the sources; the apex is the sink.
    Node count [(h+1)(h+2)/2]. *)

val pyramid_apex : int -> int
(** Node id of the apex of [pyramid h]. *)

val grid : int -> int -> Prbp_dag.Dag.t
(** [grid rows cols]: node [(i,j)] (id [i·cols + j]) has edges to
    [(i+1,j)] and [(i,j+1)] — a dependence mesh à la dynamic
    programming tables. *)

val complete_bipartite : int -> int -> Prbp_dag.Dag.t
(** [complete_bipartite a b]: [a] sources each feeding all [b] sinks. *)

val horner : int -> Prbp_dag.Dag.t
(** [horner n]: the DAG of Horner evaluation of a degree-[n]
    polynomial — the motivating computation of the partial-computation
    model in Sobczyk's preprint [23].  Node 0 is the input [x],
    nodes [1 .. n+1] the coefficients [a_n .. a_0], nodes
    [n+2 .. 2n+1] the chain steps [h_k = h_(k-1)·x + a_(n-k)] (each of
    in-degree 3; [h_1] reads two coefficients).  [x] feeds every chain
    step, so [Δout = n]. *)

val stencil1d : steps:int -> width:int -> Prbp_dag.Dag.t
(** [stencil1d ~steps ~width]: the dependence DAG of a 1-D 3-point
    stencil iterated [steps] times — node [(t, i)] (id [t·width + i])
    reads [(t−1, i−1)], [(t−1, i)] and [(t−1, i+1)] (clamped at the
    boundary).  Time-tiling such stencils is a classic I/O-avoidance
    technique; each cell is an associative accumulation, so the PRBP
    model applies (Section 8.2's "tiling through successive
    operations"). *)

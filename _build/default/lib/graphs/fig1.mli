(** The example DAG of Figure 1 (Propositions 4.2 and 4.7).

    The full DAG (with [u0], [v0] and the dashed edges) satisfies, at
    [r = 4], [OPT_RBP = 3] and [OPT_PRBP = 2].  Removing [u0]/[v0]
    yields an 8-node gadget that can be chained serially (merging
    [v1]/[v2] of one copy with [u1]/[u2] of the next) to make
    [OPT_RBP = Θ(n)] while [OPT_PRBP = 2] (Proposition 4.7). *)

type ids = {
  u0 : int;
  u1 : int;
  u2 : int;
  w1 : int;
  w2 : int;
  w3 : int;
  w4 : int;
  v1 : int;
  v2 : int;
  v0 : int;
}
(** Nodes of the full Figure-1 DAG, named as in the paper. *)

val full : unit -> Prbp_dag.Dag.t * ids
(** The 10-node DAG of Proposition 4.2 (with [u0], [v0] and the dashed
    edges). *)

val chained : copies:int -> Prbp_dag.Dag.t
(** The Proposition 4.7 construction: [copies] serial copies of the
    8-node gadget, [v1]/[v2] of copy [i] merged with [u1]/[u2] of copy
    [i+1], a fresh source [u0] feeding the first copy and a fresh sink
    [v0] fed by the last.  [Δin = 2], [Δout = 3].
    Node count is [6·copies + 4]. *)

val chained_u1u2 : copies:int -> copy:int -> int * int
(** [(u1, u2)] node ids of the [copy]-th gadget (0-based) in
    {!chained}; [copy = copies] gives the final merged pair. *)

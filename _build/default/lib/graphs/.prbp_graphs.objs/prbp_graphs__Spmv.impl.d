lib/graphs/spmv.ml: Array Fun List Prbp_dag Printf Random

lib/graphs/collect.mli: Prbp_dag

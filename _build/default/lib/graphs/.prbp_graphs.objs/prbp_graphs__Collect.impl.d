lib/graphs/collect.ml: Array List Prbp_dag Printf

lib/graphs/fft.ml: Array Prbp_dag Printf

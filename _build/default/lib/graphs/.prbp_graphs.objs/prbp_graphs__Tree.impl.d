lib/graphs/tree.ml: List Prbp_dag

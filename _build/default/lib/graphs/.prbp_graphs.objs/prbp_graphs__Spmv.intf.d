lib/graphs/spmv.mli: Prbp_dag

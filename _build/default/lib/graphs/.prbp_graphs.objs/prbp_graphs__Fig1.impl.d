lib/graphs/fig1.ml: Array Prbp_dag Printf

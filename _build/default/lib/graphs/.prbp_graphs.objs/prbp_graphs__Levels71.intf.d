lib/graphs/levels71.mli: Prbp_dag

lib/graphs/basic.mli: Prbp_dag

lib/graphs/basic.ml: Array List Prbp_dag Printf

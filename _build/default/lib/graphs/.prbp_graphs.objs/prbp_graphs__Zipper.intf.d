lib/graphs/zipper.mli: Prbp_dag

lib/graphs/matvec.mli: Prbp_dag

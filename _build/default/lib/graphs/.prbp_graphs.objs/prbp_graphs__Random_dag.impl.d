lib/graphs/random_dag.ml: Array Hashtbl Prbp_dag Random

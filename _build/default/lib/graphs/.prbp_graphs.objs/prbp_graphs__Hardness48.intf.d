lib/graphs/hardness48.mli: Prbp_dag Ugraph

lib/graphs/matvec.ml: Array Prbp_dag Printf

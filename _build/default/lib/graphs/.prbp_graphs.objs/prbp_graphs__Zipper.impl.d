lib/graphs/zipper.ml: Array List Prbp_dag Printf

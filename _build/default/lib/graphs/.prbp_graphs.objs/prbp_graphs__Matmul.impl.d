lib/graphs/matmul.ml: Array Float Prbp_dag Printf

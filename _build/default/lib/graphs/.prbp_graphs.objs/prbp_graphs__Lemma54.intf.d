lib/graphs/lemma54.mli: Prbp_dag

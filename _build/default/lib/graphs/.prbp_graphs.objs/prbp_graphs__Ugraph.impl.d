lib/graphs/ugraph.ml: Array List

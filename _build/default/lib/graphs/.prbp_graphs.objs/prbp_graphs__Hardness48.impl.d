lib/graphs/hardness48.ml: Array List Prbp_dag Ugraph

lib/graphs/random_dag.mli: Prbp_dag

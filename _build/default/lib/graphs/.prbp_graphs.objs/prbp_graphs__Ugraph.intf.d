lib/graphs/ugraph.mli:

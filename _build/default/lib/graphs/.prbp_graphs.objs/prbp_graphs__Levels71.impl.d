lib/graphs/levels71.ml: Array List Option Prbp_dag

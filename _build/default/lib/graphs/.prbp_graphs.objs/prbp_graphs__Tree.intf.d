lib/graphs/tree.mli: Prbp_dag

lib/graphs/fft.mli: Prbp_dag

lib/graphs/attention.ml: Matmul Prbp_dag

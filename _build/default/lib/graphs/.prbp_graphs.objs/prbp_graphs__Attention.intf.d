lib/graphs/attention.mli: Matmul Prbp_dag

lib/graphs/matmul.mli: Prbp_dag

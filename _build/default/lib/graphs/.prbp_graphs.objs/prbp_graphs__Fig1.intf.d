lib/graphs/fig1.mli: Prbp_dag

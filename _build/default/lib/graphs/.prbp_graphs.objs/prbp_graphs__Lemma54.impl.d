lib/graphs/lemma54.ml: Array List Prbp_dag Printf

module Dag = Prbp_dag.Dag

let path n =
  if n < 2 then invalid_arg "Basic.path: need at least 2 nodes";
  Dag.make ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let diamond () = Dag.make ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let fan_in d =
  if d < 1 then invalid_arg "Basic.fan_in";
  Dag.make ~n:(d + 1) (List.init d (fun i -> (i, d)))

let fan_out d =
  if d < 1 then invalid_arg "Basic.fan_out";
  Dag.make ~n:(d + 1) (List.init d (fun i -> (0, i + 1)))

(* Rows numbered from the base (size h+1) to the apex (size 1); node j
   of row i has id  offset(i) + j  with offset(i) = sum of row sizes
   below. *)
let pyramid_offset h i =
  (* rows 0..i-1 have sizes h+1, h, ..., h+2-i *)
  let rec go acc k = if k = i then acc else go (acc + (h + 1 - k)) (k + 1) in
  go 0 0

let pyramid h =
  if h < 1 then invalid_arg "Basic.pyramid: height must be >= 1";
  let n = (h + 1) * (h + 2) / 2 in
  let id i j = pyramid_offset h i + j in
  let edges = ref [] in
  for i = 0 to h - 1 do
    let row = h + 1 - i in
    (* row i has [row] nodes; node j feeds nodes j-1 and j of row i+1,
       which has row-1 nodes *)
    for j = 0 to row - 1 do
      if j - 1 >= 0 then edges := (id i j, id (i + 1) (j - 1)) :: !edges;
      if j <= row - 2 then edges := (id i j, id (i + 1) j) :: !edges
    done
  done;
  Dag.make ~n !edges

let pyramid_apex h = pyramid_offset h h

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Basic.grid";
  let id i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if i + 1 < rows then edges := (id i j, id (i + 1) j) :: !edges;
      if j + 1 < cols then edges := (id i j, id i (j + 1)) :: !edges
    done
  done;
  Dag.make ~n:(rows * cols) !edges

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Basic.complete_bipartite";
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      edges := (i, a + j) :: !edges
    done
  done;
  Dag.make ~n:(a + b) !edges

let horner n =
  if n < 1 then invalid_arg "Basic.horner: degree >= 1";
  let x = 0 in
  let coeff k = 1 + k in
  (* coeff 0 = a_n, ..., coeff n = a_0 *)
  let h k = n + 1 + k in
  (* h 1 .. h n *)
  let names = Array.make ((2 * n) + 2) "" in
  names.(x) <- "x";
  for k = 0 to n do
    names.(coeff k) <- Printf.sprintf "a%d" (n - k)
  done;
  for k = 1 to n do
    names.(h k) <- Printf.sprintf "h%d" k
  done;
  let edges = ref [] in
  edges := [ (x, h 1); (coeff 0, h 1); (coeff 1, h 1) ];
  for k = 2 to n do
    edges := (x, h k) :: (h (k - 1), h k) :: (coeff k, h k) :: !edges
  done;
  Dag.make ~names ~n:((2 * n) + 2) !edges

let stencil1d ~steps ~width =
  if steps < 2 || width < 1 then
    invalid_arg "Basic.stencil1d: steps >= 2, width >= 1";
  let id t i = (t * width) + i in
  let edges = ref [] in
  for t = 1 to steps - 1 do
    for i = 0 to width - 1 do
      for di = -1 to 1 do
        let j = i + di in
        if j >= 0 && j < width then edges := (id (t - 1) j, id t i) :: !edges
      done
    done
  done;
  Dag.make ~n:(steps * width) !edges

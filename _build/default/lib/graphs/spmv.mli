(** Sparse matrix–vector multiplication DAGs.

    The paper closes by pointing at {e irregular graphs and sparse
    computations} as the natural next target for the new PRBP
    lower-bound tools (Section 8.2).  This generator produces the DAG
    of [y = A·x] for a seeded random sparse pattern: one source per
    stored entry [A_ij] and per input [x_j], an in-degree-2 product
    node per entry, and an output node [y_i] aggregating each row.

    Row aggregation is an associative-commutative sum, so partial
    computation applies: PRBP pebbles the DAG at the trivial cost with
    [rows + 3] red pebbles regardless of the pattern (see
    {!Prbp_solver.Strategies.spmv_prbp}), while one-shot RBP needs
    [max_row_nnz + 1] pebbles just to exist, and pays extra I/O to
    gather each row — the matvec separation of Proposition 4.3,
    generalized to irregular patterns. *)

type t = {
  dag : Prbp_dag.Dag.t;
  rows : int;
  cols : int;
  entries : (int * int) array;  (** stored [(i, j)] coordinates *)
}

val make :
  ?seed:int -> ?density:float -> rows:int -> cols:int -> unit -> t
(** Random pattern with expected [density] fill (default 0.25);
    every row and every column is guaranteed at least one entry, so
    the DAG has no isolated nodes.  Deterministic in [seed]
    (default 0). *)

val nnz : t -> int

val max_row_nnz : t -> int

val a : t -> int -> int
(** [a t e]: source node of the [e]-th stored entry. *)

val x : t -> int -> int

val p : t -> int -> int
(** [p t e]: product node of the [e]-th stored entry. *)

val y : t -> int -> int

val entries_of_col : t -> int -> int list
(** Indices (into {!t.entries}) of the entries in a column. *)

val trivial_cost : t -> int
(** [nnz + cols + rows]. *)

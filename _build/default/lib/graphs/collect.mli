(** The pebble-collection gadget of [17] (Section 4.2.3, Figure 2,
    right; Proposition 4.6).

    [d] source nodes [u_0 … u_{d−1}] and a chain [v_0 … v_{len−1}];
    chain node [v_i] has in-edges from [v_{i−1}] (for [i ≥ 1]) and from
    source [u_{i mod d}].

    With [d + 2] red pebbles the gadget pebbles at trivial cost; a
    strategy that never holds [d + 2] red pebbles on it simultaneously
    pays at least [len / (2d)] I/Os — in PRBP too (Proposition 4.6). *)

type t = {
  dag : Prbp_dag.Dag.t;
  d : int;
  len : int;
}

val make : d:int -> len:int -> t

val source : t -> int -> int
(** [source t i] is [u_i], [0 ≤ i < d]. *)

val chain : t -> int list
(** Chain node ids in order; [v_i] has id [d + i]. *)

val lower_bound_capped : t -> int
(** [⌈len / (2d)⌉]: the Proposition 4.6 lower bound on the I/O cost of
    any PRBP strategy that never places [d+2] red pebbles on the gadget
    simultaneously. *)

module Dag = Prbp_dag.Dag

type t = { dag : Prbp_dag.Dag.t; d : int; len : int }

let make ~d ~len =
  if d < 1 then invalid_arg "Zipper.make: d must be >= 1";
  if len < 2 then invalid_arg "Zipper.make: len must be >= 2";
  let n = (2 * d) + len in
  let chain i = (2 * d) + i in
  let names =
    Array.init n (fun v ->
        if v < d then Printf.sprintf "a%d" v
        else if v < 2 * d then Printf.sprintf "b%d" (v - d)
        else Printf.sprintf "c%d" (v - (2 * d)))
  in
  let edges = ref [] in
  for i = 0 to len - 1 do
    if i > 0 then edges := (chain (i - 1), chain i) :: !edges;
    let group_base = if i mod 2 = 0 then 0 else d in
    for j = 0 to d - 1 do
      edges := (group_base + j, chain i) :: !edges
    done
  done;
  { dag = Dag.make ~names ~n !edges; d; len }

let group_a t = List.init t.d (fun i -> i)

let group_b t = List.init t.d (fun i -> t.d + i)

let chain t = List.init t.len (fun i -> (2 * t.d) + i)

let rbp_cost_upper t = (2 * t.d) + 1 + (t.d * (t.len - 1))

let prbp_cost_upper t = (2 * t.d) + 1 + (2 * (t.len - 1))

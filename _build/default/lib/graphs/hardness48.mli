(** The Theorem 4.8 reduction: from a MaxInSet-Vertex instance
    [(G₀, v₀)] to a DAG in which [OPT_PRBP < OPT_RBP] iff no maximum
    independent set of [G₀] contains [v₀].

    Construction per the proof sketch and Appendix A.4: each node [u]
    of [G₀] yields two pebble-collection gadgets [H₁(u)], [H₂(u)] with
    [r−2 = b + 4n₀ + 3] group members and chains of length
    [ℓ = 2ℓ₀ + n₀ + 2(r−2)];

    - the first [b] group members of [H₁(u)] and [H₂(u)] are merged;
    - each gadget carries [3n₀] private anchor members;
    - for every edge [(u₁,u₂)] of [G₀], a node from the middle section
      of [H₁(u₁)]'s chain becomes a group member of [H₂(u₂)] and vice
      versa (plus a like dependence from [H₁(u)] to [H₂(u)]);
    - three designated members [Z₁ ⊆ H₁(v₀)] and [Z₂ ⊆ H₂(v₀)] feed an
      extra sink [w].

    Defaults follow Appendix A.4 ([ℓ₀ = 2(r−2)(n₀b + 2|E₀| + 6 + r)]);
    both [b] and [ℓ₀] can be overridden to produce miniature instances
    whose qualitative behavior is checkable by exact search. *)

type gadget = {
  group : int array;  (** the [r−2] group members, merged slots first *)
  chain : int array;  (** the chain, in order *)
}

type t = {
  dag : Prbp_dag.Dag.t;
  g0 : Ugraph.t;
  v0 : int;
  r : int;  (** the cache size the reduction poses the question for *)
  b : int;
  ell : int;
  ell0 : int;
  h1 : gadget array;  (** [h1.(u)] is [H₁(u)] *)
  h2 : gadget array;
  w : int;  (** the extra sink *)
  z1 : int array;  (** the three [Z₁] members of [H₁(v₀)] *)
  z2 : int array;
}

val make : ?b:int -> ?ell0:int -> g0:Ugraph.t -> v0:int -> unit -> t
(** @raise Invalid_argument if [b ≤ 3] (the proof needs [b > |Z|]). *)

val middle_nodes : t -> side:int -> int -> int array
(** [middle_nodes t ~side u]: the [n₀] middle-section chain nodes of
    [H_side(u)] ([side ∈ {1,2}]). *)

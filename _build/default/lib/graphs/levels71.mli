(** Level gadgets and towers for the Theorem 7.1 inapproximability
    construction (Appendix A.5, Figure 5).

    A {e level} is a chain [(u₁, …, u_ℓ)].  Between consecutive levels
    [(u₁,…,u_ℓ)] and [(v₁,…,v_ℓ′)] run the edges [(u_i, v_i)] for
    [i ≤ min(ℓ,ℓ′)], and, when [ℓ > ℓ′], also [(u_i, v_ℓ′)] for
    [ℓ′ < i ≤ ℓ].  A {e tower} is a sequence of levels.

    The paper's PRBP adaptation inserts {e auxiliary levels}:

    - at least one auxiliary level (same size as the next original
      level) before each original level, so cross-tower precedence
      edges can be redirected to the auxiliary level below their
      target;
    - when a level of size [ℓ] is followed by a smaller one ([ℓ′ < ℓ]),
      [ℓ − ℓ′ + 2] auxiliary levels, each receiving edges from
      [u_{ℓ′+1}, …, u_ℓ] into its last node, so partially computing the
      dependents can never free more than [ℓ − ℓ′] pebbles;
    - one auxiliary level at the top of each tower.

    These insertions leave the RBP optimum unchanged while restoring
    the level-gadget invariants in PRBP. *)

type tower = {
  levels : int array array;
      (** [levels.(i)] = node ids of level [i], bottom to top *)
  original : bool array;
      (** [original.(i)] = [false] for inserted auxiliary levels *)
}

type t = {
  dag : Prbp_dag.Dag.t;
  towers : tower array;
}

val plain_tower_edges :
  fresh:(unit -> int) -> sizes:int list -> tower * (int * int) list
(** Build one tower without auxiliary levels (the RBP construction of
    [3]): returns its levels and the edge list to splice into a DAG. *)

val aux_tower_edges :
  fresh:(unit -> int) -> sizes:int list -> tower * (int * int) list
(** Build one tower {e with} the paper's auxiliary levels. *)

val make :
  ?aux:bool ->
  sizes:int list list ->
  cross:(int * int * int * int) list ->
  unit ->
  t
(** [make ~sizes ~cross ()] builds one tower per size list, then adds a
    cross-tower precedence for each [(tower_a, level_a, tower_b,
    level_b)]: edges from every node of (original) level [level_a] of
    tower [a] to the corresponding nodes of the level {e below}
    [level_b] of tower [b] (its lowest auxiliary level when [aux],
    default; the level itself otherwise, clamping index overflow to
    the last node).  Level indices refer to {e original} levels. *)

val original_level : tower -> int -> int array
(** [original_level tw k]: the k-th original level of the tower. *)

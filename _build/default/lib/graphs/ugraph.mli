(** Simple undirected graphs and exact independent-set tooling.

    This is the substrate for the Theorem 4.8 reduction: instances of
    MaxInSet-Vertex (Definition 4.9) are posed on these graphs, and the
    brute-force oracles below decide them exactly on the small
    instances used for end-to-end validation of the reduction. *)

type t

val make : n:int -> (int * int) list -> t
(** Undirected edges; self-loops and duplicates (in either orientation)
    are rejected. *)

val n_nodes : t -> int

val n_edges : t -> int

val adjacent : t -> int -> int -> bool

val neighbors : t -> int -> int list

val degree : t -> int -> int

val edges : t -> (int * int) list
(** Each edge once, with smaller endpoint first. *)

val complement : t -> t

(** {1 Named small graphs} *)

val path_graph : int -> t

val cycle_graph : int -> t

val complete : int -> t

(** {1 Independent sets (exact, exponential — small [n] only)} *)

val is_independent : t -> int list -> bool

val max_independent_size : t -> int
(** @raise Invalid_argument if [n_nodes > 24]. *)

val max_independent_sets : t -> int list list
(** All maximum independent sets, each sorted increasingly. *)

val maxinset_vertex : t -> int -> bool
(** The MaxInSet-Vertex oracle: is there a {e maximum} independent set
    containing the given node?  (Definition 4.9; NP-hard in general,
    decided exhaustively here.) *)

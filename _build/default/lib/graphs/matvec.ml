module Dag = Prbp_dag.Dag

type t = { dag : Prbp_dag.Dag.t; m : int }

let a_id m i j = (i * m) + j

let x_id m j = (m * m) + j

let p_id m i j = (m * m) + m + (i * m) + j

let y_id m i = (2 * m * m) + m + i

let make ~m =
  if m < 1 then invalid_arg "Matvec.make: m must be >= 1";
  let n = (2 * m * m) + (2 * m) in
  let names = Array.make n "" in
  let edges = ref [] in
  for i = 0 to m - 1 do
    names.(x_id m i) <- Printf.sprintf "x%d" i;
    names.(y_id m i) <- Printf.sprintf "y%d" i;
    for j = 0 to m - 1 do
      names.(a_id m i j) <- Printf.sprintf "A%d,%d" i j;
      names.(p_id m i j) <- Printf.sprintf "p%d,%d" i j;
      edges := (a_id m i j, p_id m i j) :: !edges;
      edges := (x_id m j, p_id m i j) :: !edges;
      edges := (p_id m i j, y_id m i) :: !edges
    done
  done;
  { dag = Dag.make ~names ~n !edges; m }

let a t i j = a_id t.m i j

let x t j = x_id t.m j

let p t i j = p_id t.m i j

let y t i = y_id t.m i

let prbp_opt ~m = (m * m) + (2 * m)

let rbp_lower ~m = (m * m) + (3 * m) - 1

(** Self-attention DAGs (Section 6.3.3, Theorem 6.11).

    The paper's bound targets the bottleneck [Q·K^T] step ([Q], [K] of
    size [m×d]); {!qkt} builds exactly that DAG (it is the [m×d × d×m]
    matrix-multiplication DAG).  {!full} additionally models the
    softmax row reduction and the [P·V] product, giving a realistic
    end-to-end attention DAG for experiments beyond the theorem. *)

val qkt : m:int -> d:int -> Matmul.t
(** The score computation [S = Q·K^T] as a matmul DAG with
    [m1 = m3 = m] and [m2 = d]. *)

type full = {
  dag : Prbp_dag.Dag.t;
  m : int;
  d : int;
}

val full : m:int -> d:int -> full
(** Scores [S = Q·K^T]; per-row softmax denominators [σ_i] (in-degree
    [m] aggregations of the scores of row [i]); normalized weights
    [P_{ij}] (inputs [S_{ij}], [σ_i]); products [P_{ij}·V_{jk}]; and
    outputs [O_{ik}] (in-degree [m]).  All aggregation nodes combine
    associative-commutative operators, so the PRBP model applies. *)

val lower_bound : m:int -> d:int -> r:int -> float
(** Theorem 6.11: [Ω(min(m²·d/√r, m²·d²/r))], instantiated with the
    constants of the S-edge-partition proof ([m²d² / (4r)] in the large
    cache regime [r ≥ d²], the matmul bound otherwise). *)

(** Reachability queries. *)

val from : Dag.t -> Dag.node list -> Bitset.t
(** [from g vs] is the set of nodes reachable from [vs] along directed
    edges, including [vs] themselves. *)

val from_avoiding : Dag.t -> avoid:Bitset.t -> Dag.node list -> Bitset.t
(** Like {!from}, but never enters a node of [avoid] (nodes of [avoid]
    are excluded even when they appear in the seed list).  This is the
    primitive behind dominator checking: [D] dominates [V₀] iff no node
    of [V₀] is in [from_avoiding g ~avoid:D (sources g)]. *)

val to_ : Dag.t -> Dag.node list -> Bitset.t
(** [to_ g vs] is the set of nodes that can reach some node of [vs]
    (the ancestors closure), including [vs]. *)

val descendants : Dag.t -> Dag.node -> Bitset.t
(** Proper + improper descendants of a single node. *)

val ancestors : Dag.t -> Dag.node -> Bitset.t

(** Dinic's maximum-flow algorithm on integer capacities.

    This is the substrate behind minimum-dominator-size computations
    (minimum vertex cuts via node splitting).  Capacities use [max_int]
    as infinity; the implementation never overflows because augmenting
    amounts are clamped to the bottleneck. *)

type t

val infinity : int
(** A capacity treated as unbounded. *)

val create : int -> t
(** [create n] is an empty flow network on vertices [0 .. n-1]. *)

val add_edge : t -> int -> int -> int -> unit
(** [add_edge net u v cap] adds a directed edge of capacity [cap]
    (and its residual reverse edge of capacity 0). *)

val max_flow : t -> src:int -> dst:int -> int
(** Value of a maximum [src]→[dst] flow.  Destroys the network's
    residual state; call on a fresh network. *)

val min_cut_side : t -> src:int -> Bitset.t
(** After {!max_flow}: the set of vertices reachable from [src] in the
    residual network — the source side of a minimum cut. *)

let bfs n neighbors ~avoid seeds =
  let seen = Bitset.create n in
  let q = Queue.create () in
  List.iter
    (fun v ->
      if (not (Bitset.mem seen v)) && not (Bitset.mem avoid v) then begin
        Bitset.add seen v;
        Queue.add v q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    neighbors
      (fun w ->
        if (not (Bitset.mem seen w)) && not (Bitset.mem avoid w) then begin
          Bitset.add seen w;
          Queue.add w q
        end)
      v
  done;
  seen

let from_avoiding g ~avoid seeds =
  bfs (Dag.n_nodes g) (fun f v -> Dag.iter_succ f g v) ~avoid seeds

let from g seeds =
  from_avoiding g ~avoid:(Bitset.create (Dag.n_nodes g)) seeds

let to_ g seeds =
  bfs (Dag.n_nodes g)
    (fun f v -> Dag.iter_pred f g v)
    ~avoid:(Bitset.create (Dag.n_nodes g))
    seeds

let descendants g v = from g [ v ]

let ancestors g v = to_ g [ v ]

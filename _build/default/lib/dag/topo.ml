(* Kahn's algorithm with a min-heap keyed by node id for determinism.
   The heap is a simple binary heap over ints. *)

module Heap = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 16 0; len = 0 }

  let push h x =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) 0 in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.a.((!i - 1) / 2) > h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then invalid_arg "Heap.pop: empty";
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.len && h.a.(l) < h.a.(!s) then s := l;
      if r < h.len && h.a.(r) < h.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
    done;
    top

  let is_empty h = h.len = 0
end

let sort g =
  let n = Dag.n_nodes g in
  let indeg = Array.init n (Dag.in_degree g) in
  let heap = Heap.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Heap.push heap v
  done;
  let order = Array.make n 0 in
  let k = ref 0 in
  while not (Heap.is_empty heap) do
    let v = Heap.pop heap in
    order.(!k) <- v;
    incr k;
    Dag.iter_succ
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Heap.push heap w)
      g v
  done;
  assert (!k = n);
  order

let is_order g ord =
  let n = Dag.n_nodes g in
  Array.length ord = n
  &&
  let pos = Array.make n (-1) in
  Array.iteri (fun i v -> if v >= 0 && v < n then pos.(v) <- i) ord;
  Array.for_all (fun p -> p >= 0) pos
  &&
  let ok = ref true in
  Dag.iter_edges (fun _ u v -> if pos.(u) >= pos.(v) then ok := false) g;
  !ok

let depth g =
  let order = sort g in
  let d = Array.make (Dag.n_nodes g) 0 in
  Array.iter
    (fun v ->
      Dag.iter_pred (fun u -> if d.(u) + 1 > d.(v) then d.(v) <- d.(u) + 1) g v)
    order;
  d

let height g =
  let d = depth g in
  Array.fold_left max 0 d

let levels g =
  let d = depth g in
  let h = Array.fold_left max 0 d in
  let lv = Array.make (h + 1) [] in
  for v = Dag.n_nodes g - 1 downto 0 do
    lv.(d.(v)) <- v :: lv.(d.(v))
  done;
  lv

let edge_order g =
  let ord = sort g in
  let pos = Array.make (Dag.n_nodes g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) ord;
  let es = Array.init (Dag.n_edges g) (fun e -> e) in
  let key e =
    (pos.(Dag.edge_dst g e), pos.(Dag.edge_src g e))
  in
  Array.sort (fun a b -> compare (key a) (key b)) es;
  es

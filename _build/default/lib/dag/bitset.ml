type t = { words : int array; n : int }

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity b = b.n

let check b i =
  if i < 0 || i >= b.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0, %d)" i b.n)

let mem b i =
  check b i;
  b.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add b i =
  check b i;
  let w = i / bits_per_word in
  b.words.(w) <- b.words.(w) lor (1 lsl (i mod bits_per_word))

let remove b i =
  check b i;
  let w = i / bits_per_word in
  b.words.(w) <- b.words.(w) land lnot (1 lsl (i mod bits_per_word))

let set b i v = if v then add b i else remove b i

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal b = Array.fold_left (fun acc w -> acc + popcount w) 0 b.words

let is_empty b = Array.for_all (fun w -> w = 0) b.words

let clear b = Array.fill b.words 0 (Array.length b.words) 0

let fill b =
  for i = 0 to b.n - 1 do
    let w = i / bits_per_word in
    b.words.(w) <- b.words.(w) lor (1 lsl (i mod bits_per_word))
  done

let copy b = { b with words = Array.copy b.words }

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  let rec go i =
    i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1))
  in
  go 0

let subset a b =
  same_capacity a b;
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let union_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let diff_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let iter f b =
  for i = 0 to b.n - 1 do
    if b.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then
      f i
  done

let fold f b init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) b;
  !acc

let to_list b = List.rev (fold (fun i acc -> i :: acc) b [])

let of_list n xs =
  let b = create n in
  List.iter (add b) xs;
  b

exception Found of int

let choose b =
  try
    iter (fun i -> raise (Found i)) b;
    None
  with Found i -> Some i

let hash b = Array.fold_left (fun acc w -> (acc * 1000003) lxor w) b.n b.words

let pp ppf b =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list b)

(** Graphviz DOT export, for inspecting generated constructions. *)

val to_string :
  ?highlight:Bitset.t ->
  ?edge_highlight:Bitset.t ->
  ?rankdir:string ->
  Dag.t ->
  string
(** Render the DAG as a DOT digraph.  [highlight] nodes are filled,
    [edge_highlight] edges (by edge id) are drawn bold red.
    [rankdir] defaults to ["TB"]. *)

val to_file :
  ?highlight:Bitset.t ->
  ?edge_highlight:Bitset.t ->
  ?rankdir:string ->
  string ->
  Dag.t ->
  unit

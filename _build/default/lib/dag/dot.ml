let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let to_string ?highlight ?edge_highlight ?(rankdir = "TB") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n";
  Buffer.add_string buf (Printf.sprintf "  rankdir=%s;\n" rankdir);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  for v = 0 to Dag.n_nodes g - 1 do
    let hl =
      match highlight with Some h -> Bitset.mem h v | None -> false
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v
         (escape (Dag.name g v))
         (if hl then ", style=filled, fillcolor=lightblue" else ""))
  done;
  Dag.iter_edges
    (fun e u v ->
      let hl =
        match edge_highlight with
        | Some h -> Bitset.mem h e
        | None -> false
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d%s;\n" u v
           (if hl then " [color=red, penwidth=2]" else "")))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?highlight ?edge_highlight ?rankdir path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?highlight ?edge_highlight ?rankdir g))

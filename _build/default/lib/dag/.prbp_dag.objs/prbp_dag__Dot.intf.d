lib/dag/dot.mli: Bitset Dag

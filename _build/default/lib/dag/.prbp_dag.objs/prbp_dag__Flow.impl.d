lib/dag/flow.ml: Array Bitset Queue

lib/dag/bitset.ml: Array Format List Printf

lib/dag/dominator.mli: Bitset Dag

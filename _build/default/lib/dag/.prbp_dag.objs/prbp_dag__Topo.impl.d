lib/dag/topo.ml: Array Dag

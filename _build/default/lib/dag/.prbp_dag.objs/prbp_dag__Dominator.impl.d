lib/dag/dominator.ml: Bitset Dag Flow List Reach

lib/dag/reach.mli: Bitset Dag

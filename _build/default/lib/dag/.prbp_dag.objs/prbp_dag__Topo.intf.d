lib/dag/topo.mli: Dag

lib/dag/serialize.ml: Array Buffer Dag Fun Hashtbl List Printf String

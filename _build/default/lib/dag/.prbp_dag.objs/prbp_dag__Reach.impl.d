lib/dag/reach.ml: Bitset Dag List Queue

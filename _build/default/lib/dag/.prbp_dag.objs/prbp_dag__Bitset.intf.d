lib/dag/bitset.mli: Format

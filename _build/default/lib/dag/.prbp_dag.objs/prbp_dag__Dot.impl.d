lib/dag/dot.ml: Bitset Buffer Dag Fun List Printf String

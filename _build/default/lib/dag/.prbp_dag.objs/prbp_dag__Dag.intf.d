lib/dag/dag.mli: Bitset Format

lib/dag/flow.mli: Bitset

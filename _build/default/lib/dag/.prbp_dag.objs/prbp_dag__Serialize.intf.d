lib/dag/serialize.mli: Dag

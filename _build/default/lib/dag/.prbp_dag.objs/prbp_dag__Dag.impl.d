lib/dag/dag.ml: Array Bitset Format Hashtbl List Option Printf

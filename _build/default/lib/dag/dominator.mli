(** Dominators and terminal sets (Definitions 5.1, 5.2, 6.1, 6.2 of the
    paper).

    Node sets are {!Bitset.t} of capacity [n_nodes]; edge sets are
    {!Bitset.t} of capacity [n_edges] (membership by edge id). *)

val is_dominator : Dag.t -> Bitset.t -> Bitset.t -> bool
(** [is_dominator g d v0]: every path from a source node to a node of
    [v0] contains a node of [d] (Definition 5.1).  Paths include their
    endpoints, so [v0 ⊆ d] always dominates. *)

val min_dominator_size : Dag.t -> Bitset.t -> int
(** Size of a minimum dominator for [v0]: the minimum vertex cut
    separating the sources from [v0], computed by max-flow on the
    node-split network.  Runs in polynomial time (this is not the
    NP-hard minimum-partition problem, just one dominator). *)

val min_dominator : Dag.t -> Bitset.t -> Bitset.t
(** A concrete minimum dominator realizing {!min_dominator_size}. *)

val terminal_set : Dag.t -> Bitset.t -> Bitset.t
(** Nodes of [v0] with no out-neighbor inside [v0] (Definition 5.2). *)

val start_nodes : Dag.t -> Bitset.t -> Bitset.t
(** [start_nodes g e0] = \{u | ∃v. (u,v) ∈ e0\} — the sources of the
    edges in the set (the paper's [Start(E₀)]). *)

val is_edge_dominator : Dag.t -> Bitset.t -> Bitset.t -> bool
(** [is_edge_dominator g d e0]: every source-originating path containing
    an edge of [e0] meets [d] (Definition 6.1); equivalently, [d]
    dominates [start_nodes g e0]. *)

val min_edge_dominator_size : Dag.t -> Bitset.t -> int

val edge_terminal_set : Dag.t -> Bitset.t -> Bitset.t
(** Nodes with at least one incoming edge in [e0] but no outgoing edge
    in [e0] (Definition 6.2). *)

(** Topological orderings and level structure. *)

val sort : Dag.t -> Dag.node array
(** A topological order of all nodes (Kahn's algorithm, smallest-id
    first among ready nodes, so the order is deterministic). *)

val is_order : Dag.t -> Dag.node array -> bool
(** [is_order g ord] checks that [ord] is a permutation of the nodes in
    which every edge goes forward. *)

val depth : Dag.t -> int array
(** [depth g] maps each node to the length (in edges) of the longest
    path from any source to it; sources have depth 0. *)

val height : Dag.t -> int
(** Longest path length in the DAG ([max] over {!depth}; 0 if edgeless). *)

val levels : Dag.t -> Dag.node list array
(** Nodes grouped by {!depth}: [levels g.(d)] are the depth-[d] nodes in
    increasing order. *)

val edge_order : Dag.t -> Dag.edge_id array
(** All edge ids ordered so that edges into earlier (per {!sort}) target
    nodes come first and, within a target, by source position in the
    order.  This is a valid PRBP marking order for the sequential
    pebbler. *)

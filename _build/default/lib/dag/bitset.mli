(** Fixed-capacity mutable bitsets over the integers [0, n).

    Used throughout the library for node and edge sets: reachability
    frontiers, pebble-state components, partition classes.  The
    implementation packs bits into an [int array], so all operations are
    cache-friendly and allocation-free after creation. *)

type t

val create : int -> t
(** [create n] is an empty bitset with capacity [n] (members in [0, n)). *)

val capacity : t -> int
(** Number of distinct possible members (the [n] of {!create}). *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val set : t -> int -> bool -> unit
(** [set b i v] makes [mem b i = v]. *)

val cardinal : t -> int
(** Number of members; O(capacity / 64). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove all members. *)

val fill : t -> unit
(** Add every member in [0, capacity). *)

val copy : t -> t

val equal : t -> t -> bool
(** Equality of contents; both sets must have the same capacity. *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff every member of [a] is a member of [b]. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst]. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] everything not in [src]. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] removes every member of [src] from [dst]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is a bitset of capacity [n] containing [xs]. *)

val choose : t -> int option
(** Smallest member, if any. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 7}]. *)

let infinity = max_int / 4

type t = {
  n : int;
  mutable to_ : int array;   (* arc -> head vertex *)
  mutable cap : int array;   (* arc -> residual capacity *)
  mutable next : int array;  (* arc -> next arc out of same tail *)
  head : int array;          (* vertex -> first arc, -1 if none *)
  mutable n_arcs : int;
}

let create n =
  {
    n;
    to_ = Array.make 16 0;
    cap = Array.make 16 0;
    next = Array.make 16 (-1);
    head = Array.make n (-1);
    n_arcs = 0;
  }

let grow net =
  let len = Array.length net.to_ in
  if net.n_arcs = len then begin
    let resize a fill =
      let a' = Array.make (2 * len) fill in
      Array.blit a 0 a' 0 len;
      a'
    in
    net.to_ <- resize net.to_ 0;
    net.cap <- resize net.cap 0;
    net.next <- resize net.next (-1)
  end

let add_arc net u v c =
  grow net;
  let a = net.n_arcs in
  net.to_.(a) <- v;
  net.cap.(a) <- c;
  net.next.(a) <- net.head.(u);
  net.head.(u) <- a;
  net.n_arcs <- a + 1

(* Forward arc and its residual are paired: ids 2k and 2k+1. *)
let add_edge net u v cap =
  if cap < 0 then invalid_arg "Flow.add_edge: negative capacity";
  add_arc net u v cap;
  add_arc net v u 0

let max_flow net ~src ~dst =
  let level = Array.make net.n (-1) in
  let it = Array.make net.n (-1) in
  let q = Queue.create () in
  let build_levels () =
    Array.fill level 0 net.n (-1);
    Queue.clear q;
    level.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      let a = ref net.head.(v) in
      while !a >= 0 do
        let w = net.to_.(!a) in
        if net.cap.(!a) > 0 && level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w q
        end;
        a := net.next.(!a)
      done
    done;
    level.(dst) >= 0
  in
  let rec dfs v f =
    if v = dst then f
    else begin
      let pushed = ref 0 in
      while !pushed = 0 && it.(v) >= 0 do
        let a = it.(v) in
        let w = net.to_.(a) in
        if net.cap.(a) > 0 && level.(w) = level.(v) + 1 then begin
          let d = dfs w (min f net.cap.(a)) in
          if d > 0 then begin
            net.cap.(a) <- net.cap.(a) - d;
            let rev = a lxor 1 in
            net.cap.(rev) <- net.cap.(rev) + d;
            pushed := d
          end
          else it.(v) <- net.next.(a)
        end
        else it.(v) <- net.next.(a)
      done;
      !pushed
    end
  in
  let flow = ref 0 in
  while build_levels () do
    Array.blit net.head 0 it 0 net.n;
    let f = ref (dfs src infinity) in
    while !f > 0 do
      flow := !flow + !f;
      f := dfs src infinity
    done
  done;
  !flow

let min_cut_side net ~src =
  let side = Bitset.create net.n in
  let q = Queue.create () in
  Bitset.add side src;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let a = ref net.head.(v) in
    while !a >= 0 do
      let w = net.to_.(!a) in
      if net.cap.(!a) > 0 && not (Bitset.mem side w) then begin
        Bitset.add side w;
        Queue.add w q
      end;
      a := net.next.(!a)
    done
  done;
  side

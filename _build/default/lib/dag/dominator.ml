let is_dominator g d v0 =
  let reached = Reach.from_avoiding g ~avoid:d (Dag.sources g) in
  Bitset.inter_into reached v0;
  Bitset.is_empty reached

(* Minimum vertex cut between the sources and v0 by node splitting:
   vertex v becomes arc v_in -> v_out of capacity 1; original edges get
   infinite capacity; a super-source feeds every DAG source's _in side
   and every v0 member's _out side drains to a super-sink.  Routing the
   super-sink from v_out (not v_in) lets the cut pick v itself, matching
   the path-includes-endpoints convention of Definition 5.1. *)
let build_cut_network g v0 =
  let n = Dag.n_nodes g in
  let v_in v = 2 * v and v_out v = (2 * v) + 1 in
  let src = 2 * n and dst = (2 * n) + 1 in
  let net = Flow.create ((2 * n) + 2) in
  for v = 0 to n - 1 do
    Flow.add_edge net (v_in v) (v_out v) 1
  done;
  Dag.iter_edges (fun _ u v -> Flow.add_edge net (v_out u) (v_in v) Flow.infinity) g;
  List.iter (fun s -> Flow.add_edge net src (v_in s) Flow.infinity) (Dag.sources g);
  Bitset.iter (fun v -> Flow.add_edge net (v_out v) dst Flow.infinity) v0;
  (net, src, dst)

let min_dominator_size g v0 =
  if Bitset.is_empty v0 then 0
  else
    let net, src, dst = build_cut_network g v0 in
    Flow.max_flow net ~src ~dst

let min_dominator g v0 =
  let n = Dag.n_nodes g in
  let dom = Bitset.create n in
  if Bitset.is_empty v0 then dom
  else begin
    let net, src, dst = build_cut_network g v0 in
    let (_ : int) = Flow.max_flow net ~src ~dst in
    let side = Flow.min_cut_side net ~src in
    (* v is in the cut iff v_in is on the source side but v_out is not *)
    for v = 0 to n - 1 do
      if Bitset.mem side (2 * v) && not (Bitset.mem side ((2 * v) + 1)) then
        Bitset.add dom v
    done;
    dom
  end

let terminal_set g v0 =
  let t = Bitset.create (Dag.n_nodes g) in
  Bitset.iter
    (fun v ->
      let has_succ_inside = Dag.fold_succ (fun w acc -> acc || Bitset.mem v0 w) g v false in
      if not has_succ_inside then Bitset.add t v)
    v0;
  t

let start_nodes g e0 =
  let s = Bitset.create (Dag.n_nodes g) in
  Bitset.iter (fun e -> Bitset.add s (Dag.edge_src g e)) e0;
  s

let is_edge_dominator g d e0 = is_dominator g d (start_nodes g e0)

let min_edge_dominator_size g e0 = min_dominator_size g (start_nodes g e0)

let edge_terminal_set g e0 =
  let n = Dag.n_nodes g in
  let has_in = Bitset.create n and has_out = Bitset.create n in
  Bitset.iter
    (fun e ->
      Bitset.add has_out (Dag.edge_src g e);
      Bitset.add has_in (Dag.edge_dst g e))
    e0;
  Bitset.diff_into has_in has_out;
  has_in

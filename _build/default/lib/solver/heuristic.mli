(** Heuristic pebblers: valid strategies (hence upper bounds on the
    optimum) at scales where exact search is impossible.

    Both pebblers process the DAG in topological order and manage fast
    memory with a pluggable eviction {!policy}; the default is Belady's
    rule (evict the value whose next use is farthest in the future),
    the classic offline caching policy.  LRU and FIFO are provided for
    ablation studies — they model what an online scheduler could do
    without knowledge of the future. *)

type policy =
  | Belady  (** farthest next use first (offline-optimal flavor) *)
  | Lru  (** least recently touched first *)
  | Fifo  (** oldest cache resident first *)

val rbp : ?policy:policy -> r:int -> Prbp_dag.Dag.t -> Prbp_pebble.Move.R.t list
(** One-shot RBP strategy.  Requires [r ≥ Δin + 1] (else
    [Invalid_argument]): each node is computed once, with its inputs
    loaded into fast memory as needed; evicted values are saved first
    when they will be used again (or are unsaved sinks). *)

val prbp : ?policy:policy -> r:int -> Prbp_dag.Dag.t -> Prbp_pebble.Move.P.t list
(** One-shot PRBP strategy; works for any [r ≥ 2] and any DAG.  Each
    target node is aggregated input by input; the current target holds
    one (dark) red pebble and the remaining capacity caches inputs.
    Completed values are kept resident while capacity allows, saved
    lazily on eviction, and dark values consumed entirely while
    resident are deleted for free. *)

val rbp_cost : ?policy:policy -> r:int -> Prbp_dag.Dag.t -> int
(** Cost of {!rbp}, certified by replaying it through the rule-checking
    simulator. *)

val prbp_cost : ?policy:policy -> r:int -> Prbp_dag.Dag.t -> int
(** Cost of {!prbp}, certified by the simulator. *)

val prbp_greedy : r:int -> Prbp_dag.Dag.t -> Prbp_pebble.Move.P.t list
(** Greedy {e edge} scheduler: repeatedly marks the cheapest currently
    markable edge (0 loads before 1 before 2), so partially computed
    targets accumulate opportunistically instead of demanding all
    inputs in sequence — the scheduling freedom that defines PRBP.
    On aggregation-heavy DAGs (matvec, SpMV) this reaches the trivial
    cost where the node-major pebbler cannot.  O(m²) edge scans: meant
    for DAGs up to a few thousand edges. *)

val prbp_greedy_cost : r:int -> Prbp_dag.Dag.t -> int

val prbp_best : r:int -> Prbp_dag.Dag.t -> Prbp_pebble.Move.P.t list
(** The cheaper of {!prbp} (Belady) and {!prbp_greedy}. *)

val prbp_best_cost : r:int -> Prbp_dag.Dag.t -> int

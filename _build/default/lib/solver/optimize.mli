(** Strategy post-optimization: shrink a valid pebbling's I/O by
    deleting moves that the rule checker proves unnecessary.

    Heuristic pebblers (and hand-written strategies) sometimes emit
    saves that are never read back, loads of values whose consumers
    were reordered away, or whole save/load round-trips made redundant
    by later edits.  The optimizer greedily attempts to delete each
    I/O move (most recent first) and keeps any deletion after which the
    remaining sequence still replays to a complete pebbling — deleting
    a free move can never help cost, so only loads and saves are
    tried.  The result is a valid strategy whose cost is less than or
    equal to the input's; the procedure is a cleanup pass, not a search
    for the optimum.

    Cost: O(#I/O-moves) full replays, so quadratic-ish in strategy
    length — fine for strategies up to a few thousand moves. *)

val rbp :
  Prbp_pebble.Rbp.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.R.t list ->
  Prbp_pebble.Move.R.t list
(** @raise Failure if the input is not a valid complete pebbling. *)

val prbp :
  Prbp_pebble.Prbp.config ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.P.t list ->
  Prbp_pebble.Move.P.t list

module Dag = Prbp_dag.Dag
module Rbp = Prbp_pebble.Rbp
module RM = Prbp_pebble.Move.R

exception Too_large of int

type state = { red : int; blue : int; comp : int }

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

(* Iterate the set bits of a mask. *)
let iter_bits f mask =
  let m = ref mask in
  while !m <> 0 do
    let b = !m land - !m in
    let rec lg k x = if x = 1 then k else lg (k + 1) (x lsr 1) in
    f (lg 0 b);
    m := !m lxor b
  done

type ctx = {
  cfg : Rbp.config;
  eager_deletes : bool;
  n : int;
  pred_mask : int array;
  succ_mask : int array;
  sinks : int;
  sources : int;
  max_states : int;
  want_strategy : bool;
  dist : (state, int) Hashtbl.t;
  parent : (state, state * RM.t) Hashtbl.t;
  dq : (state * int) Deque01.t;
}

let relax ctx prev ~d_prev m st cost =
  match Hashtbl.find_opt ctx.dist st with
  | Some d when d <= cost -> ()
  | _ ->
      if Hashtbl.length ctx.dist >= ctx.max_states then
        raise (Too_large ctx.max_states);
      Hashtbl.replace ctx.dist st cost;
      if ctx.want_strategy then Hashtbl.replace ctx.parent st (prev, m);
      if cost = d_prev then Deque01.push_front ctx.dq (st, cost)
      else Deque01.push_back ctx.dq (st, cost)

(* A value may be deleted (or need not be saved) once it can never be
   used again: all successors computed and, for sinks, already blue.
   Only sound in the one-shot game. *)
let obsolete ctx st v =
  ctx.cfg.Rbp.one_shot
  && ctx.succ_mask.(v) land lnot st.comp = 0
  && (ctx.sinks land (1 lsl v) = 0 || st.blue land (1 lsl v) <> 0)

let expand ctx st d =
  let bit v = 1 lsl v in
  let n_red = popcount st.red in
  for v = 0 to ctx.n - 1 do
    let b = bit v in
    (* LOAD *)
    if
      st.blue land b <> 0
      && st.red land b = 0
      && n_red < ctx.cfg.Rbp.r
      && not (obsolete ctx st v)
    then relax ctx st ~d_prev:d (RM.Load v) { st with red = st.red lor b } (d + 1);
    (* SAVE; in the no-delete variant saving an already-blue node is
       meaningful (it is the only way to release the red pebble) *)
    if
      st.red land b <> 0
      && (st.blue land b = 0 || ctx.cfg.Rbp.no_delete)
    then begin
      let red' = if ctx.cfg.Rbp.no_delete then st.red lxor b else st.red in
      if ctx.cfg.Rbp.no_delete || not (obsolete ctx st v) then
        relax ctx st ~d_prev:d (RM.Save v)
          { st with red = red'; blue = st.blue lor b }
          (d + 1)
    end;
    (* COMPUTE *)
    if
      ctx.sources land b = 0
      && st.red land b = 0
      && (not (ctx.cfg.Rbp.one_shot && st.comp land b <> 0))
      && st.red land ctx.pred_mask.(v) = ctx.pred_mask.(v)
    then begin
      let comp' = if ctx.cfg.Rbp.one_shot then st.comp lor b else st.comp in
      if n_red < ctx.cfg.Rbp.r then
        relax ctx st ~d_prev:d (RM.Compute v)
          { st with red = st.red lor b; comp = comp' }
          d;
      (* SLIDE *)
      if ctx.cfg.Rbp.sliding then
        iter_bits
          (fun u ->
            relax ctx st ~d_prev:d
              (RM.Slide (u, v))
              { st with red = st.red lxor bit u lor b; comp = comp' }
              d)
          ctx.pred_mask.(v)
    end;
    (* DELETE.  Deleting an unsaved, still-needed value is a dead end
       in the one-shot game (pruned); deleting a recoverable value
       (blue-backed or re-computable) is postponed until the cache is
       actually full — extra cached copies only ever consume capacity,
       so this normalization preserves optimality.  Obsolete values are
       cleaned up eagerly for free.  [eager_deletes] disables the
       capacity normalization (for ablation measurements only). *)
    if
      (not ctx.cfg.Rbp.no_delete)
      && st.red land b <> 0
      && (obsolete ctx st v
         || ((ctx.eager_deletes || n_red = ctx.cfg.Rbp.r)
            && ((not ctx.cfg.Rbp.one_shot) || st.blue land b <> 0)))
    then relax ctx st ~d_prev:d (RM.Delete v) { st with red = st.red lxor b } d
  done

let search ?(max_states = 5_000_000) ?(eager_deletes = false) ~want_strategy
    cfg g =
  let n = Dag.n_nodes g in
  if n > 62 then invalid_arg "Exact_rbp: at most 62 nodes";
  let mask_of fold v = fold (fun u acc -> acc lor (1 lsl u)) g v 0 in
  let ctx =
    {
      cfg;
      eager_deletes;
      n;
      pred_mask = Array.init n (mask_of Dag.fold_pred);
      succ_mask = Array.init n (mask_of Dag.fold_succ);
      sinks = List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sinks g);
      sources =
        List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 (Dag.sources g);
      max_states;
      want_strategy;
      dist = Hashtbl.create 4096;
      parent = Hashtbl.create (if want_strategy then 4096 else 0);
      dq = Deque01.create ();
    }
  in
  let init =
    { red = 0; blue = ctx.sources; comp = 0 }
  in
  Hashtbl.replace ctx.dist init 0;
  Deque01.push_back ctx.dq (init, 0);
  let result = ref None in
  (try
     let continue = ref true in
     while !continue do
       match Deque01.pop_front ctx.dq with
       | None -> continue := false
       | Some (st, d) ->
           if Hashtbl.find ctx.dist st = d then
             if st.blue land ctx.sinks = ctx.sinks then begin
               result := Some (st, d);
               continue := false
             end
             else expand ctx st d
     done
   with Too_large _ as e ->
     Hashtbl.reset ctx.dist;
     raise e);
  let explored = Hashtbl.length ctx.dist in
  match !result with
  | None -> None
  | Some (goal, d) ->
      if not want_strategy then Some (d, [], explored)
      else begin
        let rec back st acc =
          if st = init then acc
          else
            let prev, m = Hashtbl.find ctx.parent st in
            back prev (m :: acc)
        in
        Some (d, back goal [], explored)
      end

let opt_opt ?max_states cfg g =
  Option.map (fun (d, _, _) -> d) (search ?max_states ~want_strategy:false cfg g)

let opt_stats ?max_states ?eager_deletes cfg g =
  Option.map
    (fun (d, _, states) -> (d, states))
    (search ?max_states ?eager_deletes ~want_strategy:false cfg g)

let opt ?max_states cfg g =
  match opt_opt ?max_states cfg g with
  | Some d -> d
  | None -> failwith "Exact_rbp.opt: no valid pebbling exists"

let opt_with_strategy ?max_states cfg g =
  Option.map
    (fun (d, moves, _) -> (d, moves))
    (search ?max_states ~want_strategy:true cfg g)

(** The paper's constructive pebbling strategies, as explicit move
    lists.

    Every upper-bound argument in the paper is reproduced here as a
    function emitting the concrete moves; the test-suite replays each
    through the rule-checking engines, so both validity and the claimed
    cost are machine-checked.  Functions are named after the statement
    they witness. *)

module R := Prbp_pebble.Move.R
module P := Prbp_pebble.Move.P

(** {1 Figure 1 / Propositions 4.2 and 4.7} *)

val fig1_rbp : Prbp_graphs.Fig1.ids -> R.t list
(** The Appendix A.1 RBP pebbling: cost 3 at [r = 4]. *)

val fig1_prbp : Prbp_graphs.Fig1.ids -> P.t list
(** The Appendix A.1 PRBP pebbling: cost 2 at [r = 4]. *)

val fig1_chained_prbp : copies:int -> P.t list
(** Cost-2 PRBP pebbling of {!Prbp_graphs.Fig1.chained} at [r = 4]
    (Proposition 4.7): gadgets are traversed with dark pebbles carried
    on the merged pair. *)

val fig1_chained_rbp : copies:int -> R.t list
(** The best RBP pebbling of the chain at [r = 4]: cost [2·copies + 1]
    (one extra I/O for the first gadget by re-loading the source, two
    per later gadget for a save/reload of the merged node). *)

(** {1 Proposition 4.3 — matrix–vector multiplication} *)

val matvec_prbp : Prbp_graphs.Matvec.t -> P.t list
(** The streaming strategy: the [m] partial outputs stay dark in fast
    memory, inputs stream through 3 extra pebbles.  Cost [m² + 2m]
    (trivial = optimal) with [r = m + 3]. *)

(** {1 Section 4.2.1 — zipper gadget} *)

val zipper_rbp : Prbp_graphs.Zipper.t -> R.t list
(** Group-swapping strategy at [r = d + 2]: cost [d·len + 1]. *)

val zipper_prbp : Prbp_graphs.Zipper.t -> P.t list
(** Partial-value strategy at [r = d + 2]: even chain nodes are
    pre-aggregated from group A, saved, and reloaded during one
    traversal with group B resident.
    Cost [2d + 1 + 2(⌈len/2⌉ − 1)]. *)

val zipper_rbp_cost : d:int -> len:int -> int

val zipper_prbp_cost : d:int -> len:int -> int

(** {1 Section 4.2.2 / Appendix A.2 — k-ary trees} *)

val tree_rbp : Prbp_graphs.Tree.t -> R.t list
(** The optimal RBP strategy at [r = k + 1]: cost
    {!Prbp_graphs.Tree.rbp_opt}. *)

val tree_prbp : Prbp_graphs.Tree.t -> P.t list
(** The optimal PRBP strategy at [r = k + 1]: subtrees of height ≤ k
    are aggregated for free; cost {!Prbp_graphs.Tree.prbp_opt}. *)

(** {1 Section 4.2.3 — pebble-collection gadget} *)

val collect_full : Prbp_graphs.Collect.t -> R.t list
(** Trivial-cost pebbling holding all [d] sources red ([r = d + 2]). *)

val collect_capped : Prbp_graphs.Collect.t -> P.t list
(** A PRBP pebbling that never holds more than [d + 1] red pebbles,
    paying 3 I/Os per [d]-segment of the chain — within a factor 6 of
    the Proposition 4.6 lower bound [len/2d], witnessing its
    tightness up to constants. *)

val collect_capped_cost : d:int -> len:int -> int

(** {1 Lemma 5.4 construction} *)

val lemma54_prbp : Prbp_graphs.Lemma54.t -> P.t list
(** Trivial-cost (8) pebbling at [r = 3]. *)

(** {1 Theorem 6.10 — tiled matrix multiplication} *)

val matmul_tiled :
  ti:int -> tk:int -> tj:int -> Prbp_graphs.Matmul.t -> P.t list
(** Blocked outer-product strategy with tiles [ti×tk] of A, [tk×tj] of
    B and a resident [ti×tj] partial block of C; needs
    [r ≥ ti·tk + tk·tj + ti·tj + 1].  I/O cost
    [Σ_blocks (|A tile| + |B tile|) + m1·m3 + m1·m2 ... ] — measured
    by the simulator; asymptotically [Θ(m1·m2·m3/√r)] with square
    tiles [t = Θ(√(r/3))], matching the Theorem 6.10 lower bound. *)

val matmul_tile_for : r:int -> m1:int -> m2:int -> m3:int -> int * int * int
(** A near-square tile choice [(ti, tk, tj)] valid for the given [r]. *)

(** {1 Theorem 6.11 — attention tiling} *)

val attention_tiles : r:int -> m:int -> d:int -> int * int * int
(** Tile choice for the [Q·K^T] DAG: in the large-cache regime
    ([r ≥ 3d²]) rectangular row/column blocks of height
    [b ≈ (√(d² + r) − d)] with the full inner dimension [d], achieving
    [Θ(m²·d²/r)] I/O; otherwise the square-tile matmul choice,
    achieving [Θ(m²·d/√r)].  Feed to {!matmul_tiled}. *)

(** {1 Theorem 6.9 — blocked FFT} *)

val fft_blocked : r:int -> Prbp_graphs.Fft.t -> R.t list
(** Sub-butterfly blocking: layers are processed in groups of
    [k = ⌊log₂(r−2)⌋], each group decomposing into independent
    [2^k]-input butterflies computed entirely in fast memory.  Cost
    [2m·⌈log₂ m / k⌉ ± boundary] = [Θ(m·log m / log r)], matching the
    Theorem 6.9 lower bound.  Valid in RBP (and via
    {!Prbp_pebble.Move.rbp_to_prbp} in PRBP). *)

(** {1 Sparse matrix–vector multiplication (Section 8.2 outlook)} *)

val spmv_prbp : Prbp_graphs.Spmv.t -> P.t list
(** Column-streaming strategy generalizing {!matvec_prbp} to arbitrary
    sparsity patterns: the [rows] partial outputs stay dark in fast
    memory while entries stream through 3 pebbles.  Achieves the
    trivial cost [nnz + cols + rows] with [r = rows + 3]. *)

val horner_prbp : Prbp_dag.Dag.t -> P.t list
(** Pebbles {!Prbp_graphs.Basic.horner} with [r = 3] at the trivial
    cost: the chain value is aggregated in place, [x] staying resident
    only while needed (re-loaded never; it is a single source). *)

(** {1 Multiprocessor strategies (Section 8.1 outlook)} *)

val matvec_prbp_multi :
  p:int -> Prbp_graphs.Matvec.t -> Prbp_pebble.Multi.Move.prbp list
(** Row-partitioned parallel streaming: processor [q] keeps the partial
    outputs of rows [i ≡ q (mod p)] dark and streams its share of each
    column; every processor loads each [x_j] itself, so the total
    communication is [m² + (p+1)·m] — the duplicated input loads are
    the (exact) price of parallelism here.  Needs per-processor
    capacity [⌈m/p⌉ + 3]. *)

val fan_in_handoff :
  halves:int -> Prbp_dag.Dag.t -> Prbp_pebble.Multi.Move.prbp list
(** Aggregate a fan-in across [halves] processors sequentially: each
    processor folds its block of sources into the partial value and
    hands it to the next through slow memory.  Works at per-processor
    capacity 2 and costs exactly [d + 1 + 2·(halves − 1)]: each handoff
    is one save plus one reload. *)

module Dag = Prbp_dag.Dag
module Prbp = Prbp_pebble.Prbp
module PM = Prbp_pebble.Move.P

exception Too_large of int

(* Pebble states are packed 2 bits per node:
   00 = no pebble, 01 = blue, 11 = blue + light red, 10 = dark red.
   Bit 0 of the pair = "has blue", bit 1 = "has red": both game
   predicates become single-mask tests. *)
let st_none = 0
and st_blue = 1
and st_dark = 2
and st_bl = 3

type state = { pack : int; marked : int }

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

type ctx = {
  cfg : Prbp.config;
  eager_deletes : bool;
  n : int;
  m : int;
  esrc : int array;
  edst : int array;
  in_mask : int array;  (* per node: mask of in-edge ids *)
  out_mask : int array;
  red_bits : int;  (* bit 2v+1 for every node v *)
  sink_mask : int;  (* node mask *)
  source_mask : int;
  full_edges : int;
  max_states : int;
  want_strategy : bool;
  dist : (state, int) Hashtbl.t;
  parent : (state, state * PM.t) Hashtbl.t;
  dq : (state * int) Deque01.t;
}

let node_state st v = (st.pack lsr (2 * v)) land 3

let with_node_state st v s =
  { st with pack = st.pack land lnot (3 lsl (2 * v)) lor (s lsl (2 * v)) }

let relax ctx prev ~d_prev m st cost =
  match Hashtbl.find_opt ctx.dist st with
  | Some d when d <= cost -> ()
  | _ ->
      if Hashtbl.length ctx.dist >= ctx.max_states then
        raise (Too_large ctx.max_states);
      Hashtbl.replace ctx.dist st cost;
      if ctx.want_strategy then Hashtbl.replace ctx.parent st (prev, m);
      if cost = d_prev then Deque01.push_front ctx.dq (st, cost)
      else Deque01.push_back ctx.dq (st, cost)

let expand ctx st d =
  let n_red = popcount (st.pack land ctx.red_bits) in
  for v = 0 to ctx.n - 1 do
    let s = node_state st v in
    let fully_used = ctx.out_mask.(v) land lnot st.marked = 0 in
    (* LOAD: blue only -> blue+light; useless once all out-edges are
       marked (covers sinks: they are already blue) *)
    if s = st_blue && n_red < ctx.cfg.Prbp.r && not fully_used then
      relax ctx st ~d_prev:d (PM.Load v) (with_node_state st v st_bl) (d + 1);
    (* SAVE: dark -> blue+light; useful only for sinks or while some
       out-edge is still unmarked *)
    if
      s = st_dark
      && ((not fully_used) || ctx.sink_mask land (1 lsl v) <> 0)
    then
      relax ctx st ~d_prev:d (PM.Save v) (with_node_state st v st_bl) (d + 1);
    (* DELETE light red: a cached copy of a value that is also in slow
       memory only ever consumes capacity, so deleting it is postponed
       until the cache is full (a normalization that preserves
       optimality and shrinks the search space); fully-used copies are
       cleaned up eagerly for free *)
    if
      s = st_bl
      && (ctx.eager_deletes || n_red = ctx.cfg.Prbp.r || fully_used)
    then
      relax ctx st ~d_prev:d (PM.Delete v) (with_node_state st v st_blue) d;
    (* DELETE dark red: only when fully used; deleting a dark sink
       loses its final value for good — a dead end we prune *)
    if
      s = st_dark
      && (not ctx.cfg.Prbp.no_delete)
      && fully_used
      && ctx.sink_mask land (1 lsl v) = 0
    then relax ctx st ~d_prev:d (PM.Delete v) (with_node_state st v st_none) d;
    (* CLEAR (re-computation variant): drop all pebbles from an
       internal node and unmark its in-edges, allowing the value to be
       rebuilt from scratch later.  Skipped when it would be a no-op. *)
    if
      ctx.cfg.Prbp.recompute
      && ctx.source_mask land (1 lsl v) = 0
      && ctx.sink_mask land (1 lsl v) = 0
      && (s <> st_none || ctx.in_mask.(v) land st.marked <> 0)
    then
      relax ctx st ~d_prev:d (PM.Clear v)
        {
          (with_node_state st v st_none) with
          marked = st.marked land lnot ctx.in_mask.(v);
        }
        d
  done;
  (* PARTIAL COMPUTE on each unmarked edge *)
  let unmarked = ctx.full_edges land lnot st.marked in
  let rest = ref unmarked in
  while !rest <> 0 do
    let b = !rest land - !rest in
    rest := !rest lxor b;
    let rec lg k x = if x = 1 then k else lg (k + 1) (x lsr 1) in
    let e = lg 0 b in
    let u = ctx.esrc.(e) and v = ctx.edst.(e) in
    let su = node_state st u in
    if
      su land 2 <> 0 (* u has red *)
      && ctx.in_mask.(u) land lnot st.marked = 0 (* u fully computed *)
    then begin
      let sv = node_state st v in
      if sv <> st_blue && (sv <> st_none || n_red < ctx.cfg.Prbp.r) then
        relax ctx st ~d_prev:d
          (PM.Compute (u, v))
          { (with_node_state st v st_dark) with marked = st.marked lor b }
          d
    end
  done

let search ?(max_states = 5_000_000) ?(eager_deletes = false) ~want_strategy
    cfg g =
  let n = Dag.n_nodes g and m = Dag.n_edges g in
  if n > 31 then invalid_arg "Exact_prbp: at most 31 nodes";
  if m > 62 then invalid_arg "Exact_prbp: at most 62 edges";
  let in_mask = Array.make n 0 and out_mask = Array.make n 0 in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  Dag.iter_edges
    (fun e u v ->
      esrc.(e) <- u;
      edst.(e) <- v;
      out_mask.(u) <- out_mask.(u) lor (1 lsl e);
      in_mask.(v) <- in_mask.(v) lor (1 lsl e))
    g;
  let red_bits = ref 0 and sink_mask = ref 0 and init_pack = ref 0 in
  let source_mask = ref 0 in
  for v = 0 to n - 1 do
    red_bits := !red_bits lor (1 lsl ((2 * v) + 1));
    if Dag.is_sink g v then sink_mask := !sink_mask lor (1 lsl v);
    if Dag.is_source g v then begin
      source_mask := !source_mask lor (1 lsl v);
      init_pack := !init_pack lor (st_blue lsl (2 * v))
    end
  done;
  let ctx =
    {
      cfg;
      eager_deletes;
      n;
      m;
      esrc;
      edst;
      in_mask;
      out_mask;
      red_bits = !red_bits;
      sink_mask = !sink_mask;
      source_mask = !source_mask;
      full_edges = (if m = 0 then 0 else (1 lsl m) - 1);
      max_states;
      want_strategy;
      dist = Hashtbl.create 4096;
      parent = Hashtbl.create (if want_strategy then 4096 else 0);
      dq = Deque01.create ();
    }
  in
  let init = { pack = !init_pack; marked = 0 } in
  let is_goal st =
    st.marked = ctx.full_edges
    &&
    let ok = ref true in
    for v = 0 to n - 1 do
      if ctx.sink_mask land (1 lsl v) <> 0 && node_state st v land 1 = 0 then
        ok := false
    done;
    !ok
  in
  Hashtbl.replace ctx.dist init 0;
  Deque01.push_back ctx.dq (init, 0);
  let result = ref None in
  (try
     let continue = ref true in
     while !continue do
       match Deque01.pop_front ctx.dq with
       | None -> continue := false
       | Some (st, d) ->
           if Hashtbl.find ctx.dist st = d then
             if is_goal st then begin
               result := Some (st, d);
               continue := false
             end
             else expand ctx st d
     done
   with Too_large _ as e ->
     Hashtbl.reset ctx.dist;
     raise e);
  let explored = Hashtbl.length ctx.dist in
  match !result with
  | None -> None
  | Some (goal, d) ->
      if not want_strategy then Some (d, [], explored)
      else begin
        let rec back st acc =
          if st = init then acc
          else
            let prev, mv = Hashtbl.find ctx.parent st in
            back prev (mv :: acc)
        in
        Some (d, back goal [], explored)
      end

let opt_opt ?max_states cfg g =
  Option.map (fun (d, _, _) -> d) (search ?max_states ~want_strategy:false cfg g)

let opt_stats ?max_states ?eager_deletes cfg g =
  Option.map
    (fun (d, _, states) -> (d, states))
    (search ?max_states ?eager_deletes ~want_strategy:false cfg g)

let opt ?max_states cfg g =
  match opt_opt ?max_states cfg g with
  | Some d -> d
  | None -> failwith "Exact_prbp.opt: no valid pebbling exists"

let opt_with_strategy ?max_states cfg g =
  Option.map
    (fun (d, moves, _) -> (d, moves))
    (search ?max_states ~want_strategy:true cfg g)

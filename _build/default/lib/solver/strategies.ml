module Dag = Prbp_dag.Dag
module R = Prbp_pebble.Move.R
module P = Prbp_pebble.Move.P
module Fig1 = Prbp_graphs.Fig1
module Matvec = Prbp_graphs.Matvec
module Zipper = Prbp_graphs.Zipper
module Tree = Prbp_graphs.Tree
module Collect = Prbp_graphs.Collect
module Lemma54 = Prbp_graphs.Lemma54
module Matmul = Prbp_graphs.Matmul
module Fft = Prbp_graphs.Fft

(* ------------------------------------------------------------------ *)
(* Figure 1 (Appendix A.1)                                            *)

let fig1_rbp (i : Fig1.ids) =
  R.
    [
      Load i.u0; Compute i.u1; Delete i.u0; Compute i.w1; Compute i.w2;
      Compute i.w3; Delete i.w1; Delete i.w2; Compute i.w4; Delete i.w3;
      Delete i.u1; Load i.u0; Compute i.u2; Delete i.u0; Compute i.v1;
      Compute i.v2; Delete i.w4; Delete i.u2; Compute i.v0; Save i.v0;
    ]

let fig1_prbp (i : Fig1.ids) =
  P.
    [
      Load i.u0; Compute (i.u0, i.u1); Compute (i.u0, i.u2); Delete i.u0;
      Compute (i.u1, i.w1); Compute (i.w1, i.w3); Delete i.w1;
      Compute (i.u1, i.w2); Compute (i.w2, i.w3); Delete i.w2;
      Compute (i.u1, i.w4); Compute (i.w3, i.w4); Delete i.w3; Delete i.u1;
      Compute (i.w4, i.v1); Compute (i.w4, i.v2); Compute (i.u2, i.v1);
      Compute (i.u2, i.v2); Delete i.w4; Delete i.u2; Compute (i.v1, i.v0);
      Compute (i.v2, i.v0); Delete i.v1; Delete i.v2; Save i.v0;
    ]

(* Node numbering of Fig1.chained, mirrored here: u0 = 0, merged pairs,
   then per-copy w-blocks, v0 last. *)
let chained_w ~copies j i = (2 * copies) + 3 + (4 * i) + (j - 1)

let fig1_chained_prbp ~copies =
  if copies < 1 then invalid_arg "fig1_chained_prbp";
  let u0 = 0 and v0 = (6 * copies) + 4 - 1 in
  let u1_0, u2_0 = Fig1.chained_u1u2 ~copies ~copy:0 in
  let prelude =
    P.[ Load u0; Compute (u0, u1_0); Compute (u0, u2_0); Delete u0 ]
  in
  let gadget i =
    let u1, u2 = Fig1.chained_u1u2 ~copies ~copy:i in
    let v1, v2 = Fig1.chained_u1u2 ~copies ~copy:(i + 1) in
    let w j = chained_w ~copies j i in
    P.
      [
        Compute (u1, w 1); Compute (w 1, w 3); Delete (w 1);
        Compute (u1, w 2); Compute (w 2, w 3); Delete (w 2);
        Compute (u1, w 4); Compute (w 3, w 4); Delete (w 3); Delete u1;
        Compute (w 4, v1); Compute (w 4, v2); Compute (u2, v1);
        Compute (u2, v2); Delete (w 4); Delete u2;
      ]
  in
  let v1l, v2l = Fig1.chained_u1u2 ~copies ~copy:copies in
  let finale =
    P.
      [
        Compute (v1l, v0); Compute (v2l, v0); Delete v1l; Delete v2l;
        Save v0;
      ]
  in
  prelude @ List.concat_map gadget (List.init copies (fun i -> i)) @ finale

let fig1_chained_rbp ~copies =
  if copies < 1 then invalid_arg "fig1_chained_rbp";
  let u0 = 0 and v0 = (6 * copies) + 4 - 1 in
  let gadget i =
    let u1, u2 = Fig1.chained_u1u2 ~copies ~copy:i in
    let v1, v2 = Fig1.chained_u1u2 ~copies ~copy:(i + 1) in
    let w j = chained_w ~copies j i in
    (* On entry: red = {u1} for copy 0 (u2 recomputed later from u0), or
       {u1, u2} for later copies (u2 saved and reloaded around w3). *)
    if i = 0 then
      R.
        [
          Compute (w 1); Compute (w 2); Compute (w 3); Delete (w 1);
          Delete (w 2); Compute (w 4); Delete (w 3); Delete u1; Load u0;
          Compute u2; Delete u0; Compute v1; Compute v2; Delete (w 4);
          Delete u2;
        ]
    else
      R.
        [
          Save u2; Delete u2; Compute (w 1); Compute (w 2); Compute (w 3);
          Delete (w 1); Delete (w 2); Compute (w 4); Delete (w 3); Delete u1;
          Load u2; Compute v1; Compute v2; Delete (w 4); Delete u2;
        ]
  in
  let u1_0, _ = Fig1.chained_u1u2 ~copies ~copy:0 in
  R.[ Load u0; Compute u1_0; Delete u0 ]
  @ List.concat_map gadget (List.init copies (fun i -> i))
  @ R.[ Compute v0; Save v0 ]

(* ------------------------------------------------------------------ *)
(* Proposition 4.3: streaming matvec                                   *)

let matvec_prbp (mv : Matvec.t) =
  let m = mv.Matvec.m in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  for j = 0 to m - 1 do
    emit (P.Load (Matvec.x mv j));
    for i = 0 to m - 1 do
      let a = Matvec.a mv i j and p = Matvec.p mv i j in
      emit (P.Load a);
      emit (P.Compute (a, p));
      emit (P.Delete a);
      emit (P.Compute (Matvec.x mv j, p));
      emit (P.Compute (p, Matvec.y mv i));
      emit (P.Delete p)
    done;
    emit (P.Delete (Matvec.x mv j))
  done;
  for i = 0 to m - 1 do
    emit (P.Save (Matvec.y mv i));
    emit (P.Delete (Matvec.y mv i))
  done;
  List.rev !moves

(* ------------------------------------------------------------------ *)
(* Zipper gadget (Section 4.2.1)                                       *)

let zipper_group z i = if i mod 2 = 0 then Zipper.group_a z else Zipper.group_b z

let zipper_rbp (z : Zipper.t) =
  let chain = Array.of_list (Zipper.chain z) in
  let len = z.Zipper.len in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  List.iter (fun a -> emit (R.Load a)) (Zipper.group_a z);
  emit (R.Compute chain.(0));
  for i = 1 to len - 1 do
    List.iter (fun u -> emit (R.Delete u)) (zipper_group z (i - 1));
    List.iter (fun u -> emit (R.Load u)) (zipper_group z i);
    emit (R.Compute chain.(i));
    emit (R.Delete chain.(i - 1))
  done;
  List.iter (fun u -> emit (R.Delete u)) (zipper_group z (len - 1));
  emit (R.Save chain.(len - 1));
  List.rev !moves

let zipper_prbp (z : Zipper.t) =
  let chain = Array.of_list (Zipper.chain z) in
  let len = z.Zipper.len in
  let a = Zipper.group_a z and b = Zipper.group_b z in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  (* phase 1: group A resident; pre-aggregate every even chain node *)
  List.iter (fun u -> emit (P.Load u)) a;
  let i = ref 0 in
  while !i < len do
    List.iter (fun u -> emit (P.Compute (u, chain.(!i)))) a;
    if !i > 0 then begin
      emit (P.Save chain.(!i));
      emit (P.Delete chain.(!i))
    end;
    (* chain.(0) is kept dark through the group switch *)
    i := !i + 2
  done;
  List.iter (fun u -> emit (P.Delete u)) a;
  (* phase 2: group B resident; one traversal of the chain *)
  List.iter (fun u -> emit (P.Load u)) b;
  for i = 1 to len - 1 do
    if i mod 2 = 1 then
      List.iter (fun u -> emit (P.Compute (u, chain.(i)))) b
    else emit (P.Load chain.(i));
    emit (P.Compute (chain.(i - 1), chain.(i)));
    emit (P.Delete chain.(i - 1))
  done;
  emit (P.Save chain.(len - 1));
  emit (P.Delete chain.(len - 1));
  List.iter (fun u -> emit (P.Delete u)) b;
  List.rev !moves

let zipper_rbp_cost ~d ~len = (d * len) + 1

let zipper_prbp_cost ~d ~len = (2 * d) + 1 + (2 * (((len + 1) / 2) - 1))

(* ------------------------------------------------------------------ *)
(* k-ary trees (Appendix A.2)                                          *)

let tree_rbp (t : Tree.t) =
  let k = t.Tree.k in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  (* compute the subtree rooted at (level, idx); postcondition: the
     node is red, all other pebbles of the subtree are gone *)
  let rec go level idx =
    let v = Tree.node t ~level idx in
    let h = t.Tree.depth - level in
    let child c = (k * idx) + c in
    if h = 0 then emit (R.Load v)
    else if h = 1 then begin
      (* children are leaves: hold all k of them at once *)
      for c = 0 to k - 1 do
        emit (R.Load (Tree.node t ~level:(level + 1) (child c)))
      done;
      emit (R.Compute v);
      for c = 0 to k - 1 do
        emit (R.Delete (Tree.node t ~level:(level + 1) (child c)))
      done
    end
    else begin
      for c = 0 to k - 1 do
        go (level + 1) (child c);
        if c < k - 1 then begin
          let cv = Tree.node t ~level:(level + 1) (child c) in
          emit (R.Save cv);
          emit (R.Delete cv)
        end
      done;
      for c = 0 to k - 2 do
        emit (R.Load (Tree.node t ~level:(level + 1) (child c)))
      done;
      emit (R.Compute v);
      for c = 0 to k - 1 do
        emit (R.Delete (Tree.node t ~level:(level + 1) (child c)))
      done
    end
  in
  go 0 0;
  emit (R.Save (Tree.root t));
  List.rev !moves

let tree_prbp (t : Tree.t) =
  let k = t.Tree.k in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  (* postcondition: node dark red (leaves: blue + light red), subtree
     otherwise clean; peak pebble usage min(h, k) + 1 *)
  let rec go level idx =
    let v = Tree.node t ~level idx in
    let h = t.Tree.depth - level in
    if h = 0 then emit (P.Load v)
    else if h <= k then
      (* cheap: aggregate children one at a time *)
      for c = 0 to k - 1 do
        let ci = (k * idx) + c in
        go (level + 1) ci;
        emit (P.Compute (Tree.node t ~level:(level + 1) ci, v));
        emit (P.Delete (Tree.node t ~level:(level + 1) ci))
      done
    else begin
      (* expensive: the first k−1 children are parked in slow memory *)
      for c = 0 to k - 1 do
        let ci = (k * idx) + c in
        go (level + 1) ci;
        if c < k - 1 then begin
          let cv = Tree.node t ~level:(level + 1) ci in
          emit (P.Save cv);
          emit (P.Delete cv)
        end
      done;
      for c = 0 to k - 2 do
        emit (P.Load (Tree.node t ~level:(level + 1) ((k * idx) + c)))
      done;
      for c = 0 to k - 1 do
        emit (P.Compute (Tree.node t ~level:(level + 1) ((k * idx) + c), v))
      done;
      for c = 0 to k - 1 do
        emit (P.Delete (Tree.node t ~level:(level + 1) ((k * idx) + c)))
      done
    end
  in
  go 0 0;
  emit (P.Save (Tree.root t));
  List.rev !moves

(* ------------------------------------------------------------------ *)
(* Pebble-collection gadget (Section 4.2.3)                            *)

let collect_full (c : Collect.t) =
  let chain = Array.of_list (Collect.chain c) in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  for i = 0 to c.Collect.d - 1 do
    emit (R.Load (Collect.source c i))
  done;
  Array.iteri
    (fun i v ->
      emit (R.Compute v);
      if i > 0 then emit (R.Delete chain.(i - 1)))
    chain;
  emit (R.Save chain.(c.Collect.len - 1));
  List.rev !moves

let collect_capped (c : Collect.t) =
  let d = c.Collect.d and len = c.Collect.len in
  if d < 2 then invalid_arg "collect_capped: needs d >= 2";
  let chain = Array.of_list (Collect.chain c) in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  (* sources u_0 .. u_{d-2} stay resident; u_{d-1} rotates in *)
  for i = 0 to d - 2 do
    emit (P.Load (Collect.source c i))
  done;
  emit (P.Compute (Collect.source c 0, chain.(0)));
  for i = 1 to len - 1 do
    let j = i mod d in
    if j <= d - 2 then begin
      emit (P.Compute (Collect.source c j, chain.(i)));
      emit (P.Compute (chain.(i - 1), chain.(i)));
      emit (P.Delete chain.(i - 1))
    end
    else begin
      emit (P.Save chain.(i - 1));
      emit (P.Delete chain.(i - 1));
      emit (P.Load (Collect.source c (d - 1)));
      emit (P.Compute (Collect.source c (d - 1), chain.(i)));
      emit (P.Delete (Collect.source c (d - 1)));
      emit (P.Load chain.(i - 1));
      emit (P.Compute (chain.(i - 1), chain.(i)));
      emit (P.Delete chain.(i - 1))
    end
  done;
  emit (P.Save chain.(len - 1));
  emit (P.Delete chain.(len - 1));
  for i = 0 to d - 2 do
    emit (P.Delete (Collect.source c i))
  done;
  List.rev !moves

let collect_capped_cost ~d ~len =
  (* d-1 resident loads + 3 per rotation + final save; the rotating
     source u_{d-1} is needed at positions i ≡ d-1 (mod d), i ≤ len-1 *)
  let rotations = if len < d then 0 else ((len - d) / d) + 1 in
  d - 1 + (3 * rotations) + 1

(* ------------------------------------------------------------------ *)
(* Lemma 5.4 construction                                              *)

let lemma54_prbp (l : Lemma54.t) =
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  let v = Lemma54.sink l in
  for i = 0 to Lemma54.groups - 1 do
    let u = Lemma54.source l i in
    emit (P.Load u);
    List.iter
      (fun h ->
        emit (P.Compute (u, h));
        emit (P.Compute (h, v));
        emit (P.Delete h))
      (Lemma54.group l i);
    emit (P.Delete u)
  done;
  emit (P.Save v);
  List.rev !moves

(* ------------------------------------------------------------------ *)
(* Tiled matrix multiplication (Theorem 6.10)                          *)

let blocks total tile =
  let rec go lo acc =
    if lo >= total then List.rev acc
    else go (lo + tile) ((lo, min total (lo + tile)) :: acc)
  in
  go 0 []

let matmul_tiled ~ti ~tk ~tj (mm : Matmul.t) =
  if ti < 1 || tk < 1 || tj < 1 then invalid_arg "matmul_tiled: tiles >= 1";
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  List.iter
    (fun (ilo, ihi) ->
      List.iter
        (fun (jlo, jhi) ->
          List.iter
            (fun (klo, khi) ->
              for i = ilo to ihi - 1 do
                for k = klo to khi - 1 do
                  emit (P.Load (Matmul.a mm i k))
                done
              done;
              for k = klo to khi - 1 do
                for j = jlo to jhi - 1 do
                  emit (P.Load (Matmul.b mm k j))
                done
              done;
              for i = ilo to ihi - 1 do
                for k = klo to khi - 1 do
                  for j = jlo to jhi - 1 do
                    let p = Matmul.p mm i k j in
                    emit (P.Compute (Matmul.a mm i k, p));
                    emit (P.Compute (Matmul.b mm k j, p));
                    emit (P.Compute (p, Matmul.c mm i j));
                    emit (P.Delete p)
                  done
                done
              done;
              for i = ilo to ihi - 1 do
                for k = klo to khi - 1 do
                  emit (P.Delete (Matmul.a mm i k))
                done
              done;
              for k = klo to khi - 1 do
                for j = jlo to jhi - 1 do
                  emit (P.Delete (Matmul.b mm k j))
                done
              done)
            (blocks mm.Matmul.m2 tk);
          for i = ilo to ihi - 1 do
            for j = jlo to jhi - 1 do
              emit (P.Save (Matmul.c mm i j));
              emit (P.Delete (Matmul.c mm i j))
            done
          done)
        (blocks mm.Matmul.m3 tj))
    (blocks mm.Matmul.m1 ti);
  List.rev !moves

let matmul_tile_for ~r ~m1 ~m2 ~m3 =
  (* square tile t with 3t² + 1 ≤ r, clamped to the problem sizes *)
  let t = max 1 (int_of_float (sqrt (float_of_int (r - 1) /. 3.))) in
  (max 1 (min t m1), max 1 (min t m2), max 1 (min t m3))

let attention_tiles ~r ~m ~d =
  if r >= 3 * d * d then begin
    (* large cache: full inner dimension, rectangular row/col blocks
       b with b² + 2bd + 1 ≤ r *)
    let b =
      max 1
        (int_of_float
           (sqrt (float_of_int ((d * d) + r - 1)) -. float_of_int d))
    in
    (min b m, d, min b m)
  end
  else matmul_tile_for ~r ~m1:m ~m2:d ~m3:m

(* ------------------------------------------------------------------ *)
(* Blocked FFT (Theorem 6.9)                                           *)

let fft_blocked ~r (f : Fft.t) =
  if r < 4 then invalid_arg "fft_blocked: needs r >= 4";
  let m = f.Fft.m and l = f.Fft.log_m in
  let k =
    let rec lg acc x = if x <= 1 then acc else lg (acc + 1) (x / 2) in
    max 1 (lg 0 (r - 2))
  in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  let t0 = ref 0 in
  while !t0 < l do
    let t1 = min l (!t0 + k) in
    let kk = t1 - !t0 in
    let w = 1 lsl kk in
    let block_bits = ((1 lsl kk) - 1) lsl !t0 in
    (* iterate over block bases: indices with zero bits in the block *)
    let base = ref 0 in
    let continue = ref true in
    while !continue do
      let members = Array.init w (fun x -> !base lor (x lsl !t0)) in
      (* load inputs of the sub-butterfly *)
      Array.iter (fun i -> emit (R.Load (Fft.node f ~layer:!t0 i))) members;
      for t = !t0 to t1 - 1 do
        Array.iter
          (fun i ->
            if i land (1 lsl t) = 0 then begin
              let ii = i lxor (1 lsl t) in
              emit (R.Compute (Fft.node f ~layer:(t + 1) i));
              emit (R.Compute (Fft.node f ~layer:(t + 1) ii));
              emit (R.Delete (Fft.node f ~layer:t i));
              emit (R.Delete (Fft.node f ~layer:t ii))
            end)
          members
      done;
      Array.iter
        (fun i ->
          emit (R.Save (Fft.node f ~layer:t1 i));
          emit (R.Delete (Fft.node f ~layer:t1 i)))
        members;
      (* next base: increment skipping the block bits *)
      let nb = ((!base lor block_bits) + 1) land lnot block_bits in
      if nb >= m || nb = 0 then continue := false else base := nb
    done;
    t0 := t1
  done;
  List.rev !moves

(* ------------------------------------------------------------------ *)
(* Sparse matvec (Section 8.2 outlook) and Horner evaluation           *)

let spmv_prbp (sp : Prbp_graphs.Spmv.t) =
  let module Spmv = Prbp_graphs.Spmv in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  for j = 0 to sp.Spmv.cols - 1 do
    emit (P.Load (Spmv.x sp j));
    List.iter
      (fun e ->
        let i, _ = sp.Spmv.entries.(e) in
        let a = Spmv.a sp e and p = Spmv.p sp e in
        emit (P.Load a);
        emit (P.Compute (a, p));
        emit (P.Delete a);
        emit (P.Compute (Spmv.x sp j, p));
        emit (P.Compute (p, Spmv.y sp i));
        emit (P.Delete p))
      (Spmv.entries_of_col sp j);
    emit (P.Delete (Spmv.x sp j))
  done;
  for i = 0 to sp.Spmv.rows - 1 do
    emit (P.Save (Spmv.y sp i));
    emit (P.Delete (Spmv.y sp i))
  done;
  List.rev !moves

let horner_prbp g =
  (* node layout of Basic.horner: x = 0; coefficients 1..n+1 (coeff k
     feeds step k for k >= 2, coeffs 0 and 1 feed step 1); steps h_k =
     n+1+k with h_n the sink *)
  let n = (Dag.n_nodes g - 2) / 2 in
  let x = 0 and coeff k = 1 + k and h k = n + 1 + k in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  emit (P.Load x);
  emit (P.Load (coeff 0));
  emit (P.Compute (coeff 0, h 1));
  emit (P.Delete (coeff 0));
  emit (P.Load (coeff 1));
  emit (P.Compute (coeff 1, h 1));
  emit (P.Delete (coeff 1));
  emit (P.Compute (x, h 1));
  for k = 2 to n do
    emit (P.Compute (h (k - 1), h k));
    emit (P.Delete (h (k - 1)));
    emit (P.Compute (x, h k));
    emit (P.Load (coeff k));
    emit (P.Compute (coeff k, h k));
    emit (P.Delete (coeff k))
  done;
  emit (P.Delete x);
  emit (P.Save (h n));
  emit (P.Delete (h n));
  List.rev !moves

(* ------------------------------------------------------------------ *)
(* Multiprocessor strategies (Section 8.1 outlook)                     *)

module MM = Prbp_pebble.Multi.Move

let matvec_prbp_multi ~p (mv : Matvec.t) =
  if p < 1 then invalid_arg "matvec_prbp_multi: p >= 1";
  let m = mv.Matvec.m in
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  for j = 0 to m - 1 do
    (* every processor needs x_j locally *)
    for q = 0 to p - 1 do
      emit (MM.Load (q, Matvec.x mv j))
    done;
    for i = 0 to m - 1 do
      let q = i mod p in
      let a = Matvec.a mv i j and pr = Matvec.p mv i j in
      emit (MM.Load (q, a));
      emit (MM.Compute (q, (a, pr)));
      emit (MM.Delete (q, a));
      emit (MM.Compute (q, (Matvec.x mv j, pr)));
      emit (MM.Compute (q, (pr, Matvec.y mv i)));
      emit (MM.Delete (q, pr))
    done;
    for q = 0 to p - 1 do
      emit (MM.Delete (q, Matvec.x mv j))
    done
  done;
  for i = 0 to m - 1 do
    let q = i mod p in
    emit (MM.Save (q, Matvec.y mv i));
    emit (MM.Delete (q, Matvec.y mv i))
  done;
  List.rev !moves

let fan_in_handoff ~halves g =
  if halves < 1 then invalid_arg "fan_in_handoff: halves >= 1";
  let sink =
    match Dag.sinks g with
    | [ v ] -> v
    | _ -> invalid_arg "fan_in_handoff: expects a single sink"
  in
  let sources = Array.of_list (Dag.preds g sink) in
  let d = Array.length sources in
  if d < halves then invalid_arg "fan_in_handoff: more processors than inputs";
  let moves = ref [] in
  let emit x = moves := x :: !moves in
  let block = (d + halves - 1) / halves in
  for q = 0 to halves - 1 do
    let lo = q * block and hi = min d ((q + 1) * block) in
    if q > 0 && lo < hi then
      (* pick up the partial value left by the previous processor *)
      emit (MM.Load (q, sink));
    for idx = lo to hi - 1 do
      let u = sources.(idx) in
      emit (MM.Load (q, u));
      emit (MM.Compute (q, (u, sink)));
      emit (MM.Delete (q, u))
    done;
    if lo < hi then begin
      emit (MM.Save (q, sink));
      emit (MM.Delete (q, sink))
    end
  done;
  List.rev !moves

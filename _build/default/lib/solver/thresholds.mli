(** Cache thresholds: how much fast memory each game needs.

    Two thresholds characterize a DAG's memory behavior:

    - the {e feasibility} threshold — the least [r] admitting any valid
      pebbling ([Δin + 1] for RBP, 2 for PRBP);
    - the {e trivial-cost} threshold [r*] — the least [r] at which the
      optimum drops to the unavoidable trivial cost (every source
      loaded once, every sink saved once), i.e. all non-trivial I/O
      disappears.

    [r*] is computed exactly (binary search over [r], one exhaustive
    solve per probe; the optimum is non-increasing in [r]).  Comparing
    [r*_RBP] with [r*_PRBP] quantifies how much cache partial
    computations save — the Section 4 examples all fit this lens, and
    experiment E26 tabulates it next to the black pebbling number. *)

val rbp_trivial_r :
  ?max_states:int -> ?max_r:int -> Prbp_dag.Dag.t -> int option
(** Least [r ≤ max_r] (default [n_nodes]) with
    [OPT_RBP(r) = trivial_cost]; [None] if even [max_r] does not
    suffice. *)

val prbp_trivial_r :
  ?max_states:int -> ?max_r:int -> Prbp_dag.Dag.t -> int option

val rbp_feasible_r : Prbp_dag.Dag.t -> int
(** [Δin + 1] (with a minimum of 1). *)

val prbp_feasible_r : Prbp_dag.Dag.t -> int
(** 2 for any DAG with at least one edge; 1 otherwise. *)

(* Double-ended queue for 0-1 BFS: 0-cost relaxations go to the front,
   1-cost ones to the back.  Two-list implementation with amortized
   O(1) operations. *)

type 'a t = { mutable front : 'a list; mutable back : 'a list }

let create () = { front = []; back = [] }

let is_empty d = d.front = [] && d.back = []

let push_front d x = d.front <- x :: d.front

let push_back d x = d.back <- x :: d.back

let pop_front d =
  match d.front with
  | x :: rest ->
      d.front <- rest;
      Some x
  | [] -> (
      match List.rev d.back with
      | [] -> None
      | x :: rest ->
          d.back <- [];
          d.front <- rest;
          Some x)

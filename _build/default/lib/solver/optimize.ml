module Rbp = Prbp_pebble.Rbp
module Prbp = Prbp_pebble.Prbp
module RM = Prbp_pebble.Move.R
module PM = Prbp_pebble.Move.P

(* Generic greedy shrinking.

   Pass 1 tries dropping each I/O move on its own, latest first (later
   moves are the most likely to be stranded leftovers).  Pass 2 targets
   eviction round-trips that singles cannot touch: a free delete of [v]
   followed by a later load of [v] must go or stay as a pair — removing
   only the load strands the delete, removing only the delete gains
   nothing.  Every candidate deletion is validated by replaying the
   remaining sequence through the rule checker, so correctness never
   depends on the pattern matching being clever. *)
let shrink ~check ~is_io ~delete_of ~load_of moves =
  (match check moves with
  | Ok _ -> ()
  | Error e -> failwith ("Optimize: input strategy invalid: " ^ e));
  let arr = Array.of_list moves in
  let n = Array.length arr in
  let alive = Array.make n true in
  let current () = List.filteri (fun i _ -> alive.(i)) (Array.to_list arr) in
  let try_without is =
    List.iter (fun i -> alive.(i) <- false) is;
    match check (current ()) with
    | Ok _ -> true
    | Error _ ->
        List.iter (fun i -> alive.(i) <- true) is;
        false
  in
  for i = n - 1 downto 0 do
    if alive.(i) && is_io arr.(i) then ignore (try_without [ i ])
  done;
  for i = 0 to n - 1 do
    if alive.(i) then
      match delete_of arr.(i) with
      | None -> ()
      | Some v ->
          let rec find j =
            if j >= n then ()
            else if alive.(j) && load_of arr.(j) = Some v then
              ignore (try_without [ i; j ])
            else find (j + 1)
          in
          find (i + 1)
  done;
  current ()

let rbp cfg g moves =
  shrink
    ~check:(fun ms -> Rbp.check cfg g ms)
    ~is_io:RM.is_io
    ~delete_of:(function RM.Delete v -> Some v | _ -> None)
    ~load_of:(function RM.Load v -> Some v | _ -> None)
    moves

let prbp cfg g moves =
  shrink
    ~check:(fun ms -> Prbp.check cfg g ms)
    ~is_io:PM.is_io
    ~delete_of:(function PM.Delete v -> Some v | _ -> None)
    ~load_of:(function PM.Load v -> Some v | _ -> None)
    moves

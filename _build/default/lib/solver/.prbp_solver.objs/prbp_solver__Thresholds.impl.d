lib/solver/thresholds.ml: Exact_prbp Exact_rbp Option Prbp_dag Prbp_pebble

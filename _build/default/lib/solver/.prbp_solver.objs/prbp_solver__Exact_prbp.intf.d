lib/solver/exact_prbp.mli: Prbp_dag Prbp_pebble

lib/solver/deque01.ml: List

lib/solver/strategies.mli: Prbp_dag Prbp_graphs Prbp_pebble

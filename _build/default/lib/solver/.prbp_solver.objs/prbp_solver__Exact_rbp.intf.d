lib/solver/exact_rbp.mli: Prbp_dag Prbp_pebble

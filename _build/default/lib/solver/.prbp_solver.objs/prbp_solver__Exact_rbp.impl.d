lib/solver/exact_rbp.ml: Array Deque01 Hashtbl List Option Prbp_dag Prbp_pebble

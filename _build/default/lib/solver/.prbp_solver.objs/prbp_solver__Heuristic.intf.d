lib/solver/heuristic.mli: Prbp_dag Prbp_pebble

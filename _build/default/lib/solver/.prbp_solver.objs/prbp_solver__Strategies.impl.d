lib/solver/strategies.ml: Array List Prbp_dag Prbp_graphs Prbp_pebble

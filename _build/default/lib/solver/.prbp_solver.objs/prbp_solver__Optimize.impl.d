lib/solver/optimize.ml: Array List Prbp_pebble

lib/solver/heuristic.ml: Array List Prbp_dag Prbp_pebble

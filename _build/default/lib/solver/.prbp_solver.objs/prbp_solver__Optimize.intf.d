lib/solver/optimize.mli: Prbp_dag Prbp_pebble

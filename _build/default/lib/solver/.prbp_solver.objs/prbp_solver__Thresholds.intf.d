lib/solver/thresholds.mli: Prbp_dag

lib/solver/exact_prbp.ml: Array Deque01 Hashtbl Option Prbp_dag Prbp_pebble

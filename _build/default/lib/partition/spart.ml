module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Dominator = Prbp_dag.Dominator
module Topo = Prbp_dag.Topo

type check = (unit, string) result

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let check_cover ~what ~total classes =
  let seen = Bitset.create total in
  let dup = ref None and cap = ref None in
  Array.iteri
    (fun i cls ->
      if Bitset.capacity cls <> total then cap := Some i
      else
        Bitset.iter
          (fun x ->
            if Bitset.mem seen x then dup := Some (i, x) else Bitset.add seen x)
          cls)
    classes;
  match (!cap, !dup) with
  | Some i, _ -> errf "class %d has wrong %s capacity" i what
  | _, Some (i, x) -> errf "%s %d appears twice (again in class %d)" what x i
  | None, None ->
      if Bitset.cardinal seen <> total then
        errf "%d %ss are not covered by any class"
          (total - Bitset.cardinal seen)
          what
      else Ok ()

let check_node_cover g classes =
  check_cover ~what:"node" ~total:(Dag.n_nodes g) classes

let check_edge_cover g classes =
  check_cover ~what:"edge" ~total:(Dag.n_edges g) classes

let class_index ~total classes =
  let idx = Array.make total (-1) in
  Array.iteri (fun i cls -> Bitset.iter (fun x -> idx.(x) <- i) cls) classes;
  idx

let check_no_cyclic_dependency g classes =
  let idx = class_index ~total:(Dag.n_nodes g) classes in
  let bad = ref None in
  Dag.iter_edges
    (fun _ u v ->
      if idx.(u) >= 0 && idx.(v) >= 0 && idx.(u) > idx.(v) then
        bad := Some (u, v))
    g;
  match !bad with
  | Some (u, v) ->
      errf "edge (%d,%d) goes from class %d back to class %d" u v
        (idx.(u)) (idx.(v))
  | None -> Ok ()

let check_edge_order g classes =
  let idx = class_index ~total:(Dag.n_edges g) classes in
  let bad = ref None in
  (* for every node v, every in-edge must be classed no later than
     every out-edge *)
  for v = 0 to Dag.n_nodes g - 1 do
    let max_in = ref (-1) and min_out = ref max_int in
    Dag.iter_pred_e (fun e _ -> if idx.(e) > !max_in then max_in := idx.(e)) g v;
    Dag.iter_succ_e (fun e _ -> if idx.(e) < !min_out then min_out := idx.(e)) g v;
    if !max_in > !min_out && !bad = None then bad := Some v
  done;
  match !bad with
  | Some v ->
      errf "node %d has an in-edge classed after one of its out-edges" v
  | None -> Ok ()

let check_sizes ~what ~size classes =
  let bad = ref None in
  Array.iteri
    (fun i cls ->
      let s, limit = size cls in
      if s > limit && !bad = None then bad := Some (i, s, limit))
    classes;
  match !bad with
  | Some (i, s, limit) -> errf "class %d: %s %d exceeds S = %d" i what s limit
  | None -> Ok ()

let is_dominator_partition g ~s classes =
  let* () = check_node_cover g classes in
  let* () = check_no_cyclic_dependency g classes in
  check_sizes ~what:"minimum dominator size"
    ~size:(fun cls -> (Dominator.min_dominator_size g cls, s))
    classes

let is_spartition g ~s classes =
  let* () = is_dominator_partition g ~s classes in
  check_sizes ~what:"terminal-set size"
    ~size:(fun cls -> (Bitset.cardinal (Dominator.terminal_set g cls), s))
    classes

let is_edge_partition g ~s classes =
  let* () = check_edge_cover g classes in
  let* () = check_edge_order g classes in
  let* () =
    check_sizes ~what:"minimum edge-dominator size"
      ~size:(fun cls -> (Dominator.min_edge_dominator_size g cls, s))
      classes
  in
  check_sizes ~what:"edge-terminal-set size"
    ~size:(fun cls -> (Bitset.cardinal (Dominator.edge_terminal_set g cls), s))
    classes

let greedy_generic ~total ~order ~fits =
  let classes = ref [] in
  let current = ref (Bitset.create total) in
  Array.iter
    (fun x ->
      let candidate = Bitset.copy !current in
      Bitset.add candidate x;
      if fits candidate then current := candidate
      else begin
        if not (Bitset.is_empty !current) then classes := !current :: !classes;
        let fresh = Bitset.create total in
        Bitset.add fresh x;
        if not (fits fresh) then
          failwith "greedy partition: a single element violates S";
        current := fresh
      end)
    order;
  if not (Bitset.is_empty !current) then classes := !current :: !classes;
  Array.of_list (List.rev !classes)

let greedy_spartition g ~s =
  greedy_generic ~total:(Dag.n_nodes g) ~order:(Topo.sort g)
    ~fits:(fun cls ->
      Dominator.min_dominator_size g cls <= s
      && Bitset.cardinal (Dominator.terminal_set g cls) <= s)

let greedy_edge_partition g ~s =
  greedy_generic ~total:(Dag.n_edges g) ~order:(Topo.edge_order g)
    ~fits:(fun cls ->
      Dominator.min_edge_dominator_size g cls <= s
      && Bitset.cardinal (Dominator.edge_terminal_set g cls) <= s)

let io_lower_bound ~r ~min_classes = r * (min_classes - 1)

module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Rbp = Prbp_pebble.Rbp
module Prbp = Prbp_pebble.Prbp
module RM = Prbp_pebble.Move.R
module PM = Prbp_pebble.Move.P

let classes_of_cost ~r ~cost = max 1 ((cost + r - 1) / r)

(* Subsequence boundaries: the i-th subsequence (1-based) ends at the
   (r·i)-th I/O and the next starts immediately after.  A move that is
   the c-th I/O lies in 0-based subsequence (c-1)/r; a free move after
   c completed I/Os lies in c/r (clamped into range, matching the
   paper's "append trailing free moves to the last subsequence"). *)
type clock = { r : int; k : int; mutable ios : int }

let io_subseq cl =
  cl.ios <- cl.ios + 1;
  min ((cl.ios - 1) / cl.r) (cl.k - 1)

let free_subseq cl = min (cl.ios / cl.r) (cl.k - 1)

let classes_of_assignment ~total ~k assign =
  let classes = Array.init k (fun _ -> Bitset.create total) in
  Array.iteri
    (fun x i ->
      if i < 0 then failwith "Extract: incomplete pebbling left unassigned items"
      else Bitset.add classes.(i) x)
    assign;
  classes

let hong_kung ~r g moves =
  let cost =
    match Rbp.check (Rbp.config ~r ()) g moves with
    | Ok c -> c
    | Error e -> failwith ("Extract.hong_kung: invalid pebbling: " ^ e)
  in
  let k = classes_of_cost ~r ~cost in
  let cl = { r; k; ios = 0 } in
  let assign = Array.make (Dag.n_nodes g) (-1) in
  let touch v i = if assign.(v) < 0 then assign.(v) <- i in
  List.iter
    (fun (m : RM.t) ->
      match m with
      | RM.Load v -> touch v (io_subseq cl)
      | RM.Save _ -> ignore (io_subseq cl)
      | RM.Compute v -> touch v (free_subseq cl)
      | RM.Slide (_, v) -> touch v (free_subseq cl)
      | RM.Delete _ -> ())
    moves;
  classes_of_assignment ~total:(Dag.n_nodes g) ~k assign

let edge_partition_of_prbp ~r g moves =
  let cost =
    match Prbp.check (Prbp.config ~r ()) g moves with
    | Ok c -> c
    | Error e -> failwith ("Extract.edge_partition_of_prbp: invalid pebbling: " ^ e)
  in
  let k = classes_of_cost ~r ~cost in
  let cl = { r; k; ios = 0 } in
  let assign = Array.make (Dag.n_edges g) (-1) in
  List.iter
    (fun (m : PM.t) ->
      match m with
      | PM.Load _ | PM.Save _ -> ignore (io_subseq cl)
      | PM.Compute (u, v) -> assign.(Dag.edge_id g u v) <- free_subseq cl
      | PM.Delete _ -> ()
      | PM.Clear _ -> failwith "Extract: re-computation traces not supported")
    moves;
  classes_of_assignment ~total:(Dag.n_edges g) ~k assign

let dominator_partition_of_prbp ~r g moves =
  let cost =
    match Prbp.check (Prbp.config ~r ()) g moves with
    | Ok c -> c
    | Error e ->
        failwith ("Extract.dominator_partition_of_prbp: invalid pebbling: " ^ e)
  in
  let k = classes_of_cost ~r ~cost in
  let cl = { r; k; ios = 0 } in
  let n = Dag.n_nodes g in
  let assign = Array.make n (-1) in
  let unmarked = Array.init n (Dag.in_degree g) in
  List.iter
    (fun (m : PM.t) ->
      match m with
      | PM.Load v ->
          let i = io_subseq cl in
          (* sources join the class of their first load *)
          if Dag.is_source g v && assign.(v) < 0 then assign.(v) <- i
      | PM.Save _ -> ignore (io_subseq cl)
      | PM.Compute (u, v) ->
          let i = free_subseq cl in
          ignore u;
          unmarked.(v) <- unmarked.(v) - 1;
          if unmarked.(v) = 0 then assign.(v) <- i
      | PM.Delete _ -> ()
      | PM.Clear _ -> failwith "Extract: re-computation traces not supported")
    moves;
  classes_of_assignment ~total:n ~k assign

lib/partition/extract.ml: Array List Prbp_dag Prbp_pebble

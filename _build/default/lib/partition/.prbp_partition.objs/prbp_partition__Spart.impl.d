lib/partition/spart.ml: Array Format List Prbp_dag

lib/partition/minpart.mli: Prbp_dag

lib/partition/spart.mli: Prbp_dag

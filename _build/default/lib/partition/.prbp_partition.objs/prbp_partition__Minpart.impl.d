lib/partition/minpart.ml: Array Hashtbl Prbp_dag Queue

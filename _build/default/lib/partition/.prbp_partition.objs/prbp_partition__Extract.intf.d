lib/partition/extract.mli: Prbp_dag Prbp_pebble

(** Validity checkers for the three partition concepts of Sections 5–6.

    A node partition is an array of node {!Prbp_dag.Bitset.t} classes
    [V₁ … V_k] (in order); an edge partition is an array of edge-id
    bitsets [E₁ … E_k].  All checkers return [Ok ()] or a human-readable
    reason, and verify minimum dominator sizes exactly via max-flow, so
    a partition is never accepted on a heuristic argument. *)

type check = (unit, string) result

val check_node_cover : Prbp_dag.Dag.t -> Prbp_dag.Bitset.t array -> check
(** Classes are disjoint and cover all nodes. *)

val check_edge_cover : Prbp_dag.Dag.t -> Prbp_dag.Bitset.t array -> check

val check_no_cyclic_dependency :
  Prbp_dag.Dag.t -> Prbp_dag.Bitset.t array -> check
(** Condition (i) of Definition 5.3: if [u ∈ V_i], [v ∈ V_j] with
    [i > j], then [(u,v) ∉ E]. *)

val check_edge_order : Prbp_dag.Dag.t -> Prbp_dag.Bitset.t array -> check
(** Condition (i) of Definition 6.3: for [(u,v), (v,w) ∈ E] and
    [i < j], never [(v,w) ∈ E_i] with [(u,v) ∈ E_j]. *)

val is_spartition :
  Prbp_dag.Dag.t -> s:int -> Prbp_dag.Bitset.t array -> check
(** Full Definition 5.3 (Hong–Kung S-partition): cover + ordering +
    dominator ≤ s + terminal set ≤ s for every class. *)

val is_dominator_partition :
  Prbp_dag.Dag.t -> s:int -> Prbp_dag.Bitset.t array -> check
(** Definition 6.6: like {!is_spartition} but without the
    terminal-set condition. *)

val is_edge_partition :
  Prbp_dag.Dag.t -> s:int -> Prbp_dag.Bitset.t array -> check
(** Definition 6.3 (S-edge partition): edge cover + well-ordering +
    edge-dominator ≤ s + edge-terminal ≤ s for every class. *)

(** {1 Greedy constructions (upper bounds on MIN counts)} *)

val greedy_spartition :
  Prbp_dag.Dag.t -> s:int -> Prbp_dag.Bitset.t array
(** Sweep the nodes in topological order, extending the current class
    while both the (exact, flow-computed) minimum dominator size and
    the terminal-set size stay ≤ s.  The result is a valid
    S-partition, so its length upper-bounds [MIN_part(s)]. *)

val greedy_edge_partition :
  Prbp_dag.Dag.t -> s:int -> Prbp_dag.Bitset.t array
(** Same sweep over edges in a PRBP-markable order; upper-bounds
    [MIN_edge(s)]. *)

(** {1 Lower bounds from partitions (Theorems 6.5 / 6.7)} *)

val io_lower_bound : r:int -> min_classes:int -> int
(** [r · (min_classes − 1)]: the I/O lower bound that a [2r]-partition
    class count implies for cost (all three partition flavors share
    this form). *)

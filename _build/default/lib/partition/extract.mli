(** Trace-to-partition extraction: the constructive halves of
    Hong–Kung's theorem and of Lemmas 6.4 and 6.8.

    Each function splits a complete pebbling into subsequences of [r]
    I/O operations and assigns nodes (or edges) to the subsequence
    prescribed by the respective proof.  The test-suite feeds the
    results to the {!Spart} checkers, machine-checking the lemmas on
    concrete traces: a valid pebbling of cost [C] yields a valid
    [2r]-partition into [k = ⌈C/r⌉] classes. *)

val classes_of_cost : r:int -> cost:int -> int
(** [⌈cost/r⌉], with a minimum of one class. *)

val hong_kung :
  r:int ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.R.t list ->
  Prbp_dag.Bitset.t array
(** RBP trace → S-partition with [S = 2r] (Hong–Kung 1981): each node
    joins the class of the subsequence that first places a red pebble
    on it.
    @raise Failure if the move list is not a valid complete pebbling. *)

val edge_partition_of_prbp :
  r:int ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.P.t list ->
  Prbp_dag.Bitset.t array
(** PRBP trace → S-edge partition with [S = 2r] (Lemma 6.4): each edge
    joins the class of the subsequence in which it is marked. *)

val dominator_partition_of_prbp :
  r:int ->
  Prbp_dag.Dag.t ->
  Prbp_pebble.Move.P.t list ->
  Prbp_dag.Bitset.t array
(** PRBP trace → S-dominator partition with [S = 2r] (Lemma 6.8): each
    non-source joins the class of the subsequence containing the last
    marking of one of its in-edges; each source joins the class of its
    first load. *)

(** Exact minimum class counts — [MIN_part], [MIN_dom], [MIN_edge] —
    by exhaustive search over the ideal lattice.

    The ordering condition of Definitions 5.3 / 6.3 / 6.6 makes the
    class prefixes [V₁ ∪ … ∪ V_i] downward-closed sets (ideals) of the
    DAG (resp. "in-edges-first"-closed edge sets).  A minimum partition
    is therefore a shortest chain of ideals whose successive differences
    satisfy the size conditions, found here by breadth-first search over
    the lattice with exact (max-flow) dominator minima on every block.

    Exponential — intended for DAGs of ≲ 15 nodes / ≲ 20 edges, where
    it turns the paper's Theorem 6.5 / 6.7 inequalities into exactly
    checkable statements. *)

exception Too_large of int
(** Raised when the ideal enumeration exceeds the budget. *)

val n_ideals : ?max_ideals:int -> Prbp_dag.Dag.t -> int
(** Number of downward-closed node sets (for sizing feasibility). *)

val min_spartition : ?max_ideals:int -> Prbp_dag.Dag.t -> s:int -> int option
(** [MIN_part(s)]: minimum classes of any S-partition (Definition 5.3),
    or [None] if no S-partition exists (e.g. [s] below some forced
    dominator).  [max_ideals] defaults to [200_000]. *)

val min_dominator_partition :
  ?max_ideals:int -> Prbp_dag.Dag.t -> s:int -> int option
(** [MIN_dom(s)] (Definition 6.6). *)

val min_edge_partition :
  ?max_ideals:int -> Prbp_dag.Dag.t -> s:int -> int option
(** [MIN_edge(s)] (Definition 6.3), searching over well-ordered edge
    prefixes. *)

val rbp_lower_bound : ?max_ideals:int -> Prbp_dag.Dag.t -> r:int -> int
(** Hong–Kung: [r · (MIN_part(2r) − 1)], with [MIN_part] computed
    exactly; 0 when no partition exists (cannot happen for [s ≥ 2]). *)

val prbp_lower_bound_edge : ?max_ideals:int -> Prbp_dag.Dag.t -> r:int -> int
(** Theorem 6.5: [r · (MIN_edge(2r) − 1)], exactly. *)

val prbp_lower_bound_dom : ?max_ideals:int -> Prbp_dag.Dag.t -> r:int -> int
(** Theorem 6.7: [r · (MIN_dom(2r) − 1)], exactly. *)

module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Dominator = Prbp_dag.Dominator

exception Too_large of int

(* ------------------------------------------------------------------ *)
(* Generic shortest-chain search over a lattice of masks.

   [grow ~from ~visit] must call [visit elt mask'] for every way of
   adding one eligible element to [mask]; a chain step I → J is any
   J ⊇ I reachable by repeated growth whose block J\I stays feasible.
   Feasibility must be antitone in the block (once infeasible, all
   supersets are), which holds for dominator minima: a dominator for a
   superset dominates the subset. *)

let bfs_min_chain ~full ~budget ~grow ~block_feasible ~block_ok =
  let dist = Hashtbl.create 1024 in
  let q = Queue.create () in
  Hashtbl.replace dist 0 0;
  Queue.add 0 q;
  let result = ref None in
  let guard () =
    if Hashtbl.length dist > budget then raise (Too_large budget)
  in
  while !result = None && not (Queue.is_empty q) do
    let i = Queue.pop q in
    let d = Hashtbl.find dist i in
    if i = full then result := Some d
    else begin
      (* enumerate feasible successor masks j ⊇ i by growing blocks *)
      let seen = Hashtbl.create 64 in
      let rec extend j =
        grow ~from:j (fun _elt j' ->
            if not (Hashtbl.mem seen j') then begin
              Hashtbl.add seen j' ();
              guard ();
              let block = j' land lnot i in
              if block_feasible block then begin
                if block_ok block && not (Hashtbl.mem dist j') then begin
                  Hashtbl.replace dist j' (d + 1);
                  Queue.add j' q
                end;
                extend j'
              end
            end)
      in
      extend i
    end
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Node partitions: masks are downward-closed node sets.               *)

let node_masks g =
  let n = Dag.n_nodes g in
  if n > 62 then invalid_arg "Minpart: at most 62 nodes";
  let pred_mask =
    Array.init n (fun v -> Dag.fold_pred (fun u acc -> acc lor (1 lsl u)) g v 0)
  in
  let grow ~from visit =
    for v = 0 to n - 1 do
      if from land (1 lsl v) = 0 && pred_mask.(v) land lnot from = 0 then
        visit v (from lor (1 lsl v))
    done
  in
  (grow, if n = 0 then 0 else (1 lsl n) - 1)

let to_bitset n mask =
  let b = Bitset.create n in
  for v = 0 to n - 1 do
    if mask land (1 lsl v) <> 0 then Bitset.add b v
  done;
  b

let n_ideals ?(max_ideals = 200_000) g =
  let grow, _full = node_masks g in
  let seen = Hashtbl.create 1024 in
  Hashtbl.replace seen 0 ();
  let rec go mask =
    grow ~from:mask (fun _ mask' ->
        if not (Hashtbl.mem seen mask') then begin
          Hashtbl.add seen mask' ();
          if Hashtbl.length seen > max_ideals then raise (Too_large max_ideals);
          go mask'
        end)
  in
  go 0;
  Hashtbl.length seen

let min_node_partition ?(max_ideals = 200_000) g ~s ~need_terminal =
  let n = Dag.n_nodes g in
  let grow, full = node_masks g in
  let block_feasible block =
    block <> 0
    && Dominator.min_dominator_size g (to_bitset n block) <= s
  in
  let block_ok block =
    (not need_terminal)
    || Bitset.cardinal (Dominator.terminal_set g (to_bitset n block)) <= s
  in
  if n = 0 then Some 0
  else
    bfs_min_chain ~full ~budget:max_ideals ~grow ~block_feasible ~block_ok

let min_spartition ?max_ideals g ~s =
  min_node_partition ?max_ideals g ~s ~need_terminal:true

let min_dominator_partition ?max_ideals g ~s =
  min_node_partition ?max_ideals g ~s ~need_terminal:false

(* ------------------------------------------------------------------ *)
(* Edge partitions: masks are edge sets closed under "all in-edges of
   the tail come first" (the well-ordering of Definition 6.3).         *)

let min_edge_partition ?(max_ideals = 200_000) g ~s =
  let n = Dag.n_nodes g and m = Dag.n_edges g in
  if m > 62 then invalid_arg "Minpart: at most 62 edges";
  let in_mask = Array.make n 0 in
  Dag.iter_edges (fun e _ v -> in_mask.(v) <- in_mask.(v) lor (1 lsl e)) g;
  let grow ~from visit =
    for e = 0 to m - 1 do
      if from land (1 lsl e) = 0 && in_mask.(Dag.edge_src g e) land lnot from = 0
      then visit e (from lor (1 lsl e))
    done
  in
  let edge_bitset mask =
    let b = Bitset.create m in
    for e = 0 to m - 1 do
      if mask land (1 lsl e) <> 0 then Bitset.add b e
    done;
    b
  in
  let block_feasible block =
    block <> 0
    && Dominator.min_edge_dominator_size g (edge_bitset block) <= s
  in
  let block_ok block =
    Bitset.cardinal (Dominator.edge_terminal_set g (edge_bitset block)) <= s
  in
  if m = 0 then Some 0
  else
    bfs_min_chain
      ~full:((1 lsl m) - 1)
      ~budget:max_ideals ~grow ~block_feasible ~block_ok

let rbp_lower_bound ?max_ideals g ~r =
  match min_spartition ?max_ideals g ~s:(2 * r) with
  | Some k -> r * (k - 1)
  | None -> 0

let prbp_lower_bound_edge ?max_ideals g ~r =
  match min_edge_partition ?max_ideals g ~s:(2 * r) with
  | Some k -> r * (k - 1)
  | None -> 0

let prbp_lower_bound_dom ?max_ideals g ~r =
  match min_dominator_partition ?max_ideals g ~s:(2 * r) with
  | Some k -> r * (k - 1)
  | None -> 0

(** Rule-checking engine for the classic red-blue pebble game (RBP).

    Implements the Hong–Kung game exactly as recalled in Section 1 of
    the paper, in its one-shot form by default, plus the Appendix-B
    variants (re-computation, sliding pebbles, no-deletion, compute
    costs) behind configuration flags.

    The engine is mutable: {!start} produces the initial state (blue
    pebbles on the sources), {!apply} validates and performs one move.
    Illegal moves are reported, never silently ignored, so replaying a
    strategy through the engine certifies both its validity and its
    cost. *)

type config = {
  r : int;  (** fast-memory capacity: max simultaneous red pebbles *)
  one_shot : bool;
      (** each node computed at most once (default; Section 3 fixes
          this variant for the whole paper) *)
  sliding : bool;  (** allow [Move.R.Slide] (Appendix B.2) *)
  no_delete : bool;
      (** Appendix B.4: [Delete] is illegal and [Save] replaces the red
          pebble by the blue one *)
  compute_cost : float;
      (** ε ≥ 0 charged per compute/slide step (Appendix B.3) *)
}

val config : ?one_shot:bool -> ?sliding:bool -> ?no_delete:bool ->
  ?compute_cost:float -> r:int -> unit -> config
(** Classic one-shot RBP with capacity [r] unless flags say otherwise. *)

type t

val start : config -> Prbp_dag.Dag.t -> t

val dag : t -> Prbp_dag.Dag.t

val capacity : t -> int

(** {1 State observation} *)

val has_red : t -> Move.node -> bool

val has_blue : t -> Move.node -> bool

val is_computed : t -> Move.node -> bool

val red_count : t -> int

val red_set : t -> Prbp_dag.Bitset.t
(** A copy of the current red-pebble set. *)

val blue_set : t -> Prbp_dag.Bitset.t

val computed_set : t -> Prbp_dag.Bitset.t

(** {1 Cost accounting} *)

val io_cost : t -> int
(** Loads + saves so far — the paper's pebbling cost. *)

val loads : t -> int

val saves : t -> int

val computes : t -> int

val total_cost : t -> float
(** [io_cost + ε·computes] (Appendix B.3); equals [io_cost] when
    [compute_cost = 0]. *)

val max_red_seen : t -> int
(** High-water mark of simultaneous red pebbles. *)

val is_terminal : t -> bool
(** Every sink carries a blue pebble. *)

(** {1 Execution} *)

val apply : t -> Move.R.t -> (unit, string) result
(** Validate and perform one move; [Error] carries a human-readable
    reason and leaves the state unchanged. *)

val run : config -> Prbp_dag.Dag.t -> Move.R.t list -> (t, string) result
(** Replay a whole strategy from the initial state.  [Error] pinpoints
    the first illegal move.  The returned state need not be terminal;
    combine with {!is_terminal}. *)

val run_exn : config -> Prbp_dag.Dag.t -> Move.R.t list -> t
(** @raise Failure on an illegal move. *)

val check : config -> Prbp_dag.Dag.t -> Move.R.t list -> (int, string) result
(** Replay and additionally require terminality; returns the I/O cost
    of the complete pebbling. *)

val normalize : config -> Prbp_dag.Dag.t -> Move.R.t list -> Move.R.t list
(** Drop {e redundant} I/O moves — loads of nodes already red and saves
    of nodes already blue — which are legal in RBP but never helpful.
    The result is a valid strategy of cost ≤ the original, and is free
    of the wasteful moves that have no PRBP counterpart, as required by
    {!Move.rbp_to_prbp} (Proposition 4.1). *)

val pp_state : Format.formatter -> t -> unit
(** One-line snapshot: red / blue / computed sets and cost so far,
    using node names.  For debugging and interactive exploration. *)

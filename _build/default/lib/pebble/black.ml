module Dag = Prbp_dag.Dag

exception Too_large of int

(* State: (pebbled-node mask, visited-sink mask index).  Transitions
   are free (only the peak matters), so feasibility at capacity s is
   plain reachability. *)
let feasible ?(sliding = false) ?(max_states = 2_000_000) ~s g =
  let n = Dag.n_nodes g in
  if n > 31 then invalid_arg "Black.feasible: at most 31 nodes";
  if s < 0 then invalid_arg "Black.feasible: negative capacity";
  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
    go 0 x
  in
  let pred_mask =
    Array.init n (fun v -> Dag.fold_pred (fun u acc -> acc lor (1 lsl u)) g v 0)
  in
  let sinks = List.fold_left (fun a v -> a lor (1 lsl v)) 0 (Dag.sinks g) in
  let seen = Hashtbl.create 4096 in
  let q = Queue.create () in
  let push st =
    if not (Hashtbl.mem seen st) then begin
      if Hashtbl.length seen >= max_states then raise (Too_large max_states);
      Hashtbl.add seen st ();
      Queue.add st q
    end
  in
  push (0, 0);
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let ((mask, visited) as _st) = Queue.pop q in
    if visited = sinks then found := true
    else
      for v = 0 to n - 1 do
        let b = 1 lsl v in
        if mask land b = 0 && pred_mask.(v) land lnot mask = 0 then begin
          (* PLACE (needs a free pebble) *)
          if popcount mask < s then
            push (mask lor b, visited lor (b land sinks));
          (* SLIDE from one of the (pebbled) in-neighbors *)
          if sliding && pred_mask.(v) <> 0 then begin
            let rest = ref pred_mask.(v) in
            while !rest <> 0 do
              let ub = !rest land - !rest in
              rest := !rest lxor ub;
              push ((mask lxor ub) lor b, visited lor (b land sinks))
            done
          end
        end;
        (* REMOVE *)
        if mask land b <> 0 then push (mask lxor b, visited)
      done
  done;
  !found

let number ?sliding ?max_states g =
  let n = Dag.n_nodes g in
  if n = 0 then 0
  else begin
    let rec go s =
      if s > n then
        failwith "Black.number: internal: no feasible capacity up to n"
      else if feasible ?sliding ?max_states ~s g then s
      else go (s + 1)
    in
    go 1
  end

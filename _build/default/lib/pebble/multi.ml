module Dag = Prbp_dag.Dag
module Bitset = Prbp_dag.Bitset
module Single = Move

type config = { p : int; r : int; one_shot : bool }

let config ?(one_shot = true) ~p ~r () =
  if p < 1 then invalid_arg "Multi.config: p >= 1";
  if r < 1 then invalid_arg "Multi.config: r >= 1";
  { p; r; one_shot }

module Move = struct
  type rbp =
    | Load of int * int
    | Save of int * int
    | Compute of int * int
    | Delete of int * int

  type prbp =
    | Load of int * int
    | Save of int * int
    | Compute of int * (int * int)
    | Delete of int * int

  let pp_rbp ppf (m : rbp) =
    match m with
    | Load (q, v) -> Format.fprintf ppf "p%d: load %d" q v
    | Save (q, v) -> Format.fprintf ppf "p%d: save %d" q v
    | Compute (q, v) -> Format.fprintf ppf "p%d: compute %d" q v
    | Delete (q, v) -> Format.fprintf ppf "p%d: delete %d" q v

  let pp_prbp ppf (m : prbp) =
    match m with
    | Load (q, v) -> Format.fprintf ppf "p%d: load %d" q v
    | Save (q, v) -> Format.fprintf ppf "p%d: save %d" q v
    | Compute (q, (u, v)) -> Format.fprintf ppf "p%d: compute (%d,%d)" q u v
    | Delete (q, v) -> Format.fprintf ppf "p%d: delete %d" q v
end

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let check_proc cfg q = q >= 0 && q < cfg.p

module R = struct
  type t = {
    cfg : config;
    g : Dag.t;
    red : Bitset.t array;  (* per processor *)
    n_red : int array;
    blue : Bitset.t;
    computed : Bitset.t;
    mutable io : int;
  }

  let start cfg g =
    let n = Dag.n_nodes g in
    let blue = Bitset.create n in
    List.iter (Bitset.add blue) (Dag.sources g);
    {
      cfg;
      g;
      red = Array.init cfg.p (fun _ -> Bitset.create n);
      n_red = Array.make cfg.p 0;
      blue;
      computed = Bitset.create n;
      io = 0;
    }

  let io_cost t = t.io

  let red_count t q = t.n_red.(q)

  let is_terminal t =
    List.for_all (fun v -> Bitset.mem t.blue v) (Dag.sinks t.g)

  let apply t (m : Move.rbp) =
    match m with
    | Move.Load (q, v) ->
        if not (check_proc t.cfg q) then errf "load: bad processor %d" q
        else if not (Bitset.mem t.blue v) then errf "load %d: no blue" v
        else if Bitset.mem t.red.(q) v then begin
          t.io <- t.io + 1;
          Ok ()
        end
        else if t.n_red.(q) >= t.cfg.r then
          errf "load %d: processor %d full" v q
        else begin
          Bitset.add t.red.(q) v;
          t.n_red.(q) <- t.n_red.(q) + 1;
          t.io <- t.io + 1;
          Ok ()
        end
    | Move.Save (q, v) ->
        if not (check_proc t.cfg q) then errf "save: bad processor %d" q
        else if not (Bitset.mem t.red.(q) v) then
          errf "save %d: not red on processor %d" v q
        else begin
          Bitset.add t.blue v;
          t.io <- t.io + 1;
          Ok ()
        end
    | Move.Compute (q, v) ->
        if not (check_proc t.cfg q) then errf "compute: bad processor %d" q
        else if Dag.is_source t.g v then errf "compute %d: source" v
        else if t.cfg.one_shot && Bitset.mem t.computed v then
          errf "compute %d: one-shot" v
        else if
          not
            (Dag.fold_pred (fun u acc -> acc && Bitset.mem t.red.(q) u) t.g v
               true)
        then errf "compute %d: inputs not all red on processor %d" v q
        else if Bitset.mem t.red.(q) v then begin
          Bitset.add t.computed v;
          Ok ()
        end
        else if t.n_red.(q) >= t.cfg.r then
          errf "compute %d: processor %d full" v q
        else begin
          Bitset.add t.red.(q) v;
          t.n_red.(q) <- t.n_red.(q) + 1;
          Bitset.add t.computed v;
          Ok ()
        end
    | Move.Delete (q, v) ->
        if not (check_proc t.cfg q) then errf "delete: bad processor %d" q
        else if not (Bitset.mem t.red.(q) v) then
          errf "delete %d: not red on processor %d" v q
        else begin
          Bitset.remove t.red.(q) v;
          t.n_red.(q) <- t.n_red.(q) - 1;
          Ok ()
        end

  let check cfg g moves =
    let t = start cfg g in
    let rec go i = function
      | [] ->
          if is_terminal t then Ok t.io
          else Error "incomplete pebbling: some sink has no blue pebble"
      | m :: rest -> (
          match apply t m with
          | Ok () -> go (i + 1) rest
          | Error e -> errf "move #%d (%a): %s" i Move.pp_rbp m e)
    in
    go 0 moves
end

module P = struct
  (* per node: optional exclusive dark owner, set of light-copy
     holders, and a blue flag.  A light copy implies blue (same
     invariant as the single-processor game). *)
  type t = {
    cfg : config;
    g : Dag.t;
    dark : int array;  (* node -> owning processor, or -1 *)
    light : Bitset.t array;  (* per processor: nodes held light *)
    blue : Bitset.t;
    n_red : int array;
    marked : Bitset.t;  (* edges *)
    ever_marked : Bitset.t;
    unmarked_in : int array;
    unmarked_out : int array;
    mutable io : int;
  }

  let start cfg g =
    let n = Dag.n_nodes g in
    let blue = Bitset.create n in
    List.iter (Bitset.add blue) (Dag.sources g);
    {
      cfg;
      g;
      dark = Array.make n (-1);
      light = Array.init cfg.p (fun _ -> Bitset.create n);
      blue;
      n_red = Array.make cfg.p 0;
      marked = Bitset.create (Dag.n_edges g);
      ever_marked = Bitset.create (Dag.n_edges g);
      unmarked_in = Array.init n (Dag.in_degree g);
      unmarked_out = Array.init n (Dag.out_degree g);
      io = 0;
    }

    let io_cost t = t.io

  let red_count t q = t.n_red.(q)

  let has_red_on t q v = t.dark.(v) = q || Bitset.mem t.light.(q) v

  let stored_nowhere t v =
    t.dark.(v) = -1
    && (not (Bitset.mem t.blue v))
    && Array.for_all (fun l -> not (Bitset.mem l v)) t.light

  let is_terminal t =
    Bitset.cardinal t.marked = Dag.n_edges t.g
    && List.for_all (fun v -> Bitset.mem t.blue v) (Dag.sinks t.g)

  let drop_all_copies t v =
    (* the value of v is being overwritten: blue and every light copy
       become stale and disappear *)
    Bitset.remove t.blue v;
    Array.iteri
      (fun q l ->
        if Bitset.mem l v then begin
          Bitset.remove l v;
          t.n_red.(q) <- t.n_red.(q) - 1
        end)
      t.light;
    if t.dark.(v) >= 0 then begin
      t.n_red.(t.dark.(v)) <- t.n_red.(t.dark.(v)) - 1;
      t.dark.(v) <- -1
    end

  let apply t (m : Move.prbp) =
    match m with
    | Move.Load (q, v) ->
        if not (check_proc t.cfg q) then errf "load: bad processor %d" q
        else if not (Bitset.mem t.blue v) then errf "load %d: no blue" v
        else if Bitset.mem t.light.(q) v then begin
          t.io <- t.io + 1;
          Ok ()
        end
        else if t.n_red.(q) >= t.cfg.r then
          errf "load %d: processor %d full" v q
        else begin
          Bitset.add t.light.(q) v;
          t.n_red.(q) <- t.n_red.(q) + 1;
          t.io <- t.io + 1;
          Ok ()
        end
    | Move.Save (q, v) ->
        if not (check_proc t.cfg q) then errf "save: bad processor %d" q
        else if t.dark.(v) <> q then
          errf "save %d: no dark pebble on processor %d" v q
        else begin
          t.dark.(v) <- -1;
          Bitset.add t.blue v;
          Bitset.add t.light.(q) v;
          (* dark -> blue+light on the same processor: occupancy
             unchanged *)
          t.io <- t.io + 1;
          Ok ()
        end
    | Move.Compute (q, (u, v)) -> (
        if not (check_proc t.cfg q) then errf "compute: bad processor %d" q
        else
          match Dag.edge_id t.g u v with
          | exception Not_found -> errf "compute (%d,%d): no such edge" u v
          | e ->
              if Bitset.mem t.marked e then
                errf "compute (%d,%d): edge marked" u v
              else if t.cfg.one_shot && Bitset.mem t.ever_marked e then
                errf "compute (%d,%d): one-shot" u v
              else if t.unmarked_in.(u) > 0 then
                errf "compute (%d,%d): input not fully computed" u v
              else if not (has_red_on t q u) then
                errf "compute (%d,%d): input not red on processor %d" u v q
              else if
                not
                  (t.dark.(v) = q
                  || Bitset.mem t.light.(q) v
                  || stored_nowhere t v)
              then
                errf
                  "compute (%d,%d): target value lives elsewhere (dark on \
                   another processor, or blue without a local copy)"
                  u v
              else begin
                let was_resident = t.dark.(v) = q || Bitset.mem t.light.(q) v in
                if (not was_resident) && t.n_red.(q) >= t.cfg.r then
                  errf "compute (%d,%d): processor %d full" u v q
                else begin
                  drop_all_copies t v;
                  t.dark.(v) <- q;
                  t.n_red.(q) <- t.n_red.(q) + 1;
                  Bitset.add t.marked e;
                  Bitset.add t.ever_marked e;
                  t.unmarked_in.(v) <- t.unmarked_in.(v) - 1;
                  t.unmarked_out.(u) <- t.unmarked_out.(u) - 1;
                  Ok ()
                end
              end)
    | Move.Delete (q, v) ->
        if not (check_proc t.cfg q) then errf "delete: bad processor %d" q
        else if Bitset.mem t.light.(q) v then begin
          Bitset.remove t.light.(q) v;
          t.n_red.(q) <- t.n_red.(q) - 1;
          Ok ()
        end
        else if t.dark.(v) = q then
          if t.unmarked_out.(v) > 0 then
            errf "delete %d: dark with unmarked out-edges" v
          else begin
            t.dark.(v) <- -1;
            t.n_red.(q) <- t.n_red.(q) - 1;
            Ok ()
          end
        else errf "delete %d: no red pebble on processor %d" v q

  let check cfg g moves =
    let t = start cfg g in
    let rec go i = function
      | [] ->
          if is_terminal t then Ok t.io
          else Error "incomplete pebbling"
      | m :: rest -> (
          match apply t m with
          | Ok () -> go (i + 1) rest
          | Error e -> errf "move #%d (%a): %s" i Move.pp_prbp m e)
    in
    go 0 moves
end

let lift_rbp moves =
  List.map
    (fun (m : Single.R.t) : Move.rbp ->
      match m with
      | Single.R.Load v -> Move.Load (0, v)
      | Single.R.Save v -> Move.Save (0, v)
      | Single.R.Compute v -> Move.Compute (0, v)
      | Single.R.Delete v -> Move.Delete (0, v)
      | Single.R.Slide _ -> invalid_arg "Multi.lift_rbp: slide")
    moves

let lift_prbp moves =
  List.map
    (fun (m : Single.P.t) : Move.prbp ->
      match m with
      | Single.P.Load v -> Move.Load (0, v)
      | Single.P.Save v -> Move.Save (0, v)
      | Single.P.Compute (u, v) -> Move.Compute (0, (u, v))
      | Single.P.Delete v -> Move.Delete (0, v)
      | Single.P.Clear _ -> invalid_arg "Multi.lift_prbp: clear")
    moves

type node = int

module R = struct
  type t =
    | Load of node
    | Save of node
    | Compute of node
    | Delete of node
    | Slide of node * node

  let pp ppf = function
    | Load v -> Format.fprintf ppf "load %d" v
    | Save v -> Format.fprintf ppf "save %d" v
    | Compute v -> Format.fprintf ppf "compute %d" v
    | Delete v -> Format.fprintf ppf "delete %d" v
    | Slide (u, v) -> Format.fprintf ppf "slide %d->%d" u v

  let to_string m = Format.asprintf "%a" pp m

  let is_io = function Load _ | Save _ -> true | _ -> false
end

module P = struct
  type t =
    | Load of node
    | Save of node
    | Compute of node * node
    | Delete of node
    | Clear of node

  let pp ppf = function
    | Load v -> Format.fprintf ppf "load %d" v
    | Save v -> Format.fprintf ppf "save %d" v
    | Compute (u, v) -> Format.fprintf ppf "compute (%d,%d)" u v
    | Delete v -> Format.fprintf ppf "delete %d" v
    | Clear v -> Format.fprintf ppf "clear %d" v

  let to_string m = Format.asprintf "%a" pp m

  let is_io = function Load _ | Save _ -> true | _ -> false
end

let rbp_to_prbp g moves =
  List.concat_map
    (fun (m : R.t) : P.t list ->
      match m with
      | R.Load v -> [ P.Load v ]
      | R.Save v -> [ P.Save v ]
      | R.Delete v -> [ P.Delete v ]
      | R.Compute v ->
          List.rev
            (Prbp_dag.Dag.fold_pred (fun u acc -> P.Compute (u, v) :: acc) g v [])
      | R.Slide _ ->
          invalid_arg "rbp_to_prbp: sliding moves have no PRBP counterpart")
    moves

lib/pebble/multi.ml: Array Format List Move Prbp_dag

lib/pebble/move.mli: Format Prbp_dag

lib/pebble/black.ml: Array Hashtbl List Prbp_dag Queue

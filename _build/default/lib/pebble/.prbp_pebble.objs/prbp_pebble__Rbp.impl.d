lib/pebble/rbp.ml: Format List Move Prbp_dag Printf String

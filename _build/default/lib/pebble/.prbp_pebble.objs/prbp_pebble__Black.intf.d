lib/pebble/black.mli: Prbp_dag

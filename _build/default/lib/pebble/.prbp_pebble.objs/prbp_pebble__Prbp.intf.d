lib/pebble/prbp.mli: Format Move Prbp_dag

lib/pebble/verifier.mli: Move Prbp_dag

lib/pebble/rbp.mli: Format Move Prbp_dag

lib/pebble/verifier.ml: Format List Move Prbp Prbp_dag Rbp Result

lib/pebble/move.ml: Format List Prbp_dag

lib/pebble/trace.ml: Array Buffer Format Hashtbl List Move Prbp Prbp_dag Printf Rbp String

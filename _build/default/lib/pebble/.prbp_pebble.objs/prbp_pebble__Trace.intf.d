lib/pebble/trace.mli: Format Move Prbp Prbp_dag Rbp

lib/pebble/multi.mli: Format Move Prbp_dag

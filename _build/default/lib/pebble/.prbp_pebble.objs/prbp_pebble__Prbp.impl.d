lib/pebble/prbp.ml: Array Format List Move Prbp_dag String

(** Move vocabularies for the two games.

    A pebbling strategy is a plain list of moves; the engines in {!Rbp}
    and {!Prbp} validate them against the transition rules and account
    for their cost.  Strategies being first-class data is what lets the
    test suite replay every constructive proof of the paper. *)

type node = int

(** Moves of the classic red-blue pebble game (Section 1), plus the
    sliding step of the Appendix-B.2 variant. *)
module R : sig
  type t =
    | Load of node      (** blue → add red.  Cost 1. *)
    | Save of node      (** red → add blue.  Cost 1. *)
    | Compute of node   (** all in-neighbors red → red on node.  Free. *)
    | Delete of node    (** remove red.  Free. *)
    | Slide of node * node
        (** [Slide (u, v)]: all in-neighbors of [v] red; move the red
            pebble from in-neighbor [u] onto [v].  Only legal in the
            sliding variant.  Free. *)

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string

  val is_io : t -> bool
  (** [true] on {!Load} and {!Save} — the moves that cost. *)
end

(** Moves of the partial-computing red-blue pebble game (Section 3),
    plus the CLEAR step of the Appendix-B.1 re-computation variant. *)
module P : sig
  type t =
    | Load of node  (** blue → add light red.  Cost 1. *)
    | Save of node  (** dark red → blue + light red.  Cost 1. *)
    | Compute of node * node
        (** [Compute (u, v)]: mark edge [(u, v)], aggregating input [u]
            into [v]; [v] becomes dark red.  Free. *)
    | Delete of node
        (** Remove a light red, or a dark red whose out-edges are all
            marked.  Free. *)
    | Clear of node
        (** Remove all pebbles from [v] and unmark its in-edges; only
            legal in the re-computation variant.  Free. *)

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string

  val is_io : t -> bool
end

val rbp_to_prbp : Prbp_dag.Dag.t -> R.t list -> P.t list
(** The Proposition 4.1 translation: each RBP [Compute v] becomes the
    sequence of partial computes over [v]'s in-edges; loads, saves and
    deletes map one-to-one.  The result has the same I/O cost and is a
    valid PRBP pebbling whenever the input was a valid RBP pebbling.
    [Slide] moves are not translatable and raise [Invalid_argument]. *)

module Bitset = Prbp_dag.Bitset
module Dag = Prbp_dag.Dag

module Pebble = struct
  type t = None_ | Blue | Blue_light | Dark

  let is_red = function Blue_light | Dark -> true | None_ | Blue -> false

  let has_blue = function Blue | Blue_light -> true | None_ | Dark -> false

  let pp ppf = function
    | None_ -> Format.pp_print_string ppf "·"
    | Blue -> Format.pp_print_string ppf "B"
    | Blue_light -> Format.pp_print_string ppf "B+lr"
    | Dark -> Format.pp_print_string ppf "dr"
end

type config = {
  r : int;
  one_shot : bool;
  recompute : bool;
  no_delete : bool;
  compute_cost : float;
  normalized_cost : bool;
}

let config ?(one_shot = true) ?(recompute = false) ?(no_delete = false)
    ?(compute_cost = 0.) ?(normalized_cost = false) ~r () =
  if r < 1 then invalid_arg "Prbp.config: r must be >= 1";
  if compute_cost < 0. then invalid_arg "Prbp.config: negative compute cost";
  if one_shot && recompute then
    invalid_arg "Prbp.config: recompute contradicts one_shot";
  { r; one_shot; recompute; no_delete; compute_cost; normalized_cost }

type t = {
  cfg : config;
  g : Dag.t;
  state : Pebble.t array;
  marked : Bitset.t;  (* currently marked edges *)
  ever_marked : Bitset.t;  (* for the one-shot rule under Clear *)
  unmarked_in : int array;  (* per node: in-edges not currently marked *)
  unmarked_out : int array;  (* per node: out-edges not currently marked *)
  mutable n_red : int;
  mutable n_loads : int;
  mutable n_saves : int;
  mutable n_computes : int;
  mutable max_red : int;
  mutable weighted_compute : float;
}

let start cfg g =
  let n = Dag.n_nodes g in
  let state = Array.make n Pebble.None_ in
  List.iter (fun s -> state.(s) <- Pebble.Blue) (Dag.sources g);
  {
    cfg;
    g;
    state;
    marked = Bitset.create (Dag.n_edges g);
    ever_marked = Bitset.create (Dag.n_edges g);
    unmarked_in = Array.init n (Dag.in_degree g);
    unmarked_out = Array.init n (Dag.out_degree g);
    n_red = 0;
    n_loads = 0;
    n_saves = 0;
    n_computes = 0;
    max_red = 0;
    weighted_compute = 0.;
  }

let dag t = t.g

let capacity t = t.cfg.r

let pebble t v = t.state.(v)

let is_marked t e = Bitset.mem t.marked e

let marked_set t = Bitset.copy t.marked

let red_count t = t.n_red

let red_set t =
  let s = Bitset.create (Dag.n_nodes t.g) in
  Array.iteri (fun v p -> if Pebble.is_red p then Bitset.add s v) t.state;
  s

let unmarked_in t v = t.unmarked_in.(v)

let fully_computed t v = t.unmarked_in.(v) = 0

let io_cost t = t.n_loads + t.n_saves

let loads t = t.n_loads

let saves t = t.n_saves

let computes t = t.n_computes

let total_cost t =
  float_of_int (io_cost t)
  +.
  if t.cfg.normalized_cost then t.cfg.compute_cost *. t.weighted_compute
  else t.cfg.compute_cost *. float_of_int t.n_computes

let max_red_seen t = t.max_red

let is_terminal t =
  Bitset.cardinal t.marked = Dag.n_edges t.g
  && List.for_all (fun v -> Pebble.has_blue t.state.(v)) (Dag.sinks t.g)

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let set_state t v p =
  let was_red = Pebble.is_red t.state.(v) in
  let now_red = Pebble.is_red p in
  t.state.(v) <- p;
  if now_red && not was_red then begin
    t.n_red <- t.n_red + 1;
    if t.n_red > t.max_red then t.max_red <- t.n_red
  end
  else if was_red && not now_red then t.n_red <- t.n_red - 1

let apply t (m : Move.P.t) =
  match m with
  | Move.P.Load v -> (
      match t.state.(v) with
      | Pebble.Blue ->
          if t.n_red >= t.cfg.r then
            errf "load %d: fast memory full (r=%d)" v t.cfg.r
          else begin
            set_state t v Pebble.Blue_light;
            t.n_loads <- t.n_loads + 1;
            Ok ()
          end
      | Pebble.Blue_light ->
          (* value already cached: legal waste of one I/O *)
          t.n_loads <- t.n_loads + 1;
          Ok ()
      | Pebble.None_ | Pebble.Dark -> errf "load %d: no blue pebble" v)
  | Move.P.Save v -> (
      match t.state.(v) with
      | Pebble.Dark ->
          set_state t v Pebble.Blue_light;
          t.n_saves <- t.n_saves + 1;
          Ok ()
      | p -> errf "save %d: needs a dark red pebble (state %a)" v Pebble.pp p)
  | Move.P.Compute (u, v) -> (
      match Dag.edge_id t.g u v with
      | exception Not_found -> errf "compute (%d,%d): no such edge" u v
      | e ->
          if Bitset.mem t.marked e then
            errf "compute (%d,%d): edge already marked" u v
          else if t.cfg.one_shot && Bitset.mem t.ever_marked e then
            errf "compute (%d,%d): edge was marked before (one-shot)" u v
          else if t.unmarked_in.(u) > 0 then
            errf "compute (%d,%d): input %d not fully computed (%d in-edges unmarked)"
              u v u t.unmarked_in.(u)
          else if not (Pebble.is_red t.state.(u)) then
            errf "compute (%d,%d): input %d has no red pebble" u v u
          else begin
            match t.state.(v) with
            | Pebble.Blue ->
                errf
                  "compute (%d,%d): target holds only a blue pebble; load it first"
                  u v
            | Pebble.None_ when t.n_red >= t.cfg.r ->
                errf "compute (%d,%d): fast memory full (r=%d)" u v t.cfg.r
            | Pebble.None_ | Pebble.Blue_light | Pebble.Dark ->
                set_state t v Pebble.Dark;
                Bitset.add t.marked e;
                Bitset.add t.ever_marked e;
                t.unmarked_in.(v) <- t.unmarked_in.(v) - 1;
                t.unmarked_out.(u) <- t.unmarked_out.(u) - 1;
                t.n_computes <- t.n_computes + 1;
                t.weighted_compute <-
                  t.weighted_compute +. (1. /. float_of_int (Dag.in_degree t.g v));
                Ok ()
          end)
  | Move.P.Delete v -> (
      match t.state.(v) with
      | Pebble.Blue_light ->
          set_state t v Pebble.Blue;
          Ok ()
      | Pebble.Dark ->
          if t.cfg.no_delete then
            errf "delete %d: dark red only removable by save in this variant" v
          else if t.unmarked_out.(v) > 0 then
            errf "delete %d: dark red with %d unmarked out-edges" v
              t.unmarked_out.(v)
          else begin
            set_state t v Pebble.None_;
            Ok ()
          end
      | p -> errf "delete %d: no red pebble (state %a)" v Pebble.pp p)
  | Move.P.Clear v ->
      if not t.cfg.recompute then errf "clear %d: re-computation not enabled" v
      else if Dag.is_source t.g v then errf "clear %d: node is a source" v
      else if Dag.is_sink t.g v then errf "clear %d: node is a sink" v
      else begin
        set_state t v Pebble.None_;
        Dag.iter_pred_e
          (fun e u ->
            if Bitset.mem t.marked e then begin
              Bitset.remove t.marked e;
              t.unmarked_in.(v) <- t.unmarked_in.(v) + 1;
              t.unmarked_out.(u) <- t.unmarked_out.(u) + 1
            end)
          t.g v;
        Ok ()
      end

let run cfg g moves =
  let t = start cfg g in
  let rec go i = function
    | [] -> Ok t
    | m :: rest -> (
        match apply t m with
        | Ok () -> go (i + 1) rest
        | Error e -> errf "move #%d (%a): %s" i Move.P.pp m e)
  in
  go 0 moves

let run_exn cfg g moves =
  match run cfg g moves with Ok t -> t | Error e -> failwith e

let check cfg g moves =
  match run cfg g moves with
  | Error _ as e -> e
  | Ok t ->
      if is_terminal t then Ok (io_cost t)
      else
        errf "pebbling incomplete: %d/%d edges marked, sinks blue: %b"
          (Bitset.cardinal t.marked) (Dag.n_edges t.g)
        (List.for_all (fun v -> Pebble.has_blue t.state.(v)) (Dag.sinks t.g))

let pp_state ppf t =
  let cells =
    List.filter_map
      (fun v ->
        match t.state.(v) with
        | Pebble.None_ -> None
        | p -> Some (Format.asprintf "%s:%a" (Dag.name t.g v) Pebble.pp p))
      (List.init (Dag.n_nodes t.g) (fun v -> v))
  in
  Format.fprintf ppf "{%s} marked %d/%d io=%d"
    (String.concat " " cells)
    (Bitset.cardinal t.marked) (Dag.n_edges t.g) (io_cost t)

type step = {
  index : int;
  io_so_far : int;
  red_count : int;
  description : string;
}

type t = { steps : step array; r : int; cost : int; peak : int }

let record ~r ~apply ~io_cost ~red_count ~is_terminal ~describe moves =
  let steps = ref [] in
  let rec go i = function
    | [] -> Ok ()
    | m :: rest -> (
        match apply m with
        | Error e ->
            Error (Printf.sprintf "move #%d (%s): %s" i (describe m) e)
        | Ok () ->
            steps :=
              {
                index = i;
                io_so_far = io_cost ();
                red_count = red_count ();
                description = describe m;
              }
              :: !steps;
            go (i + 1) rest)
  in
  match go 0 moves with
  | Error _ as e -> e
  | Ok () ->
      if not (is_terminal ()) then Error "incomplete pebbling"
      else
        let steps = Array.of_list (List.rev !steps) in
        let peak =
          Array.fold_left (fun acc s -> max acc s.red_count) 0 steps
        in
        Ok { steps; r; cost = io_cost (); peak }

let of_rbp cfg g moves =
  let eng = Rbp.start cfg g in
  record ~r:cfg.Rbp.r
    ~apply:(fun m -> Rbp.apply eng m)
    ~io_cost:(fun () -> Rbp.io_cost eng)
    ~red_count:(fun () -> Rbp.red_count eng)
    ~is_terminal:(fun () -> Rbp.is_terminal eng)
    ~describe:Move.R.to_string moves

let of_prbp cfg g moves =
  let eng = Prbp.start cfg g in
  record ~r:cfg.Prbp.r
    ~apply:(fun m -> Prbp.apply eng m)
    ~io_cost:(fun () -> Prbp.io_cost eng)
    ~red_count:(fun () -> Prbp.red_count eng)
    ~is_terminal:(fun () -> Prbp.is_terminal eng)
    ~describe:Move.P.to_string moves

let occupancy t =
  let width = 72 in
  let n = Array.length t.steps in
  if n = 0 then "(empty trace)\n"
  else begin
    let buckets = min width n in
    let per = (n + buckets - 1) / buckets in
    let heights = Array.make buckets 0 in
    let io = Array.make buckets false in
    Array.iteri
      (fun i s ->
        let b = min (buckets - 1) (i / per) in
        heights.(b) <- max heights.(b) s.red_count;
        let prev_io = if i = 0 then 0 else t.steps.(i - 1).io_so_far in
        if s.io_so_far > prev_io then io.(b) <- true)
      t.steps;
    let buf = Buffer.create 1024 in
    for row = t.r downto 1 do
      Buffer.add_string buf (Printf.sprintf "%3d |" row);
      for b = 0 to buckets - 1 do
        Buffer.add_char buf (if heights.(b) >= row then '#' else ' ')
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "    +";
    Buffer.add_string buf (String.make buckets '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf "i/o  ";
    for b = 0 to buckets - 1 do
      Buffer.add_char buf (if io.(b) then '*' else ' ')
    done;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

let summary t =
  let n = Array.length t.steps in
  Printf.sprintf
    "%d moves, %d I/O operations (%.1f%% of moves), peak %d/%d red pebbles"
    n t.cost
    (if n = 0 then 0. else 100. *. float_of_int t.cost /. float_of_int n)
    t.peak t.r

type breakdown = {
  source_loads : int;
  sink_saves : int;
  reloads : int;
  spills : int;
}

let classify ~is_source ~is_sink moves =
  let seen_load = Hashtbl.create 16 and seen_save = Hashtbl.create 16 in
  List.fold_left
    (fun acc m ->
      match m with
      | `Load v ->
          if is_source v && not (Hashtbl.mem seen_load v) then begin
            Hashtbl.add seen_load v ();
            { acc with source_loads = acc.source_loads + 1 }
          end
          else { acc with reloads = acc.reloads + 1 }
      | `Save v ->
          if is_sink v && not (Hashtbl.mem seen_save v) then begin
            Hashtbl.add seen_save v ();
            { acc with sink_saves = acc.sink_saves + 1 }
          end
          else { acc with spills = acc.spills + 1 }
      | `Other -> acc)
    { source_loads = 0; sink_saves = 0; reloads = 0; spills = 0 }
    moves

let breakdown_rbp cfg g moves =
  match Rbp.check cfg g moves with
  | Error s -> Error s
  | Ok _ ->
      Ok
        (classify
           ~is_source:(Prbp_dag.Dag.is_source g)
           ~is_sink:(Prbp_dag.Dag.is_sink g)
           (List.map
              (function
                | Move.R.Load v -> `Load v
                | Move.R.Save v -> `Save v
                | _ -> `Other)
              moves))

let breakdown_prbp cfg g moves =
  match Prbp.check cfg g moves with
  | Error s -> Error s
  | Ok _ ->
      Ok
        (classify
           ~is_source:(Prbp_dag.Dag.is_source g)
           ~is_sink:(Prbp_dag.Dag.is_sink g)
           (List.map
              (function
                | Move.P.Load v -> `Load v
                | Move.P.Save v -> `Save v
                | _ -> `Other)
              moves))

let non_trivial b = b.reloads + b.spills

let pp_breakdown ppf b =
  Format.fprintf ppf
    "trivial: %d loads + %d saves; non-trivial: %d reloads + %d spills"
    b.source_loads b.sink_saves b.reloads b.spills

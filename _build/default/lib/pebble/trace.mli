(** Pebbling-trace instrumentation: replay a strategy while recording
    the cache state after every move, then render timelines.

    Useful to {e see} why a strategy has the cost it has: which values
    stay resident, where the save/load churn concentrates, and how
    close the schedule runs to the capacity [r]. *)

(** One snapshot per executed move. *)
type step = {
  index : int;  (** 0-based move index *)
  io_so_far : int;  (** cumulative I/O cost after the move *)
  red_count : int;  (** red pebbles after the move *)
  description : string;  (** pretty-printed move *)
}

type t = {
  steps : step array;
  r : int;
  cost : int;  (** total I/O of the complete pebbling *)
  peak : int;  (** max simultaneous red pebbles *)
}

val of_rbp :
  Rbp.config -> Prbp_dag.Dag.t -> Move.R.t list -> (t, string) result
(** Replay and record; requires a complete (terminal) pebbling. *)

val of_prbp :
  Prbp.config -> Prbp_dag.Dag.t -> Move.P.t list -> (t, string) result

val occupancy : t -> string
(** A fixed-width ASCII chart of cache occupancy over time: one column
    per time bucket, height [r]; ['#'] up to the bucket's max red
    count.  I/O moves are marked under the axis with ['*'] when the
    bucket contains at least one. *)

val summary : t -> string
(** One-paragraph textual summary: moves, I/O, peak/capacity, I/O
    density. *)

(** Classification of a complete pebbling's I/O into the paper's
    categories: the {e trivial} cost (first load of each source, first
    save of each sink) is unavoidable in both games; everything else is
    the {e non-trivial} I/O that the paper's bounds and gaps are about. *)
type breakdown = {
  source_loads : int;  (** first loads of source nodes *)
  sink_saves : int;  (** first saves of sink nodes *)
  reloads : int;  (** any further load *)
  spills : int;  (** any further save *)
}

val breakdown_rbp :
  Rbp.config -> Prbp_dag.Dag.t -> Move.R.t list -> (breakdown, string) result

val breakdown_prbp :
  Prbp.config -> Prbp_dag.Dag.t -> Move.P.t list -> (breakdown, string) result

val non_trivial : breakdown -> int
(** [reloads + spills]. *)

val pp_breakdown : Format.formatter -> breakdown -> unit

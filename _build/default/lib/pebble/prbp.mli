(** Rule-checking engine for the partial-computing red-blue pebble game
    (PRBP), Section 3 of the paper.

    A node is always in one of four pebble states:

    - {!Pebble.None_}: value stored nowhere;
    - {!Pebble.Blue}: value only in slow memory;
    - {!Pebble.Blue_light}: current value in both memories (blue + light
      red);
    - {!Pebble.Dark}: value updated since the last I/O — only in fast
      memory (dark red, no blue).

    Light red never exists without blue, and dark red never coexists
    with blue; the four-state encoding is therefore exhaustive.

    In-edges of a node are {e marked} as its inputs get aggregated; the
    game is one-shot per edge by default.  Terminality requires every
    edge marked and a blue pebble on every sink. *)

module Pebble : sig
  type t = None_ | Blue | Blue_light | Dark

  val is_red : t -> bool
  (** Light or dark red — occupies a slot of fast memory. *)

  val has_blue : t -> bool

  val pp : Format.formatter -> t -> unit
end

type config = {
  r : int;  (** fast-memory capacity *)
  one_shot : bool;  (** each edge marked at most once, ever *)
  recompute : bool;  (** allow [Move.P.Clear] (Appendix B.1) *)
  no_delete : bool;
      (** Appendix B.4: dark red removable only via [Save] *)
  compute_cost : float;  (** ε charged per partial compute *)
  normalized_cost : bool;
      (** charge ε/deg_in(v) instead of ε for a partial compute into
          [v], keeping totals comparable with node-based RBP costs
          (Appendix B.3) *)
}

val config : ?one_shot:bool -> ?recompute:bool -> ?no_delete:bool ->
  ?compute_cost:float -> ?normalized_cost:bool -> r:int -> unit -> config

type t

val start : config -> Prbp_dag.Dag.t -> t

val dag : t -> Prbp_dag.Dag.t

val capacity : t -> int

(** {1 State observation} *)

val pebble : t -> Move.node -> Pebble.t

val is_marked : t -> Prbp_dag.Dag.edge_id -> bool

val marked_set : t -> Prbp_dag.Bitset.t
(** Copy of the currently-marked edge set. *)

val red_count : t -> int

val red_set : t -> Prbp_dag.Bitset.t

val unmarked_in : t -> Move.node -> int
(** Number of still-unmarked in-edges ([0] iff the node's value is
    final — fully computed). *)

val fully_computed : t -> Move.node -> bool
(** All in-edges marked (sources are trivially fully computed). *)

(** {1 Cost accounting} *)

val io_cost : t -> int

val loads : t -> int

val saves : t -> int

val computes : t -> int
(** Partial-compute (edge-marking) steps executed. *)

val total_cost : t -> float

val max_red_seen : t -> int

val is_terminal : t -> bool
(** All edges marked and every sink has a blue pebble. *)

(** {1 Execution} *)

val apply : t -> Move.P.t -> (unit, string) result

val run : config -> Prbp_dag.Dag.t -> Move.P.t list -> (t, string) result

val run_exn : config -> Prbp_dag.Dag.t -> Move.P.t list -> t

val check : config -> Prbp_dag.Dag.t -> Move.P.t list -> (int, string) result
(** Replay, require terminality, return the I/O cost. *)

val pp_state : Format.formatter -> t -> unit
(** One-line snapshot: per-node pebble states (skipping empty nodes),
    marked-edge count and cost so far. *)

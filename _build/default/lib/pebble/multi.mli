(** Multiprocessor red-blue pebbling, in the spirit of the
    parallel-RBP line of work the paper points at in Section 8.1
    ([Böhnlein–Papp–Yzelman 2025] and earlier).

    [p] processors each own a fast memory of capacity [r]; slow memory
    is shared and unbounded.  All I/O (loads and saves, on any
    processor) counts toward one total cost — the model measures
    {e communication volume}, not makespan.

    {b RBP-MC}: a value may be red on several processors at once (each
    holding its own copy); COMPUTE on processor [q] needs all inputs
    red on [q] and places the result red on [q].  One-shot globally.

    {b PRBP-MC}: the partial value of a node lives on at most one
    processor (a dark pebble is exclusive); light copies may exist on
    several.  A partial compute along [(u,v)] on processor [q] needs
    [u] fully computed and red on [q], and [v] either red on [q] or
    stored nowhere; it invalidates all other copies of [v] (they are
    stale) and leaves [v] dark on [q].  Handing a partial value from
    one processor to another therefore costs a save and a load — the
    communication/aggregation trade-off that makes the parallel game
    interesting.

    These semantics are this library's (conservative) formalization of
    the extension the paper only sketches; they specialize exactly to
    the Section 1/3 games at [p = 1] (tested). *)

type config = {
  p : int;  (** number of processors *)
  r : int;  (** fast-memory capacity per processor *)
  one_shot : bool;
}

val config : ?one_shot:bool -> p:int -> r:int -> unit -> config

module Single = Move
(** The single-processor move vocabulary of {!Move}, under a name that
    survives the shadowing below. *)

(** Moves name the acting processor. *)
module Move : sig
  type rbp =
    | Load of int * int  (** processor, node *)
    | Save of int * int
    | Compute of int * int
    | Delete of int * int

  type prbp =
    | Load of int * int
    | Save of int * int
    | Compute of int * (int * int)  (** processor, edge *)
    | Delete of int * int

  val pp_rbp : Format.formatter -> rbp -> unit

  val pp_prbp : Format.formatter -> prbp -> unit
end

(** {1 RBP-MC engine} *)

module R : sig
  type t

  val start : config -> Prbp_dag.Dag.t -> t

  val apply : t -> Move.rbp -> (unit, string) result

  val io_cost : t -> int

  val red_count : t -> int -> int
  (** Occupancy of one processor's fast memory. *)

  val is_terminal : t -> bool

  val check :
    config -> Prbp_dag.Dag.t -> Move.rbp list -> (int, string) result
end

(** {1 PRBP-MC engine} *)

module P : sig
  type t

  val start : config -> Prbp_dag.Dag.t -> t

  val apply : t -> Move.prbp -> (unit, string) result

  val io_cost : t -> int

  val red_count : t -> int -> int

  val is_terminal : t -> bool

  val check :
    config -> Prbp_dag.Dag.t -> Move.prbp list -> (int, string) result
end

(** {1 Single-processor specialization} *)

val lift_rbp : Single.R.t list -> Move.rbp list
(** Run a single-processor strategy on processor 0 — used to check
    that the [p = 1] case coincides with the Section-1 game
    ([Slide] moves are rejected with [Invalid_argument]). *)

val lift_prbp : Single.P.t list -> Move.prbp list
(** Likewise for PRBP ([Clear] moves are rejected). *)

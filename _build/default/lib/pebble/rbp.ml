module Bitset = Prbp_dag.Bitset
module Dag = Prbp_dag.Dag

type config = {
  r : int;
  one_shot : bool;
  sliding : bool;
  no_delete : bool;
  compute_cost : float;
}

let config ?(one_shot = true) ?(sliding = false) ?(no_delete = false)
    ?(compute_cost = 0.) ~r () =
  if r < 1 then invalid_arg "Rbp.config: r must be >= 1";
  if compute_cost < 0. then invalid_arg "Rbp.config: negative compute cost";
  { r; one_shot; sliding; no_delete; compute_cost }

type t = {
  cfg : config;
  g : Dag.t;
  red : Bitset.t;
  blue : Bitset.t;
  computed : Bitset.t;
  mutable n_red : int;
  mutable n_loads : int;
  mutable n_saves : int;
  mutable n_computes : int;
  mutable max_red : int;
}

let start cfg g =
  let n = Dag.n_nodes g in
  let blue = Bitset.create n in
  List.iter (Bitset.add blue) (Dag.sources g);
  {
    cfg;
    g;
    red = Bitset.create n;
    blue;
    computed = Bitset.create n;
    n_red = 0;
    n_loads = 0;
    n_saves = 0;
    n_computes = 0;
    max_red = 0;
  }

let dag t = t.g

let capacity t = t.cfg.r

let has_red t v = Bitset.mem t.red v

let has_blue t v = Bitset.mem t.blue v

let is_computed t v = Bitset.mem t.computed v

let red_count t = t.n_red

let red_set t = Bitset.copy t.red

let blue_set t = Bitset.copy t.blue

let computed_set t = Bitset.copy t.computed

let io_cost t = t.n_loads + t.n_saves

let loads t = t.n_loads

let saves t = t.n_saves

let computes t = t.n_computes

let total_cost t =
  float_of_int (io_cost t) +. (t.cfg.compute_cost *. float_of_int t.n_computes)

let max_red_seen t = t.max_red

let is_terminal t =
  List.for_all (fun v -> Bitset.mem t.blue v) (Dag.sinks t.g)

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let add_red t v =
  Bitset.add t.red v;
  t.n_red <- t.n_red + 1;
  if t.n_red > t.max_red then t.max_red <- t.n_red

let remove_red t v =
  Bitset.remove t.red v;
  t.n_red <- t.n_red - 1

let preds_all_red t v =
  Dag.fold_pred (fun u acc -> acc && Bitset.mem t.red u) t.g v true

(* Legality of a compute-like step on v: non-source, inputs red,
   one-shot discipline respected. *)
let computable t v =
  if Dag.is_source t.g v then errf "compute %d: node is a source" v
  else if t.cfg.one_shot && Bitset.mem t.computed v then
    errf "compute %d: already computed (one-shot)" v
  else if not (preds_all_red t v) then
    errf "compute %d: some in-neighbor lacks a red pebble" v
  else Ok ()

let apply t (m : Move.R.t) =
  match m with
  | Move.R.Load v ->
      if not (Bitset.mem t.blue v) then errf "load %d: no blue pebble" v
      else if Bitset.mem t.red v then begin
        (* legal per the rules, a pure waste of one I/O *)
        t.n_loads <- t.n_loads + 1;
        Ok ()
      end
      else if t.n_red >= t.cfg.r then
        errf "load %d: fast memory full (r=%d)" v t.cfg.r
      else begin
        add_red t v;
        t.n_loads <- t.n_loads + 1;
        Ok ()
      end
  | Move.R.Save v ->
      if not (Bitset.mem t.red v) then errf "save %d: no red pebble" v
      else begin
        Bitset.add t.blue v;
        if t.cfg.no_delete then remove_red t v;
        t.n_saves <- t.n_saves + 1;
        Ok ()
      end
  | Move.R.Compute v -> (
      match computable t v with
      | Error _ as e -> e
      | Ok () ->
          if Bitset.mem t.red v then begin
            (* re-computation onto an already-red node: no new pebble *)
            Bitset.add t.computed v;
            t.n_computes <- t.n_computes + 1;
            Ok ()
          end
          else if t.n_red >= t.cfg.r then
            errf "compute %d: fast memory full (r=%d)" v t.cfg.r
          else begin
            add_red t v;
            Bitset.add t.computed v;
            t.n_computes <- t.n_computes + 1;
            Ok ()
          end)
  | Move.R.Delete v ->
      if t.cfg.no_delete then errf "delete %d: forbidden in this variant" v
      else if not (Bitset.mem t.red v) then errf "delete %d: no red pebble" v
      else begin
        remove_red t v;
        Ok ()
      end
  | Move.R.Slide (u, v) -> (
      if not t.cfg.sliding then
        errf "slide %d->%d: sliding not enabled" u v
      else if not (Dag.has_edge t.g u v) then
        errf "slide %d->%d: no such edge" u v
      else
        match computable t v with
        | Error _ as e -> e
        | Ok () ->
            if Bitset.mem t.red v then
              errf "slide %d->%d: target already red" u v
            else begin
              remove_red t u;
              add_red t v;
              Bitset.add t.computed v;
              t.n_computes <- t.n_computes + 1;
              Ok ()
            end)

let run cfg g moves =
  let t = start cfg g in
  let rec go i = function
    | [] -> Ok t
    | m :: rest -> (
        match apply t m with
        | Ok () -> go (i + 1) rest
        | Error e -> errf "move #%d (%a): %s" i Move.R.pp m e)
  in
  go 0 moves

let run_exn cfg g moves =
  match run cfg g moves with Ok t -> t | Error e -> failwith e

let check cfg g moves =
  match run cfg g moves with
  | Error _ as e -> e
  | Ok t ->
      if is_terminal t then Ok (io_cost t)
      else Error "pebbling incomplete: some sink has no blue pebble"

let normalize cfg g moves =
  let t = start cfg g in
  let keep = ref [] in
  List.iter
    (fun (m : Move.R.t) ->
      let redundant =
        match m with
        | Move.R.Load v -> Bitset.mem t.red v
        | Move.R.Save v ->
            (* in the no-delete variant a save also removes the red
               pebble, so it is never a pure no-op *)
            (not cfg.no_delete) && Bitset.mem t.blue v
        | _ -> false
      in
      if not redundant then begin
        match apply t m with
        | Ok () -> keep := m :: !keep
        | Error e ->
            failwith (Printf.sprintf "Rbp.normalize: illegal strategy: %s" e)
      end)
    moves;
  List.rev !keep

let pp_state ppf t =
  let names b =
    String.concat " " (List.map (Dag.name t.g) (Bitset.to_list b))
  in
  Format.fprintf ppf "red {%s} blue {%s} computed {%s} io=%d" (names t.red)
    (names t.blue) (names t.computed) (io_cost t)

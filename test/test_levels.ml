(* Theorem 7.1 level gadgets with auxiliary levels (Appendix A.5). *)
open Test_util
module Dag = Prbp.Dag
module L = Prbp.Graphs.Levels71

let test_plain_tower_wiring () =
  let t = L.make ~aux:false ~sizes:[ [ 3; 3; 2 ] ] ~cross:[] () in
  let tw = t.L.towers.(0) in
  check_int "three levels" 3 (Array.length tw.L.levels);
  let l0 = tw.L.levels.(0) and l1 = tw.L.levels.(1) and l2 = tw.L.levels.(2) in
  (* chain inside a level *)
  check_true "chain" (Dag.has_edge t.L.dag l0.(0) l0.(1));
  (* pairwise edges between equal-size levels *)
  check_true "pairwise" (Dag.has_edge t.L.dag l0.(2) l1.(2));
  (* shrink: surplus node points to the last node of the next level *)
  check_true "overflow" (Dag.has_edge t.L.dag l1.(2) l2.(1));
  check_false "no straight edge for surplus" (Dag.has_edge t.L.dag l1.(2) l2.(0))

let test_aux_levels_inserted () =
  let t = L.make ~aux:true ~sizes:[ [ 3; 2 ] ] ~cross:[] () in
  let tw = t.L.towers.(0) in
  (* 1 aux before level0, (3-2+2)=3 aux before level1, 1 aux on top *)
  let n_aux =
    Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 tw.L.original
  in
  check_int "aux count" 5 n_aux;
  check_int "level count" 7 (Array.length tw.L.levels);
  (* auxiliary levels mirror the size of the level above them *)
  Alcotest.(check (list int)) "original sizes" [ 3; 2 ]
    (List.filter_map (fun i ->
         if tw.L.original.(i) then Some (Array.length tw.L.levels.(i)) else None)
       (List.init 7 (fun i -> i)))

let test_shrink_lockdown_edges () =
  (* the surplus nodes of a shrinking level feed the last node of every
     auxiliary level in the block above (Figure 5 / A.5) *)
  let t = L.make ~aux:true ~sizes:[ [ 4; 2 ] ] ~cross:[] () in
  let tw = t.L.towers.(0) in
  let big = L.original_level tw 0 in
  (* block of 4-2+2 = 4 aux levels above the big level *)
  let aux_block =
    List.filter_map
      (fun i ->
        if (not tw.L.original.(i)) && Array.length tw.L.levels.(i) = 2 then
          Some tw.L.levels.(i)
        else None)
      (List.init (Array.length tw.L.levels) (fun i -> i))
  in
  (* at least the block below the small original level: each gets edges
     from both surplus nodes big.(2), big.(3) into its last node *)
  let count =
    List.length
      (List.filter
         (fun lv ->
           Dag.has_edge t.L.dag big.(2) lv.(1)
           && Dag.has_edge t.L.dag big.(3) lv.(1))
         aux_block)
  in
  check_true "lockdown edges present" (count >= 3)

let test_cross_tower_precedence () =
  let t =
    L.make ~aux:true ~sizes:[ [ 2; 2 ]; [ 2; 2 ] ]
      ~cross:[ (0, 1, 1, 1) ]
      ()
  in
  let src = L.original_level t.L.towers.(0) 1 in
  (* edges land on the aux level below the target, not the target *)
  let dst_orig = L.original_level t.L.towers.(1) 1 in
  check_false "not directly to the level"
    (Dag.has_edge t.L.dag src.(0) dst_orig.(0));
  (* but the DAG is connected across towers *)
  let reach = Prbp.Reach.descendants t.L.dag src.(0) in
  check_true "precedence enforced" (Prbp.Bitset.mem reach dst_orig.(0))

let test_aux_preserves_rbp_optimum () =
  (* A.5: auxiliary levels do not change the RBP optimum; verified
     exactly on a small tower *)
  let plain = L.make ~aux:false ~sizes:[ [ 2; 2 ] ] ~cross:[] () in
  let auxed = L.make ~aux:true ~sizes:[ [ 2; 2 ] ] ~cross:[] () in
  let r = 4 in
  let c_plain = Test_util.opt_rbp (Prbp.Rbp.config ~r ()) plain.L.dag in
  let c_aux = Test_util.opt_rbp (Prbp.Rbp.config ~r ()) auxed.L.dag in
  check_int "optimum preserved" c_plain c_aux

let test_prbp_still_cheap () =
  let t = L.make ~aux:true ~sizes:[ [ 2; 2 ] ] ~cross:[] () in
  let c = Test_util.opt_prbp (Prbp.Prbp_game.config ~r:4 ()) t.L.dag in
  check_int "trivial-ish cost" (Dag.trivial_cost t.L.dag) c

let test_original_level_lookup () =
  let t = L.make ~aux:true ~sizes:[ [ 3; 1; 2 ] ] ~cross:[] () in
  let tw = t.L.towers.(0) in
  check_int "level 0 size" 3 (Array.length (L.original_level tw 0));
  check_int "level 1 size" 1 (Array.length (L.original_level tw 1));
  check_int "level 2 size" 2 (Array.length (L.original_level tw 2));
  check_true "missing level raises"
    (match L.original_level tw 3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    ( "levels71",
      [
        case "plain tower wiring" test_plain_tower_wiring;
        case "auxiliary levels inserted" test_aux_levels_inserted;
        case "shrink lock-down edges" test_shrink_lockdown_edges;
        case "cross-tower precedence" test_cross_tower_precedence;
        case "aux preserves RBP optimum" test_aux_preserves_rbp_optimum;
        case "PRBP cost stays low" test_prbp_still_cheap;
        case "original-level lookup" test_original_level_lookup;
      ] );
  ]

open Test_util
module Dag = Prbp.Dag
module MP = Prbp.Minpart
module Segment = Prbp.Bounds.Segment

(* Collapse a verdict to the classic [int option] shape, treating a
   truncated search as a test failure (these instances are tiny). *)
let min_of what = function
  | MP.Minimum { classes; _ } -> Some classes
  | MP.No_partition -> None
  | MP.Truncated { reason; _ } ->
      Alcotest.failf "%s: search truncated (%s)" what
        (Prbp.Solver.reason_label reason)

let min_exn what v =
  match min_of what v with
  | Some k -> k
  | None -> Alcotest.failf "%s: expected a partition to exist" what

(* Every Minimum verdict must carry a witness with exactly [classes]
   blocks that re-validates through the exact checkers. *)
let witness_ok flavor g ~s what = function
  | MP.Minimum { classes; witness; _ } -> (
      check_int (what ^ ": witness size") classes (Array.length witness);
      match Segment.of_minpart flavor g ~s witness with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: witness rejected: %s" what e)
  | MP.No_partition | MP.Truncated _ -> ()

let test_ideals_path () =
  (* ideals of a path are its prefixes, plus the empty set *)
  match MP.ideals (Prbp.Graphs.Basic.path 5) with
  | Ok n -> check_int "path(5)" 6 n
  | Error _ -> Alcotest.fail "path(5) ideal count truncated"

let test_ideals_diamond () =
  (* ∅,{0},{01},{02},{012},{0123} *)
  match MP.ideals (Prbp.Graphs.Basic.diamond ()) with
  | Ok n -> check_int "diamond" 6 n
  | Error _ -> Alcotest.fail "diamond ideal count truncated"

let test_single_class_cases () =
  let d = Prbp.Graphs.Basic.diamond () in
  check_int "diamond s=2" 1 (min_exn "diamond" (MP.spartition d ~s:2));
  check_int "dominator version" 1
    (min_exn "diamond dom" (MP.dominator_partition d ~s:2));
  let p = Prbp.Graphs.Basic.path 6 in
  check_int "path s=1" 1 (min_exn "path" (MP.spartition p ~s:1))

let test_fan_out_terminal_pressure () =
  (* 5 sinks, classes limited to terminal size 2: MIN_part = 3 while
     MIN_dom = 1 (Definition 6.6 drops the terminal condition) *)
  let g = Prbp.Graphs.Basic.fan_out 5 in
  check_int "MIN_part" 3 (min_exn "fan-out part" (MP.spartition g ~s:2));
  check_int "MIN_dom" 1 (min_exn "fan-out dom" (MP.dominator_partition g ~s:2))

let test_edge_partition_diamond () =
  (* the whole diamond edge set is already a valid class at S = 1: its
     edge-dominator is {source} and its edge-terminal is {sink} *)
  let g = Prbp.Graphs.Basic.diamond () in
  check_int "MIN_edge(1)" 1 (min_exn "diamond edge" (MP.edge_partition g ~s:1));
  (* fan-out: every out-edge ends at a distinct sink, so edge-terminal
     pressure forces ⌈5/2⌉ classes at S = 2 *)
  let f = Prbp.Graphs.Basic.fan_out 5 in
  check_int "fan-out MIN_edge(2)" 3
    (min_exn "fan-out edge s=2" (MP.edge_partition f ~s:2));
  check_int "fan-out MIN_edge(5)" 1
    (min_exn "fan-out edge s=5" (MP.edge_partition f ~s:5))

let test_infeasible_s0 () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_true "s=0 has no partition" (MP.spartition g ~s:0 = MP.No_partition)

let test_witnesses_revalidate () =
  (* whatever DAG the search is given, a Minimum verdict's witness must
     pass the corresponding exact checker with the reported class count *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 10 then
        List.iter
          (fun s ->
            witness_ok Segment.Spartition g ~s "MIN_part" (MP.spartition g ~s);
            witness_ok Segment.Dominator g ~s "MIN_dom"
              (MP.dominator_partition g ~s);
            witness_ok Segment.Edge g ~s "MIN_edge" (MP.edge_partition g ~s))
          [ 2; 3; 4 ])
    (Lazy.force random_dags)

let test_min_dom_at_most_min_part () =
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 10 then
        List.iter
          (fun s ->
            match
              ( min_of "MIN_dom" (MP.dominator_partition g ~s),
                min_of "MIN_part" (MP.spartition g ~s) )
            with
            | Some d, Some p -> check_true "MIN_dom <= MIN_part" (d <= p)
            | _, None -> ()
            | None, Some _ -> Alcotest.fail "dom infeasible but part feasible")
          [ 2; 3; 4 ])
    (Lazy.force random_dags)

let test_greedy_upper_bounds_exact () =
  (* the greedy construction can never beat the exact minimum *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 9 then begin
        let s = 3 in
        match min_of "MIN_part" (MP.spartition g ~s) with
        | Some k ->
            let greedy = Array.length (Prbp.Spart.greedy_spartition g ~s) in
            check_true "greedy >= exact" (greedy >= k)
        | None -> ()
      end)
    (Lazy.force random_dags)

let test_theorem_65_exact () =
  (* r·(MIN_edge(2r) − 1) <= OPT_PRBP, with MIN computed exactly *)
  let cases =
    [
      ("fig1", fst (Prbp.Graphs.Fig1.full ()), 2);
      ("diamond", Prbp.Graphs.Basic.diamond (), 2);
      ("tree(2,3)", (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag, 3);
      ("pyramid(2)", Prbp.Graphs.Basic.pyramid 2, 2);
    ]
  in
  List.iter
    (fun (name, g, r) ->
      let opt = Test_util.opt_prbp (Prbp.Prbp_game.config ~r ()) g in
      let edge = MP.prbp_bound_edge g ~r in
      let dom = MP.prbp_bound_dom g ~r in
      check_true (name ^ ": edge bound sound") (edge <= opt);
      check_true (name ^ ": dom bound sound") (dom <= opt))
    cases

let test_hong_kung_exact () =
  (* r·(MIN_part(2r) − 1) <= OPT_RBP with exact MIN_part *)
  let cases =
    [
      ("fig1", fst (Prbp.Graphs.Fig1.full ()), 4);
      ("tree(2,3)", (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag, 3);
    ]
  in
  List.iter
    (fun (name, g, r) ->
      let opt = Test_util.opt_rbp (Prbp.Rbp.config ~r ()) g in
      check_true (name ^ ": HK bound sound") (MP.rbp_bound g ~r <= opt))
    cases

let test_extraction_respects_min () =
  (* any extracted partition has at least MIN classes *)
  let g, ids = Prbp.Graphs.Fig1.full () in
  let r = 4 in
  let moves = Prbp.Strategies.fig1_prbp ids in
  let extracted = Prbp.Extract.edge_partition_of_prbp ~r g moves in
  match min_of "MIN_edge" (MP.edge_partition g ~s:(2 * r)) with
  | Some k -> check_true "extracted >= MIN" (Array.length extracted >= k)
  | None -> Alcotest.fail "partition must exist"

let test_budget_truncates () =
  (* a starved state budget must surface as Truncated, not an exception,
     and the derived bound must be the (sound, possibly 0) anytime floor *)
  let l = Prbp.Graphs.Lemma54.make ~group_size:4 in
  let g = l.Prbp.Graphs.Lemma54.dag in
  let budget = Prbp.Solver.Budget.v ~max_states:50 ~check_every:1 () in
  check_true "ideals truncates" (Result.is_error (MP.ideals ~budget g));
  match MP.spartition ~budget g ~s:4 with
  | MP.Truncated { lower_so_far; _ } as v ->
      check_true "anytime floor >= 1" (lower_so_far >= 1);
      check_true "floor bound nonneg" (MP.bound_of ~r:2 v >= 0)
  | MP.Minimum _ | MP.No_partition ->
      Alcotest.fail "expected Truncated under a 50-state budget"

let test_anytime_floor_sound () =
  (* wherever the exact minimum is known, any truncated run's floor must
     stay at or below it — for every flavor and a range of budgets *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 9 then
        List.iter
          (fun (label, search) ->
            let s = 3 in
            match (search ?budget:None g ~s : MP.verdict) with
            | MP.Minimum { classes; _ } ->
                List.iter
                  (fun max_states ->
                    let budget =
                      Prbp.Solver.Budget.v ~max_states ~check_every:1 ()
                    in
                    match search ?budget:(Some budget) g ~s with
                    | MP.Truncated { lower_so_far; _ } ->
                        check_true
                          (Printf.sprintf "%s floor %d <= MIN %d" label
                             lower_so_far classes)
                          (lower_so_far <= classes)
                    | MP.Minimum { classes = k; _ } ->
                        check_int (label ^ ": same minimum") classes k
                    | MP.No_partition ->
                        Alcotest.failf "%s: feasibility flipped" label)
                  [ 1; 5; 25 ]
            | MP.No_partition | MP.Truncated _ -> ())
          [
            ("part", fun ?budget g ~s -> MP.spartition ?budget g ~s);
            ("dom", fun ?budget g ~s -> MP.dominator_partition ?budget g ~s);
            ("edge", fun ?budget g ~s -> MP.edge_partition ?budget g ~s);
          ])
    (Lazy.force random_dags)

let test_early_certification () =
  (* feeding the exact witness back as [upper_witness] must certify the
     same minimum without exhausting the lattice, and an invalid witness
     must be ignored rather than corrupt the verdict *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 9 then
        let s = 3 in
        match MP.spartition g ~s with
        | MP.Minimum { classes; witness; _ } -> (
            (match MP.spartition ~upper_witness:witness g ~s with
            | MP.Minimum { classes = k; _ } ->
                check_int "early certification agrees" classes k
            | MP.No_partition | MP.Truncated _ ->
                Alcotest.fail "witness-seeded search must certify the minimum");
            (* a garbage witness (one empty class) must be dropped *)
            let bogus = [| Prbp.Bitset.create (Dag.n_nodes g) |] in
            match MP.spartition ~upper_witness:bogus g ~s with
            | MP.Minimum { classes = k; exhaustive; _ } ->
                check_int "bogus witness ignored" classes k;
                check_true "bogus witness not used for early cert" exhaustive
            | MP.No_partition | MP.Truncated _ ->
                Alcotest.fail "bogus witness must not change the verdict")
        | MP.No_partition | MP.Truncated _ -> ())
    (Lazy.force random_dags)

let suite =
  [
    ( "minpart",
      [
        case "ideal counts: path" test_ideals_path;
        case "ideal counts: diamond" test_ideals_diamond;
        case "single-class cases" test_single_class_cases;
        case "terminal pressure splits fan-out" test_fan_out_terminal_pressure;
        case "edge partition of the diamond" test_edge_partition_diamond;
        case "s=0 infeasible" test_infeasible_s0;
        case "witnesses re-validate" test_witnesses_revalidate;
        case "MIN_dom <= MIN_part" test_min_dom_at_most_min_part;
        case "greedy upper-bounds exact" test_greedy_upper_bounds_exact;
        case "Theorem 6.5/6.7 exact soundness" test_theorem_65_exact;
        case "Hong-Kung exact soundness" test_hong_kung_exact;
        case "extraction >= MIN" test_extraction_respects_min;
        case "budget truncates, bounds stay sound" test_budget_truncates;
        case "anytime floor sound" test_anytime_floor_sound;
        case "early certification" test_early_certification;
      ] );
  ]
